module tnsr

go 1.22
