// Debugging example: the paper's headline usability claim — debugging an
// optimized, translated program "much as if the program were still running
// on a microcoded TNS machine", without recompiling and without learning
// the RISC instruction set. The program is translated at the StmtDebug
// level (every statement boundary register-exact), stopped at a statement
// breakpoint, and inspected in purely CISC terms; the translated RISC view
// is shown alongside for comparison.
package main

import (
	"fmt"
	"log"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/debug"
	"tnsr/internal/risc"
	"tnsr/internal/talc"
	"tnsr/internal/workloads"
	"tnsr/internal/xrun"
)

// The program source lives in internal/workloads so the differential test
// sweep exercises exactly what this example demonstrates; its exact line
// numbering is what BreakAtStatement below refers to.
const program = workloads.DebuggingSource

func main() {
	f, err := talc.Compile("account", program)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Accelerate(f, core.Options{Level: codefile.LevelStmtDebug}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("translated at %s: %d RISC instructions, %d welded statements\n\n",
		f.Accel.Level, f.Accel.Stats.RISCInstrs, f.Accel.Stats.WeldedStmts)

	r, err := xrun.New(f, nil, risc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	d := debug.New(r)

	// Break on "history[i] := balance" (line 15) and watch the balance.
	addr, err := d.BreakAtStatement(15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("breakpoint armed at TNS address %d\n", addr)
	for hit := 1; ; hit++ {
		if err := d.Run(100_000_000); err != nil {
			log.Fatal(err)
		}
		if !d.R.BPHit {
			break
		}
		loc := d.Where()
		bal, _ := d.ReadVar("balance")
		i, _ := d.ReadVar("i")
		if hit <= 3 || hit == 10 {
			fmt.Printf("hit %2d: %s+%d line %d [RISC=%v, register-exact=%v]  i=%d balance=%d\n",
				hit, loc.Proc, loc.TNSAddr, loc.Line, loc.RISCMode, loc.Exact, i, bal)
		}
		if hit == 3 {
			// Full CISC-terms inspection at a register-exact point.
			_, rp, cc := d.Registers()
			fmt.Printf("\n  TNS registers: RP=%d CC=%+d (no RISC knowledge needed)\n", rp, cc)
			fmt.Printf("\n  CISC view:\n%s", indent(d.DisassembleTNS(loc.Space, loc.TNSAddr, 4)))
			fmt.Printf("\n  the same spot, RISC view:\n%s\n", indent(d.DisassembleRISC(4)))
			// Tamper with memory: reliable at memory-exact points.
			fmt.Println("  set balance := 0 (memory modification is reliable here)")
			if err := d.WriteVar("balance", 0); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\nprogram finished, console %q", d.R.Console())
	fmt.Println("(reflects the mid-run tampering, as on real TNS hardware)")
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(c)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
