// OLTP example: the ET1 debit/credit benchmark. The application codefile is
// tiny; nearly all cycles land in the system-library codefile (keyed file
// reads/writes, record locking, journaling) reached through SCAL calls —
// the situation the paper describes for Tandem's OLTP workloads. This
// example accelerates the two codefiles independently and shows cross-
// codefile calls running at full speed, plus what happens when only the
// library is accelerated (the paper's observation that I/O-bound programs
// need only their system code accelerated).
package main

import (
	"fmt"
	"log"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/machine"
	"tnsr/internal/millicode"
	"tnsr/internal/risc"
	"tnsr/internal/workloads"
	"tnsr/internal/xrun"
)

const txns = 200

func run(accelUser, accelLib bool) (cycles float64, interludes int, out string) {
	w := workloads.MustBuild("et1", txns)
	if accelUser {
		opts := core.Options{Level: codefile.LevelFast, LibSummaries: w.LibSummaries}
		if err := core.Accelerate(w.User, opts); err != nil {
			log.Fatal(err)
		}
	}
	if accelLib {
		if err := core.Accelerate(w.Lib, core.Options{
			Level: codefile.LevelFast, CodeBase: millicode.LibCodeBase, Space: 1,
		}); err != nil {
			log.Fatal(err)
		}
	}
	r, err := xrun.New(w.User, w.Lib, risc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Run(2_000_000_000); err != nil {
		log.Fatal(err)
	}
	total, _, _ := r.Cycles()
	return total, r.Interludes, r.Console()
}

func main() {
	fmt.Printf("ET1 debit/credit, %d transactions\n\n", txns)

	// Baseline: everything interpreted.
	w := workloads.MustBuild("et1", txns)
	m := interp.New(w.User, w.Lib)
	if err := m.Run(2_000_000_000); err != nil {
		log.Fatal(err)
	}
	im := &machine.CycloneRInterp
	interpCycles := im.Cycles(&m.Prof.Counts, m.Prof.LongUnits)
	fmt.Printf("%-34s %12.0f cycles   output %q\n",
		"everything interpreted:", interpCycles, m.Console.String())

	libOnly, inter1, out1 := run(false, true)
	fmt.Printf("%-34s %12.0f cycles   interludes %d\n",
		"library accelerated, app not:", libOnly, inter1)

	both, inter2, out2 := run(true, true)
	fmt.Printf("%-34s %12.0f cycles   interludes %d\n",
		"both codefiles accelerated:", both, inter2)

	if out1 != m.Console.String() || out2 != m.Console.String() {
		log.Fatal("outputs differ between modes")
	}
	fmt.Println()
	fmt.Printf("library-only acceleration already gives %.1fx (the app's own\n",
		interpCycles/libOnly)
	fmt.Printf("driver code hardly matters, as the paper notes); both: %.1fx\n",
		interpCycles/both)
}
