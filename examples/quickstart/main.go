// Quickstart: the complete migration path in one file — compile a mini-TAL
// program to TNS object code, run it interpreted (the compatibility
// baseline), then run it through the Accelerator and execute the translated
// RISC code with interpreter fallback, comparing both the answers and the
// cycle counts.
package main

import (
	"fmt"
	"log"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/machine"
	"tnsr/internal/risc"
	"tnsr/internal/talc"
	"tnsr/internal/workloads"
	"tnsr/internal/xrun"
)

// The program source lives in internal/workloads so the differential test
// sweep exercises exactly what this example demonstrates.
const program = workloads.QuickstartSource

func main() {
	// 1. Compile TAL -> TNS object code.
	tnsFile, err := talc.Compile("quickstart", program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d TNS code words, %d procedures\n\n",
		len(tnsFile.Code), len(tnsFile.Procs))

	// 2. Interpret (what an unaccelerated codefile does on a TNS/R machine,
	// and what TNS hardware executes natively).
	m := interp.New(tnsFile, nil)
	if err := m.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	im := &machine.CycloneRInterp
	interpCycles := im.Cycles(&m.Prof.Counts, m.Prof.LongUnits)
	fmt.Printf("interpreted: output %q, %d TNS instructions, %.0f Cyclone/R cycles\n",
		m.Console.String(), m.Prof.Instrs, interpCycles)

	// 3. Accelerate: static object-code translation to RISC.
	accFile, err := talc.Compile("quickstart", program)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Accelerate(accFile, core.Options{Level: codefile.LevelDefault}); err != nil {
		log.Fatal(err)
	}
	st := accFile.Accel.Stats
	fmt.Printf("\naccelerated (%s): %d RISC instructions for %d TNS (%.2fx inline)\n",
		accFile.Accel.Level, st.RISCInstrs, st.TNSInstrs,
		float64(st.RISCInstrs)/float64(st.TNSInstrs))

	// 4. Execute the translation in mixed mode.
	r, err := xrun.New(accFile, nil, risc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	total, _, _ := r.Cycles()
	fmt.Printf("translated run: output %q, %.0f cycles, %d interpreter interludes\n",
		r.Console(), total, r.Interludes)
	fmt.Printf("\nspeedup over interpretation: %.1fx\n", interpCycles/total)
	if r.Console() != m.Console.String() {
		log.Fatal("outputs differ!")
	}
	fmt.Println("outputs identical: translation is faithful")
}
