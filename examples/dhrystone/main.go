// Dhrystone example: the paper's CPU-bound measurement, run across every
// machine and execution mode — three microcoded CISC implementations (cost
// models), the software interpreter on the Cyclone/R, and the Accelerator's
// three levels executing on the RISC simulator. Prints the Dhrystone
// columns of the paper's Table 1.
package main

import (
	"fmt"
	"log"

	"tnsr/internal/bench"
	"tnsr/internal/codefile"
)

func main() {
	fmt.Println("TAL-coded Dhrystone, 16-bit and 32-bit addressing variants")
	fmt.Println()
	rows := make([]*bench.Row, 0, 2)
	for _, name := range []string{"dhry16", "dhry32"} {
		row, err := bench.MeasureWorkload(name, 200)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row)
	}
	fmt.Print(bench.Table1(rows))
	fmt.Println()
	fmt.Print(bench.Table3(rows))
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%s: accelerated (Default) runs %.1fx faster than interpreted;\n",
			r.Name, r.InterpTime/r.AccelTime[codefile.LevelDefault])
		fmt.Printf("        RISC pipeline: %d instructions, %.0f cycles (CPI %.2f)\n",
			r.RISCInstrs, r.RISCCycles, r.RISCCycles/float64(r.RISCInstrs))
	}
}
