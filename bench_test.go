// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark prints its artifact once and reports headline metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. cmd/benchtab prints the same tables as a
// standalone tool.
package main

import (
	"fmt"
	"sync"
	"testing"

	"tnsr/internal/bench"
	"tnsr/internal/codefile"
)

var (
	rowsOnce sync.Once
	rows     []*bench.Row
	rowsErr  error
)

func measuredRows(b *testing.B) []*bench.Row {
	rowsOnce.Do(func() {
		rows, rowsErr = bench.Measure()
	})
	if rowsErr != nil {
		b.Fatal(rowsErr)
	}
	return rows
}

func relSpeed(r *bench.Row, lvl codefile.AccelLevel) float64 {
	return r.CISCTime["CLX800"] / r.AccelTime[lvl]
}

// BenchmarkTable1 reproduces Table 1 / Figure 1: relative code execution
// speed of each machine and software mode against the CLX 800.
func BenchmarkTable1(b *testing.B) {
	rs := measuredRows(b)
	for i := 0; i < b.N; i++ {
		_ = bench.Table1(rs)
	}
	b.StopTimer()
	fmt.Println(bench.Table1(rs))
	fmt.Println(bench.Figure1(rs))
	for _, r := range rs {
		if r.Name == "et1" {
			b.ReportMetric(relSpeed(r, codefile.LevelFast), "et1-fast-rel-speed")
			continue
		}
	}
	b.ReportMetric(relSpeed(rs[0], codefile.LevelDefault), "dhry16-default-rel-speed")
}

// BenchmarkTable2 reproduces Table 2 / Figure 2: relative cycle efficiency.
func BenchmarkTable2(b *testing.B) {
	rs := measuredRows(b)
	for i := 0; i < b.N; i++ {
		_ = bench.Table2(rs)
	}
	b.StopTimer()
	fmt.Println(bench.Table2(rs))
	fmt.Println(bench.Figure2(rs))
}

// BenchmarkTable3 reproduces Table 3: RISC instructions generated inline
// per CISC instruction for each Accelerator option.
func BenchmarkTable3(b *testing.B) {
	rs := measuredRows(b)
	for i := 0; i < b.N; i++ {
		_ = bench.Table3(rs)
	}
	b.StopTimer()
	fmt.Println(bench.Table3(rs))
	b.ReportMetric(rs[0].Expansion[codefile.LevelDefault], "dhry16-default-expansion")
	b.ReportMetric(rs[0].Expansion[codefile.LevelFast], "dhry16-fast-expansion")
}

// BenchmarkTable4 reproduces Table 4: dynamic code-size expansion 2i+0.75.
func BenchmarkTable4(b *testing.B) {
	rs := measuredRows(b)
	for i := 0; i < b.N; i++ {
		_ = bench.Table4(rs)
	}
	b.StopTimer()
	fmt.Println(bench.Table4(rs))
	b.ReportMetric(rs[0].DynSize[codefile.LevelDefault], "dhry16-default-dynsize")
}

// BenchmarkSpeedupClaims reproduces the scalar claims: 5-8x over
// interpretation, 2-4x over the CLX 800, StmtDebug costs.
func BenchmarkSpeedupClaims(b *testing.B) {
	rs := measuredRows(b)
	for i := 0; i < b.N; i++ {
		_ = bench.Claims(rs)
	}
	b.StopTimer()
	fmt.Println(bench.Claims(rs))
	r := rs[0]
	b.ReportMetric(r.InterpTime/r.AccelTime[codefile.LevelDefault], "dhry16-speedup-vs-interp")
}

// BenchmarkInterpreterResidency reproduces the "<1% of time in interpreter
// mode, even without hints" claim on an adversarial unhinted program, and
// the effect of supplying hints.
func BenchmarkInterpreterResidency(b *testing.B) {
	var noHints, withHints float64
	var err error
	for i := 0; i < b.N; i++ {
		noHints, withHints, err = bench.AdversarialResidency()
		if err != nil {
			b.Fatal(err)
		}
	}
	fmt.Printf("Interpreter residency, unhinted XCALs: %.3f%% (paper: <1%%); with hints: %.3f%%\n\n",
		100*noHints, 100*withHints)
	b.ReportMetric(100*noHints, "unhinted-residency-%")
	b.ReportMetric(100*withHints, "hinted-residency-%")
}

// BenchmarkExitLookup reproduces the 11-cycle EXIT PMap lookup measurement.
func BenchmarkExitLookup(b *testing.B) {
	var cyc int64
	var err error
	for i := 0; i < b.N; i++ {
		cyc, err = bench.ExitLookupCycles()
		if err != nil {
			b.Fatal(err)
		}
	}
	fmt.Printf("EXIT PMap lookup: %d cycles (paper: 11)\n\n", cyc)
	b.ReportMetric(float64(cyc), "exit-lookup-cycles")
}

// BenchmarkStaticVsDynamic is the extension experiment: the crossover
// between up-front (static) and lazy (dynamic) translation that motivates
// the paper's choice of static translation for months-long workloads.
func BenchmarkStaticVsDynamic(b *testing.B) {
	var points []bench.CrossoverPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = bench.Crossover([]int{5, 100, 2500})
		if err != nil {
			b.Fatal(err)
		}
	}
	fmt.Println(bench.CrossoverTable(points))
	for _, p := range points {
		if p.Runs == 2500 {
			b.ReportMetric(p.StaticCycles/p.DynamicCycles, "static-advantage-at-2500")
		}
	}
}
