package core_test

import (
	"fmt"
	"testing"

	"tnsr/internal/backend"
	"tnsr/internal/backend/mips"
	"tnsr/internal/backend/ob0"
	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/risc"
	"tnsr/internal/talc"
	"tnsr/internal/workloads"
	"tnsr/internal/xrun"
)

// The three-way differential oracle behind the retargetable-backend claim:
// every shipped program runs through the pure interpreter and through the
// full translate-and-run pipeline once per registered backend, at every
// translation level. Each accelerated run must reproduce the interpreter's
// halt state, trap code, exit status, console output and final memory
// image, and must never escape to the interpreter for an unclassified
// reason. Since both backends are held to the interpreter's behaviour,
// they are transitively held to each other — a target assumption baked
// into the shared analysis core (delay-slot scheduling, HI/LO shape,
// one-word-per-instruction layout) would show up here as an ob0
// divergence while MIPS stays green.

// diffBackends is the oracle for one program and one backend.
func diffBackends(t *testing.T, lvl codefile.AccelLevel, be backend.Backend,
	build func() (*codefile.File, *codefile.File, map[uint16]int8)) {
	t.Helper()

	user, lib, summaries := build()
	m := interp.New(user, lib)
	m.Run(30_000_000)

	auser, alib, _ := build()
	opts := core.Options{Level: lvl, Workers: 4, Backend: be, LibSummaries: summaries}
	if alib != nil {
		libOpts := core.Options{
			Level: lvl, Workers: 4, Backend: be,
			CodeBase: millicode.LibCodeBase, Space: 1,
		}
		if err := core.Accelerate(alib, libOpts); err != nil {
			t.Fatalf("accelerate lib: %v", err)
		}
	}
	if err := core.Accelerate(auser, opts); err != nil {
		t.Fatalf("accelerate: %v", err)
	}
	r, err := xrun.New(auser, alib, risc.Config{MulLatency: 12, DivLatency: 35})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Backend().Name(); got != be.Name() {
		t.Fatalf("runner resolved backend %q, want %q", got, be.Name())
	}
	if r.Degraded {
		t.Fatalf("runner degraded: %s", r.DegradedReason)
	}
	rec := obs.NewRecorder()
	r.Observe(rec)
	if err := r.Run(200_000_000); err != nil {
		t.Fatalf("run: %v (interludes=%d)", err, r.Interludes)
	}

	if m.Halted != r.Halted {
		t.Fatalf("halted: interp=%v accel=%v", m.Halted, r.Halted)
	}
	if m.Trap != r.Trap {
		t.Fatalf("trap: interp=%d accel=%d", m.Trap, r.Trap)
	}
	if m.Trap == 0 && m.ExitStatus != r.ExitStatus {
		t.Errorf("exit status: interp=%d accel=%d", m.ExitStatus, r.ExitStatus)
	}
	if got, want := r.Console(), m.Console.String(); got != want {
		t.Errorf("console: accel=%q interp=%q", got, want)
	}
	if n := rec.Escapes[obs.EscapeUnknown]; n != 0 {
		t.Errorf("%d escapes with Unknown reason (histogram %v)", n, rec.Escapes)
	}
	// The comparison is only meaningful if translated code actually ran:
	// a silent degrade to full interpretation would match the interpreter
	// vacuously.
	if r.Sim.Instrs == 0 {
		t.Fatalf("no RISC instructions executed: backend %s never engaged", be.Name())
	}
	if m.Trap != 0 {
		return // memory at trap time may legitimately differ midway
	}
	for i := range m.Mem {
		if m.Mem[i] != r.Int.Mem[i] {
			t.Fatalf("memory differs at word %d: interp=%04x accel=%04x",
				i, m.Mem[i], r.Int.Mem[i])
		}
	}
}

// oracleBackends are the targets the differential oracle sweeps. Both
// registry instances, by name, so the test also proves registration.
func oracleBackends(t *testing.T) []backend.Backend {
	t.Helper()
	var out []backend.Backend
	for _, name := range []string{"mips", "ob0"} {
		be, ok := backend.ByName(name)
		if !ok {
			t.Fatalf("backend %q not registered", name)
		}
		out = append(out, be)
	}
	return out
}

func TestDifferentialBackends(t *testing.T) {
	for _, be := range oracleBackends(t) {
		for _, name := range workloads.Names {
			for _, lvl := range levels {
				be, name, lvl := be, name, lvl
				t.Run(fmt.Sprintf("%s/%s/%v", be.Name(), name, lvl), func(t *testing.T) {
					t.Parallel()
					diffBackends(t, lvl, be, func() (*codefile.File, *codefile.File, map[uint16]int8) {
						w, err := workloads.Build(name, 2)
						if err != nil {
							t.Fatal(err)
						}
						return w.User, w.Lib, w.LibSummaries
					})
				})
			}
		}
		for name, src := range workloads.ExamplePrograms {
			for _, lvl := range levels {
				be, name, src, lvl := be, name, src, lvl
				t.Run(fmt.Sprintf("%s/%s/%v", be.Name(), name, lvl), func(t *testing.T) {
					t.Parallel()
					diffBackends(t, lvl, be, func() (*codefile.File, *codefile.File, map[uint16]int8) {
						f, err := talc.Compile(name, src)
						if err != nil {
							t.Fatal(err)
						}
						return f, nil, nil
					})
				})
			}
		}
	}
}

// TestBackendIdentityBytes pins the registry identity bytes: they are
// stored in codefiles, so they may never change or collide.
func TestBackendIdentityBytes(t *testing.T) {
	if mips.BackendID != 0 || mips.Default.ID() != 0 {
		t.Errorf("mips identity byte must be 0")
	}
	if ob0.BackendID != 1 || ob0.Default.ID() != 1 {
		t.Errorf("ob0 identity byte must be 1")
	}
	if got := backend.Names(); len(got) < 2 {
		t.Errorf("registry names = %v, want at least mips and ob0", got)
	}
}
