package core

import (
	"fmt"

	"tnsr/internal/risc"
)

// label identifies a position in the emitted RISC stream, bound during
// translation and resolved at layout time.
type label int32

const noLabel label = -1

// rinst is one emitted RISC instruction (or raw table word) before layout.
type rinst struct {
	op      risc.Op
	rd      uint8
	rs      uint8
	rt      uint8
	shamt   uint8
	imm     int32
	lbl     label  // branch target / data-word label reference
	jTarget uint32 // absolute word index for J/JAL (millicode entries)
	jLbl    label  // J/JAL to a local label (direct PCAL targets)
	code    uint32 // BREAK/SYSCALL code
	isWord  bool   // raw data word: imm literal or (jLbl) code address
	laLbl   label  // LUI/ORI pair loading CodeWindow+4*(CodeBase+pos(laLbl))
	hasLA   bool   // laLbl is valid
	laHi    bool   // this is the LUI half of the pair
	tnsAddr uint16 // originating TNS address (stats, debug listings)
	isExact bool   // scheduling barrier: start of an exact point
}

// pmapPoint records a PMap entry to be resolved at layout.
type pmapPoint struct {
	tnsAddr  uint16
	lbl      label
	regExact bool
	rp       int8 // static RP at a register-exact point (-1 elsewhere)
}

// fn is the per-codefile emission buffer.
type fn struct {
	ins       []rinst
	labelPos  []int32 // label -> instruction index; -1 unbound
	points    []pmapPoint
	procEntry []label // PEP index -> prologue label (noLabel if untranslated)
	stats     emitStats
	curTNS    uint16
	// pendingExact marks the next emitted instruction as an exact-point
	// boundary (scheduling barrier).
	pendingExact bool
	// why records the static escape reason (obs.EscapeReason code) for each
	// TNS address a fallback was emitted at; it becomes the acceleration
	// section's FallbackWhy table. Fragment addresses are disjoint, so the
	// parallel merge is a plain union.
	why map[uint16]uint8
}

type emitStats struct {
	inline        int // RISC instructions emitted inline (excl. table words)
	elidedFlagOps int
}

func newFn(nprocs int) *fn {
	f := &fn{procEntry: make([]label, nprocs), why: map[uint16]uint8{}}
	for i := range f.procEntry {
		f.procEntry[i] = noLabel
	}
	return f
}

func (f *fn) newLabel() label {
	f.labelPos = append(f.labelPos, -1)
	return label(len(f.labelPos) - 1)
}

func (f *fn) bind(l label) {
	if f.labelPos[l] != -1 {
		panic("core: label bound twice")
	}
	f.labelPos[l] = int32(len(f.ins))
}

// bound reports whether l has been bound.
func (f *fn) bound(l label) bool { return f.labelPos[l] != -1 }

func (f *fn) add(r rinst) {
	r.tnsAddr = f.curTNS
	if f.pendingExact {
		r.isExact = true
		f.pendingExact = false
	}
	f.ins = append(f.ins, r)
	if !r.isWord {
		f.stats.inline++
	}
}

// --- emission helpers -----------------------------------------------------

func (f *fn) alu(op risc.Op, rd, rs, rt uint8) {
	f.add(rinst{op: op, rd: rd, rs: rs, rt: rt, lbl: noLabel, jLbl: noLabel})
}

func (f *fn) imm(op risc.Op, rt, rs uint8, v int32) {
	f.add(rinst{op: op, rt: rt, rs: rs, imm: v, lbl: noLabel, jLbl: noLabel})
}

func (f *fn) shift(op risc.Op, rd, rt, sh uint8) {
	f.add(rinst{op: op, rd: rd, rt: rt, shamt: sh, lbl: noLabel, jLbl: noLabel})
}

func (f *fn) mem(op risc.Op, rt, base uint8, off int32) {
	f.add(rinst{op: op, rt: rt, rs: base, imm: off, lbl: noLabel, jLbl: noLabel})
}

func (f *fn) br(op risc.Op, rs, rt uint8, l label) {
	f.add(rinst{op: op, rs: rs, rt: rt, lbl: l, jLbl: noLabel})
}

func (f *fn) jAbs(op risc.Op, target uint32) {
	f.add(rinst{op: op, jTarget: target, lbl: noLabel, jLbl: noLabel})
}

func (f *fn) jLocal(op risc.Op, l label) {
	f.add(rinst{op: op, lbl: noLabel, jLbl: l})
}

func (f *fn) jr(rs uint8) {
	f.add(rinst{op: risc.JR, rs: rs, lbl: noLabel, jLbl: noLabel})
}

func (f *fn) brk(code uint32) {
	f.add(rinst{op: risc.BREAK, code: code, lbl: noLabel, jLbl: noLabel})
}

func (f *fn) sys(code uint32) {
	f.add(rinst{op: risc.SYSCALL, code: code, lbl: noLabel, jLbl: noLabel})
}

func (f *fn) nop() {
	f.add(rinst{op: risc.SLL, lbl: noLabel, jLbl: noLabel}) // sll $0,$0,0
}

func (f *fn) word(v uint32) {
	f.add(rinst{isWord: true, imm: int32(v), lbl: noLabel, jLbl: noLabel})
}

func (f *fn) wordLabel(l label) {
	f.add(rinst{isWord: true, jLbl: l, lbl: noLabel})
}

// laCodeWindow loads into reg the data-space address at which the code word
// labelled l can be read (CodeWindow mapping), resolved at layout.
func (f *fn) laCodeWindow(reg uint8, l label) {
	f.add(rinst{op: risc.LUI, rt: reg, laLbl: l, hasLA: true, laHi: true, lbl: noLabel, jLbl: noLabel})
	f.add(rinst{op: risc.ORI, rt: reg, rs: reg, laLbl: l, hasLA: true, lbl: noLabel, jLbl: noLabel})
}

// li loads a 32-bit constant into reg (1-2 instructions).
func (f *fn) li(reg uint8, v int32) {
	switch {
	case v >= -32768 && v <= 32767:
		f.imm(risc.ADDIU, reg, risc.RegZero, v)
	case v >= 0 && v <= 0xFFFF:
		f.imm(risc.ORI, reg, risc.RegZero, v)
	default:
		f.imm(risc.LUI, reg, 0, int32(uint32(v)>>16))
		if v&0xFFFF != 0 {
			f.imm(risc.ORI, reg, reg, v&0xFFFF)
		}
	}
}

// move emits a register copy.
func (f *fn) move(rd, rs uint8) {
	if rd != rs {
		f.alu(risc.ADDU, rd, rs, risc.RegZero)
	}
}

// pmapAdd records a PMap point at the current position; rp is the static
// RP translated code assumes at a register-exact point.
func (f *fn) pmapAdd(tnsAddr uint16, regExact bool, rp int8) {
	l := f.newLabel()
	f.bind(l)
	f.points = append(f.points, pmapPoint{tnsAddr: tnsAddr, lbl: l, regExact: regExact, rp: rp})
	f.pendingExact = true
}

func (f *fn) String() string {
	return fmt.Sprintf("fn(%d instrs, %d labels)", len(f.ins), len(f.labelPos))
}
