package core

import "tnsr/internal/tns"

// Live/dead analysis over the paper's eleven variables — the eight stack
// registers plus the instruction side-effect indicators. In this ISA
// revision only CC is architecturally observable (K and V surface solely
// through overflow traps, which the translator handles with explicit
// checks), so the dataflow tracks nine bits: R0..R7 and CC. The analysis
// covers only these registers — not memory, exactly as the paper says.
//
// Registers are treated as dead across calls (callees clobber the barrel
// and CC), which is what makes independent per-procedure translation sound.

const (
	liveCC  = 1 << 8
	liveAll = 0x1FF
)

// liveness computes liveOut for every instruction address.
func (p *program) liveness() {
	n := len(p.kind)
	p.liveOut = make([]uint16, n)
	// Backward fixpoint over all instructions.
	changed := true
	var succBuf []uint16
	for changed {
		changed = false
		for a := n - 1; a >= 0; a-- {
			if p.kind[a] != KindInstr {
				continue
			}
			addr := uint16(a)
			var out uint16
			succBuf = p.succs(addr, succBuf[:0])
			for _, s := range succBuf {
				if int(s) >= n || p.kind[s] != KindInstr {
					continue
				}
				if _, isPuzzle := p.puzzle[s]; isPuzzle || p.rpAt[s] < 0 {
					out |= liveAll // interpreter re-entry: everything live
					continue
				}
				use, def := p.useDef(s)
				out |= use | (p.liveOut[s] &^ def)
			}
			// EXIT and halt have no successors; their boundary liveness
			// is encoded in useDef (EXIT uses its results and CC).
			if out != p.liveOut[a] {
				p.liveOut[a] = out
				changed = true
			}
		}
	}
}

// liveAfter reports the live set following the instruction at a.
func (p *program) liveAfter(a uint16) uint16 { return p.liveOut[a] }

// regBit returns the liveness bit for absolute register r.
func regBit(r int) uint16 { return 1 << uint(((r%8)+8)%8) }

// useDef computes the use and def sets of the instruction at a, given its
// statically recovered RP.
func (p *program) useDef(a uint16) (use, def uint16) {
	in := p.instr[a]
	rp := int(p.rpAt[a])
	if rp < 0 {
		return liveAll, 0
	}
	pops := in.Pops()
	delta := in.RPDelta()

	// Generic stack behaviour: pop `pops` registers from rp downward, then
	// push `pops+delta` results.
	for j := 0; j < pops; j++ {
		use |= regBit(rp - j)
	}
	if delta != tns.RPUnknown {
		pushes := pops + delta
		base := rp - pops
		for j := 1; j <= pushes; j++ {
			def |= regBit(base + j)
		}
	}

	fl := in.Flags()
	if fl.CC {
		def |= liveCC
	}

	switch in.Major {
	case tns.MajControl:
		switch in.Ctl {
		case tns.CtlBCC:
			use |= liveCC
		case tns.CtlPCAL, tns.CtlSCAL:
			use, def = 0, liveAll // registers are dead across calls
		case tns.CtlEXIT:
			// Function results and CC are live out of the procedure.
			use = liveCC
			if res := p.exitResultWords(a); res > 0 {
				for j := 0; j < res; j++ {
					use |= regBit(rp - j)
				}
			}
			def = 0
		}
	case tns.MajSpecial:
		switch in.Sub {
		case tns.SubStack:
			if in.Operand == tns.OpXCAL {
				use = regBit(rp) // the PLabel
				def = liveAll
			}
		case tns.SubLDRA:
			use |= regBit(int(in.Operand & 7))
		case tns.SubSTAR:
			def |= regBit(int(in.Operand & 7))
		}
	}
	return use, def
}

// exitResultWords reports how many result words the EXIT at address a
// returns: the result size of its enclosing procedure if known, else a
// conservative "all plausibly live" count derived from its exit RP.
func (p *program) exitResultWords(a uint16) int {
	pi := p.procOf[a]
	if pi >= 0 && int(pi) < len(p.resultWords) && p.resultWords[pi] >= 0 {
		return int(p.resultWords[pi])
	}
	// Unknown result size: every register could be a result.
	return 8
}
