package core_test

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/workloads"
)

// The parallel pipeline's contract: the acceleration section is
// byte-identical for every worker count, and repeated translations are
// byte-identical to each other (no map-iteration order, goroutine
// scheduling or allocator state may leak into the output). The serialized
// codefile covers everything — RISC words, entry table, ExpectedRP, PMap
// and statistics.

// accelBytes builds the named workload fresh, translates user (and, when
// present, library) codefiles with the given worker count, and returns the
// serialized results.
func accelBytes(t *testing.T, name string, level codefile.AccelLevel, workers int) []byte {
	t.Helper()
	w, err := workloads.Build(name, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	opts := core.Options{Level: level, Workers: workers, LibSummaries: w.LibSummaries}
	if err := core.Accelerate(w.User, opts); err != nil {
		t.Fatalf("%s user: %v", name, err)
	}
	if _, err := w.User.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if w.Lib != nil {
		libOpts := core.Options{
			Level: level, Workers: workers,
			CodeBase: millicode.LibCodeBase, Space: 1,
		}
		if err := core.Accelerate(w.Lib, libOpts); err != nil {
			t.Fatalf("%s lib: %v", name, err)
		}
		if _, err := w.Lib.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestParallelDeterminism proves the tentpole claim for every workload:
// Workers=1 (the serial reference pipeline), Workers=4 (forces the pool
// even on a single-CPU runner) and Workers=GOMAXPROCS all produce the same
// bytes, and each configuration is stable across three repeated runs.
func TestParallelDeterminism(t *testing.T) {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, name := range workloads.Names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ref := accelBytes(t, name, codefile.LevelDefault, 1)
			for _, workers := range counts {
				for run := 0; run < 3; run++ {
					got := accelBytes(t, name, codefile.LevelDefault, workers)
					if !bytes.Equal(got, ref) {
						t.Fatalf("workers=%d run=%d: output differs from serial reference (%d vs %d bytes)",
							workers, run, len(got), len(ref))
					}
				}
			}
		})
	}
}

// TestParallelDeterminismLevels re-proves byte-identity at the other two
// translation levels on one CPU-bound and the one library-heavy workload.
func TestParallelDeterminismLevels(t *testing.T) {
	for _, name := range []string{"dhry16", "et1"} {
		for _, lvl := range []codefile.AccelLevel{codefile.LevelStmtDebug, codefile.LevelFast} {
			name, lvl := name, lvl
			t.Run(fmt.Sprintf("%s/%v", name, lvl), func(t *testing.T) {
				t.Parallel()
				ref := accelBytes(t, name, lvl, 1)
				got := accelBytes(t, name, lvl, 4)
				if !bytes.Equal(got, ref) {
					t.Fatalf("workers=4 differs from serial at level %v", lvl)
				}
			})
		}
	}
}
