package core_test

import (
	"fmt"
	"strings"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/risc"
	"tnsr/internal/tnsasm"
	"tnsr/internal/xrun"
)

// The paper's central correctness claim: the translated RISC code
// "calculates the same answers as the TNS code, and does exactly the same
// sequence of stores into memory". These tests run the same program through
// the pure interpreter and through the Accelerator + mixed-mode runtime at
// every option level and compare final memory, console output, traps and
// exit status.

var levels = []codefile.AccelLevel{
	codefile.LevelStmtDebug, codefile.LevelDefault, codefile.LevelFast,
}

// runFidelity runs src both ways at every level and compares.
func runFidelity(t *testing.T, name, src string) {
	t.Helper()
	runFidelityLib(t, name, src, "")
}

func runFidelityLib(t *testing.T, name, src, libSrc string) {
	t.Helper()
	// Reference: pure interpretation.
	ref := tnsasm.MustAssemble(name, src)
	var refLib *codefile.File
	if libSrc != "" {
		refLib = tnsasm.MustAssemble(name+"-lib", libSrc)
	}
	m := interp.New(ref, refLib)
	m.Run(3_000_000)

	for _, lvl := range levels {
		lvl := lvl
		t.Run(lvl.String(), func(t *testing.T) {
			f := tnsasm.MustAssemble(name, src)
			var lib *codefile.File
			opts := core.Options{Level: lvl}
			if libSrc != "" {
				lib = tnsasm.MustAssemble(name+"-lib", libSrc)
				libOpts := core.Options{Level: lvl, CodeBase: 0x80000, Space: 1}
				if err := core.Accelerate(lib, libOpts); err != nil {
					t.Fatalf("accelerate lib: %v", err)
				}
				// Library summaries for SCAL result sizes.
				opts.LibSummaries = map[uint16]int8{}
				for i, p := range lib.Procs {
					opts.LibSummaries[uint16(i)] = p.ResultWords
				}
			}
			if err := core.Accelerate(f, opts); err != nil {
				t.Fatalf("accelerate: %v", err)
			}
			r, err := xrun.New(f, lib, risc.Config{MulLatency: 12, DivLatency: 35})
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Run(20_000_000); err != nil {
				t.Fatalf("run: %v (interludes=%d)", err, r.Interludes)
			}
			compareRuns(t, m, r)
		})
	}
}

func compareRuns(t *testing.T, m *interp.Machine, r *xrun.Runner) {
	t.Helper()
	if m.Halted != r.Halted {
		t.Fatalf("halted: interp=%v accel=%v", m.Halted, r.Halted)
	}
	if m.Trap != r.Trap {
		t.Fatalf("trap: interp=%d accel=%d (at %d vs %d)", m.Trap, r.Trap, m.TrapP, r.TrapP)
	}
	if m.Trap == 0 && m.ExitStatus != r.ExitStatus {
		t.Errorf("exit status: interp=%d accel=%d", m.ExitStatus, r.ExitStatus)
	}
	if got, want := r.Console(), m.Console.String(); got != want {
		t.Errorf("console: accel=%q interp=%q", got, want)
	}
	if m.Trap != 0 {
		return // memory at trap time may legitimately differ midway
	}
	for i := range m.Mem {
		if m.Mem[i] != r.Int.Mem[i] {
			t.Fatalf("memory differs at word %d: interp=%04x accel=%04x",
				i, m.Mem[i], r.Int.Mem[i])
		}
	}
}

func TestFidelityArithmetic(t *testing.T) {
	runFidelity(t, "arith", `
GLOBALS 16
MAIN main
PROC main
  LDI 7
  LDI 5
  ADD
  STOR G+0
  LDI 7
  LDI 5
  SUB
  STOR G+1
  LDI 7
  LDI -5
  MPY
  STOR G+2
  LDI 47
  LDI 5
  DIV
  STOR G+3
  LDI 47
  LDI 5
  MOD
  STOR G+4
  LDI 7
  NEG
  STOR G+5
  LDI 12
  LDI 10
  LAND
  STOR G+6
  LDI 12
  LDI 10
  LOR
  STOR G+7
  LDI 12
  LDI 10
  XOR
  STOR G+8
  LDI 0
  NOT
  STOR G+9
  LDI 3
  SHL 4
  STOR G+10
  LDI -64
  SHRA 3
  STOR G+11
  LDI -64
  SHRL 3
  STOR G+12
  LDI 51
  ANDI 15
  STOR G+13
  LDI 64
  ORI 7
  STOR G+14
  LDI 5
  SWAB
  STOR G+15
  EXIT 0
ENDPROC
`)
}

func TestFidelityLoopAndBranches(t *testing.T) {
	runFidelity(t, "loop", `
GLOBALS 8
MAIN main
PROC main
  LDI 0
  STOR G+0
  LDI 1
  STOR G+1
loop:
  LOAD G+1
  CMPI 100
  BG done
  LOAD G+0
  LOAD G+1
  ADD
  STOR G+0
  LOAD G+1
  ADDI 1
  STOR G+1
  BUN loop
done:
  LOAD G+0
  LDI 19
  LDHI 186      ; 19*256+186 = 5050
  CMP
  BNE bad
  LDI 1
  STOR G+2
  EXIT 0
bad:
  LDI 0
  STOR G+2
  EXIT 0
ENDPROC
`)
}

func TestFidelityMemoryModes(t *testing.T) {
	runFidelity(t, "mem", `
GLOBALS 64
DATA 16: 100 101 102 103 104
MAIN main
PROC main
  ADDS 8        ; locals
  LDI 16
  STOR G+0      ; pointer to the table
  LOAD G+0,I    ; 100
  STOR G+1
  LDI 3
  LOAD G+0,I,X  ; 103
  STOR G+2
  LDI 2
  LOAD G+16,X   ; 102
  STOR G+3
  LDI 55
  STOR L+1
  LOAD L+1
  STOR G+4
  LDI 7
  ADDS 1
  STOR S-0
  LOAD S-0
  STOR G+5
  ADDS -1
  LDI 40        ; byte address of word 20
  STOR G+6
  LDI -1
  LDI 1
  STB G+6,I,X   ; low byte of word 20
  LOAD G+20
  STOR G+7
  LDB G+16      ; high byte of word 16 (100 = 0x0064 -> 0)
  STOR G+8
  LDI 1
  LDB G+6,I,X   ; low byte of word 20 = 0xFF
  STOR G+9
  EXIT 0
ENDPROC
`)
}

func TestFidelityDoubleOps(t *testing.T) {
	runFidelity(t, "dbl", `
GLOBALS 32
MAIN main
PROC main
  LDI 1
  LDI 0
  LDI 0
  LDI 100
  DADD
  STD G+0
  LDD G+0
  LDI 0
  LDI 7
  DSUB
  STD G+2
  LDI 0
  LDI 3
  LDI 0
  LDI 100
  DMPY
  STD G+4
  LDI 0
  LDI 3
  LDHI 232
  LDI 0
  LDI 10
  DDIV
  STD G+6
  LDI -1
  CTOD
  STD G+8
  LDD G+8
  DNEG
  STD G+10
  LDD G+0
  DSHL 3
  STD G+12
  LDD G+0
  DSHRL 2
  STD G+14
  LDD G+4
  DTOC
  STOR G+16
  LDD G+0
  LDD G+4
  DCMP
  BG big
  LDI 0
  STOR G+17
  EXIT 0
big:
  LDI 1
  STOR G+17
  EXIT 0
ENDPROC
`)
}

func TestFidelityCallsAndRecursion(t *testing.T) {
	runFidelity(t, "fib", `
GLOBALS 8
MAIN main
PROC fib RESULT 1 ARGS 1
  ADDS 1
  LOAD L-3
  LDI 2
  CMP
  BGE rec
  LOAD L-3
  EXIT 1
rec:
  LOAD L-3
  ADDI -1
  ADDS 1
  STOR S-0
  PCAL fib
  STOR L+1
  LOAD L-3
  ADDI -2
  ADDS 1
  STOR S-0
  PCAL fib
  LOAD L+1
  ADD
  EXIT 1
ENDPROC
PROC main
  LDI 12
  ADDS 1
  STOR S-0
  PCAL fib
  STOR G+0
  EXIT 0
ENDPROC
`)
}

func TestFidelityCaseJump(t *testing.T) {
	runFidelity(t, "case", `
GLOBALS 8
MAIN main
PROC main
  LDI 0
  STOR G+1
loop:
  LOAD G+1
  CASE
CASETAB c0, c1, c2
  LDI -1        ; out of range
  STOR G+7
  EXIT 0
c0:
  LDI 10
  STOR G+2
  BUN next
c1:
  LDI 20
  STOR G+3
  BUN next
c2:
  LDI 30
  STOR G+4
next:
  LOAD G+1
  ADDI 1
  STOR G+1
  BUN loop
ENDPROC
`)
}

func TestFidelityXCALWithSETRP(t *testing.T) {
	runFidelity(t, "xcal", `
GLOBALS 8
MAIN main
PROC double RESULT 1 ARGS 1
  LOAD L-3
  DUP
  ADD
  EXIT 1
ENDPROC
PROC triple RESULT 1 ARGS 1
  LOAD L-3
  DUP
  DUP
  ADD
  ADD
  EXIT 1
ENDPROC
PROC main
  LDI 21
  ADDS 1
  STOR S-0
  LDPL 0
  XCAL
  SETRP 0
  STOR G+0      ; 42
  LOAD G+0
  ANDI 1        ; dynamic target selector: 42&1 = 0 -> "double"
  STOR G+2
  LDI 14
  ADDS 1
  STOR S-0
  LOAD G+2      ; PLabel chosen at run time
  XCAL
  SETRP 0
  STOR G+1      ; double(14) = 28
  EXIT 0
ENDPROC
`)
}

func TestFidelityXCALGuessedResult(t *testing.T) {
	// No SETRP after XCAL: the Accelerator must guess the result size and
	// emit a run-time RP check. The guess (1 word, STOR follows) is right.
	runFidelity(t, "xcalguess", `
GLOBALS 8
MAIN main
PROC double RESULT 1 ARGS 1
  LOAD L-3
  DUP
  ADD
  EXIT 1
ENDPROC
PROC main
  LDI 21
  ADDS 1
  STOR S-0
  LDPL 0
  XCAL
  STOR G+0
  EXIT 0
ENDPROC
`)
}

func TestFidelityStrings(t *testing.T) {
	runFidelity(t, "strings", `
GLOBALS 64
DATA 16: 0x6865 0x6C6C 0x6F21 0x0000   ; "hello!"
MAIN main
PROC main
  LDI 32        ; src byte addr
  LDI 64        ; dst byte addr (word 32)
  LDI 6
  MOVB
  LDI 64
  LDI 32
  LDI 6
  CMPB
  BNE bad
  LDI 1
  STOR G+0
  BUN cont
bad:
  LDI 0
  STOR G+0
cont:
  LDI 32
  LDI 108       ; 'l'
  LDI 6
  SCNB
  STOR G+1      ; position 2
  LDI 16
  LDI 40        ; word 20
  LDI 3
  MOVW
  LOAD G+21
  STOR G+2
  LDI 32        ; overlapping smear
  LDI 33
  LDI 3
  MOVB
  LOAD G+16
  STOR G+3
  EXIT 0
ENDPROC
`)
}

func TestFidelityExtendedAddressing(t *testing.T) {
	runFidelity(t, "ext", `
GLOBALS 32
DATA 8: 1234
MAIN main
PROC main
  LDI 0
  LDI 16
  LDE
  STOR G+0
  LDI 77
  LDI 0
  LDI 20
  STE
  LOAD G+10
  STOR G+1
  LDI 0
  LDI 17
  LDBE
  STOR G+2
  LDI -1
  LDI 0
  LDI 24
  STBE
  LOAD G+12
  STOR G+3
  EXIT 0
ENDPROC
`)
}

func TestFidelityRegisterOps(t *testing.T) {
	runFidelity(t, "regs", `
GLOBALS 16
MAIN main
PROC main
  LDI 9
  STAR 0
  LDRA 0
  LDRA 0
  ADD
  STOR G+0
  LDI 1
  LDI 2
  EXCH
  STOR G+1      ; 1
  STOR G+2      ; 2
  LDI 3
  DUP
  MPY
  STOR G+3      ; 9
  LDI 4
  LDI 5
  DEL
  STOR G+4      ; 4
  LDI 6
  LDI 7
  DDEL
  LDI 1
  STOR G+5
  EXIT 0
ENDPROC
`)
}

func TestFidelityADM(t *testing.T) {
	runFidelity(t, "adm", `
GLOBALS 8
DATA 3: 40
MAIN main
PROC main
  LDI 2
  LDI 3
  ADM
  LDI 5
  LDI 3
  ADM ,ATOMIC
  EXIT 0
ENDPROC
`)
}

func TestFidelityConsole(t *testing.T) {
	runFidelity(t, "console", `
GLOBALS 8
DATA 2: 0x6869   ; "hi"
MAIN main
PROC main
  LDI 104
  SVC 1
  LDI -42
  SVC 2
  LDI 4
  LDI 2
  SVC 3
  LDI 7
  SVC 0
ENDPROC
`)
}

func TestFidelitySystemLibrary(t *testing.T) {
	runFidelityLib(t, "libcall", `
GLOBALS 8
MAIN main
PROC main
  LDI 14
  ADDS 1
  STOR S-0
  SCAL 0
  STOR G+0
  LDI 10
  ADDS 1
  STOR S-0
  LDI 20
  ADDS 1
  STOR S-0
  SCAL 1
  STOR G+1
  EXIT 0
ENDPROC
`, `
PROC lib_triple RESULT 1 ARGS 1
  LOAD L-3
  DUP
  DUP
  ADD
  ADD
  EXIT 1
ENDPROC
PROC lib_addmul RESULT 1 ARGS 2
  LOAD L-4
  LOAD L-3
  ADD
  LOAD L-4
  MPY
  EXIT 2
ENDPROC
`)
}

func TestFidelityDivZeroTrap(t *testing.T) {
	runFidelity(t, "divzero", `
GLOBALS 4
MAIN main
PROC main
  LDI 5
  STOR G+0
  LDI 1
  LDI 0
  DIV
  STOR G+1
  EXIT 0
ENDPROC
`)
}

func TestFidelityOverflowTrapEnabled(t *testing.T) {
	// SETT 1 makes traps possible: Default and StmtDebug emit checks. The
	// Fast level intentionally omits them, so it is excluded here (the
	// paper: Fast is for programs that do not need exact trap emulation).
	src := `
GLOBALS 4
MAIN main
PROC main
  SETT 1
  LDI 127
  LDHI 255
  ADDI 1
  STOR G+0
  EXIT 0
ENDPROC
`
	ref := tnsasm.MustAssemble("ovf", src)
	m := interp.New(ref, nil)
	m.Run(10000)
	for _, lvl := range []codefile.AccelLevel{codefile.LevelStmtDebug, codefile.LevelDefault} {
		f := tnsasm.MustAssemble("ovf", src)
		if err := core.Accelerate(f, core.Options{Level: lvl}); err != nil {
			t.Fatal(err)
		}
		r, err := xrun.New(f, nil, risc.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Run(100000); err != nil {
			t.Fatal(err)
		}
		compareRuns(t, m, r)
	}
}

func TestFidelityOverflowNoTraps(t *testing.T) {
	// Without SETT, overflow wraps silently in both modes.
	runFidelity(t, "ovfwrap", `
GLOBALS 4
MAIN main
PROC main
  LDI 127
  LDHI 255
  ADDI 1
  STOR G+0
  LDI 127
  LDHI 255
  LDI 1
  ADD
  STOR G+1
  LDI -128
  LDHI 0
  LDI 1
  SUB
  STOR G+2
  EXIT 0
ENDPROC
`)
}

func TestFidelityStatementMarkers(t *testing.T) {
	runFidelity(t, "stmts", `
GLOBALS 8
MAIN main
PROC main
  STMT 1
  LDI 5
  STOR G+0
  STMT 2
  LOAD G+0
  ADDI 1
  STOR G+1
  STMT 3
  LOAD G+1
  LOAD G+0
  MPY
  STOR G+2
  EXIT 0
ENDPROC
`)
}

func TestFidelityUCMPAndCompares(t *testing.T) {
	runFidelity(t, "ucmp", `
GLOBALS 8
MAIN main
PROC main
  LDI -1
  LDI 1
  UCMP
  BG a1
  LDI 0
  STOR G+0
  BUN n1
a1:
  LDI 1
  STOR G+0
n1:
  LDI -1
  LDI 1
  CMP
  BL a2
  LDI 0
  STOR G+1
  EXIT 0
a2:
  LDI 1
  STOR G+1
  EXIT 0
ENDPROC
`)
}

func TestAccelerateStats(t *testing.T) {
	f := tnsasm.MustAssemble("stats", `
GLOBALS 8
MAIN main
PROC helper RESULT 1 ARGS 1
  LOAD L-3
  ADDI 1
  EXIT 1
ENDPROC
PROC main
  LDI 1
  ADDS 1
  STOR S-0
  PCAL helper
  STOR G+0
  EXIT 0
ENDPROC
`)
	if err := core.Accelerate(f, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	st := f.Accel.Stats
	if st.TNSInstrs == 0 || st.RISCInstrs == 0 {
		t.Errorf("stats not collected: %+v", st)
	}
	if st.RISCInstrs < st.TNSInstrs {
		t.Errorf("expansion below 1: %d RISC for %d TNS", st.RISCInstrs, st.TNSInstrs)
	}
	if f.Accel.Level != codefile.LevelDefault {
		t.Error("level not recorded")
	}
	if len(f.Accel.Entries) != 2 || f.Accel.Entries[0] < 0 || f.Accel.Entries[1] < 0 {
		t.Errorf("entries: %v", f.Accel.Entries)
	}
}

func TestFidelityEmptyCase(t *testing.T) {
	// A CASE with an empty table always falls through.
	runFidelity(t, "emptycase", `
GLOBALS 4
MAIN main
PROC main
  LDI 2
  CASE
CASETAB
  LDI 77
  STOR G+0
  EXIT 0
ENDPROC
`)
}

func TestFidelityNegativeCaseIndex(t *testing.T) {
	runFidelity(t, "negcase", `
GLOBALS 4
MAIN main
PROC main
  LDI -1
  CASE
CASETAB a, b
  LDI 5
  STOR G+0
  EXIT 0
a:
  LDI 6
  STOR G+0
  EXIT 0
b:
  LDI 7
  STOR G+0
  EXIT 0
ENDPROC
`)
}

func TestFidelityDeepExpressionStack(t *testing.T) {
	// Seven pushes: RP wraps within the barrel.
	runFidelity(t, "deep", `
GLOBALS 4
MAIN main
PROC main
  LDI 1
  LDI 2
  LDI 3
  LDI 4
  LDI 5
  LDI 6
  LDI 7
  ADD
  ADD
  ADD
  ADD
  ADD
  ADD
  STOR G+0
  EXIT 0
ENDPROC
`)
}

func TestFidelityByteWrapAround(t *testing.T) {
	// Indexed byte addressing that wraps the 16-bit byte address: the
	// Default level truncates (matching the interpreter); Fast's contract
	// excludes such programs, so only StmtDebug/Default are compared.
	src := `
GLOBALS 16
DATA 2: 0x4142
MAIN main
PROC main
  LDI 8         ; byte pointer: 4 + 65535+9 wraps to 8... use direct cell
  STOR G+0
  LDI -4        ; negative index wraps the byte address
  LDHI 0
  DEL
  LDI 12
  LDB G+0,I,X   ; cell=8, idx=12 -> byte 20
  STOR G+1
  EXIT 0
ENDPROC
`
	runFidelity(t, "bytewrap", src)
}

// TestScaleLargeProgram pushes a large workload through translation to
// exercise PMap group anchoring, long-range branch resolution and temp
// pressure at scale.
func TestScaleLargeProgram(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	w := func() *codefile.File {
		var sb strings.Builder
		sb.WriteString("GLOBALS 64\nMAIN main\n")
		// 120 small procedures calling forward in a chain.
		for i := 0; i < 120; i++ {
			fmt.Fprintf(&sb, "PROC p%d RESULT 1 ARGS 1\n", i)
			sb.WriteString("  LOAD L-3\n  ADDI 1\n")
			if i > 0 {
				fmt.Fprintf(&sb, "  ADDS 1\n  STOR S-0\n  PCAL p%d\n", i-1)
			}
			sb.WriteString("  EXIT 1\nENDPROC\n")
		}
		sb.WriteString("PROC main\n  LDI 1\n  ADDS 1\n  STOR S-0\n  PCAL p119\n  STOR G+0\n  EXIT 0\nENDPROC\n")
		return tnsasm.MustAssemble("big", sb.String())
	}
	ref := w()
	m := interp.New(ref, nil)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	f := w()
	if err := core.Accelerate(f, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if len(f.Accel.RISC) < 1000 {
		t.Errorf("suspiciously small translation: %d words", len(f.Accel.RISC))
	}
	r, err := xrun.New(f, nil, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	compareRuns(t, m, r)
	if m.Mem[0] != 121 {
		t.Errorf("chain result = %d, want 121", m.Mem[0])
	}
}

func TestFidelityXCALIntoLibrary(t *testing.T) {
	// A PLabel with bit 15 set names a library procedure: the indirect
	// call crosses code spaces (MILLI_XCAL's library EMap path).
	runFidelityLib(t, "xcallib", `
GLOBALS 8
MAIN main
PROC main
  LDI 21
  ADDS 1
  STOR S-0
  LDI -128
  LDHI 0        ; PLabel 0x8000 = library PEP 0
  XCAL
  SETRP 0
  STOR G+0
  LDI 5
  ADDS 1
  STOR S-0
  LDI -128
  LDHI 1        ; library PEP 1, no SETRP: guessed + checked
  XCAL
  STOR G+1
  EXIT 0
ENDPROC
`, `
PROC lib_double RESULT 1 ARGS 1
  LOAD L-3
  DUP
  ADD
  EXIT 1
ENDPROC
PROC lib_square RESULT 1 ARGS 1
  LOAD L-3
  LOAD L-3
  MPY
  EXIT 1
ENDPROC
`)
}

// TestFidelityConsoleBetweenCalls pins the RP accounting of console SVCs:
// each one pops its operands, so every block leader and call return point
// downstream of a print sits one (PUTS: two) register-stack positions
// lower than a net-zero model would predict. A summary-known call after a
// PUTNUM gets no run-time RP confirmation, so a wrong static RP there
// silently reads the result from the wrong physical register.
func TestFidelityConsoleBetweenCalls(t *testing.T) {
	runFidelity(t, "svc-rp", `
GLOBALS 8
DATA 2: 0x6869   ; "hi"
MAIN main
PROC inc RESULT 1 ARGS 1
  LOAD L-3
  LDI 1
  ADD
  EXIT 1
ENDPROC
PROC main
  LDI 41
  ADDS 1
  STOR S-0
  PCAL inc
  SVC 2
  LDI 100
  ADDS 1
  STOR S-0
  PCAL inc
  SVC 2
  LDI 4
  LDI 2
  SVC 3
  LDI 99
  ADDS 1
  STOR S-0
  PCAL inc
  STOR G+0
  EXIT 0
ENDPROC
`)
}
