package core

import (
	"fmt"

	"tnsr/internal/codefile"
	"tnsr/internal/tns"
)

// WordKind classifies each word of the code segment, the result of the
// paper's "TNS Code Analysis" phase: disassembling the binary and working
// out every branch path, including sizing CASE tables by depth-first search
// so table words are never misread as instructions.
type WordKind uint8

const (
	KindUnreached WordKind = iota // never reached; treated as data
	KindInstr                     // an executed instruction
	KindTable                     // a CASE table word (count or address)
)

// program is the analyzed form of a codefile.
type program struct {
	file  *codefile.File
	opts  *Options
	kind  []WordKind
	instr []tns.Instr // decoded, valid where kind==KindInstr

	// procOf maps each code word to its procedure index (by PEP layout).
	procOf []int16

	// labels are addresses that may be entered by dynamic jumps (CASE
	// targets and statement labels); they must be register-exact.
	caseTargets map[uint16]bool

	// blockStart marks basic-block leader addresses.
	blockStart map[uint16]bool

	// rpAt gives the absolute RP before each instruction, or rpConflict /
	// rpUnreached.
	rpAt []int8

	// puzzle marks instructions that must fall into interpreter mode if
	// reached (unresolvable RP, conflicting joins, ...).
	puzzle map[uint16]string

	// rpGuard marks conflicting-RP joins where the attached profile
	// confirmed the propagated value: translation emits a run-time RP
	// guard there instead of an unconditional fallback (rp.go).
	rpGuard map[uint16]bool

	// resultWords per PEP index (-1 = unknown even after analysis; calls
	// then guess and check at run time).
	resultWords []int8
	// guessedProc marks procedures whose result size was guessed rather
	// than derived (from summaries, hints, or analysis).
	guessedProc []bool

	// callSites records, for every call instruction, the assumed result
	// size and whether a run-time RP confirmation must be emitted.
	callSites map[uint16]callSite

	// taintedProc marks procedures whose static RP can be wrong at run
	// time (they contain guessed call sites or puzzle points); all their
	// call return points carry RP confirmations.
	taintedProc []bool

	// liveOut[a] is the set of live variables (R0..R7, CC) after the
	// instruction at a.
	liveOut []uint16

	// trapsPossible is set when the codefile can enable overflow traps
	// (contains SETT 1); the Default translation then emits overflow
	// checks. StmtDebug always emits them.
	trapsPossible bool
	// trapsDynamic is set when the codefile also disables traps (SETT 0):
	// the cheap hardware-trapping translation is then unsafe and explicit
	// check sequences are used instead.
	trapsDynamic bool
}

// analyze performs flow recovery over the whole codefile.
func analyze(f *codefile.File, opts *Options) (*program, error) {
	n := len(f.Code)
	p := &program{
		file:        f,
		opts:        opts,
		kind:        make([]WordKind, n),
		instr:       make([]tns.Instr, n),
		procOf:      make([]int16, n),
		caseTargets: map[uint16]bool{},
		blockStart:  map[uint16]bool{},
		rpAt:        make([]int8, n),
		puzzle:      map[uint16]string{},
	}
	for i := range p.procOf {
		p.procOf[i] = -1
	}
	// Procedure extents: PEP entries sorted by address define bodies.
	for pi := range f.Procs {
		entry := int(f.Procs[pi].Entry)
		end := n
		for pj := range f.Procs {
			e := int(f.Procs[pj].Entry)
			if e > entry && e < end {
				end = e
			}
		}
		for a := entry; a < end; a++ {
			p.procOf[a] = int16(pi)
		}
	}

	// Depth-first reachability from every PEP entry and every statement
	// label (labels may be targets of jumps through pointer variables).
	var stack []uint16
	pushAddr := func(a uint16) {
		if int(a) < n && p.kind[a] == KindUnreached {
			stack = append(stack, a)
		}
	}
	for _, pr := range f.Procs {
		pushAddr(pr.Entry)
	}
	for _, st := range f.Statements {
		pushAddr(st.Addr)
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if int(a) >= n || p.kind[a] != KindUnreached {
			continue
		}
		w := f.Code[a]
		in := tns.Decode(w)
		p.kind[a] = KindInstr
		p.instr[a] = in

		if in.Major == tns.MajSpecial && in.Sub == tns.SubCASE {
			// The depth-first search that sizes CASE tables: the count
			// word and entries follow the instruction; every entry is a
			// code address and a register-exact target.
			if int(a)+1 >= n {
				return nil, fmt.Errorf("core: CASE at %d runs off the segment", a)
			}
			count := f.Code[a+1]
			p.kind[a+1] = KindTable
			if int(a)+1+int(count) >= n {
				return nil, fmt.Errorf("core: CASE table at %d runs off the segment", a)
			}
			for i := uint16(0); i < count; i++ {
				entryAddr := f.Code[a+2+i]
				p.kind[a+2+i] = KindTable
				p.caseTargets[entryAddr] = true
				pushAddr(entryAddr)
			}
			// Out-of-range CASE falls through past the table.
			pushAddr(a + 2 + count)
			continue
		}
		if in.Major == tns.MajSpecial && in.Sub == tns.SubSETT {
			if in.Operand&1 == 1 {
				p.trapsPossible = true
			} else {
				p.trapsDynamic = true
			}
		}
		if in.IsBranch() {
			pushAddr(in.BranchTargetAddr(a))
		}
		if !in.IsUnconditionalFlow() {
			pushAddr(a + 1)
		}
		// Calls fall through to their return point (already handled by
		// the !IsUnconditionalFlow push above); EXIT does not.
	}

	p.findBlockStarts()
	return p, nil
}

// findBlockStarts marks basic-block leaders: procedure entries, branch
// targets, instructions after branches and calls, CASE targets and
// fall-throughs, and statement labels.
func (p *program) findBlockStarts() {
	mark := func(a uint16) {
		if int(a) < len(p.kind) && p.kind[a] == KindInstr {
			p.blockStart[a] = true
		}
	}
	for _, pr := range p.file.Procs {
		mark(pr.Entry)
	}
	for a := range p.caseTargets {
		mark(a)
	}
	for _, st := range p.file.Statements {
		mark(st.Addr)
	}
	for a := 0; a < len(p.kind); a++ {
		if p.kind[a] != KindInstr {
			continue
		}
		in := p.instr[a]
		if in.IsBranch() {
			mark(in.BranchTargetAddr(uint16(a)))
			mark(uint16(a) + 1)
		}
		if in.IsCall() {
			// The return point is a register-exact re-entry point.
			mark(uint16(a) + 1)
		}
		if in.Major == tns.MajSpecial && in.Sub == tns.SubCASE {
			count := p.file.Code[a+1]
			mark(uint16(a) + 2 + count)
		}
		if in.Major == tns.MajControl && in.Ctl == tns.CtlEXIT {
			mark(uint16(a) + 1)
		}
	}
}

// succs appends the static successor addresses of the instruction at a.
// Calls report their fall-through (return) point; EXIT has none.
func (p *program) succs(a uint16, dst []uint16) []uint16 {
	in := p.instr[a]
	switch {
	case in.Major == tns.MajSpecial && in.Sub == tns.SubCASE:
		count := p.file.Code[a+1]
		for i := uint16(0); i < count; i++ {
			dst = append(dst, p.file.Code[a+2+i])
		}
		dst = append(dst, a+2+count)
		return dst
	case in.Major == tns.MajControl && in.Ctl == tns.CtlEXIT:
		return dst
	case in.Major == tns.MajSpecial && in.Sub == tns.SubSVC &&
		in.Operand == tns.SvcHalt:
		return dst
	case in.IsBranch():
		dst = append(dst, in.BranchTargetAddr(a))
		if !in.IsUnconditionalFlow() {
			dst = append(dst, a+1)
		}
		return dst
	default:
		return append(dst, a+1)
	}
}

// instrEnd returns the address just past the instruction at a, skipping an
// inline CASE table.
func (p *program) instrEnd(a uint16) uint16 {
	in := p.instr[a]
	if in.Major == tns.MajSpecial && in.Sub == tns.SubCASE {
		return a + 2 + p.file.Code[a+1]
	}
	return a + 1
}

// countKinds reports how many words are instructions vs. tables, for the
// size statistics.
func (p *program) countKinds() (instrs, tables int) {
	for _, k := range p.kind {
		switch k {
		case KindInstr:
			instrs++
		case KindTable:
			tables++
		}
	}
	return
}
