package core

import (
	"fmt"

	"tnsr/internal/risc"
	"tnsr/internal/tns"
)

// translateInstr dispatches one TNS instruction. It returns whether the
// abstract state flows through to the next address.
func (t *translator) translateInstr(addr uint16, in tns.Instr) (bool, error) {
	defer t.s.unpinAll()
	switch in.Major {
	case tns.MajLoad, tns.MajStor, tns.MajLdb, tns.MajStb,
		tns.MajLdd, tns.MajStd:
		t.transMem(addr, in)
		return true, nil
	case tns.MajControl:
		return t.transControl(addr, in)
	case tns.MajSpecial:
		return t.transSpecial(addr, in)
	}
	return false, fmt.Errorf("core: bad major at %d", addr)
}

func (t *translator) transSpecial(addr uint16, in tns.Instr) (bool, error) {
	s := t.s
	switch in.Sub {
	case tns.SubStack:
		return t.transStackOp(addr, in)

	case tns.SubLDI:
		c := int32(int16(int8(in.Operand)))
		s.pushDesc(slotDesc{kind: lConst, c: c})
		t.setCCFromConst(c)

	case tns.SubLDHI:
		if c, ok := s.constOf(s.rp); ok {
			nc := int32(int16(c<<8 | int32(in.Operand)))
			s.slot[s.rp] = slotDesc{kind: lConst, c: nc}
			break
		}
		a := s.valIn(s.rp, anyRJ)
		s.pin(a)
		r := s.allocTemp()
		t.f.shift(risc.SLL, r, a, 8)
		if in.Operand != 0 {
			t.f.imm(risc.ORI, r, r, int32(in.Operand))
		}
		s.slot[s.rp] = slotDesc{kind: lReg, reg: r, fmt: fRJU}

	case tns.SubADDI:
		t.transAdd(addr, slotDesc{kind: lConst, c: int32(int16(int8(in.Operand)))}, false)

	case tns.SubCMPI:
		c := int32(int16(int8(in.Operand)))
		a := s.valIn(s.rp, signOK)
		if c == 0 {
			s.setCCFromValue(a)
		} else {
			s.pin(a)
			b := s.materializeConst(c)
			s.setCCFromCmp(a, b, false)
		}

	case tns.SubLDRA:
		src := int(in.Operand & 7)
		// Materialize the source to its home so both copies have a clean
		// owner, then push an alias of the home register.
		s.materializeSlot(src)
		d := s.slot[src]
		if d.kind == lNone {
			s.pushDesc(slotDesc{kind: lConst, c: 0})
		} else {
			s.pushDesc(slotDesc{kind: lReg, reg: d.reg, fmt: d.fmt})
		}

	case tns.SubSTAR:
		dst := int(in.Operand & 7)
		a := s.valIn(s.rp, anyRJ|signOK|zeroOK)
		fmt_ := s.slot[s.rp].fmt
		s.pin(a)
		s.popDesc()
		// Writing one half of an existing pair splits the pair first.
		if s.slot[dst].kind == lPairHi {
			s.unpackPair((dst + 1) & 7)
		}
		if s.slot[dst].kind == lReg && s.slot[dst].pair {
			s.unpackPair(dst)
		}
		s.dropSlot(dst)
		s.slot[dst] = slotDesc{kind: lReg, reg: a, fmt: fmt_}
		s.retainTemp(a)

	case tns.SubSETRP:
		// Values stay put; only the stack position changes. Materialize
		// everything first so slot<->register correspondence is plain.
		s.canonicalize(liveAll)
		s.resetBlock(int(in.Operand & 7))

	case tns.SubADDS:
		t.f.imm(risc.ADDIU, risc.RegS, risc.RegS, 2*int32(int16(int8(in.Operand))))
		s.sGen++

	case tns.SubSVC:
		return t.transSVC(addr, in)

	case tns.SubCASE:
		t.transCase(addr, in)
		return false, nil

	case tns.SubSHL, tns.SubSHRL, tns.SubSHRA:
		t.transShift(in)

	case tns.SubANDI:
		a := s.valIn(s.rp, anyRJ)
		s.pin(a)
		r := s.allocTemp()
		t.f.imm(risc.ANDI, r, a, int32(in.Operand))
		s.slot[s.rp] = slotDesc{kind: lReg, reg: r, fmt: fRJZ}
		s.setCCFromValue(r)

	case tns.SubORI:
		a := s.valIn(s.rp, signOK|zeroOK)
		afmt := s.slot[s.rp].fmt
		s.pin(a)
		r := s.allocTemp()
		t.f.imm(risc.ORI, r, a, int32(in.Operand))
		s.slot[s.rp] = slotDesc{kind: lReg, reg: r, fmt: afmt}
		t.ccFromResult(r, afmt)

	case tns.SubLDE, tns.SubLDBE, tns.SubSTE, tns.SubSTBE:
		t.transExtended(addr, in)

	case tns.SubLGA:
		s.pushDesc(slotDesc{kind: lConst, c: int32(in.Operand)})

	case tns.SubLLA:
		r := t.lWordBase()
		s.pin(r)
		out := s.allocTemp()
		t.f.imm(risc.ADDIU, out, r, int32(int16(int8(in.Operand))))
		s.pushDesc(slotDesc{kind: lReg, reg: out, fmt: fRJZ})

	case tns.SubDSHL, tns.SubDSHRL:
		d := t.popPairPinned()
		var a uint8
		if d.kind == lConst {
			a = s.materializeConst(d.c)
		} else {
			a = d.reg
		}
		s.pin(a)
		r := s.allocTemp()
		if in.Sub == tns.SubDSHL {
			t.f.shift(risc.SLL, r, a, in.Operand&31)
		} else {
			t.f.shift(risc.SRL, r, a, in.Operand&31)
		}
		s.pushPair(slotDesc{kind: lReg, reg: r, fmt: fPAIR})
		s.setCCFromValue(r)

	case tns.SubADM:
		t.transADM(addr)

	case tns.SubLDPL:
		s.pushDesc(slotDesc{kind: lConst, c: int32(in.Operand)})

	case tns.SubSETT:
		if in.Operand&1 != 0 {
			t.f.imm(risc.ORI, risc.RegENV, risc.RegENV, 0x80)
		} else {
			t.f.imm(risc.ANDI, risc.RegENV, risc.RegENV, 0x17F)
		}

	default:
		// Undefined instruction: the interpreter traps; so do we.
		l := t.queueTrapStub(addr, tns.TrapBadOp)
		t.f.jLocal(risc.J, l)
		t.f.nop()
		return false, nil
	}
	return true, nil
}

// setCCFromConst records a known condition code.
func (t *translator) setCCFromConst(c int32) {
	s := t.s
	if s.alwaysCC {
		s.ccLive = true
	}
	if !s.ccLive {
		s.cc = ccState{kind: ccNone}
		t.f.stats.elidedFlagOps++
		return
	}
	// Load the constant's sign into a register lazily: reuse ccVal with a
	// materialized constant only when CC is genuinely consumed; cheapest is
	// to treat $zero specially.
	switch {
	case c == 0:
		s.cc = ccState{kind: ccVal, a: risc.RegZero, b: risc.RegZero}
	default:
		r := s.materializeConst(c)
		s.cc = ccState{kind: ccVal, a: r, b: r}
	}
}

// lWordBase returns a register holding L as a word address (L byte form
// shifted right), cached per block.
func (t *translator) lWordBase() uint8 {
	s := t.s
	k := vkey{kind: 'L', gen: 0, sgen: s.sGen}
	if r, ok := s.lookupVT(k); ok {
		return r
	}
	r := s.allocTemp()
	t.f.shift(risc.SRL, r, risc.RegL, 1)
	s.storeVT(k, r)
	return r
}

// transShift handles SHL/SHRL/SHRA with constant folding.
func (t *translator) transShift(in tns.Instr) {
	s := t.s
	n := in.Operand & 15
	if c, ok := s.constOf(s.rp); ok {
		var nc int32
		switch in.Sub {
		case tns.SubSHL:
			nc = int32(int16(c << n))
		case tns.SubSHRL:
			nc = int32(int16(uint16(c) >> n))
		default:
			nc = int32(int16(c) >> n)
		}
		s.slot[s.rp] = slotDesc{kind: lConst, c: nc}
		t.setCCFromConst(nc)
		return
	}
	var a uint8
	var op risc.Op
	var outFmt fmtKind
	switch in.Sub {
	case tns.SubSHL:
		a = s.valIn(s.rp, anyRJ)
		op, outFmt = risc.SLL, fRJU
	case tns.SubSHRL:
		a = s.valIn(s.rp, zeroOK)
		op, outFmt = risc.SRL, fRJZ
	default:
		a = s.valIn(s.rp, signOK)
		op, outFmt = risc.SRA, fRJS
	}
	s.pin(a)
	r := s.allocTemp()
	t.f.shift(op, r, a, n)
	s.slot[s.rp] = slotDesc{kind: lReg, reg: r, fmt: outFmt}
	t.ccFromResult(r, outFmt)
}

// ccFromResult sets CC from a result register, normalizing RJU first.
func (t *translator) ccFromResult(r uint8, f fmtKind) {
	s := t.s
	if s.alwaysCC {
		s.ccLive = true
	}
	if !s.ccLive {
		s.cc = ccState{kind: ccNone}
		t.f.stats.elidedFlagOps++
		return
	}
	switch f {
	case fRJS, fRJZ, fPAIR, fLJ:
		// Sign and zeroness of the 32-bit register value match the TNS
		// result (RJZ values are non-negative 16-bit quantities... which
		// is wrong for values with bit 15 set; normalize those too).
		if f == fRJZ {
			// A zero-filled value can still have bit 15 set; CC must see
			// it as negative. Normalize.
			n := s.allocTemp()
			s.f.shift(risc.SLL, n, r, 16)
			s.f.shift(risc.SRA, n, n, 16)
			s.cc = ccState{kind: ccVal, a: n, b: n}
			return
		}
		s.cc = ccState{kind: ccVal, a: r, b: r}
	default: // fRJU
		n := s.allocTemp()
		s.f.shift(risc.SLL, n, r, 16)
		s.f.shift(risc.SRA, n, n, 16)
		s.cc = ccState{kind: ccVal, a: n, b: n}
	}
}

// transAdd implements ADD/SUB/ADDI: pop b (or use the given immediate
// descriptor), pop a, push the sum/difference with overflow handling per
// the option level.
func (t *translator) transAdd(addr uint16, bDesc slotDesc, sub bool) {
	s := t.s
	var b slotDesc
	if bDesc.kind != lNone {
		b = bDesc
		// ADDI: a is the top (popped in place).
	} else {
		b = s.popDesc()
	}
	a := s.popDesc()

	// Constant folding, the disappearing literals.
	if a.kind == lConst && b.kind == lConst {
		a16, b16 := int32(int16(a.c)), int32(int16(b.c))
		var r32 int32
		if sub {
			r32 = a16 - b16
		} else {
			r32 = a16 + b16
		}
		r16 := int32(int16(r32))
		if r16 == r32 || !t.trapsChecked() {
			s.pushDesc(slotDesc{kind: lConst, c: r16})
			t.setCCFromConst(r16)
			return
		}
		// Constant overflow with traps possible: run it for real.
	}

	s.restoreTwo(a, b)
	if t.trapsChecked() {
		// The paper's scheme: shift the operands into left-justified
		// format, where the hardware's trapping 32-bit add IS a trapping
		// 16-bit add (MIPS lacks a direct 16-bit overflow trap).
		aR := s.valIn((s.rp-1+8)&7, 1<<fLJ)
		s.pin(aR)
		bR := s.valIn(s.rp, 1<<fLJ)
		s.pin(bR)
		s.popDesc()
		s.popDesc()
		r := s.allocTemp()
		s.pin(r)
		if !t.hwTrapOK() {
			// Traps toggle at run time: explicit check, trap only if
			// ENV.T is set when it fires.
			op := risc.ADDU
			if sub {
				op = risc.SUBU
			}
			t.f.alu(op, r, aR, bR)
			t1 := s.allocTemp()
			s.pin(t1)
			t2 := s.allocTemp()
			t.f.alu(risc.XOR, t1, r, aR)
			t.f.alu(risc.XOR, t2, r, bR)
			if sub {
				t.f.alu(risc.XOR, t2, aR, bR)
			}
			t.f.alu(risc.AND, t1, t1, t2)
			back := t.f.newLabel()
			ovf := t.queueOvfStub(addr, back)
			t.f.br(risc.BLTZ, t1, 0, ovf)
			t.f.nop()
			t.f.bind(back)
		} else {
			op := risc.ADD
			if sub {
				op = risc.SUB
			}
			t.f.alu(op, r, aR, bR)
		}
		s.pushDesc(slotDesc{kind: lReg, reg: r, fmt: fLJ})
		t.ccFromResult(r, fLJ)
		return
	}

	// No overflow tracking: cheapest forms.
	if bc, ok := descConst(b); ok && bc >= -32768 && bc <= 32767 {
		s.popDesc() // the constant operand disappears
		aR := s.valIn(s.rp, anyRJ)
		s.pin(aR)
		s.popDesc()
		r := s.allocTemp()
		c := bc
		if sub {
			c = -c
		}
		t.f.imm(risc.ADDIU, r, aR, c)
		s.pushDesc(slotDesc{kind: lReg, reg: r, fmt: fRJU})
		t.ccFromResult(r, fRJU)
		return
	}
	aR := s.valIn((s.rp-1+8)&7, anyRJ)
	s.pin(aR)
	bR := s.valIn(s.rp, anyRJ)
	s.pin(bR)
	s.popDesc()
	s.popDesc()
	r := s.allocTemp()
	op := risc.ADDU
	if sub {
		op = risc.SUBU
	}
	t.f.alu(op, r, aR, bR)
	s.pushDesc(slotDesc{kind: lReg, reg: r, fmt: fRJU})
	t.ccFromResult(r, fRJU)
}

// restoreTwo puts two popped descriptors back (a below b) so valIn can
// track them by slot index.
func (s *state) restoreTwo(a, b slotDesc) {
	s.pushDesc(a)
	s.pushDesc(b)
}

func descConst(d slotDesc) (int32, bool) {
	if d.kind == lConst {
		return int32(int16(d.c)), true
	}
	return 0, false
}
