package core

import (
	"tnsr/internal/millicode"
	"tnsr/internal/risc"
	"tnsr/internal/tns"
)

// transStackOp translates the zero-operand register-stack operations.
func (t *translator) transStackOp(addr uint16, in tns.Instr) (bool, error) {
	s := t.s
	f := t.f
	switch in.Operand {
	case tns.OpNOP:

	case tns.OpADD:
		t.transAdd(addr, slotDesc{}, false)
	case tns.OpSUB:
		t.transAdd(addr, slotDesc{}, true)

	case tns.OpMPY:
		t.transMPY(addr)
	case tns.OpDIV, tns.OpMOD:
		t.transDIV(addr, in.Operand == tns.OpMOD, false)

	case tns.OpNEG:
		a := s.valIn(s.rp, signOK)
		s.pin(a)
		if t.trapsChecked() {
			// -32768 negates to itself and overflows.
			back := f.newLabel()
			ovf := t.queueOvfStub(addr, back)
			tr := s.allocTemp()
			f.imm(risc.ADDIU, tr, risc.RegZero, -32768)
			f.br(risc.BEQ, a, tr, ovf)
			f.nop()
			f.bind(back)
		}
		r := s.allocTemp()
		f.alu(risc.SUBU, r, risc.RegZero, a)
		fmtOut := fRJU
		if t.trapsChecked() {
			fmtOut = fRJS // -32768 excluded, so the negation stays in range
		}
		s.slot[s.rp] = slotDesc{kind: lReg, reg: r, fmt: fmtOut}
		t.ccFromResult(r, fmtOut)

	case tns.OpLAND, tns.OpLOR, tns.OpXOR:
		t.transLogic(in.Operand)

	case tns.OpNOT:
		a := s.valIn(s.rp, signOK)
		s.pin(a)
		r := s.allocTemp()
		f.alu(risc.NOR, r, a, risc.RegZero)
		s.slot[s.rp] = slotDesc{kind: lReg, reg: r, fmt: fRJS}
		t.ccFromResult(r, fRJS)

	case tns.OpCMP:
		b := s.valIn(s.rp, signOK)
		s.pin(b)
		a := s.valIn(s.rp-1, signOK)
		s.pin(a)
		s.popDesc()
		s.popDesc()
		s.setCCFromCmp(a, b, false)
	case tns.OpUCMP:
		b := s.valIn(s.rp, zeroOK)
		s.pin(b)
		a := s.valIn(s.rp-1, zeroOK)
		s.pin(a)
		s.popDesc()
		s.popDesc()
		s.setCCFromCmp(a, b, true)

	case tns.OpDADD:
		t.transDAdd(addr, false)
	case tns.OpDSUB:
		t.transDAdd(addr, true)

	case tns.OpDNEG:
		d := t.popPairPinned()
		a := t.pairReg(d)
		s.pin(a)
		if t.trapsChecked() {
			back := f.newLabel()
			ovf := t.queueOvfStub(addr, back)
			tr := s.allocTemp()
			f.li(tr, -2147483648)
			f.br(risc.BEQ, a, tr, ovf)
			f.nop()
			f.bind(back)
		}
		r := s.allocTemp()
		f.alu(risc.SUBU, r, risc.RegZero, a)
		s.pushPair(slotDesc{kind: lReg, reg: r, fmt: fPAIR})
		s.setCCFromValue(r)

	case tns.OpDCMP:
		bd := t.popPairPinned()
		b := t.pairReg(bd)
		s.pin(b)
		ad := t.popPairPinned()
		a := t.pairReg(ad)
		s.pin(a)
		s.setCCFromCmp(a, b, false)

	case tns.OpDTST:
		a := t.pairPeek()
		s.setCCFromValue(a)

	case tns.OpDUP:
		a := s.valIn(s.rp, anyRJ|signOK|zeroOK)
		fmt_ := s.slot[s.rp].fmt
		s.pushDesc(slotDesc{kind: lReg, reg: a, fmt: fmt_})

	case tns.OpDDUP:
		a := t.pairPeek()
		s.pushPair(slotDesc{kind: lReg, reg: a, fmt: fPAIR})

	case tns.OpDEL:
		// Splitting a pair just to discard half would be wasted code.
		if s.slot[s.rp].kind == lPairHi {
			s.unpackPair((s.rp + 1) & 7)
		}
		if s.slot[s.rp].pair {
			s.unpackPair(s.rp)
		}
		s.popDesc()

	case tns.OpDDEL:
		if s.slot[s.rp].pair {
			s.dropSlot(s.rp)
			s.rp = (s.rp - 1) & 7
			s.dropSlot(s.rp)
			s.rp = (s.rp - 1) & 7
		} else {
			if s.slot[s.rp].kind == lPairHi {
				s.unpackPair((s.rp + 1) & 7)
			}
			s.popDesc()
			if s.slot[s.rp].pair {
				s.unpackPair(s.rp)
			}
			if s.slot[s.rp].kind == lPairHi {
				s.unpackPair((s.rp + 1) & 7)
			}
			s.popDesc()
		}

	case tns.OpEXCH:
		// Pure bookkeeping: swap the two descriptors. Pairs split first.
		if s.slot[s.rp].pair || s.slot[s.rp].kind == lPairHi {
			s.valIn(s.rp, anyRJ)
		}
		below := (s.rp - 1 + 8) & 7
		if s.slot[below].pair || s.slot[below].kind == lPairHi {
			s.valIn(below, anyRJ)
		}
		s.slot[s.rp], s.slot[below] = s.slot[below], s.slot[s.rp]

	case tns.OpXCAL:
		t.transXCAL(addr)
		return false, nil

	case tns.OpMOVB, tns.OpMOVW:
		t.transMove(addr, in.Operand)
	case tns.OpCMPB:
		t.transCMPB(addr)
	case tns.OpSCNB:
		t.transSCNB(addr)

	case tns.OpDMPY:
		t.transDMPY(addr)
	case tns.OpDDIV:
		t.transDIV(addr, false, true)

	case tns.OpSWAB:
		a := s.valIn(s.rp, zeroOK)
		s.pin(a)
		r := s.allocTemp()
		s.pin(r)
		t2 := s.allocTemp()
		f.shift(risc.SRL, r, a, 8)
		f.shift(risc.SLL, t2, a, 8)
		f.alu(risc.OR, r, r, t2)
		s.slot[s.rp] = slotDesc{kind: lReg, reg: r, fmt: fRJU}
		t.ccFromResult(r, fRJU)

	case tns.OpCTOD:
		// A sign-extended 16-bit value is already a correct 32-bit pair:
		// the paper's pair packing makes this free.
		d := s.popDesc()
		if d.kind == lConst {
			s.pushPair(slotDesc{kind: lConst, c: int32(int16(d.c)), pair: true})
			break
		}
		s.restoreOne(d)
		a := s.valIn(s.rp, signOK)
		s.popDesc()
		s.retainTemp(a)
		s.pushPair(slotDesc{kind: lReg, reg: a, fmt: fPAIR})

	case tns.OpDTOC:
		d := t.popPairPinned()
		if d.kind == lConst {
			lo := int32(int16(d.c))
			s.pushDesc(slotDesc{kind: lConst, c: lo})
			t.setCCFromConst(lo)
			if t.trapsChecked() && d.c != lo {
				// Constant narrowing overflow: trap if T is on.
				back := f.newLabel()
				ovf := t.queueOvfStub(addr, back)
				f.jLocal(risc.J, ovf)
				f.nop()
				f.bind(back)
			}
			break
		}
		a := d.reg
		s.pin(a)
		if t.trapsChecked() {
			back := f.newLabel()
			ovf := t.queueOvfStub(addr, back)
			tr := s.allocTemp()
			f.shift(risc.SLL, tr, a, 16)
			f.shift(risc.SRA, tr, tr, 16)
			f.br(risc.BNE, tr, a, ovf)
			f.nop()
			f.bind(back)
		}
		s.retainTemp(a)
		s.pushDesc(slotDesc{kind: lReg, reg: a, fmt: fRJU})
		t.ccFromResult(a, fRJU)

	default:
		l := t.queueTrapStub(addr, tns.TrapBadOp)
		f.jLocal(risc.J, l)
		f.nop()
		return false, nil
	}
	return true, nil
}

// restoreOne pushes a popped descriptor back.
func (s *state) restoreOne(d slotDesc) { s.pushDesc(d) }

// pairPeek returns a register holding the top pair's 32-bit value without
// consuming it, packing two independently pushed halves if needed.
func (t *translator) pairPeek() uint8 {
	s := t.s
	if s.slot[s.rp].pair {
		return s.valIn(s.rp, pairOK)
	}
	d := t.popPairPinned()
	if d.kind == lConst {
		s.pushPair(slotDesc{kind: lConst, c: d.c, pair: true})
		return t.pairReg(s.slot[s.rp])
	}
	s.retainTemp(d.reg)
	s.pushPair(slotDesc{kind: lReg, reg: d.reg, fmt: fPAIR})
	return d.reg
}

// popPairPinned pops a pair and immediately pins its register so later
// temporary allocations (constant materialization, the second operand's
// packing) cannot steal it.
func (t *translator) popPairPinned() slotDesc {
	d := t.s.popPair()
	if d.kind == lReg {
		t.s.pin(d.reg)
	}
	return d
}

// pairReg returns a register holding the pair descriptor's 32-bit value.
func (t *translator) pairReg(d slotDesc) uint8 {
	if d.kind == lConst {
		return t.s.materializeConst(d.c)
	}
	t.s.touchTemp(d.reg)
	return d.reg
}

// transLogic handles LAND/LOR/XOR: sign-extension is closed under the
// bitwise operations, so matching formats pass through.
func (t *translator) transLogic(op uint8) {
	s := t.s
	b := s.valIn(s.rp, signOK)
	s.pin(b)
	a := s.valIn(s.rp-1, signOK)
	s.pin(a)
	s.popDesc()
	s.popDesc()
	r := s.allocTemp()
	var rop risc.Op
	switch op {
	case tns.OpLAND:
		rop = risc.AND
	case tns.OpLOR:
		rop = risc.OR
	default:
		rop = risc.XOR
	}
	t.f.alu(rop, r, a, b)
	s.pushDesc(slotDesc{kind: lReg, reg: r, fmt: fRJS})
	t.ccFromResult(r, fRJS)
}

// transMPY: low word of the product, with constant strength reduction and
// optional overflow checking.
func (t *translator) transMPY(addr uint16) {
	s := t.s
	f := t.f
	b := s.popDesc()
	a := s.popDesc()
	// Strength-reduce constant multipliers (the paper's final phase does
	// this; doing it at selection keeps HI/LO free).
	if !t.trapsChecked() {
		if c, ok := descConst(b); ok {
			if t.mulConst(a, c) {
				return
			}
		} else if c, ok := descConst(a); ok {
			if t.mulConst(b, c) {
				return
			}
		}
	}
	s.restoreTwo(a, b)
	aR := s.valIn(s.rp-1, anyRJ)
	s.pin(aR)
	bR := s.valIn(s.rp, anyRJ)
	s.pin(bR)
	s.popDesc()
	s.popDesc()
	f.add(rinst{op: risc.MULT, rs: aR, rt: bR, lbl: noLabel, jLbl: noLabel})
	r := s.allocTemp()
	f.add(rinst{op: risc.MFLO, rd: r, lbl: noLabel, jLbl: noLabel})
	if t.trapsChecked() {
		// The full product of 16-bit operands is exact in 32 bits (the
		// operands must be sign-correct for that, so normalize them).
		// Overflow iff the product is not a sign-extended 16-bit value.
		back := f.newLabel()
		ovf := t.queueOvfStub(addr, back)
		s.pin(r)
		tr := s.allocTemp()
		f.shift(risc.SLL, tr, r, 16)
		f.shift(risc.SRA, tr, tr, 16)
		f.br(risc.BNE, tr, r, ovf)
		f.nop()
		f.bind(back)
	}
	s.pushDesc(slotDesc{kind: lReg, reg: r, fmt: fRJU})
	t.ccFromResult(r, fRJU)
}

// mulConst strength-reduces multiplication by small constants; reports
// whether it emitted anything. The value descriptor a has been popped.
func (t *translator) mulConst(a slotDesc, c int32) bool {
	s := t.s
	if ac, ok := descConst(a); ok {
		r := int32(int16(ac * c))
		s.pushDesc(slotDesc{kind: lConst, c: r})
		t.setCCFromConst(r)
		return true
	}
	neg := false
	uc := c
	if uc < 0 {
		uc, neg = -uc, true
	}
	type plan struct{ sh1, sh2 int8 } // value = (a<<sh1) +/- (a<<sh2)
	var pl plan
	switch {
	case uc == 0:
		s.pushDesc(slotDesc{kind: lConst, c: 0})
		t.setCCFromConst(0)
		return true
	case uc == 1:
		pl = plan{0, -1}
	case isPow2(uc):
		pl = plan{int8(log2(uc)), -1}
	case isPow2(uc - 1):
		pl = plan{int8(log2(uc - 1)), 0} // a<<k + a
	case isPow2(uc + 1):
		pl = plan{int8(log2(uc + 1)), -2} // a<<k - a
	default:
		return false
	}
	s.restoreOne(a)
	aR := s.valIn(s.rp, anyRJ)
	s.pin(aR)
	s.popDesc()
	r := s.allocTemp()
	switch {
	case pl.sh1 == 0 && pl.sh2 == -1:
		t.f.move(r, aR)
	case pl.sh2 == -1:
		t.f.shift(risc.SLL, r, aR, uint8(pl.sh1))
	case pl.sh2 == 0:
		t.f.shift(risc.SLL, r, aR, uint8(pl.sh1))
		t.f.alu(risc.ADDU, r, r, aR)
	case pl.sh2 == -2:
		t.f.shift(risc.SLL, r, aR, uint8(pl.sh1))
		t.f.alu(risc.SUBU, r, r, aR)
	}
	if neg {
		t.f.alu(risc.SUBU, r, risc.RegZero, r)
	}
	s.pushDesc(slotDesc{kind: lReg, reg: r, fmt: fRJU})
	t.ccFromResult(r, fRJU)
	return true
}

func isPow2(v int32) bool { return v > 0 && v&(v-1) == 0 }

func log2(v int32) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// transDIV handles DIV/MOD (16-bit) and DDIV (32-bit): divide-by-zero is
// always checked (the interpreter traps); the overflow case only under
// checked translation.
func (t *translator) transDIV(addr uint16, mod bool, wide bool) {
	s := t.s
	f := t.f
	var aR, bR uint8
	if wide {
		bd := t.popPairPinned()
		bR = t.pairReg(bd)
		s.pin(bR)
		ad := t.popPairPinned()
		aR = t.pairReg(ad)
		s.pin(aR)
	} else {
		bR = s.valIn(s.rp, signOK)
		s.pin(bR)
		aR = s.valIn(s.rp-1, signOK)
		s.pin(aR)
		s.popDesc()
		s.popDesc()
	}
	dz := t.queueTrapStub(addr, tns.TrapDivZero)
	f.br(risc.BEQ, bR, risc.RegZero, dz)
	f.nop()
	if t.trapsChecked() && !mod {
		// Overflow: most-negative / -1.
		back := f.newLabel()
		ovf := t.queueOvfStub(addr, back)
		tr := s.allocTemp()
		if wide {
			f.li(tr, -2147483648)
		} else {
			f.imm(risc.ADDIU, tr, risc.RegZero, -32768)
		}
		skip := f.newLabel()
		f.br(risc.BNE, aR, tr, skip)
		f.nop()
		f.imm(risc.ADDIU, tr, risc.RegZero, -1)
		f.br(risc.BEQ, bR, tr, ovf)
		f.nop()
		f.bind(skip)
		f.bind(back)
	}
	f.add(rinst{op: risc.DIV, rs: aR, rt: bR, lbl: noLabel, jLbl: noLabel})
	r := s.allocTemp()
	op := risc.MFLO
	if mod {
		op = risc.MFHI
	}
	f.add(rinst{op: op, rd: r, lbl: noLabel, jLbl: noLabel})
	if wide {
		s.pushPair(slotDesc{kind: lReg, reg: r, fmt: fPAIR})
		s.setCCFromValue(r)
	} else {
		s.pushDesc(slotDesc{kind: lReg, reg: r, fmt: fRJS})
		t.ccFromResult(r, fRJS)
	}
}

// transDAdd: 32-bit add/subtract on packed pairs — one RISC instruction,
// the payoff of undoing the 16-bit splitting.
func (t *translator) transDAdd(addr uint16, sub bool) {
	s := t.s
	f := t.f
	bd := t.popPairPinned()
	ad := t.popPairPinned()
	if ad.kind == lConst && bd.kind == lConst {
		var r int64
		if sub {
			r = int64(ad.c) - int64(bd.c)
		} else {
			r = int64(ad.c) + int64(bd.c)
		}
		if int64(int32(r)) == r || !t.trapsChecked() {
			s.pushPair(slotDesc{kind: lConst, c: int32(r), pair: true})
			t.setCCFromConst32(int32(r))
			return
		}
	}
	bR := t.pairReg(bd)
	s.pin(bR)
	aR := t.pairReg(ad)
	s.pin(aR)
	r := s.allocTemp()
	s.pin(r)
	if t.trapsChecked() && t.hwTrapOK() {
		// 32-bit pairs trap directly on the hardware add/subtract.
		op := risc.ADD
		if sub {
			op = risc.SUB
		}
		f.alu(op, r, aR, bR)
	} else {
		op := risc.ADDU
		if sub {
			op = risc.SUBU
		}
		f.alu(op, r, aR, bR)
		if t.trapsChecked() {
			back := f.newLabel()
			ovf := t.queueOvfStub(addr, back)
			t1 := s.allocTemp()
			s.pin(t1)
			t2 := s.allocTemp()
			f.alu(risc.XOR, t1, r, aR)
			if sub {
				f.alu(risc.XOR, t2, aR, bR)
			} else {
				f.alu(risc.XOR, t2, r, bR)
			}
			f.alu(risc.AND, t1, t1, t2)
			f.br(risc.BLTZ, t1, 0, ovf)
			f.nop()
			f.bind(back)
		}
	}
	s.pushPair(slotDesc{kind: lReg, reg: r, fmt: fPAIR})
	s.setCCFromValue(r)
}

// setCCFromConst32 records CC for a 32-bit constant result.
func (t *translator) setCCFromConst32(c int32) {
	s := t.s
	if !s.ccLive {
		s.cc = ccState{kind: ccNone}
		t.f.stats.elidedFlagOps++
		return
	}
	if c == 0 {
		s.cc = ccState{kind: ccVal, a: risc.RegZero, b: risc.RegZero}
		return
	}
	r := s.materializeConst(c)
	s.cc = ccState{kind: ccVal, a: r, b: r}
}

// transDMPY: 32-bit multiply of pairs.
func (t *translator) transDMPY(addr uint16) {
	s := t.s
	f := t.f
	bd := t.popPairPinned()
	bR := t.pairReg(bd)
	s.pin(bR)
	ad := t.popPairPinned()
	aR := t.pairReg(ad)
	s.pin(aR)
	f.add(rinst{op: risc.MULT, rs: aR, rt: bR, lbl: noLabel, jLbl: noLabel})
	r := s.allocTemp()
	f.add(rinst{op: risc.MFLO, rd: r, lbl: noLabel, jLbl: noLabel})
	if t.trapsChecked() {
		// Overflow iff HI is not the sign extension of LO.
		back := f.newLabel()
		ovf := t.queueOvfStub(addr, back)
		s.pin(r)
		h := s.allocTemp()
		s.pin(h)
		f.add(rinst{op: risc.MFHI, rd: h, lbl: noLabel, jLbl: noLabel})
		tr := s.allocTemp()
		f.shift(risc.SRA, tr, r, 31)
		f.br(risc.BNE, h, tr, ovf)
		f.nop()
		f.bind(back)
	}
	s.pushPair(slotDesc{kind: lReg, reg: r, fmt: fPAIR})
	s.setCCFromValue(r)
}

// transMove translates MOVB/MOVW as a millicode call: a temporary barrier.
func (t *translator) transMove(addr uint16, op uint8) {
	s := t.s
	f := t.f
	// Operands were pushed src, dst, count; top is count.
	cnt := s.valIn(s.rp, anyRJ)
	s.pin(cnt)
	s.popDesc()
	dst := s.valIn(s.rp, zeroOK)
	s.pin(dst)
	s.popDesc()
	src := s.valIn(s.rp, zeroOK)
	s.pin(src)
	s.popDesc()
	t.milliBarrier()
	t.argMoves([]uint8{risc.RegT0, risc.RegT0 + 1, risc.RegT0 + 2},
		[]uint8{src, dst, cnt})
	lbl := millicode.LMovb
	if op == tns.OpMOVW {
		lbl = millicode.LMovw
	}
	f.jAbs(risc.JAL, t.opts.MilliLabels[lbl])
	f.nop()
	t.afterMilli()
	s.invalidateLoads(true)
}

func (t *translator) transCMPB(addr uint16) {
	s := t.s
	f := t.f
	cnt := s.valIn(s.rp, zeroOK)
	s.pin(cnt)
	s.popDesc()
	b := s.valIn(s.rp, zeroOK)
	s.pin(b)
	s.popDesc()
	a := s.valIn(s.rp, zeroOK)
	s.pin(a)
	s.popDesc()
	t.milliBarrier()
	t.argMoves([]uint8{risc.RegT0, risc.RegT0 + 1, risc.RegT0 + 2},
		[]uint8{a, b, cnt})
	f.jAbs(risc.JAL, t.opts.MilliLabels[millicode.LCmpb])
	f.nop()
	t.afterMilli()
	s.cc = ccState{kind: ccIn}
}

func (t *translator) transSCNB(addr uint16) {
	s := t.s
	f := t.f
	limit := s.valIn(s.rp, zeroOK)
	s.pin(limit)
	s.popDesc()
	test := s.valIn(s.rp, zeroOK)
	s.pin(test)
	s.popDesc()
	ba := s.valIn(s.rp, zeroOK)
	s.pin(ba)
	s.popDesc()
	t.milliBarrier()
	t.argMoves([]uint8{risc.RegT0, risc.RegT0 + 1, risc.RegT0 + 2},
		[]uint8{ba, test, limit})
	f.jAbs(risc.JAL, t.opts.MilliLabels[millicode.LScnb])
	f.nop()
	t.afterMilli()
	// Result (skip count) arrives in $t0.
	s.tempBusy[0] = true
	s.pushDesc(slotDesc{kind: lReg, reg: risc.RegT0, fmt: fRJZ})
	s.cc = ccState{kind: ccIn}
}

// milliBarrier materializes all slot state out of the temporaries (and the
// symbolic CC if live) because millicode clobbers every temporary.
func (t *translator) milliBarrier() {
	s := t.s
	for i := 0; i < 8; i++ {
		d := s.slot[i]
		if d.kind == lReg && d.reg >= risc.RegT0 && d.reg < risc.RegT0+risc.NumTemp {
			if d.pair {
				// Keep the pair packed but move it home (the home takes
				// the full 32-bit value; canonical unpacking happens at
				// exact points).
				home := homeOf(i)
				s.writeBarrier(home, i)
				s.f.move(home, d.reg)
				s.slot[i].reg = home
			} else {
				s.materializeSlot(i)
			}
		}
	}
	if s.cc.kind == ccVal || s.cc.kind == ccCmp {
		s.materializeCC()
	}
}

// afterMilli resets temporary tracking and the value table.
func (t *translator) afterMilli() {
	s := t.s
	for i := range s.tempBusy {
		s.tempBusy[i] = false
	}
	s.vt = map[vkey]vval{}
	s.memGen++
	s.ptrGen++
}

// argMoves shuffles values into fixed argument registers, using $mt as the
// spare to break cycles.
func (t *translator) argMoves(dsts, srcs []uint8) {
	f := t.f
	pending := make([]int, 0, len(dsts))
	for i := range dsts {
		if dsts[i] != srcs[i] {
			pending = append(pending, i)
		}
	}
	for len(pending) > 0 {
		progressed := false
		for k := 0; k < len(pending); k++ {
			i := pending[k]
			// Safe if no other pending move still reads dsts[i].
			conflict := false
			for _, j := range pending {
				if j != i && srcs[j] == dsts[i] {
					conflict = true
					break
				}
			}
			if !conflict {
				f.move(dsts[i], srcs[i])
				pending = append(pending[:k], pending[k+1:]...)
				progressed = true
				k--
			}
		}
		if !progressed {
			// A cycle: rotate through $mt.
			i := pending[0]
			f.move(risc.RegMT, srcs[i])
			srcs[i] = risc.RegMT
		}
	}
}

// transExtended: 32-bit extended addressing. Slow and checked, exactly as
// the paper laments.
func (t *translator) transExtended(addr uint16, in tns.Instr) {
	s := t.s
	f := t.f
	ad := t.popPairPinned()
	aR := t.pairReg(ad)
	s.pin(aR)

	bad := t.queueTrapStub(addr, tns.TrapAddress)
	switch in.Sub {
	case tns.SubLDE:
		// Word access: word index = addr>>1, bounds then scale back.
		w := s.allocTemp()
		s.pin(w)
		f.shift(risc.SRL, w, aR, 1)
		chk := s.allocTemp()
		f.shift(risc.SRL, chk, w, 16)
		f.br(risc.BNE, chk, risc.RegZero, bad)
		f.nop()
		f.shift(risc.SLL, w, w, 1)
		r := s.allocTemp()
		f.mem(risc.LH, r, w, 0)
		s.pushDesc(slotDesc{kind: lReg, reg: r, fmt: fRJS})
		s.setCCFromValue(r)
	case tns.SubSTE:
		v := s.valIn(s.rp, anyRJ)
		s.pin(v)
		s.popDesc()
		w := s.allocTemp()
		s.pin(w)
		f.shift(risc.SRL, w, aR, 1)
		chk := s.allocTemp()
		f.shift(risc.SRL, chk, w, 16)
		f.br(risc.BNE, chk, risc.RegZero, bad)
		f.nop()
		f.shift(risc.SLL, w, w, 1)
		f.mem(risc.SH, v, w, 0)
		s.invalidateLoads(true)
	case tns.SubLDBE:
		chk := s.allocTemp()
		f.shift(risc.SRL, chk, aR, 17)
		f.br(risc.BNE, chk, risc.RegZero, bad)
		f.nop()
		r := s.allocTemp()
		f.mem(risc.LBU, r, aR, 0)
		s.pushDesc(slotDesc{kind: lReg, reg: r, fmt: fRJZ})
		s.setCCFromValue(r)
	case tns.SubSTBE:
		v := s.valIn(s.rp, anyRJ)
		s.pin(v)
		s.popDesc()
		chk := s.allocTemp()
		f.shift(risc.SRL, chk, aR, 17)
		f.br(risc.BNE, chk, risc.RegZero, bad)
		f.nop()
		f.mem(risc.SB, v, aR, 0)
		s.invalidateLoads(!t.fast())
	}
}

// transADM: add to memory. The atomic-marked form would use an interlocked
// sequence on multiprocessor hardware; the uniprocessor simulator makes the
// plain sequence atomic already, so both forms share code (and cycles
// reflect the extra read-modify-write).
func (t *translator) transADM(addr uint16) {
	s := t.s
	f := t.f
	aR := s.valIn(s.rp, zeroOK)
	s.pin(aR)
	s.popDesc()
	v := s.valIn(s.rp, anyRJ)
	s.pin(v)
	s.popDesc()
	ba := s.allocTemp()
	s.pin(ba)
	f.shift(risc.SLL, ba, aR, 1)
	old := s.allocTemp()
	s.pin(old)
	f.mem(risc.LH, old, ba, 0)
	r := s.allocTemp()
	s.pin(r)
	if t.trapsChecked() {
		lj1 := s.allocTemp()
		s.pin(lj1)
		lj2 := s.allocTemp()
		s.pin(lj2)
		f.shift(risc.SLL, lj1, old, 16)
		f.shift(risc.SLL, lj2, v, 16)
		f.alu(risc.ADDU, r, lj1, lj2)
		back := f.newLabel()
		ovf := t.queueOvfStub(addr, back)
		t1 := s.allocTemp()
		s.pin(t1)
		t2 := s.allocTemp()
		f.alu(risc.XOR, t1, r, lj1)
		f.alu(risc.XOR, t2, r, lj2)
		f.alu(risc.AND, t1, t1, t2)
		f.br(risc.BLTZ, t1, 0, ovf)
		f.nop()
		f.bind(back)
		f.shift(risc.SRA, r, r, 16)
	} else {
		f.alu(risc.ADDU, r, old, v)
	}
	f.mem(risc.SH, r, ba, 0)
	s.invalidateLoads(true)
	t.ccFromResult(r, fRJU)
}
