package core_test

import (
	"fmt"
	"strings"
	"testing"

	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/risc"
	"tnsr/internal/tnsasm"
	"tnsr/internal/xrun"
)

const fibSrc = `
GLOBALS 8
MAIN main
PROC fib RESULT 1 ARGS 1
  ADDS 1
  LOAD L-3
  LDI 2
  CMP
  BGE rec
  LOAD L-3
  EXIT 1
rec:
  LOAD L-3
  ADDI -1
  ADDS 1
  STOR S-0
  PCAL fib
  STOR L+1
  LOAD L-3
  ADDI -2
  ADDS 1
  STOR S-0
  PCAL fib
  LOAD L+1
  ADD
  EXIT 1
ENDPROC
PROC main
  LDI 3
  ADDS 1
  STOR S-0
  PCAL fib
  STOR G+0
  EXIT 0
ENDPROC
`

// TestTranslationListing sanity-checks the shape of a small translation:
// the prologue builds the marker, calls become direct jumps, EXIT goes
// through millicode, and the listing disassembles cleanly.
func TestTranslationListing(t *testing.T) {
	f := tnsasm.MustAssemble("fib", fibSrc)
	if err := core.Accelerate(f, core.Options{Level: 3 /* Fast */}); err != nil {
		t.Fatal(err)
	}
	var listing strings.Builder
	for i, w := range f.Accel.RISC {
		fmt.Fprintf(&listing, "%d: %s\n", i, risc.Disassemble(uint32(i), w))
	}
	l := listing.String()
	for _, want := range []string{"sh $t0, 2($s)", "j 0"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing lacks %q", want)
		}
	}
	// And it runs correctly.
	ref := tnsasm.MustAssemble("fib", fibSrc)
	m := interp.New(ref, nil)
	m.Run(100000)
	r, err := xrun.New(f, nil, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(1000000); err != nil {
		t.Fatal(err)
	}
	if m.Mem[0] != r.Int.Mem[0] || m.Mem[0] != 2 {
		t.Errorf("fib(3): interp=%d accel=%d want 2", m.Mem[0], r.Int.Mem[0])
	}
}
