package core_test

import (
	"fmt"
	"testing"

	"tnsr/internal/tnsgen"
)

// TestSoakRandomPrograms is a deeper randomized sweep than
// TestFidelityRandomPrograms (different seed range). A 2000-seed version of
// this soak found the RP-shift soundness bug fixed by procedure tainting
// plus the ExpectedRP re-entry gate; this keeps a 200-seed regression.
func TestSoakRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	for seed := int64(1000); seed < 1200; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("s%d", seed), func(t *testing.T) {
			src := tnsgen.Generate(fmt.Sprintf("soak%d", seed), seed, tnsgen.LegacyConfig()).UserSource()
			defer func() {
				if t.Failed() {
					t.Logf("program:\n%s", src)
				}
			}()
			runFidelity(t, fmt.Sprintf("soak%d", seed), src)
		})
	}
}
