package core

import (
	"tnsr/internal/risc"
	"tnsr/internal/tns"
)

// Memory-reference translation. The translator fixes the TNS data space at
// RISC address 0 ($db holds 0), so G-relative words are direct offsets, L-
// and S-relative words are offsets from $l/$s (which hold byte forms of L
// and S), and TNS byte addresses coincide with RISC byte addresses.
//
// The paper's address-mode optimizations appear here: address arithmetic
// folded into load/store offsets, indirect and shifted addresses held in
// temporaries and reused as common subexpressions, and (under Fast) omission
// of 16-bit address truncation.

// baseRegOf returns the RISC register holding the byte address of the mode's
// base, plus the byte displacement implied by the mode.
func (t *translator) baseRegOf(in tns.Instr) (base uint8, byteDisp int32) {
	switch in.Mode {
	case tns.ModeG:
		return risc.RegDB, 2 * int32(in.Disp)
	case tns.ModeL:
		return risc.RegL, 2 * int32(in.Disp)
	case tns.ModeLN:
		return risc.RegL, -2 * int32(in.Disp)
	default: // ModeS
		return risc.RegS, -2 * int32(in.Disp)
	}
}

// wordCellAddr yields (reg, off) such that reg+off is the byte address of
// the direct cell base±d. reg may be $db/$l/$s directly.
func (t *translator) wordCellAddr(in tns.Instr) (uint8, int32) {
	return t.baseRegOf(in)
}

// loadWordCell loads the 16-bit content of the direct cell, zero-extended
// (cells used as addresses are unsigned), with CSE.
func (t *translator) loadWordCell(in tns.Instr, ptrCell bool) uint8 {
	s := t.s
	kind := byte('w')
	gen := s.memGen
	if ptrCell {
		kind, gen = 'c', s.ptrGen
	}
	k := vkey{kind: kind, mode: in.Mode, disp: in.Disp, gen: gen, sgen: s.sGen}
	if r, ok := s.lookupVT(k); ok {
		return r
	}
	base, off := t.wordCellAddr(in)
	r := s.allocTemp()
	t.f.mem(risc.LHU, r, base, off)
	s.storeVT(k, r)
	return r
}

// indirectWordByteAddr computes the byte address of the word the indirect
// cell points at (cell value is a word address: shifted left once), with CSE
// of the shifted address — the paper's "indirect addresses, shifted
// addresses" temporaries.
func (t *translator) indirectWordByteAddr(in tns.Instr) uint8 {
	s := t.s
	k := vkey{kind: 'a', mode: in.Mode, disp: in.Disp, gen: s.ptrGen, sgen: s.sGen}
	if r, ok := s.lookupVT(k); ok {
		return r
	}
	cell := t.loadWordCell(in, true)
	s.pin(cell)
	r := s.allocTemp()
	t.f.shift(risc.SLL, r, cell, 1)
	s.storeVT(k, r)
	return r
}

// truncMask applies the Default-mode 16-bit truncation of a computed word
// address (already scaled to bytes, so the mask is 17 bits) unless Fast.
func (t *translator) maskWordByteAddr(r uint8) uint8 {
	if t.fast() {
		return r
	}
	out := t.s.allocTemp()
	t.f.shift(risc.SLL, out, r, 15)
	t.f.shift(risc.SRL, out, out, 15)
	return out
}

// maskByteAddr truncates a computed 16-bit byte address unless Fast.
func (t *translator) maskByteAddr(r uint8) uint8 {
	if t.fast() {
		return r
	}
	out := t.s.allocTemp()
	t.f.imm(risc.ANDI, out, r, 0xFFFF)
	return out
}

// wordEA computes the final (reg, off) byte address of a word operand,
// consuming the index from the register stack if present.
func (t *translator) wordEA(in tns.Instr) (uint8, int32) {
	s := t.s
	var idxR uint8
	var idxConst int32
	idxIsConst := false
	if in.Idx {
		if c, ok := s.constOf(s.rp); ok {
			idxConst, idxIsConst = int32(int16(c)), true
			s.popDesc()
		} else {
			idxR = s.valIn(s.rp, signOK)
			s.pin(idxR)
			s.popDesc()
		}
	}
	if !in.Ind {
		base, off := t.wordCellAddr(in)
		switch {
		case !in.Idx:
			return base, off
		case idxIsConst:
			return base, off + 2*idxConst
		default:
			r := s.allocTemp()
			t.f.shift(risc.SLL, r, idxR, 1)
			t.f.alu(risc.ADDU, r, r, base)
			if !t.fast() {
				// 16-bit word-address truncation (17-bit byte mask).
				// base is $db/$l/$s whose values stay inside the data
				// space, so masking the sum is equivalent.
				t.f.shift(risc.SLL, r, r, 15)
				t.f.shift(risc.SRL, r, r, 15)
			}
			return r, off
		}
	}
	// Indirect: cell content is a word address.
	ba := t.indirectWordByteAddr(in)
	s.pin(ba)
	switch {
	case !in.Idx:
		return ba, 0
	case idxIsConst:
		return ba, 2 * idxConst
	default:
		r := s.allocTemp()
		t.f.shift(risc.SLL, r, idxR, 1)
		t.f.alu(risc.ADDU, r, r, ba)
		if !t.fast() {
			t.f.shift(risc.SLL, r, r, 15)
			t.f.shift(risc.SRL, r, r, 15)
		}
		return r, 0
	}
}

// byteEA computes the final (reg, off) address of a byte operand.
func (t *translator) byteEA(in tns.Instr) (uint8, int32) {
	s := t.s
	var idxR uint8
	var idxConst int32
	idxIsConst := false
	if in.Idx {
		if c, ok := s.constOf(s.rp); ok {
			idxConst, idxIsConst = int32(int16(c)), true
			s.popDesc()
		} else {
			idxR = s.valIn(s.rp, signOK)
			s.pin(idxR)
			s.popDesc()
		}
	}
	if !in.Ind {
		// Direct: the byte address is twice the cell's word address.
		base, off := t.wordCellAddr(in)
		switch {
		case !in.Idx:
			return base, off
		case idxIsConst:
			return base, off + idxConst
		default:
			r := s.allocTemp()
			t.f.alu(risc.ADDU, r, idxR, base)
			if !t.fast() {
				t.f.shift(risc.SLL, r, r, 15)
				t.f.shift(risc.SRL, r, r, 15)
			}
			return r, off
		}
	}
	// Indirect: the cell holds a 16-bit byte address, usable directly.
	cell := t.loadWordCell(in, true)
	s.pin(cell)
	switch {
	case !in.Idx:
		return cell, 0
	case idxIsConst:
		return cell, idxConst
	default:
		r := s.allocTemp()
		t.f.alu(risc.ADDU, r, idxR, cell)
		r = t.maskByteAddr(r)
		return r, 0
	}
}

// transMem translates the six memory-reference majors.
func (t *translator) transMem(addr uint16, in tns.Instr) {
	s := t.s
	gw := t.p.file.GlobalWords
	switch in.Major {
	case tns.MajLoad:
		if !in.Ind && !in.Idx {
			// Redundant data fetches are the most frequent common
			// subexpressions: cache direct loads by cell.
			k := vkey{kind: 'w', mode: in.Mode, disp: in.Disp,
				gen: s.memGen, sgen: s.sGen}
			if r, ok := s.lookupVT(k); ok {
				s.pushDesc(slotDesc{kind: lReg, reg: r, fmt: fRJS})
				s.setCCFromValue(r)
				return
			}
			base, off := t.wordCellAddr(in)
			r := s.allocTemp()
			t.f.mem(risc.LH, r, base, off)
			s.storeVT(k, r)
			s.pushDesc(slotDesc{kind: lReg, reg: r, fmt: fRJS})
			s.setCCFromValue(r)
			return
		}
		base, off := t.wordEA(in)
		s.pin(base)
		r := s.allocTemp()
		t.f.mem(risc.LH, r, base, off)
		s.pushDesc(slotDesc{kind: lReg, reg: r, fmt: fRJS})
		s.setCCFromValue(r)

	case tns.MajStor:
		// Operand order: value below, index on top; wordEA pops the index.
		if !in.Ind && !in.Idx {
			vfmt := s.slot[s.rp].fmt
			vkindReg := s.slot[s.rp].kind == lReg
			v := s.valIn(s.rp, anyRJ)
			s.popDesc()
			base, off := t.wordCellAddr(in)
			t.f.mem(risc.SH, v, base, off)
			s.invalidateStatic(in.Mode, in.Disp, 1, gw)
			if vkindReg && vfmt == fRJS {
				// Store-to-load forwarding: the cell's cached value is
				// exactly the stored register.
				s.storeVT(vkey{kind: 'w', mode: in.Mode, disp: in.Disp,
					gen: s.memGen, sgen: s.sGen}, v)
			}
			return
		}
		base, off := t.wordEA(in)
		s.pin(base)
		v := s.valIn(s.rp, anyRJ)
		s.popDesc()
		t.f.mem(risc.SH, v, base, off)
		s.invalidateLoads(true)

	case tns.MajLdb:
		base, off := t.byteEA(in)
		s.pin(base)
		r := s.allocTemp()
		t.f.mem(risc.LBU, r, base, off)
		s.pushDesc(slotDesc{kind: lReg, reg: r, fmt: fRJZ})
		s.setCCFromValue(r)

	case tns.MajStb:
		if !in.Ind && !in.Idx {
			v := s.valIn(s.rp, anyRJ)
			s.popDesc()
			base, off := t.byteEA(in)
			t.f.mem(risc.SB, v, base, off)
			// A byte store to a known cell invalidates just that cell.
			s.invalidateStatic(in.Mode, in.Disp, 1, gw)
			return
		}
		base, off := t.byteEA(in)
		s.pin(base)
		v := s.valIn(s.rp, anyRJ)
		s.popDesc()
		t.f.mem(risc.SB, v, base, off)
		// The Fast option's aliasing assumption: inline byte stores do
		// not modify pointer cells.
		s.invalidateLoads(!t.fast())

	case tns.MajLdd:
		base, off := t.wordEA(in)
		s.pin(base)
		r := s.allocTemp()
		s.pin(r)
		if base == risc.RegDB && off%4 == 0 {
			t.f.mem(risc.LW, r, base, off)
		} else {
			hi := s.allocTemp()
			t.f.mem(risc.LHU, hi, base, off)
			t.f.mem(risc.LHU, r, base, off+2)
			t.f.shift(risc.SLL, hi, hi, 16)
			t.f.alu(risc.OR, r, r, hi)
			s.tempBusy[hi-risc.RegT0] = false
		}
		s.pushPair(slotDesc{kind: lReg, reg: r, fmt: fPAIR})
		s.setCCFromValue(r)

	case tns.MajStd:
		if !in.Ind && !in.Idx {
			defer s.invalidateStatic(in.Mode, in.Disp, 2, gw)
		} else {
			defer s.invalidateLoads(true)
		}
		base, off := t.wordEA(in)
		s.pin(base)
		d := t.popPairPinned()
		if d.kind == lReg {
			s.pin(d.reg)
		}
		if d.kind == lConst {
			hi := s.materializeConst(d.c >> 16)
			lo := s.materializeConst(int32(int16(d.c)))
			t.f.mem(risc.SH, hi, base, off)
			t.f.mem(risc.SH, lo, base, off+2)
		} else {
			pr := d.reg
			hi := s.allocTemp()
			t.f.shift(risc.SRA, hi, pr, 16)
			t.f.mem(risc.SH, hi, base, off)
			t.f.mem(risc.SH, pr, base, off+2)
			s.tempBusy[hi-risc.RegT0] = false
		}
	}
}
