package core

import (
	"fmt"

	"tnsr/internal/codefile"
	"tnsr/internal/millicode"
	"tnsr/internal/risc"
	"tnsr/internal/tns"
)

// translator walks the analyzed program in ascending address order (which
// keeps the PMap monotonic) and emits RISC code per basic block.
type translator struct {
	p    *program
	f    *fn
	s    *state
	opts *Options

	// blockLbl maps TNS block-leader addresses to labels.
	blockLbl map[uint16]label

	// stubs queued for emission between procedures (fallback shims, RP
	// check failures, overflow and divide traps).
	stubs []stub

	// predCount approximates CFG in-degree for state-inheritance decisions.
	predCount map[uint16]int

	// procEntryAt marks PEP entry addresses.
	procEntryAt map[uint16]bool

	stats codefile.AccelStats
}

type stub struct {
	lbl     label
	kind    uint8 // 'f' fallback, 't' trap
	tnsAddr uint16
	trap    int
	back    label // for overflow continue-path stubs; noLabel otherwise
}

// trapsChecked reports whether overflow checks are emitted.
func (t *translator) trapsChecked() bool {
	switch t.opts.Level {
	case codefile.LevelStmtDebug:
		return true
	case codefile.LevelDefault:
		return t.p.trapsPossible
	default:
		return false
	}
}

func (t *translator) fast() bool { return t.opts.Level == codefile.LevelFast }

// hwTrapOK reports whether the cheap hardware-trapping add/subtract may be
// used for overflow detection: the program enables traps (SETT 1) and never
// disables them, so a hardware overflow IS the TNS overflow trap. Programs
// that never enable traps (or toggle them) get explicit check sequences
// that consult ENV.T at run time.
func (t *translator) hwTrapOK() bool {
	return t.p.trapsPossible && !t.p.trapsDynamic
}

func (t *translator) blockLabel(a uint16) label {
	if l, ok := t.blockLbl[a]; ok {
		return l
	}
	l := t.f.newLabel()
	t.blockLbl[a] = l
	return l
}

// translateAll drives the whole translation.
func (t *translator) translateAll() error {
	t.blockLbl = map[uint16]label{}
	t.computePreds()
	n := len(t.p.kind)
	stmtAt := map[uint16]bool{}
	for _, st := range t.p.file.Statements {
		stmtAt[st.Addr] = true
	}
	entryOf := map[uint16]int{} // TNS entry addr -> PEP index
	t.procEntryAt = map[uint16]bool{}
	for pi, pr := range t.p.file.Procs {
		entryOf[pr.Entry] = pi
		t.procEntryAt[pr.Entry] = true
	}

	translated := func(pi int) bool {
		if t.opts.SelectProcs == nil {
			return true
		}
		return t.opts.SelectProcs[t.p.file.Procs[pi].Name]
	}

	inTranslatedProc := false
	fallthrough_ := false // previous instruction flows into the next address

	for a := 0; a < n; a++ {
		if t.p.kind[a] != KindInstr {
			fallthrough_ = false
			continue
		}
		addr := uint16(a)
		t.f.curTNS = addr

		// Procedure boundary: emit queued stubs, then the prologue.
		if pi, isEntry := entryOf[addr]; isEntry {
			t.flushStubs()
			inTranslatedProc = translated(pi)
			if inTranslatedProc {
				t.emitPrologue(pi, addr)
				fallthrough_ = true // prologue flows into the body
			}
		}
		if !inTranslatedProc {
			continue
		}

		in := t.p.instr[addr]
		leader := t.p.blockStart[addr]

		if leader {
			// Bind the block label; decide state inheritance.
			lbl := t.blockLabel(addr)
			if t.f.bound(lbl) {
				return fmt.Errorf("core: label for %d bound twice", addr)
			}
			inherit := fallthrough_ && t.predCount[addr] <= 1 &&
				!t.isExactLeader(addr, stmtAt)
			if !inherit && fallthrough_ {
				// The previous block falls through: it was already
				// canonicalized at its end (see block terminators), so
				// simply reset tracking state.
			}
			t.f.bind(lbl)

			// Puzzle leaders fall straight into interpreter mode.
			if why, bad := t.p.puzzle[addr]; bad {
				_ = why
				t.stats.PuzzlePoints++
				t.emitFallback(addr)
				fallthrough_ = false
				continue
			}
			rp := t.p.rpAt[addr]
			if rp == rpUnreached {
				// Reachable only via unanalyzable flow (e.g. statement
				// labels never reached statically): interpreter-only.
				t.emitFallback(addr)
				fallthrough_ = false
				continue
			}
			if rp == rpAny {
				// Must start with SETRP (the compiler clue); checked in
				// propagateRP, which would have made it a puzzle
				// otherwise.
				if !(in.Major == tns.MajSpecial && in.Sub == tns.SubSETRP) {
					t.stats.PuzzlePoints++
					t.emitFallback(addr)
					fallthrough_ = false
					continue
				}
			}
			if !inherit {
				if rp == rpAny {
					t.s.resetBlock(int(in.Operand & 7)) // SETRP handled below
				} else {
					t.s.resetBlock(int(rp))
				}
			}
			// Exact points: PMap entries and (for register-exact ones)
			// canonical state was ensured by predecessors.
			t.addLeaderPoints(addr, stmtAt)
			// Run-time RP confirmation after calls with guessed result
			// sizes.
			if prev := t.prevInstr(addr); prev >= 0 && t.p.instr[prev].IsCall() {
				t.emitReturnPointCheck(addr)
			}
		}

		// Per-instruction liveness for flag elision.
		t.s.ccLive = t.p.liveOut[addr]&liveCC != 0

		ft, err := t.translateInstr(addr, in)
		if err != nil {
			return err
		}
		fallthrough_ = ft
		if ft {
			next := t.p.instrEnd(addr)
			if int(next) < n && t.p.blockStart[next] {
				inheritNext := t.predCount[next] <= 1 && !t.isExactLeader(next, stmtAt)
				if !inheritNext {
					mask := t.p.liveOut[addr]
					if t.opts.Level == codefile.LevelStmtDebug && stmtAt[next] {
						// Register-exact statement boundary: the debugger
						// may inspect and modify the full register state.
						mask = liveAll
					}
					t.s.canonicalize(mask)
				}
			}
		}
		if in.Major == tns.MajSpecial && in.Sub == tns.SubCASE {
			a = int(t.p.instrEnd(addr)) - 1 // skip the inline table
		}
		t.stats.TNSInstrs++
	}
	t.flushStubs()
	return nil
}

// isExactLeader reports whether addr is a register-exact leader (no state
// inheritance across it). Statement boundaries are register-exact only
// under StmtDebug; at the Default level they are memory-exact — stores stay
// ordered, but register state and optimizations flow across, exactly the
// distinction the paper draws between the two levels.
func (t *translator) isExactLeader(addr uint16, stmtAt map[uint16]bool) bool {
	if t.p.caseTargets[addr] {
		return true
	}
	if t.procEntryAt[addr] {
		return true
	}
	if t.opts.Level == codefile.LevelStmtDebug && stmtAt[addr] {
		return true
	}
	// Return points after calls.
	if prev := t.prevInstr(addr); prev >= 0 && t.p.instr[prev].IsCall() {
		return true
	}
	return false
}

// prevInstr finds the address of the instruction immediately before addr
// (accounting for CASE tables), or -1.
func (t *translator) prevInstr(addr uint16) int {
	for b := int(addr) - 1; b >= 0; b-- {
		if t.p.kind[b] == KindInstr {
			if t.p.instrEnd(uint16(b)) == addr {
				return b
			}
			return -1
		}
		if t.p.kind[b] == KindUnreached {
			return -1
		}
		// KindTable: keep walking back to the CASE instruction.
	}
	return -1
}

// addLeaderPoints records PMap entries for an exact leader: procedure
// entry points (re-entered by calls from interpreter mode), call return
// points, CASE targets, and statement boundaries.
func (t *translator) addLeaderPoints(addr uint16, stmtAt map[uint16]bool) {
	regExact := false
	memExact := false
	if t.p.caseTargets[addr] {
		regExact = true
	}
	if t.procEntryAt[addr] {
		regExact = true
	}
	if prev := t.prevInstr(addr); prev >= 0 && t.p.instr[prev].IsCall() {
		regExact = true
	}
	if stmtAt[addr] {
		if t.opts.Level == codefile.LevelStmtDebug {
			regExact = true
		} else {
			memExact = true
		}
	}
	if regExact {
		t.f.pmapAdd(addr, true, t.p.rpAt[addr])
	} else if memExact {
		t.f.pmapAdd(addr, false, -1)
	}
}

// computePreds counts CFG predecessors (2 meaning "many").
func (t *translator) computePreds() {
	t.predCount = map[uint16]int{}
	var succBuf []uint16
	for a := 0; a < len(t.p.kind); a++ {
		if t.p.kind[a] != KindInstr {
			continue
		}
		succBuf = t.p.succs(uint16(a), succBuf[:0])
		for _, s := range succBuf {
			t.predCount[s]++
		}
	}
	// Addresses enterable from outside static flow count as many.
	for a := range t.p.caseTargets {
		t.predCount[a] += 2
	}
	for _, pr := range t.p.file.Procs {
		t.predCount[pr.Entry] += 2
	}
}

// emitFallback emits the interpreter-mode entry shim inline.
func (t *translator) emitFallback(addr uint16) {
	t.f.li(risc.RegMT, int32(addr))
	t.f.brk(millicode.BreakFallback)
}

// queueFallbackStub creates (or reuses) an out-of-line fallback stub for
// addr and returns its label (branch there on a failed run-time check).
func (t *translator) queueFallbackStub(addr uint16) label {
	l := t.f.newLabel()
	t.stubs = append(t.stubs, stub{lbl: l, kind: 'f', tnsAddr: addr, back: noLabel})
	return l
}

// queueTrapStub creates a stub raising a TNS trap.
func (t *translator) queueTrapStub(addr uint16, trap int) label {
	l := t.f.newLabel()
	t.stubs = append(t.stubs, stub{lbl: l, kind: 't', tnsAddr: addr, trap: trap, back: noLabel})
	return l
}

// queueOvfStub creates the overflow stub: trap if ENV.T is set, otherwise
// resume at back (the V flag is architecturally unobservable except via the
// trap, so nothing else need happen).
func (t *translator) queueOvfStub(addr uint16, back label) label {
	l := t.f.newLabel()
	t.stubs = append(t.stubs, stub{lbl: l, kind: 'o', tnsAddr: addr, trap: tns.TrapOverflow, back: back})
	return l
}

func (t *translator) flushStubs() {
	for _, st := range t.stubs {
		t.f.bind(st.lbl)
		switch st.kind {
		case 'f':
			t.f.li(risc.RegMT, int32(st.tnsAddr))
			t.f.brk(millicode.BreakFallback)
		case 't':
			t.f.li(risc.RegMT, int32(st.tnsAddr))
			t.f.brk(uint32(millicode.BreakTrapBase + st.trap))
		case 'o':
			// Overflow: trap only if ENV.T is enabled.
			tmp := uint8(risc.RegMT)
			t.f.imm(risc.ANDI, tmp, risc.RegENV, 0x80)
			skip := t.f.newLabel()
			t.f.br(risc.BEQ, tmp, risc.RegZero, skip)
			t.f.nop()
			t.f.li(risc.RegMT, int32(st.tnsAddr))
			t.f.brk(uint32(millicode.BreakTrapBase + st.trap))
			t.f.bind(skip)
			t.f.jLocal(risc.J, st.back)
			t.f.nop()
		}
	}
	t.stubs = t.stubs[:0]
}
