package core

import (
	"fmt"
	"sort"
	"strings"

	"tnsr/internal/codefile"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/risc"
	"tnsr/internal/tns"
)

// transCtx is the translation context shared by every translator working on
// one codefile: the analyzed program, the options, and derived lookup tables.
// Everything in it is immutable once built, which is what lets per-procedure
// translators run concurrently against it.
type transCtx struct {
	p    *program
	opts *Options

	// stmtAt marks statement-boundary addresses.
	stmtAt map[uint16]bool
	// entryOf maps TNS entry addresses to PEP indexes.
	entryOf map[uint16]int
	// procEntryAt marks PEP entry addresses.
	procEntryAt map[uint16]bool
	// predCount approximates CFG in-degree for state-inheritance decisions.
	predCount map[uint16]int
}

func newTransCtx(p *program, opts *Options) *transCtx {
	c := &transCtx{
		p:           p,
		opts:        opts,
		stmtAt:      map[uint16]bool{},
		entryOf:     map[uint16]int{},
		procEntryAt: map[uint16]bool{},
	}
	for _, st := range p.file.Statements {
		c.stmtAt[st.Addr] = true
	}
	for pi, pr := range p.file.Procs {
		c.entryOf[pr.Entry] = pi
		c.procEntryAt[pr.Entry] = true
	}
	c.computePreds()
	return c
}

// computePreds counts CFG predecessors (2 meaning "many").
func (c *transCtx) computePreds() {
	c.predCount = map[uint16]int{}
	var succBuf []uint16
	for a := 0; a < len(c.p.kind); a++ {
		if c.p.kind[a] != KindInstr {
			continue
		}
		succBuf = c.p.succs(uint16(a), succBuf[:0])
		for _, s := range succBuf {
			c.predCount[s]++
		}
	}
	// Addresses enterable from outside static flow count as many.
	for a := range c.p.caseTargets {
		c.predCount[a] += 2
	}
	for _, pr := range c.p.file.Procs {
		c.predCount[pr.Entry] += 2
	}
}

// translator emits RISC code for one address range of the analyzed program
// (in the parallel pipeline, one procedure per fragment). It walks addresses
// in ascending order, which keeps the PMap monotonic. All mutable state —
// the emission buffer, the abstract machine state, the block-label table,
// the queued stubs and the statistics — is private to the translator, so
// translators for different fragments never share anything but the
// read-only transCtx.
type translator struct {
	ctx  *transCtx
	p    *program
	f    *fn
	s    *state
	opts *Options

	// blockLbl maps TNS block-leader addresses to labels. Labels for
	// addresses outside this translator's range stay unbound and are
	// resolved positionally when fragments are merged.
	blockLbl map[uint16]label

	// stubs queued for emission between procedures (fallback shims, RP
	// check failures, overflow and divide traps).
	stubs []stub

	stats codefile.AccelStats
}

// newTranslator creates a translator with a fresh code buffer and state.
func newTranslator(ctx *transCtx) *translator {
	f := newFn(len(ctx.p.file.Procs))
	t := &translator{
		ctx:      ctx,
		p:        ctx.p,
		f:        f,
		opts:     ctx.opts,
		blockLbl: map[uint16]label{},
	}
	t.s = newState(f, ctx.p)
	t.s.noCSE = ctx.opts.DisableCSE
	t.s.alwaysCC = ctx.opts.DisableFlagElision
	return t
}

type stub struct {
	lbl     label
	kind    uint8 // 'f' fallback, 't' trap
	tnsAddr uint16
	trap    int
	back    label // for overflow continue-path stubs; noLabel otherwise
}

// trapsChecked reports whether overflow checks are emitted.
func (t *translator) trapsChecked() bool {
	switch t.opts.Level {
	case codefile.LevelStmtDebug:
		return true
	case codefile.LevelDefault:
		return t.p.trapsPossible
	default:
		return false
	}
}

func (t *translator) fast() bool { return t.opts.Level == codefile.LevelFast }

// hwTrapOK reports whether the cheap hardware-trapping add/subtract may be
// used for overflow detection: the program enables traps (SETT 1) and never
// disables them, so a hardware overflow IS the TNS overflow trap. Programs
// that never enable traps (or toggle them) get explicit check sequences
// that consult ENV.T at run time.
func (t *translator) hwTrapOK() bool {
	return t.p.trapsPossible && !t.p.trapsDynamic
}

func (t *translator) blockLabel(a uint16) label {
	if l, ok := t.blockLbl[a]; ok {
		return l
	}
	l := t.f.newLabel()
	t.blockLbl[a] = l
	return l
}

// fragment is one unit of the translation pipeline: the address range of a
// single procedure, [start, end), ending at the entry of the next procedure
// (or the end of the code segment). next is the following procedure's entry
// address, or -1 for the last fragment; it supplies the TNS address queued
// stubs are attributed to, exactly as the serial address walk would.
type fragment struct {
	start, end int
	next       int
}

// fragments splits the program into per-procedure fragments in ascending
// entry-address order — the order the serial translator visits them, so
// concatenating fragment output reproduces the serial instruction stream.
func (c *transCtx) fragments() []fragment {
	n := len(c.p.kind)
	var entries []int
	for _, pr := range c.p.file.Procs {
		a := int(pr.Entry)
		if a < n && c.p.kind[a] == KindInstr {
			entries = append(entries, a)
		}
	}
	sort.Ints(entries)
	// Drop duplicate entries (two PEP rows naming the same address).
	out := entries[:0]
	for i, e := range entries {
		if i == 0 || e != entries[i-1] {
			out = append(out, e)
		}
	}
	entries = out
	frags := make([]fragment, len(entries))
	for i, e := range entries {
		end, next := n, -1
		if i+1 < len(entries) {
			end, next = entries[i+1], entries[i+1]
		}
		frags[i] = fragment{start: e, end: end, next: next}
	}
	return frags
}

// translateRange drives translation over one fragment. It is the loop body
// of the former whole-file translateAll, restricted to [frag.start,
// frag.end): procedure prologues, per-block state management, instruction
// dispatch, and the end-of-procedure stub flush.
func (t *translator) translateRange(frag fragment) error {
	n := len(t.p.kind)

	inTranslatedProc := false
	fallthrough_ := false // previous instruction flows into the next address

	for a := frag.start; a < frag.end; a++ {
		if t.p.kind[a] != KindInstr {
			fallthrough_ = false
			continue
		}
		addr := uint16(a)
		t.f.curTNS = addr

		// Procedure boundary: emit the prologue. (Stubs queued by the
		// previous procedure were flushed at the end of its fragment.)
		if pi, isEntry := t.ctx.entryOf[addr]; isEntry {
			inTranslatedProc = t.procTranslated(pi)
			if inTranslatedProc {
				t.emitPrologue(pi, addr)
				fallthrough_ = true // prologue flows into the body
			}
		}
		if !inTranslatedProc {
			continue
		}

		in := t.p.instr[addr]
		leader := t.p.blockStart[addr]

		if leader {
			// Bind the block label; decide state inheritance.
			lbl := t.blockLabel(addr)
			if t.f.bound(lbl) {
				return fmt.Errorf("core: label for %d bound twice", addr)
			}
			inherit := fallthrough_ && t.ctx.predCount[addr] <= 1 &&
				!t.isExactLeader(addr)
			if !inherit && fallthrough_ {
				// The previous block falls through: it was already
				// canonicalized at its end (see block terminators), so
				// simply reset tracking state.
			}
			t.f.bind(lbl)

			// Puzzle leaders fall straight into interpreter mode.
			if why, bad := t.p.puzzle[addr]; bad {
				t.stats.PuzzlePoints++
				t.emitFallback(addr, puzzleReason(why))
				fallthrough_ = false
				continue
			}
			rp := t.p.rpAt[addr]
			if rp == rpUnreached {
				// Reachable only via unanalyzable flow (e.g. statement
				// labels never reached statically): interpreter-only.
				t.emitFallback(addr, obs.EscapeComputedJump)
				fallthrough_ = false
				continue
			}
			if rp == rpAny {
				// Must start with SETRP (the compiler clue); checked in
				// propagateRP, which would have made it a puzzle
				// otherwise.
				if !(in.Major == tns.MajSpecial && in.Sub == tns.SubSETRP) {
					t.stats.PuzzlePoints++
					t.emitFallback(addr, obs.EscapeComputedJump)
					fallthrough_ = false
					continue
				}
			}
			if !inherit {
				if rp == rpAny {
					t.s.resetBlock(int(in.Operand & 7)) // SETRP handled below
				} else {
					t.s.resetBlock(int(rp))
				}
			}
			// Exact points: PMap entries and (for register-exact ones)
			// canonical state was ensured by predecessors.
			t.addLeaderPoints(addr)
			// Run-time RP confirmation after calls with guessed result
			// sizes.
			checked := false
			if prev := t.prevInstr(addr); prev >= 0 && t.p.instr[prev].IsCall() {
				checked = t.emitReturnPointCheck(addr)
			}
			// Profile-confirmed joins and profile-seeded computed-jump
			// targets carry the same confirmation (unless the return-point
			// check just emitted the identical compare).
			if t.p.rpGuard[addr] && !checked {
				t.emitRPGuard(addr)
			}
		}

		// Per-instruction liveness for flag elision.
		t.s.ccLive = t.p.liveOut[addr]&liveCC != 0

		ft, err := t.translateInstr(addr, in)
		if err != nil {
			return err
		}
		fallthrough_ = ft
		if ft {
			next := t.p.instrEnd(addr)
			if int(next) < n && t.p.blockStart[next] {
				inheritNext := t.ctx.predCount[next] <= 1 && !t.isExactLeader(next)
				if !inheritNext {
					mask := t.p.liveOut[addr]
					if t.opts.Level == codefile.LevelStmtDebug && t.ctx.stmtAt[next] {
						// Register-exact statement boundary: the debugger
						// may inspect and modify the full register state.
						mask = liveAll
					}
					t.s.canonicalize(mask)
				}
			}
		}
		if in.Major == tns.MajSpecial && in.Sub == tns.SubCASE {
			a = int(t.p.instrEnd(addr)) - 1 // skip the inline table
		}
		t.stats.TNSInstrs++
	}

	// End of the procedure: flush its stubs. The serial walk flushed them on
	// reaching the next procedure's entry, after setting curTNS to it, so
	// the stub instructions carry the same attribution here.
	if frag.next >= 0 {
		t.f.curTNS = uint16(frag.next)
	}
	t.flushStubs()
	return nil
}

// isExactLeader reports whether addr is a register-exact leader (no state
// inheritance across it). Statement boundaries are register-exact only
// under StmtDebug; at the Default level they are memory-exact — stores stay
// ordered, but register state and optimizations flow across, exactly the
// distinction the paper draws between the two levels.
func (t *translator) isExactLeader(addr uint16) bool {
	if t.p.caseTargets[addr] {
		return true
	}
	if t.ctx.procEntryAt[addr] {
		return true
	}
	if t.opts.Level == codefile.LevelStmtDebug && t.ctx.stmtAt[addr] {
		return true
	}
	// Return points after calls.
	if prev := t.prevInstr(addr); prev >= 0 && t.p.instr[prev].IsCall() {
		return true
	}
	return false
}

// prevInstr finds the address of the instruction immediately before addr
// (accounting for CASE tables), or -1.
func (t *translator) prevInstr(addr uint16) int {
	for b := int(addr) - 1; b >= 0; b-- {
		if t.p.kind[b] == KindInstr {
			if t.p.instrEnd(uint16(b)) == addr {
				return b
			}
			return -1
		}
		if t.p.kind[b] == KindUnreached {
			return -1
		}
		// KindTable: keep walking back to the CASE instruction.
	}
	return -1
}

// addLeaderPoints records PMap entries for an exact leader: procedure
// entry points (re-entered by calls from interpreter mode), call return
// points, CASE targets, and statement boundaries.
func (t *translator) addLeaderPoints(addr uint16) {
	regExact := false
	memExact := false
	if t.p.caseTargets[addr] {
		regExact = true
	}
	if t.ctx.procEntryAt[addr] {
		regExact = true
	}
	if prev := t.prevInstr(addr); prev >= 0 && t.p.instr[prev].IsCall() {
		regExact = true
	}
	if t.ctx.stmtAt[addr] {
		if t.opts.Level == codefile.LevelStmtDebug {
			regExact = true
		} else {
			memExact = true
		}
	}
	if regExact {
		t.f.pmapAdd(addr, true, t.p.rpAt[addr])
	} else if memExact {
		t.f.pmapAdd(addr, false, -1)
	}
}

// puzzleReason classifies an RP-analysis puzzle message as an escape
// reason: indeterminate RP after a call traces back to an unknown result
// size; every other puzzle is a conflict between static RP assumptions.
func puzzleReason(why string) obs.EscapeReason {
	if strings.Contains(why, "after call") {
		return obs.EscapeIndirectCall
	}
	return obs.EscapeRPConflict
}

// noteFallback records the static reason addr falls into interpreter mode;
// the runtime classifies the escape with it when the fallback fires.
func (t *translator) noteFallback(addr uint16, reason obs.EscapeReason) {
	t.f.why[addr] = uint8(reason)
}

// emitFallback emits the interpreter-mode entry shim inline.
func (t *translator) emitFallback(addr uint16, reason obs.EscapeReason) {
	t.noteFallback(addr, reason)
	t.f.li(risc.RegMT, int32(addr))
	t.f.brk(millicode.BreakFallback)
}

// queueFallbackStub creates an out-of-line fallback stub for addr and
// returns its label (branch there on a failed run-time check).
func (t *translator) queueFallbackStub(addr uint16, reason obs.EscapeReason) label {
	t.noteFallback(addr, reason)
	l := t.f.newLabel()
	t.stubs = append(t.stubs, stub{lbl: l, kind: 'f', tnsAddr: addr, back: noLabel})
	return l
}

// queueTrapStub creates a stub raising a TNS trap.
func (t *translator) queueTrapStub(addr uint16, trap int) label {
	l := t.f.newLabel()
	t.stubs = append(t.stubs, stub{lbl: l, kind: 't', tnsAddr: addr, trap: trap, back: noLabel})
	return l
}

// queueOvfStub creates the overflow stub: trap if ENV.T is set, otherwise
// resume at back (the V flag is architecturally unobservable except via the
// trap, so nothing else need happen).
func (t *translator) queueOvfStub(addr uint16, back label) label {
	l := t.f.newLabel()
	t.stubs = append(t.stubs, stub{lbl: l, kind: 'o', tnsAddr: addr, trap: tns.TrapOverflow, back: back})
	return l
}

func (t *translator) flushStubs() {
	for _, st := range t.stubs {
		t.f.bind(st.lbl)
		switch st.kind {
		case 'f':
			t.f.li(risc.RegMT, int32(st.tnsAddr))
			t.f.brk(millicode.BreakFallback)
		case 't':
			t.f.li(risc.RegMT, int32(st.tnsAddr))
			t.f.brk(uint32(millicode.BreakTrapBase + st.trap))
		case 'o':
			// Overflow: trap only if ENV.T is enabled.
			tmp := uint8(risc.RegMT)
			t.f.imm(risc.ANDI, tmp, risc.RegENV, 0x80)
			skip := t.f.newLabel()
			t.f.br(risc.BEQ, tmp, risc.RegZero, skip)
			t.f.nop()
			t.f.li(risc.RegMT, int32(st.tnsAddr))
			t.f.brk(uint32(millicode.BreakTrapBase + st.trap))
			t.f.bind(skip)
			t.f.jLocal(risc.J, st.back)
			t.f.nop()
		}
	}
	t.stubs = t.stubs[:0]
}
