package core

import (
	"tnsr/internal/pgo"
	"tnsr/internal/tns"
)

// RP analysis, the paper's signature puzzle: most TNS instructions address
// the register barrel relative to RP, whose value the compilers knew but
// did not record. The Accelerator recovers an absolute RP for every
// instruction. Procedure entry RP is RPEmpty (compilers keep the register
// stack empty across calls); a call's net RP effect is the callee's result
// size, recovered from codefile summaries, hints, recursive analysis, or —
// failing everything — a guess backed by a run-time check.

// Sentinel rpAt values (valid RPs are 0..7).
const (
	rpUnreached = -2 // never reached by RP propagation
	rpConflict  = -3 // control-flow paths join with different RPs: puzzle
	rpAny       = -4 // unknown but immediately overridden by SETRP
)

// callSite describes what translation must do about the RP effect of a call.
type callSite struct {
	result  int8 // result words assumed (the RP delta)
	checked bool // emit a run-time RP confirmation; mismatch -> interpreter
}

// resolveRP runs result-size analysis then absolute-RP propagation. It
// populates p.resultWords, p.guessedProc, p.rpAt, p.callSites and p.puzzle.
func (p *program) resolveRP() {
	p.analyzeResultSizes()
	p.propagateRP()
	p.computeTaint()
}

// computeTaint marks procedures containing guessed call sites or puzzle
// points: if a guess proves wrong at run time, the dynamic RP downstream
// diverges from the static prediction, so EVERY call return point in such
// a procedure gets a run-time RP confirmation (not only the guessed site's
// own), keeping wrong guesses repairable rather than silently corrupting.
func (p *program) computeTaint() {
	p.taintedProc = make([]bool, len(p.file.Procs))
	mark := func(a uint16) {
		if pi := p.procOf[a]; pi >= 0 {
			p.taintedProc[pi] = true
		}
	}
	for a, cs := range p.callSites {
		if cs.checked {
			mark(a)
		}
	}
	for a := range p.puzzle {
		mark(a)
	}
	// Profile-guarded joins: the static RP there is confirmed only by the
	// guard, so downstream call returns stay checked like any guessed site.
	for a := range p.rpGuard {
		mark(a)
	}
}

// spaceName is the profile-section label for the codefile being translated.
func (p *program) spaceName() string { return pgo.SpaceName(p.opts.Space) }

// profileResultSize consults the attached profile for the actual result
// size of the unprovable call at a, whose caller RP (post-PLabel-pop for
// XCAL) is base. Two sources, in order of directness: the result-size
// histogram captured at interpreted returns, and — when the call itself ran
// in RISC so only the failed return-point check was visible — the dynamic
// RP observed when that check escaped, which is base plus the actual result
// size around the 3-bit barrel. Either source is used only when every
// observation agreed; the site keeps its run-time check regardless.
func (p *program) profileResultSize(a uint16, base int) (int8, bool) {
	prof := p.opts.Profile
	if prof == nil {
		return 0, false
	}
	space := p.spaceName()
	if s, ok := prof.ResultSize(space, a); ok {
		return s, true
	}
	ret := p.instrEnd(a)
	if y, ok := prof.ObservedRP(space, ret); ok {
		return int8((int(y) - base + 8) % 8), true
	}
	return 0, false
}

// callSites is populated for every call instruction address.
func (p *program) callSiteFor(a uint16) callSite {
	return p.callSites[a]
}

// analyzeResultSizes determines each procedure's result size: first from
// summaries and hints, then by iterating the paper's recursive RP-change
// analysis until a fixpoint.
func (p *program) analyzeResultSizes() {
	n := len(p.file.Procs)
	p.resultWords = make([]int8, n)
	p.guessedProc = make([]bool, n)
	p.callSites = map[uint16]callSite{}
	for i := range p.resultWords {
		p.resultWords[i] = -1
	}
	for i, pr := range p.file.Procs {
		if h, ok := p.opts.Hints.ReturnValSize[pr.Name]; ok {
			p.resultWords[i] = h
			continue
		}
		if !p.opts.IgnoreSummaries && pr.ResultWords >= 0 {
			p.resultWords[i] = pr.ResultWords
		}
	}
	// Fixpoint: procedures whose every path from entry to some EXIT passes
	// only through known-result calls yield their exit RP.
	for changed := true; changed; {
		changed = false
		for i := range p.file.Procs {
			if p.resultWords[i] >= 0 {
				continue
			}
			if r, ok := p.exitRPOf(i); ok {
				p.resultWords[i] = r
				changed = true
			}
		}
	}
}

// exitRPOf walks procedure pi's flow graph tracking the RP delta from
// entry; it reports the result size if at least one EXIT is reachable via
// fully-analyzable paths and no analyzable EXIT disagrees.
func (p *program) exitRPOf(pi int) (int8, bool) {
	entry := p.file.Procs[pi].Entry
	if int(entry) >= len(p.kind) || p.kind[entry] != KindInstr {
		return 0, false
	}
	delta := map[uint16]int8{entry: 0}
	work := []uint16{entry}
	var result int8 = -1
	found := false
	var succBuf []uint16
	for len(work) > 0 {
		a := work[len(work)-1]
		work = work[:len(work)-1]
		d := delta[a]
		in := p.instr[a]

		if in.Major == tns.MajControl && in.Ctl == tns.CtlEXIT {
			r := ((d % 8) + 8) % 8
			if found && result != r {
				return 0, false // conflicting exits
			}
			result, found = r, true
			continue
		}
		var nd int8
		switch {
		case in.Major == tns.MajSpecial && in.Sub == tns.SubSETRP:
			// Absolute RP: delta relative to an entry RP of RPEmpty.
			nd = int8((int(in.Operand&7) - tns.RPEmpty + 8) % 8)
		case in.IsCall():
			r, _, ok := p.callEffect(a)
			if !ok {
				// Path blocked by an unknown callee: skip, another path
				// may still reach an EXIT. If the next instruction is
				// SETRP the flow continues despite the unknown.
				na := p.instrEnd(a)
				if int(na) < len(p.kind) && p.kind[na] == KindInstr {
					nx := p.instr[na]
					if nx.Major == tns.MajSpecial && nx.Sub == tns.SubSETRP {
						if _, seen := delta[na]; !seen {
							delta[na] = d // value unused: SETRP overrides
							work = append(work, na)
						}
					}
				}
				continue
			}
			nd = int8(((int(d) + int(r)) % 8))
			if in.Major == tns.MajSpecial { // XCAL also pops the PLabel
				nd = int8(((int(nd) - 1) + 8) % 8)
			}
		default:
			dl := in.RPDelta()
			if dl == tns.RPUnknown {
				continue
			}
			nd = int8(((int(d)+dl)%8 + 8) % 8)
		}
		succBuf = p.succs(a, succBuf[:0])
		for _, s := range succBuf {
			if int(s) >= len(p.kind) || p.kind[s] != KindInstr {
				continue
			}
			if _, seen := delta[s]; !seen {
				delta[s] = nd
				work = append(work, s)
			}
		}
	}
	return result, found
}

// callEffect reports the result size of the call at address a, whether it
// is definitely known (vs. a guess needing a check), and whether it is
// known at all during analysis. XCAL's extra PLabel pop is NOT included.
func (p *program) callEffect(a uint16) (size int8, known, ok bool) {
	in := p.instr[a]
	switch {
	case in.Major == tns.MajControl && in.Ctl == tns.CtlPCAL:
		pep := uint16(in.Target)
		if int(pep) < len(p.resultWords) && p.resultWords[pep] >= 0 {
			return p.resultWords[pep], true, true
		}
		return 0, false, false
	case in.Major == tns.MajControl && in.Ctl == tns.CtlSCAL:
		if r, okl := p.opts.LibSummaries[uint16(in.Target)]; okl && r >= 0 {
			return r, true, true
		}
		return 0, false, false
	default: // XCAL
		if h, okh := p.opts.Hints.XCALResultSize[a]; okh {
			return h, true, true
		}
		return 0, false, false
	}
}

// guessResultSize implements the paper's pattern heuristic: guess the
// result size of an unknown call from the register-stack behaviour of the
// code right after the call.
func (p *program) guessResultSize(a uint16) int8 {
	na := p.instrEnd(a)
	if int(na) >= len(p.kind) || p.kind[na] != KindInstr {
		return 1
	}
	nx := p.instr[na]
	switch {
	case nx.Major == tns.MajStd:
		return 2
	case nx.Major == tns.MajSpecial && nx.Sub == tns.SubStack &&
		(nx.Operand == tns.OpDDEL || nx.Operand == tns.OpDADD ||
			nx.Operand == tns.OpDTST):
		return 2
	case nx.Pops() == 0:
		// The code immediately pushes or branches without consuming a
		// result: likely a procedure-style (void) call.
		if nx.Major == tns.MajControl && (nx.Ctl == tns.CtlBUN || nx.Ctl == tns.CtlEXIT) {
			return 0
		}
		if nx.Major == tns.MajSpecial && nx.Sub == tns.SubLDI {
			return 0
		}
		return 0
	default:
		return 1
	}
}

// propagateRP assigns an absolute RP to every reachable instruction,
// marking conflicts and unresolvable sites as puzzle points.
func (p *program) propagateRP() {
	p.rpGuard = map[uint16]bool{}
	for i := range p.rpAt {
		p.rpAt[i] = rpUnreached
	}
	var work []uint16
	var succBuf []uint16
	seed := func(a uint16, rp int8) {
		if int(a) >= len(p.kind) || p.kind[a] != KindInstr {
			return
		}
		switch p.rpAt[a] {
		case rpUnreached:
			p.rpAt[a] = rp
			work = append(work, a)
		case rpConflict:
		case rpAny:
			if rp >= 0 {
				p.rpAt[a] = rp
				work = append(work, a)
			}
		default:
			if rp == rpAny {
				return // a known value beats "any"
			}
			if p.rpAt[a] != rp {
				// The paper's convergence puzzle: different predictions
				// of RP joining. Unless the instruction is SETRP (which
				// overrides RP anyway), the point becomes a puzzle.
				if in := p.instr[a]; !(in.Major == tns.MajSpecial && in.Sub == tns.SubSETRP) {
					// Profile confirmation: if a prior run observed exactly
					// one dynamic RP here and it matches the value already
					// propagated, keep that value and let translation guard
					// the join with a run-time RP check instead of an
					// unconditional fallback. The first-seeded value is
					// never replaced (no repropagation), so downstream
					// blocks stay consistent; executions arriving with the
					// other RP fail the guard and interpret, exactly as
					// they fall back today.
					// Only block leaders can carry the guard (translation
					// emits it at leader binding); conflicts elsewhere stay
					// puzzles.
					if p.opts.Profile != nil && p.rpAt[a] >= 0 && p.blockStart[a] {
						if y, ok := p.opts.Profile.ObservedRP(p.spaceName(), a); ok &&
							int8(y) == p.rpAt[a] {
							p.rpGuard[a] = true
							return
						}
					}
					p.rpAt[a] = rpConflict
					p.puzzle[a] = "conflicting RP at join"
					// Do not repropagate: translation falls back here.
				}
			}
		}
	}
	for _, pr := range p.file.Procs {
		seed(pr.Entry, tns.RPEmpty)
	}
	// Statement labels reachable only via unanalyzable jumps keep whatever
	// RP flows into them normally; if flow never reaches them they stay
	// unreached and the translator maps them as interpreter-only.

	drain := func() {
		for len(work) > 0 {
			a := work[len(work)-1]
			work = work[:len(work)-1]
			rp := p.rpAt[a]
			if rp < 0 && rp != rpAny {
				continue
			}
			in := p.instr[a]
			var nrp int8
			switch {
			case in.Major == tns.MajSpecial && in.Sub == tns.SubSETRP:
				nrp = int8(in.Operand & 7)
			case rp == rpAny:
				// Any non-SETRP instruction with indeterminate RP is a puzzle.
				p.puzzle[a] = "RP indeterminate after call"
				continue
			case in.IsCall():
				size, known, ok := p.callEffect(a)
				base := int(rp)
				if in.Major == tns.MajSpecial { // XCAL pops the PLabel first
					base = (base - 1 + 8) % 8
				}
				if !ok {
					// Is the next instruction SETRP (the compiler clue)?
					na := p.instrEnd(a)
					if int(na) < len(p.kind) && p.kind[na] == KindInstr {
						if nx := p.instr[na]; nx.Major == tns.MajSpecial && nx.Sub == tns.SubSETRP {
							p.callSites[a] = callSite{result: 0, checked: false}
							seed(na, rpAny)
							continue
						}
					}
					size = p.guessResultSize(a)
					if s, okp := p.profileResultSize(a, base); okp {
						// The observed fact replaces the pattern heuristic;
						// the site stays checked below, so a profile from
						// different inputs degrades to today's fallback,
						// never wrong code.
						size = s
					}
					if in.Major == tns.MajControl && in.Ctl == tns.CtlPCAL {
						pep := in.Target
						if int(pep) < len(p.guessedProc) {
							p.guessedProc[pep] = true
						}
					}
					p.callSites[a] = callSite{result: size, checked: true}
				} else {
					p.callSites[a] = callSite{result: size, checked: !known}
				}
				nrp = int8((base + int(size)) % 8)
			default:
				d := in.RPDelta()
				if d == tns.RPUnknown {
					p.puzzle[a] = "unknown RP effect"
					continue
				}
				nrp = int8(((int(rp)+d)%8 + 8) % 8)
			}
			succBuf = p.succs(a, succBuf[:0])
			for _, s := range succBuf {
				seed(s, nrp)
			}
		}
	}
	drain()

	// Profile-seeded computed-jump targets: a statement label reached only
	// through unanalyzable jumps stays rpUnreached above and would be
	// translated as an interpreter-only region. When a prior run observed
	// exactly one dynamic RP at such a label (the escape there recorded it),
	// the region is translated assuming that RP behind the same run-time
	// guard a confirmed join gets; an execution arriving with any other RP
	// fails the guard and interprets, exactly as every execution did before.
	if p.opts.Profile != nil {
		for _, st := range p.file.Statements {
			a := st.Addr
			if int(a) >= len(p.rpAt) || p.rpAt[a] != rpUnreached || !p.blockStart[a] {
				continue
			}
			if y, ok := p.opts.Profile.ObservedRP(p.spaceName(), a); ok {
				p.rpGuard[a] = true
				seed(a, int8(y))
			}
		}
		drain()
	}
}
