package core

import (
	"fmt"

	"tnsr/internal/risc"
)

// The translator's abstract state: where each emulated TNS register
// currently lives (its dedicated RISC register, a temporary, or a tracked
// constant that was never materialized — the paper's disappearing literal
// operands), which of the paper's value "formats" it is in, and what the
// condition code is symbolically. Canonical state — every live register in
// its own RISC register, right-justified and sign-extended, CC in $cc — is
// re-established at register-exact points.

// fmtKind is the representation of a 16-bit TNS value within its 32-bit
// RISC register (the paper's "formats").
type fmtKind uint8

const (
	fRJS  fmtKind = iota // right-justified, sign-bit extension (canonical)
	fRJZ                 // right-justified, zero fill
	fRJU                 // right-justified, unknown fill
	fLJ                  // left-justified (value << 16), for overflow checks
	fPAIR                // full 32-bit value of a register pair (slot = lo)
)

type lkind uint8

const (
	lNone   lkind = iota // garbage / dead
	lConst               // known constant, possibly never materialized
	lReg                 // live in a RISC register (home or temporary)
	lPairHi              // high half of the pair owned by the slot above
)

// slotDesc describes one emulated register (one absolute barrel position).
type slotDesc struct {
	kind lkind
	reg  uint8   // valid when kind == lReg
	fmt  fmtKind // valid when kind == lReg
	c    int32   // valid when kind == lConst (sign-extended; pairs full 32)
	pair bool    // the slot holds a 32-bit pair value (lo half position)
}

// ccKind describes the symbolic condition code.
type ccKind uint8

const (
	ccNone ccKind = iota // dead or unknown
	ccIn                 // materialized in $cc
	ccVal                // sign of the 32-bit value in reg a
	ccCmp                // comparison a ? b (32-bit correct in both regs)
)

type ccState struct {
	kind     ccKind
	a, b     uint8
	unsigned bool
}

// state is the per-block (or extended-block) translation state.
type state struct {
	f  *fn
	p  *program
	rp int // absolute RP before the instruction being translated

	slot [8]slotDesc
	cc   ccState

	// envRP is the RP value currently reflected in $env bits 0..2, or -1.
	envRP int

	// ccLive is the CC liveness after the current TNS instruction.
	ccLive bool

	tempBusy [risc.NumTemp]bool
	tempTick [risc.NumTemp]int
	tick     int

	// extraPins protects in-flight registers (operands already fetched for
	// the TNS instruction being translated) from temp eviction.
	extraPins []uint8

	// Ablation switches copied from the options.
	noCSE    bool
	alwaysCC bool

	vt     map[vkey]vval
	memGen uint32 // bumped by stores that may alias memory loads
	ptrGen uint32 // bumped by stores that may alias pointer cells
	sGen   uint32 // bumped when S changes
	regGen [32]uint32
}

// vkey identifies a reusable value (common subexpression). Generations are
// part of the key so stale entries simply never match again.
type vkey struct {
	kind byte   // 'w' word load, 'c' pointer-cell load, 'a' cell byte addr
	mode uint8  // addressing mode for direct cells
	disp uint16 //
	gen  uint32 // memGen ('w') or ptrGen ('c') at creation; sGen folded in
	sgen uint32
}

type vval struct {
	reg uint8
	gen uint32 // regGen of reg at creation
}

func newState(f *fn, p *program) *state {
	return &state{f: f, p: p, envRP: -1, vt: map[vkey]vval{}}
}

// resetBlock establishes canonical state at a block entry with the given
// absolute RP.
func (s *state) resetBlock(rp int) {
	s.rp = rp & 7
	for i := range s.slot {
		s.slot[i] = slotDesc{kind: lNone}
	}
	// Canonical: every slot is (potentially) live in its home, RJS.
	for i := 0; i < 8; i++ {
		s.slot[i] = slotDesc{kind: lReg, reg: homeOf(i), fmt: fRJS}
	}
	s.cc = ccState{kind: ccIn}
	s.envRP = s.rp
	for i := range s.tempBusy {
		s.tempBusy[i] = false
	}
	s.vt = map[vkey]vval{}
	s.memGen++
	s.ptrGen++
	s.sGen++
}

func homeOf(absReg int) uint8 { return risc.RegR0 + uint8(((absReg%8)+8)%8) }

// --- temporaries -----------------------------------------------------------

// allocTemp returns a free temporary register, spilling value-table
// entries if needed (never TNS state: slots and CC pin their registers).
func (s *state) allocTemp() uint8 {
	s.tick++
	pinned := s.pinnedSet()
	best, bestTick := -1, int(^uint(0)>>1)
	for i := 0; i < risc.NumTemp; i++ {
		r := uint8(risc.RegT0 + i)
		if pinned[r] {
			continue
		}
		if !s.tempBusy[i] {
			s.takeTemp(i)
			return r
		}
		if s.tempTick[i] < bestTick {
			best, bestTick = i, s.tempTick[i]
		}
	}
	if best < 0 {
		panic("core: out of temporaries")
	}
	s.takeTemp(best)
	return uint8(risc.RegT0 + best)
}

func (s *state) takeTemp(i int) {
	s.tempBusy[i] = true
	s.tempTick[i] = s.tick
	s.killReg(uint8(risc.RegT0 + i))
}

// touchTemp refreshes the eviction clock for a register if it is a temp.
func (s *state) touchTemp(r uint8) {
	if r >= risc.RegT0 && r < risc.RegT0+risc.NumTemp {
		s.tick++
		s.tempTick[r-risc.RegT0] = s.tick
	}
}

// pin protects r from eviction until the end of the current TNS
// instruction's translation (unpinAll).
func (s *state) pin(r uint8) { s.extraPins = append(s.extraPins, r) }

// unpinAll releases all instruction-scope pins.
func (s *state) unpinAll() { s.extraPins = s.extraPins[:0] }

func (s *state) pinnedSet() [32]bool {
	var pinned [32]bool
	for _, r := range s.extraPins {
		pinned[r] = true
	}
	for i := range s.slot {
		if s.slot[i].kind == lReg {
			pinned[s.slot[i].reg] = true
		}
	}
	if s.cc.kind == ccVal || s.cc.kind == ccCmp {
		pinned[s.cc.a] = true
		pinned[s.cc.b] = true
	}
	return pinned
}

// killReg invalidates tracked values living in r (it is about to be
// overwritten). The caller must have dealt with CC and slot references.
func (s *state) killReg(r uint8) {
	s.regGen[r]++
}

// writeBarrier prepares to overwrite phys: if the symbolic CC references
// it and CC is still needed, materialize CC first; if another slot aliases
// it, give that slot its own copy.
func (s *state) writeBarrier(phys uint8, exceptSlot int) {
	if (s.cc.kind == ccVal || s.cc.kind == ccCmp) &&
		(s.cc.a == phys || s.cc.b == phys) && s.ccLive {
		s.materializeCC()
	}
	for i := range s.slot {
		if i == exceptSlot {
			continue
		}
		if s.slot[i].kind == lReg && s.slot[i].reg == phys {
			t := s.allocTemp()
			s.f.move(t, phys)
			s.slot[i].reg = t
		}
	}
	s.killReg(phys)
}

// --- value access ------------------------------------------------------

// valIn returns a register holding slot i's value in one of the formats
// allowed by mask (bitmask of 1<<fmtKind), converting or materializing as
// needed. The returned register must not be written by the caller.
func (s *state) valIn(i int, allowed uint8) uint8 {
	i = ((i % 8) + 8) % 8
	d := &s.slot[i]
	// Single-word access to half of a register pair splits the pair.
	if d.kind == lPairHi {
		s.unpackPair((i + 1) & 7)
		d = &s.slot[i]
	}
	if d.pair && allowed&pairOK == 0 {
		if d.kind == lConst {
			c := d.c
			s.slot[i] = slotDesc{kind: lConst, c: int32(int16(c))}
			s.slot[(i-1+8)&7] = slotDesc{kind: lConst, c: c >> 16}
		} else {
			s.unpackPair(i)
		}
		d = &s.slot[i]
	}
	switch d.kind {
	case lConst:
		if d.c == 0 && allowed&(1<<fRJS|1<<fRJZ) != 0 && !d.pair {
			return risc.RegZero
		}
		t := s.allocTemp()
		if d.pair {
			s.f.li(t, d.c)
			*d = slotDesc{kind: lReg, reg: t, fmt: fPAIR, pair: true}
		} else if allowed&(1<<fLJ) != 0 && allowed&(1<<fRJS) == 0 {
			// Materialize directly in the requested left-justified form.
			s.f.li(t, int32(int16(d.c))<<16)
			*d = slotDesc{kind: lReg, reg: t, fmt: fLJ}
		} else {
			s.f.li(t, int32(int16(d.c)))
			*d = slotDesc{kind: lReg, reg: t, fmt: fRJS}
		}
		// The produced format may still not match (e.g. RJZ-only demand);
		// let the register path convert.
		return s.valIn(i, allowed)
	case lReg:
		s.touchTemp(d.reg)
		if allowed&(1<<d.fmt) != 0 {
			return d.reg
		}
		t := s.allocTemp()
		s.convert(t, d.reg, d.fmt, allowed)
		d.reg = t
		d.fmt = firstAllowed(allowed, d.fmt)
		return t
	case lPairHi:
		panic("core: direct access to pair high half")
	default:
		// Garbage slot read: undefined program behaviour; give it a
		// deterministic zero so both execution modes agree.
		*d = slotDesc{kind: lConst, c: 0}
		return s.valIn(i, allowed)
	}
}

func firstAllowed(allowed uint8, from fmtKind) fmtKind {
	// Conversion targets in preference order.
	prefs := [...]fmtKind{fRJS, fRJZ, fLJ, fPAIR, fRJU}
	for _, f := range prefs {
		if allowed&(1<<f) != 0 {
			return f
		}
	}
	return from
}

// convert emits code turning value src (format from) into dst with a
// format permitted by allowed.
func (s *state) convert(dst, src uint8, from fmtKind, allowed uint8) {
	to := firstAllowed(allowed, from)
	switch {
	case from == fRJU && to == fRJS, from == fLJ && to == fRJS && false:
		s.f.shift(risc.SLL, dst, src, 16)
		s.f.shift(risc.SRA, dst, dst, 16)
	case from == fRJU && to == fRJZ, from == fRJS && to == fRJZ:
		s.f.imm(risc.ANDI, dst, src, 0xFFFF)
	case from == fRJZ && to == fRJS:
		s.f.shift(risc.SLL, dst, src, 16)
		s.f.shift(risc.SRA, dst, dst, 16)
	case from == fLJ && to == fRJS:
		s.f.shift(risc.SRA, dst, src, 16)
	case from == fLJ && to == fRJZ:
		s.f.shift(risc.SRL, dst, src, 16)
	case to == fLJ:
		s.f.shift(risc.SLL, dst, src, 16)
	case from == fPAIR && to == fRJS:
		s.f.shift(risc.SLL, dst, src, 16)
		s.f.shift(risc.SRA, dst, dst, 16)
	case from == fPAIR && to == fRJZ:
		s.f.imm(risc.ANDI, dst, src, 0xFFFF)
	case to == fPAIR:
		// Only reachable for RJS sources: a sign-extended 16-bit value IS
		// a correct 32-bit value.
		if from != fRJS {
			s.f.shift(risc.SLL, dst, src, 16)
			s.f.shift(risc.SRA, dst, dst, 16)
		} else {
			s.f.move(dst, src)
		}
	default:
		s.f.move(dst, src)
	}
}

const (
	anyRJ  = 1<<fRJS | 1<<fRJZ | 1<<fRJU // low 16 bits correct
	signOK = 1 << fRJS                   // full signed 32-bit correct
	zeroOK = 1 << fRJZ                   // full unsigned 32-bit correct
	pairOK = 1 << fPAIR
)

// retainTemp re-marks a temporary as busy (a popped slot's register being
// given a new owner).
func (s *state) retainTemp(r uint8) {
	if r >= risc.RegT0 && r < risc.RegT0+risc.NumTemp {
		s.tempBusy[r-risc.RegT0] = true
	}
}

// materializeConst returns a register holding the constant (using $zero
// for 0).
func (s *state) materializeConst(c int32) uint8 {
	if c == 0 {
		return risc.RegZero
	}
	t := s.allocTemp()
	s.f.li(t, c)
	return t
}

// constOf reports slot i's constant value if tracked.
func (s *state) constOf(i int) (int32, bool) {
	d := &s.slot[((i%8)+8)%8]
	if d.kind == lConst {
		return d.c, true
	}
	return 0, false
}

// --- stack operations ----------------------------------------------------

// pushDesc pushes a new value onto the emulated register stack.
func (s *state) pushDesc(d slotDesc) {
	s.rp = (s.rp + 1) & 7
	s.dropSlot(s.rp)
	s.slot[s.rp] = d
}

// popDesc pops the top descriptor.
func (s *state) popDesc() slotDesc {
	d := s.slot[s.rp]
	if d.kind == lPairHi {
		panic("core: popping half of a pair")
	}
	s.dropSlot(s.rp)
	s.rp = (s.rp - 1) & 7
	return d
}

// dropSlot forgets a slot (its storage may be reused).
func (s *state) dropSlot(i int) {
	i = ((i % 8) + 8) % 8
	if s.slot[i].kind == lReg {
		r := s.slot[i].reg
		if r >= risc.RegT0 && r < risc.RegT0+risc.NumTemp {
			// Temp freed unless another slot or CC still uses it.
			inUse := false
			for j := range s.slot {
				if j != i && s.slot[j].kind == lReg && s.slot[j].reg == r {
					inUse = true
				}
			}
			if s.cc.kind == ccVal || s.cc.kind == ccCmp {
				if s.cc.a == r || s.cc.b == r {
					inUse = true
				}
			}
			if !inUse {
				s.tempBusy[r-risc.RegT0] = false
			}
		}
	}
	s.slot[i] = slotDesc{kind: lNone}
}

// pushPair pushes a 32-bit pair (occupying two slots; the value lives with
// the low/top slot).
func (s *state) pushPair(d slotDesc) {
	s.rp = (s.rp + 1) & 7
	s.dropSlot(s.rp)
	s.slot[s.rp] = slotDesc{kind: lPairHi}
	s.rp = (s.rp + 1) & 7
	s.dropSlot(s.rp)
	d.pair = true
	if d.kind == lReg {
		d.fmt = fPAIR
	}
	s.slot[s.rp] = d
}

// popPair pops a 32-bit pair, returning a register holding the full value
// (or its constant).
func (s *state) popPair() slotDesc {
	d := s.slot[s.rp]
	if d.pair {
		s.dropSlot(s.rp)
		s.rp = (s.rp - 1) & 7
		s.dropSlot(s.rp) // the lPairHi half
		s.rp = (s.rp - 1) & 7
		return d
	}
	// The two slots were pushed independently (lo on top, hi below):
	// pack them into one register: pair = hi<<16 | lo&0xFFFF.
	lo := s.popDesc()
	hi := s.popDesc()
	if lo.kind == lConst && hi.kind == lConst {
		return slotDesc{kind: lConst, c: int32(hi.c<<16 | (lo.c & 0xFFFF)), pair: true}
	}
	// Materialize: t = (hi << 16) | zext16(lo)
	s.slot[(s.rp+1)&7] = hi
	s.slot[(s.rp+2)&7] = lo // temporarily restore for valIn bookkeeping
	hiR := s.valIn(s.rp+1, anyRJ)
	t := s.allocTemp()
	s.f.shift(risc.SLL, t, hiR, 16)
	loR := s.valIn(s.rp+2, zeroOK)
	s.f.alu(risc.OR, t, t, loR)
	s.dropSlot(s.rp + 1)
	s.dropSlot(s.rp + 2)
	return slotDesc{kind: lReg, reg: t, fmt: fPAIR, pair: true}
}

// --- condition code --------------------------------------------------------

// setCCFromValue records CC as the sign of the (sign-correct 32-bit) value
// in reg, if CC is live; otherwise the flag computation is elided, which
// the paper calls the most important optimization.
func (s *state) setCCFromValue(reg uint8) {
	if s.alwaysCC {
		s.cc = ccState{kind: ccVal, a: reg, b: reg}
		s.materializeCC()
		return
	}
	if !s.ccLive {
		s.cc = ccState{kind: ccNone}
		s.f.stats.elidedFlagOps++
		return
	}
	s.cc = ccState{kind: ccVal, a: reg, b: reg}
}

// setCCFromCmp records CC as a comparison between two registers.
func (s *state) setCCFromCmp(a, b uint8, unsigned bool) {
	if s.alwaysCC {
		s.cc = ccState{kind: ccCmp, a: a, b: b, unsigned: unsigned}
		s.materializeCC()
		return
	}
	if !s.ccLive {
		s.cc = ccState{kind: ccNone}
		s.f.stats.elidedFlagOps++
		return
	}
	s.cc = ccState{kind: ccCmp, a: a, b: b, unsigned: unsigned}
}

// materializeCC forces CC into $cc.
func (s *state) materializeCC() {
	switch s.cc.kind {
	case ccIn, ccNone:
		s.cc = ccState{kind: ccIn}
		return
	case ccVal:
		s.f.move(risc.RegCC, s.cc.a)
	case ccCmp:
		op := risc.SLT
		if s.cc.unsigned {
			op = risc.SLTU
		}
		t1 := s.allocTemp()
		t2 := s.allocTemp()
		s.f.alu(op, t1, s.cc.a, s.cc.b)
		s.f.alu(op, t2, s.cc.b, s.cc.a)
		s.f.alu(risc.SUBU, risc.RegCC, t2, t1)
		s.tempBusy[t1-risc.RegT0] = false
		s.tempBusy[t2-risc.RegT0] = false
	}
	s.cc = ccState{kind: ccIn}
}

// --- canonicalization ------------------------------------------------------

// canonicalize materializes the live portion of the TNS state: live slots
// into their homes (RJS, pairs unpacked), CC into $cc if live, and the RP
// field of $env. liveMask selects which registers matter (bit 8 = CC).
// After canonicalization the state is what any register-exact point — and
// the interpreter — expects.
func (s *state) canonicalize(liveMask uint16) {
	// Unpack pairs first (they occupy two slots).
	for i := 0; i < 8; i++ {
		if s.slot[i].kind == lReg && s.slot[i].pair &&
			(liveMask&regBit(i) != 0 || liveMask&regBit(i-1) != 0) {
			s.unpackPair(i)
		}
		if s.slot[i].kind == lConst && s.slot[i].pair &&
			(liveMask&regBit(i) != 0 || liveMask&regBit(i-1) != 0) {
			c := s.slot[i].c
			s.slot[i] = slotDesc{kind: lConst, c: int32(int16(c))}
			s.slot[(i-1+8)&7] = slotDesc{kind: lConst, c: c >> 16}
		}
	}
	for i := 0; i < 8; i++ {
		if liveMask&regBit(i) == 0 {
			continue
		}
		s.materializeSlot(i)
	}
	if liveMask&liveCC != 0 {
		s.materializeCC()
	} else if s.cc.kind != ccIn {
		s.cc = ccState{kind: ccNone}
	}
	s.syncEnvRP()
}

// unpackPair splits the 32-bit pair at slot i into its two 16-bit halves.
func (s *state) unpackPair(i int) {
	d := s.slot[i]
	pr := d.reg
	hiIdx := (i - 1 + 8) & 7
	hiT := s.allocTemp()
	s.f.shift(risc.SRA, hiT, pr, 16)
	loT := s.allocTemp()
	s.f.shift(risc.SLL, loT, pr, 16)
	s.f.shift(risc.SRA, loT, loT, 16)
	s.slot[i] = slotDesc{kind: lReg, reg: loT, fmt: fRJS}
	s.slot[hiIdx] = slotDesc{kind: lReg, reg: hiT, fmt: fRJS}
	// Free the pair's register if it was a temp.
	if pr >= risc.RegT0 && pr < risc.RegT0+risc.NumTemp {
		s.tempBusy[pr-risc.RegT0] = false
	}
}

// materializeSlot forces slot i into its home register, RJS.
func (s *state) materializeSlot(i int) {
	i = ((i % 8) + 8) % 8
	home := homeOf(i)
	d := &s.slot[i]
	switch d.kind {
	case lNone, lPairHi:
		return // dead or handled with its pair owner
	case lConst:
		s.writeBarrier(home, i)
		s.f.li(home, int32(int16(d.c)))
		*d = slotDesc{kind: lReg, reg: home, fmt: fRJS}
	case lReg:
		if d.reg == home && d.fmt == fRJS {
			return
		}
		src, sfmt := d.reg, d.fmt
		s.writeBarrier(home, i)
		if sfmt == fRJS {
			s.f.move(home, src)
		} else {
			s.convert(home, src, sfmt, signOK)
		}
		if src != home && src >= risc.RegT0 && src < risc.RegT0+risc.NumTemp {
			stillUsed := false
			for j := range s.slot {
				if j != i && s.slot[j].kind == lReg && s.slot[j].reg == src {
					stillUsed = true
				}
			}
			if !stillUsed && !((s.cc.kind == ccVal || s.cc.kind == ccCmp) && (s.cc.a == src || s.cc.b == src)) {
				s.tempBusy[src-risc.RegT0] = false
			}
		}
		*d = slotDesc{kind: lReg, reg: home, fmt: fRJS}
	}
}

// syncEnvRP updates the RP field of $env to the current static RP.
func (s *state) syncEnvRP() {
	if s.envRP == s.rp {
		return
	}
	// env = (env & ~7) | rp
	s.f.imm(risc.ANDI, risc.RegENV, risc.RegENV, ^int32(7)&0x1FF)
	if s.rp != 0 {
		s.f.imm(risc.ORI, risc.RegENV, risc.RegENV, int32(s.rp))
	}
	s.envRP = s.rp
}

// --- value table ----------------------------------------------------------

// lookupVT returns a register holding the keyed value, if still valid.
func (s *state) lookupVT(k vkey) (uint8, bool) {
	if s.noCSE {
		return 0, false
	}
	v, ok := s.vt[k]
	if !ok {
		return 0, false
	}
	if s.regGen[v.reg] != v.gen {
		delete(s.vt, k)
		return 0, false
	}
	s.touchTemp(v.reg)
	return v.reg, true
}

func (s *state) storeVT(k vkey, reg uint8) {
	s.vt[k] = vval{reg: reg, gen: s.regGen[reg]}
}

// invalidateLoads is called on dynamic stores (indirect, indexed, extended,
// block moves): every cached word load becomes stale. Pointer cells too,
// unless the Fast option's byte-store assumption applies.
func (s *state) invalidateLoads(killPtrCells bool) {
	s.memGen++
	if killPtrCells {
		s.ptrGen++
	}
}

// invalidateStatic is called on a store to a statically known cell: only
// entries that can alias it die. G-relative cells below the global limit
// cannot alias L/S-relative cells (the memory stack sits above the
// globals), which is what lets redundant fetches survive unrelated stores —
// the paper's most frequent form of common subexpression.
func (s *state) invalidateStatic(mode uint8, disp uint16, words int, globalWords uint16) {
	gRegion := mode == 0 /* ModeG */ && disp+uint16(words) <= globalWords
	for k := range s.vt {
		if k.kind != 'w' && k.kind != 'c' && k.kind != 'a' {
			continue
		}
		kG := k.mode == 0 && k.disp < globalWords
		switch {
		case gRegion && !kG:
			continue // global store cannot touch a stack-region cell
		case !gRegion && kG:
			continue // stack store cannot touch a global cell
		case gRegion && kG:
			if k.disp < disp || k.disp >= disp+uint16(words) {
				continue // distinct global cells
			}
		default:
			// Both in the stack region: L+, L- and S- forms may alias
			// one another; kill them all.
		}
		delete(s.vt, k)
	}
}

func (s *state) String() string {
	return fmt.Sprintf("state(rp=%d)", s.rp)
}
