package core_test

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/workloads"
)

// TestMIPSBackendByteStable pins the default (MIPS) target's output: the
// acceleration-section content hash for every workload at every level must
// match the golden hashes captured before the backend-interface refactor.
// This is the proof that extracting the backend seam was a no-op for the
// default target — identical RISC words, entries, ExpectedRP, PMap,
// statistics and FallbackWhy, bit for bit.
//
// Regenerate with GOLDEN_REGEN=1 (only legitimate when an intentional
// codegen change lands; the refactor itself must not need it).
func TestMIPSBackendByteStable(t *testing.T) {
	goldenPath := filepath.Join("testdata", "mips_golden.json")
	got := map[string]string{}
	for _, name := range workloads.Names {
		for _, lvl := range []codefile.AccelLevel{
			codefile.LevelStmtDebug, codefile.LevelDefault, codefile.LevelFast,
		} {
			w, err := workloads.Build(name, 2)
			if err != nil {
				t.Fatal(err)
			}
			opts := core.Options{Level: lvl, LibSummaries: w.LibSummaries}
			if err := core.Accelerate(w.User, opts); err != nil {
				t.Fatalf("%s/%v: %v", name, lvl, err)
			}
			key := fmt.Sprintf("%s/%v/user", name, lvl)
			got[key] = accelContentHash(w.User.Accel)
			if w.Lib != nil {
				libOpts := core.Options{Level: lvl,
					CodeBase: millicode.LibCodeBase, Space: 1}
				if err := core.Accelerate(w.Lib, libOpts); err != nil {
					t.Fatalf("%s/%v lib: %v", name, lvl, err)
				}
				got[fmt.Sprintf("%s/%v/lib", name, lvl)] = accelContentHash(w.Lib.Accel)
			}
		}
	}

	if os.Getenv("GOLDEN_REGEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, _ := json.MarshalIndent(got, "", "  ")
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d entries)", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with GOLDEN_REGEN=1 on the "+
			"pre-refactor tree): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for key, wh := range want {
		if got[key] != wh {
			t.Errorf("%s: accel content hash changed: got %s want %s",
				key, got[key], wh)
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: not in golden file (stale goldens?)", key)
		}
	}
}

// accelContentHash hashes every output-bearing field of an acceleration
// section in a canonical order. Deliberately independent of the codefile
// serialization format, so a format-version bump (e.g. adding the backend
// tag) does not disturb the refactor-is-a-no-op proof.
func accelContentHash(a *codefile.AccelSection) string {
	h := sha256.New()
	be := func(v any) { binary.Write(h, binary.BigEndian, v) }
	fmt.Fprintf(h, "level=%d\n", a.Level)
	fmt.Fprintf(h, "risc=%d\n", len(a.RISC))
	be(a.RISC)
	fmt.Fprintf(h, "entries=%d\n", len(a.Entries))
	be(a.Entries)
	fmt.Fprintf(h, "exprp=%d\n", len(a.ExpectedRP))
	h.Write(a.ExpectedRP)
	pm := a.PMap.Pack()
	fmt.Fprintf(h, "pmap=%d\n", len(pm))
	h.Write(pm)
	fmt.Fprintf(h, "stats=%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
		a.Stats.TNSInstrs, a.Stats.TableWords, a.Stats.RISCInstrs,
		a.Stats.RPChecks, a.Stats.GuessedProcs, a.Stats.PuzzlePoints,
		a.Stats.WeldedStmts, a.Stats.FilledSlots, a.Stats.ElidedFlagOps)
	addrs := make([]uint16, 0, len(a.FallbackWhy))
	for addr := range a.FallbackWhy {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	fmt.Fprintf(h, "why=%d\n", len(addrs))
	for _, addr := range addrs {
		fmt.Fprintf(h, "%d=%d\n", addr, a.FallbackWhy[addr])
	}
	return hex.EncodeToString(h.Sum(nil))
}
