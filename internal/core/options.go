// Package core implements the Accelerator: the static object-code
// translator that is the primary contribution of Andrews & Sand 1992. It
// reads a TNS codefile, recovers control flow (including CASE jump tables
// embedded in the code), performs interprocedural RP analysis to assign an
// absolute register-stack position to every instruction, runs live/dead
// analysis over the eight stack registers and the condition code, and
// generates optimized RISC code plus the PMap that ties the two instruction
// streams together at register-exact and memory-exact points. Puzzles the
// static analysis cannot settle become run-time checks or interpreter
// fallbacks, never wrong code.
package core

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"

	"tnsr/internal/backend"
	"tnsr/internal/backend/mips"
	"tnsr/internal/codefile"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
)

// Options controls a translation, mirroring the paper's user-visible knobs.
type Options struct {
	// Level selects StmtDebug, Default or Fast translation.
	Level codefile.AccelLevel

	// Backend selects the RISC target the analysis core's virtual stream
	// is encoded for. Nil means the MIPS/R3000 default — the paper's
	// target and the only one whose bytes predate the backend seam. The
	// backend's identity is folded into TransKey and stamped into the
	// acceleration section so a runner never simulates code with the
	// wrong target.
	Backend backend.Backend

	// Hints carries the optional "translation hints" the paper describes:
	// never needed for correctness, only to avoid interpreter interludes.
	Hints Hints

	// LibSummaries gives result-size summaries for the system library
	// ("standard library descriptions"): PEP index -> result words.
	LibSummaries map[uint16]int8

	// IgnoreSummaries makes the Accelerator discard the compiler's
	// per-procedure result-size summaries and rely on its own recursive
	// analysis and guessing — the paper's "older codefiles" situation.
	IgnoreSummaries bool

	// SelectProcs, when non-nil, restricts translation to the named
	// procedures; calls to untranslated procedures fall into interpreter
	// mode. This implements the call/return design's "future possibility
	// of selectively accelerating just the most time-consuming
	// subroutines of a program".
	SelectProcs map[string]bool

	// CodeBase is the word index in the RISC code space where this
	// codefile's translation will be loaded (millicode.UserCodeBase or
	// millicode.LibCodeBase).
	CodeBase uint32

	// MilliLabels maps millicode entry names to absolute RISC word
	// indexes (from millicode.Build; the millicode is loaded at 0).
	MilliLabels map[string]uint32

	// Space is the codefile's code-space bit (0 user, 1 library), stored
	// into $env by prologues so stack markers record the right space.
	Space uint8

	// Workers is the number of translation workers procedure translation
	// fans out to after the shared analysis phases. 0 (or negative) means
	// runtime.GOMAXPROCS(0). The emitted acceleration section is
	// byte-identical for every worker count; the knob trades wall-clock
	// translation latency only.
	Workers int

	// Ablation switches, for quantifying the optimizations the paper names
	// (see the ablation benchmarks). All default off.
	DisableFlagElision bool // compute CC at every flag-setting instruction
	DisableCSE         bool // no reuse of fetches and address computations
	DisableSchedule    bool // no delay-slot filling or stall avoidance

	// Sched, when non-nil, replaces the private per-translation worker
	// pool: fragment translation jobs are handed to it instead of to
	// Workers goroutines, so an external scheduler (the tnsxlated
	// work-stealing queue) can interleave fragments from concurrently
	// submitted codefiles. Like Workers, Sched changes wall-clock only —
	// fragments are independent and the merge is positional, so the
	// emitted section is byte-identical under any scheduler — and it is
	// excluded from TransKey for the same reason.
	Sched FragSched

	// Obs, when non-nil, receives per-phase translation timings
	// (analyze/rp/liveness/translate/merge/schedule/finalize). Nil costs
	// nothing beyond one comparison per phase.
	Obs *obs.Recorder

	// Profile, when non-nil, feeds a prior run's observations back into
	// analysis (profile-guided retranslation): observed result sizes
	// replace guesses at unprovable call sites (still backed by the
	// run-time RP check), conflicting RP joins whose single observed RP
	// confirms the propagated value become guarded blocks instead of
	// unconditional fallbacks, and XCAL dispatch gains direct-call fast
	// paths for observed targets. The profile is advisory: every use keeps
	// its run-time guard, so a wrong or stale profile costs interludes,
	// never correctness. A profile whose fingerprint no longer matches the
	// codefile is ignored entirely.
	Profile *pgo.Profile

	// ProfileCover, when > 0 with a Profile attached and SelectProcs
	// unset, restricts translation to the hottest procedures covering this
	// fraction of the profile's residency weight (plus main). 0 translates
	// everything, keeping profiled output observationally identical to
	// unprofiled.
	ProfileCover float64
}

// FragSched executes the independent fragment jobs of one translation. Run
// must call job(k) exactly once for every k in [0, n), possibly concurrently
// and in any order, and return only after every call has finished. The
// default implementation is the private worker pool in parallel.go; the
// tnsxlated service substitutes a queue shared across translations.
type FragSched interface {
	Run(n int, job func(k int))
}

// Hints is the optional per-procedure advice file.
type Hints struct {
	// ReturnValSize overrides the guessed result size of a procedure
	// (by name) — the one hint kind the paper reports customers using
	// (7 programs of 199).
	ReturnValSize map[string]int8
	// XCALResultSize overrides the guessed result size for XCAL sites at
	// specific code addresses (detailed hints "only used by the system
	// library").
	XCALResultSize map[uint16]int8
}

// Default option levels for convenience.
func DefaultOptions() Options {
	return Options{Level: codefile.LevelDefault}
}

// TransKey condenses every knob that affects Accelerate's output — plus the
// input codefile's fingerprint and the serialization format version — into
// 16 hex digits: the retranslation-cache key. Two translations with equal
// keys emit byte-identical acceleration sections (the determinism the
// parallel-pipeline tests already prove), so a cache may serve one's output
// for the other. Workers and Obs are deliberately excluded: they change
// wall-clock and telemetry, never the artifact.
func (o Options) TransKey(fileFingerprint uint64) (string, error) {
	o = o.withDefaults()
	h := fnv.New64a()
	put := func(parts ...any) {
		fmt.Fprintln(h, parts...)
	}
	put("tnsr/transkey/v1", codefile.FormatVersion, fileFingerprint)
	put("backend", o.Backend.ID(), o.Backend.Name())
	put(o.Level, o.Space, o.CodeBase, o.IgnoreSummaries,
		o.DisableFlagElision, o.DisableCSE, o.DisableSchedule)

	putStringMap := func(tag string, m map[string]int8) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			put(tag, k, m[k])
		}
	}
	putStringMap("hint-ret", o.Hints.ReturnValSize)
	{
		keys := make([]int, 0, len(o.Hints.XCALResultSize))
		for k := range o.Hints.XCALResultSize {
			keys = append(keys, int(k))
		}
		sort.Ints(keys)
		for _, k := range keys {
			put("hint-xcal", k, o.Hints.XCALResultSize[uint16(k)])
		}
	}
	{
		keys := make([]int, 0, len(o.LibSummaries))
		for k := range o.LibSummaries {
			keys = append(keys, int(k))
		}
		sort.Ints(keys)
		for _, k := range keys {
			put("libsum", k, o.LibSummaries[uint16(k)])
		}
	}
	{
		keys := make([]string, 0, len(o.SelectProcs))
		for k, v := range o.SelectProcs {
			if v {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			put("select", k)
		}
	}
	{
		keys := make([]string, 0, len(o.MilliLabels))
		for k := range o.MilliLabels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			put("milli", k, o.MilliLabels[k])
		}
	}
	if o.Profile != nil {
		ph, err := o.Profile.Hash()
		if err != nil {
			return "", fmt.Errorf("core: TransKey: %w", err)
		}
		put("profile", ph, o.ProfileCover)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// withDefaults returns a copy of o with every unset knob filled in. All
// entry points defaulted through this copy, so a caller's Options struct is
// never written to.
func (o Options) withDefaults() Options {
	if o.Level == codefile.LevelNone {
		o.Level = codefile.LevelDefault
	}
	if o.Backend == nil {
		o.Backend = mips.Default
	}
	if o.MilliLabels == nil {
		_, labels := o.Backend.Millicode()
		o.MilliLabels = labels
	}
	if o.CodeBase == 0 {
		o.CodeBase = millicode.UserCodeBase
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}
