package core_test

import (
	"fmt"
	"testing"

	"tnsr/internal/tnsgen"
)

// Randomized translation-fidelity property tests. The program generator
// itself lives in internal/tnsgen (promoted from this file); these tests
// keep the historical seed streams running against the core fidelity
// harness at every option level. The wider coverage-guided campaigns,
// steering, minimization, and the scenario corpus are in internal/tnsgen's
// own tests.

func TestFidelityRandomPrograms(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := tnsgen.Generate(fmt.Sprintf("rand%d", seed), seed, tnsgen.LegacyConfig())
			src := p.UserSource()
			defer func() {
				if t.Failed() {
					t.Logf("program:\n%s", src)
				}
			}()
			runFidelity(t, p.Name, src)
		})
	}
}

func TestFidelityRandomLibraryPrograms(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 5
	}
	cfg := tnsgen.LegacyConfig()
	cfg.Library = true
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := tnsgen.Generate(fmt.Sprintf("randlib%d", seed), seed, cfg)
			userSrc, libSrc := p.UserSource(), p.LibSource()
			defer func() {
				if t.Failed() {
					t.Logf("user:\n%s\nlib:\n%s", userSrc, libSrc)
				}
			}()
			runFidelityLib(t, p.Name, userSrc, libSrc)
		})
	}
}
