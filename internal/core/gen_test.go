package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Randomized translation-fidelity property test: generate structured TNS
// programs that respect the compiler conventions (register stack empty
// across calls, results matching summaries), then check that interpretation
// and accelerated execution agree bit-for-bit at every option level.

// progGen builds random but well-formed TNS assembly.
type progGen struct {
	r     *rand.Rand
	sb    strings.Builder
	depth int // static register-stack depth within the current proc
	label int
	// procs generated so far: result words and arg words, so calls can be
	// generated against lower-numbered procedures (a DAG, so no unbounded
	// recursion; recursion is covered by directed tests).
	procs []genProc
}

type genProc struct {
	name    string
	results int
	args    int
	// summaryHidden procs carry no compiler summary: the Accelerator must
	// analyze or guess their result size.
	summaryHidden bool
}

func (g *progGen) pr(format string, args ...any) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
}

func (g *progGen) newLabel() string {
	g.label++
	return fmt.Sprintf("lab%d", g.label)
}

// pushValue emits code that pushes one word.
func (g *progGen) pushValue() {
	g.depth++
	switch g.r.Intn(6) {
	case 0:
		g.pr("  LDI %d", g.r.Intn(200)-100)
	case 1:
		g.pr("  LOAD G+%d", g.r.Intn(24))
	case 2:
		g.pr("  LDI %d", g.r.Intn(100))
		g.pr("  LDHI %d", g.r.Intn(256))
	case 3:
		g.pr("  LDB G+%d", g.r.Intn(24))
	case 4:
		g.pr("  LGA %d", g.r.Intn(24))
	case 5:
		g.pr("  LDI %d", g.r.Intn(8))
		g.pr("  LOAD G+8,X") // within the first 24 globals
	}
}

// combine pops two words and pushes one.
func (g *progGen) combine() {
	ops := []string{"ADD", "SUB", "LAND", "LOR", "XOR", "MPY"}
	g.pr("  %s", ops[g.r.Intn(len(ops))])
	g.depth--
}

// expr builds a random expression of the given approximate size, leaving
// one word on the register stack.
func (g *progGen) expr(size int) {
	g.pushValue()
	for i := 0; i < size; i++ {
		g.pushValue()
		g.combine()
		if g.r.Intn(3) == 0 {
			unary := []string{"NEG", "NOT", "SWAB", "ADDI 3", "ANDI 63",
				"ORI 5", "SHL 2", "SHRL 1", "SHRA 1", "DUP\n  DEL"}
			g.pr("  %s", unary[g.r.Intn(len(unary))])
		}
	}
}

// store pops the top into a random global (G+2..G+23; G+0/G+1 and the
// high globals are reserved for the harness).
func (g *progGen) store() {
	g.pr("  STOR G+%d", 2+g.r.Intn(22))
	g.depth--
}

// statement emits one random statement (net stack effect zero).
func (g *progGen) statement(depthBudget int) {
	switch g.r.Intn(13) {
	case 0, 1, 2: // simple assignment
		g.expr(g.r.Intn(3))
		g.store()
	case 3: // conditional
		g.expr(g.r.Intn(2))
		l1 := g.newLabel()
		l2 := g.newLabel()
		conds := []string{"BL", "BE", "BLE", "BG", "BNE", "BGE"}
		g.pr("  CMPI %d", g.r.Intn(20)-10)
		g.pr("  DEL")
		g.depth--
		g.pr("  %s %s", conds[g.r.Intn(len(conds))], l1)
		g.statementSimple()
		g.pr("  BUN %s", l2)
		g.pr("%s:", l1)
		g.statementSimple()
		g.pr("%s:", l2)
	case 4: // byte store
		g.expr(1)
		g.pr("  STB G+%d", 8+g.r.Intn(16))
		g.depth--
	case 5: // 32-bit arithmetic
		g.pushValue()
		g.pushValue()
		g.pushValue()
		g.pushValue()
		dops := []string{"DADD", "DSUB", "DMPY"}
		g.pr("  %s", dops[g.r.Intn(len(dops))])
		g.depth -= 2
		g.pr("  STD G+%d", 2*(1+g.r.Intn(11)))
		g.depth -= 2
	case 6: // call a previously generated procedure
		if len(g.procs) == 0 || depthBudget <= 0 {
			g.statementSimple()
			return
		}
		g.call(g.procs[g.r.Intn(len(g.procs))])
	case 7: // CASE dispatch
		g.caseStmt()
	case 8: // compare into branch storing flags
		g.expr(1)
		g.pushValue()
		g.pr("  CMP")
		g.depth -= 2
		l1 := g.newLabel()
		g.pr("  BG %s", l1)
		g.statementSimple()
		g.pr("%s:", l1)
	case 9: // indexed store
		g.expr(1)
		g.pr("  LDI %d", g.r.Intn(8))
		g.depth++
		g.pr("  STOR G+8,X")
		g.depth -= 2
	case 10: // block move between two scratch buffers (byte addresses)
		g.pr("  LDI %d", 2*(32+g.r.Intn(8)))
		g.pr("  LDI %d", 2*(44+g.r.Intn(8)))
		g.pr("  LDI %d", 1+g.r.Intn(6))
		g.depth += 3
		if g.r.Intn(2) == 0 {
			g.pr("  MOVB")
		} else {
			g.pr("  MOVW")
		}
		g.depth -= 3
	case 11: // byte-string compare or scan feeding a store
		if g.r.Intn(2) == 0 {
			g.pr("  LDI %d", 2*(32+g.r.Intn(4)))
			g.pr("  LDI %d", 2*(44+g.r.Intn(4)))
			g.pr("  LDI %d", 1+g.r.Intn(6))
			g.depth += 3
			g.pr("  CMPB")
			g.depth -= 3
			l := g.newLabel()
			g.pr("  BE %s", l)
			g.statementSimple()
			g.pr("%s:", l)
		} else {
			g.pr("  LDI %d", 2*(32+g.r.Intn(4)))
			g.pr("  LDI %d", g.r.Intn(128))
			g.pr("  LDI %d", 1+g.r.Intn(8))
			g.depth += 3
			g.pr("  SCNB")
			g.depth -= 2
			g.store()
		}
	case 12: // register-barrel gymnastics: absolute registers and EXCH
		g.pushValue()
		g.pushValue()
		switch g.r.Intn(3) {
		case 0:
			g.pr("  EXCH")
		case 1:
			g.pr("  STAR 2")
			g.depth--
			g.pr("  LDRA 2")
			g.depth++
		case 2:
			g.pr("  DUP")
			g.pr("  DEL")
		}
		g.store()
		g.store()
	}
}

// statementSimple emits a guaranteed-simple statement.
func (g *progGen) statementSimple() {
	g.expr(1)
	g.store()
}

func (g *progGen) caseStmt() {
	n := 2 + g.r.Intn(3)
	labels := make([]string, n)
	for i := range labels {
		labels[i] = g.newLabel()
	}
	after := g.newLabel()
	g.expr(0)
	g.pr("  ANDI 7") // keep the index small but sometimes out of range
	g.pr("  CASE")
	g.depth--
	g.pr("CASETAB %s", strings.Join(labels, ", "))
	// Out-of-range falls through here.
	g.statementSimple()
	g.pr("  BUN %s", after)
	for _, l := range labels {
		g.pr("%s:", l)
		g.statementSimple()
		g.pr("  BUN %s", after)
	}
	g.pr("%s:", after)
}

// call invokes p with the calling convention: args pushed on the memory
// stack, register stack empty, results consumed afterwards.
func (g *progGen) call(p genProc) {
	for i := 0; i < p.args; i++ {
		g.expr(g.r.Intn(2))
		g.pr("  ADDS 1")
		g.pr("  STOR S-0")
		g.depth--
	}
	indirect := g.r.Intn(4) == 0
	if indirect {
		idx := -1
		for i, q := range g.procs {
			if q.name == p.name {
				idx = i
			}
		}
		g.pr("  LDPL %d", idx)
		g.depth++
		g.pr("  XCAL")
		g.depth--
		if g.r.Intn(2) == 0 {
			// The compiler clue.
			g.pr("  SETRP %d", (7+p.results)%8)
		}
		// Otherwise the Accelerator guesses from the following code.
	} else {
		g.pr("  PCAL %s", p.name)
	}
	g.depth += p.results
	for i := 0; i < p.results; i++ {
		g.store()
	}
}

// proc generates one procedure.
func (g *progGen) proc(idx int, results, args int, hidden bool) genProc {
	p := genProc{
		name:    fmt.Sprintf("p%d", idx),
		results: results,
		args:    args,
	}
	if hidden {
		g.pr("PROC %s ARGS %d", p.name, args) // no RESULT summary
		p.summaryHidden = true
	} else {
		g.pr("PROC %s RESULT %d ARGS %d", p.name, results, args)
	}
	g.depth = 0
	nstmt := 1 + g.r.Intn(4)
	for i := 0; i < nstmt; i++ {
		if g.r.Intn(3) == 0 {
			g.pr("  STMT %d", i+1)
		}
		g.statement(1)
		if g.depth != 0 {
			panic("generator lost stack balance")
		}
	}
	// Use the arguments sometimes.
	if args > 0 && g.r.Intn(2) == 0 {
		g.pr("  LOAD L-%d", 3+g.r.Intn(args))
		g.pr("  STOR G+%d", 2+g.r.Intn(22))
	}
	for i := 0; i < results; i++ {
		g.expr(g.r.Intn(2))
	}
	g.depth -= results
	g.pr("  EXIT %d", args)
	g.pr("ENDPROC")
	return p
}

// generate builds a whole program.
func generateProgram(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	g.pr("GLOBALS 64")
	g.pr("DATA 8: 11 22 33 44 55 66 77 88")
	g.pr("MAIN main")
	nproc := 1 + g.r.Intn(4)
	for i := 0; i < nproc; i++ {
		results := g.r.Intn(3)
		args := g.r.Intn(3)
		hidden := g.r.Intn(3) == 0
		p := g.proc(i, results, args, hidden)
		g.procs = append(g.procs, p)
	}
	// A bounded loop in main exercises join points.
	g.pr("PROC main")
	g.depth = 0
	g.pr("  LDI %d", 3+g.r.Intn(5))
	g.pr("  STOR G+60") // loop counter, outside the random-store range
	g.pr("mainloop:")
	for i := 0; i < 2+g.r.Intn(3); i++ {
		g.depth = 0
		g.statement(1)
	}
	g.pr("  LOAD G+60")
	g.pr("  ADDI -1")
	g.pr("  STOR G+60")
	g.pr("  LOAD G+60")
	g.pr("  BNZ mainloop")
	// Report a checksum over the globals via the console.
	g.pr("  LDI 0")
	g.pr("  STOR G+61")
	g.pr("  LDI 2")
	g.pr("  STOR G+60")
	g.pr("ckloop:")
	g.pr("  LOAD G+61")
	g.pr("  LOAD G+60")
	g.pr("  LOAD G+0,X")
	g.pr("  XOR")
	g.pr("  STOR G+61")
	g.pr("  LOAD G+60")
	g.pr("  ADDI 1")
	g.pr("  STOR G+60")
	g.pr("  LOAD G+60")
	g.pr("  CMPI 24")
	g.pr("  BL ckloop")
	g.pr("  LOAD G+61")
	g.pr("  SVC 2")
	g.pr("  EXIT 0")
	g.pr("ENDPROC")
	return g.sb.String()
}

func TestFidelityRandomPrograms(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := generateProgram(seed)
			defer func() {
				if t.Failed() {
					t.Logf("program:\n%s", src)
				}
			}()
			runFidelity(t, fmt.Sprintf("rand%d", seed), src)
		})
	}
}

// generateLibProgram builds a random user+library pair: the library is a
// set of procedures called through SCAL, exercising the cross-codefile
// dispatch and EXIT paths.
func generateLibProgram(seed int64) (string, string) {
	g := &progGen{r: rand.New(rand.NewSource(seed * 7919))}
	// Library: 3 procedures over its own global region (shared data space;
	// the harness compiles the user at the same base, so keep the library
	// writes inside G+24..G+31 to avoid clobbering the user's checksum).
	var lib strings.Builder
	lib.WriteString("GLOBALS 64\nMAIN dummy\n")
	libProcs := []genProc{}
	for i := 0; i < 3; i++ {
		results := g.r.Intn(3)
		args := g.r.Intn(2)
		var b strings.Builder
		fmt.Fprintf(&b, "PROC lib%d RESULT %d ARGS %d\n", i, results, args)
		// A small computation over the shared scratch area.
		b.WriteString("  LDI 7\n  STOR G+24\n")
		if args > 0 {
			b.WriteString("  LOAD L-3\n  STOR G+25\n")
		}
		b.WriteString("  LOAD G+24\n  LOAD G+25\n  ADD\n  STOR G+26\n")
		for j := 0; j < results; j++ {
			fmt.Fprintf(&b, "  LOAD G+%d\n", 24+g.r.Intn(3))
		}
		fmt.Fprintf(&b, "  EXIT %d\nENDPROC\n", args)
		lib.WriteString(b.String())
		libProcs = append(libProcs, genProc{name: fmt.Sprintf("lib%d", i),
			results: results, args: args})
	}
	lib.WriteString("PROC dummy\n  EXIT 0\nENDPROC\n")

	var user strings.Builder
	user.WriteString("GLOBALS 64\nDATA 8: 11 22 33 44\nMAIN main\nPROC main\n")
	user.WriteString("  LDI 4\n  STOR G+60\n")
	user.WriteString("mainloop:\n")
	for i := 0; i < 3; i++ {
		p := libProcs[g.r.Intn(len(libProcs))]
		for a := 0; a < p.args; a++ {
			fmt.Fprintf(&user, "  LDI %d\n  ADDS 1\n  STOR S-0\n", g.r.Intn(50))
		}
		fmt.Fprintf(&user, "  SCAL %d\n", indexOf(libProcs, p.name))
		for rres := 0; rres < p.results; rres++ {
			fmt.Fprintf(&user, "  STOR G+%d\n", 2+g.r.Intn(20))
		}
	}
	user.WriteString("  LOAD G+60\n  ADDI -1\n  STOR G+60\n  LOAD G+60\n  BNZ mainloop\n")
	// Checksum.
	user.WriteString("  LDI 0\n  STOR G+61\n  LDI 2\n  STOR G+60\n")
	user.WriteString("ck:\n  LOAD G+61\n  LOAD G+60\n  LOAD G+0,X\n  XOR\n  STOR G+61\n")
	user.WriteString("  LOAD G+60\n  ADDI 1\n  STOR G+60\n  LOAD G+60\n  CMPI 30\n  BL ck\n")
	user.WriteString("  LOAD G+61\n  SVC 2\n  EXIT 0\nENDPROC\n")
	return user.String(), lib.String()
}

func indexOf(ps []genProc, name string) int {
	for i, p := range ps {
		if p.name == name {
			return i
		}
	}
	return -1
}

func TestFidelityRandomLibraryPrograms(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 5
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			userSrc, libSrc := generateLibProgram(seed)
			defer func() {
				if t.Failed() {
					t.Logf("user:\n%s\nlib:\n%s", userSrc, libSrc)
				}
			}()
			runFidelityLib(t, fmt.Sprintf("randlib%d", seed), userSrc, libSrc)
		})
	}
}
