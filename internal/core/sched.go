package core

import "tnsr/internal/risc"

// The Accelerator's final phase, per the paper: reorder RISC instructions
// within each basic block to fill delay slots, eliminate NOPs, and reduce
// pipeline stalls. Stores are never moved relative to other memory
// operations, and no instruction crosses a label or exact-point barrier. A
// store that moves into the delay slot of a following branch "welds" two
// TNS statements together, which the debugger reports.

type schedStats struct {
	filledSlots int
	welded      int
}

// schedule optimizes f.ins in place and remaps label positions.
func schedule(f *fn) schedStats {
	var st schedStats
	labeled := make([]bool, len(f.ins)+1)
	for _, pos := range f.labelPos {
		if pos >= 0 && int(pos) <= len(f.ins) {
			labeled[pos] = true
		}
	}

	var out []rinst
	remap := make([]int32, len(f.ins)+1)
	flushBlock := func(start int, blk []rinst) []rinst {
		blk = fillDelaySlot(blk, &st)
		blk = avoidLoadUse(blk)
		for k := range blk {
			remap[start+k] = -1 // positions within a block are fluid
		}
		remap[start] = int32(len(out))
		return append(out, blk...)
	}

	blockStart := 0
	var blk []rinst
	for i := 0; i < len(f.ins); i++ {
		r := f.ins[i]
		if (labeled[i] || r.isExact) && len(blk) > 0 {
			out = flushBlock(blockStart, blk)
			blk, blockStart = nil, i
		}
		if len(blk) == 0 {
			blockStart = i
		}
		blk = append(blk, r)
		// A control transfer plus its delay slot ends the block.
		if r.op.HasDelaySlot() && !r.isWord {
			// The next instruction is the delay slot: include it.
			if i+1 < len(f.ins) && !labeled[i+1] && !f.ins[i+1].isExact {
				blk = append(blk, f.ins[i+1])
				i++
			}
			out = flushBlock(blockStart, blk)
			blk, blockStart = nil, i+1
		}
	}
	if len(blk) > 0 {
		out = flushBlock(blockStart, blk)
	}
	remap[len(f.ins)] = int32(len(out))

	// Remap labels. Every bound label points at a block start (or the end).
	for li, pos := range f.labelPos {
		if pos < 0 {
			continue
		}
		np := remap[pos]
		if np < 0 {
			// The label landed mid-block, which the emitter never does
			// for reachable labels; keep a safe fallback.
			for p := pos; p >= 0; p-- {
				if remap[p] >= 0 {
					np = remap[p]
					break
				}
			}
		}
		f.labelPos[li] = np
	}
	f.ins = out
	return st
}

// movable reports whether r may be reordered within its block at all.
func movable(r rinst) bool {
	if r.isWord || r.isExact || r.hasLA {
		return false
	}
	switch r.op {
	case risc.BREAK, risc.SYSCALL, risc.MULT, risc.MULTU, risc.DIV,
		risc.DIVU, risc.MFHI, risc.MFLO:
		return false
	}
	if r.op.HasDelaySlot() {
		return false
	}
	return true
}

func isMem(r rinst) bool { return r.op.IsLoad() || r.op.IsStore() }

// independent reports whether a and b can swap order.
func independent(a, b rinst) bool {
	da := a.toInstr().Def()
	db := b.toInstr().Def()
	// Write-write.
	if da >= 0 && da == db {
		return false
	}
	// a writes something b reads.
	if da > 0 {
		for _, u := range b.toInstr().Uses(nil) {
			if int(u) == da {
				return false
			}
		}
	}
	// b writes something a reads.
	if db > 0 {
		for _, u := range a.toInstr().Uses(nil) {
			if int(u) == db {
				return false
			}
		}
	}
	// Memory ordering: never reorder two memory operations if either
	// stores (stores keep their exact sequence; loads may pass loads).
	if isMem(a) && isMem(b) && (a.op.IsStore() || b.op.IsStore()) {
		return false
	}
	return true
}

// toInstr views an rinst as a decoded risc.Instr for def/use queries.
func (r rinst) toInstr() risc.Instr {
	return risc.Instr{Op: r.op, Rs: r.rs, Rt: r.rt, Rd: r.rd, Shamt: r.shamt}
}

// fillDelaySlot replaces [..., I, B, nop] with [..., B, I] when I is
// independent of the branch.
func fillDelaySlot(blk []rinst, st *schedStats) []rinst {
	n := len(blk)
	if n < 3 {
		return blk
	}
	b := blk[n-2]
	slot := blk[n-1]
	if !b.op.HasDelaySlot() || b.isWord {
		return blk
	}
	if !(slot.op == risc.SLL && slot.rd == 0 && slot.rt == 0 && !slot.isWord) {
		return blk // the delay slot is already useful
	}
	cand := blk[n-3]
	if !movable(cand) || cand.isExact {
		return blk
	}
	// The branch must not depend on the candidate's result, and the
	// candidate must not clobber the branch's sources (JAL defines $ra).
	bi := b.toInstr()
	ci := cand.toInstr()
	cd := ci.Def()
	if cd >= 0 {
		for _, u := range bi.Uses(nil) {
			if int(u) == cd {
				return blk
			}
		}
	}
	bd := bi.Def()
	if bd >= 0 {
		if cd == bd {
			return blk
		}
		for _, u := range ci.Uses(nil) {
			if int(u) == bd {
				return blk
			}
		}
	}
	// Perform the move: drop the nop, swap candidate behind the branch.
	nb := append([]rinst{}, blk[:n-3]...)
	nb = append(nb, b, cand)
	st.filledSlots++
	if cand.op.IsStore() && cand.tnsAddr != b.tnsAddr {
		st.welded++
	}
	return nb
}

// avoidLoadUse breaks load-use pairs by hoisting a later independent
// instruction between them.
func avoidLoadUse(blk []rinst) []rinst {
	for i := 0; i+2 < len(blk); i++ {
		ld := blk[i]
		if !ld.op.IsLoad() {
			continue
		}
		use := blk[i+1]
		if use.op.HasDelaySlot() || use.isWord {
			// Never disturb a control transfer's pairing with its delay
			// slot.
			continue
		}
		usesLoaded := false
		for _, u := range use.toInstr().Uses(nil) {
			if u == ld.rt {
				usesLoaded = true
			}
		}
		if !usesLoaded {
			continue
		}
		x := blk[i+2]
		if !movable(x) || x.isExact {
			continue
		}
		// x must be independent of both the load and the consumer.
		if !independent(x, use) || !independent(ld, x) {
			continue
		}
		blk[i+1], blk[i+2] = x, use
	}
	return blk
}
