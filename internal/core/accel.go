package core

import (
	"fmt"

	"tnsr/internal/codefile"
	"tnsr/internal/millicode"
)

// Accelerate translates a TNS codefile in place, attaching the acceleration
// section (RISC code, PMap, entry table, statistics). It is the top-level
// Accelerator: invoked explicitly, post-compilation, needing no information
// from the user — hints are optional tuning, exactly as the paper insists.
func Accelerate(file *codefile.File, opts Options) error {
	if opts.Level == codefile.LevelNone {
		opts.Level = codefile.LevelDefault
	}
	if opts.MilliLabels == nil {
		_, labels := millicode.Build()
		opts.MilliLabels = labels
	}
	if opts.CodeBase == 0 {
		opts.CodeBase = millicode.UserCodeBase
	}
	if len(file.Procs) == 0 {
		return fmt.Errorf("core: codefile %q has no procedures", file.Name)
	}

	p, err := analyze(file, &opts)
	if err != nil {
		return err
	}
	p.resolveRP()
	p.liveness()

	f := newFn(len(file.Procs))
	tr := &translator{p: p, f: f, opts: &opts}
	tr.s = newState(f, p)
	tr.s.noCSE = opts.DisableCSE
	tr.s.alwaysCC = opts.DisableFlagElision
	if err := tr.translateAll(); err != nil {
		return err
	}

	if !opts.DisableSchedule {
		ss := schedule(f)
		tr.stats.FilledSlots = ss.filledSlots
		tr.stats.WeldedStmts = ss.welded
	}
	sec, err := tr.finalize()
	if err != nil {
		return err
	}
	file.Accel = sec
	return nil
}

// AnalysisReport summarizes the static analysis of a codefile without
// translating it: how many procedures needed guessed result sizes, which
// sites fall into interpreter mode, and whether hints would help — the
// Accelerator "points out subroutines that may benefit from hints".
type AnalysisReport struct {
	Procs          int
	KnownResults   int
	GuessedProcs   []string
	PuzzleSites    map[uint16]string
	CheckedCalls   int
	TrapsPossible  bool
	Instrs, Tables int
}

// Analyze runs the Accelerator's analysis phases only.
func Analyze(file *codefile.File, opts Options) (*AnalysisReport, error) {
	if opts.MilliLabels == nil {
		_, labels := millicode.Build()
		opts.MilliLabels = labels
	}
	p, err := analyze(file, &opts)
	if err != nil {
		return nil, err
	}
	p.resolveRP()
	p.liveness()
	rep := &AnalysisReport{
		Procs:         len(file.Procs),
		PuzzleSites:   p.puzzle,
		TrapsPossible: p.trapsPossible,
	}
	rep.Instrs, rep.Tables = p.countKinds()
	for i := range file.Procs {
		if p.resultWords[i] >= 0 {
			rep.KnownResults++
		}
		if p.guessedProc[i] {
			rep.GuessedProcs = append(rep.GuessedProcs, file.Procs[i].Name)
		}
	}
	for _, cs := range p.callSites {
		if cs.checked {
			rep.CheckedCalls++
		}
	}
	return rep, nil
}
