package core

import (
	"fmt"
	"time"

	"tnsr/internal/codefile"
	"tnsr/internal/pgo"
)

// Accelerate translates a TNS codefile in place, attaching the acceleration
// section (RISC code, PMap, entry table, statistics). It is the top-level
// Accelerator: invoked explicitly, post-compilation, needing no information
// from the user — hints are optional tuning, exactly as the paper insists.
//
// The analysis phases run once; procedure translation then fans out to
// opts.Workers workers (see parallel.go). The emitted section is
// byte-identical for every worker count. opts is taken by value and
// defaulted through a private copy: the caller's struct is never written to.
func Accelerate(file *codefile.File, opts Options) error {
	opts = opts.withDefaults()
	if len(file.Procs) == 0 {
		return fmt.Errorf("core: codefile %q has no procedures", file.Name)
	}
	applyProfile(file, &opts)

	// Phase timings flow to opts.Obs when attached; with a nil recorder
	// the mark closure reduces to one comparison per phase.
	var t0 time.Time
	if opts.Obs != nil {
		t0 = time.Now()
	}
	mark := func(name string) {
		if opts.Obs != nil {
			now := time.Now()
			opts.Obs.Phase(name, now.Sub(t0))
			t0 = now
		}
	}

	p, err := analyze(file, &opts)
	if err != nil {
		return err
	}
	mark("analyze")
	p.resolveRP()
	mark("rp")
	p.liveness()
	mark("liveness")

	f, stats, err := translate(p, &opts)
	if err != nil {
		return err
	}
	if opts.Obs != nil {
		t0 = time.Now() // translate times itself (see parallel.go)
	}

	// The delay-slot scheduler models the default target's pipeline; a
	// backend without delay slots gets the raw stream (its encoder drops
	// the explicit slot nops instead).
	if !opts.DisableSchedule && opts.Backend.Traits().DelaySlots {
		ss := schedule(f)
		stats.FilledSlots = ss.filledSlots
		stats.WeldedStmts = ss.welded
		mark("schedule")
	}
	sec, err := finalizeSection(p, &opts, f, stats)
	if err != nil {
		return err
	}
	mark("finalize")
	file.Accel = sec
	return nil
}

// applyProfile gates and expands the attached PGO profile on the private
// options copy. A profile captured against a different build of the
// codefile (fingerprint mismatch) is dropped entirely — stale advice must
// degrade to no advice. With a surviving profile and ProfileCover set,
// translation is restricted to the hottest procedures covering that
// fraction of the observed residency weight, always including main.
func applyProfile(file *codefile.File, opts *Options) {
	if opts.Profile == nil {
		return
	}
	if !opts.Profile.Matches(pgo.SpaceName(opts.Space), file.Fingerprint()) {
		opts.Profile = nil
		return
	}
	if opts.ProfileCover > 0 && opts.SelectProcs == nil {
		hot := opts.Profile.HotProcs(pgo.SpaceName(opts.Space), opts.ProfileCover)
		if len(hot) > 0 {
			sel := make(map[string]bool, len(hot)+1)
			for _, name := range hot {
				sel[name] = true
			}
			if int(file.MainPEP) < len(file.Procs) {
				sel[file.Procs[file.MainPEP].Name] = true
			}
			opts.SelectProcs = sel
		}
	}
}

// AnalysisReport summarizes the static analysis of a codefile without
// translating it: how many procedures needed guessed result sizes, which
// sites fall into interpreter mode, and whether hints would help — the
// Accelerator "points out subroutines that may benefit from hints".
type AnalysisReport struct {
	Procs          int
	KnownResults   int
	GuessedProcs   []string
	PuzzleSites    map[uint16]string
	CheckedCalls   int
	TrapsPossible  bool
	Instrs, Tables int
}

// Analyze runs the Accelerator's analysis phases only.
func Analyze(file *codefile.File, opts Options) (*AnalysisReport, error) {
	opts = opts.withDefaults()
	applyProfile(file, &opts)
	p, err := analyze(file, &opts)
	if err != nil {
		return nil, err
	}
	p.resolveRP()
	p.liveness()
	rep := &AnalysisReport{
		Procs:         len(file.Procs),
		PuzzleSites:   p.puzzle,
		TrapsPossible: p.trapsPossible,
	}
	rep.Instrs, rep.Tables = p.countKinds()
	for i := range file.Procs {
		if p.resultWords[i] >= 0 {
			rep.KnownResults++
		}
		if p.guessedProc[i] {
			rep.GuessedProcs = append(rep.GuessedProcs, file.Procs[i].Name)
		}
	}
	for _, cs := range p.callSites {
		if cs.checked {
			rep.CheckedCalls++
		}
	}
	return rep, nil
}
