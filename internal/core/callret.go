package core

import (
	"tnsr/internal/codefile"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/risc"
	"tnsr/internal/tns"
)

// Call, return, branch, CASE and SVC translation: the places where the
// paper's register-exact discipline bites. Every call site and return point
// is register-exact; EXIT returns through the millicode PMap lookup; XCAL
// and SCAL dispatch through the EMap; and run-time RP confirmation checks
// guard calls whose result size was guessed.

// emitPrologue emits a procedure's translated prologue: the frame-building
// steps of the TNS call instruction ("done in the subroutine's prologue",
// as the paper puts it), the code-space bit update, and the caller-RP entry
// check that guards against nonconforming callers.
func (t *translator) emitPrologue(pi int, entry uint16) {
	f := t.f
	f.curTNS = entry
	// A forward call may already have allocated this procedure's entry
	// label (ensureProcLabel); bind it rather than orphaning it.
	l := f.procEntry[pi]
	if l == noLabel {
		l = f.newLabel()
		f.procEntry[pi] = l
	}
	f.bind(l)

	// $t0 holds the caller's TNS return address. Push the stack marker
	// exactly as the interpreter's PCAL does: ret, env, caller L.
	f.mem(risc.SH, risc.RegT0, risc.RegS, 2)
	f.mem(risc.SH, risc.RegENV, risc.RegS, 4)
	f.shift(risc.SRL, risc.RegT0+1, risc.RegL, 1)
	f.mem(risc.SH, risc.RegT0+1, risc.RegS, 6)
	f.imm(risc.ADDIU, risc.RegS, risc.RegS, 6)
	f.move(risc.RegL, risc.RegS)

	// Now in the callee: set this codefile's space bit.
	if t.opts.Space == 1 {
		f.imm(risc.ORI, risc.RegENV, risc.RegENV, 0x100)
	} else {
		f.imm(risc.ANDI, risc.RegENV, risc.RegENV, 0x0FF)
	}

	// Entry RP check: compilers keep the register stack empty across
	// calls; a caller arriving with RP != RPEmpty is beyond static
	// analysis, so the body runs interpreted.
	fb := t.queueFallbackStub(entry, obs.EscapeRPConflict)
	f.imm(risc.ANDI, risc.RegT0+1, risc.RegENV, 7)
	f.imm(risc.XORI, risc.RegT0+1, risc.RegT0+1, tns.RPEmpty)
	f.br(risc.BNE, risc.RegT0+1, risc.RegZero, fb)
	f.nop()
}

// branchMask is the canonicalization mask used before control transfers:
// under StmtDebug the full register state (including CC) must be exact,
// since most transfer targets are statement boundaries.
func (t *translator) branchMask(addr uint16) uint16 {
	if t.opts.Level == codefile.LevelStmtDebug {
		return liveAll
	}
	return t.p.liveOut[addr]
}

// transControl translates the control major.
func (t *translator) transControl(addr uint16, in tns.Instr) (bool, error) {
	s := t.s
	switch in.Ctl {
	case tns.CtlBUN:
		s.canonicalize(t.branchMask(addr))
		t.f.jLocal(risc.J, t.blockLabel(in.BranchTargetAddr(addr)))
		t.f.nop()
		return false, nil

	case tns.CtlBCC:
		if in.Cond == tns.CondAlways {
			s.canonicalize(t.branchMask(addr))
			t.f.jLocal(risc.J, t.blockLabel(in.BranchTargetAddr(addr)))
			t.f.nop()
			return false, nil
		}
		if in.Cond == tns.CondNever {
			return true, nil
		}
		// Protect the symbolic CC through canonicalization, then branch
		// on its cheapest form. canonicalize would clear a symbolic CC
		// that is dead *after* the branch, but the branch itself still
		// consumes it, so restore it around the call.
		savedLive := s.ccLive
		s.ccLive = true
		savedCC := s.cc
		s.canonicalize(t.branchMask(addr))
		if s.cc.kind == ccNone {
			s.cc = savedCC
		}
		s.ccLive = savedLive
		t.emitCCBranch(in.Cond, t.blockLabel(in.BranchTargetAddr(addr)))
		if t.p.liveOut[addr]&liveCC == 0 {
			s.cc = ccState{kind: ccNone}
		}
		return true, nil

	case tns.CtlBRZ:
		v := s.valIn(s.rp, signOK|zeroOK)
		s.pin(v)
		s.popDesc()
		s.canonicalize(t.branchMask(addr))
		op := risc.BEQ
		if in.Cond == 1 { // BNZ
			op = risc.BNE
		}
		t.f.br(op, v, risc.RegZero, t.blockLabel(in.BranchTargetAddr(addr)))
		t.f.nop()
		return true, nil

	case tns.CtlPCAL:
		t.transCall(addr, in)
		return false, nil

	case tns.CtlSCAL:
		t.transCall(addr, in)
		return false, nil

	case tns.CtlEXIT:
		t.transExit(addr, in)
		return false, nil
	}
	return false, nil
}

// emitCCBranch emits the branch consuming the current symbolic CC.
func (t *translator) emitCCBranch(cond uint8, target label) {
	s := t.s
	f := t.f
	cc := s.cc
	if cc.kind == ccNone || cc.kind == ccIn {
		cc = ccState{kind: ccVal, a: risc.RegCC}
	}
	switch cc.kind {
	case ccVal:
		a := cc.a
		switch cond {
		case tns.CondL:
			f.br(risc.BLTZ, a, 0, target)
		case tns.CondE:
			f.br(risc.BEQ, a, risc.RegZero, target)
		case tns.CondLE:
			f.br(risc.BLEZ, a, 0, target)
		case tns.CondG:
			f.br(risc.BGTZ, a, 0, target)
		case tns.CondNE:
			f.br(risc.BNE, a, risc.RegZero, target)
		case tns.CondGE:
			f.br(risc.BGEZ, a, 0, target)
		}
		f.nop()
	case ccCmp:
		a, b := cc.a, cc.b
		slt := risc.SLT
		if cc.unsigned {
			slt = risc.SLTU
		}
		switch cond {
		case tns.CondE:
			f.br(risc.BEQ, a, b, target)
			f.nop()
		case tns.CondNE:
			f.br(risc.BNE, a, b, target)
			f.nop()
		case tns.CondL, tns.CondGE:
			tr := s.allocTemp()
			f.alu(slt, tr, a, b)
			if cond == tns.CondL {
				f.br(risc.BNE, tr, risc.RegZero, target)
			} else {
				f.br(risc.BEQ, tr, risc.RegZero, target)
			}
			f.nop()
		case tns.CondG, tns.CondLE:
			tr := s.allocTemp()
			f.alu(slt, tr, b, a)
			if cond == tns.CondG {
				f.br(risc.BNE, tr, risc.RegZero, target)
			} else {
				f.br(risc.BEQ, tr, risc.RegZero, target)
			}
			f.nop()
		}
	}
}

// transCall translates PCAL and SCAL. The call site is register-exact; the
// translated form is a direct jump to the target's prologue (PCAL within
// this codefile) or an EMap dispatch through millicode (SCAL).
func (t *translator) transCall(addr uint16, in tns.Instr) {
	s := t.s
	f := t.f
	// Nothing on the register stack survives a call; only $env's RP field
	// (stored into the marker by the prologue) must be accurate.
	s.canonicalize(0)

	if in.Ctl == tns.CtlPCAL {
		pep := int(in.Target)
		if pep >= len(f.procEntry) {
			// Bad PEP index: the interpreter will raise the trap.
			t.emitFallback(addr, obs.EscapeTrap)
			return
		}
		if !t.procTranslated(pep) {
			// Selective acceleration: the callee stays interpreted; fall
			// back for the whole call (the interpreter returns to RISC at
			// the return point if that is register-exact, which it is).
			t.emitFallback(addr, obs.EscapeUntranslated)
			return
		}
		f.li(risc.RegT0, int32(addr)+1) // TNS return address
		f.jLocal(risc.J, t.ensureProcLabel(pep))
		f.nop()
		return
	}
	// SCAL: dispatch through the library EMap.
	t.noteFallback(addr, obs.EscapeUntranslated)
	f.li(risc.RegT0, int32(addr)+1)
	f.li(risc.RegT0+1, int32(in.Target))
	f.li(risc.RegMT, int32(addr)) // fallback redoes the SCAL
	f.jAbs(risc.J, t.opts.MilliLabels[millicode.LScal])
	f.nop()
}

// procTranslated reports whether PEP index pi is being translated.
func (t *translator) procTranslated(pi int) bool {
	if t.opts.SelectProcs == nil {
		return true
	}
	return t.opts.SelectProcs[t.p.file.Procs[pi].Name]
}

// ensureProcLabel returns (creating if needed) the prologue label of pi.
func (t *translator) ensureProcLabel(pi int) label {
	if t.f.procEntry[pi] == noLabel {
		t.f.procEntry[pi] = t.f.newLabel()
	}
	return t.f.procEntry[pi]
}

// transXCAL translates the indirect call: register-exact, PLabel in $t1,
// dispatched through millicode.
func (t *translator) transXCAL(addr uint16) {
	s := t.s
	f := t.f
	// The PLabel stays on the architectural stack: canonicalize it into its
	// home register with $env still counting it, so a missed dispatch can
	// break to the interpreter and redo the XCAL exactly (pop included).
	// Every hit path — the devirtualized fast calls below and the millicode
	// dispatcher — consumes it by dropping one RP position from $env before
	// the callee prologue reads $env for the stack marker.
	s.canonicalize(regBit(s.rp))
	pl := homeOf(s.rp)
	postRP := ((s.rp - 1) + 8) & 7
	s.popDesc()
	t.emitDevirt(addr, pl, postRP)
	t.noteFallback(addr, obs.EscapeIndirectCall)
	f.li(risc.RegT0, int32(addr)+1)
	f.move(risc.RegT0+1, pl)
	f.li(risc.RegMT, int32(addr)) // fallback redoes the XCAL
	f.jAbs(risc.J, t.opts.MilliLabels[millicode.LXcal])
	f.nop()
}

// maxDevirtTargets bounds the direct-call fast paths emitted per XCAL site.
const maxDevirtTargets = 3

// emitDevirt turns an XCAL's profile-observed targets into guarded direct
// calls ahead of the EMap dispatch: compare the live PLabel in pl against
// each observed target's encoding and jump straight to its translated
// prologue on a match. A PLabel that matches none of the fast paths falls
// through to the millicode dispatch unchanged, so an incomplete or stale
// target set costs nothing but the compares. Only same-space targets are
// devirtualized (a cross-space transfer must update $env's space bit, which
// is the dispatcher's job).
func (t *translator) emitDevirt(addr uint16, pl uint8, postRP int) {
	prof := t.opts.Profile
	if prof == nil {
		return
	}
	own := pgo.SpaceName(t.opts.Space)
	f := t.f
	emitted := 0
	for _, tg := range prof.Targets(own, addr) {
		if emitted == maxDevirtTargets {
			break
		}
		if tg.Space != own {
			continue
		}
		pep := int(tg.PEP)
		if pep >= len(f.procEntry) || !t.procTranslated(pep) {
			continue
		}
		plVal := tg.PEP
		if t.opts.Space == 1 {
			plVal |= 0x8000 // SpaceLib bit of the PLabel encoding
		}
		next := f.newLabel()
		f.li(risc.RegT0, int32(int16(plVal)))
		f.br(risc.BNE, pl, risc.RegT0, next)
		f.nop()
		// Consume the PLabel left on the architectural stack (see
		// transXCAL): drop one RP position from $env before the prologue
		// writes the stack marker.
		f.imm(risc.ANDI, risc.RegENV, risc.RegENV, ^int32(7)&0x1FF)
		if postRP != 0 {
			f.imm(risc.ORI, risc.RegENV, risc.RegENV, int32(postRP))
		}
		f.li(risc.RegT0, int32(addr)+1) // TNS return address
		f.jLocal(risc.J, t.ensureProcLabel(pep))
		f.nop()
		f.bind(next)
		emitted++
	}
}

// emitReturnPointCheck emits the run-time RP confirmation after a call
// whose result size was guessed — the paper's check that sends execution
// into interpreter mode when the guess was wrong. In a procedure that
// contains any guessed site, every return point is confirmed, because a
// wrong guess shifts the dynamic RP for the rest of the procedure.
func (t *translator) emitReturnPointCheck(retAddr uint16) bool {
	cs, ok := t.p.callSites[t.prevCallAddr(retAddr)]
	tainted := false
	if pi := t.p.procOf[retAddr]; pi >= 0 && int(pi) < len(t.p.taintedProc) {
		tainted = t.p.taintedProc[pi]
	}
	if !ok || (!cs.checked && !tainted) {
		return false
	}
	expected := t.p.rpAt[retAddr]
	if expected < 0 {
		return false
	}
	t.emitRPCheck(retAddr, uint8(expected))
	return true
}

// emitRPGuard emits the profile-confirmed join guard at a block leader: the
// same ANDI/XORI/BNE confirmation a guessed return point gets, comparing
// the dynamic RP in $env (kept synchronized by canonicalize at every block
// boundary) against the statically assumed value. An execution arriving
// with a different RP falls into interpreter mode — the behaviour the
// unprofiled translation gave every execution through this join.
func (t *translator) emitRPGuard(addr uint16) {
	if expected := t.p.rpAt[addr]; expected >= 0 {
		t.emitRPCheck(addr, uint8(expected))
	}
}

func (t *translator) emitRPCheck(addr uint16, expected uint8) {
	f := t.f
	fb := t.queueFallbackStub(addr, obs.EscapeRPConflict)
	tr := uint8(risc.RegT0 + 1)
	f.imm(risc.ANDI, tr, risc.RegENV, 7)
	if expected != 0 {
		f.imm(risc.XORI, tr, tr, int32(expected))
	}
	f.br(risc.BNE, tr, risc.RegZero, fb)
	f.nop()
	t.stats.RPChecks++
}

func (t *translator) prevCallAddr(retAddr uint16) uint16 {
	if p := t.prevInstr(retAddr); p >= 0 {
		return uint16(p)
	}
	return retAddr
}

// transExit translates EXIT: canonicalize the function result and CC, sync
// the RP field, and return through the millicode PMap lookup.
func (t *translator) transExit(addr uint16, in tns.Instr) {
	s := t.s
	// The function result (top resultWords registers) and CC are live out.
	mask := uint16(liveCC)
	res := t.p.exitResultWords(addr)
	for j := 0; j < res && j < 8; j++ {
		mask |= regBit(s.rp - j)
	}
	s.canonicalize(mask)
	t.f.li(risc.RegT0, int32(in.Target)) // argument words to cut
	t.f.jAbs(risc.J, t.opts.MilliLabels[millicode.LExit])
	t.f.nop()
}

// transCase translates the CASE indexed jump: bounds check, then a jump
// through an inline table of RISC code addresses (loaded via the code
// window). The table entries were recovered by the analyzer's depth-first
// search; all targets are register-exact.
func (t *translator) transCase(addr uint16, in tns.Instr) {
	s := t.s
	f := t.f
	idx := s.valIn(s.rp, signOK)
	s.pin(idx)
	s.popDesc()
	s.canonicalize(t.branchMask(addr))

	count := t.p.file.Code[addr+1]
	afterLbl := t.blockLabel(addr + 2 + count)

	// Bounds: negative indexes look huge unsigned, so one SLTIU suffices.
	tr := s.allocTemp()
	f.imm(risc.SLTIU, tr, idx, int32(count))
	f.br(risc.BEQ, tr, risc.RegZero, afterLbl)
	f.nop()

	// Table jump. The table lives right here in the code stream; entries
	// are absolute RISC byte addresses read through the code window.
	tblLbl := f.newLabel()
	f.laCodeWindow(tr, tblLbl)
	t2 := s.allocTemp()
	f.shift(risc.SLL, t2, idx, 2)
	f.alu(risc.ADDU, tr, tr, t2)
	f.mem(risc.LW, tr, tr, 0)
	f.jr(tr)
	f.nop()
	f.bind(tblLbl)
	for i := uint16(0); i < count; i++ {
		target := t.p.file.Code[addr+2+i]
		f.wordLabel(t.blockLabel(target))
	}
	t.stats.TableWords += int(count)
}

// transSVC translates kernel traps: arguments to $mt/$ra, then SYSCALL.
func (t *translator) transSVC(addr uint16, in tns.Instr) (bool, error) {
	s := t.s
	f := t.f
	switch in.Operand {
	case tns.SvcHalt:
		v := s.valIn(s.rp, anyRJ)
		s.popDesc()
		f.move(risc.RegMT, v)
		f.sys(uint32(in.Operand))
		return false, nil
	case tns.SvcPutchar, tns.SvcPutnum:
		var v uint8
		if in.Operand == tns.SvcPutnum {
			v = s.valIn(s.rp, signOK)
		} else {
			v = s.valIn(s.rp, anyRJ)
		}
		s.popDesc()
		f.move(risc.RegMT, v)
		f.sys(uint32(in.Operand))
		return true, nil
	case tns.SvcPuts:
		cnt := s.valIn(s.rp, zeroOK)
		s.pin(cnt)
		s.popDesc()
		ba := s.valIn(s.rp, zeroOK)
		s.pin(ba)
		s.popDesc()
		f.move(risc.RegMT, ba)
		f.move(risc.RegRA, cnt)
		f.sys(uint32(in.Operand))
		return true, nil
	default:
		l := t.queueTrapStub(addr, tns.TrapBadSVC)
		f.jLocal(risc.J, l)
		f.nop()
		return false, nil
	}
}
