package core_test

import (
	"reflect"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/risc"
	"tnsr/internal/tnsasm"
	"tnsr/internal/xrun"
)

// hintProg calls a two-word-result procedure through XCAL with no SETRP:
// the Accelerator must guess (wrongly: a STOR follows), emitting a
// run-time check — unless a hint supplies the true size.
const hintProg = `
GLOBALS 8
MAIN main
PROC two ARGS 0
  LDI 4
  LDI 2
  EXIT 0
ENDPROC
PROC main
  LDPL 0
  XCAL
  STOR G+0
  STOR G+1
  EXIT 0
ENDPROC
`

func xcalAddr(f *codefile.File) uint16 {
	for a := range f.Code {
		if f.Code[a] == 0x0017 { // EncStack(OpXCAL) = major 0, sub 0, op 23
			return uint16(a)
		}
	}
	return 0
}

func TestXCALHintSuppressesCheckAndFallback(t *testing.T) {
	// Without hints: a check is emitted and trips at run time.
	f1 := tnsasm.MustAssemble("h", hintProg)
	if err := core.Accelerate(f1, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if f1.Accel.Stats.RPChecks == 0 {
		t.Fatal("expected an RP check without hints")
	}
	r1, _ := xrun.New(f1, nil, risc.Config{})
	if err := r1.Run(100000); err != nil {
		t.Fatal(err)
	}
	if r1.Interludes == 0 {
		t.Error("wrong guess should have caused an interpreter interlude")
	}
	if r1.Int.Mem[0] != 2 || r1.Int.Mem[1] != 4 {
		t.Errorf("results wrong despite fallback: %v", r1.Int.Mem[:2])
	}

	// With the hint: no check, no fallback, same results.
	f2 := tnsasm.MustAssemble("h", hintProg)
	opts := core.DefaultOptions()
	opts.Hints.XCALResultSize = map[uint16]int8{xcalAddr(f2): 2}
	if err := core.Accelerate(f2, opts); err != nil {
		t.Fatal(err)
	}
	if f2.Accel.Stats.RPChecks != 0 {
		t.Errorf("hinted translation still emitted %d RP checks", f2.Accel.Stats.RPChecks)
	}
	r2, _ := xrun.New(f2, nil, risc.Config{})
	if err := r2.Run(100000); err != nil {
		t.Fatal(err)
	}
	if r2.Interludes != 0 {
		t.Errorf("hinted translation fell back %d times", r2.Interludes)
	}
	if r2.Int.Mem[0] != 2 || r2.Int.Mem[1] != 4 {
		t.Errorf("hinted results: %v", r2.Int.Mem[:2])
	}
}

// TestReturnValSizeHint: the by-name hint (the paper's "7 of 199 programs"
// knob) overrides a summaryless procedure.
func TestReturnValSizeHint(t *testing.T) {
	src := `
GLOBALS 8
MAIN main
PROC mystery ARGS 0
  LDI 9
  LDI 8
  EXIT 0
ENDPROC
PROC main
  PCAL mystery
  STOR G+0
  STOR G+1
  EXIT 0
ENDPROC
`
	f := tnsasm.MustAssemble("rv", src)
	opts := core.DefaultOptions()
	opts.IgnoreSummaries = true
	opts.Hints.ReturnValSize = map[string]int8{"mystery": 2}
	if err := core.Accelerate(f, opts); err != nil {
		t.Fatal(err)
	}
	r, _ := xrun.New(f, nil, risc.Config{})
	if err := r.Run(100000); err != nil {
		t.Fatal(err)
	}
	if r.Int.Mem[0] != 8 || r.Int.Mem[1] != 9 {
		t.Errorf("results: %v", r.Int.Mem[:2])
	}
	if r.Interludes != 0 {
		t.Errorf("hinted program fell back %d times", r.Interludes)
	}
}

// TestIgnoreSummaries: without summaries the recursive result-size
// analysis still resolves direct calls (the paper's "older codefiles").
func TestIgnoreSummaries(t *testing.T) {
	src := `
GLOBALS 8
MAIN main
PROC inc RESULT 1 ARGS 1
  LOAD L-3
  ADDI 1
  EXIT 1
ENDPROC
PROC twice RESULT 1 ARGS 1
  LOAD L-3
  ADDS 1
  STOR S-0
  PCAL inc
  ADDS 1
  STOR S-0
  PCAL inc
  EXIT 1
ENDPROC
PROC main
  LDI 5
  ADDS 1
  STOR S-0
  PCAL twice
  STOR G+0
  EXIT 0
ENDPROC
`
	f := tnsasm.MustAssemble("nosummaries", src)
	opts := core.DefaultOptions()
	opts.IgnoreSummaries = true
	if err := core.Accelerate(f, opts); err != nil {
		t.Fatal(err)
	}
	// The analysis should have recovered every result size: no checks.
	if n := f.Accel.Stats.RPChecks; n != 0 {
		t.Errorf("analysis failed to resolve result sizes: %d checks", n)
	}
	r, _ := xrun.New(f, nil, risc.Config{})
	if err := r.Run(100000); err != nil {
		t.Fatal(err)
	}
	if r.Int.Mem[0] != 7 {
		t.Errorf("twice(5) = %d, want 7", r.Int.Mem[0])
	}
	if r.Interludes != 0 {
		t.Errorf("%d interludes", r.Interludes)
	}
}

// TestOptionsNotMutated: Accelerate and Analyze default unset knobs (level,
// millicode labels, code base, worker count) through a private copy. A
// caller reusing one Options struct across codefiles must never observe
// those defaults written back — that leaked state between translations.
func TestOptionsNotMutated(t *testing.T) {
	opts := core.Options{} // every knob unset: all defaults apply
	want := core.Options{}

	f := tnsasm.MustAssemble("m", hintProg)
	if err := core.Accelerate(f, opts); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(opts, want) {
		t.Errorf("Accelerate wrote defaults into the caller's Options:\n got %+v\nwant %+v", opts, want)
	}
	if _, err := core.Analyze(f, opts); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(opts, want) {
		t.Errorf("Analyze wrote defaults into the caller's Options:\n got %+v\nwant %+v", opts, want)
	}

	// The same zero-valued struct must stay reusable: a second Accelerate
	// gets identical results, not state from the first.
	f2 := tnsasm.MustAssemble("m", hintProg)
	if err := core.Accelerate(f2, opts); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Accel.Stats, f2.Accel.Stats) {
		t.Errorf("reused Options changed the translation: %+v vs %+v",
			f.Accel.Stats, f2.Accel.Stats)
	}
}

// TestAnalyzeReport exercises the analysis-only API behind axcel -report.
func TestAnalyzeReport(t *testing.T) {
	f := tnsasm.MustAssemble("rep", hintProg)
	rep, err := core.Analyze(f, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Procs != 2 {
		t.Errorf("procs = %d", rep.Procs)
	}
	if rep.CheckedCalls == 0 {
		t.Error("the unhinted XCAL should be reported as a checked call")
	}
	if rep.Instrs == 0 {
		t.Error("instruction count missing")
	}
}
