package core

import (
	"fmt"

	"tnsr/internal/backend"
	"tnsr/internal/codefile"
)

// finalizeSection lays out the emitted stream, hands it to the selected
// backend for encoding, and builds the PMap, entry table and statistics
// into the codefile's acceleration section. It consumes the (possibly
// merged) emission buffer, so it is independent of how many workers
// produced it.
//
// The backend owns the mapping from virtual instruction indexes to target
// word indexes (Encoded.Pos): on MIPS it is the identity, on a target
// without delay slots the explicit slot nops vanish and everything after
// them shifts down. Labels, PMap points and entry addresses are all
// resolved through that mapping, so the analysis side never assumes
// one-word-per-instruction.
func finalizeSection(p *program, opts *Options, f *fn,
	stats codefile.AccelStats) (*codefile.AccelSection, error) {
	base := opts.CodeBase
	labelAt := func(l backend.Label) (int32, error) {
		if l == backend.Label(noLabel) || int(l) >= len(f.labelPos) ||
			f.labelPos[l] < 0 {
			return 0, fmt.Errorf("core: unresolved label %d", l)
		}
		return f.labelPos[l], nil
	}

	ins := make([]backend.Inst, len(f.ins))
	for i, r := range f.ins {
		ins[i] = backend.Inst{
			Op: r.op, Rd: r.rd, Rs: r.rs, Rt: r.rt, Shamt: r.shamt,
			Imm: r.imm, Lbl: backend.Label(r.lbl), JTarget: r.jTarget,
			JLbl: backend.Label(r.jLbl), Code: r.code, IsWord: r.isWord,
			LALbl: backend.Label(r.laLbl), HasLA: r.hasLA, LAHi: r.laHi,
			TNSAddr: r.tnsAddr, IsExact: r.isExact,
		}
	}
	enc, err := opts.Backend.Encode(ins, labelAt, base)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Word position of a label: where its instruction index landed.
	wordPos := func(l label) (int32, error) {
		p, err := labelAt(backend.Label(l))
		if err != nil {
			return 0, err
		}
		return enc.Pos[p], nil
	}

	pm := codefile.NewPMap(len(p.file.Code))
	expRP := make([]uint8, len(p.file.Code))
	for i := range expRP {
		expRP[i] = 0xFF
	}
	for _, pt := range f.points {
		pp, err := wordPos(pt.lbl)
		if err != nil {
			return nil, err
		}
		if err := pm.Add(pt.tnsAddr, int(base)+int(pp), pt.regExact); err != nil {
			return nil, err
		}
		if pt.regExact && pt.rp >= 0 {
			expRP[pt.tnsAddr] = uint8(pt.rp)
		}
	}
	// Seal the inverse cache: the finished section may be shared read-only
	// by any number of concurrent runners (fleet execution).
	pm.Seal()

	entries := make([]int32, len(f.procEntry))
	for i, l := range f.procEntry {
		if l == noLabel || f.labelPos[l] < 0 {
			entries[i] = -1
			continue
		}
		entries[i] = int32(base) + enc.Pos[f.labelPos[l]]
	}

	instrs, tables := p.countKinds()
	_ = instrs
	st := stats
	st.RISCInstrs = f.stats.inline
	st.ElidedFlagOps = f.stats.elidedFlagOps
	st.TableWords = tables
	for _, g := range p.guessedProc {
		if g {
			st.GuessedProcs++
		}
	}

	return &codefile.AccelSection{
		Level:       opts.Level,
		BackendID:   opts.Backend.ID(),
		RISC:        enc.Code,
		Entries:     entries,
		ExpectedRP:  expRP,
		PMap:        pm,
		Stats:       st,
		FallbackWhy: f.why,
	}, nil
}
