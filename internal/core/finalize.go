package core

import (
	"fmt"

	"tnsr/internal/codefile"
	"tnsr/internal/millicode"
	"tnsr/internal/risc"
)

// finalizeSection lays out the emitted stream, resolves labels, encodes
// instruction words, and builds the PMap, entry table and statistics into
// the codefile's acceleration section. It consumes the (possibly merged)
// emission buffer, so it is independent of how many workers produced it.
func finalizeSection(p *program, opts *Options, f *fn,
	stats codefile.AccelStats) (*codefile.AccelSection, error) {
	base := opts.CodeBase
	pos := func(l label) (uint32, error) {
		if l == noLabel || int(l) >= len(f.labelPos) || f.labelPos[l] < 0 {
			return 0, fmt.Errorf("core: unresolved label %d", l)
		}
		return uint32(f.labelPos[l]), nil
	}

	code := make([]uint32, len(f.ins))
	for i, r := range f.ins {
		w, err := encodeOne(r, uint32(i), base, pos)
		if err != nil {
			return nil, fmt.Errorf("core: at RISC %d (tns %d): %w", i, r.tnsAddr, err)
		}
		code[i] = w
	}

	pm := codefile.NewPMap(len(p.file.Code))
	expRP := make([]uint8, len(p.file.Code))
	for i := range expRP {
		expRP[i] = 0xFF
	}
	for _, pt := range f.points {
		pp, err := pos(pt.lbl)
		if err != nil {
			return nil, err
		}
		if err := pm.Add(pt.tnsAddr, int(base)+int(pp), pt.regExact); err != nil {
			return nil, err
		}
		if pt.regExact && pt.rp >= 0 {
			expRP[pt.tnsAddr] = uint8(pt.rp)
		}
	}
	// Seal the inverse cache: the finished section may be shared read-only
	// by any number of concurrent runners (fleet execution).
	pm.Seal()

	entries := make([]int32, len(f.procEntry))
	for i, l := range f.procEntry {
		if l == noLabel || f.labelPos[l] < 0 {
			entries[i] = -1
			continue
		}
		entries[i] = int32(base) + f.labelPos[l]
	}

	instrs, tables := p.countKinds()
	_ = instrs
	st := stats
	st.RISCInstrs = f.stats.inline
	st.ElidedFlagOps = f.stats.elidedFlagOps
	st.TableWords = tables
	for _, g := range p.guessedProc {
		if g {
			st.GuessedProcs++
		}
	}

	return &codefile.AccelSection{
		Level:       opts.Level,
		RISC:        code,
		Entries:     entries,
		ExpectedRP:  expRP,
		PMap:        pm,
		Stats:       st,
		FallbackWhy: f.why,
	}, nil
}

func encodeOne(r rinst, idx, base uint32,
	pos func(label) (uint32, error)) (uint32, error) {
	if r.isWord {
		if r.jLbl != noLabel {
			p, err := pos(r.jLbl)
			if err != nil {
				return 0, err
			}
			return (base + p) << 2, nil // absolute RISC byte address
		}
		return uint32(r.imm), nil
	}
	if r.hasLA {
		p, err := pos(r.laLbl)
		if err != nil {
			return 0, err
		}
		v := uint32(millicode.CodeWindow) + ((base + p) << 2)
		if r.laHi {
			return risc.EncImm(risc.LUI, r.rt, 0, int32(v>>16)), nil
		}
		return risc.EncImm(risc.ORI, r.rt, r.rs, int32(v&0xFFFF)), nil
	}
	switch r.op {
	case risc.SLL, risc.SRL, risc.SRA:
		return risc.EncShift(r.op, r.rd, r.rt, r.shamt), nil
	case risc.SLLV, risc.SRLV, risc.SRAV:
		// Encoded as rd, value(rt), amount(rs).
		return risc.EncALU(r.op, r.rd, r.rs, r.rt), nil
	case risc.ADD, risc.ADDU, risc.SUB, risc.SUBU, risc.AND, risc.OR,
		risc.XOR, risc.NOR, risc.SLT, risc.SLTU:
		return risc.EncALU(r.op, r.rd, r.rs, r.rt), nil
	case risc.ADDI, risc.ADDIU, risc.SLTI, risc.SLTIU, risc.ANDI,
		risc.ORI, risc.XORI, risc.LUI:
		return risc.EncImm(r.op, r.rt, r.rs, r.imm), nil
	case risc.LB, risc.LH, risc.LW, risc.LBU, risc.LHU, risc.SB, risc.SH,
		risc.SW:
		return risc.EncMem(r.op, r.rt, r.rs, r.imm), nil
	case risc.BEQ, risc.BNE, risc.BLEZ, risc.BGTZ, risc.BLTZ, risc.BGEZ:
		p, err := pos(r.lbl)
		if err != nil {
			return 0, err
		}
		disp := int32(p) - int32(idx) - 1
		return risc.EncBranch(r.op, r.rs, r.rt, disp), nil
	case risc.J, risc.JAL:
		if r.jLbl != noLabel {
			p, err := pos(r.jLbl)
			if err != nil {
				return 0, err
			}
			return risc.EncJ(r.op, base+p), nil
		}
		return risc.EncJ(r.op, r.jTarget), nil
	case risc.JR:
		return risc.EncJR(r.rs), nil
	case risc.JALR:
		return risc.EncJALR(r.rd, r.rs), nil
	case risc.MULT, risc.MULTU, risc.DIV, risc.DIVU:
		return risc.EncMulDiv(r.op, r.rs, r.rt), nil
	case risc.MFHI, risc.MFLO:
		return risc.EncMulDiv(r.op, r.rd, 0), nil
	case risc.BREAK:
		return risc.EncBreak(r.code), nil
	case risc.SYSCALL:
		return risc.EncSyscall(r.code), nil
	}
	return 0, fmt.Errorf("unencodable op %s", r.op)
}
