package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/risc"
	"tnsr/internal/tnsasm"
	"tnsr/internal/workloads"
	"tnsr/internal/xrun"
)

// TestProfileCorrectsGuessedResultSize closes the PGO loop on hintProg by
// capture rather than by hand: run the unprofiled translation observed, feed
// the captured profile into a retranslation, and the wrong XCAL result-size
// guess is corrected — no interludes — while the run-time check stays in
// place (the profile is advisory, not trusted).
func TestProfileCorrectsGuessedResultSize(t *testing.T) {
	f1 := tnsasm.MustAssemble("h", hintProg)
	if err := core.Accelerate(f1, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	r1, _ := xrun.New(f1, nil, risc.Config{})
	c := pgo.NewCapture()
	r1.Capture(c)
	if err := r1.Run(100000); err != nil {
		t.Fatal(err)
	}
	if r1.Interludes == 0 {
		t.Fatal("unprofiled run should escape at the wrong guess")
	}
	prof := c.Profile()
	if err := pgo.Validate(prof); err != nil {
		t.Fatal(err)
	}

	f2 := tnsasm.MustAssemble("h", hintProg)
	opts := core.DefaultOptions()
	opts.Profile = prof
	if err := core.Accelerate(f2, opts); err != nil {
		t.Fatal(err)
	}
	if f2.Accel.Stats.RPChecks == 0 {
		t.Error("profiled translation must keep the run-time RP check")
	}
	r2, _ := xrun.New(f2, nil, risc.Config{})
	if err := r2.Run(100000); err != nil {
		t.Fatal(err)
	}
	if r2.Interludes != 0 {
		t.Errorf("profiled translation still fell back %d times", r2.Interludes)
	}
	if r2.Int.Mem[0] != 2 || r2.Int.Mem[1] != 4 {
		t.Errorf("profiled results: %v", r2.Int.Mem[:2])
	}
}

// devirtProfile hand-builds a profile for hintProg carrying both the true
// result size and the observed callee of the XCAL, so the translator emits
// an inline devirtualized fast path ahead of the millicode dispatch.
func devirtProfile(f *codefile.File, withTargets bool) *pgo.Profile {
	xa := xcalAddr(f)
	cs := pgo.CallSite{Addr: xa, Results: []pgo.ResultCount{{Words: 2, Count: 5}}}
	if withTargets {
		// Proc index 0 is "two", the only callee LDPL 0 can reach.
		cs.Targets = []pgo.TargetCount{{Space: "user", PEP: 0, Count: 5}}
	}
	return &pgo.Profile{
		Schema: pgo.Schema,
		Runs:   1,
		Spaces: []pgo.SpaceProfile{{
			Space:       "user",
			File:        f.Name,
			Fingerprint: fmt.Sprintf("%016x", f.Fingerprint()),
			CallSites:   []pgo.CallSite{cs},
		}},
	}
}

// TestProfileDevirtualizesXCAL: with an observed-target entry the XCAL gets
// an inline compare-and-jump; the run must produce identical results with no
// interludes, and the emitted code visibly grows by the devirt sequence.
func TestProfileDevirtualizesXCAL(t *testing.T) {
	base := tnsasm.MustAssemble("h", hintProg)
	optsNo := core.DefaultOptions()
	optsNo.Profile = devirtProfile(base, false)
	if err := core.Accelerate(base, optsNo); err != nil {
		t.Fatal(err)
	}

	f := tnsasm.MustAssemble("h", hintProg)
	opts := core.DefaultOptions()
	opts.Profile = devirtProfile(f, true)
	if err := core.Accelerate(f, opts); err != nil {
		t.Fatal(err)
	}
	if f.Accel.Stats.RISCInstrs <= base.Accel.Stats.RISCInstrs {
		t.Errorf("devirt emitted no code: %d vs %d RISC instrs",
			f.Accel.Stats.RISCInstrs, base.Accel.Stats.RISCInstrs)
	}

	r, _ := xrun.New(f, nil, risc.Config{})
	if err := r.Run(100000); err != nil {
		t.Fatal(err)
	}
	if r.Interludes != 0 {
		t.Errorf("devirtualized run fell back %d times", r.Interludes)
	}
	if r.Int.Mem[0] != 2 || r.Int.Mem[1] != 4 {
		t.Errorf("devirtualized results: %v", r.Int.Mem[:2])
	}
}

// TestProfileStaleFingerprintIgnored: a profile captured against a different
// build must degrade to "no profile" — the translation is byte-identical to
// an unprofiled one.
func TestProfileStaleFingerprintIgnored(t *testing.T) {
	plain := tnsasm.MustAssemble("h", hintProg)
	if err := core.Accelerate(plain, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}

	f := tnsasm.MustAssemble("h", hintProg)
	prof := devirtProfile(f, true)
	prof.Spaces[0].Fingerprint = "00000000000000ff" // some other build
	opts := core.DefaultOptions()
	opts.Profile = prof
	if err := core.Accelerate(f, opts); err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if _, err := plain.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("stale profile changed the translation")
	}
}

// conflictProg loops across a join whose two static predecessors disagree on
// RP (the dead path leaves an extra word), so the join is an RP conflict the
// static analysis cannot resolve; dynamically only one RP ever arrives.
const conflictProg = `
GLOBALS 8
MAIN main
PROC main
  LDI 20
  STOR G+0
loop:
  LOAD G+0
  BZ fin
  LDI 1
  BZ dead
  LDI 7
  BUN join
dead:
  LDI 3
  LDI 4
join:
  STOR G+1
  LOAD G+0
  ADDI -1
  STOR G+0
  BUN loop
fin:
  EXIT 0
ENDPROC
`

// TestProfileConfirmsConflictJoin: pass 1 escapes at the conflicting join
// every iteration; the captured RP lets pass 2 map the join with a run-time
// guard, eliminating the escapes while both passes agree observationally
// (RunAdaptive verifies that itself).
func TestProfileConfirmsConflictJoin(t *testing.T) {
	build := func() *codefile.File { return tnsasm.MustAssemble("conflict", conflictProg) }
	res, err := xrun.RunAdaptive(build(), nil, nil, codefile.LevelDefault, 0, 1_000_000, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c1 := res.FirstObs.Escapes[obs.EscapeRPConflict]
	c2 := res.SecondObs.Escapes[obs.EscapeRPConflict]
	t.Logf("conflict-join escapes: pass 1 %d, pass 2 %d", c1, c2)
	if c1 == 0 {
		t.Fatal("pass 1 should escape at the conflicting join")
	}
	if c2 != 0 {
		t.Errorf("pass 2 still escaped %d times; the observed RP should map the join", c2)
	}
}

// profiledDiffSweep is the profile-fed arm of the differential sweep: the
// pure interpreter is the reference, and the two RunAdaptive passes (the
// second translated with the pass-1 profile) must match it exactly.
func profiledDiffSweep(t *testing.T, lvl codefile.AccelLevel,
	build func() (*codefile.File, *codefile.File, map[uint16]int8)) {
	t.Helper()

	user, lib, _ := build()
	m := interp.New(user, lib)
	m.Run(30_000_000)

	auser, alib, summaries := build()
	res, err := xrun.RunAdaptive(auser, alib, summaries, lvl, 4, 200_000_000,
		risc.Config{MulLatency: 12, DivLatency: 35})
	if err != nil {
		t.Fatal(err)
	}
	if m.Halted != res.Halted {
		t.Fatalf("halted: interp=%v profiled=%v", m.Halted, res.Halted)
	}
	if m.Trap != res.Trap {
		t.Fatalf("trap: interp=%d profiled=%d", m.Trap, res.Trap)
	}
	if m.Trap == 0 && m.ExitStatus != res.ExitStatus {
		t.Errorf("exit status: interp=%d profiled=%d", m.ExitStatus, res.ExitStatus)
	}
	if got, want := res.Console, m.Console.String(); got != want {
		t.Errorf("console: profiled=%q interp=%q", got, want)
	}
	if err := pgo.Validate(res.Profile); err != nil {
		t.Errorf("captured profile invalid: %v", err)
	}
}

// TestDifferentialProfiledWorkloads re-runs the differential sweep with the
// PGO loop engaged at every translation level: profile-fed translation must
// be observationally identical to both the unprofiled translation (checked
// inside RunAdaptive) and the pure interpreter (checked here).
func TestDifferentialProfiledWorkloads(t *testing.T) {
	for _, name := range workloads.Names {
		for _, lvl := range levels {
			name, lvl := name, lvl
			t.Run(fmt.Sprintf("%s/%v", name, lvl), func(t *testing.T) {
				t.Parallel()
				profiledDiffSweep(t, lvl, func() (*codefile.File, *codefile.File, map[uint16]int8) {
					w, err := workloads.Build(name, 2)
					if err != nil {
						t.Fatal(err)
					}
					return w.User, w.Lib, w.LibSummaries
				})
			})
		}
	}
}

// TestParallelDeterminismProfiled: translation under a profile is as
// deterministic as without one — Workers=4 must produce byte-identical
// output to the serial pipeline when both are fed the same profile.
func TestParallelDeterminismProfiled(t *testing.T) {
	w, err := workloads.Build("dhry16", 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := xrun.RunAdaptive(w.User, w.Lib, w.LibSummaries,
		codefile.LevelDefault, 0, 200_000_000, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prof := res.Profile

	build := func(workers int) []byte {
		wl, err := workloads.Build("dhry16", 2)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		opts := core.Options{
			Level: codefile.LevelDefault, Workers: workers,
			LibSummaries: wl.LibSummaries, Profile: prof,
		}
		if err := core.Accelerate(wl.User, opts); err != nil {
			t.Fatal(err)
		}
		if _, err := wl.User.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if wl.Lib != nil {
			libOpts := core.Options{
				Level: codefile.LevelDefault, Workers: workers,
				CodeBase: millicode.LibCodeBase, Space: 1, Profile: prof,
			}
			if err := core.Accelerate(wl.Lib, libOpts); err != nil {
				t.Fatal(err)
			}
			if _, err := wl.Lib.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}

	ref := build(1)
	for run := 0; run < 3; run++ {
		if got := build(4); !bytes.Equal(got, ref) {
			t.Fatalf("run %d: profiled parallel translation differs from serial", run)
		}
	}
}
