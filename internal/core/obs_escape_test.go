package core_test

import (
	"bytes"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/obs"
	"tnsr/internal/risc"
	"tnsr/internal/tnsasm"
	"tnsr/internal/xrun"
)

// The standard workloads run fully translated, so the escape classifier is
// only exercised when something goes wrong on purpose. These tests force
// interludes of known kinds and assert the recorder names them correctly.

// runObserved accelerates f with opts, runs it observed, and returns the
// recorder and runner.
func runObserved(t *testing.T, src string, opts core.Options) (*obs.Recorder, *xrun.Runner) {
	t.Helper()
	f := tnsasm.MustAssemble("esc", src)
	if err := core.Accelerate(f, opts); err != nil {
		t.Fatal(err)
	}
	r, err := xrun.New(f, nil, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	r.Observe(rec)
	if err := r.Run(100000); err != nil {
		t.Fatal(err)
	}
	return rec, r
}

// A wrong XCAL result-size guess trips the run-time RP confirmation, whose
// fallback stub the translator tagged rp-conflict.
func TestEscapeReasonRPConflict(t *testing.T) {
	rec, r := runObserved(t, hintProg, core.DefaultOptions())
	if r.Interludes == 0 {
		t.Fatal("expected interludes from the wrong guess")
	}
	if rec.Escapes[obs.EscapeRPConflict] == 0 {
		t.Errorf("no rp-conflict escapes recorded: %v", rec.Escapes)
	}
	if rec.Escapes[obs.EscapeUnknown] != 0 {
		t.Errorf("unknown escapes recorded: %v", rec.Escapes)
	}
	if rec.InterpEntries != int64(r.Interludes) {
		t.Errorf("entries %d != interludes %d", rec.InterpEntries, r.Interludes)
	}
}

// Selective acceleration: a PCAL to an untranslated procedure falls back,
// tagged untranslated at translation time.
func TestEscapeReasonUntranslated(t *testing.T) {
	src := `
GLOBALS 8
MAIN main
PROC slowpath ARGS 0
  LDI 3
  STOR G+0
  EXIT 0
ENDPROC
PROC main
  PCAL slowpath
  LDI 1
  STOR G+1
  EXIT 0
ENDPROC
`
	opts := core.DefaultOptions()
	opts.SelectProcs = map[string]bool{"main": true}
	rec, r := runObserved(t, src, opts)
	if r.Int.Mem[0] != 3 || r.Int.Mem[1] != 1 {
		t.Fatalf("wrong results: %v", r.Int.Mem[:2])
	}
	if r.Interludes == 0 {
		t.Fatal("expected an interlude at the untranslated callee")
	}
	if rec.Escapes[obs.EscapeUntranslated] == 0 {
		t.Errorf("no untranslated escapes recorded: %v", rec.Escapes)
	}
	if rec.Escapes[obs.EscapeUnknown] != 0 {
		t.Errorf("unknown escapes recorded: %v", rec.Escapes)
	}
	// The hottest-site table must name the call site in user space.
	rep := r.Report(rec)
	if len(rep.Sites) == 0 || rep.Sites[0].Space != "user" {
		t.Errorf("escape sites: %+v", rep.Sites)
	}
	if err := obs.Validate(rep); err != nil {
		t.Errorf("validate: %v", err)
	}
}

// FallbackWhy must survive a serialize/parse round trip, so reports built
// from reloaded codefiles still classify escapes (codefile version 4).
func TestFallbackWhyRoundTrip(t *testing.T) {
	f := tnsasm.MustAssemble("esc", hintProg)
	if err := core.Accelerate(f, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if len(f.Accel.FallbackWhy) == 0 {
		t.Fatal("translator recorded no fallback reasons")
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := codefile.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Accel.FallbackWhy) != len(f.Accel.FallbackWhy) {
		t.Fatalf("round trip lost reasons: %d != %d",
			len(back.Accel.FallbackWhy), len(f.Accel.FallbackWhy))
	}
	for addr, w := range f.Accel.FallbackWhy {
		if back.Accel.FallbackWhy[addr] != w {
			t.Errorf("addr %d: reason %d != %d", addr, back.Accel.FallbackWhy[addr], w)
		}
	}
}
