package core_test

import (
	"fmt"
	"strings"
	"testing"

	"tnsr/internal/core"
	"tnsr/internal/risc"
	"tnsr/internal/tnsasm"
	"tnsr/internal/xrun"
)

// TestReturnSizeGuessCorpus is experiment E9: how good is the paper's
// pattern heuristic for guessing the result size of calls the analysis
// cannot resolve? We build a corpus of XCAL sites with no SETRP clue whose
// callees return 0, 1 or 2 words, consumed in the idiomatic way (nothing /
// STOR / STD) or in a misleading way, then count how many sites execute
// without falling into interpreter mode (guess right) vs. how many trip
// the run-time RP check (guess wrong — caught, never silent).
func TestReturnSizeGuessCorpus(t *testing.T) {
	type site struct {
		result  int    // callee result words
		consume string // code following the call
		wantHit bool   // heuristic expected to guess right
	}
	sites := []site{
		{0, "  NOP\n", true},
		{1, "  STOR G+2\n", true},
		{2, "  STD G+4\n", true},
		{1, "  STOR G+6\n", true},
		{0, "  LDI 3\n  STOR G+7\n", true},
		// Misleading: two words consumed by two separate STORs looks like
		// a one-word result to the heuristic.
		{2, "  STOR G+8\n  STOR G+9\n", false},
		// Misleading: a one-word result immediately fed to DEL... DEL pops
		// one: heuristic guesses 1 (pops=1): right.
		{1, "  DEL\n", true},
	}

	var src strings.Builder
	src.WriteString("GLOBALS 32\nMAIN main\n")
	// Callees pep 0..2 returning 0, 1, 2 words. Summaries are hidden by
	// declaring no RESULT attribute; the bodies keep the analysis honest
	// by being reachable only via XCAL (so exitRPOf still solves them —
	// defeat that by an XCAL through a value the analysis can't see; the
	// result-size *analysis* of the callee still succeeds, so to force
	// guessing we call through PLabels loaded from memory, which hides
	// the target identity entirely).
	src.WriteString("PROC ret0 ARGS 0\n  EXIT 0\nENDPROC\n")
	src.WriteString("PROC ret1 ARGS 0\n  LDI 7\n  EXIT 0\nENDPROC\n")
	src.WriteString("PROC ret2 ARGS 0\n  LDI 1\n  LDI 2\n  EXIT 0\nENDPROC\n")
	src.WriteString("PROC main\n")
	for i, s := range sites {
		// The PLabel comes from a global cell, so the callee — and its
		// result size — is unknowable statically.
		src.WriteString(fmt.Sprintf("  LDI %d\n  STOR G+0\n", s.result))
		src.WriteString("  LOAD G+0\n  XCAL\n")
		src.WriteString(s.consume)
		// Resynchronize RP after each site so one wrong guess cannot
		// cascade into the next site's check (a compiler would know the
		// true stack depth here).
		src.WriteString("  SETRP 7\n")
		_ = i
	}
	src.WriteString("  EXIT 0\nENDPROC\n")

	f, err := tnsasm.Assemble("corpus", src.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Accelerate(f, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	st := f.Accel.Stats
	if st.RPChecks == 0 {
		t.Fatal("expected run-time RP checks for unhinted XCALs")
	}
	r, err := xrun.New(f, nil, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if r.Trap != 0 {
		t.Fatalf("trap %d at %d", r.Trap, r.TrapP)
	}
	wrong := 0
	for _, n := range r.FallbackAt {
		wrong += min(n, 1)
	}
	expectedWrong := 0
	for _, s := range sites {
		if !s.wantHit {
			expectedWrong++
		}
	}
	t.Logf("corpus: %d XCAL sites, %d run-time checks emitted, %d guesses wrong (expected %d)",
		len(sites), st.RPChecks, wrong, expectedWrong)
	if wrong > expectedWrong {
		t.Errorf("heuristic missed more sites than expected: %d > %d", wrong, expectedWrong)
	}
	// Every consumption still executed correctly (fallback repaired the
	// wrong guesses): the stores landed.
	if r.Int.Mem[2] != 7 || r.Int.Mem[6] != 7 {
		t.Errorf("one-word results not stored: %v", r.Int.Mem[:10])
	}
	if r.Int.Mem[4] != 1 || r.Int.Mem[5] != 2 {
		t.Errorf("two-word result not stored: %v", r.Int.Mem[:10])
	}
	if r.Int.Mem[8] != 2 || r.Int.Mem[9] != 1 {
		t.Errorf("mis-guessed site not repaired: %v", r.Int.Mem[:10])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
