package core_test

import (
	"fmt"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/risc"
	"tnsr/internal/talc"
	"tnsr/internal/workloads"
	"tnsr/internal/xrun"
)

// The differential sweep: every shipped program — the examples/ demos and
// the paper's five benchmark workloads — is run through the pure
// interpreter and through the parallel translation pipeline (Workers=4,
// forcing the worker pool even on a single-CPU runner) at all three
// translation levels, comparing console output, halt state, trap codes and
// exit status. Combined with TestParallelDeterminism (Workers=N bytes ==
// Workers=1 bytes), this grounds the parallel pipeline in observable
// program behaviour, not just stream equality.

// diffSweep interprets the user/lib pair, then accelerates fresh copies at
// lvl with the parallel pipeline and compares the two executions.
func diffSweep(t *testing.T, lvl codefile.AccelLevel,
	build func() (*codefile.File, *codefile.File, map[uint16]int8)) {
	t.Helper()

	user, lib, summaries := build()
	m := interp.New(user, lib)
	m.Run(30_000_000)

	auser, alib, _ := build()
	opts := core.Options{Level: lvl, Workers: 4, LibSummaries: summaries}
	if alib != nil {
		libOpts := core.Options{
			Level: lvl, Workers: 4,
			CodeBase: millicode.LibCodeBase, Space: 1,
		}
		if err := core.Accelerate(alib, libOpts); err != nil {
			t.Fatalf("accelerate lib: %v", err)
		}
	}
	if err := core.Accelerate(auser, opts); err != nil {
		t.Fatalf("accelerate: %v", err)
	}
	r, err := xrun.New(auser, alib, risc.Config{MulLatency: 12, DivLatency: 35})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	r.Observe(rec)
	if err := r.Run(200_000_000); err != nil {
		t.Fatalf("run: %v (interludes=%d)", err, r.Interludes)
	}

	if m.Halted != r.Halted {
		t.Fatalf("halted: interp=%v accel=%v", m.Halted, r.Halted)
	}
	if m.Trap != r.Trap {
		t.Fatalf("trap: interp=%d accel=%d", m.Trap, r.Trap)
	}
	if m.Trap == 0 && m.ExitStatus != r.ExitStatus {
		t.Errorf("exit status: interp=%d accel=%d", m.ExitStatus, r.ExitStatus)
	}
	if got, want := r.Console(), m.Console.String(); got != want {
		t.Errorf("console: accel=%q interp=%q", got, want)
	}

	// Telemetry invariants, checked across the whole sweep: every
	// interpreter interlude has a typed escape reason (the runtime
	// classifier plus the translator's FallbackWhy table cover all
	// fallback paths), and the recorder's instruction totals agree with
	// the runner's own accounting in both modes.
	if n := rec.Escapes[obs.EscapeUnknown]; n != 0 {
		t.Errorf("%d escapes with Unknown reason (histogram %v)", n, rec.Escapes)
	}
	if rec.InterpEntries != int64(r.Interludes) {
		t.Errorf("interp entries: obs=%d runner=%d", rec.InterpEntries, r.Interludes)
	}
	if rec.InterpInstrs != r.InterludeProf.Instrs {
		t.Errorf("interp instrs: obs=%d runner=%d", rec.InterpInstrs, r.InterludeProf.Instrs)
	}
	if rec.RISCInstrs != r.Sim.Instrs {
		t.Errorf("risc instrs: obs=%d sim=%d", rec.RISCInstrs, r.Sim.Instrs)
	}
	rep := r.Report(rec)
	var procRISC, procInterp int64
	for _, p := range rep.Procs {
		procRISC += p.RISCInstrs
		procInterp += p.InterpInstrs
	}
	if procRISC != rec.RISCInstrs || procInterp != rec.InterpInstrs {
		t.Errorf("per-proc sums: risc %d/%d interp %d/%d",
			procRISC, rec.RISCInstrs, procInterp, rec.InterpInstrs)
	}
	if err := obs.Validate(rep); err != nil {
		t.Errorf("report validation: %v", err)
	}
}

func TestDifferentialExamples(t *testing.T) {
	for name, src := range workloads.ExamplePrograms {
		for _, lvl := range levels {
			name, src, lvl := name, src, lvl
			t.Run(fmt.Sprintf("%s/%v", name, lvl), func(t *testing.T) {
				t.Parallel()
				diffSweep(t, lvl, func() (*codefile.File, *codefile.File, map[uint16]int8) {
					f, err := talc.Compile(name, src)
					if err != nil {
						t.Fatal(err)
					}
					return f, nil, nil
				})
			})
		}
	}
}

func TestDifferentialWorkloads(t *testing.T) {
	for _, name := range workloads.Names {
		for _, lvl := range levels {
			name, lvl := name, lvl
			t.Run(fmt.Sprintf("%s/%v", name, lvl), func(t *testing.T) {
				t.Parallel()
				diffSweep(t, lvl, func() (*codefile.File, *codefile.File, map[uint16]int8) {
					w, err := workloads.Build(name, 2)
					if err != nil {
						t.Fatal(err)
					}
					return w.User, w.Lib, w.LibSummaries
				})
			})
		}
	}
}
