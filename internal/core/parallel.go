package core

import (
	"sync"
	"sync/atomic"
	"time"

	"tnsr/internal/codefile"
)

// The parallel translation pipeline. After the shared analyze/RP/liveness
// phases, procedure translation fans out to a worker pool: each fragment
// (one procedure) is translated by a private translator with its own code
// buffer, label allocator, abstract state, stub queue and statistics, all
// reading the immutable transCtx. The per-fragment streams are then merged
// in ascending entry-address order — the order the serial walk emits them —
// so the merged instruction stream, label positions, PMap points and entry
// table are byte-identical to a Workers=1 translation.
//
// Cross-fragment references exist in exactly two forms, and both are
// resolved positionally at merge time:
//
//   - procedure-entry labels: a direct PCAL jumps to the callee's prologue.
//     The calling fragment allocates a private, unbound alias label; the
//     owning fragment binds the real label at its prologue. The merge points
//     every alias at the owner's final position.
//   - block labels: a branch or CASE table entry can target a block in
//     another procedure. Same scheme, keyed by TNS address.
//
// A label that resolves nowhere (a call into a procedure that was never
// emitted) stays unbound and fails in finalize, exactly as it does serially.

// fragResult is one fragment's private output.
type fragResult struct {
	f        *fn
	blockLbl map[uint16]label
	stats    codefile.AccelStats
	// pendingExact records a PMap point added after the fragment's last
	// emitted instruction: the serial walk would flag the next emitted
	// instruction (in a later procedure) as an exact-point scheduling
	// barrier, so the merge must carry it across the fragment boundary.
	pendingExact bool
}

// translate runs the translation phase of Accelerate: serially for
// Workers=1 (or a single procedure), through a fragment scheduler otherwise
// — the private worker pool by default, opts.Sched when attached. Every
// path returns the same emission buffer and statistics.
func translate(p *program, opts *Options) (*fn, codefile.AccelStats, error) {
	ctx := newTransCtx(p, opts)
	frags := ctx.fragments()
	if opts.Sched == nil && (opts.Workers <= 1 || len(frags) <= 1) {
		var t0 time.Time
		if opts.Obs != nil {
			t0 = time.Now()
		}
		f, stats, err := translateSerial(ctx, frags)
		if opts.Obs != nil {
			opts.Obs.Phase("translate", time.Since(t0))
		}
		return f, stats, err
	}
	sched := opts.Sched
	if sched == nil {
		workers := opts.Workers
		if workers > len(frags) {
			workers = len(frags)
		}
		sched = poolSched{workers: workers}
	}
	return translateSched(ctx, frags, sched)
}

// translateSerial walks the fragments in order with one translator sharing
// one buffer — the reference pipeline the parallel merge must reproduce.
func translateSerial(ctx *transCtx, frags []fragment) (*fn, codefile.AccelStats, error) {
	t := newTranslator(ctx)
	for _, fr := range frags {
		if err := t.translateRange(fr); err != nil {
			return nil, codefile.AccelStats{}, err
		}
	}
	return t.f, t.stats, nil
}

// poolSched is the default FragSched: a private pool of workers goroutines
// claiming jobs off a shared atomic counter, exactly the shape the pipeline
// had before the scheduler was factored out.
type poolSched struct {
	workers int
}

func (p poolSched) Run(n int, job func(k int)) {
	workers := p.workers
	if workers > n {
		workers = n
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(atomic.AddInt64(&next, 1))
				if k >= n {
					return
				}
				job(k)
			}
		}()
	}
	wg.Wait()
}

// translateSched fans the fragments out through sched and merges the results
// in fragment order. Which worker (or whose queue) ran each job is invisible
// here: results are indexed by fragment, so the merge — and therefore the
// emitted section — is byte-identical under any scheduler.
func translateSched(ctx *transCtx, frags []fragment, sched FragSched) (*fn, codefile.AccelStats, error) {
	results := make([]*fragResult, len(frags))
	errs := make([]error, len(frags))
	var t0 time.Time
	if ctx.opts.Obs != nil {
		t0 = time.Now()
	}
	sched.Run(len(frags), func(k int) {
		tr := newTranslator(ctx)
		if err := tr.translateRange(frags[k]); err != nil {
			errs[k] = err
			return
		}
		results[k] = &fragResult{
			f:            tr.f,
			blockLbl:     tr.blockLbl,
			stats:        tr.stats,
			pendingExact: tr.f.pendingExact,
		}
	})
	if ctx.opts.Obs != nil {
		now := time.Now()
		ctx.opts.Obs.Phase("translate", now.Sub(t0))
		t0 = now
	}
	// Report the first error in fragment order, deterministically.
	for _, err := range errs {
		if err != nil {
			return nil, codefile.AccelStats{}, err
		}
	}
	f, stats, err := mergeFragments(ctx, results)
	if ctx.opts.Obs != nil {
		ctx.opts.Obs.Phase("merge", time.Since(t0))
	}
	return f, stats, err
}

// mergeFragments concatenates the per-fragment streams and resolves
// cross-fragment labels. Only positions matter downstream (scheduling,
// layout and encoding never inspect label identities), so remapping each
// fragment's labels by a fixed offset and then aliasing unbound references
// onto their owners' positions reproduces the serial result exactly.
func mergeFragments(ctx *transCtx, results []*fragResult) (*fn, codefile.AccelStats, error) {
	merged := newFn(len(ctx.p.file.Procs))
	var stats codefile.AccelStats

	insOff := make([]int, len(results))
	lblOff := make([]int, len(results))
	carryExact := false
	for k, r := range results {
		insOff[k] = len(merged.ins)
		lblOff[k] = len(merged.labelPos)
		for i, ri := range r.f.ins {
			if ri.lbl != noLabel {
				ri.lbl += label(lblOff[k])
			}
			if ri.jLbl != noLabel {
				ri.jLbl += label(lblOff[k])
			}
			if ri.hasLA {
				ri.laLbl += label(lblOff[k])
			}
			if i == 0 && carryExact {
				ri.isExact = true
				carryExact = false
			}
			merged.ins = append(merged.ins, ri)
		}
		if len(r.f.ins) > 0 {
			carryExact = r.pendingExact
		} else {
			carryExact = carryExact || r.pendingExact
		}
		for _, lp := range r.f.labelPos {
			if lp >= 0 {
				lp += int32(insOff[k])
			}
			merged.labelPos = append(merged.labelPos, lp)
		}
		for _, pt := range r.f.points {
			pt.lbl += label(lblOff[k])
			merged.points = append(merged.points, pt)
		}
		// Fallback reasons: fragment address ranges are disjoint, so this
		// union is order-independent.
		for addr, w := range r.f.why {
			merged.why[addr] = w
		}
		merged.stats.inline += r.f.stats.inline
		merged.stats.elidedFlagOps += r.f.stats.elidedFlagOps
		stats.TNSInstrs += r.stats.TNSInstrs
		stats.TableWords += r.stats.TableWords
		stats.RPChecks += r.stats.RPChecks
		stats.PuzzlePoints += r.stats.PuzzlePoints
	}

	// Procedure entries: the owner fragment bound its prologue label; every
	// other fragment's entry for the same PEP index is an unbound alias.
	for k, r := range results {
		for pi, l := range r.f.procEntry {
			if l != noLabel && r.f.labelPos[l] >= 0 {
				merged.procEntry[pi] = l + label(lblOff[k])
			}
		}
	}
	for k, r := range results {
		for pi, l := range r.f.procEntry {
			if l == noLabel || r.f.labelPos[l] >= 0 {
				continue
			}
			if owner := merged.procEntry[pi]; owner != noLabel {
				merged.labelPos[int(l)+lblOff[k]] = merged.labelPos[owner]
			}
		}
	}

	// Block labels: bind each fragment's unresolved targets to the position
	// where the owning fragment bound that TNS address.
	bound := map[uint16]int32{}
	for k, r := range results {
		for addr, l := range r.blockLbl {
			if r.f.labelPos[l] >= 0 {
				bound[addr] = r.f.labelPos[l] + int32(insOff[k])
			}
		}
	}
	for k, r := range results {
		for addr, l := range r.blockLbl {
			if r.f.labelPos[l] >= 0 {
				continue
			}
			if pos, ok := bound[addr]; ok {
				merged.labelPos[int(l)+lblOff[k]] = pos
			}
		}
	}
	return merged, stats, nil
}
