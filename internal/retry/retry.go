// Package retry is the service tier's one shared failure policy: every
// client that crosses a network or storage boundary (xlate.Client,
// profsrv.Client, the fleet PGO loop) retries transient failures through
// the same capped exponential backoff with seeded jitter, classifies
// errors the same way (a 401 is never worth a second attempt; a connection
// reset almost always is), and guards repeatedly-failing dependencies with
// the same circuit breaker.
//
// The classification contract:
//
//   - An error wrapped by Terminal, or an *HTTPError whose status is a
//     client error other than 408/429, stops the loop immediately — the
//     request was understood and refused, and resending it cannot help.
//   - An *HTTPError with status 429 or 503 is retryable and its
//     Retry-After (when the server sent one) becomes the next delay,
//     capped at the policy's MaxDelay so a hostile or confused server
//     cannot park a client forever.
//   - Everything else — transport errors, timeouts, 5xx, truncated or
//     corrupted responses the strict parsers refuse — is presumed
//     transient and retried until attempts or the context run out.
//
// Determinism: jitter draws from a seeded stream, so a test (or a fault
// campaign) that pins Policy.Seed observes one reproducible schedule.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Default policy knobs; zero values in Policy fall back to these.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 25 * time.Millisecond
	DefaultMaxDelay    = 2 * time.Second
	DefaultMultiplier  = 2.0
)

// Policy is a capped exponential backoff. The zero value is usable and
// means the defaults above. Policies are values: copying one is cheap and
// safe, and every Do call derives its own jitter stream from Seed.
type Policy struct {
	// MaxAttempts bounds the total tries, first attempt included
	// (<= 0 means DefaultMaxAttempts; 1 means no retries).
	MaxAttempts int

	// BaseDelay is the backoff before the second attempt; each further
	// delay multiplies by Multiplier and caps at MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64

	// Seed seeds the jitter stream: each delay is drawn uniformly from
	// [delay/2, delay], so synchronized clients fan out instead of
	// reconverging on the struggling server every cycle.
	Seed int64

	// Sleep, when non-nil, replaces the context-aware timer wait — tests
	// and campaigns use it to run schedules without wall-clock time.
	Sleep func(ctx context.Context, d time.Duration) error

	// Counters, when non-nil, accumulates what the loop did.
	Counters *Counters
}

// Counters aggregates retry activity across calls; safe for concurrent
// use. Clients expose them so /metrics can report how hard the edges are
// working.
type Counters struct {
	Attempts  atomic.Int64 // operations started (every try)
	Retries   atomic.Int64 // tries after the first
	Terminal  atomic.Int64 // loops stopped by a terminal error
	Exhausted atomic.Int64 // loops that ran out of attempts or context
}

func (p Policy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return p.MaxAttempts
}

func (p Policy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return DefaultBaseDelay
	}
	return p.BaseDelay
}

func (p Policy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return DefaultMaxDelay
	}
	return p.MaxDelay
}

func (p Policy) multiplier() float64 {
	if p.Multiplier < 1 {
		return DefaultMultiplier
	}
	return p.Multiplier
}

// Delay returns the backoff before attempt n (n = 1 is the delay between
// the first and second tries), without jitter. Exposed so tests can pin
// the envelope the jittered schedule must stay inside.
func (p Policy) Delay(n int) time.Duration {
	d := float64(p.baseDelay())
	for i := 1; i < n; i++ {
		d *= p.multiplier()
		if d >= float64(p.maxDelay()) {
			return p.maxDelay()
		}
	}
	if d > float64(p.maxDelay()) {
		d = float64(p.maxDelay())
	}
	return time.Duration(d)
}

// Do runs op until it succeeds, fails terminally, exhausts MaxAttempts, or
// ctx is done. The returned error is op's last error (wrapped context
// error when the wait was cut short).
func (p Policy) Do(ctx context.Context, op func() error) error {
	rng := rand.New(rand.NewSource(p.Seed))
	var err error
	for attempt := 1; ; attempt++ {
		if p.Counters != nil {
			p.Counters.Attempts.Add(1)
		}
		err = op()
		if err == nil {
			return nil
		}
		if IsTerminal(err) {
			if p.Counters != nil {
				p.Counters.Terminal.Add(1)
			}
			return err
		}
		if attempt >= p.maxAttempts() {
			if p.Counters != nil {
				p.Counters.Exhausted.Add(1)
			}
			return err
		}
		d := p.Delay(attempt)
		// A server-directed Retry-After overrides the schedule but never
		// the cap: the policy's MaxDelay is the longest this client is
		// willing to be parked.
		if ra, ok := RetryAfter(err); ok {
			d = ra
			if d > p.maxDelay() {
				d = p.maxDelay()
			}
		} else if d > 0 {
			d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
		}
		if werr := p.sleep(ctx, d); werr != nil {
			if p.Counters != nil {
				p.Counters.Exhausted.Add(1)
			}
			return fmt.Errorf("%w (after: %w)", werr, err)
		}
		if p.Counters != nil {
			p.Counters.Retries.Add(1)
		}
	}
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// terminalError marks an error the retry loop must not resend.
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// Terminal wraps err so IsTerminal reports true: the operation was
// understood and refused, and repeating it cannot change the answer.
func Terminal(err error) error {
	if err == nil {
		return nil
	}
	return &terminalError{err: err}
}

// IsTerminal reports whether err (or anything it wraps) should stop a
// retry loop: an explicit Terminal wrap, a non-retryable HTTP status, or a
// context that is already done.
func IsTerminal(err error) bool {
	var te *terminalError
	if errors.As(err, &te) {
		return true
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return !RetryableStatus(he.Status)
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// HTTPError is a typed non-2xx response: the status decides
// retryability and a parsed Retry-After steers the backoff.
type HTTPError struct {
	Status     int
	Body       string        // bounded server message, for diagnostics
	RetryAfter time.Duration // 0 when the server sent none
}

func (e *HTTPError) Error() string {
	if e.Body == "" {
		return fmt.Sprintf("http status %d", e.Status)
	}
	return fmt.Sprintf("http status %d: %s", e.Status, e.Body)
}

// NewHTTPError builds the typed error from a response's status line,
// bounded body, and Retry-After header.
func NewHTTPError(resp *http.Response, body string) *HTTPError {
	e := &HTTPError{Status: resp.StatusCode, Body: body}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// RetryableStatus reports whether a status code is worth another attempt:
// 408/429 (the server asked for one) and every 5xx. 400, 401, 404, 409,
// 413 and the other 4xx are refusals — the bytes were received and judged.
func RetryableStatus(status int) bool {
	switch {
	case status == http.StatusRequestTimeout, status == http.StatusTooManyRequests:
		return true
	case status >= 500:
		return true
	}
	return false
}

// RetryAfter extracts a server-directed delay from err, when one exists.
func RetryAfter(err error) (time.Duration, bool) {
	var he *HTTPError
	if errors.As(err, &he) && he.RetryAfter > 0 {
		return he.RetryAfter, true
	}
	return 0, false
}
