package retry

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is the fast-fail a Breaker answers while open: the dependency
// has failed enough times in a row that hammering it helps nobody.
var ErrOpen = errors.New("retry: circuit breaker open")

// BreakerState is the classic three-state machine.
type BreakerState int

const (
	// Closed: requests flow; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: requests fast-fail without touching the dependency until the
	// cooldown elapses.
	Open
	// HalfOpen: one probe is in flight; its outcome decides between
	// Closed (success) and another full Open period (failure).
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "invalid"
}

// Default breaker knobs; zero values in NewBreaker fall back to these.
const (
	DefaultBreakAfter = 5
	DefaultCooldown   = 5 * time.Second
)

// Breaker is a circuit breaker shared by every caller of one dependency:
// after Threshold consecutive failures it opens and fast-fails Allow until
// Cooldown elapses, then admits exactly one half-open probe whose outcome
// closes it again or re-opens it for another full cooldown. Safe for
// concurrent use; a fleet of a thousand machines shares one Breaker per
// profile source, so a dead tnsprofd is hit by one probe per cooldown, not
// a thousand retry storms.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight

	// BreakerCounters fields, exported through Counts.
	opens     int64 // transitions to Open
	fastFails int64 // Allows refused while Open
	probes    int64 // half-open probes admitted
}

// BreakerCounts is a point-in-time view for /metrics.
type BreakerCounts struct {
	State     BreakerState
	Opens     int64 // times the breaker tripped
	FastFails int64 // requests refused without touching the dependency
	Probes    int64 // half-open probes admitted
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures (<= 0 means DefaultBreakAfter) and probes again after cooldown
// (<= 0 means DefaultCooldown).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakAfter
	}
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock replaces the breaker's time source (tests drive the cooldown
// without waiting it out).
func (b *Breaker) SetClock(now func() time.Time) { b.now = now }

// Allow reports whether a request may proceed. While open it fast-fails;
// once the cooldown has elapsed it admits exactly one probe (the caller
// MUST Report the probe's outcome, or the breaker stays half-open).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.fastFails++
			return false
		}
		b.state = HalfOpen
		b.probing = true
		b.probes++
		return true
	case HalfOpen:
		if b.probing {
			b.fastFails++
			return false
		}
		b.probing = true
		b.probes++
		return true
	}
	return false
}

// Report feeds one allowed request's outcome back. A success closes the
// breaker (and resets the failure run); a failure re-opens it from
// half-open, or counts toward the threshold while closed.
func (b *Breaker) Report(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = Closed
		b.fails = 0
		b.probing = false
		return
	}
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	case HalfOpen:
		b.probing = false
		b.trip()
	case Open:
		// A late Report from a request admitted before the trip; the
		// breaker is already open and the failure changes nothing.
	}
}

// trip moves to Open. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.now()
	b.fails = 0
	b.opens++
}

// State returns the current state (advancing Open to HalfOpen is Allow's
// job; State is a pure read).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Counts snapshots the breaker for /metrics.
func (b *Breaker) Counts() BreakerCounts {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerCounts{State: b.state, Opens: b.opens, FastFails: b.fastFails, Probes: b.probes}
}
