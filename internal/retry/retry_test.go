package retry

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// collectSleeps returns a Sleep hook appending every wait to out.
func collectSleeps(out *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*out = append(*out, d)
		return nil
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var sleeps []time.Duration
	var c Counters
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Seed: 1,
		Sleep: collectSleeps(&sleeps), Counters: &c}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err %v, calls %d", err, calls)
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps %v", sleeps)
	}
	if c.Attempts.Load() != 3 || c.Retries.Load() != 2 || c.Terminal.Load() != 0 {
		t.Errorf("counters: attempts %d retries %d terminal %d",
			c.Attempts.Load(), c.Retries.Load(), c.Terminal.Load())
	}
}

// TestBackoffEnvelope: every jittered delay stays within [Delay/2, Delay]
// and the undithered schedule is capped exponential.
func TestBackoffEnvelope(t *testing.T) {
	p := Policy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 60 * time.Millisecond, Multiplier: 2, Seed: 7}
	wantBare := []time.Duration{10, 20, 40, 60, 60, 60, 60}
	for i, want := range wantBare {
		if got := p.Delay(i + 1); got != want*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
	var sleeps []time.Duration
	p.Sleep = collectSleeps(&sleeps)
	p.Do(context.Background(), func() error { return errors.New("always") })
	if len(sleeps) != 7 {
		t.Fatalf("sleeps: %v", sleeps)
	}
	for i, d := range sleeps {
		lo, hi := p.Delay(i+1)/2, p.Delay(i+1)
		if d < lo || d > hi {
			t.Errorf("sleep %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
}

// TestSeededJitterDeterministic: the same seed draws the same schedule.
func TestSeededJitterDeterministic(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var sleeps []time.Duration
		p := Policy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, Seed: seed,
			Sleep: collectSleeps(&sleeps)}
		p.Do(context.Background(), func() error { return errors.New("x") })
		return sleeps
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("distinct seeds drew identical jitter (suspicious)")
	}
}

func TestTerminalStopsImmediately(t *testing.T) {
	var c Counters
	p := Policy{MaxAttempts: 5, Counters: &c,
		Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		return Terminal(errors.New("denied"))
	})
	if calls != 1 || !IsTerminal(err) {
		t.Fatalf("calls %d, err %v", calls, err)
	}
	if c.Terminal.Load() != 1 {
		t.Errorf("terminal counter %d", c.Terminal.Load())
	}
}

func TestHTTPStatusClassification(t *testing.T) {
	terminal := []int{400, 401, 403, 404, 405, 409, 413, 422}
	retryable := []int{408, 429, 500, 502, 503, 504}
	for _, s := range terminal {
		if !IsTerminal(&HTTPError{Status: s}) {
			t.Errorf("status %d: want terminal", s)
		}
	}
	for _, s := range retryable {
		if IsTerminal(&HTTPError{Status: s}) {
			t.Errorf("status %d: want retryable", s)
		}
	}
	// Wrapped errors classify the same way.
	err := fmt.Errorf("push: %w", &HTTPError{Status: 401})
	if !IsTerminal(err) {
		t.Error("wrapped 401: want terminal")
	}
}

// TestRetryAfterHonoredAndCapped: a 429's Retry-After becomes the next
// delay; a hostile value is capped at MaxDelay.
func TestRetryAfterHonoredAndCapped(t *testing.T) {
	var sleeps []time.Duration
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond,
		MaxDelay: 50 * time.Millisecond, Sleep: collectSleeps(&sleeps)}
	p.Do(context.Background(), func() error {
		return &HTTPError{Status: 429, RetryAfter: 30 * time.Millisecond}
	})
	if len(sleeps) != 2 || sleeps[0] != 30*time.Millisecond {
		t.Fatalf("Retry-After not honored: %v", sleeps)
	}
	sleeps = nil
	p.Do(context.Background(), func() error {
		return &HTTPError{Status: 429, RetryAfter: time.Hour}
	})
	if len(sleeps) != 2 || sleeps[0] != 50*time.Millisecond {
		t.Fatalf("Retry-After not capped: %v", sleeps)
	}
}

func TestNewHTTPErrorParsesRetryAfter(t *testing.T) {
	resp := &http.Response{StatusCode: 429, Header: http.Header{"Retry-After": {"2"}}}
	he := NewHTTPError(resp, "slow down")
	if he.RetryAfter != 2*time.Second || he.Status != 429 {
		t.Fatalf("parsed %+v", he)
	}
	resp = &http.Response{StatusCode: 503, Header: http.Header{}}
	if he := NewHTTPError(resp, ""); he.RetryAfter != 0 {
		t.Fatalf("absent header parsed as %v", he.RetryAfter)
	}
}

func TestContextCancelCutsWait(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var c Counters
	p := Policy{MaxAttempts: 4, BaseDelay: time.Hour, Counters: &c}
	calls := 0
	err := p.Do(ctx, func() error { calls++; return errors.New("x") })
	if calls != 1 || !errors.Is(err, context.Canceled) {
		t.Fatalf("calls %d, err %v", calls, err)
	}
	if c.Exhausted.Load() != 1 {
		t.Errorf("exhausted counter %d", c.Exhausted.Load())
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewBreaker(3, time.Minute)
	b.SetClock(func() time.Time { return clock })

	fail := errors.New("down")
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Report(fail)
	}
	if b.State() != Open {
		t.Fatalf("state after 3 failures: %v", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside cooldown")
	}

	// Cooldown elapses: exactly one probe is admitted.
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("half-open probe refused")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe fails: back to open for a full cooldown.
	b.Report(fail)
	if b.State() != Open || b.Allow() {
		t.Fatalf("failed probe did not re-open (state %v)", b.State())
	}

	// Next probe succeeds: closed, failure run reset.
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Report(nil)
	if b.State() != Closed {
		t.Fatalf("state after successful probe: %v", b.State())
	}
	for i := 0; i < 2; i++ { // two failures stay under threshold 3
		b.Allow()
		b.Report(fail)
	}
	if b.State() != Closed {
		t.Fatal("failure run not reset by success")
	}

	c := b.Counts()
	if c.Opens != 2 || c.Probes != 2 || c.FastFails < 2 {
		t.Errorf("counts %+v", c)
	}
}

func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(5, time.Millisecond)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				if b.Allow() {
					if (g+i)%3 == 0 {
						b.Report(errors.New("x"))
					} else {
						b.Report(nil)
					}
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	b.Counts() // must not race
}
