package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// BenchSchema tags the machine-readable benchmark records benchtab emits
// with -jsondir, one BENCH_<workload>.json per workload.
const BenchSchema = "tnsr/bench-record/v1"

// BenchRecord is one (workload, mode) measurement. NsPerOp is the modeled
// Cyclone/R wall time for the measured run, in nanoseconds; InterpPct is
// the share of that time spent in interpreter mode.
type BenchRecord struct {
	Schema    string  `json:"schema"`
	Workload  string  `json:"workload"`
	Mode      string  `json:"mode"` // "interpreted" or "accel-<level>"
	NsPerOp   float64 `json:"ns_per_op"`
	InterpPct float64 `json:"interp_pct"`
}

// BenchRecords flattens a measured row into per-mode records: the software
// interpreter plus each acceleration level.
func BenchRecords(row *Row) []BenchRecord {
	recs := []BenchRecord{{
		Schema:    BenchSchema,
		Workload:  row.Name,
		Mode:      "interpreted",
		NsPerOp:   row.InterpTime * 1e9,
		InterpPct: 100,
	}}
	for _, lvl := range Levels {
		recs = append(recs, BenchRecord{
			Schema:    BenchSchema,
			Workload:  row.Name,
			Mode:      "accel-" + lvl.String(),
			NsPerOp:   row.AccelTime[lvl] * 1e9,
			InterpPct: 100 * row.InterpFrac[lvl],
		})
	}
	return recs
}

// WriteBenchJSON writes one BENCH_<workload>.json per row into dir,
// creating it if needed. Each file holds the row's records as a JSON array.
func WriteBenchJSON(dir string, rows []*Row) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, row := range rows {
		data, err := json.MarshalIndent(BenchRecords(row), "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", row.Name))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ValidateBenchRecords checks a parsed BENCH_*.json payload the same way
// obs.Validate checks execution reports: schema tag, plausible ranges, and
// one record per execution mode.
func ValidateBenchRecords(recs []BenchRecord) error {
	if len(recs) != 1+len(Levels) {
		return fmt.Errorf("want %d records, got %d", 1+len(Levels), len(recs))
	}
	for _, r := range recs {
		if r.Schema != BenchSchema {
			return fmt.Errorf("schema %q != %q", r.Schema, BenchSchema)
		}
		if r.Workload == "" || r.Mode == "" {
			return fmt.Errorf("record missing workload or mode: %+v", r)
		}
		if r.NsPerOp < 0 {
			return fmt.Errorf("%s/%s: negative ns/op", r.Workload, r.Mode)
		}
		if r.InterpPct < 0 || r.InterpPct > 100 {
			return fmt.Errorf("%s/%s: interp_pct %g out of range", r.Workload, r.Mode, r.InterpPct)
		}
	}
	return nil
}
