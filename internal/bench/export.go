package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// BenchSchema tags the machine-readable benchmark records benchtab emits
// with -jsondir, one BENCH_<workload>.json per workload.
const BenchSchema = "tnsr/bench-record/v1"

// BenchRecord is one (workload, mode) measurement. NsPerOp is the modeled
// Cyclone/R wall time for the measured run, in nanoseconds; InterpPct is
// the share of that time spent in interpreter mode.
type BenchRecord struct {
	Schema    string  `json:"schema"`
	Workload  string  `json:"workload"`
	Mode      string  `json:"mode"` // "interpreted" or "accel-<level>"
	NsPerOp   float64 `json:"ns_per_op"`
	InterpPct float64 `json:"interp_pct"`
}

// BenchRecords flattens a measured row into per-mode records: the software
// interpreter plus each acceleration level.
func BenchRecords(row *Row) []BenchRecord {
	recs := []BenchRecord{{
		Schema:    BenchSchema,
		Workload:  row.Name,
		Mode:      "interpreted",
		NsPerOp:   row.InterpTime * 1e9,
		InterpPct: 100,
	}}
	for _, lvl := range Levels {
		recs = append(recs, BenchRecord{
			Schema:    BenchSchema,
			Workload:  row.Name,
			Mode:      "accel-" + lvl.String(),
			NsPerOp:   row.AccelTime[lvl] * 1e9,
			InterpPct: 100 * row.InterpFrac[lvl],
		})
	}
	return recs
}

// WriteBenchJSON writes one BENCH_<workload>.json per row into dir,
// creating it if needed. Each file holds the row's records as a JSON array.
func WriteBenchJSON(dir string, rows []*Row) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, row := range rows {
		data, err := json.MarshalIndent(BenchRecords(row), "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", row.Name))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ValidateBenchRecords checks a parsed BENCH_*.json payload the same way
// obs.Validate checks execution reports: schema tag, plausible ranges, and
// one record per execution mode.
func ValidateBenchRecords(recs []BenchRecord) error {
	if len(recs) != 1+len(Levels) {
		return fmt.Errorf("want %d records, got %d", 1+len(Levels), len(recs))
	}
	for _, r := range recs {
		if r.Schema != BenchSchema {
			return fmt.Errorf("schema %q != %q", r.Schema, BenchSchema)
		}
		if r.Workload == "" || r.Mode == "" {
			return fmt.Errorf("record missing workload or mode: %+v", r)
		}
		if r.NsPerOp < 0 {
			return fmt.Errorf("%s/%s: negative ns/op", r.Workload, r.Mode)
		}
		if r.InterpPct < 0 || r.InterpPct > 100 {
			return fmt.Errorf("%s/%s: interp_pct %g out of range", r.Workload, r.Mode, r.InterpPct)
		}
	}
	return nil
}

// FleetRecord is one fleet-scale measurement: aggregate throughput and
// latency percentiles for a whole run-host fleet, tagged with the same
// schema as the per-workload records so BENCH_*.json consumers need one
// parser. Latencies are milliseconds of simulated time.
type FleetRecord struct {
	Schema         string  `json:"schema"`
	Workload       string  `json:"workload"`
	Mode           string  `json:"mode"` // always "fleet"
	Machines       int     `json:"machines"`
	TxnsPerMachine int     `json:"txns_per_machine"`
	ThroughputTPS  float64 `json:"throughput_tps"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	P99Ms          float64 `json:"p99_ms"`
	InterpPct      float64 `json:"interp_pct"`
	Serving        int     `json:"serving"`
	Degraded       int     `json:"degraded"`
	Failed         int     `json:"failed"`
}

// WriteFleetJSON writes BENCH_fleet.json into dir.
func WriteFleetJSON(dir string, recs []FleetRecord) error {
	if err := ValidateFleetRecords(recs); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_fleet.json"), append(data, '\n'), 0o644)
}

// ValidateFleetRecords checks a BENCH_fleet.json payload: schema tag,
// plausible ranges, ordered quantiles, machine-state accounting.
func ValidateFleetRecords(recs []FleetRecord) error {
	if len(recs) == 0 {
		return fmt.Errorf("no fleet records")
	}
	for _, r := range recs {
		if r.Schema != BenchSchema {
			return fmt.Errorf("schema %q != %q", r.Schema, BenchSchema)
		}
		if r.Mode != "fleet" {
			return fmt.Errorf("fleet record mode %q", r.Mode)
		}
		if r.Workload == "" || r.Machines < 1 || r.TxnsPerMachine < 1 {
			return fmt.Errorf("fleet record missing shape: %+v", r)
		}
		if r.Serving+r.Degraded+r.Failed != r.Machines {
			return fmt.Errorf("fleet record states %d+%d+%d != %d machines",
				r.Serving, r.Degraded, r.Failed, r.Machines)
		}
		if r.ThroughputTPS < 0 {
			return fmt.Errorf("fleet record negative throughput")
		}
		if r.P50Ms < 0 || r.P50Ms > r.P95Ms || r.P95Ms > r.P99Ms {
			return fmt.Errorf("fleet record quantiles out of order: %g/%g/%g",
				r.P50Ms, r.P95Ms, r.P99Ms)
		}
		if r.InterpPct < 0 || r.InterpPct > 100 {
			return fmt.Errorf("fleet record interp_pct %g out of range", r.InterpPct)
		}
	}
	return nil
}
