package bench

import (
	"fmt"
	"strings"

	"tnsr/internal/codefile"
	"tnsr/internal/talc"
	"tnsr/internal/xrun"
)

// Extension experiment E12: static vs. dynamic translation. The paper
// surveys both strategies and explains Tandem's choice of static
// translation ("our performance goals were high", "the necessary
// translation algorithms require significant time and memory", "Tandem
// machines are primarily used for months-long execution of a few
// applications"). This experiment quantifies that trade-off: lazy
// translation of hot procedures wins on short runs, up-front translation
// wins as the run length grows.

const crossoverProg = `
INT total;
INT PROC work(n); INT n;
BEGIN
  INT i; INT s;
  s := 0;
  FOR i := 1 TO n DO s := s + i \ 7;
  RETURN s;
END;
PROC main MAIN;
BEGIN
  INT r;
  total := 0;
  FOR r := 1 TO RUNSLIT DO total := (total + work(60)) LAND 16383;
  PUTNUM(total);
END;
`

// CrossoverPoint holds one run length's comparison.
type CrossoverPoint struct {
	Runs           int
	StaticCycles   float64 // translation + execution
	DynamicCycles  float64
	DynamicWinning bool
}

// Crossover measures both strategies across run lengths.
func Crossover(runLengths []int) ([]CrossoverPoint, error) {
	var out []CrossoverPoint
	for _, runs := range runLengths {
		src := strings.ReplaceAll(crossoverProg, "RUNSLIT", fmt.Sprint(runs))
		fs, err := talc.Compile("xover", src)
		if err != nil {
			return nil, err
		}
		runC, transC, _, err := xrun.StaticCost(fs, nil, codefile.LevelDefault, 4_000_000_000)
		if err != nil {
			return nil, err
		}
		fd, err := talc.Compile("xover", src)
		if err != nil {
			return nil, err
		}
		res, err := xrun.RunDynamic(fd, nil, 5, codefile.LevelDefault, 0, 4_000_000_000)
		if err != nil {
			return nil, err
		}
		out = append(out, CrossoverPoint{
			Runs:           runs,
			StaticCycles:   runC + transC,
			DynamicCycles:  res.Total(),
			DynamicWinning: res.Total() < runC+transC,
		})
	}
	return out, nil
}

// CrossoverTable renders the comparison.
func CrossoverTable(points []CrossoverPoint) string {
	var b strings.Builder
	b.WriteString("Static vs dynamic translation (extension): total Cyclone/R cycles\n")
	b.WriteString("including modeled translation cost\n\n")
	fmt.Fprintf(&b, "%10s %14s %14s   %s\n", "run length", "static", "dynamic", "winner")
	for _, p := range points {
		winner := "static"
		if p.DynamicWinning {
			winner = "dynamic"
		}
		fmt.Fprintf(&b, "%10d %14.0f %14.0f   %s\n",
			p.Runs, p.StaticCycles, p.DynamicCycles, winner)
	}
	b.WriteString("\nTandem's workloads run for months: the static strategy amortizes.\n")
	return b.String()
}
