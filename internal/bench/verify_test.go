package bench

import (
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/workloads"
)

// TestVerifySmokeAllWorkloads pins the translator to the structural
// contract the runtime enforces: every acceleration the Accelerator emits,
// for every workload at every level, must pass AccelSection.Verify — the
// same gate a corrupt artifact is degraded by. A failure here means the
// translator ships artifacts the runtime would refuse to execute.
func TestVerifySmokeAllWorkloads(t *testing.T) {
	levels := []codefile.AccelLevel{
		codefile.LevelStmtDebug, codefile.LevelDefault, codefile.LevelFast,
	}
	for _, name := range workloads.Names {
		for _, lvl := range levels {
			w, err := workloads.Build(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			if w.Lib != nil {
				opts := core.Options{
					Level: lvl, CodeBase: millicode.LibCodeBase, Space: 1,
				}
				if err := core.Accelerate(w.Lib, opts); err != nil {
					t.Fatal(err)
				}
				if err := w.Lib.Accel.Verify(w.Lib, millicode.LibCodeBase); err != nil {
					t.Errorf("%s lib at %v: %v", name, lvl, err)
				}
			}
			opts := core.Options{Level: lvl, LibSummaries: w.LibSummaries}
			if err := core.Accelerate(w.User, opts); err != nil {
				t.Fatal(err)
			}
			if err := w.User.Accel.Verify(w.User, millicode.UserCodeBase); err != nil {
				t.Errorf("%s user at %v: %v", name, lvl, err)
			}
		}
	}
}
