package bench

import (
	"testing"

	"tnsr/internal/interp"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/workloads"
)

// The telemetry overhead contract (DESIGN.md §9): a nil sink costs one
// pointer comparison per hook site. These benchmarks pin the interpreter
// hot loop both ways so a regression in the unobserved baseline is visible
// next to the price of observation.

func benchInterpLoop(b *testing.B, observe bool) {
	w := workloads.MustBuild("dhry16", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := interp.New(w.User, w.Lib)
		if observe {
			rec := obs.NewRecorder()
			rec.AttachRuntime(w.User, w.Lib, 0,
				millicode.UserCodeBase, millicode.LibCodeBase)
			m.Obs = rec
		}
		b.StartTimer()
		if err := m.Run(2_000_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpHotLoop is the unobserved baseline (Obs == nil).
func BenchmarkInterpHotLoop(b *testing.B) { benchInterpLoop(b, false) }

// BenchmarkInterpHotLoopObserved runs the same work with a recorder
// attached, bounding what observation costs when it is wanted.
func BenchmarkInterpHotLoopObserved(b *testing.B) { benchInterpLoop(b, true) }

// BenchmarkMixedRunObserved prices the full observed mixed-mode pipeline
// (translate with phase timings + run with all hooks live).
func BenchmarkMixedRunObserved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ProfileWorkload("dhry16", 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}
