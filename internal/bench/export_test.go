package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func validFleetRecord() FleetRecord {
	return FleetRecord{
		Schema: BenchSchema, Workload: "et1", Mode: "fleet",
		Machines: 128, TxnsPerMachine: 2,
		ThroughputTPS: 1000, P50Ms: 1, P95Ms: 2, P99Ms: 3,
		InterpPct: 0.1, Serving: 120, Degraded: 6, Failed: 2,
	}
}

func TestValidateFleetRecords(t *testing.T) {
	if err := ValidateFleetRecords([]FleetRecord{validFleetRecord()}); err != nil {
		t.Fatal(err)
	}
	breakers := []struct {
		name   string
		mutate func(*FleetRecord)
	}{
		{"schema", func(r *FleetRecord) { r.Schema = "bogus" }},
		{"mode", func(r *FleetRecord) { r.Mode = "accel-Default" }},
		{"machines", func(r *FleetRecord) { r.Machines = 0 }},
		{"states", func(r *FleetRecord) { r.Failed++ }},
		{"throughput", func(r *FleetRecord) { r.ThroughputTPS = -1 }},
		{"quantiles", func(r *FleetRecord) { r.P95Ms = r.P99Ms + 1 }},
		{"interp", func(r *FleetRecord) { r.InterpPct = 101 }},
	}
	for _, b := range breakers {
		rec := validFleetRecord()
		b.mutate(&rec)
		if err := ValidateFleetRecords([]FleetRecord{rec}); err == nil {
			t.Errorf("%s: damaged record validated", b.name)
		}
	}
	if err := ValidateFleetRecords(nil); err == nil {
		t.Error("empty payload validated")
	}
}

func TestWriteFleetJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := []FleetRecord{validFleetRecord()}
	if err := WriteFleetJSON(dir, want); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got []FleetRecord
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if err := ValidateFleetRecords(got); err != nil {
		t.Fatal(err)
	}
	// The writer refuses an invalid payload outright.
	bad := validFleetRecord()
	bad.Schema = "nope"
	if err := WriteFleetJSON(dir, []FleetRecord{bad}); err == nil {
		t.Fatal("invalid payload written")
	}
}
