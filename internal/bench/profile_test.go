package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/obs"
	"tnsr/internal/workloads"
)

// TestProfileWorkloadsSchema is the tnsprof acceptance check: every paper
// workload, profiled at the Default level, yields a report that passes the
// schema validator and survives a JSON round trip — the same path the CI
// smoke step exercises through the CLI.
func TestProfileWorkloadsSchema(t *testing.T) {
	for _, name := range workloads.Names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep, err := ProfileWorkload(name, codefile.LevelDefault, 1)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Workload != name {
				t.Errorf("workload = %q", rep.Workload)
			}
			if rep.Modes.RISCInstrs == 0 {
				t.Error("no RISC instructions recorded")
			}
			if rep.Modes.TotalCycles <= 0 {
				t.Error("no cycle accounting")
			}
			if len(rep.Procs) == 0 {
				t.Error("no per-procedure residency")
			}
			if len(rep.Phases) == 0 {
				t.Error("no translation-phase timings")
			}
			if err := obs.Validate(rep); err != nil {
				t.Fatalf("validate: %v", err)
			}
			data, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			back, err := obs.ParseReport(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := obs.Validate(back); err != nil {
				t.Fatalf("validate after round trip: %v", err)
			}
		})
	}
}

// TestProfileExample covers the talc-compiled example path tnsprof also
// accepts.
func TestProfileExample(t *testing.T) {
	rep, err := ProfileWorkload("quickstart", codefile.LevelDefault, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Validate(rep); err != nil {
		t.Fatal(err)
	}
}

// TestWriteBenchJSON checks the benchtab -jsondir export end to end on a
// synthetic row: file layout, schema tag, record validation.
func TestWriteBenchJSON(t *testing.T) {
	row := &Row{
		Name:       "dhry16",
		InterpTime: 2e-3,
		AccelTime: map[codefile.AccelLevel]float64{
			codefile.LevelStmtDebug: 6e-4,
			codefile.LevelDefault:   4e-4,
			codefile.LevelFast:      3e-4,
		},
		InterpFrac: map[codefile.AccelLevel]float64{
			codefile.LevelStmtDebug: 0.004,
			codefile.LevelDefault:   0.002,
			codefile.LevelFast:      0.001,
		},
	}
	dir := t.TempDir()
	if err := WriteBenchJSON(dir, []*Row{row}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_dhry16.json"))
	if err != nil {
		t.Fatal(err)
	}
	var recs []BenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchRecords(recs); err != nil {
		t.Fatal(err)
	}
	if recs[0].Mode != "interpreted" || recs[0].NsPerOp != 2e6 {
		t.Errorf("first record: %+v", recs[0])
	}
}
