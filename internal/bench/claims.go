package bench

import (
	"fmt"
	"math"
	"strings"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/risc"
	"tnsr/internal/xrun"
)

type runResult = xrun.Runner

func newRunner(user, lib *codefile.File) (*runResult, error) {
	return xrun.New(user, lib, CycloneRConfig())
}

func mathPow(x, y float64) float64 { return math.Pow(x, y) }

// Claims renders the paper's headline scalar claims against measurements.
func Claims(rows []*Row) string {
	var b strings.Builder
	b.WriteString("Headline claims (paper -> measured)\n\n")

	// "Accelerated TNS code runs 5 to 8 times faster than interpreted code."
	lo, hi := math.Inf(1), 0.0
	for _, r := range rows {
		if r.Name == "et1" {
			continue
		}
		for _, lvl := range []codefile.AccelLevel{codefile.LevelDefault, codefile.LevelFast} {
			s := r.InterpTime / r.AccelTime[lvl]
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
	}
	fmt.Fprintf(&b, "Accelerated / interpreted speedup: paper 5-8x -> measured %.1f-%.1fx\n", lo, hi)

	// "The time spent in interpretive interludes is 1% or less."
	worst := 0.0
	for _, r := range rows {
		for _, lvl := range Levels {
			if f := r.InterpFrac[lvl]; f > worst {
				worst = f
			}
		}
	}
	fmt.Fprintf(&b, "Interpreter-mode residency: paper <1%% -> measured worst %.2f%%\n", 100*worst)

	// "The Statement Debug option slows down code by 1 to 16%."
	sdLo, sdHi := math.Inf(1), 0.0
	for _, r := range rows {
		if r.Name == "et1" {
			continue
		}
		d := r.AccelTime[codefile.LevelStmtDebug]/r.AccelTime[codefile.LevelDefault] - 1
		if d < sdLo {
			sdLo = d
		}
		if d > sdHi {
			sdHi = d
		}
	}
	fmt.Fprintf(&b, "StmtDebug slowdown: paper 1-16%% -> measured %.0f%%-%.0f%%\n",
		100*sdLo, 100*sdHi)

	// "The Statement Debug option expands code by 6 to 15%."
	seLo, seHi := math.Inf(1), 0.0
	for _, r := range rows {
		d := r.Expansion[codefile.LevelStmtDebug]/r.Expansion[codefile.LevelDefault] - 1
		if d < seLo {
			seLo = d
		}
		if d > seHi {
			seHi = d
		}
	}
	fmt.Fprintf(&b, "StmtDebug size growth: paper 6-15%% -> measured %.0f%%-%.0f%%\n",
		100*seLo, 100*seHi)

	// "Using the Accelerator, Cyclone/R performs 2 to 4 times faster than
	// its contemporary CISC of similar size (CLX 800)."
	cLo, cHi := math.Inf(1), 0.0
	for _, r := range rows {
		lvl := codefile.LevelDefault
		if r.Name == "et1" {
			lvl = codefile.LevelFast
		}
		s := r.CISCTime["CLX800"] / r.AccelTime[lvl]
		if s < cLo {
			cLo = s
		}
		if s > cHi {
			cHi = s
		}
	}
	fmt.Fprintf(&b, "Cyclone/R vs CLX 800: paper 2-4x -> measured %.1f-%.1fx\n", cLo, cHi)

	// "This lookup takes 11 R3000 cycles."
	cyc, err := ExitLookupCycles()
	if err != nil {
		fmt.Fprintf(&b, "EXIT PMap lookup: paper 11 cycles -> measurement failed: %v\n", err)
	} else {
		fmt.Fprintf(&b, "EXIT PMap lookup: paper 11 cycles -> measured %d cycles\n", cyc)
	}
	return b.String()
}

// ExitLookupCycles measures the PMap lookup inside the EXIT millicode: the
// stretch from selecting the map to landing on the translated return point,
// which the paper costs at 11 R3000 cycles.
func ExitLookupCycles() (int64, error) {
	milli, labels := millicode.Build()
	look, ok := labels["exit_look"]
	if !ok {
		return 0, fmt.Errorf("exit_look label missing")
	}
	// Append a landing pad the lookup will jump to.
	pad := uint32(len(milli))
	code := append(append([]uint32{}, milli...), risc.EncBreak(99))

	s := risc.NewSim(code, millicode.MemBytes, risc.Config{})
	// Synthesize a packed PMap whose group 0 maps TNS word 3 to the pad.
	base := uint32(millicode.TableArea)
	s.WriteWord(base, pad<<2) // group anchor byte address
	for i := 0; i < 8; i++ {
		s.Mem[base+8+uint32(i)] = 0xFF
	}
	s.Mem[base+8+3] = 0 // TNS word 3 -> anchor+0
	// Register state at exit_look: $t1 = TNS return address, $t2 = marker
	// ENV (user space), $t8/$t9 = the selected PMap arrays (the user/lib
	// selection happens before exit_look on the real path).
	s.Reg[risc.RegT0+1] = 3
	s.Reg[risc.RegT0+2] = 0
	s.Reg[risc.RegT0+8] = base
	s.Reg[risc.RegT0+9] = base + 8
	s.ResumeAt(look)
	if err := s.Run(1000); err != nil {
		return 0, err
	}
	if s.BreakCode != 99 {
		return 0, fmt.Errorf("lookup did not reach the return point (break %d, trap %d)",
			s.BreakCode, s.Trap)
	}
	// Exclude the landing-pad BREAK (1 cycle) and the map-presence guard
	// (2 cycles) that precede/follow the lookup proper.
	return s.Cycles - 3, nil
}

// AdversarialResidency measures interpreter-mode residency for a program
// whose XCAL result sizes must be guessed (no SETRP clue, no hints): the
// paper's "most accelerated programs spend less than 1% of their time in
// interpreter mode, even without hints", plus the effect of supplying
// ReturnValSize hints.
func AdversarialResidency() (noHints, withHints float64, err error) {
	f1, err := adversarialProgram()
	if err != nil {
		return 0, 0, err
	}
	if err := core.Accelerate(f1, core.Options{Level: codefile.LevelDefault}); err != nil {
		return 0, 0, err
	}
	r1, err := newRunner(f1, nil)
	if err != nil {
		return 0, 0, err
	}
	if err := r1.Run(200_000_000); err != nil {
		return 0, 0, err
	}
	noHints = r1.InterpFraction()

	f2, err := adversarialProgram()
	if err != nil {
		return 0, 0, err
	}
	// The hint overrides the (wrong) guess at the XCAL site.
	opts := core.Options{Level: codefile.LevelDefault}
	opts.Hints.XCALResultSize = map[uint16]int8{}
	for a := range adversarialXCALSites(f2) {
		opts.Hints.XCALResultSize[a] = 2
	}
	if err := core.Accelerate(f2, opts); err != nil {
		return 0, 0, err
	}
	r2, err := newRunner(f2, nil)
	if err != nil {
		return 0, 0, err
	}
	if err := r2.Run(200_000_000); err != nil {
		return 0, 0, err
	}
	withHints = r2.InterpFraction()
	return noHints, withHints, nil
}
