package bench

import (
	"strings"
	"testing"

	"tnsr/internal/codefile"
)

// smallRows measures with tiny iteration counts for unit-test speed.
func smallRows(t *testing.T) []*Row {
	t.Helper()
	var rows []*Row
	small := map[string]int{"dhry16": 10, "dhry32": 10, "tal": 1, "axcel": 1, "et1": 5}
	for name, it := range map[string]int{"dhry16": small["dhry16"], "et1": small["et1"]} {
		r, err := MeasureWorkload(name, it)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, r)
	}
	return rows
}

func TestMeasureWorkloadShape(t *testing.T) {
	r, err := MeasureWorkload("dhry16", 10)
	if err != nil {
		t.Fatal(err)
	}
	// Who-wins shape checks from the paper.
	if !(r.CISCTime["VLX"] < r.CISCTime["CLX800"]) {
		t.Error("VLX should beat CLX 800")
	}
	if !(r.CISCTime["Cyclone"] < r.CISCTime["VLX"]) {
		t.Error("Cyclone should beat VLX")
	}
	if !(r.InterpTime > r.CISCTime["CLX800"]) {
		t.Error("interpretation should be slower than CLX 800 hardware")
	}
	for _, lvl := range Levels {
		if !(r.AccelTime[lvl] < r.InterpTime) {
			t.Errorf("%s should beat interpretation", lvl)
		}
		if e := r.Expansion[lvl]; e < 1.0 || e > 4.0 {
			t.Errorf("%s expansion %.2f outside plausible range", lvl, e)
		}
	}
	// Fast <= Default <= StmtDebug in time.
	if !(r.AccelTime[codefile.LevelFast] <= r.AccelTime[codefile.LevelDefault]) {
		t.Errorf("Fast (%.3g) should not be slower than Default (%.3g)",
			r.AccelTime[codefile.LevelFast], r.AccelTime[codefile.LevelDefault])
	}
	if !(r.AccelTime[codefile.LevelDefault] <= r.AccelTime[codefile.LevelStmtDebug]) {
		t.Errorf("Default (%.3g) should not be slower than StmtDebug (%.3g)",
			r.AccelTime[codefile.LevelDefault], r.AccelTime[codefile.LevelStmtDebug])
	}
	// Expansion ordering: Fast <= Default <= StmtDebug.
	if !(r.Expansion[codefile.LevelFast] <= r.Expansion[codefile.LevelDefault]) {
		t.Error("Fast expansion should not exceed Default")
	}
	if !(r.Expansion[codefile.LevelDefault] <= r.Expansion[codefile.LevelStmtDebug]) {
		t.Error("Default expansion should not exceed StmtDebug")
	}
}

func TestTablesRender(t *testing.T) {
	rows := smallRows(t)
	for name, s := range map[string]string{
		"t1": Table1(rows), "t2": Table2(rows),
		"t3": Table3(rows), "t4": Table4(rows),
		"f1": Figure1(rows), "f2": Figure2(rows),
	} {
		if len(s) < 40 || !strings.Contains(s, "dhry16") && name[0] == 't' {
			t.Errorf("%s: suspicious render:\n%s", name, s)
		}
	}
	// ET1 software rows print n/a, as in the paper.
	if !strings.Contains(Table1(rows), "n/a") {
		t.Error("Table 1 should mark ET1 software modes n/a")
	}
}

func TestExitLookupCycles(t *testing.T) {
	cyc, err := ExitLookupCycles()
	if err != nil {
		t.Fatal(err)
	}
	if cyc < 8 || cyc > 16 {
		t.Errorf("EXIT lookup = %d cycles; paper says 11, expected 8-16", cyc)
	}
	t.Logf("EXIT PMap lookup: %d cycles (paper: 11)", cyc)
}

func TestAdversarialResidency(t *testing.T) {
	noHints, withHints, err := AdversarialResidency()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("residency: no hints %.3f%%, with hints %.3f%%", 100*noHints, 100*withHints)
	if noHints <= 0 {
		t.Error("the unhinted program should enter interpreter mode at least once")
	}
	if noHints > 0.01 {
		t.Errorf("unhinted residency %.2f%% exceeds the paper's <1%% claim", 100*noHints)
	}
	if withHints >= noHints {
		t.Error("hints should reduce interpreter residency")
	}
}

func TestAblation(t *testing.T) {
	rows, err := Ablate("dhry16", 30)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", AblationTable("dhry16", rows))
	base := rows[0]
	for _, r := range rows[1:] {
		if r.Cycles < base.Cycles*0.999 {
			t.Errorf("%s should not be faster than the full optimizer", r.Name)
		}
	}
	// Flag elision must matter (the paper's most important optimization).
	if rows[1].Cycles < base.Cycles*1.01 {
		t.Errorf("disabling flag elision changed cycles by <1%%: %0.f vs %0.f",
			rows[1].Cycles, base.Cycles)
	}
}
