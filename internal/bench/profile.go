package bench

import (
	"fmt"
	"sort"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/talc"
	"tnsr/internal/tns"
	"tnsr/internal/workloads"
)

// ProfileNames lists everything ProfileWorkload can run: the paper's five
// benchmark workloads followed by the example programs, each group sorted.
func ProfileNames() []string {
	names := append([]string{}, workloads.Names...)
	sort.Strings(names)
	var examples []string
	for name := range workloads.ExamplePrograms {
		examples = append(examples, name)
	}
	sort.Strings(examples)
	return append(names, examples...)
}

// buildProfiled builds the named workload or example program. iterations
// applies to workloads only (0 means the bench default).
func buildProfiled(name string, iterations int) (user, lib *codefile.File, summaries map[uint16]int8, err error) {
	if src, ok := workloads.ExamplePrograms[name]; ok {
		user, err = talc.Compile(name, src)
		return user, nil, nil, err
	}
	if iterations <= 0 {
		iterations = Iterations[name]
	}
	w, err := workloads.Build(name, iterations)
	if err != nil {
		return nil, nil, nil, err
	}
	return w.User, w.Lib, w.LibSummaries, nil
}

// ProfileWorkload translates the named workload or example at level with a
// telemetry recorder attached, executes it in mixed mode on the Cyclone/R
// configuration, and returns the complete execution report: mode residency,
// escape-reason histogram, PMap hit rate, per-procedure attribution and
// translation-phase timings.
func ProfileWorkload(name string, level codefile.AccelLevel, iterations int) (*obs.Report, error) {
	user, lib, summaries, err := buildProfiled(name, iterations)
	if err != nil {
		return nil, err
	}
	rec := obs.NewRecorder()
	if lib != nil {
		libOpts := core.Options{
			Level: level, CodeBase: millicode.LibCodeBase, Space: 1, Obs: rec,
		}
		if err := core.Accelerate(lib, libOpts); err != nil {
			return nil, fmt.Errorf("%s lib: %w", name, err)
		}
	}
	opts := core.Options{Level: level, LibSummaries: summaries, Obs: rec}
	if err := core.Accelerate(user, opts); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}

	r, err := newRunner(user, lib)
	if err != nil {
		return nil, err
	}
	r.Observe(rec)
	if err := r.Run(4_000_000_000); err != nil {
		return nil, err
	}
	if r.Trap != tns.TrapNone {
		return nil, fmt.Errorf("%s: trap %d at %d", name, r.Trap, r.TrapP)
	}
	rep := r.Report(rec)
	rep.Workload = name
	return rep, nil
}
