package bench

import (
	"fmt"
	"strings"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/workloads"
)

// AblationRow quantifies one disabled optimization.
type AblationRow struct {
	Name      string
	Cycles    float64
	Expansion float64
}

// Ablate measures the design choices the paper names as the Accelerator's
// major optimization effects, by turning each off and re-measuring
// Dhrystone: dead flag elision ("the most important one"), common
// subexpression reuse of fetches and addresses, and the final scheduling
// phase (delay slots, stall avoidance).
func Ablate(name string, iterations int) ([]AblationRow, error) {
	variants := []struct {
		label string
		mod   func(*core.Options)
	}{
		{"Default (all optimizations)", func(o *core.Options) {}},
		{"no dead-flag elision", func(o *core.Options) { o.DisableFlagElision = true }},
		{"no CSE (fetches/addresses)", func(o *core.Options) { o.DisableCSE = true }},
		{"no scheduling (delay slots)", func(o *core.Options) { o.DisableSchedule = true }},
		{"none of the above", func(o *core.Options) {
			o.DisableFlagElision = true
			o.DisableCSE = true
			o.DisableSchedule = true
		}},
	}
	var rows []AblationRow
	var wantOut string
	for _, v := range variants {
		w := workloads.MustBuild(name, iterations)
		opts := core.Options{Level: codefile.LevelDefault, LibSummaries: w.LibSummaries}
		v.mod(&opts)
		if err := core.Accelerate(w.User, opts); err != nil {
			return nil, fmt.Errorf("%s: %w", v.label, err)
		}
		if w.Lib != nil {
			libOpts := core.Options{Level: codefile.LevelDefault, CodeBase: 0x80000, Space: 1}
			v.mod(&libOpts)
			if err := core.Accelerate(w.Lib, libOpts); err != nil {
				return nil, err
			}
		}
		r, err := RunAccelerated(w)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.label, err)
		}
		if wantOut == "" {
			wantOut = r.Console()
		} else if r.Console() != wantOut {
			return nil, fmt.Errorf("%s: output changed: %q vs %q", v.label, r.Console(), wantOut)
		}
		total, _, _ := r.Cycles()
		st := w.User.Accel.Stats
		rows = append(rows, AblationRow{
			Name:      v.label,
			Cycles:    total,
			Expansion: float64(st.RISCInstrs) / float64(st.TNSInstrs),
		})
	}
	return rows, nil
}

// AblationTable renders the ablation as text.
func AblationTable(name string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (%s, Default level): cost of disabling each optimization\n\n", name)
	fmt.Fprintf(&b, "%-30s %12s %9s %11s\n", "Variant", "cycles", "slowdown", "expansion")
	base := rows[0]
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %12.0f %8.1f%% %11.2f\n",
			r.Name, r.Cycles, 100*(r.Cycles/base.Cycles-1), r.Expansion)
	}
	return b.String()
}
