package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/tcache"
	"tnsr/internal/tnsasm"
	"tnsr/internal/tnsgen"
	"tnsr/internal/xlate"
)

// XlateRecord is one (codefile, temperature) measurement against a live
// translation service: the submit→accelerated wall latency for that
// codefile, plus the service queue's counters for the pass the measurement
// belongs to (the queue is shared, so Steals/FragsExecuted/PeakQueueTasks
// are per-pass deltas repeated on every record of the pass).
type XlateRecord struct {
	Schema         string  `json:"schema"`
	Workload       string  `json:"workload"`
	Mode           string  `json:"mode"` // "xlate-cold" or "xlate-cached"
	LatencyMs      float64 `json:"latency_ms"`
	Cached         bool    `json:"cached"`
	PeakQueueTasks int     `json:"peak_queue_tasks"`
	Steals         int64   `json:"steals"`
	FragsExecuted  int64   `json:"frags_executed"`
}

// Xlate temperature modes.
const (
	XlateModeCold   = "xlate-cold"
	XlateModeCached = "xlate-cached"
)

// MeasureXlate stands up an in-process tnsxlated over a temporary store,
// submits n distinct generated codefiles CONCURRENTLY (cold — every
// fragment goes through the shared work-stealing queue), then resubmits
// the same codefiles (cached — every submission must answer entirely from
// the content-addressed store), and reports the submit→accelerated latency
// of each codefile in each pass. The cold records carry the queue's
// per-pass steal and fragment counts; a correct cached pass executes zero
// fragments.
func MeasureXlate(n int) ([]XlateRecord, error) {
	if n < 2 {
		n = 2 // one submission cannot exercise cross-codefile scheduling
	}
	dir, err := os.MkdirTemp("", "tnsxlated-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cache, err := tcache.Open(dir)
	if err != nil {
		return nil, err
	}
	s := xlate.New(xlate.Config{Cache: cache})
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	build := func(i int) (*codefile.File, error) {
		p := tnsgen.Generate(fmt.Sprintf("xb%d", i), int64(100+i), tnsgen.LegacyConfig())
		return tnsasm.Assemble(p.Name, p.UserSource())
	}
	opts := core.Options{Level: codefile.LevelDefault}

	pass := func(mode string) ([]XlateRecord, error) {
		before := s.Queue().Stats()
		stopPeak := watchQueueDepth(s)

		recs := make([]XlateRecord, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				f, err := build(i)
				if err != nil {
					errs[i] = err
					return
				}
				cl := xlate.NewClient(base, "")
				cl.PollInterval = 2 * time.Millisecond
				start := time.Now()
				st, err := cl.Submit(f, opts)
				if err != nil {
					errs[i] = err
					return
				}
				if err := cl.Accelerate(f, opts); err != nil {
					errs[i] = err
					return
				}
				recs[i] = XlateRecord{
					Schema:    BenchSchema,
					Workload:  f.Name,
					Mode:      mode,
					LatencyMs: float64(time.Since(start)) / float64(time.Millisecond),
					Cached:    st.Cached,
				}
			}(i)
		}
		wg.Wait()
		depth := stopPeak()
		after := s.Queue().Stats()
		for i := range recs {
			if errs[i] != nil {
				return nil, errs[i]
			}
			recs[i].PeakQueueTasks = depth
			recs[i].Steals = after.Steals - before.Steals
			recs[i].FragsExecuted = after.Executed - before.Executed
		}
		return recs, nil
	}

	cold, err := pass(XlateModeCold)
	if err != nil {
		return nil, err
	}
	cached, err := pass(XlateModeCached)
	if err != nil {
		return nil, err
	}
	return append(cold, cached...), nil
}

// watchQueueDepth samples the service queue until the returned stop
// function is called, which reports the peak number of concurrently
// queued-or-running translations it observed. A sampled peak can
// undercount on a fast pass; it never overcounts.
func watchQueueDepth(s *xlate.Server) (stop func() int) {
	var (
		max  int
		done = make(chan struct{})
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if t := s.Queue().Stats().Tasks; t > max {
				max = t
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	return func() int {
		close(done)
		wg.Wait()
		return max
	}
}

// WriteXlateJSON validates recs and writes BENCH_xlate.json into dir.
func WriteXlateJSON(dir string, recs []XlateRecord) error {
	if err := ValidateXlateRecords(recs); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_xlate.json"), append(data, '\n'), 0o644)
}

// ValidateXlateRecords checks a BENCH_xlate.json payload: schema tag, a
// cold and a cached record per codefile, and the temperature invariants —
// cold submissions translate (fragments executed, nothing answered from
// the store), cached submissions answer entirely from the store (zero
// fragments executed).
func ValidateXlateRecords(recs []XlateRecord) error {
	if len(recs) == 0 {
		return fmt.Errorf("no xlate records")
	}
	modes := map[string]int{}
	for _, r := range recs {
		if r.Schema != BenchSchema {
			return fmt.Errorf("schema %q != %q", r.Schema, BenchSchema)
		}
		if r.Workload == "" {
			return fmt.Errorf("record missing workload: %+v", r)
		}
		if r.LatencyMs < 0 {
			return fmt.Errorf("%s/%s: negative latency", r.Workload, r.Mode)
		}
		if r.PeakQueueTasks < 0 || r.Steals < 0 || r.FragsExecuted < 0 {
			return fmt.Errorf("%s/%s: negative queue counter", r.Workload, r.Mode)
		}
		modes[r.Mode]++
		switch r.Mode {
		case XlateModeCold:
			if r.Cached {
				return fmt.Errorf("%s: cold record marked cached", r.Workload)
			}
			if r.FragsExecuted == 0 {
				return fmt.Errorf("%s: cold record executed no fragments", r.Workload)
			}
		case XlateModeCached:
			if !r.Cached {
				return fmt.Errorf("%s: cached record not answered from the store", r.Workload)
			}
			if r.FragsExecuted != 0 {
				return fmt.Errorf("%s: cached record executed %d fragments", r.Workload, r.FragsExecuted)
			}
		default:
			return fmt.Errorf("%s: unknown mode %q", r.Workload, r.Mode)
		}
	}
	if modes[XlateModeCold] != modes[XlateModeCached] {
		return fmt.Errorf("unbalanced passes: %d cold, %d cached records",
			modes[XlateModeCold], modes[XlateModeCached])
	}
	return nil
}

// XlateTable renders the records as the benchtab text table.
func XlateTable(recs []XlateRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Translation service: submit→accelerated latency (cold vs cached)\n\n")
	fmt.Fprintf(&b, "  %-10s %-13s %12s %7s\n", "workload", "mode", "latency_ms", "cached")
	for _, r := range recs {
		fmt.Fprintf(&b, "  %-10s %-13s %12.3f %7v\n", r.Workload, r.Mode, r.LatencyMs, r.Cached)
	}
	for _, mode := range []string{XlateModeCold, XlateModeCached} {
		for _, r := range recs {
			if r.Mode == mode {
				fmt.Fprintf(&b, "\n%s pass: peak queue %d task(s), %d fragment(s) executed, %d steal(s)\n",
					strings.TrimPrefix(mode, "xlate-"), r.PeakQueueTasks, r.FragsExecuted, r.Steals)
				break
			}
		}
	}
	return b.String()
}
