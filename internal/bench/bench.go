// Package bench regenerates the paper's evaluation: Table 1 (relative code
// execution speed) and its figure, Table 2 (relative cycle efficiency) and
// its figure, Table 3 (RISC instructions generated inline per CISC
// instruction), Table 4 (dynamic code-size expansion), and the headline
// scalar claims (accelerated vs. interpreted speedup, interpreter-mode
// residency, Statement Debug cost, the 11-cycle EXIT lookup).
//
// CISC hardware numbers come from pricing one interpreter execution profile
// under each machine's cost model; every RISC-side number comes from
// actually translating the workload with the Accelerator and executing the
// result on the cycle-counted simulator with interpreter fallback.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"tnsr/internal/backend"
	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/machine"
	"tnsr/internal/risc"
	"tnsr/internal/tns"
	"tnsr/internal/workloads"
)

// Target selects the RISC backend the measurements translate for; nil is
// the MIPS/R3000 default the paper's tables describe. A non-default target
// is executed on its own timing model, so the absolute numbers are not
// comparable to the paper's — the sweep still verifies output fidelity and
// reports that target's expansion and residency.
var Target backend.Backend

// Iterations gives each workload enough work to measure without making the
// full table slow. Override per run if desired.
var Iterations = map[string]int{
	"dhry16": 120,
	"dhry32": 120,
	"tal":    4,
	"axcel":  2,
	"et1":    30,
}

// Row holds every measurement for one workload.
type Row struct {
	Name string

	// Interpreter execution profile (one run, priced under all models).
	Prof interp.Profile

	// CISC machine times in seconds.
	CISCTime map[string]float64

	// Cyclone/R software modes: seconds of CPU time.
	InterpTime float64
	AccelTime  map[codefile.AccelLevel]float64

	// Interpreter-mode residency per level (fraction of cycles).
	InterpFrac map[codefile.AccelLevel]float64

	// Static expansion statistics per level.
	Expansion map[codefile.AccelLevel]float64 // RISC instrs per TNS instr
	DynSize   map[codefile.AccelLevel]float64 // 2i + 0.75
	Stats     map[codefile.AccelLevel]codefile.AccelStats

	// RISC pipeline detail for the Default level.
	RISCCycles float64
	RISCInstrs int64
}

// Levels in table order.
var Levels = []codefile.AccelLevel{
	codefile.LevelStmtDebug, codefile.LevelDefault, codefile.LevelFast,
}

// MeasureWorkload runs one workload through every machine and mode.
func MeasureWorkload(name string, iterations int) (*Row, error) {
	row := &Row{
		Name:       name,
		CISCTime:   map[string]float64{},
		AccelTime:  map[codefile.AccelLevel]float64{},
		InterpFrac: map[codefile.AccelLevel]float64{},
		Expansion:  map[codefile.AccelLevel]float64{},
		DynSize:    map[codefile.AccelLevel]float64{},
		Stats:      map[codefile.AccelLevel]codefile.AccelStats{},
	}

	// Reference interpreter run: the execution profile prices every CISC
	// machine and the Cyclone/R software interpreter.
	ref := workloads.MustBuild(name, iterations)
	m := interp.New(ref.User, ref.Lib)
	if err := m.Run(2_000_000_000); err != nil {
		return nil, err
	}
	if m.Trap != tns.TrapNone {
		return nil, fmt.Errorf("%s: trap %d at %d", name, m.Trap, m.TrapP)
	}
	row.Prof = m.Prof
	wantOut := m.Console.String()

	for _, cm := range machine.CISCModels {
		row.CISCTime[cm.Name] = cm.Seconds(cm.Cycles(&m.Prof.Counts, m.Prof.LongUnits))
	}
	im := &machine.CycloneRInterp
	row.InterpTime = im.Seconds(im.Cycles(&m.Prof.Counts, m.Prof.LongUnits))

	for _, lvl := range Levels {
		w := workloads.MustBuild(name, iterations)
		opts := core.Options{Level: lvl, LibSummaries: w.LibSummaries, Backend: Target}
		if err := core.Accelerate(w.User, opts); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, lvl, err)
		}
		if w.Lib != nil {
			if err := core.Accelerate(w.Lib, core.Options{
				Level: lvl, CodeBase: 0x80000, Space: 1, Backend: Target,
			}); err != nil {
				return nil, fmt.Errorf("%s/%s lib: %w", name, lvl, err)
			}
		}
		r, err := RunAccelerated(w)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, lvl, err)
		}
		if got := r.Console(); got != wantOut {
			return nil, fmt.Errorf("%s/%s: output %q != interpreter %q",
				name, lvl, got, wantOut)
		}
		total, riscCyc, _ := r.Cycles()
		row.AccelTime[lvl] = total / (machine.CycloneRClockMHz * 1e6)
		row.InterpFrac[lvl] = r.InterpFraction()
		st := w.User.Accel.Stats
		if w.Lib != nil {
			ls := w.Lib.Accel.Stats
			st.TNSInstrs += ls.TNSInstrs
			st.RISCInstrs += ls.RISCInstrs
			st.TableWords += ls.TableWords
		}
		row.Stats[lvl] = st
		exp := float64(st.RISCInstrs) / float64(st.TNSInstrs)
		row.Expansion[lvl] = exp
		row.DynSize[lvl] = 2*exp + 0.75
		if lvl == codefile.LevelDefault {
			row.RISCCycles = riscCyc
			row.RISCInstrs = r.Sim.Instrs
		}
	}
	return row, nil
}

// RunAccelerated executes an accelerated workload in mixed mode with the
// Cyclone/R timing configuration.
func RunAccelerated(w *workloads.Workload) (*runResult, error) {
	r, err := newRunner(w.User, w.Lib)
	if err != nil {
		return nil, err
	}
	if err := r.Run(4_000_000_000); err != nil {
		return nil, err
	}
	if r.Trap != tns.TrapNone {
		return nil, fmt.Errorf("trap %d at %d", r.Trap, r.TrapP)
	}
	return r, nil
}

// Measure runs every workload.
func Measure() ([]*Row, error) {
	var rows []*Row
	for _, name := range workloads.Names {
		row, err := MeasureWorkload(name, Iterations[name])
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CycloneRConfig is the simulator timing for the Cyclone/R (256 KB caches,
// as the paper notes were provisioned for translated-code expansion).
func CycloneRConfig() risc.Config { return risc.DefaultConfig() }

// --- formatting --------------------------------------------------------------

// machineRows lists Table 1/2 row labels in paper order.
var machineRows = []string{
	"CLX800", "VLX", "Cyclone",
	"Cyclone/R Interpreted",
	"A-Stmt Debug", "A-Default", "A-Fast opts",
}

// timeOf returns the execution time for a table row label.
func (r *Row) timeOf(label string) (float64, bool) {
	switch label {
	case "CLX800", "VLX", "Cyclone":
		return r.CISCTime[label], true
	case "Cyclone/R Interpreted":
		if r.Name == "et1" {
			return 0, false // the paper reports n/a for ET1 software rows
		}
		return r.InterpTime, true
	case "A-Stmt Debug":
		if r.Name == "et1" {
			return 0, false
		}
		return r.AccelTime[codefile.LevelStmtDebug], true
	case "A-Default":
		if r.Name == "et1" {
			return 0, false
		}
		return r.AccelTime[codefile.LevelDefault], true
	case "A-Fast opts":
		return r.AccelTime[codefile.LevelFast], true
	}
	return 0, false
}

func clockOf(label string) float64 {
	switch label {
	case "CLX800":
		return machine.CLX800.ClockMHz
	case "VLX":
		return machine.VLX.ClockMHz
	case "Cyclone":
		return machine.Cyclone.ClockMHz
	default:
		return machine.CycloneRClockMHz
	}
}

// Table1 renders relative code execution speed (CLX 800 = 1.00).
func Table1(rows []*Row) string {
	return relTable(rows, "Relative code execution speed (CLX 800 = 1.00; bigger is better)",
		func(r *Row, label string) (float64, bool) {
			t, ok := r.timeOf(label)
			if !ok || t == 0 {
				return 0, false
			}
			return r.CISCTime["CLX800"] / t, true
		})
}

// Table2 renders relative cycle efficiency: work per cycle relative to the
// CLX 800, i.e. speed rescaled by clock rate.
func Table2(rows []*Row) string {
	return relTable(rows, "Relative cycle efficiency (CLX 800 = 1.00; bigger is better)",
		func(r *Row, label string) (float64, bool) {
			t, ok := r.timeOf(label)
			if !ok || t == 0 {
				return 0, false
			}
			speed := r.CISCTime["CLX800"] / t
			return speed * clockOf("CLX800") / clockOf(label), true
		})
}

func relTable(rows []*Row, title string,
	val func(*Row, string) (float64, bool)) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", title)
	fmt.Fprintf(&b, "%-22s", "Machine")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9s", r.Name)
	}
	b.WriteString("\n")
	for _, label := range machineRows {
		fmt.Fprintf(&b, "%-22s", label)
		for _, r := range rows {
			if v, ok := val(r, label); ok {
				fmt.Fprintf(&b, "%9.2f", v)
			} else {
				fmt.Fprintf(&b, "%9s", "n/a")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table3 renders inline expansion: RISC instructions per CISC instruction.
func Table3(rows []*Row) string {
	var b strings.Builder
	b.WriteString("RISC instructions generated inline per CISC instruction (lower is better)\n\n")
	fmt.Fprintf(&b, "%-22s", "Accel option")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9s", r.Name)
	}
	b.WriteString("\n")
	for _, lvl := range Levels {
		fmt.Fprintf(&b, "%-22s", "A-"+lvl.String())
		for _, r := range rows {
			fmt.Fprintf(&b, "%9.2f", r.Expansion[lvl])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table4 renders the dynamic size expansion 2i + 0.75 (MIPS instructions
// are twice the size of TNS instructions; the PMap adds 75% of the original
// code size), plus the paper's note that accelerated codefiles additionally
// retain the complete CISC image (+1.0 static).
func Table4(rows []*Row) string {
	var b strings.Builder
	b.WriteString("Dynamic code size expansion, 2i + 0.75 (lower is better)\n\n")
	fmt.Fprintf(&b, "%-22s", "Accel option")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9s", r.Name)
	}
	b.WriteString("\n")
	for _, lvl := range Levels {
		fmt.Fprintf(&b, "%-22s", "A-"+lvl.String())
		for _, r := range rows {
			fmt.Fprintf(&b, "%9.2f", r.DynSize[lvl])
		}
		b.WriteString("\n")
	}
	b.WriteString("\nStatic codefile expansion adds +1.0: the complete CISC image is retained.\n")
	return b.String()
}

// Figure renders an ASCII bar chart of the geometric mean across workloads
// for the given per-(row,label) metric — the shape of the paper's two bar
// figures.
func Figure(rows []*Row, title string,
	val func(*Row, string) (float64, bool)) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (geometric mean over workloads)\n\n", title)
	maxV := 0.0
	vals := map[string]float64{}
	for _, label := range machineRows {
		prod, n := 1.0, 0
		for _, r := range rows {
			if v, ok := val(r, label); ok && v > 0 {
				prod *= v
				n++
			}
		}
		if n == 0 {
			continue
		}
		g := pow(prod, 1.0/float64(n))
		vals[label] = g
		if g > maxV {
			maxV = g
		}
	}
	for _, label := range machineRows {
		g, ok := vals[label]
		if !ok {
			continue
		}
		bar := int(g / maxV * 50)
		fmt.Fprintf(&b, "%-22s %5.2f |%s\n", label, g, strings.Repeat("#", bar))
	}
	return b.String()
}

// Figure1 is the relative-speed bar chart.
func Figure1(rows []*Row) string {
	return Figure(rows, "Figure 1: Relative Code Execution Speed",
		func(r *Row, label string) (float64, bool) {
			t, ok := r.timeOf(label)
			if !ok || t == 0 {
				return 0, false
			}
			return r.CISCTime["CLX800"] / t, true
		})
}

// Figure2 is the cycle-efficiency bar chart.
func Figure2(rows []*Row) string {
	return Figure(rows, "Figure 2: Relative Cycle Efficiency",
		func(r *Row, label string) (float64, bool) {
			t, ok := r.timeOf(label)
			if !ok || t == 0 {
				return 0, false
			}
			return r.CISCTime["CLX800"] / t * clockOf("CLX800") / clockOf(label), true
		})
}

func pow(x, y float64) float64 {
	// Minimal x^y for positive x via exp/log-free iteration is overkill;
	// use the standard library through a tiny shim to keep imports tidy.
	return mathPow(x, y)
}

// FullReport renders everything.
func FullReport(rows []*Row) string {
	var b strings.Builder
	b.WriteString("Reproduction of Andrews & Sand, ASPLOS-V 1992 — evaluation tables\n")
	b.WriteString(strings.Repeat("=", 70) + "\n\n")
	b.WriteString(Table1(rows) + "\n")
	b.WriteString(Figure1(rows) + "\n")
	b.WriteString(Table2(rows) + "\n")
	b.WriteString(Figure2(rows) + "\n")
	b.WriteString(Table3(rows) + "\n")
	b.WriteString(Table4(rows) + "\n")
	b.WriteString(Claims(rows) + "\n")
	return b.String()
}

// SortedLevels helps tests iterate deterministically.
func SortedLevels(m map[codefile.AccelLevel]float64) []codefile.AccelLevel {
	out := make([]codefile.AccelLevel, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
