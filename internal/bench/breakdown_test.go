package bench

import (
	"fmt"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/risc"
	"tnsr/internal/workloads"
)

func TestDebugCycleBreakdown(t *testing.T) {
	for _, lvl := range []codefile.AccelLevel{codefile.LevelDefault, codefile.LevelFast} {
		w := workloads.MustBuild("dhry16", 50)
		core.Accelerate(w.User, core.Options{Level: lvl})
		r, err := RunAccelerated(w)
		if err != nil {
			t.Fatal(err)
		}
		// The stall/cache breakdown is R3000 pipeline detail, so it lives
		// on the MIPS backend's concrete simulator, not the shared CPU.
		s, ok := r.BackendSim().(*risc.Sim)
		if !ok {
			t.Fatalf("default backend is not the MIPS simulator: %T", r.BackendSim())
		}
		fmt.Printf("%s: cycles=%d instrs=%d cpi=%.2f loadstall=%d mdstall=%d imiss=%d dmiss=%d\n",
			lvl, s.Cycles, s.Instrs, float64(s.Cycles)/float64(s.Instrs),
			s.LoadStalls, s.MDStalls, s.ICacheMisses, s.DCacheMisses)
		// TNS instruction count of the same run under interpretation.
		ref := workloads.MustBuild("dhry16", 50)
		m, _ := func() (a interface{ Instrs() int64 }, e error) { return nil, nil }()
		_ = m
		_ = ref
	}
}
