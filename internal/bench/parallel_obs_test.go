package bench

import (
	"testing"

	"tnsr/internal/core"
	"tnsr/internal/obs"
	"tnsr/internal/workloads"
)

func TestParallelPhaseTimings(t *testing.T) {
	w := workloads.MustBuild("tal", 1)
	rec := obs.NewRecorder()
	opts := core.Options{Workers: 4, LibSummaries: w.LibSummaries, Obs: rec}
	if err := core.Accelerate(w.User, opts); err != nil {
		t.Fatal(err)
	}
	rep := rec.Report()
	seen := map[string]bool{}
	for _, p := range rep.Phases {
		seen[p.Phase] = true
	}
	for _, want := range []string{"analyze", "rp", "liveness", "translate", "merge", "schedule", "finalize"} {
		if !seen[want] {
			t.Errorf("phase %q missing: %+v", want, rep.Phases)
		}
	}
	if err := obs.Validate(rep); err != nil {
		t.Fatal(err)
	}
}
