package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMeasureXlateRoundTrip runs the full service benchmark small: two
// codefiles cold then cached, records validating, JSON export parsing
// back and validating again. The cold/cached invariants are the point —
// the cold pass must actually translate, the cached pass must answer
// entirely from the content-addressed store.
func TestMeasureXlateRoundTrip(t *testing.T) {
	recs, err := MeasureXlate(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateXlateRecords(recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4 (2 codefiles × cold+cached)", len(recs))
	}

	dir := t.TempDir()
	if err := WriteXlateJSON(dir, recs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_xlate.json"))
	if err != nil {
		t.Fatal(err)
	}
	var parsed []XlateRecord
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if err := ValidateXlateRecords(parsed); err != nil {
		t.Fatalf("exported records do not re-validate: %v", err)
	}
	if XlateTable(recs) == "" {
		t.Error("empty text table")
	}
}

// TestValidateXlateRejects pins the validator's teeth on hostile payloads.
func TestValidateXlateRejects(t *testing.T) {
	good := func() []XlateRecord {
		return []XlateRecord{
			{Schema: BenchSchema, Workload: "w", Mode: XlateModeCold, LatencyMs: 1, FragsExecuted: 5},
			{Schema: BenchSchema, Workload: "w", Mode: XlateModeCached, LatencyMs: 1, Cached: true},
		}
	}
	if err := ValidateXlateRecords(good()); err != nil {
		t.Fatalf("good records rejected: %v", err)
	}
	cases := map[string]func([]XlateRecord) []XlateRecord{
		"empty":              func(r []XlateRecord) []XlateRecord { return nil },
		"bad schema":         func(r []XlateRecord) []XlateRecord { r[0].Schema = "nope/v9"; return r },
		"no workload":        func(r []XlateRecord) []XlateRecord { r[0].Workload = ""; return r },
		"negative latency":   func(r []XlateRecord) []XlateRecord { r[1].LatencyMs = -1; return r },
		"bad mode":           func(r []XlateRecord) []XlateRecord { r[0].Mode = "xlate-warm"; return r },
		"cold marked cached": func(r []XlateRecord) []XlateRecord { r[0].Cached = true; return r },
		"cold zero frags":    func(r []XlateRecord) []XlateRecord { r[0].FragsExecuted = 0; return r },
		"cached not cached":  func(r []XlateRecord) []XlateRecord { r[1].Cached = false; return r },
		"cached with frags":  func(r []XlateRecord) []XlateRecord { r[1].FragsExecuted = 3; return r },
		"unbalanced":         func(r []XlateRecord) []XlateRecord { return r[:1] },
	}
	for name, mutate := range cases {
		if err := ValidateXlateRecords(mutate(good())); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
