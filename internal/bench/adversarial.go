package bench

import (
	"tnsr/internal/codefile"
	"tnsr/internal/tns"
	"tnsr/internal/tnsasm"
)

// adversarialProgram builds the E6/E9 test subject: a compute loop whose
// occasional indirect call returns TWO result words with no SETRP clue, so
// the Accelerator's pattern guess (one word, because a STOR follows) is
// wrong and the run-time RP check sends each such call into interpreter
// mode. The calls are rare relative to the loop work, so residency stays
// small — the situation the paper describes for unhinted programs.
func adversarialProgram() (*codefile.File, error) {
	return tnsasm.Assemble("adversarial", `
GLOBALS 16
MAIN main
; pair returns two words; its summary is deliberately absent.
PROC pair ARGS 1
  LOAD L-3
  LOAD L-3
  ADDI 1
  EXIT 1
ENDPROC
PROC work RESULT 1 ARGS 1
  ADDS 1
  LDI 0
  STOR L+1
  LOAD L-3
loop:
  DUP
  BZ done
  DUP
  LOAD L+1
  ADD
  STOR L+1
  ADDI -1
  BUN loop
done:
  DEL
  LOAD L+1
  EXIT 1
ENDPROC
PROC main
  LDI 0
  STOR G+0      ; accumulator
  LDI 40
  STOR G+1      ; outer loop count
outer:
  LOAD G+1
  BZ finish
  ; long computation: work(200) called 30 times per indirect call
  LDI 30
  STOR G+4
inner:
  LOAD G+4
  BZ innerdone
  LDI 100
  ADDI 100
  ADDS 1
  STOR S-0
  PCAL work
  LOAD G+0
  ADD
  STOR G+0
  LOAD G+4
  ADDI -1
  STOR G+4
  BUN inner
innerdone:
  ; rare unhinted indirect call returning 2 words; guess says 1.
  LDI 5
  ADDS 1
  STOR S-0
  LDPL 0
  XCAL
  STOR G+2      ; consumes one word; the second is discarded below
  STOR G+3
  LOAD G+1
  ADDI -1
  STOR G+1
  BUN outer
finish:
  LOAD G+0
  SVC 2
  EXIT 0
ENDPROC
`)
}

// adversarialXCALSites finds the XCAL instruction addresses in the program
// (targets for ReturnValSize-style hints).
func adversarialXCALSites(f *codefile.File) map[uint16]bool {
	sites := map[uint16]bool{}
	for a, w := range f.Code {
		in := tns.Decode(w)
		if in.Major == tns.MajSpecial && in.Sub == tns.SubStack &&
			in.Operand == tns.OpXCAL {
			sites[uint16(a)] = true
		}
	}
	return sites
}
