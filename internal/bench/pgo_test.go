package bench

import (
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/interp"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/workloads"
)

// TestRunAdaptiveAdversarial is the PGO acceptance test: on the adversarial
// program (wrong XCAL result-size guesses, no hints) the observe ->
// retranslate -> rerun cycle must drive rp-conflict escapes to ~zero and
// measurably shrink interpreter residency, while both passes stay
// observationally identical (RunAdaptive itself errors on divergence).
func TestRunAdaptiveAdversarial(t *testing.T) {
	res, err := AdaptiveAdversarial(200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("adversarial program did not halt")
	}
	f1, f2 := res.InterpFractions()
	c1 := res.FirstObs.Escapes[obs.EscapeRPConflict]
	c2 := res.SecondObs.Escapes[obs.EscapeRPConflict]
	t.Logf("pass 1: interp %.4f%%, rp-conflict escapes %d", 100*f1, c1)
	t.Logf("pass 2: interp %.4f%%, rp-conflict escapes %d", 100*f2, c2)
	if c1 == 0 {
		t.Error("pass 1 should hit rp-conflict escapes (that is what the profile feeds on)")
	}
	if c2 != 0 {
		t.Errorf("pass 2 still hit %d rp-conflict escapes; profile should have corrected the guesses", c2)
	}
	if f2 >= f1 {
		t.Errorf("profiled residency %.4f%% should be below unprofiled %.4f%%", 100*f2, 100*f1)
	}
	// The profile must carry the facts the retranslation fed on.
	if err := pgo.Validate(res.Profile); err != nil {
		t.Fatalf("captured profile invalid: %v", err)
	}
	sp := res.Profile.Space("user")
	if sp == nil || len(sp.RPSites) == 0 {
		t.Error("profile should record the observed RP at the escaping return points")
	}
	if sp != nil && len(sp.Procs) == 0 {
		t.Error("profile should record per-procedure residency weights")
	}
}

// TestCaptureWorkloadRoundTrip checks the tnsprof -emit-profile path: capture
// a real workload, serialize, reparse, and confirm the bytes are stable and
// the profile carries residency for the space that actually ran.
func TestCaptureWorkloadRoundTrip(t *testing.T) {
	prof, rep, err := CaptureWorkload("dhry16", codefile.LevelDefault, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "dhry16" || prof.Workload != "dhry16" {
		t.Error("workload name should be stamped on both report and profile")
	}
	j, err := prof.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := pgo.ParseProfile(j)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	j2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j) != string(j2) {
		t.Error("profile JSON is not a fixed point under parse/serialize")
	}
}

// BenchmarkAdversarialAdaptive prices the full two-pass cycle on the
// adversarial program (the workload the subsystem exists for).
func BenchmarkAdversarialAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := AdaptiveAdversarial(200_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if res.SecondObs.Escapes[obs.EscapeRPConflict] != 0 {
			b.Fatal("pass 2 regressed: rp-conflict escapes nonzero")
		}
	}
}

// benchInterpLoopCaptured mirrors benchInterpLoop with a PGO capture
// attached, bounding the cost of the capture hooks the same way the
// telemetry benchmarks bound the Obs hooks (DESIGN.md §9 contract: a nil
// sink is one pointer compare per site).
func benchInterpLoopCaptured(b *testing.B) {
	w := workloads.MustBuild("dhry16", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := interp.New(w.User, w.Lib)
		c := pgo.NewCapture()
		c.AttachFiles(w.User, w.Lib)
		m.PGO = c
		b.StartTimer()
		if err := m.Run(2_000_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpHotLoopCaptured runs the overhead_test hot loop with a
// profile capture attached; compare against BenchmarkInterpHotLoop (nil
// hooks) and BenchmarkInterpHotLoopObserved (telemetry recorder).
func BenchmarkInterpHotLoopCaptured(b *testing.B) { benchInterpLoopCaptured(b) }
