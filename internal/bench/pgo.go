package bench

import (
	"fmt"
	"os"

	"tnsr/internal/codefile"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/tns"
	"tnsr/internal/xrun"
)

// CaptureWorkload runs the named workload or example exactly like
// ProfileWorkload, but with a PGO capture attached alongside the telemetry
// recorder, and returns the captured profile with the execution report.
// This is what `tnsprof -emit-profile` writes to disk.
func CaptureWorkload(name string, level codefile.AccelLevel, iterations int) (*pgo.Profile, *obs.Report, error) {
	return CaptureWorkloadOpts(name, level, iterations, xrun.AdaptiveOptions{})
}

// CaptureWorkloadOpts is CaptureWorkload with the fleet knobs exposed: a
// Source pushes the capture through a tnsprofd daemon (the second pass then
// runs under the fleet aggregate, `tnsprof -push`), a Cache serves the
// translations. Level, Budget and Config in o are overwritten from the
// workload parameters.
func CaptureWorkloadOpts(name string, level codefile.AccelLevel, iterations int,
	o xrun.AdaptiveOptions) (*pgo.Profile, *obs.Report, error) {

	user, lib, summaries, err := buildProfiled(name, iterations)
	if err != nil {
		return nil, nil, err
	}
	o.Level = level
	o.Budget = 4_000_000_000
	o.Config = CycloneRConfig()
	o.LibSummaries = summaries
	res, err := xrun.RunAdaptiveOpts(user, lib, o)
	if err != nil {
		return nil, nil, err
	}
	for _, serr := range res.SourceErrs {
		fmt.Fprintf(os.Stderr, "warning: %v\n", serr)
	}
	if res.Trap != tns.TrapNone {
		return nil, nil, fmt.Errorf("%s: trap %d at %d", name, res.Trap, res.TrapP)
	}
	res.Profile.Workload = name
	rep := res.Second.Report(res.SecondObs)
	rep.Workload = name
	return res.Profile, rep, nil
}

// AdaptiveAdversarial runs the observe -> retranslate -> rerun cycle on the
// adversarial program (wrong XCAL result-size guess, no hints): the pass-1
// run escapes at every indirect call's return point; the captured dynamic
// RP corrects the guess in pass 2, which should drive rp-conflict escapes
// to zero and shrink interpreter-mode residency — the automated version of
// the hand-written hints AdversarialResidency measures.
func AdaptiveAdversarial(budget int64) (*xrun.AdaptiveResult, error) {
	f, err := adversarialProgram()
	if err != nil {
		return nil, err
	}
	return xrun.RunAdaptive(f, nil, nil, codefile.LevelDefault, 0, budget, CycloneRConfig())
}

// AdversarialProgram builds a fresh copy of the adversarial workload — the
// program whose XCAL result sizes static analysis must guess wrong — for
// callers (the fleet e2e harness) that need the codefile itself rather
// than a canned cycle.
func AdversarialProgram() (*codefile.File, error) {
	return adversarialProgram()
}

// AdaptiveAdversarialOpts is AdaptiveAdversarial with the fleet knobs
// exposed: a remote profile source and/or a persistent retranslation
// cache, threaded straight into RunAdaptiveOpts.
func AdaptiveAdversarialOpts(budget int64, o xrun.AdaptiveOptions) (*xrun.AdaptiveResult, error) {
	f, err := adversarialProgram()
	if err != nil {
		return nil, err
	}
	o.Level = codefile.LevelDefault
	o.Budget = budget
	o.Config = CycloneRConfig()
	return xrun.RunAdaptiveOpts(f, nil, o)
}
