package bench

import (
	"fmt"

	"tnsr/internal/codefile"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/tns"
	"tnsr/internal/xrun"
)

// CaptureWorkload runs the named workload or example exactly like
// ProfileWorkload, but with a PGO capture attached alongside the telemetry
// recorder, and returns the captured profile with the execution report.
// This is what `tnsprof -emit-profile` writes to disk.
func CaptureWorkload(name string, level codefile.AccelLevel, iterations int) (*pgo.Profile, *obs.Report, error) {
	user, lib, summaries, err := buildProfiled(name, iterations)
	if err != nil {
		return nil, nil, err
	}
	res, err := xrun.RunAdaptive(user, lib, summaries, level, 0, 4_000_000_000, CycloneRConfig())
	if err != nil {
		return nil, nil, err
	}
	if res.Trap != tns.TrapNone {
		return nil, nil, fmt.Errorf("%s: trap %d at %d", name, res.Trap, res.TrapP)
	}
	res.Profile.Workload = name
	rep := res.Second.Report(res.SecondObs)
	rep.Workload = name
	return res.Profile, rep, nil
}

// AdaptiveAdversarial runs the observe -> retranslate -> rerun cycle on the
// adversarial program (wrong XCAL result-size guess, no hints): the pass-1
// run escapes at every indirect call's return point; the captured dynamic
// RP corrects the guess in pass 2, which should drive rp-conflict escapes
// to zero and shrink interpreter-mode residency — the automated version of
// the hand-written hints AdversarialResidency measures.
func AdaptiveAdversarial(budget int64) (*xrun.AdaptiveResult, error) {
	f, err := adversarialProgram()
	if err != nil {
		return nil, err
	}
	return xrun.RunAdaptive(f, nil, nil, codefile.LevelDefault, 0, budget, CycloneRConfig())
}
