package bench

import (
	"runtime"
	"testing"

	"tnsr/internal/core"
	"tnsr/internal/workloads"
)

// Translation throughput: how fast the Accelerator itself runs. The paper
// weighs static translation cost against dynamic translation's pauses, so
// the translator's own wall-clock matters; the parallel pipeline buys it
// back with cores. The TAL-compiler workload is the largest codefile in the
// suite, giving the worker pool the most procedures to spread.

func benchAccelerate(b *testing.B, workers int) {
	w, err := workloads.Build("tal", 4)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Workers: workers}
	b.SetBytes(int64(2 * len(w.User.Code))) // TNS code words are 16-bit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.Accelerate(w.User, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccelerateSerial is the Workers=1 reference pipeline.
func BenchmarkAccelerateSerial(b *testing.B) { benchAccelerate(b, 1) }

// BenchmarkAccelerateParallel fans translation out to every CPU. The
// emitted section is byte-identical to the serial run (see
// core.TestParallelDeterminism); only the wall-clock changes.
func BenchmarkAccelerateParallel(b *testing.B) {
	benchAccelerate(b, runtime.GOMAXPROCS(0))
}
