package millicode

import (
	"testing"

	"tnsr/internal/risc"
)

func TestBuild(t *testing.T) {
	code, labels := Build()
	if len(code) == 0 {
		t.Fatal("no millicode")
	}
	for _, l := range []string{LExit, LXcal, LScal, LMovb, LMovw, LCmpb, LScnb} {
		if _, ok := labels[l]; !ok {
			t.Errorf("missing label %s", l)
		}
	}
}

// callRoutine runs one jal-linked millicode routine with the given $t0..$t2
// arguments and returns the sim.
func callRoutine(t *testing.T, label string, t0, t1, t2 uint32,
	setup func(s *risc.Sim)) *risc.Sim {
	t.Helper()
	code, labels := Build()
	// Driver: jal routine; break 99.
	driver := []uint32{
		risc.EncJ(risc.JAL, labels[label]),
		risc.NOP,
		risc.EncBreak(99),
	}
	base := uint32(len(code))
	// Relocate the driver after the millicode? JAL targets are absolute, so
	// append the driver and start there.
	all := append(append([]uint32{}, code...), driver...)
	s := risc.NewSim(all, MemBytes, risc.Config{})
	s.Reg[risc.RegT0] = t0
	s.Reg[risc.RegT0+1] = t1
	s.Reg[risc.RegT0+2] = t2
	if setup != nil {
		setup(s)
	}
	s.ResumeAt(base)
	if err := s.Run(100000); err != nil {
		t.Fatal(err)
	}
	if s.BreakCode != 99 {
		t.Fatalf("unexpected break %d (trap %d at %d)", s.BreakCode, s.Trap, s.TrapPC)
	}
	return s
}

func TestMOVBForward(t *testing.T) {
	s := callRoutine(t, LMovb, 0x100, 0x200, 5, func(s *risc.Sim) {
		copy(s.Mem[0x100:], []byte("hello"))
	})
	if string(s.Mem[0x200:0x205]) != "hello" {
		t.Errorf("moved: %q", s.Mem[0x200:0x205])
	}
}

func TestMOVBSmear(t *testing.T) {
	s := callRoutine(t, LMovb, 0x100, 0x101, 3, func(s *risc.Sim) {
		copy(s.Mem[0x100:], []byte("ABCD"))
	})
	if string(s.Mem[0x100:0x104]) != "AAAA" {
		t.Errorf("smear: %q", s.Mem[0x100:0x104])
	}
}

func TestMOVBReverse(t *testing.T) {
	// Negative count: right-to-left, overlap-safe.
	negThree := uint32(0x10000 - 3)
	s := callRoutine(t, LMovb, 0x100, 0x101, negThree&0xFFFF, func(s *risc.Sim) {
		copy(s.Mem[0x100:], []byte("ABCD"))
	})
	if string(s.Mem[0x100:0x104]) != "AABC" {
		t.Errorf("reverse: %q", s.Mem[0x100:0x104])
	}
}

func TestMOVBZero(t *testing.T) {
	s := callRoutine(t, LMovb, 0x100, 0x200, 0, func(s *risc.Sim) {
		copy(s.Mem[0x100:], []byte("x"))
	})
	if s.Mem[0x200] != 0 {
		t.Error("zero count moved data")
	}
}

func TestMOVW(t *testing.T) {
	// Word addresses 0x90 -> 0x98, two halfwords.
	s := callRoutine(t, LMovw, 0x90, 0x98, 2, func(s *risc.Sim) {
		s.WriteHalf(0x120, 0xAABB)
		s.WriteHalf(0x122, 0xCCDD)
	})
	if s.ReadHalf(0x130) != 0xAABB || s.ReadHalf(0x132) != 0xCCDD {
		t.Errorf("movw: %04x %04x", s.ReadHalf(0x130), s.ReadHalf(0x132))
	}
}

func TestCMPB(t *testing.T) {
	cases := []struct {
		a, b string
		want int32
	}{
		{"abc", "abc", 0},
		{"abc", "abd", -1},
		{"abz", "aba", 1},
	}
	for _, c := range cases {
		s := callRoutine(t, LCmpb, 0x100, 0x200, uint32(len(c.a)),
			func(s *risc.Sim) {
				copy(s.Mem[0x100:], c.a)
				copy(s.Mem[0x200:], c.b)
			})
		cc := int32(s.Reg[risc.RegCC])
		switch {
		case c.want == 0 && cc != 0:
			t.Errorf("%q vs %q: cc=%d", c.a, c.b, cc)
		case c.want < 0 && cc >= 0:
			t.Errorf("%q vs %q: cc=%d", c.a, c.b, cc)
		case c.want > 0 && cc <= 0:
			t.Errorf("%q vs %q: cc=%d", c.a, c.b, cc)
		}
	}
}

func TestSCNB(t *testing.T) {
	s := callRoutine(t, LScnb, 0x100, 'c', 10, func(s *risc.Sim) {
		copy(s.Mem[0x100:], "abcde")
	})
	if s.Reg[risc.RegT0] != 2 || s.Reg[risc.RegCC] != 0 {
		t.Errorf("found: pos=%d cc=%d", s.Reg[risc.RegT0], s.Reg[risc.RegCC])
	}
	s = callRoutine(t, LScnb, 0x100, 'z', 5, func(s *risc.Sim) {
		copy(s.Mem[0x100:], "abcde")
	})
	if s.Reg[risc.RegT0] != 5 || s.Reg[risc.RegCC] != 1 {
		t.Errorf("miss: pos=%d cc=%d", s.Reg[risc.RegT0], s.Reg[risc.RegCC])
	}
}
