// Package millicode defines the TNS/R emulation runtime that translated
// code executes within: the fixed memory layout of the RISC machine, the
// BREAK/SYSCALL protocol between translated code and the host, and the
// hand-coded RISC assembly "millicode" routines the Accelerator calls for
// complex or long-running TNS instructions — exactly the role the paper
// assigns to millicode. The routines are written in the risc package's
// assembly syntax and assembled at package init.
//
// # Memory layout (RISC data space, byte addresses)
//
//	0x000000 .. 0x01FFFF   the TNS data space: 64K big-endian halfwords;
//	                       TNS word w lives at byte 2w; $db = 0
//	0x020000 .. 0x02003F   the pointer area: addresses of the runtime
//	                       tables, loaded by millicode (see Ptr* constants)
//	0x020040 ..            packed PMaps and EMaps for both code spaces
//
// # Code layout (RISC code space, word indexes)
//
//	0x000000 .. len(milli) the millicode (this package)
//	0x010000 ..            the user codefile's translated code
//	0x080000 ..            the system library codefile's translated code
//
// The code space is additionally visible read-only in the data space at
// CodeWindow (so translated CASE tables can be loaded with LW).
//
// # Register conventions at millicode entry
//
// Millicode may clobber every Accelerator temporary ($t0..$t13), $mt and
// $ra; the translator treats millicode calls as temporary-pool barriers.
// The emulated TNS state ($r0..$r7, $db, $l, $s, $cc, $k, $v, $env) is
// preserved except where the TNS instruction itself changes it. Arguments
// and results use $t0..$t2 (see each routine).
package millicode

import (
	"sync"

	"tnsr/internal/risc"
)

// Data-space layout.
const (
	TNSDataBytes = 0x20000 // 64K halfwords

	PtrArea         = 0x020000
	PtrUserPMapBase = PtrArea + 0  // address of the user PMap base array
	PtrUserPMapOff  = PtrArea + 4  // address of the user PMap offset bytes
	PtrLibPMapBase  = PtrArea + 8  // ditto for the library (0 if none)
	PtrLibPMapOff   = PtrArea + 12 //
	PtrUserEMap     = PtrArea + 16 // user PEP -> RISC entry byte address
	PtrLibEMap      = PtrArea + 20 // library PEP -> RISC entry byte address
	TableArea       = PtrArea + 64 // packed tables start here

	// CodeWindow maps the RISC code space read-only into data addresses:
	// code word i is a 32-bit load at CodeWindow + 4i.
	CodeWindow = 0x01000000

	// MemBytes is the data-memory size the runtime image allocates.
	MemBytes = 0x100000
)

// Code-space layout (word indexes).
const (
	MilliBase    = 0
	UserCodeBase = 0x010000
	LibCodeBase  = 0x080000
)

// BREAK codes: how translated code and millicode return control to the
// host (the xrun mixed-mode driver).
const (
	// BreakFallback enters interpreter mode at the TNS word address in
	// $mt, in the code space given by bit 8 of $env — the paper's switch
	// to interpretive execution at puzzle points.
	BreakFallback = 1
	// BreakHalt reports that the initial procedure returned through the
	// halt sentinel.
	BreakHalt = 2
	// BreakTrapBase + tnsTrapCode reports a TNS trap raised by translated
	// code; $mt holds the TNS address of the trapping instruction.
	BreakTrapBase = 16
)

// SYSCALL codes are the TNS SVC numbers (tns.Svc*); arguments are passed in
// $t0 (first) and $t1 (second). The host implements them and resumes.

// Label names exported to the translator.
const (
	LExit = "MILLI_EXIT"
	LXcal = "MILLI_XCAL"
	LScal = "MILLI_SCAL"
	LMovb = "MILLI_MOVB"
	LMovw = "MILLI_MOVW"
	LCmpb = "MILLI_CMPB"
	LScnb = "MILLI_SCNB"
)

// Source is the millicode in risc assembly. It is exported so tools (and
// curious tests) can print it; Build assembles it.
//
// Conventions used below:
//
//	MILLI_EXIT:  $t0 = argument words to cut (k). $env's RP field must
//	             already hold the callee's exit RP. Performs the whole
//	             EXIT: reads the stack marker, cuts S, restores L and the
//	             space bit, then maps the TNS return address to RISC code
//	             via the packed PMap — the lookup the paper costs at 11
//	             R3000 cycles — and jumps there. Falls back to the
//	             interpreter when the return point is not register-exact,
//	             and BreakHalts on the halt sentinel.
//
//	MILLI_XCAL:  $t0 = TNS return address, $t1 = PLabel, $mt = TNS address
//	             of the XCAL instruction (for fallback). Dispatches through
//	             the EMap of the PLabel's code space to the target's
//	             translated prologue, or falls back.
//
//	MILLI_SCAL:  $t0 = TNS return address, $t1 = library PEP index, $mt =
//	             TNS address of the SCAL instruction. Like MILLI_XCAL but
//	             always the library EMap.
//
//	MILLI_MOVB:  $t0 = src byte address, $t1 = dst byte address, $t2 =
//	             count (sign = direction), all zero-extended 16-bit.
//	MILLI_MOVW:  same with word addresses; moves halfwords.
//	MILLI_CMPB:  $t0 = a, $t1 = b, $t2 = count; sets $cc.
//	MILLI_SCNB:  $t0 = address, $t1 = test byte, $t2 = limit; returns the
//	             skip count in $t0 and sets $cc (0 found, 1 not found).
//
// The move/compare/scan routines are jal-linked ($ra); EXIT/XCAL/SCAL are
// entered with j and never return to the caller.
const Source = `
; ---------------------------------------------------------------- EXIT ---
MILLI_EXIT:
  addu  $mt, $db, $l        ; marker: ret at L-2 words, env L-1, oldL L-0
  lhu   $t1, -4($mt)        ; t1 = TNS return address
  lhu   $t2, -2($mt)        ; t2 = saved ENV (space bit source)
  lhu   $t3, 0($mt)         ; t3 = caller L (TNS words)
  sll   $t4, $t0, 1
  addiu $t4, $t4, 6         ; (3+k)*2 bytes
  subu  $s, $l, $t4         ; S = L - 3 - k
  sll   $l, $t3, 1          ; restore L (byte form)
  ; env = (env & ~0x100) | (marker & 0x100): propagate the caller's space
  li    $t5, 0x100
  and   $t6, $t2, $t5
  nor   $t5, $t5, $z
  and   $env, $env, $t5
  or    $env, $env, $t6
  ; halt sentinel?
  li    $t5, 0xFFFF
  beq   $t1, $t5, exit_halt
  ; select the PMap of the caller's space (delay slot harmless)
  andi  $t7, $t2, 0x100
  bne   $t7, $z, exit_lib
  lui   $t10, 2             ; pointer area (delay slot)
  lw    $t8, PTRO_UPMAP_BASE($t10)
  b     exit_look
  lw    $t9, PTRO_UPMAP_OFF($t10)
exit_lib:
  lw    $t8, PTRO_LPMAP_BASE($t10)
  lw    $t9, PTRO_LPMAP_OFF($t10)
exit_look:
  beq   $t8, $z, exit_fall  ; no PMap registered for that space
  nop
  ; the 11-cycle lookup: group base + per-word offset
  srl   $t5, $t1, 3         ; group number
  sll   $t5, $t5, 2
  addu  $t5, $t5, $t8
  lw    $t5, 0($t5)         ; anchor: RISC byte address of the group
  addu  $t6, $t1, $t9
  lbu   $t6, 0($t6)         ; per-word offset (RISC words)
  li    $t7, 0xFF
  beq   $t6, $t7, exit_fall
  sll   $t6, $t6, 2
  addu  $t5, $t5, $t6
  jr    $t5
  nop
exit_fall:
  move  $mt, $t1            ; resume interpretation at the return point
  break 1
exit_halt:
  break 2

; ---------------------------------------------------------------- XCAL ---
MILLI_XCAL:
  lui   $t6, 2              ; pointer area
  andi  $t3, $t1, 0x8000    ; space bit of the PLabel
  bne   $t3, $z, xcal_lib
  andi  $t4, $t1, 0x7FFF    ; PEP index (delay slot)
  b     xcal_go
  lw    $t5, PTRO_UEMAP($t6)
xcal_lib:
  lw    $t5, PTRO_LEMAP($t6)
xcal_go:
  beq   $t5, $z, xcal_fall  ; no EMap for that space at all
  sll   $t4, $t4, 2
  addu  $t5, $t5, $t4
  lw    $t5, 0($t5)         ; entry byte address, or 0
  beq   $t5, $z, xcal_fall
  nop
  ; The call site leaves the PLabel on the architectural stack ($env's RP
  ; still counts it) so a missed dispatch can redo the XCAL exactly; a hit
  ; consumes it here by dropping one RP position before the prologue reads
  ; $env for the stack marker.
  andi  $t3, $env, 7
  addiu $t3, $t3, -1
  andi  $t3, $t3, 7
  andi  $env, $env, 0x1F8
  or    $env, $env, $t3
  jr    $t5                 ; to the translated prologue; $t0 = return addr
  nop
xcal_fall:
  break 1                   ; $mt = address of the XCAL; interpreter redoes it

; ---------------------------------------------------------------- SCAL ---
MILLI_SCAL:
  lui   $t6, 2              ; pointer area
  lw    $t5, PTRO_LEMAP($t6)
  beq   $t5, $z, scal_fall
  sll   $t4, $t1, 2
  addu  $t5, $t5, $t4
  lw    $t5, 0($t5)
  beq   $t5, $z, scal_fall
  nop
  jr    $t5
  nop
scal_fall:
  break 1                   ; $mt = address of the SCAL

; ---------------------------------------------------------------- MOVB ---
; $t0 src bytes, $t1 dst bytes, $t2 signed count; preserves $cc/$k/$v.
MILLI_MOVB:
  sll   $t2, $t2, 16
  sra   $t2, $t2, 16        ; sign-extend the 16-bit count
  beq   $t2, $z, movb_done
  slt   $t3, $t2, $z
  bne   $t3, $z, movb_rev
  nop
movb_fwd:
  addu  $t4, $db, $t0
  lbu   $t4, 0($t4)
  addu  $t5, $db, $t1
  sb    $t4, 0($t5)
  addiu $t0, $t0, 1
  addiu $t1, $t1, 1
  addiu $t2, $t2, -1
  bne   $t2, $z, movb_fwd
  nop
  jr    $ra
  nop
movb_rev:
  subu  $t2, $z, $t2        ; |count|
  addu  $t0, $t0, $t2
  addu  $t1, $t1, $t2
movb_rloop:
  addiu $t0, $t0, -1
  addiu $t1, $t1, -1
  addu  $t4, $db, $t0
  lbu   $t4, 0($t4)
  addu  $t5, $db, $t1
  sb    $t4, 0($t5)
  addiu $t2, $t2, -1
  bne   $t2, $z, movb_rloop
  nop
movb_done:
  jr    $ra
  nop

; ---------------------------------------------------------------- MOVW ---
; $t0 src words, $t1 dst words, $t2 signed count.
MILLI_MOVW:
  sll   $t2, $t2, 16
  sra   $t2, $t2, 16
  beq   $t2, $z, movw_done
  slt   $t3, $t2, $z
  sll   $t0, $t0, 1         ; to byte addresses
  sll   $t1, $t1, 1
  bne   $t3, $z, movw_rev
  nop
movw_fwd:
  addu  $t4, $db, $t0
  lhu   $t4, 0($t4)
  addu  $t5, $db, $t1
  sh    $t4, 0($t5)
  addiu $t0, $t0, 2
  addiu $t1, $t1, 2
  addiu $t2, $t2, -1
  bne   $t2, $z, movw_fwd
  nop
  jr    $ra
  nop
movw_rev:
  subu  $t2, $z, $t2
  sll   $t6, $t2, 1
  addu  $t0, $t0, $t6
  addu  $t1, $t1, $t6
movw_rloop:
  addiu $t0, $t0, -2
  addiu $t1, $t1, -2
  addu  $t4, $db, $t0
  lhu   $t4, 0($t4)
  addu  $t5, $db, $t1
  sh    $t4, 0($t5)
  addiu $t2, $t2, -1
  bne   $t2, $z, movw_rloop
  nop
movw_done:
  jr    $ra
  nop

; ---------------------------------------------------------------- CMPB ---
; $t0 a bytes, $t1 b bytes, $t2 count; sets $cc to -1/0/1.
MILLI_CMPB:
  move  $cc, $z
cmpb_loop:
  beq   $t2, $z, cmpb_done
  nop
  addu  $t4, $db, $t0
  lbu   $t4, 0($t4)
  addu  $t5, $db, $t1
  lbu   $t5, 0($t5)
  bne   $t4, $t5, cmpb_diff
  addiu $t2, $t2, -1
  addiu $t0, $t0, 1
  b     cmpb_loop
  addiu $t1, $t1, 1
cmpb_diff:
  subu  $cc, $t4, $t5       ; sign carries the relation
cmpb_done:
  jr    $ra
  nop

; ---------------------------------------------------------------- SCNB ---
; $t0 address, $t1 test byte, $t2 limit; returns skip count in $t0,
; $cc = 0 if found else 1.
MILLI_SCNB:
  move  $t3, $z             ; skipped so far
scnb_loop:
  beq   $t3, $t2, scnb_miss
  nop
  addu  $t4, $db, $t0
  addu  $t4, $t4, $t3
  lbu   $t4, 0($t4)
  beq   $t4, $t1, scnb_hit
  nop
  b     scnb_loop
  addiu $t3, $t3, 1
scnb_hit:
  move  $t0, $t3
  move  $cc, $z
  jr    $ra
  nop
scnb_miss:
  move  $t0, $t2
  jr    $ra
  ori   $cc, $z, 1
`

// Build assembles the millicode and returns its code words plus the label
// map (word indexes relative to MilliBase, which is 0). The assembly is
// memoized behind a sync.Once — the source is a compile-time constant, so
// every build is identical — and each call returns private copies, so
// callers may mutate their result freely. This keeps runner construction
// cheap and concurrency-safe when a fleet host spins up thousands of
// machines.
func Build() ([]uint32, map[string]uint32) {
	buildOnce.Do(func() {
		builtCode, builtLabels = risc.MustAssemble(Source, map[string]uint32{
			"PTRO_UPMAP_BASE": PtrUserPMapBase - PtrArea,
			"PTRO_UPMAP_OFF":  PtrUserPMapOff - PtrArea,
			"PTRO_LPMAP_BASE": PtrLibPMapBase - PtrArea,
			"PTRO_LPMAP_OFF":  PtrLibPMapOff - PtrArea,
			"PTRO_UEMAP":      PtrUserEMap - PtrArea,
			"PTRO_LEMAP":      PtrLibEMap - PtrArea,
		})
	})
	code := append([]uint32(nil), builtCode...)
	labels := make(map[string]uint32, len(builtLabels))
	for k, v := range builtLabels {
		labels[k] = v
	}
	return code, labels
}

var (
	buildOnce   sync.Once
	builtCode   []uint32
	builtLabels map[string]uint32
)
