package talc

import "fmt"

// Expression ASTs. Parsed first, then calls are hoisted into temporaries
// (the register stack must be empty at call sites — the convention the
// Accelerator's RP analysis depends on), then code is generated.

type expr struct {
	op   byte // see cases in genExpr
	num  int64
	sym  *symbol
	idx  *expr // index for 'i'/'I' or second operand uses l,r
	l, r *expr
	bop  string // binary/relational operator text
	call *proc
	args []*expr
	t    typ
	line int
	str  string // string literal (address value)
}

// ops:
//
//	'n' constant            'v' variable            'i' indexed variable
//	'b' binary arithmetic   'u' unary minus         'c' procedure call
//	'a' address-of          'C' condition-as-value  't' hoisted temp
//	'd' $DBL widen          'w' $INT narrow         's' string literal addr
//	'B' builtin (SCANB, COMPAREBYTES)

// --- parsing -----------------------------------------------------------------

func (c *compiler) parseExpr() (*expr, error) { return c.parseOr() }

func (c *compiler) parseOr() (*expr, error) {
	l, err := c.parseAnd()
	if err != nil {
		return nil, err
	}
	for c.isIdent("OR") {
		c.advance()
		r, err := c.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr{op: 'C', bop: "OR", l: l, r: r, t: typ{kind: kInt}}
	}
	return l, nil
}

func (c *compiler) parseAnd() (*expr, error) {
	l, err := c.parseNot()
	if err != nil {
		return nil, err
	}
	for c.isIdent("AND") {
		c.advance()
		r, err := c.parseNot()
		if err != nil {
			return nil, err
		}
		l = &expr{op: 'C', bop: "AND", l: l, r: r, t: typ{kind: kInt}}
	}
	return l, nil
}

func (c *compiler) parseNot() (*expr, error) {
	if c.isIdent("NOT") {
		c.advance()
		e, err := c.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr{op: 'C', bop: "NOT", l: e, t: typ{kind: kInt}}, nil
	}
	return c.parseRel()
}

var relOps = map[string]bool{"<": true, "<=": true, ">": true, ">=": true, "=": true, "<>": true}

func (c *compiler) parseRel() (*expr, error) {
	l, err := c.parseAdd()
	if err != nil {
		return nil, err
	}
	if c.tok.kind == tPunct && relOps[c.tok.text] {
		op := c.tok.text
		c.advance()
		r, err := c.parseAdd()
		if err != nil {
			return nil, err
		}
		return &expr{op: 'C', bop: op, l: l, r: r, t: typ{kind: kInt}}, nil
	}
	return l, nil
}

func (c *compiler) parseAdd() (*expr, error) {
	l, err := c.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case c.isPunct("+"):
			op = "+"
		case c.isPunct("-"):
			op = "-"
		case c.isIdent("LOR"):
			op = "LOR"
		case c.isIdent("LAND"):
			op = "LAND"
		case c.isIdent("XOR"):
			op = "XOR"
		default:
			return l, nil
		}
		c.advance()
		r, err := c.parseMul()
		if err != nil {
			return nil, err
		}
		l = &expr{op: 'b', bop: op, l: l, r: r, t: joinType(l.t, r.t)}
	}
}

func (c *compiler) parseMul() (*expr, error) {
	l, err := c.parseShift()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case c.isPunct("*"):
			op = "*"
		case c.isPunct("/"):
			op = "/"
		case c.isPunct("\\"):
			op = "\\"
		default:
			return l, nil
		}
		c.advance()
		r, err := c.parseShift()
		if err != nil {
			return nil, err
		}
		l = &expr{op: 'b', bop: op, l: l, r: r, t: joinType(l.t, r.t)}
	}
}

func (c *compiler) parseShift() (*expr, error) {
	l, err := c.parseUnary()
	if err != nil {
		return nil, err
	}
	for c.isPunct("<<") || c.isPunct(">>") || c.isPunct("'*") {
		op := c.tok.text
		c.advance()
		r, err := c.parseUnary()
		if err != nil {
			return nil, err
		}
		if op == "'*" { // unsigned shift-left synonym kept simple
			op = "<<"
		}
		l = &expr{op: 'b', bop: op, l: l, r: r, t: l.t}
	}
	return l, nil
}

func (c *compiler) parseUnary() (*expr, error) {
	switch {
	case c.isPunct("-"):
		c.advance()
		e, err := c.parseUnary()
		if err != nil {
			return nil, err
		}
		if e.op == 'n' {
			e.num = -e.num
			return e, nil
		}
		return &expr{op: 'u', l: e, t: e.t}, nil
	case c.isPunct("@"):
		c.advance()
		return c.parseAddrOf()
	}
	return c.parsePrimary()
}

// parseAddrOf parses @name or @name[expr].
func (c *compiler) parseAddrOf() (*expr, error) {
	if c.tok.kind != tIdent {
		return nil, c.errf("@ needs a variable")
	}
	s, err := c.lookup(c.tok.text)
	if err != nil {
		return nil, err
	}
	c.advance()
	var idx *expr
	if c.accept("[") {
		idx, err = c.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := c.expect("]"); err != nil {
			return nil, err
		}
	}
	t := typ{kind: kInt}
	if s.t.ptr && s.t.ext {
		t = typ{kind: kInt32}
	}
	return &expr{op: 'a', sym: s, idx: idx, t: t}, nil
}

func (c *compiler) parsePrimary() (*expr, error) {
	switch {
	case c.tok.kind == tNumber || c.tok.kind == tCharLit:
		v := c.tok.num
		wide := c.tok.str == "D" // TAL doubleword literal suffix
		c.advance()
		t := typ{kind: kInt}
		if wide || v > 32767 || v < -32768 {
			t = typ{kind: kInt32}
		}
		return &expr{op: 'n', num: v, t: t}, nil
	case c.tok.kind == tString:
		str := c.tok.str
		c.advance()
		return &expr{op: 's', str: str, t: typ{kind: kInt}}, nil
	case c.isPunct("("):
		c.advance()
		e, err := c.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, c.expect(")")
	case c.isIdent("$DBL"):
		c.advance()
		if err := c.expect("("); err != nil {
			return nil, err
		}
		e, err := c.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := c.expect(")"); err != nil {
			return nil, err
		}
		return &expr{op: 'd', l: e, t: typ{kind: kInt32}}, nil
	case c.isIdent("$INT"):
		c.advance()
		if err := c.expect("("); err != nil {
			return nil, err
		}
		e, err := c.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := c.expect(")"); err != nil {
			return nil, err
		}
		return &expr{op: 'w', l: e, t: typ{kind: kInt}}, nil
	case c.isIdent("$XADR"):
		// 32-bit byte address of a variable (extended addressing).
		c.advance()
		if err := c.expect("("); err != nil {
			return nil, err
		}
		a, err := c.parseAddrOf()
		if err != nil {
			return nil, err
		}
		if err := c.expect(")"); err != nil {
			return nil, err
		}
		a.op = 'X'
		a.t = typ{kind: kInt32}
		return a, nil
	case c.isIdent("SCANB") || c.isIdent("COMPAREBYTES"):
		name := c.tok.text
		c.advance()
		args, err := c.parseArgs()
		if err != nil {
			return nil, err
		}
		if len(args) != 3 {
			return nil, c.errf("%s takes 3 arguments", name)
		}
		return &expr{op: 'B', bop: name, args: args, t: typ{kind: kInt}}, nil
	case c.tok.kind == tIdent:
		name := c.tok.text
		if v, ok := c.literals[name]; ok {
			c.advance()
			t := typ{kind: kInt}
			if v > 32767 || v < -32768 {
				t = typ{kind: kInt32}
			}
			return &expr{op: 'n', num: v, t: t}, nil
		}
		if p, ok := c.procs[name]; ok {
			c.advance()
			args, err := c.parseArgs()
			if err != nil {
				return nil, err
			}
			if p.result.kind == kVoid {
				return nil, c.errf("procedure %s has no result", name)
			}
			return &expr{op: 'c', call: p, args: args, t: p.result}, nil
		}
		s, err := c.lookup(name)
		if err != nil {
			return nil, err
		}
		c.advance()
		if c.accept("[") {
			idx, err := c.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := c.expect("]"); err != nil {
				return nil, err
			}
			return &expr{op: 'i', sym: s, idx: idx, t: elemType(s.t)}, nil
		}
		return &expr{op: 'v', sym: s, t: valueType(s.t)}, nil
	}
	return nil, c.errf("unexpected %q in expression", c.tokText())
}

func (c *compiler) parseArgs() ([]*expr, error) {
	var args []*expr
	if !c.accept("(") {
		return nil, nil
	}
	if c.accept(")") {
		return args, nil
	}
	for {
		e, err := c.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if !c.accept(",") {
			break
		}
	}
	return args, c.expect(")")
}

func (c *compiler) lookup(name string) (*symbol, error) {
	if c.locals != nil {
		if s, ok := c.locals[name]; ok {
			return s, nil
		}
	}
	if s, ok := c.globals[name]; ok {
		return s, nil
	}
	return nil, c.errf("undeclared identifier %s", name)
}

// valueType is the type a bare variable reference evaluates to.
func valueType(t typ) typ {
	if t.ptr {
		e := t.elem()
		if t.kind == kString {
			return typ{kind: kInt} // byte value
		}
		return e
	}
	if t.arr {
		return t // arrays decay only under [] or @
	}
	return t
}

// elemType is the type of var[idx].
func elemType(t typ) typ {
	if t.kind == kString {
		return typ{kind: kInt}
	}
	return t.elem()
}

func joinType(a, b typ) typ {
	if a.kind == kInt32 || b.kind == kInt32 {
		return typ{kind: kInt32}
	}
	return typ{kind: kInt}
}

// constExpr evaluates a compile-time constant expression (numbers, LITERAL
// names, unary minus, + - * on constants).
func (c *compiler) constExpr() (int64, error) {
	v, err := c.constMul()
	if err != nil {
		return 0, err
	}
	for c.isPunct("+") || c.isPunct("-") {
		op := c.tok.text
		c.advance()
		r, err := c.constMul()
		if err != nil {
			return 0, err
		}
		if op == "+" {
			v += r
		} else {
			v -= r
		}
	}
	return v, nil
}

func (c *compiler) constMul() (int64, error) {
	v, err := c.constAtom()
	if err != nil {
		return 0, err
	}
	for c.isPunct("*") {
		c.advance()
		r, err := c.constAtom()
		if err != nil {
			return 0, err
		}
		v *= r
	}
	return v, nil
}

func (c *compiler) constAtom() (int64, error) {
	switch {
	case c.isPunct("-"):
		c.advance()
		v, err := c.constAtom()
		return -v, err
	case c.tok.kind == tNumber || c.tok.kind == tCharLit:
		v := c.tok.num
		c.advance()
		return v, nil
	case c.isPunct("("):
		c.advance()
		v, err := c.constExpr()
		if err != nil {
			return 0, err
		}
		return v, c.expect(")")
	case c.tok.kind == tIdent:
		if v, ok := c.literals[c.tok.text]; ok {
			c.advance()
			return v, nil
		}
	}
	return 0, c.errf("constant expression expected, found %q", c.tokText())
}

// --- call hoisting -----------------------------------------------------------

// hoistCalls rewrites the tree so every procedure call happens with an
// empty register stack: each call is evaluated into a compiler temporary
// up front, deepest first.
func (c *compiler) hoistCalls(e *expr) (*expr, error) {
	if e == nil {
		return nil, nil
	}
	var err error
	if e.l, err = c.hoistCalls(e.l); err != nil {
		return nil, err
	}
	if e.r, err = c.hoistCalls(e.r); err != nil {
		return nil, err
	}
	if e.idx, err = c.hoistCalls(e.idx); err != nil {
		return nil, err
	}
	for i := range e.args {
		if e.args[i], err = c.hoistCalls(e.args[i]); err != nil {
			return nil, err
		}
	}
	if e.op != 'c' {
		return e, nil
	}
	// Generate the call now (the register stack is empty between
	// statements and between hoisted calls) and park the result.
	if err := c.genCall(e.call, e.args); err != nil {
		return nil, err
	}
	w := e.t.valueWords()
	off := c.allocTemp(w)
	if w == 2 {
		c.emit("  STD L+%d", off)
		c.depth -= 2
	} else {
		c.emit("  STOR L+%d", off)
		c.depth--
	}
	return &expr{op: 't', num: int64(off), t: e.t}, nil
}

// allocTemp reserves words of local temporary space for the current
// statement.
func (c *compiler) allocTemp(words int) int {
	off := c.nextLocal + c.tempTop
	c.tempTop += words
	if off+words-1 > c.maxLocal {
		c.maxLocal = off + words - 1
	}
	return off
}

// genCall pushes the arguments onto the memory stack and calls.
func (c *compiler) genCall(p *proc, args []*expr) error {
	if !p.sysProc && len(args) != len(p.params) {
		return c.errf("%s expects %d arguments, got %d", p.name, len(p.params), len(args))
	}
	if c.depth != 0 {
		return fmt.Errorf("internal: register stack not empty at call of %s", p.name)
	}
	for i, a := range args {
		var want typ
		if p.sysProc {
			want = a.t
		} else {
			want = p.params[i].t
			if want.ptr || want.arr {
				// Reference parameter: the caller passes an address.
				want = typ{kind: kInt}
				if p.params[i].t.ext {
					want = typ{kind: kInt32}
				}
			}
		}
		if err := c.genExprAs(a, want); err != nil {
			return err
		}
		w := want.valueWords()
		if w == 2 {
			c.emit("  ADDS 2")
			c.emit("  STD S-1")
			c.depth -= 2
		} else {
			c.emit("  ADDS 1")
			c.emit("  STOR S-0")
			c.depth--
		}
	}
	if p.sysProc {
		c.emit("  SCAL %d", p.pep)
	} else {
		c.emit("  PCAL %s", p.name)
	}
	if p.result.kind != kVoid {
		c.depth += p.result.valueWords()
	}
	return nil
}
