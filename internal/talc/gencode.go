package talc

import "fmt"

// Code generation for expressions. The style deliberately mirrors what the
// paper says about TNS compilers: straight stack code, no caching of
// subexpressions, addresses recomputed at each use.

// genExprAs generates e and converts the result to the wanted width.
func (c *compiler) genExprAs(e *expr, want typ) error {
	// Bare arrays (and whole string variables) passed where a word is
	// wanted decay to their address.
	if e.op == 'v' && e.sym.t.arr {
		if err := c.genAddr(e.sym, nil); err != nil {
			return err
		}
	} else if err := c.genExpr(e); err != nil {
		return err
	}
	have := e.t.valueWords()
	if e.op == 'v' && e.sym.t.arr {
		have = 1
	}
	switch {
	case have == 1 && want.valueWords() == 2:
		c.emit("  CTOD")
		c.depth++
	case have == 2 && want.valueWords() == 1:
		c.emit("  DTOC")
		c.depth--
	}
	return nil
}

// genExpr pushes the value of e onto the register stack.
func (c *compiler) genExpr(e *expr) error {
	switch e.op {
	case 'n':
		if e.t.kind == kInt32 {
			c.pushConst32(e.num)
		} else {
			c.pushConst(e.num)
		}
		return nil

	case 't':
		if e.t.valueWords() == 2 {
			c.emit("  LDD L+%d", e.num)
			c.depth += 2
		} else {
			c.emit("  LOAD L+%d", e.num)
			c.depth++
		}
		return nil

	case 'v':
		return c.genVarLoad(e.sym, nil)
	case 'i':
		return c.genVarLoad(e.sym, e.idx)

	case 'a':
		return c.genAddr(e.sym, e.idx)

	case 'X':
		// 32-bit byte address: zero-extended 16-bit address, doubled for
		// word entities (STRING addresses are already byte addresses).
		c.pushConst(0)
		if err := c.genAddr16(e.sym, e.idx, false); err != nil {
			return err
		}
		if !(e.sym.t.kind == kString && !e.sym.t.ptr) {
			c.emit("  DSHL 1")
		}
		return nil

	case 's':
		addr := c.internString(e.str)
		c.pushConst(int64(2 * addr))
		return nil

	case 'd':
		if err := c.genExpr(e.l); err != nil {
			return err
		}
		if e.l.t.valueWords() == 1 {
			c.emit("  CTOD")
			c.depth++
		}
		return nil

	case 'w':
		if err := c.genExpr(e.l); err != nil {
			return err
		}
		if e.l.t.valueWords() == 2 {
			c.emit("  DTOC")
			c.depth--
		}
		return nil

	case 'u':
		if err := c.genExpr(e.l); err != nil {
			return err
		}
		if e.t.valueWords() == 2 {
			c.emit("  DNEG")
		} else {
			c.emit("  NEG")
		}
		return nil

	case 'b':
		return c.genBinary(e)

	case 'C':
		return c.genCondValue(e)

	case 'B':
		return c.genBuiltinExpr(e)

	case 'c':
		return fmt.Errorf("internal: unhoisted call to %s", e.call.name)
	}
	return fmt.Errorf("internal: bad expression op %c", e.op)
}

// internString places a string literal in global data and returns its word
// address.
func (c *compiler) internString(s string) int {
	addr := c.nextGlobal
	words := make([]uint16, (len(s)+1)/2)
	for i := 0; i < len(s); i++ {
		if i%2 == 0 {
			words[i/2] = uint16(s[i]) << 8
		} else {
			words[i/2] |= uint16(s[i])
		}
	}
	c.nextGlobal += len(words)
	c.data = append(c.data, dataInit{addr: addr, words: words})
	return addr
}

// direct reports whether a global word address is reachable by the short
// direct forms (the paper's 256-word global window).
func directG(addr int) bool { return addr >= 0 && addr <= 255 }

func directL(addr int) bool { return addr >= 0 && addr <= 127 }

// genVarLoad loads a variable (with optional index) onto the stack.
func (c *compiler) genVarLoad(s *symbol, idx *expr) error {
	t := s.t
	switch {
	case t.ptr && t.ext:
		// Extended pointer: push the 32-bit address, then LDE/LDBE.
		if err := c.loadCell32(s); err != nil {
			return err
		}
		if idx != nil {
			if err := c.genExprAs(idx, typ{kind: kInt32}); err != nil {
				return err
			}
			if t.kind != kString {
				c.emit("  DSHL 1") // scale words to bytes
			}
			c.emit("  DADD")
			c.depth -= 2
		}
		if t.kind == kString {
			c.emit("  LDBE")
		} else {
			c.emit("  LDE")
		}
		c.depth-- // pair popped, word pushed
		return nil

	case t.ptr && t.kind == kString:
		if idx == nil {
			c.emitCellOp("LDB", s, true, false)
			c.depth++
			return nil
		}
		if err := c.genExpr(idx); err != nil {
			return err
		}
		c.emitCellOp("LDB", s, true, true)
		c.depth++
		return nil

	case t.ptr:
		op := "LOAD"
		if t.kind == kInt32 {
			op = "LDD"
		}
		if idx == nil {
			c.emitCellOp(op, s, true, false)
			c.depth += wordsOf(op)
			return nil
		}
		if err := c.genExpr(idx); err != nil {
			return err
		}
		if t.kind == kInt32 {
			c.emit("  SHL 1")
		}
		c.emitCellOp(op, s, true, true)
		c.depth += wordsOf(op)
		return nil

	case t.arr:
		if idx == nil {
			return fmt.Errorf("array %s used without index", s.name)
		}
		if t.kind == kString {
			if err := c.genIndexValue(idx, t.lo, 1); err != nil {
				return err
			}
			c.emitCellOp("LDB", s, false, true)
			c.depth++
			return nil
		}
		scale := 1
		op := "LOAD"
		if t.kind == kInt32 {
			scale, op = 2, "LDD"
		}
		if err := c.genIndexValue(idx, t.lo, scale); err != nil {
			return err
		}
		c.emitCellOp(op, s, false, true)
		c.depth += wordsOf(op)
		return nil

	default:
		op := "LOAD"
		if t.kind == kInt32 {
			op = "LDD"
		}
		if t.kind == kString {
			op = "LDB"
		}
		c.emitCellOp(op, s, false, false)
		c.depth += wordsOf(op)
		return nil
	}
}

func wordsOf(op string) int {
	if op == "LDD" || op == "STD" {
		return 2
	}
	return 1
}

// genIndexValue pushes an index value adjusted for the lower bound and
// element scale.
func (c *compiler) genIndexValue(idx *expr, lo, scale int) error {
	if err := c.genExprAs(idx, typ{kind: kInt}); err != nil {
		return err
	}
	if lo != 0 {
		c.pushConst(int64(-lo))
		c.emit("  ADD")
		c.depth--
	}
	if scale == 2 {
		c.emit("  SHL 1")
	}
	return nil
}

// emitCellOp emits a memory instruction addressing s's cell with the given
// indirection/indexing. The index (if any) must already be on the stack;
// it is consumed. Globals beyond the 256-word direct window take the extra
// indexing steps the paper describes.
func (c *compiler) emitCellOp(op string, s *symbol, ind, idx bool) {
	suffix := ""
	if ind {
		suffix += ",I"
	}
	if idx {
		suffix += ",X"
	}
	switch s.kind {
	case symGlobal:
		if directG(s.addr) {
			c.emit("  %s G+%d%s", op, s.addr, suffix)
			if idx {
				c.depth--
			}
			return
		}
		// Out-of-window global. Reduce every form to "op G+0,X" with a
		// computed index.
		byteOp := op == "LDB" || op == "STB"
		if ind {
			// Fetch the pointer cell first: mem[s.addr].
			c.pushConst(int64(s.addr))
			c.emit("  LOAD G+0,X")
			// The cell holds a word address (word ops) or byte address
			// (byte ops); either serves directly as the G+0 index.
			if idx {
				c.emit("  ADD")
				c.depth--
			}
			c.emit("  %s G+0,X", op)
			c.depth--
			return
		}
		base := int64(s.addr)
		if byteOp {
			base = 2 * base
		}
		c.pushConst(base)
		if idx {
			c.emit("  ADD")
			c.depth--
		}
		c.emit("  %s G+0,X", op)
		c.depth--
		return
	default: // locals and params share L addressing
		if s.addr >= 0 && directL(s.addr) {
			c.emit("  %s L+%d%s", op, s.addr, suffix)
		} else if s.addr < 0 && -s.addr <= 31 {
			c.emit("  %s L-%d%s", op, -s.addr, suffix)
		} else {
			panic(fmt.Sprintf("talc: local offset %d out of range", s.addr))
		}
		if idx {
			c.depth--
		}
	}
}

// genAddr pushes the word address (byte address for STRING) of a variable.
func (c *compiler) genAddr(s *symbol, idx *expr) error {
	return c.genAddr16(s, idx, true)
}

// genAddr16 pushes the 16-bit address; for STRING entities the address is
// a byte address.
func (c *compiler) genAddr16(s *symbol, idx *expr, allowPtr bool) error {
	if s.t.ptr && allowPtr {
		// @p is the pointer's own value.
		if s.t.ext {
			if err := c.loadCell32(s); err != nil {
				return err
			}
		} else {
			c.emitCellOp("LOAD", s, false, false)
			c.depth++
		}
		if idx != nil {
			if s.t.ext {
				if err := c.genExprAs(idx, typ{kind: kInt32}); err != nil {
					return err
				}
				if s.t.kind != kString {
					c.emit("  DSHL 1")
				}
				c.emit("  DADD")
				c.depth -= 2
			} else {
				if err := c.genExpr(idx); err != nil {
					return err
				}
				c.emit("  ADD")
				c.depth--
			}
		}
		return nil
	}
	byteAddr := s.t.kind == kString
	scale := 1
	if s.t.kind == kInt32 {
		scale = 2
	}
	switch s.kind {
	case symGlobal:
		base := s.addr
		if byteAddr {
			base = 2 * s.addr
		}
		if idx == nil {
			c.pushConst(int64(base))
			return nil
		}
		if err := c.genIndexValue(idx, s.t.lo, scaleFor(byteAddr, scale)); err != nil {
			return err
		}
		c.pushConst(int64(base))
		c.emit("  ADD")
		c.depth--
		return nil
	default:
		if s.addr >= -31 && s.addr <= 127 {
			c.emit("  LLA %d", s.addr)
			c.depth++
		} else {
			panic("talc: local offset out of LLA range")
		}
		if byteAddr {
			c.emit("  SHL 1")
		}
		if idx != nil {
			if err := c.genIndexValue(idx, s.t.lo, scaleFor(byteAddr, scale)); err != nil {
				return err
			}
			c.emit("  ADD")
			c.depth--
		}
		return nil
	}
}

func scaleFor(byteAddr bool, scale int) int {
	if byteAddr {
		return 1
	}
	return scale
}

// loadCell32 pushes the 32-bit content of an extended pointer cell.
func (c *compiler) loadCell32(s *symbol) error {
	c.emitCellOp("LDD", s, false, false)
	c.depth += 2
	return nil
}

// genBinary generates arithmetic and bitwise operations.
func (c *compiler) genBinary(e *expr) error {
	wide := e.t.kind == kInt32
	// Shifts take a constant count.
	if e.bop == "<<" || e.bop == ">>" {
		if err := c.genExprAs(e.l, e.t); err != nil {
			return err
		}
		if e.r.op != 'n' {
			return fmt.Errorf("line %d: shift count must be a constant", e.line)
		}
		n := e.r.num
		switch {
		case wide && e.bop == "<<":
			c.emit("  DSHL %d", n)
		case wide:
			c.emit("  DSHRL %d", n)
		case e.bop == "<<":
			c.emit("  SHL %d", n)
		default:
			c.emit("  SHRA %d", n)
		}
		return nil
	}
	if err := c.genExprAs(e.l, e.t); err != nil {
		return err
	}
	if err := c.genExprAs(e.r, e.t); err != nil {
		return err
	}
	var op string
	switch e.bop {
	case "+":
		op = "ADD"
	case "-":
		op = "SUB"
	case "*":
		op = "MPY"
	case "/":
		op = "DIV"
	case "\\":
		op = "MOD"
	case "LOR":
		op = "LOR"
	case "LAND":
		op = "LAND"
	case "XOR":
		op = "XOR"
	default:
		return fmt.Errorf("internal: binary op %q", e.bop)
	}
	if wide {
		switch op {
		case "ADD":
			op = "DADD"
		case "SUB":
			op = "DSUB"
		case "MPY":
			op = "DMPY"
		case "DIV":
			op = "DDIV"
		default:
			return fmt.Errorf("line %d: %s is not available on INT(32)", e.line, e.bop)
		}
		c.emit("  %s", op)
		c.depth -= 2
		return nil
	}
	c.emit("  %s", op)
	c.depth--
	return nil
}

// genCondValue materializes a condition as 0/1.
func (c *compiler) genCondValue(e *expr) error {
	fl := c.newLabel("cf")
	done := c.newLabel("cd")
	if err := c.genCondJump(e, fl, false); err != nil {
		return err
	}
	c.emit("  LDI 1")
	c.emit("  BUN %s", done)
	c.emit("%s:", fl)
	c.emit("  LDI 0")
	c.emit("%s:", done)
	c.depth++
	return nil
}

var relInverse = map[string]string{
	"<": ">=", "<=": ">", ">": "<=", ">=": "<", "=": "<>", "<>": "=",
}

var relBranch = map[string]string{
	"<": "BL", "<=": "BLE", ">": "BG", ">=": "BGE", "=": "BE", "<>": "BNE",
}

// genCondJump branches to target when e is true (jumpIfTrue) or false.
// Conditional branches are emitted as a short inverse branch over an
// unconditional one, so label distance never overflows the BCC range.
func (c *compiler) genCondJump(e *expr, target string, jumpIfTrue bool) error {
	if e.op == 'C' {
		switch e.bop {
		case "NOT":
			return c.genCondJump(e.l, target, !jumpIfTrue)
		case "AND":
			if jumpIfTrue {
				skip := c.newLabel("ca")
				if err := c.genCondJump(e.l, skip, false); err != nil {
					return err
				}
				if err := c.genCondJump(e.r, target, true); err != nil {
					return err
				}
				c.emit("%s:", skip)
				return nil
			}
			if err := c.genCondJump(e.l, target, false); err != nil {
				return err
			}
			return c.genCondJump(e.r, target, false)
		case "OR":
			if jumpIfTrue {
				if err := c.genCondJump(e.l, target, true); err != nil {
					return err
				}
				return c.genCondJump(e.r, target, true)
			}
			skip := c.newLabel("co")
			if err := c.genCondJump(e.l, skip, true); err != nil {
				return err
			}
			if err := c.genCondJump(e.r, target, false); err != nil {
				return err
			}
			c.emit("%s:", skip)
			return nil
		default: // relational
			jt := joinType(e.l.t, e.r.t)
			if err := c.genExprAs(e.l, jt); err != nil {
				return err
			}
			if err := c.genExprAs(e.r, jt); err != nil {
				return err
			}
			if jt.kind == kInt32 {
				c.emit("  DCMP")
				c.depth -= 4
			} else {
				c.emit("  CMP")
				c.depth -= 2
			}
			rel := e.bop
			if !jumpIfTrue {
				rel = relInverse[rel]
			}
			// Short inverse branch over a BUN, range-safe.
			skip := c.newLabel("cs")
			c.emit("  %s %s", relBranch[relInverse[rel]], skip)
			c.emit("  BUN %s", target)
			c.emit("%s:", skip)
			return nil
		}
	}
	// Truth value of a plain expression.
	if err := c.genExpr(e); err != nil {
		return err
	}
	if e.t.valueWords() == 2 {
		c.emit("  DTST")
		c.emit("  DDEL")
		c.depth -= 2
		skip := c.newLabel("cs")
		if jumpIfTrue {
			c.emit("  BE %s", skip)
		} else {
			c.emit("  BNE %s", skip)
		}
		c.emit("  BUN %s", target)
		c.emit("%s:", skip)
		return nil
	}
	skip := c.newLabel("cs")
	if jumpIfTrue {
		c.emit("  BZ %s", skip)
	} else {
		c.emit("  BNZ %s", skip)
	}
	c.depth--
	c.emit("  BUN %s", target)
	c.emit("%s:", skip)
	return nil
}

// genBuiltinExpr compiles SCANB and COMPAREBYTES.
func (c *compiler) genBuiltinExpr(e *expr) error {
	for _, a := range e.args {
		if err := c.genExprAs(a, typ{kind: kInt}); err != nil {
			return err
		}
	}
	switch e.bop {
	case "SCANB":
		c.emit("  SCNB")
		c.depth -= 2
	case "COMPAREBYTES":
		c.emit("  CMPB")
		c.depth -= 3
		neg := c.newLabel("cb")
		pos := c.newLabel("cb")
		done := c.newLabel("cb")
		c.emit("  BL %s", neg)
		c.emit("  BG %s", pos)
		c.emit("  LDI 0")
		c.emit("  BUN %s", done)
		c.emit("%s:", neg)
		c.emit("  LDI -1")
		c.emit("  BUN %s", done)
		c.emit("%s:", pos)
		c.emit("  LDI 1")
		c.emit("%s:", done)
		c.depth++
	}
	return nil
}
