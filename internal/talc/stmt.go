package talc

import (
	"fmt"

	"tnsr/internal/codefile"
)

// stmtEnd consumes a statement terminator: ';', or nothing when the next
// token closes an enclosing construct (ELSE/END/OTHERWISE), TAL style.
func (c *compiler) stmtEnd() error {
	if c.accept(";") {
		return nil
	}
	if c.isIdent("ELSE") || c.isIdent("END") || c.isIdent("OTHERWISE") {
		return nil
	}
	return c.errf("expected \";\", found %q", c.tokText())
}

// Statement compilation. Every statement starts at a statement boundary
// (STMT marker -> the codefile statement table the debugger and the
// Accelerator's StmtDebug level use) with an empty register stack.

func (c *compiler) statement() error {
	line := c.tok.line
	c.tempTop = 0
	if c.depth != 0 {
		return fmt.Errorf("internal: register stack depth %d at statement start", c.depth)
	}
	c.emit("  STMT %d", line)
	switch {
	case c.isIdent("BEGIN"):
		return c.compileBlockStmts()
	case c.isIdent("IF"):
		return c.ifStmt()
	case c.isIdent("WHILE"):
		return c.whileStmt()
	case c.isIdent("FOR"):
		return c.forStmt()
	case c.isIdent("CASE"):
		return c.caseStmt()
	case c.isIdent("CALL"):
		c.advance()
		return c.callStmt()
	case c.isIdent("RETURN"):
		c.advance()
		return c.returnStmt()
	case c.isIdent("MOVE"):
		c.advance()
		return c.moveStmt()
	case c.isIdent("PUTCHAR"), c.isIdent("PUTNUM"), c.isIdent("PUTS"),
		c.isIdent("HALT"):
		return c.consoleStmt()
	case c.isPunct(";"):
		c.advance()
		return nil
	case c.isPunct("@"):
		// Pointer assignment: @p := address expression.
		c.advance()
		return c.pointerAssign()
	case c.tok.kind == tIdent:
		return c.assignStmt()
	}
	return c.errf("unexpected %q at start of statement", c.tokText())
}

// compileBlockStmts compiles BEGIN stmts END with no new declarations.
func (c *compiler) compileBlockStmts() error {
	c.advance() // BEGIN
	for !c.isIdent("END") {
		if c.tok.kind == tEOF {
			return c.errf("unexpected end of file in block")
		}
		if err := c.statement(); err != nil {
			return err
		}
	}
	c.advance()
	c.accept(";")
	return nil
}

func (c *compiler) ifStmt() error {
	c.advance() // IF
	cond, err := c.parseExpr()
	if err != nil {
		return err
	}
	if err := c.expect("THEN"); err != nil {
		return err
	}
	cond, err = c.hoistCalls(cond)
	if err != nil {
		return err
	}
	elseL := c.newLabel("else")
	if err := c.genCondJump(cond, elseL, false); err != nil {
		return err
	}
	if err := c.statement(); err != nil {
		return err
	}
	if c.isIdent("ELSE") {
		c.advance()
		endL := c.newLabel("fi")
		c.emit("  BUN %s", endL)
		c.emit("%s:", elseL)
		if err := c.statement(); err != nil {
			return err
		}
		c.emit("%s:", endL)
	} else {
		c.emit("%s:", elseL)
	}
	c.accept(";")
	return nil
}

func (c *compiler) whileStmt() error {
	c.advance() // WHILE
	top := c.newLabel("wh")
	out := c.newLabel("wo")
	c.emit("%s:", top)
	cond, err := c.parseExpr()
	if err != nil {
		return err
	}
	if err := c.expect("DO"); err != nil {
		return err
	}
	cond, err = c.hoistCalls(cond)
	if err != nil {
		return err
	}
	if err := c.genCondJump(cond, out, false); err != nil {
		return err
	}
	if err := c.statement(); err != nil {
		return err
	}
	c.emit("  BUN %s", top)
	c.emit("%s:", out)
	c.accept(";")
	return nil
}

func (c *compiler) forStmt() error {
	c.advance() // FOR
	if c.tok.kind != tIdent {
		return c.errf("FOR needs a control variable")
	}
	v, err := c.lookup(c.tok.text)
	if err != nil {
		return err
	}
	if v.t.valueWords() != 1 || v.t.arr || v.t.ptr {
		return c.errf("FOR control variable must be a plain INT")
	}
	c.advance()
	if err := c.expect(":="); err != nil {
		return err
	}
	start, err := c.parseExpr()
	if err != nil {
		return err
	}
	down := false
	if c.isIdent("DOWNTO") {
		down = true
		c.advance()
	} else if err := c.expect("TO"); err != nil {
		return err
	}
	limit, err := c.parseExpr()
	if err != nil {
		return err
	}
	step := int64(1)
	if c.accept("BY") {
		s, err := c.constExpr()
		if err != nil {
			return err
		}
		step = s
	}
	if err := c.expect("DO"); err != nil {
		return err
	}
	// Initialize; keep the limit in a temp (re-evaluated limits are a TAL
	// gotcha we sidestep).
	if start, err = c.hoistCalls(start); err != nil {
		return err
	}
	if err := c.assignTo(v, nil, start); err != nil {
		return err
	}
	if limit, err = c.hoistCalls(limit); err != nil {
		return err
	}
	// The limit lives in a dedicated hidden local for the loop's lifetime
	// (statement-scoped temporaries are reused by the body's statements).
	limOff := c.nextLocal
	c.nextLocal++
	if c.nextLocal-1 > c.maxLocal {
		c.maxLocal = c.nextLocal - 1
	}
	defer func() { c.nextLocal-- }()
	if err := c.genExprAs(limit, typ{kind: kInt}); err != nil {
		return err
	}
	c.emit("  STOR L+%d", limOff)
	c.depth--

	top := c.newLabel("fo")
	out := c.newLabel("fx")
	c.emit("%s:", top)
	// Test: v <= limit (or >= when counting down).
	if err := c.genVarLoad(v, nil); err != nil {
		return err
	}
	c.emit("  LOAD L+%d", limOff)
	c.depth++
	c.emit("  CMP")
	c.depth -= 2
	skip := c.newLabel("fs")
	if down {
		c.emit("  BGE %s", skip)
	} else {
		c.emit("  BLE %s", skip)
	}
	c.emit("  BUN %s", out)
	c.emit("%s:", skip)
	if err := c.statement(); err != nil {
		return err
	}
	// Increment.
	if err := c.genVarLoad(v, nil); err != nil {
		return err
	}
	inc := step
	if down {
		inc = -step
	}
	c.pushConst(inc)
	c.emit("  ADD")
	c.depth--
	if err := c.storeVar(v, nil); err != nil {
		return err
	}
	c.emit("  BUN %s", top)
	c.emit("%s:", out)
	c.accept(";")
	return nil
}

// caseStmt compiles CASE e OF BEGIN s0; s1; ... [OTHERWISE s] END — into
// the CASE jump-table instruction.
func (c *compiler) caseStmt() error {
	c.advance() // CASE
	sel, err := c.parseExpr()
	if err != nil {
		return err
	}
	if err := c.expect("OF"); err != nil {
		return err
	}
	if err := c.expect("BEGIN"); err != nil {
		return err
	}
	if sel, err = c.hoistCalls(sel); err != nil {
		return err
	}
	if err := c.genExprAs(sel, typ{kind: kInt}); err != nil {
		return err
	}
	c.emit("  CASE")
	c.depth--

	// The CASETAB must be emitted before the arms, but the arm count is
	// unknown until parsed; compile each arm into the buffer, then cut the
	// text back out and splice it after the table.
	endL := c.newLabel("ce")
	otherL := c.newLabel("cw")
	var arms []string
	type armCode struct {
		label string
		text  string
	}
	var compiled []armCode
	otherwise := ""
	for !c.isIdent("END") {
		mark := c.out.Len()
		if c.isIdent("OTHERWISE") {
			c.advance()
			if err := c.statement(); err != nil {
				return err
			}
			otherwise = c.out.String()[mark:]
			c.out.Truncate(mark)
			continue
		}
		l := c.newLabel("ca")
		arms = append(arms, l)
		if err := c.statement(); err != nil {
			return err
		}
		compiled = append(compiled, armCode{label: l, text: c.out.String()[mark:]})
		c.out.Truncate(mark)
	}
	c.advance() // END
	c.accept(";")

	var tab string
	for i, l := range arms {
		if i > 0 {
			tab += ", "
		}
		tab += l
	}
	c.emit("CASETAB %s", tab)
	// Fall-through (out of range) is the OTHERWISE arm.
	c.emit("%s:", otherL)
	if otherwise != "" {
		c.out.WriteString(otherwise)
	}
	c.emit("  BUN %s", endL)
	for _, a := range compiled {
		c.emit("%s:", a.label)
		c.out.WriteString(a.text)
		c.emit("  BUN %s", endL)
	}
	c.emit("%s:", endL)
	return nil
}

func (c *compiler) callStmt() error {
	if c.isIdent("PUTCHAR") || c.isIdent("PUTNUM") || c.isIdent("PUTS") ||
		c.isIdent("HALT") {
		return c.consoleStmt()
	}
	if c.tok.kind != tIdent {
		return c.errf("CALL needs a procedure name")
	}
	name := c.tok.text
	p, ok := c.procs[name]
	if !ok {
		return c.errf("undeclared procedure %s", name)
	}
	c.advance()
	args, err := c.parseArgs()
	if err != nil {
		return err
	}
	for i := range args {
		if args[i], err = c.hoistCalls(args[i]); err != nil {
			return err
		}
	}
	if err := c.genCall(p, args); err != nil {
		return err
	}
	if p.result.kind != kVoid {
		// Discard the unused result.
		if p.result.valueWords() == 2 {
			c.emit("  DDEL")
			c.depth -= 2
		} else {
			c.emit("  DEL")
			c.depth--
		}
	}
	return c.stmtEnd()
}

func (c *compiler) returnStmt() error {
	resW := 0
	if c.cur.result.kind != kVoid {
		resW = c.cur.result.valueWords()
	}
	if !c.isPunct(";") {
		e, err := c.parseExpr()
		if err != nil {
			return err
		}
		if e, err = c.hoistCalls(e); err != nil {
			return err
		}
		if resW == 0 {
			return c.errf("RETURN with a value in an untyped PROC")
		}
		if err := c.genExprAs(e, c.cur.result); err != nil {
			return err
		}
		c.depth -= resW
	} else if resW != 0 {
		return c.errf("RETURN needs a value in a typed PROC")
	}
	c.emit("  EXIT %d", c.cur.argWs)
	return c.stmtEnd()
}

// consoleStmt compiles the console built-ins.
func (c *compiler) consoleStmt() error {
	name := c.tok.text
	c.advance()
	args, err := c.parseArgs()
	if err != nil {
		return err
	}
	for i := range args {
		if args[i], err = c.hoistCalls(args[i]); err != nil {
			return err
		}
	}
	want := map[string]int{"PUTCHAR": 1, "PUTNUM": 1, "PUTS": 2, "HALT": 1}[name]
	if len(args) != want {
		return c.errf("%s takes %d argument(s)", name, want)
	}
	for _, a := range args {
		if err := c.genExprAs(a, typ{kind: kInt}); err != nil {
			return err
		}
	}
	switch name {
	case "PUTCHAR":
		c.emit("  SVC 1")
		c.depth--
	case "PUTNUM":
		c.emit("  SVC 2")
		c.depth--
	case "PUTS":
		c.emit("  SVC 3")
		c.depth -= 2
	case "HALT":
		c.emit("  SVC 0")
		c.depth--
	}
	return c.stmtEnd()
}

// moveStmt compiles MOVE dst := src FOR count [BYTES|WORDS];
func (c *compiler) moveStmt() error {
	dst, err := c.parseAddrOperand()
	if err != nil {
		return err
	}
	if err := c.expect(":="); err != nil {
		return err
	}
	src, err := c.parseAddrOperand()
	if err != nil {
		return err
	}
	if err := c.expect("FOR"); err != nil {
		return err
	}
	count, err := c.parseExpr()
	if err != nil {
		return err
	}
	bytes := dst.t.kind == kString
	if c.accept("BYTES") {
		bytes = true
	} else if c.accept("WORDS") {
		bytes = false
	}
	if count, err = c.hoistCalls(count); err != nil {
		return err
	}
	// Push src, dst, count.
	if err := c.genMoveAddr(src, bytes); err != nil {
		return err
	}
	if err := c.genMoveAddr(dst, bytes); err != nil {
		return err
	}
	if err := c.genExprAs(count, typ{kind: kInt}); err != nil {
		return err
	}
	if bytes {
		c.emit("  MOVB")
	} else {
		c.emit("  MOVW")
	}
	c.depth -= 3
	return c.stmtEnd()
}

// parseAddrOperand parses a variable reference used as a block-move
// endpoint.
func (c *compiler) parseAddrOperand() (*expr, error) {
	if c.accept("@") {
		return c.parseAddrOf()
	}
	if c.tok.kind == tString {
		e := &expr{op: 's', str: c.tok.str, t: typ{kind: kString}}
		c.advance()
		return e, nil
	}
	if c.tok.kind != tIdent {
		return nil, c.errf("MOVE endpoint must be a variable")
	}
	s, err := c.lookup(c.tok.text)
	if err != nil {
		return nil, err
	}
	c.advance()
	var idx *expr
	if c.accept("[") {
		idx, err = c.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := c.expect("]"); err != nil {
			return nil, err
		}
	}
	return &expr{op: 'a', sym: s, idx: idx, t: s.t}, nil
}

// genMoveAddr pushes the (word or byte) address of a move endpoint.
func (c *compiler) genMoveAddr(e *expr, bytes bool) error {
	if e.op == 's' {
		addr := c.internString(e.str)
		if bytes {
			c.pushConst(int64(2 * addr))
		} else {
			c.pushConst(int64(addr))
		}
		return nil
	}
	s := e.sym
	// genAddr16 yields byte addresses for STRING entities, word addresses
	// otherwise; convert as needed.
	if err := c.genAddr16(s, e.idx, true); err != nil {
		return err
	}
	isByteAddr := s.t.kind == kString
	switch {
	case bytes && !isByteAddr:
		c.emit("  SHL 1")
	case !bytes && isByteAddr:
		c.emit("  SHRL 1")
	}
	return nil
}

// pointerAssign compiles "@p := expr" (set the pointer itself).
func (c *compiler) pointerAssign() error {
	if c.tok.kind != tIdent {
		return c.errf("@ needs a pointer variable")
	}
	s, err := c.lookup(c.tok.text)
	if err != nil {
		return err
	}
	if !s.t.ptr {
		return c.errf("%s is not a pointer", s.name)
	}
	c.advance()
	if err := c.expect(":="); err != nil {
		return err
	}
	rhs, err := c.parseExpr()
	if err != nil {
		return err
	}
	if rhs, err = c.hoistCalls(rhs); err != nil {
		return err
	}
	want := typ{kind: kInt}
	if s.t.ext {
		want = typ{kind: kInt32}
	}
	if err := c.genExprAs(rhs, want); err != nil {
		return err
	}
	if s.t.ext {
		c.emitCellOp("STD", s, false, false)
		c.depth -= 2
	} else {
		c.emitCellOp("STOR", s, false, false)
		c.depth--
	}
	return c.stmtEnd()
}

// assignStmt compiles "lvalue := expr".
func (c *compiler) assignStmt() error {
	s, err := c.lookup(c.tok.text)
	if err != nil {
		return err
	}
	c.advance()
	var idx *expr
	if c.accept("[") {
		idx, err = c.parseExpr()
		if err != nil {
			return err
		}
		if err := c.expect("]"); err != nil {
			return err
		}
	}
	if err := c.expect(":="); err != nil {
		return err
	}
	rhs, err := c.parseExpr()
	if err != nil {
		return err
	}
	if err := c.assignTo(s, idx, rhs); err != nil {
		return err
	}
	return c.stmtEnd()
}

// assignTo generates "s[idx] := rhs".
func (c *compiler) assignTo(s *symbol, idx *expr, rhs *expr) error {
	var err error
	if rhs, err = c.hoistCalls(rhs); err != nil {
		return err
	}
	if idx != nil {
		if idx, err = c.hoistCalls(idx); err != nil {
			return err
		}
	}
	t := s.t
	target := valueType(t)
	if idx != nil {
		target = elemType(t)
	}
	if err := c.genExprAs(rhs, target); err != nil {
		return err
	}
	return c.storeVarIdx(s, idx)
}

// storeVar pops the top of stack into the variable.
func (c *compiler) storeVar(s *symbol, idx *expr) error { return c.storeVarIdx(s, idx) }

func (c *compiler) storeVarIdx(s *symbol, idx *expr) error {
	t := s.t
	switch {
	case t.ptr && t.ext:
		// Value is on the stack; push the 32-bit address, then STE/STBE.
		if err := c.loadCell32(s); err != nil {
			return err
		}
		if idx != nil {
			if err := c.genExprAs(idx, typ{kind: kInt32}); err != nil {
				return err
			}
			if t.kind != kString {
				c.emit("  DSHL 1")
			}
			c.emit("  DADD")
			c.depth -= 2
		}
		if t.kind == kString {
			c.emit("  STBE")
		} else {
			c.emit("  STE")
		}
		c.depth -= 3
		return nil

	case t.ptr && t.kind == kString:
		if idx == nil {
			c.emitCellOp("STB", s, true, false)
			c.depth--
			return nil
		}
		if err := c.genExpr(idx); err != nil {
			return err
		}
		c.emitCellOp("STB", s, true, true)
		c.depth--
		return nil

	case t.ptr:
		op := "STOR"
		w := 1
		if t.kind == kInt32 {
			op, w = "STD", 2
		}
		if idx == nil {
			c.emitCellOp(op, s, true, false)
			c.depth -= w
			return nil
		}
		if err := c.genExpr(idx); err != nil {
			return err
		}
		if t.kind == kInt32 {
			c.emit("  SHL 1")
		}
		c.emitCellOp(op, s, true, true)
		c.depth -= w
		return nil

	case t.arr:
		if idx == nil {
			return fmt.Errorf("array %s assigned without index", s.name)
		}
		if t.kind == kString {
			if err := c.genIndexValue(idx, t.lo, 1); err != nil {
				return err
			}
			c.emitCellOp("STB", s, false, true)
			c.depth--
			return nil
		}
		op, w, scale := "STOR", 1, 1
		if t.kind == kInt32 {
			op, w, scale = "STD", 2, 2
		}
		if err := c.genIndexValue(idx, t.lo, scale); err != nil {
			return err
		}
		c.emitCellOp(op, s, false, true)
		c.depth -= w
		return nil

	default:
		op, w := "STOR", 1
		if t.kind == kInt32 {
			op, w = "STD", 2
		}
		if t.kind == kString {
			op = "STB"
		}
		c.emitCellOp(op, s, false, false)
		c.depth -= w
		return nil
	}
}

// attachDebugInfo converts the compiler symbol table into codefile symbols.
func (c *compiler) attachDebugInfo(f *codefile.File) {
	for i, s := range c.allSyms {
		kind := codefile.SymGlobal
		switch s.kind {
		case symLocal:
			kind = codefile.SymLocal
		case symParam:
			kind = codefile.SymParam
		}
		f.Symbols = append(f.Symbols, codefile.Symbol{
			Proc:  int32(c.symProcs[i]),
			Name:  s.name,
			Kind:  kind,
			Addr:  int16(s.addr),
			Words: uint8(s.t.cellWords()),
		})
	}
	for i := range f.Procs {
		// talc names procedures in lower case for readability.
		_ = i
	}
}
