// Package talc compiles a mini-TAL dialect (Transaction Application
// Language, the systems language the paper's workloads were written in) to
// TNS object code. The dialect covers what the paper's programs need:
//
//   - INT, INT(32) and STRING (byte array) data; word arrays; TAL-style
//     implicitly dereferenced pointer variables (INT .p), including
//     extended 32-bit pointers (INT .EXT p) for the 32-bit-addressing
//     variants of the benchmarks;
//   - PROC/INT PROC with value and address parameters, RETURN, CALL;
//   - IF/ELSE, WHILE, FOR, CASE (compiled to the CASE jump-table
//     instruction), BEGIN/END blocks;
//   - MOVE (block moves compiled to MOVB/MOVW), SCAN (SCNB);
//   - LITERAL constants and token-level DEFINE macros;
//   - console built-ins PUTCHAR/PUTNUM/PUTS/HALT (SVCs) and SYSPROC
//     declarations binding names to system-library PEP indexes (SCAL).
//
// The generated code is deliberately in the style the paper ascribes to the
// TNS compilers: stack-oriented, no register variables, no common
// subexpression elimination, rigid operand order — the input quality the
// Accelerator was designed to improve on. The compiler emits TNS assembly
// (resolved by the tnsasm package) plus debugger statement and symbol
// tables.
package talc

import "strings"

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tCharLit
	tPunct
)

type token struct {
	kind tokKind
	text string // identifiers upper-cased (TAL is case-insensitive)
	num  int64
	str  string
	line int
}

type lexer struct {
	src     string
	pos     int
	line    int
	defines map[string][]token
	pending []token // expanded macro tokens
	err     error
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, defines: map[string][]token{}}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '$'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '^'
}

// next returns the next token, expanding DEFINE macros.
func (lx *lexer) next() token {
	if len(lx.pending) > 0 {
		t := lx.pending[0]
		lx.pending = lx.pending[1:]
		return t
	}
	t := lx.scan()
	if t.kind == tIdent {
		if body, ok := lx.defines[t.text]; ok {
			lx.pending = append(append([]token{}, body...), lx.pending...)
			return lx.next()
		}
	}
	return t
}

func (lx *lexer) scan() token {
	s := lx.src
	for lx.pos < len(s) {
		c := s[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '!': // TAL comment: to end of line or closing '!'
			lx.pos++
			for lx.pos < len(s) && s[lx.pos] != '\n' && s[lx.pos] != '!' {
				lx.pos++
			}
			if lx.pos < len(s) && s[lx.pos] == '!' {
				lx.pos++
			}
		case c == '-' && lx.pos+1 < len(s) && s[lx.pos+1] == '-':
			for lx.pos < len(s) && s[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scanToken
		}
	}
	return token{kind: tEOF, line: lx.line}

scanToken:
	c := s[lx.pos]
	start := lx.pos
	line := lx.line
	switch {
	case isIdentStart(c):
		for lx.pos < len(s) && isIdentChar(s[lx.pos]) {
			lx.pos++
		}
		return token{kind: tIdent, text: strings.ToUpper(s[start:lx.pos]), line: line}
	case c >= '0' && c <= '9':
		base := 10
		if c == '0' && lx.pos+1 < len(s) && (s[lx.pos+1] == 'x' || s[lx.pos+1] == 'X') {
			base = 16
			lx.pos += 2
			start = lx.pos
		} else if c == '%' {
			base = 8
		}
		var v int64
		for lx.pos < len(s) {
			d := digitVal(s[lx.pos])
			if d < 0 || d >= base {
				break
			}
			v = v*int64(base) + int64(d)
			lx.pos++
		}
		// TAL "D" suffix marks a doubleword (32-bit) literal.
		if lx.pos < len(s) && (s[lx.pos] == 'D' || s[lx.pos] == 'd') &&
			(lx.pos+1 >= len(s) || !isIdentChar(s[lx.pos+1])) {
			lx.pos++
			return token{kind: tNumber, num: v, str: "D", line: line}
		}
		return token{kind: tNumber, num: v, line: line}
	case c == '%': // octal or %H hex, TAL style
		lx.pos++
		base := 8
		if lx.pos < len(s) && (s[lx.pos] == 'H' || s[lx.pos] == 'h') {
			base = 16
			lx.pos++
		}
		var v int64
		for lx.pos < len(s) {
			d := digitVal(s[lx.pos])
			if d < 0 || d >= base {
				break
			}
			v = v*int64(base) + int64(d)
			lx.pos++
		}
		return token{kind: tNumber, num: v, line: line}
	case c == '"':
		lx.pos++
		var sb strings.Builder
		for lx.pos < len(s) && s[lx.pos] != '"' {
			if s[lx.pos] == '\n' {
				lx.line++
			}
			sb.WriteByte(s[lx.pos])
			lx.pos++
		}
		if lx.pos < len(s) {
			lx.pos++
		}
		str := sb.String()
		if len(str) == 1 {
			// Single-character string literals act as character values.
			return token{kind: tCharLit, num: int64(str[0]), str: str, line: line}
		}
		return token{kind: tString, str: str, line: line}
	default:
		// Multi-character punctuation.
		two := ""
		if lx.pos+1 < len(s) {
			two = s[lx.pos : lx.pos+2]
		}
		switch two {
		case ":=", "<=", ">=", "<>", "<<", ">>", "'+", "'-", "'*":
			lx.pos += 2
			return token{kind: tPunct, text: two, line: line}
		}
		lx.pos++
		return token{kind: tPunct, text: string(c), line: line}
	}
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
