package talc

import "fmt"

// tkind enumerates the dialect's data types.
type tkind uint8

const (
	kInt    tkind = iota // 16-bit signed word
	kInt32               // 32-bit signed doubleword
	kString              // byte array
	kVoid                // untyped procedure "result"
)

// typ describes a variable or expression type.
type typ struct {
	kind tkind
	ptr  bool // pointer variable (implicitly dereferenced on use)
	ext  bool // extended pointer: 32-bit byte address (with ptr)
	arr  bool // array
	lo   int  // array lower bound
	hi   int  // array upper bound
}

func (t typ) String() string {
	s := map[tkind]string{kInt: "INT", kInt32: "INT(32)", kString: "STRING", kVoid: "void"}[t.kind]
	if t.ptr {
		if t.ext {
			return s + " .EXT"
		}
		return s + " ."
	}
	if t.arr {
		return fmt.Sprintf("%s[%d:%d]", s, t.lo, t.hi)
	}
	return s
}

// valueWords is the register-stack width of a value of this type.
func (t typ) valueWords() int {
	if t.kind == kInt32 && !t.ptr {
		return 2
	}
	if t.ptr && t.ext {
		return 2
	}
	return 1
}

// cellWords is the memory footprint of a variable of this type.
func (t typ) cellWords() int {
	switch {
	case t.ptr && t.ext:
		return 2
	case t.ptr:
		return 1
	case t.arr && t.kind == kString:
		return (t.hi - t.lo + 2) / 2 // bytes rounded up to words
	case t.arr && t.kind == kInt32:
		return 2 * (t.hi - t.lo + 1)
	case t.arr:
		return t.hi - t.lo + 1
	case t.kind == kInt32:
		return 2
	default:
		return 1
	}
}

// elem is the element type of an array or pointer target.
func (t typ) elem() typ {
	e := t
	e.arr, e.ptr, e.ext = false, false, false
	return e
}

type symKind uint8

const (
	symGlobal symKind = iota
	symLocal
	symParam
)

// symbol is a declared variable.
type symbol struct {
	name string
	t    typ
	kind symKind
	addr int // G word offset, or L-relative word offset (params negative)
}

// proc is a procedure signature.
type proc struct {
	name    string
	result  typ // kVoid if untyped
	params  []symbol
	argWs   int  // total argument words
	pep     int  // PEP index (user) or library index
	sysProc bool // bound to the system library (SCAL)
	main    bool
}
