package talc

import (
	"strings"
	"testing"

	"tnsr/internal/interp"
	"tnsr/internal/tns"
)

// run compiles and interprets a program, returning the machine.
func run(t *testing.T, src string) *interp.Machine {
	t.Helper()
	f, err := Compile("test", src)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(f, nil)
	if err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Trap != tns.TrapNone {
		t.Fatalf("trap %d at P=%d (space %d)", m.Trap, m.TrapP, m.Space)
	}
	return m
}

// global g is at a known offset when declared first.
func TestAssignAndArithmetic(t *testing.T) {
	m := run(t, `
INT a; INT b; INT c; INT d; INT e; INT f;
PROC main MAIN;
BEGIN
  a := 2 + 3 * 4;
  b := (2 + 3) * 4;
  c := -a;
  d := 100 / 7;
  e := 100 \ 7;
  f := (12 LOR 3) XOR (12 LAND 10);
END;
`)
	want := []int16{14, 20, -14, 14, 2, 7}
	for i, w := range want {
		if got := int16(m.Mem[i]); got != w {
			t.Errorf("global %d = %d, want %d", i, got, w)
		}
	}
}

func TestIfElseWhile(t *testing.T) {
	m := run(t, `
INT sum; INT i; INT big;
PROC main MAIN;
BEGIN
  sum := 0;
  i := 1;
  WHILE i <= 100 DO
  BEGIN
    sum := sum + i;
    i := i + 1;
  END;
  IF sum = 5050 THEN big := 1 ELSE big := 0;
  IF sum > 10000 OR sum < 0 THEN big := -1;
  IF sum > 0 AND NOT (sum < 100) THEN big := big + 10;
END;
`)
	if m.Mem[0] != 5050 {
		t.Errorf("sum = %d", m.Mem[0])
	}
	if int16(m.Mem[2]) != 11 {
		t.Errorf("big = %d, want 11", int16(m.Mem[2]))
	}
}

func TestForLoopsAndArrays(t *testing.T) {
	m := run(t, `
INT arr[0:9];
INT total;
INT rev;
PROC main MAIN;
BEGIN
  INT i;
  FOR i := 0 TO 9 DO arr[i] := i * i;
  total := 0;
  FOR i := 0 TO 9 DO total := total + arr[i];
  rev := 0;
  FOR i := 9 DOWNTO 0 DO rev := rev * 2 + (arr[i] \ 2);
END;
`)
	if m.Mem[10] != 285 {
		t.Errorf("total = %d, want 285", m.Mem[10])
	}
}

func TestProcCallsAndRecursion(t *testing.T) {
	m := run(t, `
INT result;
INT PROC fib(n); INT n;
BEGIN
  IF n < 2 THEN RETURN n;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROC main MAIN;
BEGIN
  result := fib(12);
END;
`)
	if m.Mem[0] != 144 {
		t.Errorf("fib(12) = %d, want 144", m.Mem[0])
	}
}

func TestReferenceParams(t *testing.T) {
	m := run(t, `
INT x; INT y;
PROC swap(a, b); INT .a; INT .b;
BEGIN
  INT t;
  t := a;
  a := b;
  b := t;
END;
PROC main MAIN;
BEGIN
  x := 11;
  y := 22;
  CALL swap(@x, @y);
END;
`)
	if m.Mem[0] != 22 || m.Mem[1] != 11 {
		t.Errorf("swap: x=%d y=%d", m.Mem[0], m.Mem[1])
	}
}

func TestPointersAndIndexing(t *testing.T) {
	m := run(t, `
INT data[0:4] := [10, 20, 30, 40, 50];
INT out1; INT out2;
INT .p;
PROC main MAIN;
BEGIN
  @p := @data;
  out1 := p[2];
  p[3] := 99;
  @p := @data[4];
  out2 := p;
END;
`)
	if m.Mem[5] != 30 {
		t.Errorf("p[2] = %d", m.Mem[5])
	}
	if m.Mem[3] != 99 {
		t.Errorf("p[3] store: %d", m.Mem[3])
	}
	if m.Mem[6] != 50 {
		t.Errorf("out2 = %d", m.Mem[6])
	}
}

func TestInt32Arithmetic(t *testing.T) {
	m := run(t, `
INT(32) a; INT(32) b; INT(32) c; INT narrow;
PROC main MAIN;
BEGIN
  a := 100000D + 23456D;
  b := a / 1000D;
  c := $DBL(300) * $DBL(300);
  narrow := $INT(b);
END;
`)
	get32 := func(i int) int32 {
		return int32(uint32(m.Mem[i])<<16 | uint32(m.Mem[i+1]))
	}
	if get32(0) != 123456 {
		t.Errorf("a = %d", get32(0))
	}
	if get32(2) != 123 {
		t.Errorf("b = %d", get32(2))
	}
	if get32(4) != 90000 {
		t.Errorf("c = %d", get32(4))
	}
	if int16(m.Mem[6]) != 123 {
		t.Errorf("narrow = %d", int16(m.Mem[6]))
	}
}

func TestStringsAndMove(t *testing.T) {
	m := run(t, `
STRING src[0:11] := "hello world";
STRING dst[0:11];
INT cmp; INT pos; INT ch;
PROC main MAIN;
BEGIN
  MOVE dst := src FOR 11 BYTES;
  cmp := COMPAREBYTES(@dst, @src, 11);
  pos := SCANB(@src, "o", 11);
  ch := src[4];
END;
`)
	// src occupies 6 words at G+0, dst 6 at G+6, cmp at 12, pos 13, ch 14.
	if m.Mem[12] != 0 {
		t.Errorf("cmp = %d", int16(m.Mem[12]))
	}
	if m.Mem[13] != 4 {
		t.Errorf("pos = %d, want 4", m.Mem[13])
	}
	if m.Mem[14] != 'o' {
		t.Errorf("ch = %d", m.Mem[14])
	}
	if m.Mem[6] != m.Mem[0] || m.Mem[8] != m.Mem[2] {
		t.Error("MOVE did not copy")
	}
}

func TestCaseStatement(t *testing.T) {
	m := run(t, `
INT out[0:5];
PROC main MAIN;
BEGIN
  INT i;
  FOR i := 0 TO 5 DO
    CASE i OF
    BEGIN
      out[i] := 100;        ! arm 0
      out[i] := 200;        ! arm 1
      BEGIN out[i] := 300; END;  ! arm 2
      OTHERWISE out[i] := -1;
    END;
END;
`)
	want := []int16{100, 200, 300, -1, -1, -1}
	for i, w := range want {
		if got := int16(m.Mem[i]); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestConsoleBuiltins(t *testing.T) {
	m := run(t, `
STRING msg[0:3] := "ok: ";
PROC main MAIN;
BEGIN
  PUTS(@msg, 4);
  PUTNUM(42);
  PUTCHAR(10);
END;
`)
	if got := m.Console.String(); got != "ok: 42\n" {
		t.Errorf("console = %q", got)
	}
}

func TestLiteralAndDefine(t *testing.T) {
	m := run(t, `
LITERAL size = 5, twice = size * 2;
DEFINE bump = a := a + 1 #;
INT a; INT b;
PROC main MAIN;
BEGIN
  a := twice;
  bump;
  bump;
  b := size;
END;
`)
	if m.Mem[0] != 12 || m.Mem[1] != 5 {
		t.Errorf("literals: %d %d", m.Mem[0], m.Mem[1])
	}
}

func TestExtendedPointers(t *testing.T) {
	m := run(t, `
INT data[0:3] := [7, 8, 9, 10];
INT out1; INT out2;
INT .EXT p;
PROC main MAIN;
BEGIN
  @p := $XADR(data);
  out1 := p;          ! first element via 32-bit addressing
  out2 := p[3];
  p[2] := 55;
END;
`)
	if m.Mem[4] != 7 || m.Mem[5] != 10 {
		t.Errorf("ext loads: %d %d", m.Mem[4], m.Mem[5])
	}
	if m.Mem[2] != 55 {
		t.Errorf("ext store: %d", m.Mem[2])
	}
}

func TestCallHoisting(t *testing.T) {
	// Calls inside larger expressions must not disturb the register-stack
	// convention (empty at call sites); the compiler hoists them.
	m := run(t, `
INT r1; INT r2;
INT PROC add3(a, b, cc); INT a; INT b; INT cc;
BEGIN
  RETURN a + b + cc;
END;
INT PROC sq(x); INT x;
BEGIN
  RETURN x * x;
END;
PROC main MAIN;
BEGIN
  r1 := 1 + add3(sq(2), 10 + sq(3), sq(sq(2))) * 2;
  r2 := sq(add3(1, 2, 3)) - add3(sq(1), sq(2), sq(3));
END;
`)
	// add3(4, 19, 16) = 39; r1 = 1 + 78 = 79.
	if int16(m.Mem[0]) != 79 {
		t.Errorf("r1 = %d, want 79", int16(m.Mem[0]))
	}
	// sq(6) - add3(1,4,9) = 36 - 14 = 22.
	if int16(m.Mem[1]) != 22 {
		t.Errorf("r2 = %d, want 22", int16(m.Mem[1]))
	}
}

func TestSyscallProcs(t *testing.T) {
	// The library codefile's PEP 0 is "triple"; its MAIN is never entered.
	lib := MustCompile("lib", `
INT PROC triple(x); INT x;
BEGIN
  RETURN x + x + x;
END;
PROC ignored MAIN; BEGIN END;
`)
	f, err := Compile("test", `
INT out;
INT SYSPROC triple = 0;
PROC main MAIN;
BEGIN
  out := triple(14);
END;
`)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(f, lib)
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if m.Trap != tns.TrapNone {
		t.Fatalf("trap %d", m.Trap)
	}
	if m.Mem[0] != 42 {
		t.Errorf("triple(14) = %d", m.Mem[0])
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`PROC main MAIN; BEGIN x := 1; END;`,       // undeclared
		`INT a; PROC main MAIN; BEGIN a := ; END;`, // bad expr
		`INT a;`, // no MAIN
		`PROC f(x); BEGIN END; PROC f(y); BEGIN END;`,               // dup proc
		`INT a[5:2]; PROC main MAIN; BEGIN END;`,                    // inverted bounds
		`PROC main MAIN; BEGIN RETURN 3; END;`,                      // value from untyped
		`INT PROC f; BEGIN RETURN; END; PROC main MAIN; BEGIN END;`, // missing value
	}
	for _, src := range cases {
		if _, err := Compile("bad", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestStatementTableAndSymbols(t *testing.T) {
	f, err := Compile("dbg", `
INT counter;
PROC bump(n); INT n;
BEGIN
  counter := counter + n;
END;
PROC main MAIN;
BEGIN
  CALL bump(3);
  CALL bump(4);
END;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Statements) < 3 {
		t.Errorf("expected statement markers, got %d", len(f.Statements))
	}
	foundGlobal, foundParam := false, false
	for _, s := range f.Symbols {
		if s.Name == "COUNTER" && s.Kind == 0 {
			foundGlobal = true
		}
		if s.Name == "N" && s.Proc >= 0 {
			foundParam = true
		}
	}
	if !foundGlobal || !foundParam {
		t.Errorf("symbols missing: %+v", f.Symbols)
	}
	if !strings.Contains(f.Procs[f.MainPEP].Name, "main") {
		t.Error("main not recorded")
	}
}

func TestBigGlobals(t *testing.T) {
	// Arrays pushing data past the 256-word direct window still work (the
	// compiler emits the extra indexing steps the paper describes).
	m := run(t, `
INT pad[0:299];
INT far;
INT farr[0:9];
PROC main MAIN;
BEGIN
  INT i;
  far := 1234;
  FOR i := 0 TO 9 DO farr[i] := far + i;
  pad[250] := farr[9];
END;
`)
	if m.Mem[300] != 1234 {
		t.Errorf("far = %d", m.Mem[300])
	}
	if m.Mem[301+9] != 1243 {
		t.Errorf("farr[9] = %d", m.Mem[310])
	}
	if m.Mem[250] != 1243 {
		t.Errorf("pad[250] = %d", m.Mem[250])
	}
}

func TestDivisionSemantics(t *testing.T) {
	m := run(t, `
INT q1; INT q2; INT r1; INT r2;
PROC main MAIN;
BEGIN
  q1 := -7 / 2;
  q2 := 7 / -2;
  r1 := -7 \ 2;
  r2 := 7 \ -2;
END;
`)
	// TAL/TNS divide truncates toward zero; remainder keeps the dividend's
	// sign (matching MIPS div and Go).
	if int16(m.Mem[0]) != -3 || int16(m.Mem[1]) != -3 {
		t.Errorf("quotients: %d %d", int16(m.Mem[0]), int16(m.Mem[1]))
	}
	if int16(m.Mem[2]) != -1 || int16(m.Mem[3]) != 1 {
		t.Errorf("remainders: %d %d", int16(m.Mem[2]), int16(m.Mem[3]))
	}
}

func TestDanglingElse(t *testing.T) {
	m := run(t, `
INT a; INT b;
PROC main MAIN;
BEGIN
  a := 0;
  b := 0;
  IF 1 > 0 THEN
    IF 1 > 2 THEN a := 1
    ELSE a := 2;      ! binds to the inner IF
  IF 1 > 2 THEN
    IF 1 > 0 THEN b := 1
    ELSE b := 2;
END;
`)
	if m.Mem[0] != 2 || m.Mem[1] != 0 {
		t.Errorf("a=%d b=%d, want 2 0", int16(m.Mem[0]), int16(m.Mem[1]))
	}
}

func TestForByAndDownto(t *testing.T) {
	m := run(t, `
INT s1; INT s2; INT s3;
PROC main MAIN;
BEGIN
  INT i;
  s1 := 0;
  FOR i := 0 TO 10 BY 2 DO s1 := s1 + i;   ! 0+2+4+6+8+10
  s2 := 0;
  FOR i := 10 DOWNTO 1 BY 3 DO s2 := s2 + i; ! 10+7+4+1
  s3 := 0;
  FOR i := 5 TO 4 DO s3 := s3 + 1;          ! empty range
END;
`)
	if m.Mem[0] != 30 || m.Mem[1] != 22 || m.Mem[2] != 0 {
		t.Errorf("s1=%d s2=%d s3=%d", m.Mem[0], m.Mem[1], m.Mem[2])
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	m := run(t, `
INT calls; INT taken;
INT PROC bump;
BEGIN
  calls := calls + 1;
  RETURN 1;
END;
PROC main MAIN;
BEGIN
  calls := 0;
  taken := 0;
  IF 1 > 2 AND bump() = 1 THEN taken := 1;
  IF 1 < 2 OR bump() = 1 THEN taken := taken + 2;
END;
`)
	// Calls in conditions are hoisted and evaluated before the test (the
	// register stack must be empty at call sites), so bump runs even when
	// short-circuit evaluation would skip it in C. TAL shares this
	// "conditions are expressions" behaviour for hoisted calls; the
	// observable condition results are still correct.
	if m.Mem[1] != 2 {
		t.Errorf("taken = %d, want 2", int16(m.Mem[1]))
	}
	if m.Mem[0] != 2 {
		t.Errorf("calls = %d (hoisted calls always evaluate)", int16(m.Mem[0]))
	}
}

func TestWhileWithCompoundCondition(t *testing.T) {
	m := run(t, `
INT n; INT guard;
PROC main MAIN;
BEGIN
  n := 0;
  guard := 1;
  WHILE guard = 1 AND n < 10 DO
  BEGIN
    n := n + 1;
    IF n = 7 THEN guard := 0;
  END;
END;
`)
	if m.Mem[0] != 7 {
		t.Errorf("n = %d, want 7", m.Mem[0])
	}
}

func TestMoveWords(t *testing.T) {
	m := run(t, `
INT src[0:4] := [1, 2, 3, 4, 5];
INT dst[0:4];
PROC main MAIN;
BEGIN
  MOVE dst := src FOR 5 WORDS;
END;
`)
	for i := 0; i < 5; i++ {
		if m.Mem[5+i] != uint16(i+1) {
			t.Errorf("dst[%d] = %d", i, m.Mem[5+i])
		}
	}
}

func TestStringLiteralExpressionsAndPuts(t *testing.T) {
	m := run(t, `
PROC main MAIN;
BEGIN
  PUTS("greetings", 9);
  PUTCHAR(10);
END;
`)
	if got := m.Console.String(); got != "greetings\n" {
		t.Errorf("console = %q", got)
	}
}

func TestMoveFromStringLiteral(t *testing.T) {
	m := run(t, `
STRING buf[0:9];
INT ok;
PROC main MAIN;
BEGIN
  MOVE buf := "abcdef" FOR 6 BYTES;
  ok := COMPAREBYTES(@buf, "abcdef", 6);
END;
`)
	// buf occupies 5 words at G+0; ok at G+5.
	if int16(m.Mem[5]) != 0 {
		t.Errorf("ok = %d", int16(m.Mem[5]))
	}
}

func TestNestedCallsInConditions(t *testing.T) {
	m := run(t, `
INT hits;
INT PROC classify(x); INT x;
BEGIN
  IF x > 100 THEN RETURN 2;
  IF x > 10 THEN RETURN 1;
  RETURN 0;
END;
PROC main MAIN;
BEGIN
  INT i;
  hits := 0;
  FOR i := 1 TO 30 DO
    IF classify(i * 7) = 1 THEN hits := hits + 1;
END;
`)
	// i*7 in (10,100]: i in [2,14] -> 13 hits.
	if m.Mem[0] != 13 {
		t.Errorf("hits = %d, want 13", m.Mem[0])
	}
}

func TestCaseWithCallSelector(t *testing.T) {
	m := run(t, `
INT out;
INT PROC pick; BEGIN RETURN 1; END;
PROC main MAIN;
BEGIN
  CASE pick() OF
  BEGIN
    out := 10;
    out := 20;
    OTHERWISE out := -1;
  END;
END;
`)
	if int16(m.Mem[0]) != 20 {
		t.Errorf("out = %d", int16(m.Mem[0]))
	}
}

func TestMoreCompileErrors(t *testing.T) {
	cases := []string{
		`INT a; PROC main MAIN; BEGIN @a := 1; END;`,                 // @ of non-pointer
		`INT .p; PROC main MAIN; BEGIN p := 1 << p; END;`,            // dynamic shift
		`PROC f; BEGIN END; PROC main MAIN; BEGIN a := f(); END;`,    // void in expr
		`INT(16) x; PROC main MAIN; BEGIN END;`,                      // bad width
		`PROC main MAIN; BEGIN FOR 3 := 1 TO 2 DO; END;`,             // bad FOR var
		`STRING s[0:3]; PROC main MAIN; BEGIN MOVE s := FOR 2; END;`, // bad MOVE
	}
	for _, src := range cases {
		if _, err := Compile("bad", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}
