package tnsgen

import (
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestSeedStability pins the reproducibility contract: the same (name,
// seed, config) must yield byte-identical sources, run after run, whatever
// the scheduler does. Campaign seeds are only useful for reproduction if
// this holds.
func TestSeedStability(t *testing.T) {
	configs := map[string]Config{
		"legacy":  LegacyConfig(),
		"full":    FullConfig(),
		"library": {Library: true, Case: true, Hidden: true},
	}
	for cname, cfg := range configs {
		for seed := int64(1); seed <= 5; seed++ {
			a := Generate("st", seed, cfg)
			b := Generate("st", seed, cfg)
			if a.UserSource() != b.UserSource() || a.LibSource() != b.LibSource() {
				t.Fatalf("config %s seed %d: repeated generation differs", cname, seed)
			}
		}
	}

	// Concurrent generation under varying GOMAXPROCS must agree with the
	// serial result (the generator shares no state between calls).
	cfg := FullConfig()
	want := Generate("st", 42, cfg).UserSource()
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		var wg sync.WaitGroup
		got := make([]string, 8)
		for i := range got {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = Generate("st", 42, cfg).UserSource()
			}(i)
		}
		wg.Wait()
		for i, g := range got {
			if g != want {
				t.Fatalf("GOMAXPROCS=%d goroutine %d: concurrent generation differs from serial", procs, i)
			}
		}
	}
}

// TestByteDecider pins the fuzz-input mapping: exhausted streams answer 0
// (always a valid decision) and values stay in range.
func TestByteDecider(t *testing.T) {
	d := NewByteDecider(nil)
	for n := 1; n < 10; n++ {
		if v := d.Intn(n); v != 0 {
			t.Fatalf("exhausted decider Intn(%d) = %d, want 0", n, v)
		}
	}
	d = NewByteDecider([]byte{0xFF, 0x03, 0x80, 0x01})
	for _, n := range []int{1, 2, 7, 300, 5, 5} {
		if v := d.Intn(n); v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

// TestGenerateWithByteDecider checks that fuzzer-shaped inputs (including
// an empty stream) still yield a program the oracle accepts — the property
// FuzzGenProgram relies on.
func TestGenerateWithByteDecider(t *testing.T) {
	for _, data := range [][]byte{nil, {1}, {7, 3, 9, 250, 0, 0, 14, 99, 1}} {
		d := NewByteDecider(data)
		cfg := RandomConfig(d)
		p := GenerateWith("bd", d, cfg)
		if _, err := RunOracle(p.Subject(), DefaultOracle()); err != nil {
			t.Fatalf("input %v: %v\n%s", data, err, p.UserSource())
		}
	}
}

// TestMinimize exercises the delta-debugger against a cheap syntactic keep
// predicate: the result must still satisfy it, be no larger than the
// input, and be a fixed point.
func TestMinimize(t *testing.T) {
	cfg := FullConfig()
	p := Generate("min", 11, cfg)
	keep := func(v *Program) bool { return strings.Contains(v.UserSource(), "DIV") }
	if !keep(p) {
		t.Fatal("generated program lacks DIV; adjust the test seed")
	}
	min := Minimize(p, keep)
	if !keep(min) {
		t.Fatal("minimized program no longer satisfies keep")
	}
	if len(min.UserSource()) > len(p.UserSource()) {
		t.Fatal("minimized program grew")
	}
	if min.WantBreak || len(min.Cold) > 0 {
		t.Fatal("oracle directives should be stripped by a syntactic keep")
	}
	again := Minimize(min, keep)
	if again.UserSource() != min.UserSource() || again.LibSource() != min.LibSource() {
		t.Fatal("Minimize is not a fixed point")
	}

	// A keep that never holds must return the program unchanged.
	same := Minimize(p, func(*Program) bool { return false })
	if same.UserSource() != p.UserSource() {
		t.Fatal("Minimize changed a program whose keep predicate fails")
	}
}

// TestRandomConfigInRange sanity-checks that random configs stay inside the
// generator's vocabulary for many draws (no panics, proc counts bounded).
func TestRandomConfigInRange(t *testing.T) {
	d := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		cfg := RandomConfig(d)
		p := Generate("rc", int64(i), cfg)
		if len(p.Procs) == 0 {
			t.Fatalf("draw %d: no procedures generated", i)
		}
		if cfg.Library && p.LibSource() == "" {
			t.Fatalf("draw %d: library config with no library source", i)
		}
	}
}
