package tnsgen

import (
	"testing"

	"tnsr/internal/codefile"
)

// FuzzGenProgram lets the native fuzzer mutate generator decisions: the
// input byte stream drives the Decider, so every mutation explores a
// different well-formed program. The oracle (one accelerated level, to
// keep per-exec cost down) must accept every one — any divergence, panic,
// or EscapeUnknown is a crash for the fuzzer to minimize.
func FuzzGenProgram(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xFF, 0x00, 0x7F, 0x80, 0x3C, 0x11, 0x29, 0xEE, 0x42, 0x42})
	o := OracleOptions{
		Levels:       []codefile.AccelLevel{codefile.LevelDefault},
		InterpBudget: 3_000_000,
		RunBudget:    20_000_000,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewByteDecider(data)
		cfg := RandomConfig(d)
		p := GenerateWith("fuzz", d, cfg)
		if _, err := RunOracle(p.Subject(), o); err != nil {
			t.Fatalf("%v\nconfig: %+v\nuser:\n%s\nlib:\n%s",
				err, cfg, p.UserSource(), p.LibSource())
		}
	})
}
