package tnsgen

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tnsr/internal/obs"
)

func TestScenarioRoundTrip(t *testing.T) {
	s := &Scenario{
		Name:      "rt",
		Class:     obs.EscapeTrap,
		HasClass:  true,
		Seed:      123,
		Cold:      []string{"cold", "c2"},
		WantBreak: true,
		User:      "  PROC main\nmain:\n  HALT\n",
		Lib:       "  PROC l0\nl0:\n  EXIT 0\n",
	}
	got, err := ParseScenario(s.Marshal())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	// Sources round-trip modulo trailing whitespace; everything else exactly.
	if strings.TrimRight(got.User, "\n") != strings.TrimRight(s.User, "\n") ||
		strings.TrimRight(got.Lib, "\n") != strings.TrimRight(s.Lib, "\n") {
		t.Fatalf("round trip source mismatch:\nwant %+v\ngot  %+v", s, got)
	}
	su, sl := *s, *got
	su.User, su.Lib, sl.User, sl.Lib = "", "", "", ""
	if !reflect.DeepEqual(&su, &sl) {
		t.Fatalf("round trip directive mismatch:\nwant %+v\ngot  %+v", su, sl)
	}
	// Marshal is canonical: a second round trip is byte-stable.
	if string(got.Marshal()) != string(s.Marshal()) {
		t.Fatal("Marshal is not a fixed point across ParseScenario")
	}

	if _, err := ParseScenario([]byte("not a scenario")); err == nil {
		t.Fatal("junk input parsed as a scenario")
	}
	if _, err := ParseScenario([]byte(";; tnsgen scenario v1\n;; bogus: x\n")); err == nil {
		t.Fatal("unknown directive accepted")
	}
}

// TestScenarioCorpus replays every banked scenario: each must pass the
// full oracle — on every registered backend — and still exercise the
// escape class it was minimized to pin. This is the regression fence
// around past generator findings — later translator or performance work
// must keep it green.
func TestScenarioCorpus(t *testing.T) {
	scenarios, err := LoadCorpus("corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) < 5 {
		t.Fatalf("corpus holds %d scenarios, want at least 5 (regenerate with TNSGEN_REGEN=1)", len(scenarios))
	}
	opts := DefaultOracle()
	opts.Backends = oracleBackends(t)
	for _, s := range scenarios {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			res, err := RunOracle(s.Subject(), opts)
			if err != nil {
				t.Fatalf("scenario (from seed %d): %v", s.Seed, err)
			}
			if s.HasClass && res.Coverage.Runtime[s.Class] == 0 {
				t.Fatalf("scenario no longer exercises %s at run time", s.Class)
			}
		})
	}
}

// TestRegenScenarioCorpus rebuilds the checked-in corpus, one minimized
// scenario per guarantee class. It only runs when TNSGEN_REGEN=1 is set:
//
//	TNSGEN_REGEN=1 go test ./internal/tnsgen -run RegenScenarioCorpus
func TestRegenScenarioCorpus(t *testing.T) {
	if os.Getenv("TNSGEN_REGEN") != "1" {
		t.Skip("set TNSGEN_REGEN=1 to regenerate the corpus")
	}
	if err := os.MkdirAll("corpus", 0o755); err != nil {
		t.Fatal(err)
	}
	for i, class := range obs.GuaranteeClasses {
		sc, err := BankScenario(class, int64(i+1)*1000, DefaultOracle())
		if err != nil {
			t.Errorf("%s: %v", class, err)
			continue
		}
		path := filepath.Join("corpus", class.String()+".tns")
		if err := os.WriteFile(path, sc.Marshal(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("banked %s (seed %d, %d bytes)", path, sc.Seed, len(sc.Marshal()))
	}
}
