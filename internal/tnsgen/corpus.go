package tnsgen

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"tnsr/internal/obs"
)

// A Scenario is one banked corpus entry: a (usually minimized) program
// with its oracle directives and the escape-reason class it pins, in a
// plain-text format that diffs well and survives generator evolution — the
// rendered sources are stored, not the seeds that produced them.
//
// File format (";;" directive lines, then the sources):
//
//	;; tnsgen scenario v1
//	;; name: rp-conflict
//	;; class: rp-conflict
//	;; seed: 7
//	;; cold: cold
//	;; break: true
//	;; user:
//	<user assembly>
//	;; lib:
//	<library assembly>
type Scenario struct {
	Name string
	// Class is the run-time escape-reason class this scenario must keep
	// exercising; HasClass is false for scenarios that only pin fidelity.
	Class    obs.EscapeReason
	HasClass bool
	// Seed records provenance (the generator seed the scenario was
	// minimized from); replay does not use it.
	Seed      int64
	Cold      []string
	WantBreak bool
	User      string
	Lib       string
}

// Subject converts the scenario for the oracle.
func (s *Scenario) Subject() *Subject {
	return &Subject{
		Name:      s.Name,
		User:      s.User,
		Lib:       s.Lib,
		Cold:      append([]string(nil), s.Cold...),
		WantBreak: s.WantBreak,
	}
}

const scenarioHeader = ";; tnsgen scenario v1"

// Marshal renders the scenario file.
func (s *Scenario) Marshal() []byte {
	var sb strings.Builder
	sb.WriteString(scenarioHeader + "\n")
	fmt.Fprintf(&sb, ";; name: %s\n", s.Name)
	if s.HasClass {
		fmt.Fprintf(&sb, ";; class: %s\n", s.Class)
	}
	if s.Seed != 0 {
		fmt.Fprintf(&sb, ";; seed: %d\n", s.Seed)
	}
	if len(s.Cold) > 0 {
		fmt.Fprintf(&sb, ";; cold: %s\n", strings.Join(s.Cold, ","))
	}
	if s.WantBreak {
		sb.WriteString(";; break: true\n")
	}
	sb.WriteString(";; user:\n")
	sb.WriteString(strings.TrimRight(s.User, "\n") + "\n")
	if s.Lib != "" {
		sb.WriteString(";; lib:\n")
		sb.WriteString(strings.TrimRight(s.Lib, "\n") + "\n")
	}
	return []byte(sb.String())
}

// ParseScenario reads the scenario file format.
func ParseScenario(data []byte) (*Scenario, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != scenarioHeader {
		return nil, fmt.Errorf("tnsgen: not a scenario file (missing %q)", scenarioHeader)
	}
	s := &Scenario{}
	var cur *strings.Builder
	var user, lib strings.Builder
	for _, line := range lines[1:] {
		if strings.HasPrefix(line, ";; ") || line == ";;" {
			dir := strings.TrimPrefix(line, ";; ")
			key, val, _ := strings.Cut(dir, ":")
			val = strings.TrimSpace(val)
			switch strings.TrimSpace(key) {
			case "name":
				s.Name = val
			case "class":
				r, ok := obs.ReasonFromName(val)
				if !ok {
					return nil, fmt.Errorf("tnsgen: unknown escape class %q", val)
				}
				s.Class, s.HasClass = r, true
			case "seed":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("tnsgen: bad seed %q", val)
				}
				s.Seed = n
			case "cold":
				for _, c := range strings.Split(val, ",") {
					if c = strings.TrimSpace(c); c != "" {
						s.Cold = append(s.Cold, c)
					}
				}
			case "break":
				s.WantBreak = val == "true"
			case "user":
				cur = &user
			case "lib":
				cur = &lib
			default:
				return nil, fmt.Errorf("tnsgen: unknown scenario directive %q", key)
			}
			continue
		}
		if cur == nil {
			if strings.TrimSpace(line) == "" {
				continue
			}
			return nil, fmt.Errorf("tnsgen: source line before ';; user:' directive")
		}
		cur.WriteString(line)
		cur.WriteByte('\n')
	}
	if s.Name == "" {
		return nil, fmt.Errorf("tnsgen: scenario has no name")
	}
	if strings.TrimSpace(user.String()) == "" {
		return nil, fmt.Errorf("tnsgen: scenario %s has no user source", s.Name)
	}
	s.User = user.String()
	s.Lib = lib.String()
	if strings.TrimSpace(s.Lib) == "" {
		s.Lib = ""
	}
	return s, nil
}

// LoadCorpus reads every *.tns scenario under dir, sorted by filename.
func LoadCorpus(dir string) ([]*Scenario, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.tns"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*Scenario
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		s, err := ParseScenario(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// FromFailure converts a campaign failure into a scenario (unminimized;
// callers usually Minimize the program first).
func FromFailure(f *Failure) *Scenario {
	return &Scenario{
		Name: f.Name,
		Seed: f.Seed,
		Cold: append([]string(nil), f.Program.Cold...),

		WantBreak: f.Program.WantBreak,
		User:      f.Program.UserSource(),
		Lib:       f.Program.LibSource(),
	}
}

// BankScenario builds the corpus entry for one guarantee class: it scans
// seeds from seed0 under a steering config that forces the class, takes the
// first generated program whose oracle passes while exercising the class at
// run time, and minimizes it subject to that same predicate.
func BankScenario(class obs.EscapeReason, seed0 int64, o OracleOptions) (*Scenario, error) {
	keep := func(p *Program) bool {
		res, err := RunOracle(p.Subject(), o)
		return err == nil && res.Coverage.Runtime[class] > 0
	}
	// Mark every class except the target as covered, so steering forces
	// exactly the feature under test and leaves the rest to chance — the
	// minimizer then has less to strip.
	force := &Coverage{}
	for _, r := range obs.GuaranteeClasses {
		if r != class {
			force.Runtime[r] = 1
		}
	}
	for seed := seed0; seed < seed0+200; seed++ {
		d := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
		cfg := SteerConfig(force, d)
		p := Generate(class.String(), seed, cfg)
		if !keep(p) {
			continue
		}
		min := Minimize(p, keep)
		return &Scenario{
			Name:      class.String(),
			Class:     class,
			HasClass:  true,
			Seed:      seed,
			Cold:      append([]string(nil), min.Cold...),
			WantBreak: min.WantBreak,
			User:      min.UserSource(),
			Lib:       min.LibSource(),
		}, nil
	}
	return nil, fmt.Errorf("tnsgen: no program exercising %s in 200 seeds from %d", class, seed0)
}
