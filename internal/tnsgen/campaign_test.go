package tnsgen

import (
	"testing"

	"tnsr/internal/backend"
	"tnsr/internal/obs"
)

// oracleBackends resolves every target the cross-backend campaigns sweep.
// Resolution goes through the registry by name, so a backend that fails to
// register is a test failure, not a silently narrower sweep.
func oracleBackends(t *testing.T) []backend.Backend {
	t.Helper()
	var out []backend.Backend
	for _, name := range []string{"mips", "ob0"} {
		be, ok := backend.ByName(name)
		if !ok {
			t.Fatalf("backend %q not registered", name)
		}
		out = append(out, be)
	}
	return out
}

// TestGuaranteeCoverage is the fidelity guarantee made executable: a
// steered campaign must reach run-time coverage of every escape-reason
// class in obs.GuaranteeClasses with zero divergences, zero panics, and no
// EscapeUnknown event anywhere — statically or at run time.
func TestGuaranteeCoverage(t *testing.T) {
	c := &Campaign{
		Seed: 1, N: 40, Steer: true,
		LibraryEvery: 5, ChaosEvery: 7, AdaptiveEvery: 6,
		Oracle: DefaultOracle(),
		Log:    t.Logf,
	}
	res := c.Run()
	for _, f := range res.Failures {
		t.Errorf("FAIL %s (seed %d, config %+v): %s", f.Name, f.Seed, f.Config, f.Err)
	}
	if miss := res.Coverage.Missing(); len(miss) > 0 {
		t.Errorf("guarantee classes without run-time coverage: %v", miss)
	}
	if n := res.Coverage.Runtime[obs.EscapeUnknown]; n != 0 {
		t.Errorf("EscapeUnknown fired %d times at run time", n)
	}
	if n := res.Coverage.Static[obs.EscapeUnknown]; n != 0 {
		t.Errorf("translator emitted %d EscapeUnknown fallback sites", n)
	}
	if res.BPHits == 0 {
		t.Error("no breakpoint hits recorded across the campaign")
	}
	if res.ChaosMutants == 0 {
		t.Error("no chaos mutants checked across the campaign")
	}
	t.Logf("passes=%d bp=%d chaos=%d\n%s",
		res.Passes, res.BPHits, res.ChaosMutants, res.Coverage.String())
}

// TestEscapeInvariantSweep runs a wide unsteered sweep across every
// backend. Every program's oracle already enforces the fidelity and
// accounting invariants (halt/trap/console/memory identity per target,
// escape totals match runner interlude counts, per-procedure sums,
// EscapeUnknown == 0), so the assertion here is simply that no program in
// a broad random sample trips them on any target.
func TestEscapeInvariantSweep(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	opts := DefaultOracle()
	opts.Backends = oracleBackends(t)
	c := &Campaign{Seed: 10_000, N: n, Oracle: opts}
	res := c.Run()
	for _, f := range res.Failures {
		t.Errorf("FAIL %s (seed %d, config %+v): %s", f.Name, f.Seed, f.Config, f.Err)
	}
	if n := res.Coverage.Runtime[obs.EscapeUnknown]; n != 0 {
		t.Errorf("EscapeUnknown fired %d times at run time", n)
	}
	if res.Programs != n {
		t.Errorf("ran %d programs, want %d", res.Programs, n)
	}
}

// TestAdaptiveGeneratedPrograms sends every program through the full
// adaptive cycle (capture -> retranslate -> rerun): the second pass must
// produce identical output and must not increase the escape count. Those
// checks live in the oracle's adaptive pass; a failure surfaces here.
func TestAdaptiveGeneratedPrograms(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 8
	}
	c := &Campaign{Seed: 77_000, N: n, Steer: true, AdaptiveEvery: 1,
		Oracle: DefaultOracle()}
	res := c.Run()
	for _, f := range res.Failures {
		t.Errorf("FAIL %s (seed %d, config %+v): %s", f.Name, f.Seed, f.Config, f.Err)
	}
}
