// Package tnsgen is the coverage-guided TNS program generator: a seeded,
// reproducible source of well-formed TAL/TNS assembly programs that respect
// the compiler conventions (register stack empty across calls, results
// matching summaries), paired with a differential oracle that runs every
// program interpreted and accelerated at all option levels and treats any
// divergence, panic, or unclassified escape as a failure.
//
// The generator is the enforcement arm of the paper's fidelity claim — the
// translated code "calculates the same answers as the TNS code" — turned
// into a testing guarantee: generation is steered by the typed
// escape-reason histogram from internal/obs until every reason class the
// translator can emit (obs.GuaranteeClasses) has been exercised by a
// generated program at run time. Programs that expose a failure are shrunk
// by a delta-debugging minimizer and banked into a checked-in scenario
// corpus (see corpus.go) that later performance work must keep green.
//
// Everything is deterministic: a program is a pure function of its seed and
// Config, built through the Decider interface so the same construction
// serves math/rand streams, fuzzer-controlled byte streams, and replayed
// corpus decisions.
package tnsgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Decider is the generator's only source of nondeterminism. *rand.Rand
// satisfies it; ByteDecider maps a fuzzer's byte stream onto it.
type Decider interface {
	// Intn returns a value in [0, n). Implementations must tolerate any
	// n >= 1 the generator asks for.
	Intn(n int) int
}

// ByteDecider drives generation from a finite byte stream, so a native Go
// fuzzer mutating bytes is mutating generator decisions. An exhausted
// stream answers 0 forever, which always yields a well-formed (if dull)
// program — the fuzz target never has to reject an input.
type ByteDecider struct {
	data []byte
	pos  int
}

// NewByteDecider wraps a fuzz input.
func NewByteDecider(data []byte) *ByteDecider { return &ByteDecider{data: data} }

// Intn consumes one byte per decision (two for ranges past one byte).
func (d *ByteDecider) Intn(n int) int {
	if n <= 1 {
		return 0
	}
	v := d.next()
	if n > 256 {
		v = v<<8 | d.next()
	}
	return v % n
}

func (d *ByteDecider) next() int {
	if d.pos >= len(d.data) {
		return 0
	}
	v := int(d.data[d.pos])
	d.pos++
	return v
}

// Config selects which program constructs the generator may emit. The
// boolean features map onto the escape-reason classes the steering loop
// (see steer.go) is trying to exercise; with everything off the generator
// still emits straight-line arithmetic, branches and stores.
type Config struct {
	// MaxProcs bounds the number of ordinary random procedures (the
	// generator draws 1..MaxProcs). Zero means the default of 4.
	MaxProcs int

	// Case enables CASE dispatch tables.
	Case bool
	// Indirect enables indirect calls through PLabels (LDPL/XCAL), with
	// and without the compiler's SETRP clue.
	Indirect bool
	// Hidden generates procedures without RESULT summaries, forcing the
	// Accelerator to analyze or guess their result sizes.
	Hidden bool
	// DeepChain adds a three-deep chain of hidden-summary procedures, so
	// result-size analysis has to recurse.
	DeepChain bool
	// RPStress adds statements that drive the register stack to its full
	// eight-register depth with EXCH/STAR/LDRA gymnastics in the middle.
	RPStress bool

	// WrongGuess adds a hidden two-result procedure called through XCAL
	// with no SETRP clue and a one-result continuation, so the translator's
	// guess is provably wrong and the run-time RP guard must fire
	// (EscapeRPConflict).
	WrongGuess bool
	// PuzzleJoin adds a procedure whose two paths reach a join with
	// conflicting static RP but identical dynamic depth: the join becomes
	// a puzzle (EscapeRPConflict) and the code downstream of it an
	// interpreter-only region whose re-entry points surface
	// EscapeComputedJump.
	PuzzleJoin bool
	// Cold marks one generated procedure for exclusion under selective
	// acceleration. The oracle then runs an extra pass with that procedure
	// untranslated, exercising EscapeUntranslated (PCAL into it),
	// EscapeIndirectCall (XCAL dispatch missing it) and EscapeUnmapped
	// (returning into it from a translated callee).
	Cold bool
	// Trap ends main with a call to a procedure that divides by zero, so
	// the TNS trap surfaces from translated code (EscapeTrap).
	Trap bool
	// Break asks the oracle for an extra breakpointed pass over the
	// program (EscapeBreakpoint); it changes no generated code.
	Break bool

	// Library generates a user+library pair: the library is a set of
	// procedures called through SCAL, exercising the cross-codefile
	// dispatch and EXIT paths.
	Library bool
}

// LegacyConfig reproduces the construct set of the original progGen that
// lived in internal/core's tests: CASE tables, indirect calls and hidden
// summaries, none of the adversarial features.
func LegacyConfig() Config {
	return Config{Case: true, Indirect: true, Hidden: true}
}

// FullConfig turns on every program construct and adversarial feature.
func FullConfig() Config {
	return Config{
		Case: true, Indirect: true, Hidden: true,
		DeepChain: true, RPStress: true,
		WrongGuess: true, PuzzleJoin: true, Cold: true,
		Trap: true, Break: true,
	}
}

// RandomConfig draws a configuration from d: the legacy constructs with
// high probability, each adversarial feature with lower probability.
func RandomConfig(d Decider) Config {
	return Config{
		Case:       d.Intn(3) != 0,
		Indirect:   d.Intn(3) != 0,
		Hidden:     d.Intn(3) != 0,
		DeepChain:  d.Intn(2) == 0,
		RPStress:   d.Intn(2) == 0,
		WrongGuess: d.Intn(3) == 0,
		PuzzleJoin: d.Intn(3) == 0,
		Cold:       d.Intn(3) == 0,
		Trap:       d.Intn(4) == 0,
		Break:      d.Intn(4) == 0,
	}
}

// GenProc is one generated procedure, split into a fixed prologue and
// epilogue (calling convention, harness plumbing) and a list of removable
// statement chunks. Chunks are the delta-debugging unit: every chunk is a
// balanced statement, so any subset of them still assembles and runs.
type GenProc struct {
	Name     string
	Results  int
	Args     int
	Hidden   bool // no RESULT summary in the source
	Prologue []string
	Chunks   [][]string
	Epilogue []string
}

func (p *GenProc) render(sb *strings.Builder) {
	if p.Hidden {
		fmt.Fprintf(sb, "PROC %s ARGS %d\n", p.Name, p.Args)
	} else {
		fmt.Fprintf(sb, "PROC %s RESULT %d ARGS %d\n", p.Name, p.Results, p.Args)
	}
	for _, l := range p.Prologue {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	for _, c := range p.Chunks {
		for _, l := range c {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
	}
	for _, l := range p.Epilogue {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	sb.WriteString("ENDPROC\n")
}

func (p *GenProc) clone() GenProc {
	q := *p
	q.Prologue = append([]string(nil), p.Prologue...)
	q.Epilogue = append([]string(nil), p.Epilogue...)
	q.Chunks = make([][]string, len(p.Chunks))
	for i, c := range p.Chunks {
		q.Chunks[i] = append([]string(nil), c...)
	}
	return q
}

// Program is a generated test case: structured source (so the minimizer
// can delete chunks, not lines) plus the oracle directives that travel with
// it (cold procedures, breakpoint request).
type Program struct {
	Name   string
	Seed   int64
	Config Config

	Header   []string // GLOBALS / DATA / MAIN directives
	Procs    []GenProc
	LibProcs []GenProc // empty unless Config.Library

	// Cold lists procedures the oracle's selective-acceleration pass must
	// leave untranslated. WantBreak asks the oracle for a breakpointed
	// pass.
	Cold      []string
	WantBreak bool
}

// UserSource renders the user-space assembly.
func (p *Program) UserSource() string {
	var sb strings.Builder
	for _, l := range p.Header {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	for i := range p.Procs {
		p.Procs[i].render(&sb)
	}
	return sb.String()
}

// LibSource renders the library assembly, or "" for single-file programs.
func (p *Program) LibSource() string {
	if len(p.LibProcs) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("GLOBALS 64\nMAIN dummy\n")
	for i := range p.LibProcs {
		p.LibProcs[i].render(&sb)
	}
	return sb.String()
}

// Clone deep-copies the program (the minimizer mutates clones).
func (p *Program) Clone() *Program {
	q := *p
	q.Header = append([]string(nil), p.Header...)
	q.Cold = append([]string(nil), p.Cold...)
	q.Procs = make([]GenProc, len(p.Procs))
	for i := range p.Procs {
		q.Procs[i] = p.Procs[i].clone()
	}
	q.LibProcs = make([]GenProc, len(p.LibProcs))
	for i := range p.LibProcs {
		q.LibProcs[i] = p.LibProcs[i].clone()
	}
	return &q
}

// Generate builds a program from a seed. Identical seed and config yield a
// byte-identical program on every run and GOMAXPROCS setting: generation is
// single-goroutine, map-free, and draws only from the seeded stream.
func Generate(name string, seed int64, cfg Config) *Program {
	src := seed
	if cfg.Library {
		// Preserve the legacy generator's library stream so historic seeds
		// keep their shapes.
		src = seed * 7919
	}
	p := GenerateWith(name, rand.New(rand.NewSource(src)), cfg)
	p.Seed = seed
	return p
}

// GenerateWith builds a program, drawing every decision from d.
func GenerateWith(name string, d Decider, cfg Config) *Program {
	if cfg.MaxProcs <= 0 {
		cfg.MaxProcs = 4
	}
	g := &gen{d: d, cfg: cfg, p: &Program{Name: name, Config: cfg}}
	if cfg.Library {
		g.buildLibraryPair()
	} else {
		g.buildUser()
	}
	return g.p
}

// gen carries the generation state: the decider, the program under
// construction, the static register-stack depth within the current chunk,
// and the procedures generated so far (calls target lower-numbered
// procedures — a DAG, so no unbounded recursion).
type gen struct {
	d   Decider
	cfg Config
	p   *Program

	cur   []string // lines of the chunk being built
	depth int      // static register-stack depth
	label int

	callable []callee // procedures random call statements may target
	wgIdx    int      // PEP index of the wrong-guess procedure, -1 if absent
	coldIdx  int      // PEP index of the cold procedure, -1 if absent
}

// callee is a call target with its PEP index (needed for LDPL).
type callee struct {
	name    string
	pep     int
	results int
	args    int
}

func (g *gen) pr(format string, args ...any) {
	g.cur = append(g.cur, fmt.Sprintf(format, args...))
}

func (g *gen) take() []string {
	c := g.cur
	g.cur = nil
	return c
}

func (g *gen) newLabel() string {
	g.label++
	return fmt.Sprintf("lab%d", g.label)
}

// addProc appends a finished procedure and returns its PEP index.
func (g *gen) addProc(p GenProc) int {
	g.p.Procs = append(g.p.Procs, p)
	return len(g.p.Procs) - 1
}

// pushValue emits code that pushes one word.
func (g *gen) pushValue() {
	g.depth++
	switch g.d.Intn(6) {
	case 0:
		g.pr("  LDI %d", g.d.Intn(200)-100)
	case 1:
		g.pr("  LOAD G+%d", g.d.Intn(24))
	case 2:
		g.pr("  LDI %d", g.d.Intn(100))
		g.pr("  LDHI %d", g.d.Intn(256))
	case 3:
		g.pr("  LDB G+%d", g.d.Intn(24))
	case 4:
		g.pr("  LGA %d", g.d.Intn(24))
	case 5:
		g.pr("  LDI %d", g.d.Intn(8))
		g.pr("  LOAD G+8,X") // within the first 24 globals
	}
}

// combine pops two words and pushes one.
func (g *gen) combine() {
	ops := []string{"ADD", "SUB", "LAND", "LOR", "XOR", "MPY"}
	g.pr("  %s", ops[g.d.Intn(len(ops))])
	g.depth--
}

// expr builds a random expression of the given approximate size, leaving
// one word on the register stack.
func (g *gen) expr(size int) {
	g.pushValue()
	for i := 0; i < size; i++ {
		g.pushValue()
		g.combine()
		if g.d.Intn(3) == 0 {
			unary := []string{"NEG", "NOT", "SWAB", "ADDI 3", "ANDI 63",
				"ORI 5", "SHL 2", "SHRL 1", "SHRA 1", "DUP\n  DEL"}
			g.pr("  %s", unary[g.d.Intn(len(unary))])
		}
	}
}

// store pops the top into a random global (G+2..G+23; G+0/G+1 and the
// high globals are reserved for the harness).
func (g *gen) store() {
	g.pr("  STOR G+%d", 2+g.d.Intn(22))
	g.depth--
}

// statement emits one random statement (net stack effect zero).
func (g *gen) statement(depthBudget int) {
	nkinds := 13
	if g.cfg.RPStress {
		nkinds++
	}
	switch g.d.Intn(nkinds) {
	case 0, 1, 2: // simple assignment
		g.expr(g.d.Intn(3))
		g.store()
	case 3: // conditional
		g.expr(g.d.Intn(2))
		l1 := g.newLabel()
		l2 := g.newLabel()
		conds := []string{"BL", "BE", "BLE", "BG", "BNE", "BGE"}
		g.pr("  CMPI %d", g.d.Intn(20)-10)
		g.pr("  DEL")
		g.depth--
		g.pr("  %s %s", conds[g.d.Intn(len(conds))], l1)
		g.statementSimple()
		g.pr("  BUN %s", l2)
		g.pr("%s:", l1)
		g.statementSimple()
		g.pr("%s:", l2)
	case 4: // byte store
		g.expr(1)
		g.pr("  STB G+%d", 8+g.d.Intn(16))
		g.depth--
	case 5: // 32-bit arithmetic
		g.pushValue()
		g.pushValue()
		g.pushValue()
		g.pushValue()
		dops := []string{"DADD", "DSUB", "DMPY"}
		g.pr("  %s", dops[g.d.Intn(len(dops))])
		g.depth -= 2
		g.pr("  STD G+%d", 2*(1+g.d.Intn(11)))
		g.depth -= 2
	case 6: // call a previously generated procedure
		if len(g.callable) == 0 || depthBudget <= 0 {
			g.statementSimple()
			return
		}
		g.call(g.callable[g.d.Intn(len(g.callable))])
	case 7: // CASE dispatch
		if !g.cfg.Case {
			g.statementSimple()
			return
		}
		g.caseStmt()
	case 8: // compare into branch storing flags
		g.expr(1)
		g.pushValue()
		g.pr("  CMP")
		g.depth -= 2
		l1 := g.newLabel()
		g.pr("  BG %s", l1)
		g.statementSimple()
		g.pr("%s:", l1)
	case 9: // indexed store
		g.expr(1)
		g.pr("  LDI %d", g.d.Intn(8))
		g.depth++
		g.pr("  STOR G+8,X")
		g.depth -= 2
	case 10: // block move between two scratch buffers (byte addresses)
		g.pr("  LDI %d", 2*(32+g.d.Intn(8)))
		g.pr("  LDI %d", 2*(44+g.d.Intn(8)))
		g.pr("  LDI %d", 1+g.d.Intn(6))
		g.depth += 3
		if g.d.Intn(2) == 0 {
			g.pr("  MOVB")
		} else {
			g.pr("  MOVW")
		}
		g.depth -= 3
	case 11: // byte-string compare or scan feeding a store
		if g.d.Intn(2) == 0 {
			g.pr("  LDI %d", 2*(32+g.d.Intn(4)))
			g.pr("  LDI %d", 2*(44+g.d.Intn(4)))
			g.pr("  LDI %d", 1+g.d.Intn(6))
			g.depth += 3
			g.pr("  CMPB")
			g.depth -= 3
			l := g.newLabel()
			g.pr("  BE %s", l)
			g.statementSimple()
			g.pr("%s:", l)
		} else {
			g.pr("  LDI %d", 2*(32+g.d.Intn(4)))
			g.pr("  LDI %d", g.d.Intn(128))
			g.pr("  LDI %d", 1+g.d.Intn(8))
			g.depth += 3
			g.pr("  SCNB")
			g.depth -= 2
			g.store()
		}
	case 12: // register-barrel gymnastics: absolute registers and EXCH
		g.pushValue()
		g.pushValue()
		switch g.d.Intn(3) {
		case 0:
			g.pr("  EXCH")
		case 1:
			g.pr("  STAR 2")
			g.depth--
			g.pr("  LDRA 2")
			g.depth++
		case 2:
			g.pr("  DUP")
			g.pr("  DEL")
		}
		g.store()
		g.store()
	case 13: // RP stress: fill the eight-register barrel, then fold down
		g.rpStress()
	}
}

// statementSimple emits a guaranteed-simple statement.
func (g *gen) statementSimple() {
	g.expr(1)
	g.store()
}

// rpStress drives the register stack to its full depth with shuffles in
// the middle, stressing the translator's RP tracking at every point.
func (g *gen) rpStress() {
	n := 6 + g.d.Intn(3) // 6..8 of the 8 registers
	for i := 0; i < n; i++ {
		g.pushValue()
	}
	g.pr("  EXCH")
	if g.d.Intn(2) == 0 {
		reg := 1 + g.d.Intn(n-1)
		g.pr("  STAR %d", reg)
		g.depth--
		g.pr("  LDRA %d", reg)
		g.depth++
	}
	for i := 0; i < n-1; i++ {
		g.combine()
	}
	g.store()
}

func (g *gen) caseStmt() {
	n := 2 + g.d.Intn(3)
	labels := make([]string, n)
	for i := range labels {
		labels[i] = g.newLabel()
	}
	after := g.newLabel()
	g.expr(0)
	g.pr("  ANDI 7") // keep the index small but sometimes out of range
	g.pr("  CASE")
	g.depth--
	g.pr("CASETAB %s", strings.Join(labels, ", "))
	// Out-of-range falls through here.
	g.statementSimple()
	g.pr("  BUN %s", after)
	for _, l := range labels {
		g.pr("%s:", l)
		g.statementSimple()
		g.pr("  BUN %s", after)
	}
	g.pr("%s:", after)
}

// call invokes c with the calling convention: args pushed on the memory
// stack, register stack empty, results consumed afterwards.
func (g *gen) call(c callee) {
	for i := 0; i < c.args; i++ {
		g.expr(g.d.Intn(2))
		g.pr("  ADDS 1")
		g.pr("  STOR S-0")
		g.depth--
	}
	indirect := g.cfg.Indirect && g.d.Intn(4) == 0
	if indirect {
		g.pr("  LDPL %d", c.pep)
		g.depth++
		g.pr("  XCAL")
		g.depth--
		if g.d.Intn(2) == 0 {
			// The compiler clue.
			g.pr("  SETRP %d", (7+c.results)%8)
		}
		// Otherwise the Accelerator guesses from the following code.
	} else {
		g.pr("  PCAL %s", c.name)
	}
	g.depth += c.results
	for i := 0; i < c.results; i++ {
		g.store()
	}
}

// randomProc generates one ordinary procedure as chunks.
func (g *gen) randomProc(idx, results, args int, hidden bool) GenProc {
	p := GenProc{
		Name:    fmt.Sprintf("p%d", idx),
		Results: results,
		Args:    args,
		Hidden:  hidden,
	}
	g.depth = 0
	nstmt := 1 + g.d.Intn(4)
	for i := 0; i < nstmt; i++ {
		if g.d.Intn(3) == 0 {
			g.pr("  STMT %d", i+1)
		}
		g.statement(1)
		if g.depth != 0 {
			panic("tnsgen: generator lost stack balance")
		}
		p.Chunks = append(p.Chunks, g.take())
	}
	// Use the arguments sometimes.
	if args > 0 && g.d.Intn(2) == 0 {
		g.pr("  LOAD L-%d", 3+g.d.Intn(args))
		g.pr("  STOR G+%d", 2+g.d.Intn(22))
	}
	for i := 0; i < results; i++ {
		g.expr(g.d.Intn(2))
	}
	g.depth -= results
	g.pr("  EXIT %d", args)
	p.Epilogue = g.take()
	return p
}

// fixedProc builds a procedure whose body is one removable chunk.
func fixedProc(name string, results, args int, hidden bool, body, epilogue []string) GenProc {
	return GenProc{
		Name: name, Results: results, Args: args, Hidden: hidden,
		Chunks:   [][]string{body},
		Epilogue: epilogue,
	}
}

// buildUser assembles the whole single-file program: feature procedures
// first (so their PEP indexes are known to LDPL sites), random procedures,
// then main with its bounded loop, feature chunks, and checksum harness.
func (g *gen) buildUser() {
	cfg := g.cfg
	g.p.Header = []string{
		"GLOBALS 64",
		"DATA 8: 11 22 33 44 55 66 77 88",
		"MAIN main",
	}
	g.wgIdx, g.coldIdx = -1, -1

	// wg: a hidden two-result procedure. Called through XCAL with no SETRP
	// clue and a one-result continuation, the translator's guess is wrong
	// and the run-time RP guard fires.
	if cfg.WrongGuess || cfg.PuzzleJoin {
		g.wgIdx = g.addProc(fixedProc("wg", 2, 0, true,
			[]string{"  LDI 4", "  LDI 9"},
			[]string{"  EXIT 0"}))
	}
	// tj: a trivial translated callee. PCALed from interpreter-only
	// regions, its millicode EXIT must look up a return point that has no
	// translation — the unmapped/computed-jump escapes.
	hasTJ := cfg.PuzzleJoin || cfg.Cold
	if hasTJ {
		g.addProc(fixedProc("tj", 0, 0, false,
			[]string{"  LDI 3", "  STOR G+14"},
			[]string{"  EXIT 0"}))
		g.callable = append(g.callable, callee{name: "tj", pep: len(g.p.Procs) - 1})
	}
	// The deep chain: three hidden-summary procedures, each passing its
	// argument down and adding one, so result-size analysis recurses.
	if cfg.DeepChain {
		g.addProc(GenProc{Name: "c0", Results: 1, Args: 1, Hidden: true,
			Chunks:   [][]string{{"  LOAD L-3", "  ADDI 1"}},
			Epilogue: []string{"  EXIT 1"}})
		for i := 1; i <= 2; i++ {
			g.addProc(GenProc{
				Name: fmt.Sprintf("c%d", i), Results: 1, Args: 1, Hidden: true,
				Chunks: [][]string{{
					"  LOAD L-3",
					"  ADDS 1",
					"  STOR S-0",
					fmt.Sprintf("  PCAL c%d", i-1),
					"  ADDI 1",
				}},
				Epilogue: []string{"  EXIT 1"},
			})
		}
		g.callable = append(g.callable,
			callee{name: "c2", pep: len(g.p.Procs) - 1, results: 1, args: 1})
	}

	// Ordinary random procedures.
	nproc := 1 + g.d.Intn(cfg.MaxProcs)
	for i := 0; i < nproc; i++ {
		results := g.d.Intn(3)
		args := g.d.Intn(3)
		hidden := cfg.Hidden && g.d.Intn(3) == 0
		p := g.randomProc(i, results, args, hidden)
		pep := g.addProc(p)
		g.callable = append(g.callable,
			callee{name: p.Name, pep: pep, results: results, args: args})
	}

	// wgc: the wrong-guess call site in a procedure of its own, so the
	// statically mistracked RP after the XCAL is contained.
	if cfg.WrongGuess {
		g.addProc(fixedProc("wgc", 0, 0, false,
			[]string{
				fmt.Sprintf("  LDPL %d", g.wgIdx),
				"  XCAL",
				"  STOR G+10",
				"  STOR G+11",
			},
			[]string{"  EXIT 0"}))
	}
	// pj: the puzzle join. Path A's XCAL is guessed at one result but
	// dynamically delivers two; path B pushes two literals. The join
	// consumes two words — dynamically balanced on both paths, statically
	// contradictory, so the join is a puzzle and everything after it an
	// interpreter-only region. The PCAL below the join gives that region a
	// translated callee whose return lands on an unmapped computed-jump
	// point.
	if cfg.PuzzleJoin {
		g.addProc(fixedProc("pj", 0, 0, false,
			[]string{
				"  LOAD G+2",
				"  ANDI 1",
				"  BNZ pjA",
				"  LDI 5",
				"  LDI 9",
				"  BUN pjJ",
				"pjA:",
				fmt.Sprintf("  LDPL %d", g.wgIdx),
				"  XCAL",
				"pjJ:",
				"  STOR G+12",
				"  STOR G+13",
				"  PCAL tj",
				"  LDI 1",
				"  STOR G+15",
			},
			[]string{"  EXIT 0"}))
		// cj: returns one word past its static return point by bumping the
		// saved return address in the stack marker. The landing site below
		// (in main) is reachable only through this unanalyzable return, so
		// RP propagation never reaches it and the translator maps it as a
		// computed-jump fallback.
		g.addProc(fixedProc("cj", 0, 0, false,
			[]string{"  LOAD L-2", "  ADDI 1", "  STOR L-2"},
			[]string{"  EXIT 0"}))
	}
	// cold: the selective-acceleration victim. Its PCAL into a translated
	// procedure makes the return address an unmapped point of the
	// untranslated caller.
	if cfg.Cold {
		g.coldIdx = g.addProc(fixedProc("cold", 0, 0, false,
			[]string{"  PCAL tj", "  LDI 1", "  STOR G+16"},
			[]string{"  EXIT 0"}))
		g.p.Cold = append(g.p.Cold, "cold")
	}
	// trapper: divides by zero, so the trap surfaces from translated code.
	if cfg.Trap {
		g.addProc(fixedProc("trapper", 0, 0, false,
			[]string{"  LDI 1", "  LDI 0", "  DIV", "  STOR G+17"},
			[]string{"  EXIT 0"}))
	}

	// main: a bounded loop exercises join points; the loop body is the
	// random statements plus one fixed chunk per enabled feature.
	main := GenProc{Name: "main"}
	g.depth = 0
	g.pr("  LDI %d", 3+g.d.Intn(5))
	g.pr("  STOR G+60") // loop counter, outside the random-store range
	g.pr("mainloop:")
	main.Prologue = g.take()
	for i := 0; i < 2+g.d.Intn(3); i++ {
		g.depth = 0
		g.statement(1)
		main.Chunks = append(main.Chunks, g.take())
	}
	if cfg.WrongGuess {
		main.Chunks = append(main.Chunks, []string{"  PCAL wgc"})
	}
	if cfg.PuzzleJoin {
		main.Chunks = append(main.Chunks, []string{"  PCAL pj"})
		// The cj landing pad: cj's EXIT skips the BUN and lands on the
		// STMT-labelled word, which no static path reaches.
		main.Chunks = append(main.Chunks, []string{
			"  PCAL cj",
			"  BUN cjover",
			"  STMT 90",
			"  LDI 1",
			"  STOR G+18",
			"cjover:",
		})
	}
	if cfg.Cold {
		// Both call forms into the cold procedure: the direct call escapes
		// untranslated, the dispatch escapes indirect-call. The SETRP clue
		// keeps the static RP exact (cold returns nothing).
		main.Chunks = append(main.Chunks, []string{
			"  PCAL cold",
			fmt.Sprintf("  LDPL %d", g.coldIdx),
			"  XCAL",
			"  SETRP 7",
		})
	}
	// Report a checksum over the globals via the console.
	g.pr("  LOAD G+60")
	g.pr("  ADDI -1")
	g.pr("  STOR G+60")
	g.pr("  LOAD G+60")
	g.pr("  BNZ mainloop")
	g.pr("  LDI 0")
	g.pr("  STOR G+61")
	g.pr("  LDI 2")
	g.pr("  STOR G+60")
	g.pr("ckloop:")
	g.pr("  LOAD G+61")
	g.pr("  LOAD G+60")
	g.pr("  LOAD G+0,X")
	g.pr("  XOR")
	g.pr("  STOR G+61")
	g.pr("  LOAD G+60")
	g.pr("  ADDI 1")
	g.pr("  STOR G+60")
	g.pr("  LOAD G+60")
	g.pr("  CMPI 24")
	g.pr("  DEL")
	g.pr("  BL ckloop")
	g.pr("  LOAD G+61")
	g.pr("  SVC 2")
	if cfg.Trap {
		// After the checksum is printed, so console fidelity is still
		// checked before the trap ends the run.
		g.pr("  PCAL trapper")
	}
	g.pr("  EXIT 0")
	main.Epilogue = g.take()
	g.addProc(main)
	g.p.WantBreak = cfg.Break
}

// buildLibraryPair assembles a user+library pair: the library is a set of
// procedures over its own scratch region (G+24..G+31, so the user's
// checksum range stays clean), called through SCAL from the user's main.
func (g *gen) buildLibraryPair() {
	var libCallees []callee
	for i := 0; i < 3; i++ {
		results := g.d.Intn(3)
		args := g.d.Intn(2)
		body := []string{"  LDI 7", "  STOR G+24"}
		if args > 0 {
			body = append(body, "  LOAD L-3", "  STOR G+25")
		}
		body = append(body, "  LOAD G+24", "  LOAD G+25", "  ADD", "  STOR G+26")
		var epi []string
		for j := 0; j < results; j++ {
			epi = append(epi, fmt.Sprintf("  LOAD G+%d", 24+g.d.Intn(3)))
		}
		epi = append(epi, fmt.Sprintf("  EXIT %d", args))
		g.p.LibProcs = append(g.p.LibProcs, GenProc{
			Name: fmt.Sprintf("lib%d", i), Results: results, Args: args,
			Chunks: [][]string{body}, Epilogue: epi,
		})
		libCallees = append(libCallees, callee{
			name: fmt.Sprintf("lib%d", i), pep: i, results: results, args: args})
	}
	g.p.LibProcs = append(g.p.LibProcs, GenProc{
		Name: "dummy", Epilogue: []string{"  EXIT 0"}})

	g.p.Header = []string{"GLOBALS 64", "DATA 8: 11 22 33 44", "MAIN main"}
	main := GenProc{Name: "main"}
	main.Prologue = []string{"  LDI 4", "  STOR G+60", "mainloop:"}
	for i := 0; i < 3; i++ {
		c := libCallees[g.d.Intn(len(libCallees))]
		for a := 0; a < c.args; a++ {
			g.pr("  LDI %d", g.d.Intn(50))
			g.pr("  ADDS 1")
			g.pr("  STOR S-0")
		}
		g.pr("  SCAL %d", c.pep)
		for j := 0; j < c.results; j++ {
			g.pr("  STOR G+%d", 2+g.d.Intn(20))
		}
		main.Chunks = append(main.Chunks, g.take())
	}
	main.Epilogue = []string{
		"  LOAD G+60", "  ADDI -1", "  STOR G+60", "  LOAD G+60", "  BNZ mainloop",
		"  LDI 0", "  STOR G+61", "  LDI 2", "  STOR G+60",
		"ck:", "  LOAD G+61", "  LOAD G+60", "  LOAD G+0,X", "  XOR", "  STOR G+61",
		"  LOAD G+60", "  ADDI 1", "  STOR G+60", "  LOAD G+60", "  CMPI 30", "  DEL", "  BL ck",
		"  LOAD G+61", "  SVC 2", "  EXIT 0",
	}
	g.p.Procs = append(g.p.Procs, main)
}
