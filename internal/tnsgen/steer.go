package tnsgen

import (
	"fmt"
	"math/rand"

	"tnsr/internal/obs"
)

// SteerConfig draws a random configuration, then forces on the features
// that can produce the escape-reason classes the campaign has not yet seen
// at run time. This is the coverage-guidance loop: the obs histogram feeds
// back into what the generator emits next.
func SteerConfig(cov *Coverage, d Decider) Config {
	cfg := RandomConfig(d)
	for _, r := range cov.Missing() {
		switch r {
		case obs.EscapeRPConflict:
			cfg.WrongGuess = true
		case obs.EscapeComputedJump:
			cfg.PuzzleJoin = true
		case obs.EscapeUnmapped, obs.EscapeUntranslated, obs.EscapeIndirectCall:
			cfg.Cold = true
			cfg.Indirect = true
		case obs.EscapeTrap:
			cfg.Trap = true
		case obs.EscapeBreakpoint:
			cfg.Break = true
		}
	}
	return cfg
}

// Campaign runs N generated programs through the oracle, accumulating
// coverage and failures. With Steer set, each program's configuration is
// drawn by SteerConfig against the coverage so far; otherwise purely at
// random. Identical campaign parameters reproduce the identical campaign.
type Campaign struct {
	Seed  int64
	N     int
	Steer bool
	// LibraryEvery makes every k-th program a user+library pair (0 =
	// never).
	LibraryEvery int
	// ChaosEvery adds a chaos pass (ChaosMutants mutants) to every k-th
	// program's oracle (0 = never).
	ChaosEvery   int
	ChaosMutants int
	// AdaptiveEvery adds a RunAdaptive cycle to every k-th program's
	// oracle (0 = never).
	AdaptiveEvery int

	Oracle OracleOptions

	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// Failure is one program the oracle rejected, with everything needed to
// reproduce and minimize it.
type Failure struct {
	Name    string
	Seed    int64
	Config  Config
	Program *Program
	Err     string
}

// CampaignResult is the aggregate outcome.
type CampaignResult struct {
	Programs     int
	Passes       int
	BPHits       int
	ChaosMutants int
	Coverage     Coverage
	Failures     []Failure
}

// Run executes the campaign.
func (c *Campaign) Run() *CampaignResult {
	out := &CampaignResult{}
	for i := 0; i < c.N; i++ {
		seed := c.Seed + int64(i)
		// A separate stream for configuration decisions, so the program
		// stream stays aligned with the standalone Generate(seed, cfg).
		cfgRand := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
		var cfg Config
		if c.Steer {
			cfg = SteerConfig(&out.Coverage, cfgRand)
		} else {
			cfg = RandomConfig(cfgRand)
		}
		if c.LibraryEvery > 0 && i%c.LibraryEvery == c.LibraryEvery-1 {
			cfg = Config{Library: true}
		}
		name := fmt.Sprintf("gen%d", seed)
		p := Generate(name, seed, cfg)

		o := c.Oracle
		if c.ChaosEvery > 0 && i%c.ChaosEvery == c.ChaosEvery-1 {
			o.Chaos = c.ChaosMutants
			if o.Chaos == 0 {
				o.Chaos = 13
			}
			o.ChaosSeed = seed
		}
		if c.AdaptiveEvery > 0 && i%c.AdaptiveEvery == c.AdaptiveEvery-1 {
			o.Adaptive = true
		}

		res, err := RunOracle(p.Subject(), o)
		out.Programs++
		if res != nil {
			out.Passes += res.Passes
			out.BPHits += res.BPHits
			out.ChaosMutants += res.ChaosMutants
			out.Coverage.Merge(&res.Coverage)
		}
		if err != nil {
			out.Failures = append(out.Failures, Failure{
				Name: name, Seed: seed, Config: cfg, Program: p, Err: err.Error(),
			})
			if c.Log != nil {
				c.Log("FAIL %s (seed %d): %v", name, seed, err)
			}
		}
		if c.Log != nil && (i+1)%50 == 0 {
			c.Log("%d/%d programs, %d passes, %d failures, runtime classes: %s",
				i+1, c.N, out.Passes, len(out.Failures), out.Coverage.Mask())
		}
	}
	return out
}
