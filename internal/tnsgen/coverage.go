package tnsgen

import (
	"fmt"
	"sort"
	"strings"

	"tnsr/internal/obs"
)

// Coverage is the feedback signal that steers generation: how many escape
// events of each class actually fired at run time, how many fallback sites
// of each class the translator emitted statically, and which translation
// phases ran. The steering loop's goal is Runtime coverage of every class
// in obs.GuaranteeClasses.
type Coverage struct {
	// Runtime histograms run-time escape events by reason, summed over
	// every oracle pass.
	Runtime [obs.NumEscapeReasons]int64
	// Static histograms the translator's FallbackWhy sites by reason.
	Static [obs.NumEscapeReasons]int64
	// Phases records every translation-phase name observed.
	Phases map[string]bool
}

// Merge accumulates o into c.
func (c *Coverage) Merge(o *Coverage) {
	for i := range c.Runtime {
		c.Runtime[i] += o.Runtime[i]
		c.Static[i] += o.Static[i]
	}
	for ph := range o.Phases {
		c.addPhase(ph)
	}
}

func (c *Coverage) addPhase(name string) {
	if c.Phases == nil {
		c.Phases = map[string]bool{}
	}
	c.Phases[name] = true
}

// Mask returns the run-time classes seen so far as a bit set.
func (c *Coverage) Mask() obs.ReasonMask {
	var m obs.ReasonMask
	for r := obs.EscapeReason(0); r < obs.NumEscapeReasons; r++ {
		if c.Runtime[r] > 0 {
			m.Add(r)
		}
	}
	return m
}

// Missing returns the guarantee classes with no run-time coverage yet.
func (c *Coverage) Missing() []obs.EscapeReason {
	var out []obs.EscapeReason
	m := c.Mask()
	for _, r := range obs.GuaranteeClasses {
		if !m.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// String renders a histogram table for campaign reports.
func (c *Coverage) String() string {
	var sb strings.Builder
	sb.WriteString("class            runtime    static\n")
	for _, r := range obs.GuaranteeClasses {
		fmt.Fprintf(&sb, "%-14s %9d %9d\n", r, c.Runtime[r], c.Static[r])
	}
	var phases []string
	for ph := range c.Phases {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	fmt.Fprintf(&sb, "phases: %s\n", strings.Join(phases, ", "))
	return sb.String()
}
