package tnsgen

import (
	"fmt"
	"math/rand"

	"tnsr/internal/backend"
	"tnsr/internal/chaos"
	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/risc"
	"tnsr/internal/tnsasm"
	"tnsr/internal/xrun"
)

// Subject is a program reduced to what the oracle needs: rendered sources
// plus the oracle directives. Corpus scenarios deserialize straight into
// Subjects, so replay does not depend on the generator's chunk structure.
type Subject struct {
	Name      string
	User      string
	Lib       string // "" for single-file programs
	Cold      []string
	WantBreak bool
}

// Subject renders the program for the oracle.
func (p *Program) Subject() *Subject {
	return &Subject{
		Name:      p.Name,
		User:      p.UserSource(),
		Lib:       p.LibSource(),
		Cold:      append([]string(nil), p.Cold...),
		WantBreak: p.WantBreak,
	}
}

// OracleOptions configures RunOracle.
type OracleOptions struct {
	// Levels are the acceleration levels to test; default all three.
	Levels []codefile.AccelLevel
	// Backends are the RISC targets to hold to the reference; nil means
	// the default target only. Every level (and the selective and
	// breakpointed variants) runs once per backend, so a generated
	// program that exposes a target-specific lowering bug fails naming
	// the backend it diverged on.
	Backends []backend.Backend
	// Workers is the translator worker count (0 = serial).
	Workers int
	// InterpBudget and RunBudget bound the reference and accelerated runs.
	InterpBudget int64
	RunBudget    int64
	// Adaptive additionally runs the program through xrun.RunAdaptive
	// (capture -> retranslate -> rerun) and requires identical output and
	// no escape increase between the passes.
	Adaptive bool
	// Chaos, when positive, builds a chaos reference from the program and
	// checks that many mutants (round-robin over every operator) against
	// the integrity contract.
	Chaos     int
	ChaosSeed int64
}

// DefaultOracle returns the options the campaign and tests use: all three
// levels, the fidelity-test budgets, no adaptive or chaos extras.
func DefaultOracle() OracleOptions {
	return OracleOptions{
		Levels: []codefile.AccelLevel{
			codefile.LevelStmtDebug, codefile.LevelDefault, codefile.LevelFast,
		},
		InterpBudget: 3_000_000,
		RunBudget:    20_000_000,
	}
}

func (o *OracleOptions) fill() {
	if len(o.Levels) == 0 {
		o.Levels = []codefile.AccelLevel{
			codefile.LevelStmtDebug, codefile.LevelDefault, codefile.LevelFast,
		}
	}
	if o.InterpBudget == 0 {
		o.InterpBudget = 3_000_000
	}
	if o.RunBudget == 0 {
		o.RunBudget = 20_000_000
	}
}

// Result reports one oracle verdict: the coverage the program contributed
// and how many differential passes ran.
type Result struct {
	Coverage Coverage
	// Passes counts completed differential runs (levels x modes, plus the
	// two adaptive passes when enabled).
	Passes int
	// BPHits counts breakpoint round-trips across the breakpointed passes.
	BPHits int
	// ChaosMutants counts mutants checked against the integrity contract.
	ChaosMutants int
}

// simConfig matches the fidelity tests' simulator latencies.
func simConfig() risc.Config { return risc.Config{MulLatency: 12, DivLatency: 35} }

// RunOracle runs the subject interpreted (the reference) and accelerated
// at every requested level — plus a selective-acceleration pass when the
// subject has cold procedures, a breakpointed pass when it asks for one,
// and the adaptive/chaos extras when enabled — and returns an error on any
// divergence, panic, accounting mismatch, or EscapeUnknown occurrence.
func RunOracle(s *Subject, o OracleOptions) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	o.fill()
	res = &Result{}

	// The reference: pure interpretation of the unaccelerated program.
	ref, refLib, _, err := o.assemble(s)
	if err != nil {
		return res, err
	}
	m := interp.New(ref, refLib)
	m.Run(o.InterpBudget)
	if !m.Halted {
		return res, fmt.Errorf("reference run did not halt within %d instructions", o.InterpBudget)
	}

	backends := o.Backends
	if len(backends) == 0 {
		backends = []backend.Backend{nil} // the core's default target
	}
	for _, be := range backends {
		name := "default"
		if be != nil {
			name = be.Name()
		}
		for _, lvl := range o.Levels {
			if err := o.pass(s, m, lvl, be, nil, false, res); err != nil {
				return res, fmt.Errorf("backend %s level %s: %w", name, lvl, err)
			}
			if len(s.Cold) > 0 {
				sel := selectWarm(ref, s.Cold)
				if err := o.pass(s, m, lvl, be, sel, false, res); err != nil {
					return res, fmt.Errorf("backend %s level %s (selective): %w", name, lvl, err)
				}
			}
			if s.WantBreak {
				if err := o.pass(s, m, lvl, be, nil, true, res); err != nil {
					return res, fmt.Errorf("backend %s level %s (breakpointed): %w", name, lvl, err)
				}
			}
		}
	}
	if o.Adaptive {
		if err := o.adaptive(s, m, res); err != nil {
			return res, fmt.Errorf("adaptive: %w", err)
		}
	}
	if o.Chaos > 0 {
		if err := o.chaos(s, res); err != nil {
			return res, fmt.Errorf("chaos: %w", err)
		}
	}
	return res, nil
}

// assemble parses fresh codefiles for the subject and derives the library
// SCAL summaries from the assembled RESULT declarations.
func (o *OracleOptions) assemble(s *Subject) (user, lib *codefile.File, libSummaries map[uint16]int8, err error) {
	user, err = tnsasm.Assemble(s.Name, s.User)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("assemble user: %w", err)
	}
	if s.Lib != "" {
		lib, err = tnsasm.Assemble(s.Name+"-lib", s.Lib)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("assemble lib: %w", err)
		}
		libSummaries = map[uint16]int8{}
		for i, p := range lib.Procs {
			libSummaries[uint16(i)] = p.ResultWords
		}
	}
	return user, lib, libSummaries, nil
}

// selectWarm builds the SelectProcs set: every procedure except the cold
// ones.
func selectWarm(user *codefile.File, cold []string) map[string]bool {
	sel := map[string]bool{}
	for _, p := range user.Procs {
		sel[p.Name] = true
	}
	for _, c := range cold {
		delete(sel, c)
	}
	return sel
}

// pass runs one accelerated configuration and compares it against the
// reference machine.
func (o *OracleOptions) pass(s *Subject, m *interp.Machine, lvl codefile.AccelLevel,
	be backend.Backend, sel map[string]bool, withBreak bool, res *Result) error {

	user, lib, libSummaries, err := o.assemble(s)
	if err != nil {
		return err
	}
	rec := obs.NewRecorder()
	if lib != nil {
		libOpts := core.Options{Level: lvl, Workers: o.Workers, Backend: be,
			CodeBase: millicode.LibCodeBase, Space: 1, Obs: rec}
		if err := core.Accelerate(lib, libOpts); err != nil {
			return fmt.Errorf("accelerate lib: %w", err)
		}
	}
	opts := core.Options{Level: lvl, Workers: o.Workers, Backend: be,
		LibSummaries: libSummaries, SelectProcs: sel, Obs: rec}
	if err := core.Accelerate(user, opts); err != nil {
		return fmt.Errorf("accelerate: %w", err)
	}

	r, err := xrun.New(user, lib, simConfig())
	if err != nil {
		return err
	}
	r.Observe(rec)

	if withBreak {
		addr, ok := breakAddr(user)
		if !ok {
			return nil // nothing register-exact to break on; skip the pass
		}
		r.ArmBreak(0, addr)
		for !r.Halted {
			if err := r.Continue(o.RunBudget); err != nil {
				return fmt.Errorf("run (breakpointed): %w", err)
			}
			if r.BPHit {
				res.BPHits++
			}
		}
	} else {
		if err := r.Run(o.RunBudget); err != nil {
			return fmt.Errorf("run: %w", err)
		}
	}

	if err := compare(m, r); err != nil {
		return err
	}
	if err := checkAccounting(r, rec); err != nil {
		return err
	}
	res.Coverage.Merge(coverageFrom(user, lib, rec))
	res.Passes++
	return nil
}

// breakAddr finds the first mapped register-exact address that is not a
// procedure entry — a point execution crosses repeatedly.
func breakAddr(f *codefile.File) (uint16, bool) {
	if f.Accel == nil {
		return 0, false
	}
	entries := map[uint16]bool{}
	for _, p := range f.Procs {
		entries[p.Entry] = true
	}
	for a := 0; a < len(f.Code); a++ {
		if _, re, ok := f.Accel.PMap.Lookup(uint16(a)); ok && re && !entries[uint16(a)] {
			return uint16(a), true
		}
	}
	return 0, false
}

// compare checks the paper's fidelity contract between the reference
// interpreter and a completed mixed-mode run: halt state, trap, exit
// status, console output, and (trap-free runs) every word of data memory.
func compare(m *interp.Machine, r *xrun.Runner) error {
	if m.Halted != r.Halted {
		return fmt.Errorf("halted: interp=%v accel=%v", m.Halted, r.Halted)
	}
	if m.Trap != r.Trap {
		return fmt.Errorf("trap: interp=%d accel=%d (at %d vs %d)",
			m.Trap, r.Trap, m.TrapP, r.TrapP)
	}
	if m.Trap == 0 && m.ExitStatus != r.ExitStatus {
		return fmt.Errorf("exit status: interp=%d accel=%d", m.ExitStatus, r.ExitStatus)
	}
	if got, want := r.Console(), m.Console.String(); got != want {
		return fmt.Errorf("console: accel=%q interp=%q", got, want)
	}
	if m.Trap != 0 {
		return nil // memory at trap time may legitimately differ midway
	}
	for i := range m.Mem {
		if m.Mem[i] != r.Int.Mem[i] {
			return fmt.Errorf("memory differs at word %d: interp=%04x accel=%04x",
				i, m.Mem[i], r.Int.Mem[i])
		}
	}
	return nil
}

// checkAccounting enforces the telemetry invariants on an observed run:
// no unclassified escape, and the recorder's totals agreeing exactly with
// the runner's own accounting in both modes.
func checkAccounting(r *xrun.Runner, rec *obs.Recorder) error {
	if n := rec.Escapes[obs.EscapeUnknown]; n != 0 {
		return fmt.Errorf("%d escapes with Unknown reason (histogram %v)", n, rec.Escapes)
	}
	if rec.InterpEntries != int64(r.Interludes) {
		return fmt.Errorf("interp entries: obs=%d runner=%d", rec.InterpEntries, r.Interludes)
	}
	if rec.InterpInstrs != r.InterludeProf.Instrs {
		return fmt.Errorf("interp instrs: obs=%d runner=%d", rec.InterpInstrs, r.InterludeProf.Instrs)
	}
	if rec.RISCInstrs != r.Sim.Instrs {
		return fmt.Errorf("risc instrs: obs=%d sim=%d", rec.RISCInstrs, r.Sim.Instrs)
	}
	rep := r.Report(rec)
	var procRISC, procInterp int64
	for _, p := range rep.Procs {
		procRISC += p.RISCInstrs
		procInterp += p.InterpInstrs
	}
	if procRISC != rec.RISCInstrs || procInterp != rec.InterpInstrs {
		return fmt.Errorf("per-proc sums: risc %d/%d interp %d/%d",
			procRISC, rec.RISCInstrs, procInterp, rec.InterpInstrs)
	}
	if err := obs.Validate(rep); err != nil {
		return fmt.Errorf("report validation: %w", err)
	}
	return nil
}

// coverageFrom folds one observed run into a coverage sample.
func coverageFrom(user, lib *codefile.File, rec *obs.Recorder) *Coverage {
	cov := &Coverage{}
	for i := range rec.Escapes {
		cov.Runtime[i] += rec.Escapes[i]
	}
	for _, f := range []*codefile.File{user, lib} {
		if f == nil || f.Accel == nil {
			continue
		}
		for _, why := range f.Accel.FallbackWhy {
			if why < uint8(obs.NumEscapeReasons) {
				cov.Static[why]++
			}
		}
	}
	for _, ph := range rec.Report().Phases {
		cov.addPhase(ph.Phase)
	}
	return cov
}

// sumEscapes totals an escape histogram.
func sumEscapes(h [obs.NumEscapeReasons]int64) int64 {
	var n int64
	for _, v := range h {
		n += v
	}
	return n
}

// adaptive pushes the subject through the capture -> retranslate -> rerun
// cycle: both passes must match the reference, and the retranslation must
// never increase the total escape count (the profile only ever confirms
// guesses, so pass 2 escapes at most where pass 1 did).
func (o *OracleOptions) adaptive(s *Subject, m *interp.Machine, res *Result) error {
	user, lib, libSummaries, err := o.assemble(s)
	if err != nil {
		return err
	}
	a, err := xrun.RunAdaptive(user, lib, libSummaries,
		codefile.LevelDefault, o.Workers, o.RunBudget, simConfig())
	if err != nil {
		return err
	}
	for pass, r := range []*xrun.Runner{a.First, a.Second} {
		if err := compare(m, r); err != nil {
			return fmt.Errorf("pass %d: %w", pass+1, err)
		}
	}
	if err := checkAccounting(a.First, a.FirstObs); err != nil {
		return fmt.Errorf("pass 1: %w", err)
	}
	if err := checkAccounting(a.Second, a.SecondObs); err != nil {
		return fmt.Errorf("pass 2: %w", err)
	}
	e1, e2 := sumEscapes(a.FirstObs.Escapes), sumEscapes(a.SecondObs.Escapes)
	if e2 > e1 {
		return fmt.Errorf("retranslation increased escapes: pass1=%d pass2=%d (%v vs %v)",
			e1, e2, a.FirstObs.Escapes, a.SecondObs.Escapes)
	}
	res.Coverage.Merge(coverageFrom(a.First.User, a.First.Lib, a.FirstObs))
	res.Coverage.Merge(coverageFrom(a.Second.User, a.Second.Lib, a.SecondObs))
	res.Passes += 2
	return nil
}

// chaos places the subject under the fault-injection harness: every mutant
// of its serialized accelerated image must be rejected typed at load or
// run with output identical to the pristine interpreter.
func (o *OracleOptions) chaos(s *Subject, res *Result) error {
	user, lib, libSummaries, err := o.assemble(s)
	if err != nil {
		return err
	}
	ref, err := chaos.NewReferenceFromFiles(s.Name, user, lib, libSummaries, o.RunBudget)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(o.ChaosSeed))
	for i := 0; i < o.Chaos; i++ {
		op := chaos.Op(i % int(chaos.NumOps))
		mu, err := ref.Mutate(rng, op)
		if err != nil {
			return fmt.Errorf("mutant %d (%s): %w", i, op, err)
		}
		if _, err := ref.Check(mu, o.RunBudget); err != nil {
			return fmt.Errorf("mutant %d (%s): %w", i, op, err)
		}
		res.ChaosMutants++
	}
	return nil
}
