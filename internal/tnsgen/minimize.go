package tnsgen

// Keep is the minimizer's predicate: it must hold for the original program
// and stays true for every intermediate the minimizer adopts. For a
// divergence hunt, keep is "the oracle still fails"; for corpus banking,
// "the oracle passes and still exercises class X".
type Keep func(*Program) bool

// Minimize delta-debugs p down to a smaller program still satisfying keep.
// The unit of deletion is the statement chunk (every chunk is a balanced
// statement, so any subset still assembles): first whole procedure bodies
// are stubbed out, then chunks are removed one at a time, then the oracle
// directives are dropped, to a fixed point. If keep(p) does not hold, p is
// returned unchanged.
func Minimize(p *Program, keep Keep) *Program {
	if !keep(p) {
		return p
	}
	cur := p.Clone()
	try := func(v *Program) bool {
		if keep(v) {
			cur = v
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false

		// Stub out whole procedure bodies (the epilogue keeps the calling
		// convention valid, so callers are unaffected).
		for list := 0; list < 2; list++ {
			procs := cur.Procs
			if list == 1 {
				procs = cur.LibProcs
			}
			for pi := range procs {
				if len(procs[pi].Chunks) == 0 {
					continue
				}
				v := cur.Clone()
				if list == 1 {
					v.LibProcs[pi].Chunks = nil
				} else {
					v.Procs[pi].Chunks = nil
				}
				if try(v) {
					changed = true
				}
			}
		}

		// Remove chunks one at a time.
		for list := 0; list < 2; list++ {
			n := len(cur.Procs)
			if list == 1 {
				n = len(cur.LibProcs)
			}
			for pi := 0; pi < n; pi++ {
				for ci := 0; ; {
					procs := cur.Procs
					if list == 1 {
						procs = cur.LibProcs
					}
					if ci >= len(procs[pi].Chunks) {
						break
					}
					v := cur.Clone()
					tp := &v.Procs[pi]
					if list == 1 {
						tp = &v.LibProcs[pi]
					}
					tp.Chunks = append(tp.Chunks[:ci:ci], tp.Chunks[ci+1:]...)
					if try(v) {
						changed = true
					} else {
						ci++
					}
				}
			}
		}

		// Drop oracle directives that are no longer needed.
		if cur.WantBreak {
			v := cur.Clone()
			v.WantBreak = false
			if try(v) {
				changed = true
			}
		}
		if len(cur.Cold) > 0 {
			v := cur.Clone()
			v.Cold = nil
			if try(v) {
				changed = true
			}
		}
	}
	return cur
}
