// Package storetest exports the store.Storage contract test so every
// implementation — Dir, Sharded, and wrappers like the fault injector in
// internal/faultsim (which must be observationally identical to its inner
// store when its fault plan is empty) — proves the same guarantees:
//
//   - Put is atomic: a concurrent Get never observes a torn or partial
//     value — it sees some complete previously-Put value or ErrNotExist.
//   - In-flight temporaries are invisible: List never reports them and no
//     Get key ever resolves to one, even after a crash leaves one behind.
//   - Get/Put/Delete/Touch/List are safe for arbitrary concurrent use.
package storetest

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tnsr/internal/store"
)

// rooted and pathed are the optional raw-file surfaces the filesystem
// implementations (and forwarding wrappers) expose; the subtests that
// plant debris or backdate files need them and are skipped otherwise.
type rooted interface{ Roots() []string }

type pathed interface{ Path(key string) string }

// Contract runs the full Storage contract against the implementation
// open builds. Each subtest gets a fresh store.
func Contract(t *testing.T, open func(t *testing.T) store.Storage) {
	t.Run("roundtrip", func(t *testing.T) { testRoundTrip(t, open(t)) })
	t.Run("atomic-visibility", func(t *testing.T) { testAtomicVisibility(t, open(t)) })
	t.Run("torn-tmp-invisible", func(t *testing.T) { testTornTmpInvisible(t, open(t)) })
	t.Run("sweep-removes-debris", func(t *testing.T) { testSweepRemovesDebris(t, open(t)) })
	t.Run("touch-recency", func(t *testing.T) { testTouchRecency(t, open(t)) })
	t.Run("concurrent-mixed", func(t *testing.T) { testConcurrentMixed(t, open(t)) })
}

func testRoundTrip(t *testing.T, st store.Storage) {
	if _, err := st.Get("absent0123456789.tns"); !errors.Is(err, store.ErrNotExist) {
		t.Fatalf("Get absent: want ErrNotExist, got %v", err)
	}
	keys := []string{
		"00ff00ff00ff00ff.tns",      // hex prefix -> prefix routing
		"fedcba9876543210.pgo.json", // different shard
		"named-key_1.json",          // no hex prefix -> hash routing
	}
	for i, k := range keys {
		want := bytes.Repeat([]byte{byte(i + 1)}, 100*(i+1))
		if err := st.Put(k, want); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
		got, err := st.Get(k)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get %s: err %v, equal %v", k, err, bytes.Equal(got, want))
		}
	}
	ents, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(keys) {
		t.Fatalf("List: %d entries, want %d: %+v", len(ents), len(keys), ents)
	}
	for i := 1; i < len(ents); i++ {
		if ents[i-1].Key >= ents[i].Key {
			t.Fatalf("List not sorted: %q before %q", ents[i-1].Key, ents[i].Key)
		}
	}
	for _, e := range ents {
		if e.Size <= 0 || e.ModTime.IsZero() {
			t.Fatalf("List entry missing metadata: %+v", e)
		}
	}
	if err := st.Delete(keys[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := st.Delete(keys[0]); err != nil {
		t.Fatalf("Delete absent (must be benign): %v", err)
	}
	if _, err := st.Get(keys[0]); !errors.Is(err, store.ErrNotExist) {
		t.Fatalf("Get deleted: want ErrNotExist, got %v", err)
	}
	for _, bad := range []string{"", ".hidden", "a/b", "../escape", "nul\x00"} {
		if err := st.Put(bad, []byte("x")); err == nil {
			t.Fatalf("Put %q: want error", bad)
		}
		if _, err := st.Get(bad); err == nil || errors.Is(err, store.ErrNotExist) {
			t.Fatalf("Get %q: want a validation error, got %v", bad, err)
		}
	}
}

// testAtomicVisibility hammers one key with concurrent writers while readers
// poll: every read must see one writer's complete payload, never a mixture
// or a truncation.
func testAtomicVisibility(t *testing.T, st store.Storage) {
	const key = "00aabbccddeeff00.tns"
	const writers, rounds = 4, 25
	payload := func(w, r int) []byte {
		b := bytes.Repeat([]byte{byte(1 + w<<4 | r%16)}, 4096)
		return b
	}
	valid := func(b []byte) bool {
		if len(b) != 4096 || b[0] == 0 {
			return false
		}
		for _, c := range b {
			if c != b[0] {
				return false
			}
		}
		return true
	}
	if err := st.Put(key, payload(0, 0)); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := st.Get(key)
				if err != nil {
					errs <- fmt.Errorf("reader: %v", err)
					return
				}
				if !valid(got) {
					errs <- fmt.Errorf("reader saw torn value: len %d", len(got))
					return
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for r := 0; r < rounds; r++ {
				if err := st.Put(key, payload(w, r)); err != nil {
					errs <- fmt.Errorf("writer: %v", err)
					return
				}
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// plantDebris drops torn temporaries into every backing directory, in both
// the current (".tmp-*") and the legacy ("<name>.tmp") shapes, and returns
// how many files it wrote.
func plantDebris(t *testing.T, st store.Storage) int {
	r, ok := st.(rooted)
	if !ok {
		t.Skipf("%T exposes no Roots; cannot plant crash debris", st)
	}
	n := 0
	for _, dir := range r.Roots() {
		for _, name := range []string{".tmp-123456", "0123456789abcdef.tns.tmp"} {
			if err := os.WriteFile(filepath.Join(dir, name), []byte("to"), 0o666); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	return n
}

// testTornTmpInvisible plants the debris a crashed writer leaves behind and
// checks no read path ever surfaces it.
func testTornTmpInvisible(t *testing.T, st store.Storage) {
	if err := st.Put("0123456789abcdef.tns", []byte("real")); err != nil {
		t.Fatal(err)
	}
	plantDebris(t, st)
	ents, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Key != "0123456789abcdef.tns" {
		t.Fatalf("List surfaced a temporary: %+v", ents)
	}
	got, err := st.Get("0123456789abcdef.tns")
	if err != nil || string(got) != "real" {
		t.Fatalf("Get after planting temporaries: %q, %v", got, err)
	}
}

// testSweepRemovesDebris plants crash debris, sweeps, and checks the debris
// is gone while real entries survive.
func testSweepRemovesDebris(t *testing.T, st store.Storage) {
	if _, ok := st.(store.Sweeper); !ok {
		t.Skipf("%T is not a Sweeper", st)
	}
	if err := st.Put("0123456789abcdef.tns", []byte("real")); err != nil {
		t.Fatal(err)
	}
	planted := plantDebris(t, st)
	removed, err := store.Sweep(st)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if removed != planted {
		t.Fatalf("Sweep removed %d, planted %d", removed, planted)
	}
	for _, dir := range st.(rooted).Roots() {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if name := e.Name(); name != "0123456789abcdef.tns" {
				t.Fatalf("debris survived sweep: %q", name)
			}
		}
	}
	if got, err := st.Get("0123456789abcdef.tns"); err != nil || string(got) != "real" {
		t.Fatalf("real entry after sweep: %q, %v", got, err)
	}
	if removed, err := store.Sweep(st); err != nil || removed != 0 {
		t.Fatalf("second sweep: removed %d, err %v", removed, err)
	}
}

func testTouchRecency(t *testing.T, st store.Storage) {
	if err := st.Touch("0000000000000000.tns"); !errors.Is(err, store.ErrNotExist) {
		t.Fatalf("Touch absent: want ErrNotExist, got %v", err)
	}
	if err := st.Put("0000000000000000.tns", []byte("x")); err != nil {
		t.Fatal(err)
	}
	p, ok := st.(pathed)
	if !ok {
		t.Skipf("%T exposes no Path; cannot backdate", st)
	}
	// Backdate, then Touch must move ModTime forward again.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(p.Path("0000000000000000.tns"), old, old); err != nil {
		t.Fatal(err)
	}
	if err := st.Touch("0000000000000000.tns"); err != nil {
		t.Fatal(err)
	}
	ents, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || !ents[0].ModTime.After(old.Add(30*time.Minute)) {
		t.Fatalf("Touch did not refresh recency: %+v", ents)
	}
}

// testConcurrentMixed exercises every operation concurrently under -race:
// the assertions are weak (no torn reads, no unexpected errors) because the
// interleavings are arbitrary; the race detector is the real check.
func testConcurrentMixed(t *testing.T, st store.Storage) {
	keys := []string{"1111111111111111.tns", "2222222222222222.tns", "cccccccccccccccc.tns"}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				k := keys[(g+i)%len(keys)]
				switch i % 4 {
				case 0:
					if err := st.Put(k, bytes.Repeat([]byte{byte(g + 1)}, 512)); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := st.Get(k); err != nil && !errors.Is(err, store.ErrNotExist) {
						errs <- err
						return
					}
				case 2:
					if _, err := st.List(); err != nil {
						errs <- err
						return
					}
				case 3:
					if err := st.Touch(k); err != nil && !errors.Is(err, store.ErrNotExist) {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
