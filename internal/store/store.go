// Package store is the pluggable persistence layer under the fleet's
// content-addressed artifact stores: the retranslation cache (internal/tcache,
// whole accelerated codefiles keyed by core.Options.TransKey) and the profile
// service (internal/profsrv, pgo aggregates keyed by codefile fingerprint).
// Both stores used to own a directory directly; factoring the directory out
// behind Storage lets cache entries and profile aggregates shard across
// directories (or, later, an object-store backend) without either consumer
// changing.
//
// The contract every implementation must honor (and the contract test in
// store_test.go enforces against each one):
//
//   - Put is atomic: a concurrent Get never observes a torn or partial
//     value — it sees some complete previously-Put value or ErrNotExist.
//   - In-flight temporaries are invisible: List never reports them and no
//     Get key ever resolves to one, even after a crash leaves one behind.
//   - Get/Put/Delete/Touch/List are safe for arbitrary concurrent use.
//
// Durability beyond process crash (fsync) is implementation policy: the
// filesystem implementations sync file contents before rename, matching what
// profsrv's store always did.
package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// ErrNotExist is returned by Get and Touch for an absent key.
var ErrNotExist = errors.New("store: entry does not exist")

// Entry describes one stored value. ModTime is the recency signal Touch
// refreshes; tcache's LRU eviction orders on it.
type Entry struct {
	Key     string
	Size    int64
	ModTime time.Time
}

// Sweeper is the optional crash-recovery surface: Sweep removes the
// debris an interrupted atomic write leaves behind (in-flight temporaries
// that will never be renamed into place). The contract already makes that
// debris invisible to every read path; sweeping reclaims the space and is
// what a restarting daemon runs before serving. Both filesystem
// implementations are Sweepers.
type Sweeper interface {
	// Sweep deletes orphaned write temporaries and returns how many it
	// removed. It is meant for startup, before the store takes traffic: a
	// Sweep racing an in-flight Put can delete the Put's temporary out from
	// under it and fail that Put (harmlessly — the store stays consistent,
	// the writer just sees an error).
	Sweep() (removed int, err error)
}

// Sweep runs st's Sweep when it has one, and reports 0 otherwise — a
// daemon can call it unconditionally on any Storage.
func Sweep(st Storage) (int, error) {
	if sw, ok := st.(Sweeper); ok {
		return sw.Sweep()
	}
	return 0, nil
}

// Storage is a flat, atomic key→bytes store. Keys are restricted to
// [a-z A-Z 0-9 . _ -] and must not start with a dot, so every key is a safe
// single path component in the filesystem implementations.
type Storage interface {
	// Get returns the complete value for key, or ErrNotExist.
	Get(key string) ([]byte, error)
	// Put atomically replaces key's value. Readers see the old value or
	// the new one, never a mixture.
	Put(key string, data []byte) error
	// Delete removes key. Deleting an absent key is not an error (evictors
	// race benignly).
	Delete(key string) error
	// Touch refreshes key's recency (Entry.ModTime) without rewriting it.
	Touch(key string) error
	// List returns every stored entry with metadata, sorted by Key.
	// In-flight temporaries never appear.
	List() ([]Entry, error)
}

// ValidKey reports whether key is acceptable to every implementation: a
// non-empty name of safe characters that cannot escape the store directory
// or collide with a temporary.
func ValidKey(key string) bool {
	if key == "" || key[0] == '.' {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// tmpPrefix marks in-flight atomic writes. It starts with a dot, which
// ValidKey rejects, so a temporary can never shadow a real key; List skips
// dotfiles, so a crash-orphaned temporary is invisible forever.
const tmpPrefix = ".tmp-"

// Dir is the single-directory Storage: every key is one file, written via
// temp file + fsync + rename, the same discipline profsrv's store and tcache
// always used.
type Dir struct {
	dir string
}

// OpenDir opens (creating if needed) a directory-backed store.
func OpenDir(dir string) (*Dir, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Dir{dir: dir}, nil
}

// Root returns the backing directory.
func (d *Dir) Root() string { return d.dir }

// Roots returns the backing directories (one, for Dir). It exists so code
// that plants or inspects raw files — crash-recovery tests, fault
// injectors — can handle Dir and Sharded uniformly.
func (d *Dir) Roots() []string { return []string{d.dir} }

// Sweep removes crash debris: current-shape temporaries (".tmp-*") and
// legacy pre-refactor ones ("<name>.tmp"). Both are already invisible to
// Get/List; sweeping reclaims the space at daemon startup.
func (d *Dir) Sweep() (int, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	removed := 0
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !(strings.HasPrefix(name, tmpPrefix) || strings.HasSuffix(name, ".tmp")) {
			continue
		}
		err := os.Remove(filepath.Join(d.dir, name))
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return removed, fmt.Errorf("store: sweep: %w", err)
		}
		if err == nil {
			removed++
		}
	}
	return removed, nil
}

// Path returns the file a key resolves to. Exposed for tests and tooling
// that damage entries on purpose; normal access goes through Get/Put.
func (d *Dir) Path(key string) string { return filepath.Join(d.dir, key) }

func (d *Dir) Get(key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, fmt.Errorf("store: bad key %q", key)
	}
	data, err := os.ReadFile(d.Path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotExist
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

func (d *Dir) Put(key string, data []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: bad key %q", key)
	}
	f, err := os.CreateTemp(d.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, d.Path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func (d *Dir) Delete(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: bad key %q", key)
	}
	err := os.Remove(d.Path(key))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func (d *Dir) Touch(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: bad key %q", key)
	}
	now := time.Now()
	err := os.Chtimes(d.Path(key), now, now)
	if errors.Is(err, fs.ErrNotExist) {
		return ErrNotExist
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func (d *Dir) List() ([]Entry, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Entry
	for _, e := range ents {
		name := e.Name()
		// Dotfiles are in-flight temporaries (or foreign debris) and
		// legacy "<name>.tmp" files are pre-refactor torn writes; neither
		// is an entry.
		if !ValidKey(name) || strings.HasSuffix(name, ".tmp") || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			// Raced with a Delete; the entry is gone, not broken.
			continue
		}
		out = append(out, Entry{Key: name, Size: info.Size(), ModTime: info.ModTime()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
