package store_test

import (
	"testing"

	"tnsr/internal/store"
	"tnsr/internal/store/storetest"
)

// The contract itself lives in storetest so wrappers in other packages
// (the fault injector, notably) can run it too; this file only enumerates
// the implementations this package owns. A third backend adds itself here.
func TestStorageContract(t *testing.T) {
	impls := []struct {
		name string
		open func(t *testing.T) store.Storage
	}{
		{"dir", func(t *testing.T) store.Storage {
			d, err := store.OpenDir(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
		{"sharded-4", func(t *testing.T) store.Storage {
			s, err := store.OpenSharded(t.TempDir(), 4)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) { storetest.Contract(t, impl.open) })
	}
}
