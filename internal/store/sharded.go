package store

import (
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
)

// Sharded spreads keys across N directory stores by fingerprint prefix: the
// stores' keys (TransKeys and codefile fingerprints) are 16 lowercase hex
// digits, so the leading hex digits give a uniform, stable shard index with
// no extra state. A key without a hex prefix (none exist today) hashes
// instead, so the router is total.
//
// Sharding exists for deployment shape, not semantics: every Storage
// guarantee holds per key exactly as in Dir, and a Sharded store over N=1 is
// observationally identical to Dir. The contract test runs against both.
type Sharded struct {
	shards []*Dir
}

// OpenSharded opens (creating if needed) n directory shards under root,
// named shard-000 .. shard-(n-1).
func OpenSharded(root string, n int) (*Sharded, error) {
	if n <= 0 {
		return nil, fmt.Errorf("store: sharded: need at least 1 shard, got %d", n)
	}
	s := &Sharded{shards: make([]*Dir, n)}
	for i := range s.shards {
		d, err := OpenDir(filepath.Join(root, fmt.Sprintf("shard-%03d", i)))
		if err != nil {
			return nil, err
		}
		s.shards[i] = d
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Roots returns every shard's backing directory, in shard order.
func (s *Sharded) Roots() []string {
	roots := make([]string, len(s.shards))
	for i, d := range s.shards {
		roots[i] = d.Root()
	}
	return roots
}

// Path returns the file key resolves to (in whichever shard owns it).
// Exposed for tests and tooling that damage entries on purpose.
func (s *Sharded) Path(key string) string { return s.shardOf(key).Path(key) }

// Sweep removes crash debris from every shard.
func (s *Sharded) Sweep() (int, error) {
	total := 0
	for _, d := range s.shards {
		n, err := d.Sweep()
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// shardOf routes a key: the value of its leading hex digits (up to 8) modulo
// the shard count, falling back to FNV-1a for non-hex keys.
func (s *Sharded) shardOf(key string) *Dir {
	var v uint64
	digits := 0
	for i := 0; i < len(key) && digits < 8; i++ {
		c := key[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			i = len(key)
			continue
		}
		digits++
	}
	if digits == 0 {
		h := fnv.New32a()
		h.Write([]byte(key))
		v = uint64(h.Sum32())
	}
	return s.shards[v%uint64(len(s.shards))]
}

func (s *Sharded) Get(key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, fmt.Errorf("store: bad key %q", key)
	}
	return s.shardOf(key).Get(key)
}

func (s *Sharded) Put(key string, data []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: bad key %q", key)
	}
	return s.shardOf(key).Put(key, data)
}

func (s *Sharded) Delete(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: bad key %q", key)
	}
	return s.shardOf(key).Delete(key)
}

func (s *Sharded) Touch(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: bad key %q", key)
	}
	return s.shardOf(key).Touch(key)
}

func (s *Sharded) List() ([]Entry, error) {
	var out []Entry
	for _, d := range s.shards {
		ents, err := d.List()
		if err != nil {
			return nil, err
		}
		out = append(out, ents...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
