package xrun

import (
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/risc"
	"tnsr/internal/tnsasm"
)

const mixProg = `
GLOBALS 16
DATA 4: 0x6162 0x6364
MAIN main
PROC addup RESULT 1 ARGS 2
  LOAD L-4
  LOAD L-3
  ADD
  EXIT 2
ENDPROC
PROC main
  LDI 0
  STOR G+0
  LDI 5
  STOR G+1
loop:
  LOAD G+0
  ADDS 1
  STOR S-0
  LOAD G+1
  ADDS 1
  STOR S-0
  PCAL addup
  STOR G+0
  LDI 8
  LDI 12
  LDI 4
  MOVB
  LOAD G+1
  ADDI -1
  STOR G+1
  LOAD G+1
  BNZ loop
  LOAD G+0
  SVC 2
  EXIT 0
ENDPROC
`

func accelerated(t *testing.T, lvl codefile.AccelLevel) *Runner {
	t.Helper()
	f := tnsasm.MustAssemble("mix", mixProg)
	if err := core.Accelerate(f, core.Options{Level: lvl}); err != nil {
		t.Fatal(err)
	}
	r, err := New(f, nil, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestStoreSequenceFidelity verifies the paper's exact-store claim: the
// translated code "does exactly the same sequence of stores into memory"
// as the CISC code — checked store by store, in order, across modes.
func TestStoreSequenceFidelity(t *testing.T) {
	type st struct {
		addr uint16
		val  uint16
	}
	ref := tnsasm.MustAssemble("mix", mixProg)
	m := interp.New(ref, nil)
	var want []st
	m.StoreTrace = func(a, v uint16) { want = append(want, st{a, v}) }
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}

	for _, lvl := range []codefile.AccelLevel{
		codefile.LevelStmtDebug, codefile.LevelDefault, codefile.LevelFast,
	} {
		r := accelerated(t, lvl)
		var got []st
		r.Sim.StoreTrace = func(a uint32, v uint16) {
			got = append(got, st{uint16(a / 2), v})
		}
		r.Int.StoreTrace = func(a, v uint16) {
			got = append(got, st{a, v})
		}
		// Both traces observe only stores after construction (the initial
		// marker is built inside New in both cases), so the sequences are
		// directly comparable.
		if err := r.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d stores, interpreter did %d", lvl, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: store %d = (%d,%04x), want (%d,%04x)",
					lvl, i, got[i].addr, got[i].val, want[i].addr, want[i].val)
			}
		}
	}
}

func TestModeAccountingAndConsole(t *testing.T) {
	r := accelerated(t, codefile.LevelDefault)
	if err := r.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !r.Halted || r.Trap != 0 {
		t.Fatalf("halted=%v trap=%d", r.Halted, r.Trap)
	}
	if r.Console() != "15" {
		t.Errorf("console = %q, want 15", r.Console())
	}
	total, riscC, interC := r.Cycles()
	if total != riscC+interC {
		t.Error("cycle accounting does not add up")
	}
	if riscC == 0 {
		t.Error("no RISC cycles recorded")
	}
	if r.InterpFraction() != interC/total {
		t.Error("InterpFraction inconsistent")
	}
}

// TestSelectiveAcceleration exercises the paper's "future possibility of
// selectively accelerating just the most time-consuming subroutines":
// only "addup" is translated; main stays interpreted, and control bounces
// between modes at every call.
func TestSelectiveAcceleration(t *testing.T) {
	f := tnsasm.MustAssemble("mix", mixProg)
	opts := core.Options{
		Level:       codefile.LevelDefault,
		SelectProcs: map[string]bool{"addup": true},
	}
	if err := core.Accelerate(f, opts); err != nil {
		t.Fatal(err)
	}
	r, err := New(f, nil, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if r.Console() != "15" {
		t.Errorf("console = %q", r.Console())
	}
	if r.Switches == 0 {
		t.Error("expected mode switches between interpreted main and translated addup")
	}
	frac := r.InterpFraction()
	if frac == 0 || frac == 1 {
		t.Errorf("expected mixed execution, got fraction %.2f", frac)
	}
}

func TestTrapPropagation(t *testing.T) {
	src := `
GLOBALS 4
MAIN main
PROC main
  LDI 3
  STOR G+0
  LDI 1
  LDI 0
  DIV
  STOR G+1
  EXIT 0
ENDPROC
`
	f := tnsasm.MustAssemble("trap", src)
	if err := core.Accelerate(f, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	r, err := New(f, nil, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if r.Trap != 2 { // tns.TrapDivZero
		t.Errorf("trap = %d, want divide-by-zero", r.Trap)
	}
	// Stores before the trap landed.
	if r.Int.Mem[0] != 3 {
		t.Errorf("store before trap lost: %d", r.Int.Mem[0])
	}
}

func TestUnacceleratedRunsInterpreted(t *testing.T) {
	f := tnsasm.MustAssemble("mix", mixProg)
	r, err := New(f, nil, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if r.Console() != "15" {
		t.Errorf("console = %q", r.Console())
	}
	if r.Sim.Instrs != 0 {
		t.Error("unaccelerated program should never enter RISC mode")
	}
	if frac := r.InterpFraction(); frac != 1 {
		t.Errorf("interp fraction = %.2f, want 1", frac)
	}
}

func TestBreakpointRoundTrip(t *testing.T) {
	r := accelerated(t, codefile.LevelDefault)
	// Break at the PCAL return point inside the loop: the first mapped
	// register-exact address that is not a procedure entry.
	f := r.User
	entries := map[uint16]bool{}
	for _, p := range f.Procs {
		entries[p.Entry] = true
	}
	var bpAddr uint16
	var bpIdx int
	found := false
	for a := 0; a < len(f.Code); a++ {
		idx, re, ok := f.Accel.PMap.Lookup(uint16(a))
		if ok && re && !entries[uint16(a)] {
			bpAddr, bpIdx, found = uint16(a), idx, true
			break
		}
	}
	if !found {
		t.Fatal("no register-exact point to break on")
	}
	r.Sim.Breakpoints = map[uint32]bool{uint32(bpIdx): true}
	r.TNSBreaks = map[uint32]bool{uint32(bpAddr): true}
	hits := 0
	for i := 0; i < 10 && !r.Halted; i++ {
		if err := r.Continue(1_000_000); err != nil {
			t.Fatal(err)
		}
		if !r.BPHit {
			break
		}
		hits++
		if r.BPAddr != bpAddr {
			t.Fatalf("hit at %d, want %d", r.BPAddr, bpAddr)
		}
	}
	if hits != 5 {
		t.Errorf("breakpoint hit %d times, want 5 (loop iterations)", hits)
	}
	if !r.Halted {
		if err := r.Continue(1_000_000); err != nil {
			t.Fatal(err)
		}
	}
	if r.Console() != "15" {
		t.Errorf("console after breakpoints = %q", r.Console())
	}
}
