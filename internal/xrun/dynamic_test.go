package xrun

import (
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/interp"
	"tnsr/internal/talc"
)

const dynProg = `
INT total;
INT PROC work(n); INT n;
BEGIN
  INT i; INT s;
  s := 0;
  FOR i := 1 TO n DO s := s + i \ 7;
  RETURN s;
END;
PROC main MAIN;
BEGIN
  INT r;
  total := 0;
  FOR r := 1 TO @RUNS@ DO total := (total + work(60)) LAND 16383;
  PUTNUM(total);
END;
`

func buildDyn(t *testing.T, runs int) *codefile.File {
	t.Helper()
	src := ""
	for _, line := range []byte(dynProg) {
		src += string(line)
	}
	src = replaceRuns(src, runs)
	f, err := talc.Compile("dyn", src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func replaceRuns(s string, runs int) string {
	out := ""
	i := 0
	for i < len(s) {
		if i+6 <= len(s) && s[i:i+6] == "@RUNS@" {
			out += itoa(runs)
			i += 6
			continue
		}
		out += string(s[i])
		i++
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	digits := ""
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return digits
}

func TestDynamicTranslationCorrectness(t *testing.T) {
	// Reference: interpret.
	ref := buildDyn(t, 30)
	mRef := interp.New(ref, nil)
	if err := mRef.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	want := mRef.Console.String()

	f := buildDyn(t, 30)
	res, err := RunDynamic(f, nil, 5, codefile.LevelDefault, 4, 500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.Trap != 0 {
		t.Fatalf("halted=%v trap=%d", res.Halted, res.Trap)
	}
	if res.Console != want {
		t.Errorf("console %q, want %q", res.Console, want)
	}
	if res.Retranslations == 0 {
		t.Error("expected a hand-off to translated code")
	}
	if len(res.HotProcs) == 0 {
		t.Error("no procedures got hot")
	}
	if res.InterpCycles == 0 || res.RunnerCycles == 0 || res.TranslateCycles == 0 {
		t.Errorf("incomplete breakdown: %+v", res)
	}
}

// TestStaticVsDynamicCrossover reproduces the rationale the paper gives for
// choosing static translation: for short runs, lazy translation wins (it
// translates only what gets hot and skips cold code entirely); for long
// runs — Tandem's "months-long execution of a few applications" — the
// up-front static translation is amortized and pure translated speed wins.
func TestStaticVsDynamicCrossover(t *testing.T) {
	cost := func(runs int) (static, dynamic float64) {
		fs := buildDyn(t, runs)
		runC, transC, _, err := StaticCost(fs, nil, codefile.LevelDefault, 2_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		fd := buildDyn(t, runs)
		res, err := RunDynamic(fd, nil, 5, codefile.LevelDefault, 4, 2_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return runC + transC, res.Total()
	}
	sShort, dShort := cost(2)
	sLong, dLong := cost(2500)
	t.Logf("short run: static %.0f vs dynamic %.0f cycles", sShort, dShort)
	t.Logf("long run:  static %.0f vs dynamic %.0f cycles", sLong, dLong)
	if dShort >= sShort {
		t.Errorf("short runs should favor dynamic translation (%.0f vs %.0f)", dShort, sShort)
	}
	if sLong >= dLong {
		t.Errorf("long runs should favor static translation (%.0f vs %.0f)", sLong, dLong)
	}
}
