// Package xrun executes accelerated codefiles the way a TNS/R machine does:
// translated RISC code at full speed, with automatic switches into the TNS
// interpreter at puzzle points and automatic recovery back into RISC code at
// the next call or return that finds a register-exact point in the PMap. It
// builds the runtime image (millicode, translated code, packed PMaps, EMaps),
// mediates the BREAK/SYSCALL protocol, and accounts cycles separately per
// execution mode so "time spent in interpreter mode" is measurable, as in
// the paper.
package xrun

import (
	"fmt"
	"sort"

	"tnsr/internal/backend"
	"tnsr/internal/backend/mips"
	_ "tnsr/internal/backend/ob0" // register the second target for ByID/ByName
	"tnsr/internal/codefile"
	"tnsr/internal/interp"
	"tnsr/internal/machine"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/risc"
	"tnsr/internal/tns"
)

// SwitchPenalty is the RISC cycle cost charged per execution-mode switch
// (state packing and dispatch into or out of the interpreter loop).
const SwitchPenalty = 40

// DefaultQuarantineThreshold is the number of rolled-back trap storms one
// procedure's translation is allowed before the procedure is demoted to
// interpreter-only execution for the rest of the run.
const DefaultQuarantineThreshold = 3

// Runner executes a user codefile (optionally with a system library) in
// mixed mode.
type Runner struct {
	User *codefile.File
	Lib  *codefile.File

	// Sim is the shared simulator state (registers, memory, code image,
	// stop/breakpoint protocol) of whichever backend the accelerated
	// sections were encoded for; sim is the backend simulator driving it.
	Sim *backend.CPU
	Int *interp.Machine

	// Mode accounting.
	InterludeProf interp.Profile // instructions interpreted in fallback mode
	Interludes    int            // interpreter episodes
	Switches      int            // total mode switches (both directions)
	// FallbackAt counts interpreter entries by (space<<16 | TNS address),
	// for diagnosing puzzle hot spots.
	FallbackAt map[uint32]int

	Halted     bool
	ExitStatus uint16
	Trap       int
	TrapP      uint16

	// Breakpoint support for the debugger: TNSBreaks keys are
	// space<<16 | TNS address; a hit stops Run with BPHit set.
	TNSBreaks map[uint32]bool
	BPHit     bool
	BPSpace   interp.Space
	BPAddr    uint16

	// Obs, when attached via Observe, receives every mode transition with
	// a typed escape reason, plus PMap probe results. Nil costs one
	// comparison at each transition site (the per-instruction hooks live
	// in interp.Machine and risc.Sim).
	Obs *obs.Recorder

	// PGO, when attached via Capture, receives the dynamic RP at every
	// fired run-time guard (failed return-point checks and refused
	// re-entries) — the raw material of profile-guided retranslation. Nil
	// costs one comparison per transition site.
	PGO *pgo.Capture

	// Degradation state. Degraded is set when an acceleration section
	// failed codefile verification at New time and the affected space
	// runs fully interpreted; DegradedReason carries the typed detail.
	Degraded       bool
	DegradedReason string

	// QuarantineThreshold is the number of unexpected-trap rollbacks one
	// procedure's translation may cause before the procedure is demoted
	// to interpreter-only (<= 0 means DefaultQuarantineThreshold).
	QuarantineThreshold int

	// RollbackLog records recent rollback diagnostics (capped).
	RollbackLog []string

	accel    [2]*codefile.AccelSection // verified sections by space; nil = unusable
	degraded [2]bool                   // space's section failed Verify

	quarTraps   map[uint32]int64 // quarKey -> rolled-back traps
	quarantined map[uint32]bool  // quarKey -> demoted to interpreter-only

	// Rollback anchor: the interpreter state at the last RISC entry is
	// still live in r.Int (RISC episodes never write the interpreter),
	// so abandoning an episode only needs these bookkeeping values.
	entrySpace   interp.Space
	entryAddr    uint16
	entryProc    int // proc index containing entryAddr, -1 if unknown
	entryConsole int // console length at entry: output since = irreversible

	inRISC  bool
	skipBP  bool
	cfg     risc.Config
	be      backend.Backend
	sim     backend.Sim
	noEnter obs.EscapeReason // why the last enterRISCIfMapped refused
}

// quarKey packs a quarantine map key: space in the top bit, proc index
// below (-1 saturates, so unattributed entries still share one counter).
func quarKey(space interp.Space, proc int) uint32 {
	return uint32(space&1)<<31 | (uint32(proc) & 0x7FFFFFFF)
}

// New builds the runtime image. Either or both codefiles may be
// accelerated; unaccelerated files simply run interpreted. An acceleration
// section that fails structural verification is dropped rather than
// failing the load — the CISC image is intact and authoritative, so the
// affected space runs fully interpreted (Degraded is set and every refused
// re-entry is classified obs.EscapeQuarantined).
func New(user, lib *codefile.File, cfg risc.Config) (*Runner, error) {
	r := &Runner{User: user, Lib: lib, cfg: cfg,
		QuarantineThreshold: DefaultQuarantineThreshold}

	if user.Accel != nil {
		if err := user.Accel.Verify(user, millicode.UserCodeBase); err != nil {
			r.setDegraded("user", err)
		} else {
			r.accel[0] = user.Accel
		}
	}
	if lib != nil && lib.Accel != nil {
		if err := lib.Accel.Verify(lib, millicode.LibCodeBase); err != nil {
			r.setDegraded("lib", err)
		} else {
			r.accel[1] = lib.Accel
		}
	}

	// Resolve the target backend from the sections' identity tags. A
	// section for an unregistered target is refused exactly like one
	// that fails structural verification; when user and library name
	// different targets the library is dropped (one simulator drives
	// both spaces). With no accelerated sections the MIPS default
	// stands, timing-configured by cfg.
	for space, i := range map[string]int{"user": 0, "lib": 1} {
		a := r.accel[i]
		if a == nil {
			continue
		}
		if _, ok := backend.ByID(a.BackendID); !ok {
			r.setDegraded(space, fmt.Errorf("xrun: unknown backend ID %d", a.BackendID))
			r.accel[i] = nil
		}
	}
	if r.accel[0] != nil && r.accel[1] != nil &&
		r.accel[0].BackendID != r.accel[1].BackendID {
		r.setDegraded("lib", fmt.Errorf("xrun: backend mismatch: user ID %d, lib ID %d",
			r.accel[0].BackendID, r.accel[1].BackendID))
		r.accel[1] = nil
	}
	r.be = mips.New(cfg)
	for i := 0; i < 2; i++ {
		if r.accel[i] != nil && r.accel[i].BackendID != mips.BackendID {
			r.be, _ = backend.ByID(r.accel[i].BackendID)
			break
		}
	}

	milli, _ := r.be.Millicode()
	codeLen := millicode.UserCodeBase
	if r.accel[0] != nil {
		codeLen = millicode.UserCodeBase + len(r.accel[0].RISC)
	}
	if r.accel[1] != nil {
		codeLen = millicode.LibCodeBase + len(r.accel[1].RISC)
	}
	code := make([]uint32, codeLen)
	copy(code, milli)
	if r.accel[0] != nil {
		copy(code[millicode.UserCodeBase:], r.accel[0].RISC)
	}
	if r.accel[1] != nil {
		copy(code[millicode.LibCodeBase:], r.accel[1].RISC)
	}

	r.sim = r.be.NewSim(code, millicode.MemBytes)
	r.Sim = r.sim.Core()
	r.Int = interp.New(user, lib)
	r.Sim.OnSyscall = r.onSyscall

	// Lay out the runtime tables.
	next := uint32(millicode.TableArea)
	place := func(b []byte) uint32 {
		addr := next
		copy(r.Sim.Mem[addr:], b)
		next = (addr + uint32(len(b)) + 3) &^ 3
		return addr
	}
	writePtr := func(at, v uint32) { r.Sim.WriteWord(at, v) }

	if r.accel[0] != nil {
		pm := r.accel[0].PMap.Pack()
		pmAddr := place(pm)
		writePtr(millicode.PtrUserPMapBase, pmAddr+4)
		writePtr(millicode.PtrUserPMapOff, pmAddr+4+4*uint32(beU32(pm, 0)))
		writePtr(millicode.PtrUserEMap, place(packEMap(r.accel[0].Entries)))
	}
	if r.accel[1] != nil {
		pm := r.accel[1].PMap.Pack()
		pmAddr := place(pm)
		writePtr(millicode.PtrLibPMapBase, pmAddr+4)
		writePtr(millicode.PtrLibPMapOff, pmAddr+4+4*uint32(beU32(pm, 0)))
		writePtr(millicode.PtrLibEMap, place(packEMap(r.accel[1].Entries)))
	}

	// Fence the pointer words and the packed tables against simulated
	// stores: damaged translated code must not be able to rewrite the
	// structures the recovery path depends on.
	r.Sim.ProtectedLo = millicode.PtrArea
	r.Sim.ProtectedHi = next

	// Mirror the interpreter's initial data image into RISC memory.
	r.syncMemToSim()
	r.inRISC = false
	return r, nil
}

// Backend returns the target the runner resolved from the acceleration
// sections' identity tags (the MIPS default when nothing is accelerated).
func (r *Runner) Backend() backend.Backend { return r.be }

// BackendSim returns the backend simulator driving r.Sim. Callers wanting
// target-specific pipeline detail (stall and cache counters, special
// registers) type-assert its concrete type; everything target-independent
// is on r.Sim itself.
func (r *Runner) BackendSim() backend.Sim { return r.sim }

// setDegraded records a failed section verification; the space runs
// interpreted for the whole run.
func (r *Runner) setDegraded(space string, err error) {
	idx := 0
	if space == "lib" {
		idx = 1
	}
	r.degraded[idx] = true
	r.Degraded = true
	if r.DegradedReason != "" {
		r.DegradedReason += "; "
	}
	r.DegradedReason += space + ": " + err.Error()
}

func beU32(b []byte, off int) uint32 {
	return uint32(b[off])<<24 | uint32(b[off+1])<<16 |
		uint32(b[off+2])<<8 | uint32(b[off+3])
}

// packEMap serializes the PEP -> RISC entry map as big-endian byte
// addresses (0 for untranslated procedures).
func packEMap(entries []int32) []byte {
	out := make([]byte, 4*len(entries))
	for i, e := range entries {
		var v uint32
		if e >= 0 {
			v = uint32(e) << 2
		}
		out[i*4] = byte(v >> 24)
		out[i*4+1] = byte(v >> 16)
		out[i*4+2] = byte(v >> 8)
		out[i*4+3] = byte(v)
	}
	return out
}

// syncMemToSim copies the interpreter's data space into simulator memory.
func (r *Runner) syncMemToSim() {
	for i, w := range r.Int.Mem {
		r.Sim.Mem[2*i] = byte(w >> 8)
		r.Sim.Mem[2*i+1] = byte(w)
	}
}

// syncMemToInt copies simulator data space back into the interpreter.
func (r *Runner) syncMemToInt() {
	for i := range r.Int.Mem {
		r.Int.Mem[i] = uint16(r.Sim.Mem[2*i])<<8 | uint16(r.Sim.Mem[2*i+1])
	}
}

// accelOf returns the verified acceleration section for a code space, or
// nil (no section, or one that failed verification at New time).
func (r *Runner) accelOf(space interp.Space) *codefile.AccelSection {
	return r.accel[space&1]
}

// enterRISCIfMapped checks whether the interpreter's current position is a
// register-exact point and, if so, switches to RISC execution. When it
// refuses, r.noEnter records why (read by the initial-interlude telemetry).
func (r *Runner) enterRISCIfMapped() bool {
	acc := r.accelOf(r.Int.Space)
	if acc == nil {
		if r.degraded[r.Int.Space&1] {
			r.noEnter = obs.EscapeQuarantined
		} else {
			r.noEnter = obs.EscapeUntranslated
		}
		return false
	}
	// Quarantined procedures stay interpreted for the rest of the run.
	proc := -1
	if f := r.Int.CodeFile(r.Int.Space); f != nil {
		proc = f.ProcContaining(r.Int.P)
	}
	if r.quarantined[quarKey(r.Int.Space, proc)] {
		r.noEnter = obs.EscapeQuarantined
		return false
	}
	idx, regExact, ok := acc.PMap.Lookup(r.Int.P)
	if r.Obs != nil {
		r.Obs.PMapLookup(ok && regExact)
	}
	if !ok || !regExact {
		r.noEnter = obs.EscapeUnmapped
		return false
	}
	// The translated code at this point assumes a specific RP; a wrong
	// result-size guess upstream can leave the dynamic RP different, in
	// which case execution must stay interpreted.
	if int(r.Int.P) < len(acc.ExpectedRP) {
		if exp := acc.ExpectedRP[r.Int.P]; exp != 0xFF && exp != r.Int.RP {
			r.noEnter = obs.EscapeRPConflict
			if r.PGO != nil {
				r.PGO.EscapeRP(uint8(r.Int.Space), r.Int.P, r.Int.RP)
			}
			return false
		}
	}
	// Anchor the rollback point: the interpreter keeps the exact
	// architectural state of this instant for the whole RISC episode.
	r.entrySpace = r.Int.Space
	r.entryAddr = r.Int.P
	r.entryProc = proc
	r.entryConsole = r.Int.Console.Len()

	r.loadSimFromInt()
	r.sim.ResumeAt(uint32(idx))
	r.Sim.Cycles += SwitchPenalty
	r.Switches++
	r.inRISC = true
	if r.Obs != nil {
		r.Obs.EnterRISC()
	}
	return true
}

// loadSimFromInt transfers architectural state interpreter -> simulator.
func (r *Runner) loadSimFromInt() {
	r.syncMemToSim()
	m := r.Int
	s := r.Sim
	for i := 0; i < 8; i++ {
		s.Reg[risc.RegR0+i] = uint32(int32(int16(m.R[i])))
	}
	s.Reg[risc.RegDB] = 0
	s.Reg[risc.RegL] = uint32(m.L) * 2
	s.Reg[risc.RegS] = uint32(m.S) * 2
	s.Reg[risc.RegCC] = uint32(int32(m.CC))
	s.Reg[risc.RegK] = 0
	s.Reg[risc.RegV] = 0
	s.Reg[risc.RegENV] = uint32(packENV(m))
}

func packENV(m *interp.Machine) uint16 {
	return interp.PackENV(m.RP, m.T, m.Space)
}

// loadIntFromSim transfers architectural state simulator -> interpreter,
// resuming interpretation at TNS address p in the space given by $env.
func (r *Runner) loadIntFromSim(p uint16) {
	r.syncMemToInt()
	m := r.Int
	s := r.Sim
	for i := 0; i < 8; i++ {
		m.R[i] = uint16(s.Reg[risc.RegR0+i])
	}
	env := uint16(s.Reg[risc.RegENV])
	m.RP = uint8(env & 7)
	m.T = env&0x80 != 0
	m.Space = interp.UnpackENVSpace(env)
	m.L = uint16(s.Reg[risc.RegL] / 2)
	m.S = uint16(s.Reg[risc.RegS] / 2)
	cc := int32(s.Reg[risc.RegCC])
	switch {
	case cc < 0:
		m.CC = -1
	case cc > 0:
		m.CC = 1
	default:
		m.CC = 0
	}
	m.K, m.V = false, false
	m.P = p
}

// Run executes until the program halts or the instruction budget (summed
// over both modes) is exhausted.
func (r *Runner) Run(maxInstrs int64) error {
	// Start in RISC mode if the main entry is register-exact.
	if !r.inRISC {
		if !r.enterRISCIfMapped() {
			r.Interludes++ // the program begins interpreted
			if r.Obs != nil {
				r.Obs.Escape(uint8(r.Int.Space), r.Int.P, r.noEnter, true)
			}
		}
	}
	for !r.Halted && !r.BPHit {
		spent := r.Sim.Instrs + r.InterludeProf.Instrs
		if maxInstrs > 0 && spent >= maxInstrs {
			return fmt.Errorf("xrun: exceeded %d instructions", maxInstrs)
		}
		if r.inRISC {
			if err := r.runRISC(maxInstrs); err != nil {
				return err
			}
		} else {
			r.runInterp(maxInstrs)
		}
	}
	return nil
}

// Continue resumes after a breakpoint hit.
func (r *Runner) Continue(maxInstrs int64) error {
	if r.BPHit {
		r.BPHit = false
		if r.inRISC {
			r.sim.ResumeAt(r.Sim.PC)
		} else {
			r.skipBP = true
		}
	}
	return r.Run(maxInstrs)
}

// InRISCMode reports the current execution mode.
func (r *Runner) InRISCMode() bool { return r.inRISC }

// ArmBreak arms a breakpoint at a TNS address in the given code space
// (0 = user, 1 = lib) for both execution modes: the interpreter-side check
// always, and the RISC-side breakpoint when the address is a mapped point
// of a loaded translation. It reports whether the RISC side was armed;
// unmapped addresses still break under interpretation.
func (r *Runner) ArmBreak(space uint8, addr uint16) bool {
	if r.TNSBreaks == nil {
		r.TNSBreaks = map[uint32]bool{}
	}
	r.TNSBreaks[uint32(space&1)<<16|uint32(addr)] = true
	f := r.User
	if space&1 == 1 {
		f = r.Lib
	}
	if f == nil || f.Accel == nil {
		return false
	}
	idx, _, ok := f.Accel.PMap.Lookup(addr)
	if !ok {
		return false
	}
	if r.Sim.Breakpoints == nil {
		r.Sim.Breakpoints = map[uint32]bool{}
	}
	r.Sim.Breakpoints[uint32(idx)] = true
	return true
}

func (r *Runner) runRISC(maxInstrs int64) error {
	budget := int64(0)
	if maxInstrs > 0 {
		budget = maxInstrs - r.Sim.Instrs - r.InterludeProf.Instrs + 16
	}
	if err := r.sim.Run(budget); err != nil {
		return err
	}
	s := r.Sim
	switch {
	case s.BPHit:
		r.BPHit = true
		r.BPSpace = interp.UnpackENVSpace(uint16(s.Reg[risc.RegENV]))
		if acc := r.accelOf(r.BPSpace); acc != nil {
			if a, ok := acc.PMap.Inverse(int(s.PC)); ok {
				r.BPAddr = a
			}
		}
		if r.Obs != nil {
			r.Obs.Escape(uint8(r.BPSpace), r.BPAddr, obs.EscapeBreakpoint, false)
		}
		return nil
	case s.Trap == risc.TrapOverflow:
		// A hardware-trapping add fired: translated code only uses them
		// when overflow traps are statically enabled, so this is the TNS
		// overflow trap. The PMap inverse gives the nearest TNS address.
		r.Halted = true
		r.Trap = tns.TrapOverflow
		space := interp.UnpackENVSpace(uint16(s.Reg[risc.RegENV]))
		if acc := r.accelOf(space); acc != nil {
			if a, ok := acc.PMap.Inverse(int(s.TrapPC)); ok {
				r.TrapP = a
			}
		}
		if r.Obs != nil {
			r.Obs.Escape(uint8(space), r.TrapP, obs.EscapeTrap, false)
		}
		r.syncMemToInt()
	case s.Trap != risc.TrapNone:
		// Raw simulator trap: correct translated code stays inside the
		// data space, so this is damage — corrupt RISC words, a fenced
		// store into the runtime tables — not TNS semantics. Roll the
		// episode back to its interpreter entry state and re-run it
		// interpreted; a procedure that storms repeatedly is
		// quarantined. Only when rollback is impossible (console output
		// already escaped) does the run halt.
		if r.rollback(fmt.Sprintf("risc trap %d at pc %d", s.Trap, s.TrapPC)) {
			return nil
		}
		r.Halted = true
		r.Trap = tns.TrapAddress
		r.TrapP = 0
		if r.Obs != nil {
			r.Obs.Escape(uint8(r.Int.Space), 0, obs.EscapeTrap, false)
		}
		r.syncMemToInt()
	case s.BreakCode == millicode.BreakHalt:
		r.Halted = true
		r.ExitStatus = r.Int.ExitStatus
		r.syncMemToInt()
	case s.BreakCode == millicode.BreakFallback:
		p := uint16(s.Reg[risc.RegMT])
		if r.FallbackAt == nil {
			r.FallbackAt = map[uint32]int{}
		}
		spaceBit := uint32(s.Reg[risc.RegENV]) & 0x100
		r.FallbackAt[spaceBit<<8|uint32(p)]++
		if r.Obs != nil {
			space := interp.UnpackENVSpace(uint16(s.Reg[risc.RegENV]))
			r.Obs.Escape(uint8(space), p, r.fallbackReason(space, p), true)
		}
		if r.PGO != nil {
			// The dynamic RP that contradicted the static assumption is in
			// $env, which translated code keeps synchronized at every
			// canonicalized point (including fallback stubs).
			space := interp.UnpackENVSpace(uint16(s.Reg[risc.RegENV]))
			r.PGO.EscapeRP(uint8(space), p, uint8(s.Reg[risc.RegENV]&7))
		}
		r.loadIntFromSim(p)
		r.Sim.Cycles += SwitchPenalty
		r.Switches++
		r.Interludes++
		r.inRISC = false
	case s.BreakCode >= millicode.BreakTrapBase:
		r.Halted = true
		r.Trap = int(s.BreakCode) - millicode.BreakTrapBase
		r.TrapP = uint16(s.Reg[risc.RegMT])
		if r.Obs != nil {
			r.Obs.Escape(uint8(r.Int.Space), r.TrapP, obs.EscapeTrap, false)
		}
		r.syncMemToInt()
	default:
		if r.rollback(fmt.Sprintf("unexpected break %d at pc %d", s.BreakCode, s.PC)) {
			return nil
		}
		return fmt.Errorf("xrun: unexpected break %d at %d", s.BreakCode, s.PC)
	}
	return nil
}

// rollback abandons the current RISC episode after an unexpected trap or
// break. It is sound because the interpreter still holds the exact
// architectural state from the episode's entry point: memory is copied
// into the simulator at entry and the interpreter is never written during
// RISC execution. The one irreversible side effect is console output
// (onSyscall writes it directly), so an episode that already printed
// cannot be re-run and rollback reports false.
//
// Every rollback counts against the procedure the episode entered through
// (the entry procedure, not the trapping PC: RISC-internal direct calls
// bypass entry checks, and quarantining the entry path is what guarantees
// the storm cannot recur). At QuarantineThreshold the procedure is demoted
// to interpreter-only for the rest of the run, which bounds the total
// number of rollbacks and guarantees forward progress.
func (r *Runner) rollback(detail string) bool {
	if r.Int.Console.Len() != r.entryConsole {
		return false
	}
	if r.quarTraps == nil {
		r.quarTraps = map[uint32]int64{}
		r.quarantined = map[uint32]bool{}
	}
	key := quarKey(r.entrySpace, r.entryProc)
	r.quarTraps[key]++
	thr := r.QuarantineThreshold
	if thr <= 0 {
		thr = DefaultQuarantineThreshold
	}
	if r.quarTraps[key] >= int64(thr) {
		r.quarantined[key] = true
	}
	if len(r.RollbackLog) < 32 {
		r.RollbackLog = append(r.RollbackLog, fmt.Sprintf("%s/%s: %s",
			spaceName(r.entrySpace), r.procName(r.entrySpace, r.entryProc), detail))
	}
	if r.Obs != nil {
		r.Obs.Escape(uint8(r.entrySpace), r.entryAddr, obs.EscapeQuarantined, true)
	}
	// Discard the simulator episode; the interpreter resumes at the
	// entry point (its state was never touched). Simulator data memory
	// is re-mirrored on the next RISC entry.
	r.Sim.Cycles += SwitchPenalty
	r.Switches++
	r.Interludes++
	r.inRISC = false
	return true
}

var spaceNames = [2]string{"user", "lib"}

func spaceName(space interp.Space) string { return spaceNames[space&1] }

// procName resolves a procedure index in a space to its name.
func (r *Runner) procName(space interp.Space, proc int) string {
	f := r.Int.CodeFile(space)
	if f == nil || proc < 0 || proc >= len(f.Procs) {
		return "(unknown)"
	}
	return f.Procs[proc].Name
}

// fallbackReason classifies a BreakFallback escape at TNS address p. The
// translator recorded a static reason for every fallback it emitted
// (FallbackWhy); the remaining fallbacks come from millicode EXIT landing
// on a return point absent from the packed PMap, which only drops
// non-register-exact points — hence Unmapped. Unknown should never occur
// (the differential tests assert this).
func (r *Runner) fallbackReason(space interp.Space, p uint16) obs.EscapeReason {
	acc := r.accelOf(space)
	if acc == nil {
		return obs.EscapeUntranslated
	}
	if w, ok := acc.FallbackWhy[p]; ok {
		return obs.EscapeReason(w)
	}
	if _, regExact, ok := acc.PMap.Lookup(p); !ok || !regExact {
		return obs.EscapeUnmapped
	}
	return obs.EscapeUnknown
}

func (r *Runner) runInterp(maxInstrs int64) {
	m := r.Int
	before := m.Prof
	for !m.Halted {
		if maxInstrs > 0 &&
			r.Sim.Instrs+r.InterludeProf.Instrs+(m.Prof.Instrs-before.Instrs) >= maxInstrs {
			break
		}
		if r.TNSBreaks != nil && !r.skipBP &&
			r.TNSBreaks[uint32(m.Space)<<16|uint32(m.P)] {
			r.BPHit = true
			r.BPSpace = m.Space
			r.BPAddr = m.P
			delta := m.Prof.Sub(&before)
			r.InterludeProf.Add(&delta)
			return
		}
		r.skipBP = false
		kind := m.Step()
		if kind == interp.TransferCall || kind == interp.TransferExit {
			// The paper's recovery rule: return to accelerated code at
			// the next call or return that finds a register-exact point.
			if !m.Halted {
				delta := m.Prof.Sub(&before)
				r.InterludeProf.Add(&delta)
				before = m.Prof
				if r.enterRISCIfMapped() {
					return
				}
			}
		}
	}
	delta := m.Prof.Sub(&before)
	r.InterludeProf.Add(&delta)
	if m.Halted {
		r.Halted = true
		r.ExitStatus = m.ExitStatus
		r.Trap = m.Trap
		r.TrapP = m.TrapP
	}
}

func (r *Runner) onSyscall(s *backend.CPU, code uint32) {
	m := r.Int
	switch uint8(code) {
	case tns.SvcHalt:
		m.ExitStatus = uint16(s.Reg[risc.RegMT])
		r.Halted = true
		s.Stopped = true
		s.BreakCode = millicode.BreakHalt
	case tns.SvcPutchar:
		m.Console.WriteByte(byte(s.Reg[risc.RegMT]))
	case tns.SvcPutnum:
		fmt.Fprintf(&m.Console, "%d", int16(s.Reg[risc.RegMT]))
	case tns.SvcPuts:
		ba := s.Reg[risc.RegMT] & 0xFFFF
		n := s.Reg[risc.RegRA] & 0xFFFF
		for i := uint32(0); i < n; i++ {
			m.Console.WriteByte(s.Mem[ba+i])
		}
	}
}

// AdoptInterpreter replaces the runner's interpreter with an existing
// machine mid-execution (dynamic translation hands a running interpreted
// program over to freshly translated code). The machine's memory becomes
// authoritative.
func (r *Runner) AdoptInterpreter(m *interp.Machine) {
	if r.Obs != nil {
		m.Obs = r.Obs
	}
	if r.PGO != nil {
		m.PGO = r.PGO
	}
	r.Int = m
	r.Sim.OnSyscall = r.onSyscall
	r.syncMemToSim()
	r.inRISC = false
}

// Observe attaches rec to every layer of the runner: the interpreter and
// simulator per-instruction hooks, the mode-transition sites, and the
// proc-attribution tables for both code spaces. Call it once, before Run.
func (r *Runner) Observe(rec *obs.Recorder) {
	// Attribution must describe the image actually built: a section that
	// failed verification was never loaded, so present its file accel-less.
	user, lib := r.User, r.Lib
	if r.degraded[0] {
		u := *user
		u.Accel = nil
		user = &u
	}
	if lib != nil && r.degraded[1] {
		l := *lib
		l.Accel = nil
		lib = &l
	}
	rec.AttachRuntime(user, lib, len(r.Sim.Code),
		millicode.UserCodeBase, millicode.LibCodeBase)
	r.Obs = rec
	r.Int.Obs = rec
	r.Sim.OnInstr = rec.RISCStep
}

// Capture attaches a PGO capture to the runner and its interpreter, and
// binds it to the run's codefiles for attribution and fingerprint stamping.
// Call it once, before Run; compose freely with Observe.
func (r *Runner) Capture(c *pgo.Capture) {
	c.AttachFiles(r.User, r.Lib)
	r.PGO = c
	r.Int.PGO = c
}

// Report builds the full execution report: the recorder's counters plus the
// runner's cycle pricing ("% time interpreted") and mode-switch total.
func (r *Runner) Report(rec *obs.Recorder) *obs.Report {
	rep := rec.Report()
	tot, rc, ic := r.Cycles()
	rep.Modes.TotalCycles = tot
	rep.Modes.RISCCycles = rc
	rep.Modes.InterpCycles = ic
	rep.Modes.InterpFraction = r.InterpFraction()
	rep.Modes.Switches = int64(r.Switches)
	if r.User.Accel != nil {
		rep.Level = r.User.Accel.Level.String()
	}
	rep.Degraded = r.Degraded
	rep.DegradedReason = r.DegradedReason
	for key, demoted := range r.quarantined {
		if !demoted {
			continue
		}
		space := interp.Space(key >> 31)
		proc := int(key & 0x7FFFFFFF)
		if proc == 0x7FFFFFFF {
			proc = -1
		}
		rep.Quarantined = append(rep.Quarantined, obs.QuarantinedProc{
			Name:  r.procName(space, proc),
			Space: spaceName(space),
			Traps: r.quarTraps[key],
		})
	}
	sort.Slice(rep.Quarantined, func(i, j int) bool {
		if rep.Quarantined[i].Space != rep.Quarantined[j].Space {
			return rep.Quarantined[i].Space < rep.Quarantined[j].Space
		}
		return rep.Quarantined[i].Name < rep.Quarantined[j].Name
	})
	return rep
}

// Console returns the program's console output.
func (r *Runner) Console() string { return r.Int.Console.String() }

// Cycles prices the complete run on the Cyclone/R: simulated RISC cycles
// plus interpreter interludes priced under the software-interpreter model.
func (r *Runner) Cycles() (total, riscCycles, interlude float64) {
	ic := machine.CycloneRInterp.Cycles(&r.InterludeProf.Counts, r.InterludeProf.LongUnits)
	rc := float64(r.Sim.Cycles)
	return rc + ic, rc, ic
}

// InterpFraction reports the fraction of time spent in interpreter mode.
func (r *Runner) InterpFraction() float64 {
	tot, _, ic := r.Cycles()
	if tot == 0 {
		return 0
	}
	return ic / tot
}
