package xrun

import (
	"fmt"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/machine"
	"tnsr/internal/millicode"
	"tnsr/internal/risc"
	"tnsr/internal/tns"
)

// Dynamic translation — the alternative the paper describes ("run the
// program until the puzzle point is reached ... and then dynamically
// generate new code before resuming", the Insignia SoftPC / IBM MIMIC
// style) and explains why Tandem chose static translation instead: the
// translation algorithms cost significant time and memory, and Tandem
// machines run applications for months, so paying translation up front
// wins. This implementation interprets until procedures get hot, then
// translates the hot set and hands the running machine over to mixed-mode
// execution, charging a modeled translation cost per TNS word translated.

// TranslateCyclesPerWord models the Accelerator's own cost on the
// Cyclone/R: cycles spent per TNS code word translated (an optimizing
// compiler runs thousands of cycles per input instruction).
const TranslateCyclesPerWord = 4000

// DynamicResult reports a dynamic-translation run.
type DynamicResult struct {
	// Cycles breakdown on the Cyclone/R.
	InterpCycles    float64 // interpreted phase (before/without translation)
	RunnerCycles    float64 // mixed-mode execution after hand-off
	TranslateCycles float64 // modeled translation work
	Retranslations  int
	HotProcs        []string
	Console         string
	Halted          bool
	Trap            int
}

// Total returns the complete cost.
func (d *DynamicResult) Total() float64 {
	return d.InterpCycles + d.RunnerCycles + d.TranslateCycles
}

// RunDynamic executes user/lib with lazy translation: interpret, count
// procedure entries, translate procedures that reach the hotness threshold,
// and hand over. The codefiles must be unaccelerated. workers is the
// translation worker count (0 means all CPUs): dynamic translation happens
// while the program is stopped, so parallel translation directly shortens
// the pause, and — the pipeline being deterministic — changes nothing else.
func RunDynamic(user, lib *codefile.File, threshold int, level codefile.AccelLevel,
	workers int, budget int64) (*DynamicResult, error) {
	res := &DynamicResult{}
	m := interp.New(user, lib)
	counts := map[uint32]int{} // space<<16|entry -> calls
	hot := map[string]bool{}
	libSummaries := map[uint16]int8{}
	if lib != nil {
		for i, p := range lib.Procs {
			libSummaries[uint16(i)] = p.ResultWords
		}
	}

	im := &machine.CycloneRInterp
	var steps int64
	newlyHot := false
	for !m.Halted {
		if steps >= budget {
			return nil, fmt.Errorf("xrun: dynamic run exceeded %d steps", budget)
		}
		kind := m.Step()
		steps++
		if kind == interp.TransferCall && !m.Halted {
			f := m.CodeFile(m.Space)
			key := uint32(m.Space)<<16 | uint32(m.P)
			counts[key]++
			if counts[key] == threshold {
				if pi := f.ProcContaining(m.P); pi >= 0 {
					name := f.Procs[pi].Name
					if !hot[name] {
						hot[name] = true
						newlyHot = true
						res.HotProcs = append(res.HotProcs, name)
						// Charge translation of this procedure's extent.
						res.TranslateCycles += float64(procWords(f, pi)) *
							TranslateCyclesPerWord
					}
				}
			}
		}
		// Hand over once something is hot and we sit at a call transfer.
		if newlyHot && kind == interp.TransferCall && !m.Halted {
			res.Retranslations++
			r, err := handOff(user, lib, m, hot, level, workers, libSummaries)
			if err != nil {
				return nil, err
			}
			res.InterpCycles = im.Cycles(&m.Prof.Counts, m.Prof.LongUnits)
			if err := r.Run(budget); err != nil {
				return nil, err
			}
			total, riscCyc, interludeCyc := r.Cycles()
			_ = total
			res.RunnerCycles = riscCyc + interludeCyc
			res.Console = r.Console()
			res.Halted = r.Halted
			res.Trap = r.Trap
			return res, nil
		}
	}
	// Never got hot: fully interpreted.
	res.InterpCycles = im.Cycles(&m.Prof.Counts, m.Prof.LongUnits)
	res.Console = m.Console.String()
	res.Halted = m.Halted
	res.Trap = m.Trap
	return res, nil
}

// handOff translates the hot set into fresh codefile copies and adopts the
// live machine.
func handOff(user, lib *codefile.File, m *interp.Machine, hot map[string]bool,
	level codefile.AccelLevel, workers int, libSummaries map[uint16]int8) (*Runner, error) {
	tu := cloneFile(user)
	opts := core.Options{
		Level: level, SelectProcs: hot, Workers: workers,
		LibSummaries: libSummaries,
	}
	if err := core.Accelerate(tu, opts); err != nil {
		return nil, err
	}
	var tl *codefile.File
	if lib != nil {
		tl = cloneFile(lib)
		if err := core.Accelerate(tl, core.Options{
			Level: level, SelectProcs: hot, Workers: workers,
			CodeBase: millicode.LibCodeBase, Space: 1,
		}); err != nil {
			return nil, err
		}
	}
	r, err := New(tu, tl, risc.DefaultConfig())
	if err != nil {
		return nil, err
	}
	// Keep the live machine but point it at the translated codefiles.
	m.User, m.Lib = tu, tl
	r.AdoptInterpreter(m)
	return r, nil
}

func procWords(f *codefile.File, pi int) int {
	entry := int(f.Procs[pi].Entry)
	end := len(f.Code)
	for _, p := range f.Procs {
		if e := int(p.Entry); e > entry && e < end {
			end = e
		}
	}
	return end - entry
}

func cloneFile(f *codefile.File) *codefile.File {
	g := *f
	g.Accel = nil
	g.Code = append([]uint16{}, f.Code...)
	g.Procs = append([]codefile.Proc{}, f.Procs...)
	g.Data = append([]codefile.DataSeg{}, f.Data...)
	g.Statements = append([]codefile.Statement{}, f.Statements...)
	g.Symbols = append([]codefile.Symbol{}, f.Symbols...)
	return &g
}

// StaticCost prices the static-translation strategy for comparison: full
// up-front translation of both codefiles plus the mixed-mode run.
func StaticCost(user, lib *codefile.File, level codefile.AccelLevel,
	budget int64) (runCycles, translateCycles float64, console string, err error) {
	tu := cloneFile(user)
	libSummaries := map[uint16]int8{}
	var tl *codefile.File
	if lib != nil {
		for i, p := range lib.Procs {
			libSummaries[uint16(i)] = p.ResultWords
		}
	}
	if err := core.Accelerate(tu, core.Options{Level: level, LibSummaries: libSummaries}); err != nil {
		return 0, 0, "", err
	}
	translateCycles = float64(len(user.Code)) * TranslateCyclesPerWord
	if lib != nil {
		tl = cloneFile(lib)
		if err := core.Accelerate(tl, core.Options{
			Level: level, CodeBase: millicode.LibCodeBase, Space: 1,
		}); err != nil {
			return 0, 0, "", err
		}
		translateCycles += float64(len(lib.Code)) * TranslateCyclesPerWord
	}
	r, err := New(tu, tl, risc.DefaultConfig())
	if err != nil {
		return 0, 0, "", err
	}
	if err := r.Run(budget); err != nil {
		return 0, 0, "", err
	}
	if r.Trap != tns.TrapNone {
		return 0, 0, "", fmt.Errorf("trap %d", r.Trap)
	}
	total, _, _ := r.Cycles()
	return total, translateCycles, r.Console(), nil
}
