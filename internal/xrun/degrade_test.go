package xrun

import (
	"strings"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/risc"
	"tnsr/internal/tns"
	"tnsr/internal/tnsasm"
)

// TestDegradedRunsInterpreted is the graceful-degradation contract: a
// codefile whose acceleration section fails structural verification must
// still run — fully interpreted, with correct output — and the degradation
// must be visible in the report in both text and JSON.
func TestDegradedRunsInterpreted(t *testing.T) {
	f := tnsasm.MustAssemble("mix", mixProg)
	if err := core.Accelerate(f, core.Options{Level: codefile.LevelDefault}); err != nil {
		t.Fatal(err)
	}
	// Structural damage with no checksum to catch it: one EMap entry too
	// few. Verify must reject it; New must degrade rather than fail.
	f.Accel.Entries = f.Accel.Entries[:len(f.Accel.Entries)-1]

	r, err := New(f, nil, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded {
		t.Fatal("runner did not degrade on a corrupt acceleration section")
	}
	if !strings.Contains(r.DegradedReason, "emap") {
		t.Errorf("DegradedReason = %q, want mention of the emap section", r.DegradedReason)
	}
	rec := obs.NewRecorder()
	r.Observe(rec)
	if err := r.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if r.Console() != "15" {
		t.Errorf("degraded console = %q, want 15", r.Console())
	}
	if r.Sim.Instrs != 0 {
		t.Errorf("degraded run executed %d RISC instructions, want 0", r.Sim.Instrs)
	}

	rep := r.Report(rec)
	if !rep.Degraded || rep.DegradedReason == "" {
		t.Error("report does not carry the degradation")
	}
	if err := obs.Validate(rep); err != nil {
		t.Errorf("degraded report fails validation: %v", err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := obs.ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Degraded || back.DegradedReason != rep.DegradedReason {
		t.Error("degradation lost in the JSON round trip")
	}
	var text strings.Builder
	rep.WriteText(&text, 0)
	if !strings.Contains(text.String(), "DEGRADED") {
		t.Error("text report does not surface the degradation")
	}
	// The refused initial entry is classified as a quarantine escape.
	found := false
	for _, e := range rep.Escapes {
		if e.Reason == "quarantined" && e.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no quarantined escape recorded for the degraded entry refusal")
	}
}

// selectiveAddup translates only the addup procedure, so every entry into
// RISC code goes through the interpreter's entry check and is attributed to
// addup — the precise setup the quarantine tests need.
func selectiveAddup(t *testing.T) *Runner {
	t.Helper()
	f := tnsasm.MustAssemble("mix", mixProg)
	opts := core.Options{
		Level:       codefile.LevelDefault,
		SelectProcs: map[string]bool{"addup": true},
	}
	if err := core.Accelerate(f, opts); err != nil {
		t.Fatal(err)
	}
	r, err := New(f, nil, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// patchEntry overwrites the first translated instruction of the named
// procedure's fragment (the register-exact point the runner enters through)
// with the given RISC words, simulating in-memory damage to translated code.
func patchEntry(t *testing.T, r *Runner, proc string, words ...uint32) {
	t.Helper()
	f := r.User
	i := f.ProcByName(proc)
	if i < 0 {
		t.Fatalf("no procedure %q", proc)
	}
	idx, _, ok := f.Accel.PMap.Lookup(f.Procs[i].Entry)
	if !ok {
		t.Fatalf("%q entry not mapped", proc)
	}
	copy(r.Sim.Code[idx:], words)
}

// TestQuarantineAfterTrapStorm: a fragment that breaks with an unexpected
// code on every entry is rolled back each time and, at the threshold, its
// procedure is demoted to interpreter-only — the run completes with correct
// output and the report names the quarantined procedure.
func TestQuarantineAfterTrapStorm(t *testing.T) {
	r := selectiveAddup(t)
	patchEntry(t, r, "addup", risc.EncBreak(7)) // no such break code exists
	rec := obs.NewRecorder()
	r.Observe(rec)
	if err := r.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if r.Console() != "15" {
		t.Errorf("console = %q, want 15", r.Console())
	}
	rep := r.Report(rec)
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined = %+v, want exactly addup", rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Name != "addup" || q.Space != "user" || q.Traps != int64(DefaultQuarantineThreshold) {
		t.Errorf("quarantined %+v, want addup/user with %d traps", q, DefaultQuarantineThreshold)
	}
	if len(r.RollbackLog) == 0 || !strings.Contains(r.RollbackLog[0], "addup") {
		t.Errorf("rollback log = %v, want entries attributed to addup", r.RollbackLog)
	}
	if err := obs.Validate(rep); err != nil {
		t.Errorf("report fails validation: %v", err)
	}
	var n int64
	for _, e := range rep.Escapes {
		if e.Reason == "quarantined" {
			n = e.Count
		}
	}
	if n < int64(DefaultQuarantineThreshold) {
		t.Errorf("quarantined escapes = %d, want >= %d", n, DefaultQuarantineThreshold)
	}
}

// TestProtectedStoreRollsBack: damaged translated code that stores into the
// fenced runtime-table region raises TrapProtected; the episode is rolled
// back and, with a threshold of 1, the procedure is quarantined at once.
func TestProtectedStoreRollsBack(t *testing.T) {
	r := selectiveAddup(t)
	r.QuarantineThreshold = 1
	patchEntry(t, r, "addup",
		risc.EncImm(risc.LUI, risc.RegV, 0, int32(millicode.PtrArea>>16)),
		risc.EncMem(risc.SW, 0, risc.RegV, 0))
	if err := r.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if r.Console() != "15" {
		t.Errorf("console = %q, want 15", r.Console())
	}
	if len(r.RollbackLog) != 1 ||
		!strings.Contains(r.RollbackLog[0], "risc trap 5") {
		t.Errorf("rollback log = %v, want one TrapProtected rollback", r.RollbackLog)
	}
}

// TestTrapAfterOutputHalts covers the one case rollback must refuse: the
// episode already produced console output, so re-running it would duplicate
// the output. The run halts with an address trap, classified EscapeTrap.
func TestTrapAfterOutputHalts(t *testing.T) {
	src := `
GLOBALS 4
MAIN main
PROC main
  LDI 7
  SVC 2
  LDI 0
  STOR G+0
  EXIT 0
ENDPROC
`
	f := tnsasm.MustAssemble("out", src)
	if err := core.Accelerate(f, core.Options{Level: codefile.LevelStmtDebug}); err != nil {
		t.Fatal(err)
	}
	r, err := New(f, nil, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Patch the words right after the translated SVC — so the episode
	// prints first, then stores into the protected region.
	syscallAt := -1
	for i := millicode.UserCodeBase; i < millicode.UserCodeBase+len(f.Accel.RISC); i++ {
		if risc.Decode(r.Sim.Code[i]).Op == risc.SYSCALL {
			syscallAt = i
			break
		}
	}
	if syscallAt < 0 {
		t.Fatal("no SYSCALL in the translated fragment")
	}
	copy(r.Sim.Code[syscallAt+1:], []uint32{
		risc.EncImm(risc.LUI, risc.RegV, 0, int32(millicode.PtrArea>>16)),
		risc.EncMem(risc.SW, 0, risc.RegV, 0),
	})
	rec := obs.NewRecorder()
	r.Observe(rec)
	if err := r.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !r.Halted || r.Trap != tns.TrapAddress {
		t.Fatalf("halted=%v trap=%d, want an address trap halt", r.Halted, r.Trap)
	}
	if r.Console() != "7" {
		t.Errorf("console = %q, want the pre-trap output preserved", r.Console())
	}
	if len(r.RollbackLog) != 0 {
		t.Errorf("rollback log = %v, want none (output made rollback unsound)", r.RollbackLog)
	}
	rep := r.Report(rec)
	var traps int64
	for _, e := range rep.Escapes {
		if e.Reason == "trap" {
			traps = e.Count
		}
	}
	if traps == 0 {
		t.Error("no trap escape recorded")
	}
}

// TestTrapEscapeClassified: a genuine TNS trap raised by translated code
// (divide by zero, reported through the BREAK protocol) is classified
// EscapeTrap in the observation record.
func TestTrapEscapeClassified(t *testing.T) {
	src := `
GLOBALS 4
MAIN main
PROC main
  LDI 1
  LDI 0
  DIV
  STOR G+0
  EXIT 0
ENDPROC
`
	f := tnsasm.MustAssemble("div", src)
	if err := core.Accelerate(f, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	r, err := New(f, nil, risc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	r.Observe(rec)
	if err := r.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if r.Trap != tns.TrapDivZero {
		t.Fatalf("trap = %d, want divide-by-zero", r.Trap)
	}
	rep := r.Report(rec)
	var traps int64
	for _, e := range rep.Escapes {
		if e.Reason == "trap" {
			traps += e.Count
		}
	}
	if traps != 1 {
		t.Errorf("trap escapes = %d, want 1", traps)
	}
	if err := obs.Validate(rep); err != nil {
		t.Errorf("report fails validation: %v", err)
	}
}

// TestBreakpointEscapeClassified: a breakpoint hit in RISC mode is
// classified EscapeBreakpoint.
func TestBreakpointEscapeClassified(t *testing.T) {
	r := accelerated(t, codefile.LevelDefault)
	rec := obs.NewRecorder()
	r.Observe(rec)
	f := r.User
	i := f.ProcByName("addup")
	idx, _, ok := f.Accel.PMap.Lookup(f.Procs[i].Entry)
	if !ok {
		t.Fatal("addup entry not mapped")
	}
	r.Sim.Breakpoints = map[uint32]bool{uint32(idx): true}
	if err := r.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !r.BPHit {
		t.Fatal("breakpoint did not hit")
	}
	rep := r.Report(rec)
	var bps int64
	for _, e := range rep.Escapes {
		if e.Reason == "breakpoint" {
			bps += e.Count
		}
	}
	if bps == 0 {
		t.Error("no breakpoint escape recorded")
	}
}
