package xrun

import (
	"sync"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/risc"
	"tnsr/internal/workloads"
)

// TestSharedCodefileManyRunners pins the fleet's immutability contract:
// one accelerated codefile image backs 64 concurrent runners (each with
// private interpreter, simulator, recorder and capture state) and every
// concurrent run is observably identical to a serial run over the same
// shared image. Under -race this is the regression net for any future
// lazy-mutation creeping into the shared structures (the PMap inverse
// cache was exactly such a case; it is now sealed at translation time).
func TestSharedCodefileManyRunners(t *testing.T) {
	w := workloads.MustBuild("et1", 2)
	if err := core.Accelerate(w.User, core.Options{
		Level: codefile.LevelDefault, LibSummaries: w.LibSummaries,
	}); err != nil {
		t.Fatal(err)
	}
	if err := core.Accelerate(w.Lib, core.Options{
		Level:    codefile.LevelDefault,
		CodeBase: millicode.LibCodeBase, Space: 1,
	}); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		console  string
		exit     uint16
		trap     int
		halted   bool
		riscIn   int64
		interpIn int64
	}
	runOne := func() outcome {
		r, err := New(w.User, w.Lib, risc.DefaultConfig())
		if err != nil {
			t.Error(err)
			return outcome{}
		}
		rec := obs.NewRecorder()
		r.Observe(rec)
		cap := pgo.NewCapture()
		r.Capture(cap)
		if err := r.Run(50_000_000); err != nil {
			t.Error(err)
			return outcome{}
		}
		// Exercise the shared PMap's read paths from this goroutine too:
		// Lookup and Inverse must stay write-free on a sealed map.
		if pm := &w.User.Accel.PMap; pm.Len() > 0 {
			for a := 0; a < pm.Len(); a += 7 {
				if idx, _, ok := pm.Lookup(uint16(a)); ok {
					pm.Inverse(idx)
				}
			}
		}
		rep := r.Report(rec)
		return outcome{
			console: r.Console(), exit: r.ExitStatus, trap: r.Trap,
			halted: r.Halted, riscIn: rep.Modes.RISCInstrs,
			interpIn: rep.Modes.InterpInstrs,
		}
	}

	want := runOne() // serial baseline over the very same shared image
	if !want.halted || want.riscIn == 0 {
		t.Fatalf("baseline did not run translated: %+v", want)
	}

	const runners = 64
	got := make([]outcome, runners)
	var wg sync.WaitGroup
	for i := 0; i < runners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = runOne()
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Fatalf("runner %d diverged from serial baseline:\n got %+v\nwant %+v", i, g, want)
		}
	}
}

// TestSharedCodefileConcurrentAdaptive drives whole adaptive cycles (which
// clone before translating) concurrently against one source image, pinning
// that the pre-translation files are safe to share too.
func TestSharedCodefileConcurrentAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive fan-out skipped in -short mode")
	}
	w := workloads.MustBuild("et1", 2)
	const runners = 8
	consoles := make([]string, runners)
	var wg sync.WaitGroup
	for i := 0; i < runners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := RunAdaptive(w.User, w.Lib, w.LibSummaries,
				0, 0, 50_000_000, risc.DefaultConfig())
			if err != nil {
				t.Error(err)
				return
			}
			consoles[i] = res.Console
		}(i)
	}
	wg.Wait()
	for i := 1; i < runners; i++ {
		if consoles[i] != consoles[0] {
			t.Fatalf("cycle %d console diverged", i)
		}
	}
}
