package xrun

import (
	"fmt"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/risc"
)

// Profile-guided retranslation: the feedback loop the paper's customers
// closed by hand — run, notice interpreter interludes, write a hint file,
// retranslate — done automatically. Pass 1 translates with no advice and
// runs the program observed, capturing every fact the guards surface (the
// dynamic RP wherever a check fired, actual call targets and result sizes
// on the interpreted paths, residency weights). Pass 2 retranslates with
// the captured profile attached and reruns. Both translations keep every
// run-time guard, so the two passes are observationally identical; only
// the mode residency differs.

// AdaptiveResult reports a RunAdaptive cycle.
type AdaptiveResult struct {
	// Profile is the pass-1 capture that steered the pass-2 translation.
	Profile *pgo.Profile

	// First and Second are the completed runners of the two passes, with
	// FirstObs/SecondObs their telemetry (escape histograms, residency).
	First, Second       *Runner
	FirstObs, SecondObs *obs.Recorder

	Console    string
	Halted     bool
	ExitStatus uint16
	Trap       int
	TrapP      uint16
}

// InterpFractions returns the interpreter-mode residency of each pass.
func (a *AdaptiveResult) InterpFractions() (first, second float64) {
	return a.First.InterpFraction(), a.Second.InterpFraction()
}

// RunAdaptive executes the observe -> retranslate -> rerun cycle on fresh
// copies of user/lib (the caller's codefiles are not modified). Each pass
// translates at the given level with the given worker count and runs under
// the given instruction budget. It errors if the two passes disagree on any
// observable outcome — the profile being advisory, they never should.
func RunAdaptive(user, lib *codefile.File, libSummaries map[uint16]int8,
	level codefile.AccelLevel, workers int, budget int64,
	cfg risc.Config) (*AdaptiveResult, error) {

	res := &AdaptiveResult{}

	cap1 := pgo.NewCapture()
	r1, rec1, err := runPass(user, lib, libSummaries, level, workers, budget, cfg, nil, cap1)
	if err != nil {
		return nil, fmt.Errorf("xrun: adaptive pass 1: %w", err)
	}
	res.First, res.FirstObs = r1, rec1
	res.Profile = cap1.Profile()

	r2, rec2, err := runPass(user, lib, libSummaries, level, workers, budget, cfg, res.Profile, nil)
	if err != nil {
		return nil, fmt.Errorf("xrun: adaptive pass 2: %w", err)
	}
	res.Second, res.SecondObs = r2, rec2

	if r1.Halted != r2.Halted || r1.Trap != r2.Trap ||
		r1.ExitStatus != r2.ExitStatus || r1.Console() != r2.Console() {
		return nil, fmt.Errorf("xrun: adaptive passes diverged (trap %d vs %d, exit %d vs %d)",
			r1.Trap, r2.Trap, r1.ExitStatus, r2.ExitStatus)
	}
	res.Console = r2.Console()
	res.Halted = r2.Halted
	res.ExitStatus = r2.ExitStatus
	res.Trap = r2.Trap
	res.TrapP = r2.TrapP
	return res, nil
}

// runPass translates fresh copies of the codefiles (with prof attached if
// non-nil) and runs them observed (with cap attached if non-nil).
func runPass(user, lib *codefile.File, libSummaries map[uint16]int8,
	level codefile.AccelLevel, workers int, budget int64, cfg risc.Config,
	prof *pgo.Profile, cap *pgo.Capture) (*Runner, *obs.Recorder, error) {

	rec := obs.NewRecorder()
	tu := cloneFile(user)
	if err := core.Accelerate(tu, core.Options{
		Level: level, Workers: workers, LibSummaries: libSummaries,
		Obs: rec, Profile: prof,
	}); err != nil {
		return nil, nil, err
	}
	var tl *codefile.File
	if lib != nil {
		tl = cloneFile(lib)
		if err := core.Accelerate(tl, core.Options{
			Level: level, Workers: workers,
			CodeBase: millicode.LibCodeBase, Space: 1,
			Obs: rec, Profile: prof,
		}); err != nil {
			return nil, nil, err
		}
	}
	r, err := New(tu, tl, cfg)
	if err != nil {
		return nil, nil, err
	}
	r.Observe(rec)
	if cap != nil {
		r.Capture(cap)
	}
	if err := r.Run(budget); err != nil {
		return nil, nil, err
	}
	return r, rec, nil
}
