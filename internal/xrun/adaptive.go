package xrun

import (
	"fmt"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/risc"
	"tnsr/internal/tcache"
)

// Profile-guided retranslation: the feedback loop the paper's customers
// closed by hand — run, notice interpreter interludes, write a hint file,
// retranslate — done automatically. Pass 1 translates with no advice and
// runs the program observed, capturing every fact the guards surface (the
// dynamic RP wherever a check fired, actual call targets and result sizes
// on the interpreted paths, residency weights). Pass 2 retranslates with
// the captured profile attached and reruns. Both translations keep every
// run-time guard, so the two passes are observationally identical; only
// the mode residency differs.
//
// With a ProfileSource attached the loop closes across machines: pass 1
// starts from the fleet aggregate instead of from nothing, the local
// capture is pushed back, and pass 2 runs under the merged aggregate the
// whole fleet now shares.

// ProfileSource serves fleet-aggregated profiles. *profsrv.Client
// implements it; tests implement it in-process. Every use is advisory: a
// source error degrades the run to local-only profiles, recorded in
// AdaptiveResult.SourceErrs, never failing the run.
type ProfileSource interface {
	// Fetch returns the aggregate for a user-space codefile fingerprint
	// (16 hex digits), or (nil, nil) when the fleet has none yet.
	Fetch(fingerprint string) (*pgo.Profile, error)
	// Push uploads a capture and returns the merged aggregate now held for
	// its fingerprint.
	Push(p *pgo.Profile) (*pgo.Profile, error)
}

// AdaptiveOptions configures RunAdaptiveOpts.
type AdaptiveOptions struct {
	// Level, Workers, Budget, Config and LibSummaries mean exactly what
	// the RunAdaptive parameters of the same names mean.
	Level        codefile.AccelLevel
	Workers      int
	Budget       int64
	Config       risc.Config
	LibSummaries map[uint16]int8

	// Source, when non-nil, closes the loop through a fleet profile
	// service: pass 1 translates under the fetched aggregate, the pass-1
	// capture is pushed, and pass 2 translates under the merged aggregate
	// the push returns.
	Source ProfileSource

	// Cache, when non-nil, serves both passes' translations through the
	// persistent retranslation cache — byte-identical by TransKey, so the
	// cycle's outcome is unchanged; only translation latency moves.
	Cache *tcache.Cache
}

// AdaptiveResult reports a RunAdaptive cycle.
type AdaptiveResult struct {
	// Profile is the pass-1 capture — the local machine's observations,
	// and (without a Source) the profile that steered pass 2.
	Profile *pgo.Profile

	// Applied is the profile pass 2 actually translated under: the pushed
	// merge's returned aggregate when a Source is attached, otherwise
	// Profile itself.
	Applied *pgo.Profile

	// SourceErrs records Source failures the cycle degraded around
	// (profiles are advisory, so a dead or misbehaving server costs
	// advice, never the run).
	SourceErrs []error

	// First and Second are the completed runners of the two passes, with
	// FirstObs/SecondObs their telemetry (escape histograms, residency).
	First, Second       *Runner
	FirstObs, SecondObs *obs.Recorder

	Console    string
	Halted     bool
	ExitStatus uint16
	Trap       int
	TrapP      uint16
}

// InterpFractions returns the interpreter-mode residency of each pass.
func (a *AdaptiveResult) InterpFractions() (first, second float64) {
	return a.First.InterpFraction(), a.Second.InterpFraction()
}

// RunAdaptive executes the observe -> retranslate -> rerun cycle on fresh
// copies of user/lib (the caller's codefiles are not modified). Each pass
// translates at the given level with the given worker count and runs under
// the given instruction budget. It errors if the two passes disagree on any
// observable outcome — the profile being advisory, they never should.
func RunAdaptive(user, lib *codefile.File, libSummaries map[uint16]int8,
	level codefile.AccelLevel, workers int, budget int64,
	cfg risc.Config) (*AdaptiveResult, error) {

	return RunAdaptiveOpts(user, lib, AdaptiveOptions{
		Level: level, Workers: workers, Budget: budget,
		Config: cfg, LibSummaries: libSummaries,
	})
}

// RunAdaptiveOpts is RunAdaptive with the fleet knobs: an optional remote
// profile source and an optional persistent retranslation cache.
func RunAdaptiveOpts(user, lib *codefile.File, o AdaptiveOptions) (*AdaptiveResult, error) {
	res := &AdaptiveResult{}
	degrade := func(op string, err error) {
		res.SourceErrs = append(res.SourceErrs, fmt.Errorf("xrun: adaptive %s: %w", op, err))
	}

	// Pass 1 starts from the fleet aggregate when a source is attached —
	// a fresh machine inherits the whole fleet's observations before its
	// first run.
	var pass1Prof *pgo.Profile
	if o.Source != nil {
		fp := fmt.Sprintf("%016x", user.Fingerprint())
		agg, err := o.Source.Fetch(fp)
		if err != nil {
			degrade("fetch", err)
		} else {
			pass1Prof = agg
		}
	}

	cap1 := pgo.NewCapture()
	r1, rec1, err := runPass(user, lib, o, pass1Prof, cap1)
	if err != nil {
		return nil, fmt.Errorf("xrun: adaptive pass 1: %w", err)
	}
	res.First, res.FirstObs = r1, rec1
	res.Profile = cap1.Profile()

	// Pass 2 runs under the merged fleet aggregate when the push lands,
	// under the local capture otherwise.
	res.Applied = res.Profile
	if o.Source != nil {
		agg, err := o.Source.Push(res.Profile)
		if err != nil {
			degrade("push", err)
		} else if agg != nil {
			res.Applied = agg
		}
	}

	r2, rec2, err := runPass(user, lib, o, res.Applied, nil)
	if err != nil {
		return nil, fmt.Errorf("xrun: adaptive pass 2: %w", err)
	}
	res.Second, res.SecondObs = r2, rec2

	if r1.Halted != r2.Halted || r1.Trap != r2.Trap ||
		r1.ExitStatus != r2.ExitStatus || r1.Console() != r2.Console() {
		return nil, fmt.Errorf("xrun: adaptive passes diverged (trap %d vs %d, exit %d vs %d)",
			r1.Trap, r2.Trap, r1.ExitStatus, r2.ExitStatus)
	}
	res.Console = r2.Console()
	res.Halted = r2.Halted
	res.ExitStatus = r2.ExitStatus
	res.Trap = r2.Trap
	res.TrapP = r2.TrapP
	return res, nil
}

// runPass translates fresh copies of the codefiles (with prof attached if
// non-nil) and runs them observed (with cap attached if non-nil). A cache
// in the options serves the translations when it can.
func runPass(user, lib *codefile.File, o AdaptiveOptions,
	prof *pgo.Profile, cap *pgo.Capture) (*Runner, *obs.Recorder, error) {

	rec := obs.NewRecorder()
	accelerate := func(f *codefile.File, opts core.Options) error {
		if o.Cache != nil {
			_, err := o.Cache.Accelerate(f, opts)
			return err
		}
		return core.Accelerate(f, opts)
	}

	tu := cloneFile(user)
	if err := accelerate(tu, core.Options{
		Level: o.Level, Workers: o.Workers, LibSummaries: o.LibSummaries,
		Obs: rec, Profile: prof,
	}); err != nil {
		return nil, nil, err
	}
	var tl *codefile.File
	if lib != nil {
		tl = cloneFile(lib)
		if err := accelerate(tl, core.Options{
			Level: o.Level, Workers: o.Workers,
			CodeBase: millicode.LibCodeBase, Space: 1,
			Obs: rec, Profile: prof,
		}); err != nil {
			return nil, nil, err
		}
	}
	r, err := New(tu, tl, o.Config)
	if err != nil {
		return nil, nil, err
	}
	r.Observe(rec)
	if cap != nil {
		r.Capture(cap)
	}
	if err := r.Run(o.Budget); err != nil {
		return nil, nil, err
	}
	return r, rec, nil
}
