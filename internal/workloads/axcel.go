package workloads

import (
	"fmt"
	"strings"
)

// axcelSource generates the "Axcel" workload: the Accelerator translating a
// synthetic program. It decodes an instruction stream, recovers basic
// blocks with a depth-first search over an explicit work stack, computes a
// value-numbering-style hash over each block, and sorts the block table —
// the pointer- and table-heavy integer code of an object-code translator.
func axcelSource(iterations int) string {
	src := `
! "Axcel" workload: translator-like flow analysis over a code image.
LITERAL runs = @ITER@;
LITERAL codelen = 384;
LITERAL maxblocks = 96;

INT image[0:383];       ! synthetic instruction stream
INT kindtab[0:383];     ! decoded kind per word
INT leaders[0:95];      ! discovered block leader addresses
INT bhash[0:95];        ! per-block value hash
INT nlead;
INT stack[0:63];
INT sp;
INT seed;
INT checksum;

! instruction kinds
LITERAL kalu = 0, kload = 1, kstore = 2, kbranch = 3, kcall = 4, kexit = 5;

INT PROC nextrand;
BEGIN
  ! Mixed-word generator: low byte times 109 plus high bits; full-period
  ! enough for benchmark variety and free of low-bit cycling.
  seed := (seed LAND 255) * 109 + (seed >> 8) + 89;
  RETURN seed LAND 32767;
END;

! build a synthetic code image: mostly ALU and memory ops; a branch every
! 8th word keeps the flow graph connected, and exits are rare.
PROC buildimage;
BEGIN
  INT i; INT r;
  FOR i := 0 TO codelen - 1 DO
  BEGIN
    IF i LAND 7 = 7 THEN
      image[i] := kbranch * 4096 + (nextrand \ codelen)
    ELSE
    BEGIN
      r := (nextrand >> 7) LAND 15;
      IF r < 8 THEN image[i] := kalu * 4096 + (nextrand LAND 4095)
      ELSE IF r < 11 THEN image[i] := kload * 4096 + (nextrand LAND 4095)
      ELSE IF r < 13 THEN image[i] := kstore * 4096 + (nextrand LAND 4095)
      ELSE IF r < 15 THEN
        image[i] := kcall * 4096 + (nextrand \ codelen)
      ELSE image[i] := kexit * 4096;
    END;
  END;
END;

PROC push(v); INT v;
BEGIN
  IF sp < 63 THEN
  BEGIN
    stack[sp] := v;
    sp := sp + 1;
  END;
END;

INT PROC pop;
BEGIN
  IF sp = 0 THEN RETURN -1;
  sp := sp - 1;
  RETURN stack[sp];
END;

! depth-first reachability, marking leaders (the CASE-table search shape).
PROC analyze;
BEGIN
  INT a; INT w; INT kind; INT target;
  FOR a := 0 TO codelen - 1 DO kindtab[a] := -1;
  sp := 0;
  nlead := 0;
  ! seed the search from four "procedure entries"
  CALL push(0);
  CALL push(96);
  CALL push(192);
  CALL push(288);
  a := pop;
  WHILE a >= 0 DO
  BEGIN
    IF a < codelen AND kindtab[a] = -1 THEN
    BEGIN
      w := image[a];
      kind := w >> 12;
      kindtab[a] := kind;
      target := w LAND 4095;
      CASE kind OF
      BEGIN
        CALL push(a + 1);                    ! alu
        CALL push(a + 1);                    ! load
        CALL push(a + 1);                    ! store
        BEGIN                                ! branch
          IF target < codelen THEN
          BEGIN
            IF nlead < maxblocks THEN
            BEGIN
              leaders[nlead] := target;
              nlead := nlead + 1;
            END;
            CALL push(target);
          END;
          CALL push(a + 1);
        END;
        BEGIN                                ! call
          IF target < codelen THEN CALL push(target);
          CALL push(a + 1);
        END;
        OTHERWISE sp := sp;                  ! exit: no successors
      END;
    END;
    a := pop;
  END;
END;

! hash each block (value-numbering flavour).
PROC hashblocks;
BEGIN
  INT i; INT a; INT h; INT steps;
  FOR i := 0 TO nlead - 1 DO
  BEGIN
    a := leaders[i];
    h := 0;
    steps := 0;
    WHILE a < codelen AND steps < 24 DO
    BEGIN
      h := (h << 1) XOR image[a] XOR (h >> 11);
      IF kindtab[a] = kbranch OR kindtab[a] = kexit THEN a := codelen
      ELSE a := a + 1;
      steps := steps + 1;
    END;
    bhash[i] := h LAND 32767;
  END;
END;

! insertion sort of the block hash table (PMap ordering flavour).
PROC sortblocks;
BEGIN
  INT i; INT j; INT key; INT keyl;
  FOR i := 1 TO nlead - 1 DO
  BEGIN
    key := bhash[i];
    keyl := leaders[i];
    j := i - 1;
    WHILE j >= 0 AND bhash[j] > key DO
    BEGIN
      bhash[j + 1] := bhash[j];
      leaders[j + 1] := leaders[j];
      j := j - 1;
    END;
    bhash[j + 1] := key;
    leaders[j + 1] := keyl;
  END;
END;

PROC main MAIN;
BEGIN
  INT run; INT i;
  checksum := 0;
  seed := 12345;
  FOR run := 1 TO runs DO
  BEGIN
    CALL buildimage;
    CALL analyze;
    CALL hashblocks;
    CALL sortblocks;
    FOR i := 0 TO nlead - 1 DO
      checksum := checksum XOR (bhash[i] XOR leaders[i]);
    checksum := checksum XOR nlead;
  END;
  PUTNUM(checksum);
  PUTCHAR(10);
  PUTNUM(nlead);
  PUTCHAR(10);
END;
`
	return strings.ReplaceAll(src, "@ITER@", fmt.Sprint(iterations))
}
