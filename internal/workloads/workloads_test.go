package workloads

import (
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/risc"
	"tnsr/internal/tns"
	"tnsr/internal/xrun"
)

// interpret runs a workload on the pure interpreter.
func interpret(t *testing.T, w *Workload) *interp.Machine {
	t.Helper()
	m := interp.New(w.User, w.Lib)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Trap != tns.TrapNone {
		t.Fatalf("%s: trap %d at P=%d space=%d", w.Name, m.Trap, m.TrapP, m.Space)
	}
	return m
}

func TestWorkloadsRunAndChecksum(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			w := MustBuild(name, 3)
			m := interpret(t, w)
			out := m.Console.String()
			if len(out) == 0 {
				t.Fatal("no console output")
			}
			// Deterministic: building and running again gives the same.
			w2 := MustBuild(name, 3)
			m2 := interpret(t, w2)
			if m2.Console.String() != out {
				t.Errorf("nondeterministic output: %q vs %q", out, m2.Console.String())
			}
			t.Logf("%s: %d instrs, output %q", name, m.Prof.Instrs, out)
		})
	}
}

// TestWorkloadFidelityAllModes is the system-level fidelity check: every
// workload produces identical output under interpretation and under all
// three acceleration levels.
func TestWorkloadFidelityAllModes(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			ref := MustBuild(name, 2)
			m := interpret(t, ref)
			want := m.Console.String()

			for _, lvl := range []codefile.AccelLevel{
				codefile.LevelStmtDebug, codefile.LevelDefault, codefile.LevelFast,
			} {
				w := MustBuild(name, 2)
				opts := core.Options{Level: lvl, LibSummaries: w.LibSummaries}
				if err := core.Accelerate(w.User, opts); err != nil {
					t.Fatalf("%s/%s: %v", name, lvl, err)
				}
				if w.Lib != nil {
					libOpts := core.Options{Level: lvl, CodeBase: 0x80000, Space: 1}
					if err := core.Accelerate(w.Lib, libOpts); err != nil {
						t.Fatalf("%s/%s lib: %v", name, lvl, err)
					}
				}
				r, err := xrun.New(w.User, w.Lib, risc.Config{MulLatency: 12, DivLatency: 35})
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Run(800_000_000); err != nil {
					t.Fatalf("%s/%s: %v", name, lvl, err)
				}
				if r.Trap != m.Trap {
					t.Fatalf("%s/%s: trap %d vs %d (at %d)", name, lvl, r.Trap, m.Trap, r.TrapP)
				}
				if got := r.Console(); got != want {
					t.Errorf("%s/%s: output %q, want %q", name, lvl, got, want)
				}
				if frac := r.InterpFraction(); frac > 0.05 {
					t.Errorf("%s/%s: %.1f%% of cycles in interpreter mode", name, lvl, 100*frac)
				}
			}
		})
	}
}
