// Package workloads provides the paper's five benchmark programs, written
// in mini-TAL and compiled to TNS codefiles:
//
//   - Dhrystone in 16-bit and 32-bit addressing variants ("TAL-coded
//     Dhrystone ... combines features of C and Pascal Dhrystone benchmarks
//     in ways typical of our software"),
//   - TAL: a compiler front end (lexer, symbol table, parser skeleton)
//     processing embedded source text, standing in for the TAL compiler,
//   - Axcel: a translator-like workload (instruction decoding, flow
//     analysis with an explicit stack, hashing, table sorts), standing in
//     for the Accelerator translating itself,
//   - ET1: a debit/credit transaction benchmark whose work happens almost
//     entirely in the system-library codefile (keyed file reads/writes,
//     record locking, journaling), as the paper describes.
//
// Each workload prints a checksum through the console SVCs, so every
// execution mode can be cross-checked for identical behaviour.
package workloads

import (
	"fmt"

	"tnsr/internal/codefile"
	"tnsr/internal/talc"
)

// Workload is one benchmark program.
type Workload struct {
	Name string
	// User is the application codefile; Lib is the system-library codefile
	// (nil for CPU-bound workloads).
	User *codefile.File
	Lib  *codefile.File
	// LibSummaries feeds the Accelerator's "standard library descriptions".
	LibSummaries map[uint16]int8
}

// Names lists the workloads in the order the paper's tables print them.
var Names = []string{"dhry16", "dhry32", "tal", "axcel", "et1"}

// Build compiles a workload by name with the given iteration count.
func Build(name string, iterations int) (*Workload, error) {
	var userSrc, libSrc string
	switch name {
	case "dhry16":
		userSrc = dhrystoneSource(false, iterations)
	case "dhry32":
		userSrc = dhrystoneSource(true, iterations)
	case "tal":
		userSrc = talWorkSource(iterations)
	case "axcel":
		userSrc = axcelSource(iterations)
	case "et1":
		userSrc = et1Source(iterations)
		libSrc = SyslibSource
	default:
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	// When a system library is present, its globals own the low (directly
	// addressable) region and the application's move up out of the way.
	userOpt := talc.Options{}
	if libSrc != "" {
		userOpt.GlobalBase = 2048
	}
	user, err := talc.CompileOpt(name, userSrc, userOpt)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", name, err)
	}
	w := &Workload{Name: name, User: user}
	if libSrc != "" {
		lib, err := talc.Compile(name+"-lib", libSrc)
		if err != nil {
			return nil, fmt.Errorf("workloads: %s library: %w", name, err)
		}
		w.Lib = lib
		w.LibSummaries = map[uint16]int8{}
		for i, p := range lib.Procs {
			w.LibSummaries[uint16(i)] = p.ResultWords
		}
	}
	return w, nil
}

// MustBuild panics on error.
func MustBuild(name string, iterations int) *Workload {
	w, err := Build(name, iterations)
	if err != nil {
		panic(err)
	}
	return w
}
