package workloads

import (
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/risc"
	"tnsr/internal/talc"
	"tnsr/internal/tns"
	"tnsr/internal/xrun"
)

func runTal(t *testing.T, src string) *interp.Machine {
	t.Helper()
	f, err := talc.Compile("dbg", src)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(f, nil)
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Trap != tns.TrapNone {
		t.Fatalf("trap %d at %d", m.Trap, m.TrapP)
	}
	return m
}

func TestDebugPushPop(t *testing.T) {
	m := runTal(t, `
INT stack[0:63];
INT sp;
INT out1; INT out2; INT out3;
PROC push(v); INT v;
BEGIN
  IF sp < 63 THEN
  BEGIN
    stack[sp] := v;
    sp := sp + 1;
  END;
END;
INT PROC pop;
BEGIN
  IF sp = 0 THEN RETURN -1;
  sp := sp - 1;
  RETURN stack[sp];
END;
PROC main MAIN;
BEGIN
  sp := 0;
  CALL push(11);
  CALL push(22);
  out1 := pop;
  out2 := pop;
  out3 := pop;
END;
`)
	t.Logf("out: %d %d %d sp=%d\n", int16(m.Mem[64+1]), int16(m.Mem[64+2]), int16(m.Mem[64+3]), int16(m.Mem[64]))
	if int16(m.Mem[65]) != 22 || int16(m.Mem[66]) != 11 || int16(m.Mem[67]) != -1 {
		t.Errorf("push/pop broken: %d %d %d", int16(m.Mem[65]), int16(m.Mem[66]), int16(m.Mem[67]))
	}
}

func TestDebugWhilePopLoop(t *testing.T) {
	m := runTal(t, `
INT stack[0:63];
INT sp;
INT count;
PROC push(v); INT v;
BEGIN
  stack[sp] := v;
  sp := sp + 1;
END;
INT PROC pop;
BEGIN
  IF sp = 0 THEN RETURN -1;
  sp := sp - 1;
  RETURN stack[sp];
END;
PROC main MAIN;
BEGIN
  INT a;
  sp := 0;
  count := 0;
  CALL push(5);
  a := pop;
  WHILE a >= 0 DO
  BEGIN
    count := count + 1;
    IF a > 0 THEN CALL push(a - 1);
    a := pop;
  END;
END;
`)
	if m.Mem[65] != 6 {
		t.Errorf("count = %d, want 6", int16(m.Mem[65]))
	}
}

func TestDebugModCall(t *testing.T) {
	m := runTal(t, `
INT out;
INT PROC size(f); INT f;
BEGIN
  IF f = 0 THEN RETURN 100;
  RETURN 20;
END;
PROC main MAIN;
BEGIN
  INT k;
  k := 12345;
  k := k \ size(0);
  out := k;
END;
`)
	if m.Mem[0] != 45 {
		t.Errorf("mod = %d, want 45", int16(m.Mem[0]))
	}
}

func TestDebugAxcelState(t *testing.T) {
	w := MustBuild("axcel", 1)
	m := interp.New(w.User, w.Lib)
	if err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	// Globals: image@0 kindtab@384 leaders@768 bhash@864 nlead@960
	// stack@961 sp@1025 seed@1026 checksum@1027
	t.Logf("nlead=%d sp=%d seed=%d checksum=%d\n",
		int16(m.Mem[960]), int16(m.Mem[1025]), int16(m.Mem[1026]), int16(m.Mem[1027]))
	t.Logf("image[0..7]: ")
	for i := 0; i < 8; i++ {
		t.Logf("%d ", int16(m.Mem[i]))
	}
	t.Logf("\nkindtab[0..7]: ")
	for i := 0; i < 8; i++ {
		t.Logf("%d ", int16(m.Mem[384+i]))
	}
	t.Logf("\nleaders[0..7]: ")
	for i := 0; i < 8; i++ {
		t.Logf("%d ", int16(m.Mem[768+i]))
	}
	t.Log("")
}

func TestDebugCaseArmWithIf(t *testing.T) {
	m := runTal(t, `
INT leaders[0:9];
INT nlead;
INT kinds[0:7] := [0, 3, 1, 3, 2, 5, 3, 4];
PROC main MAIN;
BEGIN
  INT i; INT kind;
  nlead := 0;
  FOR i := 0 TO 7 DO
  BEGIN
    kind := kinds[i];
    CASE kind OF
    BEGIN
      nlead := nlead;                      ! alu
      nlead := nlead;                      ! load
      nlead := nlead;                      ! store
      BEGIN                                ! branch
        IF i < 100 THEN
        BEGIN
          IF nlead < 10 THEN
          BEGIN
            leaders[nlead] := i;
            nlead := nlead + 1;
          END;
        END;
      END;
      OTHERWISE nlead := nlead;
    END;
  END;
END;
`)
	t.Logf("nlead=%d leaders=%d,%d,%d\n", int16(m.Mem[10]), int16(m.Mem[0]), int16(m.Mem[1]), int16(m.Mem[2]))
	if m.Mem[10] != 3 {
		t.Errorf("nlead = %d, want 3", int16(m.Mem[10]))
	}
}

func TestDebugET1State(t *testing.T) {
	w := MustBuild("et1", 3)
	m := interp.New(w.User, w.Lib)
	if err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	// Lib: accts@0 tellers@800 branches@960 locks@1000 journal@1125
	// jhead@1381 txseq@1382 workbuf@1383; user: seed@2048 checksum@2049 aborted@2050
	t.Logf("console=%q txseq=%d jhead=%d seed=%d aborted=%d\n",
		m.Console.String(), int16(m.Mem[1382]), int16(m.Mem[1381]),
		int16(m.Mem[2048]), int16(m.Mem[2050]))
	t.Logf("accts[0..9]: ")
	for i := 0; i < 10; i++ {
		t.Logf("%d ", int16(m.Mem[i]))
	}
	t.Logf("\nlocks[0..9]: ")
	for i := 0; i < 10; i++ {
		t.Logf("%d ", int16(m.Mem[1000+i]))
	}
	t.Logf("\njournal[0..11]: ")
	for i := 0; i < 12; i++ {
		t.Logf("%d ", int16(m.Mem[1125+i]))
	}
	t.Log("")
}

func TestDebugFallbacks(t *testing.T) {
	for _, name := range []string{"dhry16", "et1"} {
		w := MustBuild(name, 2)
		opts := core.Options{Level: codefile.LevelDefault, LibSummaries: w.LibSummaries}
		if err := core.Accelerate(w.User, opts); err != nil {
			t.Fatal(err)
		}
		if w.Lib != nil {
			if err := core.Accelerate(w.Lib, core.Options{Level: codefile.LevelDefault, CodeBase: 0x80000, Space: 1}); err != nil {
				t.Fatal(err)
			}
		}
		r, err := xrun.New(w.User, w.Lib, risc.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: interludes=%d frac=%.1f%%\n", name, r.Interludes, 100*r.InterpFraction())
		for k, n := range r.FallbackAt {
			space := "user"
			cf := w.User
			if k>>24 != 0 {
				space = "lib"
				cf = w.Lib
			}
			addr := uint16(k)
			pi := cf.ProcContaining(addr)
			pname := "?"
			if pi >= 0 {
				pname = cf.Procs[pi].Name
			}
			t.Logf("  fallback %s@%d (%s) x%d: %s\n", space, addr, pname, n,
				tns.Disassemble(addr, cf.Code[addr]))
		}
	}
}

func TestDebugReentry(t *testing.T) {
	w := MustBuild("et1", 2)
	core.Accelerate(w.User, core.Options{Level: codefile.LevelDefault, LibSummaries: w.LibSummaries})
	core.Accelerate(w.Lib, core.Options{Level: codefile.LevelDefault, CodeBase: 0x80000, Space: 1})
	r, _ := xrun.New(w.User, w.Lib, risc.Config{})
	// Manually step the interpreter like runInterp does, logging transfers.
	m := r.Int
	for i := 0; i < 4000 && !m.Halted; i++ {
		kind := m.Step()
		if kind != interp.TransferNone {
			acc := w.User.Accel
			space := "user"
			if m.Space == interp.SpaceLib {
				acc, space = w.Lib.Accel, "lib"
			}
			idx, re, ok := acc.PMap.Lookup(m.P)
			t.Logf("transfer kind=%d to %s@%d: mapped=%v regexact=%v idx=%d\n",
				kind, space, m.P, ok, re, idx)
			if i > 200 {
				break
			}
		}
	}
}
