package workloads

// The mini-TAL sources of the runnable examples/ programs, exported here so
// the differential test sweep can push every shipped program through the
// interpreter and the parallel translation pipeline and compare behaviour.
// The examples embed these same constants, keeping the demos and the tests
// on one source of truth (the debugging example's statement breakpoints
// depend on DebuggingSource's exact line numbering).

// ExamplePrograms maps example directory names to their program sources.
var ExamplePrograms = map[string]string{
	"quickstart": QuickstartSource,
	"debugging":  DebuggingSource,
}

// QuickstartSource is the examples/quickstart program.
const QuickstartSource = `
! Sum the squares of 1..100 and report the total.
INT total;
INT PROC square(x); INT x;
BEGIN
  RETURN x * x;
END;
PROC main MAIN;
BEGIN
  INT i;
  total := 0;
  FOR i := 1 TO 100 DO
    total := total + square(i) \ 10;
  PUTNUM(total);
  PUTCHAR(10);
END;
`

// DebuggingSource is the examples/debugging program.
const DebuggingSource = `
INT balance;
INT history[0:9];
PROC deposit(amount); INT amount;
BEGIN
  balance := balance + amount;
END;
PROC main MAIN;
BEGIN
  INT i;
  balance := 100;
  FOR i := 0 TO 9 DO
  BEGIN
    CALL deposit(i * 10);
    history[i] := balance;
  END;
  PUTNUM(balance);
  PUTCHAR(10);
END;
`
