package workloads

import (
	"fmt"
	"strings"
)

// dhrystoneSource generates the TAL-coded Dhrystone. Records are arrays
// with DEFINEd field offsets (the TAL idiom for records); the ext variant
// accesses records through extended 32-bit pointers, reproducing the
// paper's "32-bit addressing" measurement column.
func dhrystoneSource(ext bool, iterations int) string {
	ptrDecl := "INT .PtrGlob; INT .PtrGlobNext;"
	mkPtr := "@PtrGlob := @RecGlob; @PtrGlobNext := @RecGlobNext;"
	localPtr := "INT .p;"
	takeGlob := "@p := @PtrGlob;"
	if ext {
		ptrDecl = "INT .EXT PtrGlob; INT .EXT PtrGlobNext;"
		mkPtr = "@PtrGlob := $XADR(RecGlob); @PtrGlobNext := $XADR(RecGlobNext);"
		localPtr = "INT .EXT p;"
		takeGlob = "@p := @PtrGlob;"
	}
	src := `
! Dhrystone, TAL-coded, per Andrys & Sand measurement suite shape.
! Records are word arrays with DEFINEd component offsets.
LITERAL identical = 0, rraining = 1, reversed = 2;   ! enumeration
LITERAL fldnext = 0, flddiscr = 1, fldenum = 2, fldint = 3, fldstr = 4;
LITERAL recwords = 20;
LITERAL runs = @ITER@;

INT RecGlob[0:19];
INT RecGlobNext[0:19];
@PTRDECL@
INT IntGlob;
INT BoolGlob;
INT Char1Glob;
INT Char2Glob;
INT Arr1Glob[0:49];
INT Arr2Glob[0:339];          ! 17x20 two-dimensional array, flattened
STRING Str1Glob[0:30] := "DHRYSTONE PROGRAM, 1'ST STRING";
STRING Str2Glob[0:30] := "DHRYSTONE PROGRAM, 2'ND STRING";
STRING StrLoc1[0:30];
STRING StrLoc2[0:30];
INT checksum;

PROC proc7(a, b, r); INT a; INT b; INT .r;
BEGIN
  r := a + 2 + b;
END;

PROC proc6(enumval, r); INT enumval; INT .r;
BEGIN
  r := enumval;
  IF enumval = rraining THEN r := identical;
  CASE enumval OF
  BEGIN
    r := identical;       ! identical
    r := reversed;        ! rraining
    r := rraining;        ! reversed
    OTHERWISE r := enumval;
  END;
END;

PROC proc3(pp); INT .pp;
BEGIN
  ! In the reference Dhrystone this reassigns a pointer; here it updates
  ! the record's integer component through the global pointer.
  IF IntGlob > 99 THEN
    CALL proc7(10, IntGlob, @pp)
  ELSE
    pp := IntGlob + 3;
END;

PROC proc1;
BEGIN
  @LOCALPTR@
  @TAKEGLOB@
  p[fldint] := 5;
  p[fldenum] := reversed;
  CALL proc3(@IntGlob);
  IF p[flddiscr] = identical THEN
  BEGIN
    p[fldint] := 6;
    CALL proc6(p[fldenum], @Char1Glob);
    ! copy next-record linkage via the global record
    p[fldnext] := RecGlobNext[fldnext];
    CALL proc7(p[fldint], 10, @IntGlob);
  END
  ELSE
    p[fldstr] := p[fldstr] + 1;
END;

PROC proc2(x); INT .x;
BEGIN
  INT loc; INT done;
  loc := x + 10;
  done := 0;
  WHILE done = 0 DO
  BEGIN
    IF Char1Glob = "A" THEN
    BEGIN
      loc := loc - 1;
      x := loc - IntGlob;
      done := 1;
    END
    ELSE done := 1;
  END;
END;

PROC proc4;
BEGIN
  INT boolloc;
  boolloc := Char1Glob = "A";
  boolloc := boolloc LOR BoolGlob;
  Char2Glob := "B";
END;

PROC proc5;
BEGIN
  Char1Glob := "A";
  BoolGlob := 0;
END;

INT PROC func1(ch1, ch2); INT ch1; INT ch2;
BEGIN
  INT chloc1; INT chloc2;
  chloc1 := ch1;
  chloc2 := chloc1;
  IF chloc2 <> ch2 THEN RETURN identical;
  Char1Glob := chloc1;
  RETURN rraining;
END;

INT PROC func2(sp1, sp2); STRING .sp1; STRING .sp2;
BEGIN
  INT intloc; INT chloc;
  intloc := 2;
  WHILE intloc <= 2 DO
    IF func1(sp1[intloc], sp2[intloc + 1]) = identical THEN
    BEGIN
      chloc := "A";
      intloc := intloc + 1;
    END
    ELSE intloc := intloc + 1;
  IF chloc >= "W" AND chloc < "Z" THEN intloc := 7;
  IF chloc = "R" THEN RETURN 1;
  IF COMPAREBYTES(@sp1, @sp2, 30) > 0 THEN
  BEGIN
    intloc := intloc + 7;
    IntGlob := intloc;
    RETURN 1;
  END;
  RETURN 0;
END;

INT PROC func3(enumval); INT enumval;
BEGIN
  INT enumloc;
  enumloc := enumval;
  IF enumloc = reversed THEN RETURN 1;
  RETURN 0;
END;

PROC proc8(arr1, arr2, intval1, intval2); INT .arr1; INT .arr2;
  INT intval1; INT intval2;
BEGIN
  INT intloc; INT idx;
  intloc := intval1 + 5;
  arr1[intloc] := intval2;
  arr1[intloc + 1] := arr1[intloc];
  arr1[intloc + 30] := intloc;
  FOR idx := intloc TO intloc + 1 DO
    arr2[intloc * 2 + idx] := intloc;
  arr2[intloc * 2 + 19] := arr1[intloc];
  IntGlob := 5;
END;

PROC main MAIN;
BEGIN
  INT i; INT intloc1; INT intloc2; INT intloc3; INT chindex;
  @MKPTR@
  RecGlob[flddiscr] := identical;
  RecGlob[fldenum]  := rraining;
  RecGlob[fldint]   := 40;
  RecGlobNext[fldnext] := 17;
  MOVE StrLoc1 := Str1Glob FOR 30 BYTES;
  checksum := 0;
  FOR i := 1 TO runs DO
  BEGIN
    CALL proc5;
    CALL proc4;
    intloc1 := 2;
    intloc2 := 3;
    MOVE StrLoc2 := Str2Glob FOR 30 BYTES;
    BoolGlob := NOT func2(@StrLoc1, @StrLoc2);
    WHILE intloc1 < intloc2 DO
    BEGIN
      intloc3 := 5 * intloc1 - intloc2;
      CALL proc7(intloc1, intloc2, @intloc3);
      intloc1 := intloc1 + 1;
    END;
    CALL proc8(@Arr1Glob, @Arr2Glob, intloc1, intloc3);
    CALL proc1;
    FOR chindex := "A" TO Char2Glob DO
    BEGIN
      IF func1(chindex, "C") = func3(RecGlob[fldenum]) THEN
        CALL proc6(identical, @RecGlob[fldenum]);
    END;
    intloc3 := intloc2 * intloc1;
    intloc2 := intloc3 / 3;
    intloc2 := 7 * (intloc3 - intloc2) - intloc1;
    CALL proc2(@intloc1);
    checksum := checksum XOR (intloc1 + intloc2 + intloc3 + IntGlob
                + BoolGlob + Char1Glob + Char2Glob + RecGlob[fldint]);
  END;
  PUTNUM(checksum);
  PUTCHAR(10);
  PUTNUM(IntGlob);
  PUTCHAR(10);
END;
`
	src = strings.ReplaceAll(src, "@PTRDECL@", ptrDecl)
	src = strings.ReplaceAll(src, "@MKPTR@", mkPtr)
	src = strings.ReplaceAll(src, "@LOCALPTR@", localPtr)
	src = strings.ReplaceAll(src, "@TAKEGLOB@", takeGlob)
	src = strings.ReplaceAll(src, "@ITER@", fmt.Sprint(iterations))
	return src
}
