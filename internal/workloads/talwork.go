package workloads

import (
	"fmt"
	"strings"
)

// talWorkSource generates the "TAL" workload: a compiler front end (lexer,
// keyword recognition, symbol hash table, expression parser skeleton) run
// repeatedly over embedded program text. It stands in for measuring the TAL
// compiler compiling itself: token/branch/call-heavy integer code with
// byte scanning and table lookups.
func talWorkSource(iterations int) string {
	program := "INT PROC FIB N BEGIN IF N LESS 2 THEN RETURN N END " +
		"RETURN FIB N MINUS 1 PLUS FIB N MINUS 2 END " +
		"PROC MAIN BEGIN RESULT ASSIGN FIB 12 WHILE RESULT GREATER 0 DO " +
		"RESULT ASSIGN RESULT MINUS 3 END CALL PRINT RESULT END " +
		"INT TABLE 40 INT POINTER P BEGIN P ASSIGN TABLE INDEX 7 END "
	src := `
! "TAL" workload: a compiler front end over embedded source text.
LITERAL runs = @ITER@;
LITERAL srclen = @SRCLEN@;
LITERAL hsize = 64;
LITERAL maxtoks = 300;

STRING source[0:@SRCHI@] := "@SRC@";
INT hkey[0:63];          ! symbol hash table: key hashes
INT hcount[0:63];        ! occurrence counts
INT toks[0:299];         ! token kind stream
INT tokval[0:299];       ! token hash values
INT ntoks;
INT checksum;

! token kinds
LITERAL tkword = 1, tknum = 2, tkother = 3;

INT PROC hash(start, len); INT start; INT len;
BEGIN
  INT h; INT i;
  h := 0;
  FOR i := 0 TO len - 1 DO
    h := ((h << 2) LAND 8191) + source[start + i] XOR (h >> 9);
  RETURN h LAND 1023;
END;

PROC record(h); INT h;
BEGIN
  INT slot; INT probes;
  slot := h LAND 63;
  probes := 0;
  WHILE probes < 64 DO
  BEGIN
    IF hcount[slot] = 0 THEN
    BEGIN
      hkey[slot] := h;
      hcount[slot] := 1;
      RETURN;
    END;
    IF hkey[slot] = h THEN
    BEGIN
      hcount[slot] := hcount[slot] + 1;
      RETURN;
    END;
    slot := (slot + 1) LAND 63;
    probes := probes + 1;
  END;
END;

INT PROC isletter(ch); INT ch;
BEGIN
  IF ch >= "A" AND ch <= "Z" THEN RETURN 1;
  RETURN 0;
END;

INT PROC isdigit(ch); INT ch;
BEGIN
  IF ch >= "0" AND ch <= "9" THEN RETURN 1;
  RETURN 0;
END;

! lex: tokenize the source, filling toks/tokval.
PROC lex;
BEGIN
  INT pos; INT ch; INT start; INT h;
  pos := 0;
  ntoks := 0;
  WHILE pos < srclen AND ntoks < maxtoks DO
  BEGIN
    ch := source[pos];
    IF ch = " " THEN pos := pos + 1
    ELSE IF isletter(ch) = 1 THEN
    BEGIN
      start := pos;
      WHILE pos < srclen AND isletter(source[pos]) = 1 DO pos := pos + 1;
      h := hash(start, pos - start);
      CALL record(h);
      toks[ntoks] := tkword;
      tokval[ntoks] := h;
      ntoks := ntoks + 1;
    END
    ELSE IF isdigit(ch) = 1 THEN
    BEGIN
      start := 0;
      WHILE pos < srclen AND isdigit(source[pos]) = 1 DO
      BEGIN
        start := start * 10 + (source[pos] - "0");
        pos := pos + 1;
      END;
      toks[ntoks] := tknum;
      tokval[ntoks] := start;
      ntoks := ntoks + 1;
    END
    ELSE
    BEGIN
      toks[ntoks] := tkother;
      tokval[ntoks] := ch;
      ntoks := ntoks + 1;
      pos := pos + 1;
    END;
  END;
END;

! parse: a recursive-descent skeleton over the token stream, counting
! constructs by keyword hash class.
INT pos2;
INT PROC parseexpr(deep); INT deep;
BEGIN
  INT n; INT k;
  n := 0;
  IF deep > 6 THEN RETURN 0;
  WHILE pos2 < ntoks DO
  BEGIN
    k := toks[pos2];
    pos2 := pos2 + 1;
    CASE k OF
    BEGIN
      n := n;                              ! 0: unused
      n := (n + 1) LAND 8191;              ! word
      n := (n + tokval[pos2 - 1] \ 7) LAND 8191;  ! number
      OTHERWISE
        IF tokval[pos2 - 1] = "(" THEN n := n + parseexpr(deep + 1)
        ELSE IF deep > 0 THEN RETURN n;
    END;
  END;
  RETURN n;
END;

PROC main MAIN;
BEGIN
  INT run; INT i;
  checksum := 0;
  FOR run := 1 TO runs DO
  BEGIN
    FOR i := 0 TO 63 DO
    BEGIN
      hkey[i] := 0;
      hcount[i] := 0;
    END;
    CALL lex;
    pos2 := 0;
    checksum := checksum XOR (parseexpr(0) + ntoks);
    FOR i := 0 TO 63 DO
      checksum := checksum XOR (hcount[i] * (i + 1));
  END;
  PUTNUM(checksum);
  PUTCHAR(10);
  PUTNUM(ntoks);
  PUTCHAR(10);
END;
`
	src = strings.ReplaceAll(src, "@SRC@", program)
	src = strings.ReplaceAll(src, "@SRCLEN@", fmt.Sprint(len(program)))
	src = strings.ReplaceAll(src, "@SRCHI@", fmt.Sprint(len(program)))
	src = strings.ReplaceAll(src, "@ITER@", fmt.Sprint(iterations))
	return src
}
