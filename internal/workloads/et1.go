package workloads

import (
	"fmt"
	"strings"
)

// SyslibSource is the system-library codefile: a miniature Guardian-style
// keyed file system plus transaction journaling, written in mini-TAL. ET1
// spends nearly all of its cycles here, reached through SCAL calls — the
// paper: ET1 "mostly measures work occurring within the OS kernel, file
// system, SQL data base, and transaction monitor".
//
// Library PEP map (SYSPROC indexes follow declaration order, including the
// internal helpers):
//
//	0 fs_size   1 fs_base   (internal helpers)
//	2 fs_init        ()                 initialize the files
//	3 fs_readrec     (fileid, key) -> record word address
//	4 fs_writefld    (fileid, key, fld, val16)    write one field
//	5 fs_adddbl      (fileid, key, fld, hi, lo)   32-bit add to a field pair
//	6 lockslot       (internal helper)
//	7 fs_lock        (fileid, key) -> 0/1         set a record lock
//	8 fs_unlock      (fileid, key)
//	9 tx_begin       () -> txid
//	10 tx_journal    (txid, a, b, c)              append a journal entry
//	11 tx_end        (txid) -> checksum word
const SyslibSource = `
! Miniature keyed file system + transaction monitor (the ET1 substrate).
LITERAL recwords = 8;
LITERAL naccts = 100, ntellers = 20, nbranches = 5;
LITERAL jwords = 4, jslots = 64;

! File storage: fixed tables of fixed-size records, key = record number.
INT accts[0:799];        ! 100 * 8
INT tellers[0:159];      ! 20 * 8
INT branches[0:39];      ! 5 * 8
INT locks[0:124];        ! lock bits for every record of every file
INT journal[0:255];      ! 64 entries * 4 words, a ring
INT jhead;
INT txseq;
INT workbuf[0:7];

INT PROC fs_size(fileid); INT fileid;
BEGIN
  IF fileid = 0 THEN RETURN naccts;
  IF fileid = 1 THEN RETURN ntellers;
  RETURN nbranches;
END;

! fs_base: word address of a record (bounds-checked modulo the file).
INT PROC fs_base(fileid, key); INT fileid; INT key;
BEGIN
  INT k;
  k := key;
  IF k < 0 THEN k := -k;
  k := k \ fs_size(fileid);
  IF fileid = 0 THEN RETURN @accts[k * recwords];
  IF fileid = 1 THEN RETURN @tellers[k * recwords];
  RETURN @branches[k * recwords];
END;

PROC fs_init;
BEGIN
  INT i;
  FOR i := 0 TO 799 DO accts[i] := 0;
  FOR i := 0 TO 159 DO tellers[i] := 0;
  FOR i := 0 TO 39 DO branches[i] := 0;
  FOR i := 0 TO 124 DO locks[i] := 0;
  FOR i := 0 TO 255 DO journal[i] := 0;
  jhead := 0;
  txseq := 0;
  FOR i := 0 TO naccts - 1 DO
  BEGIN
    accts[i * recwords] := i;            ! key field
    accts[i * recwords + 1] := 100;      ! balance hi:lo start at 100
  END;
END;

INT PROC fs_readrec(fileid, key); INT fileid; INT key;
BEGIN
  INT .p;
  @p := fs_base(fileid, key);
  ! copy the record into the shared work buffer (MOVW block move)
  MOVE workbuf := p FOR recwords WORDS;
  RETURN @p;
END;

PROC fs_writefld(fileid, key, fld, val); INT fileid; INT key; INT fld;
  INT val;
BEGIN
  INT .p;
  @p := fs_base(fileid, key);
  p[fld] := val;
END;

! 32-bit add into a pair of record words (balances), through an INT(32)
! pointer: the paired-register path the Accelerator packs into one RISC
! register.
PROC fs_adddbl(fileid, key, fld, hi, lo); INT fileid; INT key; INT fld;
  INT hi; INT lo;
BEGIN
  INT(32) .p;
  @p := fs_base(fileid, key) + fld;
  p := p + ($DBL(hi) << 16) + $DBL(lo);
END;

INT PROC lockslot(fileid, key); INT fileid; INT key;
BEGIN
  INT k;
  k := key;
  IF k < 0 THEN k := -k;
  k := k \ fs_size(fileid);
  IF fileid = 0 THEN RETURN k;
  IF fileid = 1 THEN RETURN naccts + k;
  RETURN naccts + ntellers + k;
END;

INT PROC fs_lock(fileid, key); INT fileid; INT key;
BEGIN
  INT s;
  s := lockslot(fileid, key);
  IF locks[s] <> 0 THEN RETURN 0;
  locks[s] := 1;
  RETURN 1;
END;

PROC fs_unlock(fileid, key); INT fileid; INT key;
BEGIN
  locks[lockslot(fileid, key)] := 0;
END;

INT PROC tx_begin;
BEGIN
  txseq := (txseq + 1) LAND 16383;
  RETURN txseq;
END;

PROC tx_journal(txid, a, b, cc); INT txid; INT a; INT b; INT cc;
BEGIN
  INT base;
  base := (jhead LAND 63) * jwords;
  journal[base] := txid;
  journal[base + 1] := a;
  journal[base + 2] := b;
  journal[base + 3] := cc;
  jhead := (jhead + 1) LAND 16383;
END;

INT PROC tx_end(txid); INT txid;
BEGIN
  INT h; INT i; INT base;
  ! "flush": checksum the last few journal entries
  h := txid;
  FOR i := 0 TO 3 DO
  BEGIN
    base := ((jhead - 1 - i) LAND 63) * jwords;
    h := h XOR journal[base] XOR journal[base + 2];
  END;
  RETURN h LAND 32767;
END;

PROC unused MAIN;
BEGIN
END;
`

// et1Source generates the ET1 debit/credit driver: small application code
// that spends its time in library calls, as in the paper.
func et1Source(iterations int) string {
	src := `
! ET1 debit/credit driver.
LITERAL runs = @ITER@;

SYSPROC fs_init = 2;
INT SYSPROC fs_readrec = 3;
SYSPROC fs_writefld = 4;
SYSPROC fs_adddbl = 5;
INT SYSPROC fs_lock = 7;
SYSPROC fs_unlock = 8;
INT SYSPROC tx_begin = 9;
SYSPROC tx_journal = 10;
INT SYSPROC tx_end = 11;

INT seed;
INT checksum;
INT aborted;

INT PROC nextrand;
BEGIN
  ! Mixed-word generator: low byte times 109 plus high bits; full-period
  ! enough for benchmark variety and free of low-bit cycling.
  seed := (seed LAND 255) * 109 + (seed >> 8) + 89;
  RETURN seed LAND 32767;
END;

PROC main MAIN;
BEGIN
  INT run; INT acct; INT teller; INT branch; INT amount; INT txid; INT ok;
  CALL fs_init;
  seed := 9377;
  checksum := 0;
  aborted := 0;
  FOR run := 1 TO runs DO
  BEGIN
    acct := (nextrand >> 5) \ 100;
    teller := (nextrand >> 5) \ 20;
    branch := teller \ 5;
    amount := ((nextrand >> 4) \ 200) - 100;
    txid := tx_begin;
    ok := fs_lock(0, acct);
    IF ok = 1 THEN
    BEGIN
      CALL fs_readrec(0, acct);
      CALL fs_adddbl(0, acct, 1, 0, amount);
      CALL fs_adddbl(1, teller, 1, 0, amount);
      CALL fs_adddbl(2, branch, 1, 0, amount);
      CALL fs_writefld(1, teller, 3, acct);
      CALL tx_journal(txid, acct, teller, amount);
      CALL fs_unlock(0, acct);
      checksum := checksum XOR tx_end(txid);
    END
    ELSE aborted := aborted + 1;
  END;
  PUTNUM(checksum);
  PUTCHAR(10);
  PUTNUM(aborted);
  PUTCHAR(10);
END;
`
	return strings.ReplaceAll(src, "@ITER@", fmt.Sprint(iterations))
}
