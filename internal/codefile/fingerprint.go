package codefile

// Fingerprint hashes the translation-relevant content of a codefile — name,
// code image, PEP table — with FNV-1a. A PGO profile records it at capture
// time and a retranslation refuses the profile when it no longer matches:
// stale advice degrades to no advice. Acceleration sections and debugger
// data are deliberately excluded so re-accelerating at a different level
// does not orphan the profile.
func (f *File) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	byteIn := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	wordIn := func(w uint16) {
		byteIn(byte(w >> 8))
		byteIn(byte(w))
	}
	for i := 0; i < len(f.Name); i++ {
		byteIn(f.Name[i])
	}
	byteIn(0)
	for _, w := range f.Code {
		wordIn(w)
	}
	wordIn(f.MainPEP)
	wordIn(f.GlobalWords)
	for i := range f.Procs {
		p := &f.Procs[i]
		for j := 0; j < len(p.Name); j++ {
			byteIn(p.Name[j])
		}
		byteIn(0)
		wordIn(p.Entry)
		byteIn(byte(p.ResultWords))
		byteIn(p.ArgWords)
	}
	return h
}
