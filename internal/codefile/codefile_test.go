package codefile

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleFile(withAccel bool) *File {
	f := &File{
		Name:        "sample",
		Code:        []uint16{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		Procs:       []Proc{{Name: "main", Entry: 0, ResultWords: 0, ArgWords: 0}, {Name: "f", Entry: 6, ResultWords: 1, ArgWords: 2}},
		MainPEP:     0,
		GlobalWords: 32,
		Data:        []DataSeg{{Addr: 4, Words: []uint16{0xABCD, 0x1234}}},
		Statements:  []Statement{{Addr: 0, Line: 1}, {Addr: 3, Line: 2}},
		Symbols: []Symbol{
			{Proc: -1, Name: "g", Kind: SymGlobal, Addr: 4, Words: 2},
			{Proc: 1, Name: "x", Kind: SymLocal, Addr: 1, Words: 1},
		},
	}
	if withAccel {
		pm := NewPMap(len(f.Code))
		pm.Add(0, 0, true)
		pm.Add(3, 7, false)
		pm.Add(6, 12, true)
		pm.Seal() // producers seal at finalize; Read seals on parse
		f.Accel = &AccelSection{
			Level:      LevelDefault,
			RISC:       []uint32{0xDEADBEEF, 0x12345678},
			Entries:    []int32{0, 12},
			ExpectedRP: []uint8{7, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
			PMap:       pm,
			Stats:      AccelStats{TNSInstrs: 12, RISCInstrs: 20, RPChecks: 1},
		}
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	for _, withAccel := range []bool{false, true} {
		f := sampleFile(withAccel)
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		g, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(f, g) {
			t.Errorf("withAccel=%v: round trip mismatch:\n got %+v\nwant %+v",
				withAccel, g, f)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6})); err == nil {
		t.Error("expected error on bad magic")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("expected error on empty input")
	}
}

func TestProcByName(t *testing.T) {
	f := sampleFile(false)
	if f.ProcByName("f") != 1 {
		t.Error("ProcByName(f)")
	}
	if f.ProcByName("nope") != -1 {
		t.Error("ProcByName(nope)")
	}
}

func TestProcContaining(t *testing.T) {
	f := sampleFile(false)
	if got := f.ProcContaining(0); got != 0 {
		t.Errorf("ProcContaining(0) = %d", got)
	}
	if got := f.ProcContaining(5); got != 0 {
		t.Errorf("ProcContaining(5) = %d", got)
	}
	if got := f.ProcContaining(6); got != 1 {
		t.Errorf("ProcContaining(6) = %d", got)
	}
	if got := f.ProcContaining(11); got != 1 {
		t.Errorf("ProcContaining(11) = %d", got)
	}
}

func TestStatementAt(t *testing.T) {
	f := sampleFile(false)
	if s := f.StatementAt(3); s == nil || s.Line != 2 {
		t.Error("StatementAt(3)")
	}
	if f.StatementAt(5) != nil {
		t.Error("StatementAt(5) should be nil")
	}
}

func TestPMapLookup(t *testing.T) {
	pm := NewPMap(64)
	pm.Add(0, 0, true)
	pm.Add(2, 5, true)
	pm.Add(9, 20, false)
	pm.Add(60, 90, true)

	for _, c := range []struct {
		tns      uint16
		risc     int
		regExact bool
	}{{0, 0, true}, {2, 5, true}, {9, 20, false}, {60, 90, true}} {
		idx, re, ok := pm.Lookup(c.tns)
		if !ok || idx != c.risc || re != c.regExact {
			t.Errorf("Lookup(%d) = %d,%v,%v; want %d,%v,true",
				c.tns, idx, re, ok, c.risc, c.regExact)
		}
	}
	if _, _, ok := pm.Lookup(1); ok {
		t.Error("Lookup(1) should miss")
	}
	if _, _, ok := pm.Lookup(63); ok {
		t.Error("Lookup(63) should miss")
	}
}

func TestPMapInverse(t *testing.T) {
	pm := NewPMap(64)
	pm.Add(0, 0, true)
	pm.Add(2, 5, true)
	pm.Add(9, 20, false)
	pm.Add(60, 90, true)

	cases := []struct {
		risc int
		tns  uint16
		ok   bool
	}{
		{0, 0, true}, {4, 0, true}, {5, 2, true}, {19, 2, true},
		{20, 9, true}, {89, 9, true}, {90, 60, true}, {1000, 60, true},
	}
	for _, c := range cases {
		tnsAddr, ok := pm.Inverse(c.risc)
		if ok != c.ok || tnsAddr != c.tns {
			t.Errorf("Inverse(%d) = %d,%v; want %d,%v",
				c.risc, tnsAddr, ok, c.tns, c.ok)
		}
	}
	if _, ok := pm.Inverse(-1); ok {
		t.Error("Inverse(-1) should miss")
	}
}

// TestPMapMonotonic is the paper's monotonicity property: mapped RISC
// indexes increase with TNS address, which is what makes the inverse lookup
// a binary search.
func TestPMapMonotonic(t *testing.T) {
	f := func(deltas []uint8) bool {
		if len(deltas) > 200 {
			deltas = deltas[:200]
		}
		pm := NewPMap(1024)
		tnsAddr, riscIdx := 0, 0
		type entry struct {
			t uint16
			r int
		}
		var entries []entry
		for _, d := range deltas {
			tnsAddr += 1 + int(d%5)
			riscIdx += 1 + int(d%23)
			if tnsAddr >= 1024 {
				break
			}
			pm.Add(uint16(tnsAddr), riscIdx, true)
			entries = append(entries, entry{uint16(tnsAddr), riscIdx})
		}
		last := -1
		for _, e := range entries {
			idx, _, ok := pm.Lookup(e.t)
			if !ok || idx != e.r || idx <= last {
				return false
			}
			last = idx
			// Inverse must agree.
			back, ok := pm.Inverse(idx)
			if !ok || back != e.t {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPMapSizeBits(t *testing.T) {
	pm := NewPMap(100)
	if pm.SizeBits() != 1200 {
		t.Errorf("SizeBits = %d, want 12 per word", pm.SizeBits())
	}
}

func TestPMapPack(t *testing.T) {
	pm := NewPMap(16)
	pm.Add(1, 3, true)
	pm.Add(4, 9, false) // memory-exact only: excluded from the packed table
	pm.Add(9, 30, true)
	p := pm.Pack()
	groups := int(uint32(p[0])<<24 | uint32(p[1])<<16 | uint32(p[2])<<8 | uint32(p[3]))
	if groups != 2 {
		t.Fatalf("groups = %d", groups)
	}
	offBase := 4 + 4*groups
	if p[offBase+1] == 0xFF {
		t.Error("word 1 should be mapped in packed table")
	}
	if p[offBase+4] != 0xFF {
		t.Error("memory-exact-only word 4 must be excluded from packed table")
	}
	if p[offBase+9] == 0xFF {
		t.Error("word 9 should be mapped")
	}
	if len(p) != offBase+16 {
		t.Errorf("packed len = %d", len(p))
	}
}

func TestPMapGroupOverflowErrors(t *testing.T) {
	pm := NewPMap(16)
	if err := pm.Add(0, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := pm.Add(1, 400, true); err == nil {
		t.Error("expected error on group offset overflow")
	}
	if err := pm.Add(0xFFFF, 1, true); err == nil {
		t.Error("expected error on out-of-range address")
	}
	// The failed adds must not have mapped anything.
	if _, _, ok := pm.Lookup(1); ok {
		t.Error("overflowing add left a mapping behind")
	}
}

func TestAccelLevelString(t *testing.T) {
	if LevelFast.String() != "Fast" || LevelNone.String() != "None" ||
		LevelStmtDebug.String() != "StmtDebug" || LevelDefault.String() != "Default" {
		t.Error("AccelLevel.String")
	}
}

// TestReadFuzz: Read must reject or cleanly error on arbitrary byte soup,
// never panic.
func TestReadFuzz(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatalf("Read panicked on %x", data)
			}
		}()
		_, _ = Read(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Truncations of a valid file must error, not panic.
	valid := sampleFile(true)
	var buf bytes.Buffer
	valid.WriteTo(&buf)
	whole := buf.Bytes()
	for cut := 0; cut < len(whole); cut += 7 {
		if _, err := Read(bytes.NewReader(whole[:cut])); err == nil {
			t.Errorf("truncation at %d silently accepted", cut)
		}
	}
}
