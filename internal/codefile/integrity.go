package codefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// SectionID names one checksummed region of a serialized codefile. Format
// v5 appends a CRC-32 to every section so damage is attributed to the part
// it hit: a runner can keep the intact CISC image and drop only a corrupt
// acceleration, and the chaos harness can target its mutations.
type SectionID uint8

const (
	// SecHeader covers the magic, version and codefile name.
	SecHeader SectionID = iota
	// SecCode covers the TNS code segment (the CISC image).
	SecCode
	// SecMeta covers the PEP table, entry metadata, data image, statement
	// table, symbols, and the acceleration-present flag.
	SecMeta
	// SecAccelRISC covers the acceleration level and the RISC word array.
	SecAccelRISC
	// SecEMap covers the PEP->RISC entry table and the ExpectedRP array.
	SecEMap
	// SecPMap covers the serialized PMap.
	SecPMap
	// SecFallback covers the translator statistics and the FallbackWhy
	// table.
	SecFallback

	NumSections
)

var sectionNames = [NumSections]string{
	"header", "code", "meta", "accel-risc", "emap", "pmap", "fallback",
}

func (s SectionID) String() string {
	if s < NumSections {
		return sectionNames[s]
	}
	return "invalid"
}

// SectionSpan locates one section inside a serialized v5 codefile:
// [Start, End) covers the payload plus its trailing 4-byte CRC-32, so the
// payload is [Start, End-4) and the checksum [End-4, End). The chaos
// mutators use spans to target (and, for the structural operators, repair)
// individual sections.
type SectionSpan struct {
	ID    SectionID
	Start int
	End   int
}

// ErrCorrupt is the typed load- and verify-time rejection: the section the
// damage was detected in, plus the underlying detail. Every failure mode of
// Read — bad magic, checksum mismatch, implausible counts, truncation —
// surfaces as an ErrCorrupt, so no caller ever has to string-match.
type ErrCorrupt struct {
	Section SectionID
	Detail  string
	Err     error // underlying cause, if any
}

func (e *ErrCorrupt) Error() string {
	switch {
	case e.Detail != "" && e.Err != nil:
		return fmt.Sprintf("codefile: corrupt %s section: %s: %v", e.Section, e.Detail, e.Err)
	case e.Err != nil:
		return fmt.Sprintf("codefile: corrupt %s section: %v", e.Section, e.Err)
	}
	return fmt.Sprintf("codefile: corrupt %s section: %s", e.Section, e.Detail)
}

func (e *ErrCorrupt) Unwrap() error { return e.Err }

func corruptf(sec SectionID, format string, args ...any) *ErrCorrupt {
	return &ErrCorrupt{Section: sec, Detail: fmt.Sprintf(format, args...)}
}

// IsCorrupt reports whether err is (or wraps) a typed corruption error.
func IsCorrupt(err error) bool {
	var e *ErrCorrupt
	return errors.As(err, &e)
}

// FixChecksum recomputes and rewrites the CRC-32 of the section span in a
// serialized v5 codefile. It exists for the chaos harness: a mutation that
// repairs its section's checksum slips past the load-time integrity layer
// on purpose, to prove the deeper structural verification still catches it.
func FixChecksum(data []byte, span SectionSpan) {
	crc := crc32.ChecksumIEEE(data[span.Start : span.End-4])
	binary.BigEndian.PutUint32(data[span.End-4:span.End], crc)
}

// Verify checks the acceleration section's structural invariants against
// its owning file: everything that must hold before the runtime may jump
// into translated code. riscBase is the code-space word index the section
// is loaded at (millicode.UserCodeBase or LibCodeBase; the PMap and entry
// table store absolute indexes). It returns a typed *ErrCorrupt naming the
// offending section, or nil.
//
// Checksums (checked by Read) prove the bytes are the ones written;
// Verify proves the structures are coherent with each other — the defense
// against a mutation that recomputes a section checksum, and against a
// translator bug shipping an inconsistent artifact. Neither defends
// against a deliberately forged section whose content is itself a valid
// structure: integrity, not authenticity.
func (a *AccelSection) Verify(f *File, riscBase int) error {
	riscEnd := riscBase + len(a.RISC)

	// PMap: array coherence, in-range targets, strict monotonicity.
	if err := a.PMap.verify(len(f.Code), riscBase, riscEnd); err != nil {
		return err
	}

	// EMap: one entry per PEP procedure, each -1 or a translated entry
	// point that the PMap agrees is register-exact at the same index.
	if len(a.Entries) != len(f.Procs) {
		return corruptf(SecEMap, "%d entries for %d procedures",
			len(a.Entries), len(f.Procs))
	}
	for i, e := range a.Entries {
		if e < 0 {
			if e != -1 {
				return corruptf(SecEMap, "entry %d has negative index %d", i, e)
			}
			continue
		}
		if int(e) < riscBase || int(e) >= riscEnd {
			return corruptf(SecEMap, "entry %d index %d outside [%d,%d)",
				i, e, riscBase, riscEnd)
		}
		// The PMap must agree the procedure entry is a register-exact
		// point at or after the EMap target (the EMap points at the
		// prologue; the PMap's re-entry point lies past the entry check).
		idx, regExact, ok := a.PMap.Lookup(f.Procs[i].Entry)
		if !ok || !regExact || idx < int(e) {
			return corruptf(SecEMap,
				"entry %d (%s at tns %d) maps to %d but PMap says (%d,%v,%v)",
				i, f.Procs[i].Name, f.Procs[i].Entry, e, idx, regExact, ok)
		}
	}

	// ExpectedRP: absent, or one byte per code word, each a valid RP
	// (0..7) or the 0xFF "no expectation" marker.
	if len(a.ExpectedRP) != 0 && len(a.ExpectedRP) != len(f.Code) {
		return corruptf(SecEMap, "ExpectedRP covers %d of %d code words",
			len(a.ExpectedRP), len(f.Code))
	}
	for i, rp := range a.ExpectedRP {
		if rp != 0xFF && rp > 7 {
			return corruptf(SecEMap, "ExpectedRP[%d] = %d", i, rp)
		}
	}

	// FallbackWhy: every recorded fallback site lies inside the code
	// segment and carries a plausible reason code.
	for addr, why := range a.FallbackWhy {
		if int(addr) >= len(f.Code) {
			return corruptf(SecFallback, "fallback site %d outside %d code words",
				addr, len(f.Code))
		}
		if why >= maxFallbackReason {
			return corruptf(SecFallback, "fallback site %d has reason %d", addr, why)
		}
	}
	return nil
}

// maxFallbackReason bounds the obs.EscapeReason codes persisted in
// FallbackWhy (codefile cannot import obs; the bound is deliberately
// loose so appending reasons upstream needs no change here).
const maxFallbackReason = 16

// verify checks a deserialized PMap's invariants: internal array lengths
// coherent with the covered code size, every mapped point inside
// [riscBase, riscEnd), and RISC indexes strictly increasing in TNS address
// order (the monotonicity Inverse's binary search relies on).
func (p *PMap) verify(codeWords, riscBase, riscEnd int) error {
	if len(p.off) != codeWords {
		return corruptf(SecPMap, "covers %d of %d code words", len(p.off), codeWords)
	}
	if want := (codeWords + 7) / 8; len(p.base) != want {
		return corruptf(SecPMap, "%d group bases for %d code words", len(p.base), codeWords)
	}
	if want := (codeWords + 63) / 64; len(p.regExact) != want {
		return corruptf(SecPMap, "%d regExact words for %d code words",
			len(p.regExact), codeWords)
	}
	prev := -1
	for a := 0; a < codeWords; a++ {
		mapped := p.off[a] != offUnmapped
		if !mapped {
			if p.regExact[a/64]&(1<<(a%64)) != 0 {
				return corruptf(SecPMap, "unmapped word %d marked register-exact", a)
			}
			continue
		}
		b := p.base[a/8]
		if b < 0 {
			return corruptf(SecPMap, "word %d mapped in group %d with empty base", a, a/8)
		}
		idx := int(b) + int(p.off[a])
		if idx < riscBase || idx >= riscEnd {
			return corruptf(SecPMap, "word %d maps to %d outside [%d,%d)",
				a, idx, riscBase, riscEnd)
		}
		// Non-decreasing, not strictly increasing: a TNS instruction
		// elided entirely (dead flag ops) leaves its successor mapped to
		// the same RISC word.
		if idx < prev {
			return corruptf(SecPMap, "word %d maps to %d, below predecessor %d",
				a, idx, prev)
		}
		prev = idx
	}
	return nil
}
