// Package codefile defines the TNS object-file format: the unit the
// Accelerator reads and augments. A codefile holds a TNS code segment, its
// PEP (Procedure Entry Point) table, a data-initialization image, and
// optional debugger information (statement boundaries and symbols). After
// acceleration it additionally carries the generated RISC code, the PMap
// (TNS-address to RISC-address map), per-procedure RISC entry points, and
// the options the Accelerator was run with — while retaining the complete
// original CISC image, exactly as the paper requires for interpreter
// fallback and for distributing one codefile to both TNS and TNS/R machines.
package codefile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash"
	"hash/crc32"
	"io"
	"sort"
)

// Proc describes one procedure in the PEP table.
type Proc struct {
	Name  string
	Entry uint16 // code-segment word offset of the entry point
	// ResultWords is the number of 16-bit words the procedure leaves on the
	// register stack at EXIT, or -1 if the compiler did not record a summary
	// (the Accelerator must then analyze or guess, per the paper).
	ResultWords int8
	// ArgWords is the number of argument words cut by the procedure's EXITs.
	ArgWords uint8
}

// Statement marks a statement boundary for the debugger: the paper's
// "explicitly-labelled statements", which are also the potential targets of
// unanalyzable jumps.
type Statement struct {
	Addr uint16 // code word offset of the statement's first instruction
	Line int32  // source line number
}

// SymKind classifies debugger symbols.
type SymKind uint8

const (
	SymGlobal SymKind = iota // Addr is a G-relative word offset
	SymLocal                 // Addr is an L-relative word offset (signed)
	SymParam                 // Addr is an L-relative word offset (negative)
)

// Symbol is one debugger symbol.
type Symbol struct {
	Proc  int32 // owning procedure index, or -1 for globals
	Name  string
	Kind  SymKind
	Addr  int16 // word offset per Kind
	Words uint8 // size in words (1 for INT, 2 for INT(32), n for arrays)
}

// DataSeg is a run of initialized global data words.
type DataSeg struct {
	Addr  uint16
	Words []uint16
}

// AccelLevel is the Accelerator option level recorded in an accelerated
// codefile.
type AccelLevel uint8

const (
	LevelNone      AccelLevel = iota // not accelerated
	LevelStmtDebug                   // every statement boundary register-exact
	LevelDefault
	LevelFast // omit overflow traps, address truncation, byte-store aliasing
)

func (l AccelLevel) String() string {
	switch l {
	case LevelStmtDebug:
		return "StmtDebug"
	case LevelDefault:
		return "Default"
	case LevelFast:
		return "Fast"
	}
	return "None"
}

// AccelSection is the augmentation appended by the Accelerator.
type AccelSection struct {
	Level AccelLevel
	// BackendID names the RISC target the section was encoded for (the
	// backend registry's identity byte; 0 is the MIPS/R3000 default).
	// Runners refuse to drive a section with the wrong simulator.
	BackendID uint8
	// RISC holds the generated RISC instruction words.
	RISC []uint32
	// Entries maps each PEP index to the RISC word index of the procedure's
	// translated entry point, or -1 if the procedure was not translated.
	Entries []int32
	// PMap maps TNS code addresses to RISC word indexes.
	PMap PMap
	// ExpectedRP gives, for each register-exact TNS address, the absolute
	// RP the translated code assumes there (0xFF elsewhere). Re-entry from
	// interpreter mode is refused when the dynamic RP differs — a wrong
	// result-size guess upstream must not leak into translated code.
	ExpectedRP []uint8
	// FallbackWhy records, for each TNS address the translator emitted an
	// interpreter fallback for, the static reason (obs.EscapeReason codes:
	// puzzle joins, computed-jump regions, untranslated callees, ...). The
	// runtime reports the reason when the fallback fires.
	FallbackWhy map[uint16]uint8
	// Stats carries translator counters used by the size experiments.
	Stats AccelStats
}

// AccelStats are measurements the Accelerator records at translation time.
type AccelStats struct {
	TNSInstrs     int // translated TNS instructions (code words minus tables)
	TableWords    int // inline CASE-table and data words discovered
	RISCInstrs    int // RISC instructions emitted inline
	RPChecks      int // run-time RP confirmation checks emitted
	GuessedProcs  int // procedures whose result size was guessed
	PuzzlePoints  int // sites that fall into interpreter mode if reached
	WeldedStmts   int // statement pairs welded by delay-slot scheduling
	FilledSlots   int // branch delay slots usefully filled
	ElidedFlagOps int // flag computations elided as dead
}

// File is a TNS codefile.
type File struct {
	Name        string
	Code        []uint16
	Procs       []Proc
	MainPEP     uint16
	GlobalWords uint16 // globals occupy words [0, GlobalWords); the memory
	// stack is initialized immediately above them
	Data       []DataSeg
	Statements []Statement
	Symbols    []Symbol
	Accel      *AccelSection // nil until accelerated

	// Unverified is set by Read for pre-v5 files, which carry no section
	// checksums: the file loaded, but nothing vouches for its integrity.
	// Runners treat an unverified acceleration exactly like a verified
	// one only after AccelSection.Verify passes its structural checks.
	Unverified bool
}

// ProcByName returns the PEP index of the named procedure, or -1.
func (f *File) ProcByName(name string) int {
	for i := range f.Procs {
		if f.Procs[i].Name == name {
			return i
		}
	}
	return -1
}

// ProcContaining returns the index of the procedure whose body contains the
// given code address, assuming procedures are laid out contiguously in PEP
// entry order. Returns -1 if the address precedes all entries.
func (f *File) ProcContaining(addr uint16) int {
	best, bestEntry := -1, -1
	for i := range f.Procs {
		e := int(f.Procs[i].Entry)
		if e <= int(addr) && e > bestEntry {
			best, bestEntry = i, e
		}
	}
	return best
}

// StatementAt returns the statement starting exactly at addr, or nil.
func (f *File) StatementAt(addr uint16) *Statement {
	for i := range f.Statements {
		if f.Statements[i].Addr == addr {
			return &f.Statements[i]
		}
	}
	return nil
}

const (
	magic = 0x544E5343 // "TNSC"
	// version 6 added the acceleration section's backend tag (v5 added
	// per-section CRC-32 checksums, v4 FallbackWhy). v5 files still load
	// with BackendID 0 — every pre-tag section is MIPS — and v4 files
	// load flagged Unverified, so a fleet can upgrade tools before
	// re-accelerating its codefiles.
	version   = 6
	versionV5 = 5
	versionV4 = 4
)

// FormatVersion is the current serialization version. Cache keys include
// it so a format bump invalidates every cached artifact instead of serving
// bytes a newer reader would reject.
const FormatVersion = version

// Marshal serializes the codefile (always at the current version) and
// returns the byte image together with its section layout. WriteTo is the
// io.WriterTo convenience over it; the chaos harness uses the spans to aim
// mutations at individual sections.
func (f *File) Marshal() ([]byte, []SectionSpan) {
	var buf bytes.Buffer
	p := func(v any) { binary.Write(&buf, binary.BigEndian, v) }
	var spans []SectionSpan
	start := 0
	// seal closes the current section: append the CRC-32 of its payload
	// and record the span (payload + checksum).
	seal := func(id SectionID) {
		p(crc32.ChecksumIEEE(buf.Bytes()[start:]))
		spans = append(spans, SectionSpan{ID: id, Start: start, End: buf.Len()})
		start = buf.Len()
	}

	p(uint32(magic))
	p(uint16(version))
	writeString(&buf, f.Name)
	seal(SecHeader)

	p(uint32(len(f.Code)))
	p(f.Code)
	seal(SecCode)

	p(uint32(len(f.Procs)))
	for i := range f.Procs {
		writeString(&buf, f.Procs[i].Name)
		p(f.Procs[i].Entry)
		p(f.Procs[i].ResultWords)
		p(f.Procs[i].ArgWords)
	}
	p(f.MainPEP)
	p(f.GlobalWords)
	p(uint32(len(f.Data)))
	for i := range f.Data {
		p(f.Data[i].Addr)
		p(uint32(len(f.Data[i].Words)))
		p(f.Data[i].Words)
	}
	p(uint32(len(f.Statements)))
	for i := range f.Statements {
		p(f.Statements[i].Addr)
		p(f.Statements[i].Line)
	}
	p(uint32(len(f.Symbols)))
	for i := range f.Symbols {
		p(f.Symbols[i].Proc)
		writeString(&buf, f.Symbols[i].Name)
		p(uint8(f.Symbols[i].Kind))
		p(f.Symbols[i].Addr)
		p(f.Symbols[i].Words)
	}
	if f.Accel == nil {
		p(uint8(0))
		seal(SecMeta)
		return buf.Bytes(), spans
	}
	p(uint8(1))
	seal(SecMeta)

	a := f.Accel
	p(uint8(a.Level))
	p(a.BackendID)
	p(uint32(len(a.RISC)))
	p(a.RISC)
	seal(SecAccelRISC)

	p(uint32(len(a.Entries)))
	p(a.Entries)
	p(uint32(len(a.ExpectedRP)))
	p(a.ExpectedRP)
	seal(SecEMap)

	a.PMap.write(&buf)
	seal(SecPMap)

	p(int64(a.Stats.TNSInstrs))
	p(int64(a.Stats.TableWords))
	p(int64(a.Stats.RISCInstrs))
	p(int64(a.Stats.RPChecks))
	p(int64(a.Stats.GuessedProcs))
	p(int64(a.Stats.PuzzlePoints))
	p(int64(a.Stats.WeldedStmts))
	p(int64(a.Stats.FilledSlots))
	p(int64(a.Stats.ElidedFlagOps))
	// FallbackWhy, sorted by address so serialization is deterministic.
	addrs := make([]uint16, 0, len(a.FallbackWhy))
	for addr := range a.FallbackWhy {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	p(uint32(len(addrs)))
	for _, addr := range addrs {
		p(addr)
		p(a.FallbackWhy[addr])
	}
	seal(SecFallback)
	return buf.Bytes(), spans
}

// WriteTo serializes the codefile.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	data, _ := f.Marshal()
	n, err := w.Write(data)
	return int64(n), err
}

// Read deserializes a codefile. Format v5 verifies the per-section
// checksums as it goes; every rejection — bad magic, unsupported version,
// checksum mismatch, implausible count, truncation, trailing garbage — is
// a typed *ErrCorrupt naming the section the damage was detected in, so a
// damaged artifact can never surface as garbage structures. v4 files
// (which carry no checksums) still load, with File.Unverified set.
func Read(r io.Reader) (*File, error) {
	br := newReader(r)
	if br.u32() != magic {
		if br.err == nil {
			br.err = corruptf(SecHeader, "bad magic")
		}
		return nil, br.fail()
	}
	f := &File{}
	switch v := br.u16(); {
	case br.err != nil:
		return nil, br.fail()
	case v == version:
		br.sums = true
	case v == versionV5:
		br.sums = true
		br.noBackendTag = true
	case v == versionV4:
		f.Unverified = true
		br.noBackendTag = true
	default:
		br.err = corruptf(SecHeader, "unsupported version %d", v)
		return nil, br.fail()
	}
	f.Name = br.str()
	br.seal(SecHeader)

	br.sec = SecCode
	f.Code = br.u16s(br.u32())
	br.seal(SecCode)

	br.sec = SecMeta
	np := br.count(br.u32())
	f.Procs = make([]Proc, np)
	for i := range f.Procs {
		f.Procs[i].Name = br.str()
		f.Procs[i].Entry = br.u16()
		f.Procs[i].ResultWords = int8(br.u8())
		f.Procs[i].ArgWords = br.u8()
	}
	f.MainPEP = br.u16()
	f.GlobalWords = br.u16()
	nd := br.count(br.u32())
	f.Data = make([]DataSeg, nd)
	for i := range f.Data {
		f.Data[i].Addr = br.u16()
		f.Data[i].Words = br.u16s(br.u32())
	}
	ns := br.count(br.u32())
	f.Statements = make([]Statement, ns)
	for i := range f.Statements {
		f.Statements[i].Addr = br.u16()
		f.Statements[i].Line = int32(br.u32())
	}
	ny := br.count(br.u32())
	f.Symbols = make([]Symbol, ny)
	for i := range f.Symbols {
		f.Symbols[i].Proc = int32(br.u32())
		f.Symbols[i].Name = br.str()
		f.Symbols[i].Kind = SymKind(br.u8())
		f.Symbols[i].Addr = int16(br.u16())
		f.Symbols[i].Words = br.u8()
	}
	hasAccel := br.u8() == 1
	br.seal(SecMeta)

	if hasAccel && br.err == nil {
		a := &AccelSection{}
		br.sec = SecAccelRISC
		a.Level = AccelLevel(br.u8())
		if !br.noBackendTag {
			a.BackendID = br.u8()
		}
		a.RISC = br.u32s(br.u32())
		br.seal(SecAccelRISC)

		br.sec = SecEMap
		a.Entries = br.i32s(br.u32())
		nrp := br.count(br.u32())
		if br.err == nil && nrp > 0 {
			a.ExpectedRP = make([]uint8, nrp)
			br.read(a.ExpectedRP)
		}
		br.seal(SecEMap)

		br.sec = SecPMap
		a.PMap.read(br)
		br.seal(SecPMap)

		br.sec = SecFallback
		a.Stats.TNSInstrs = int(br.i64())
		a.Stats.TableWords = int(br.i64())
		a.Stats.RISCInstrs = int(br.i64())
		a.Stats.RPChecks = int(br.i64())
		a.Stats.GuessedProcs = int(br.i64())
		a.Stats.PuzzlePoints = int(br.i64())
		a.Stats.WeldedStmts = int(br.i64())
		a.Stats.FilledSlots = int(br.i64())
		a.Stats.ElidedFlagOps = int(br.i64())
		nfw := br.count(br.u32())
		if br.err == nil && nfw > 0 {
			a.FallbackWhy = make(map[uint16]uint8, nfw)
			for i := 0; i < nfw && br.err == nil; i++ {
				addr := br.u16()
				a.FallbackWhy[addr] = br.u8()
			}
		}
		br.seal(SecFallback)
		f.Accel = a
	}
	if br.err != nil {
		return nil, br.fail()
	}
	// The format is self-terminating: anything after the last section is
	// not ours. Rejecting it closes the door on a shorter (e.g. version-
	// relabeled) parse "succeeding" inside a longer damaged image.
	var trailing [1]byte
	if _, err := io.ReadFull(br.raw, trailing[:]); err == nil {
		return nil, corruptf(br.sec, "trailing garbage after end of file")
	}
	return f, nil
}

func writeString(buf *bytes.Buffer, s string) {
	binary.Write(buf, binary.BigEndian, uint16(len(s)))
	buf.WriteString(s)
}

type reader struct {
	raw          io.Reader   // the undecorated source (checksum words read here)
	r            io.Reader   // raw teed into hash: every payload byte is summed
	hash         hash.Hash32 // running CRC-32 of the current section's payload
	sums         bool        // v5+: verify a stored checksum at each seal point
	noBackendTag bool        // v4/v5: acceleration section has no backend byte
	sec          SectionID   // section under parse, for error attribution
	err          error
}

func newReader(r io.Reader) *reader {
	h := crc32.NewIEEE()
	return &reader{raw: r, r: io.TeeReader(r, h), hash: h}
}

func (b *reader) read(v any) {
	if b.err == nil {
		b.err = binary.Read(b.r, binary.BigEndian, v)
	}
}

// seal ends the section under parse: for v5, read the stored CRC-32 (from
// the raw stream — checksums do not checksum themselves) and compare it to
// the running sum of the payload bytes.
func (b *reader) seal(id SectionID) {
	if b.err != nil {
		return
	}
	if b.sums {
		var crcBuf [4]byte
		if _, err := io.ReadFull(b.raw, crcBuf[:]); err != nil {
			b.err = &ErrCorrupt{Section: id, Detail: "truncated checksum", Err: err}
			return
		}
		stored := binary.BigEndian.Uint32(crcBuf[:])
		if computed := b.hash.Sum32(); stored != computed {
			b.err = corruptf(id, "checksum mismatch (stored %08X, computed %08X)",
				stored, computed)
			return
		}
	}
	b.hash.Reset()
}

// fail wraps any pending untyped error (truncation, io failure) as a
// corruption of the section being parsed, so Read's error is always a
// typed *ErrCorrupt.
func (b *reader) fail() error {
	var ce *ErrCorrupt
	if !errors.As(b.err, &ce) {
		b.err = &ErrCorrupt{Section: b.sec, Err: b.err}
	}
	return b.err
}

// maxCount bounds every element count read from the wire. TNS addresses are
// 16-bit, so no legitimate section holds anywhere near this many entries
// (the largest is the RISC array, a few hundred thousand words); a corrupt
// or hostile header must fail here rather than drive a multi-gigabyte
// allocation.
const maxCount = 1 << 20

func (b *reader) count(n uint32) int {
	if b.err == nil && n > maxCount {
		b.err = corruptf(b.sec, "implausible element count %d", n)
	}
	if b.err != nil {
		return 0
	}
	return int(n)
}

func (b *reader) u8() uint8   { var v uint8; b.read(&v); return v }
func (b *reader) u16() uint16 { var v uint16; b.read(&v); return v }
func (b *reader) u32() uint32 { var v uint32; b.read(&v); return v }
func (b *reader) i64() int64  { var v int64; b.read(&v); return v }

func (b *reader) str() string {
	n := b.u16()
	if b.err != nil {
		return ""
	}
	s := make([]byte, n)
	if _, err := io.ReadFull(b.r, s); err != nil {
		b.err = err
		return ""
	}
	return string(s)
}

func (b *reader) u16s(n uint32) []uint16 {
	nn := b.count(n)
	if b.err != nil {
		return nil
	}
	v := make([]uint16, nn)
	b.read(v)
	return v
}

func (b *reader) u32s(n uint32) []uint32 {
	nn := b.count(n)
	if b.err != nil {
		return nil
	}
	v := make([]uint32, nn)
	b.read(v)
	return v
}

func (b *reader) i32s(n uint32) []int32 {
	nn := b.count(n)
	if b.err != nil {
		return nil
	}
	v := make([]int32, nn)
	b.read(v)
	return v
}
