package codefile

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// sampleAccelFile builds a small but fully-populated codefile — every
// section present, including an acceleration section with a non-trivial
// PMap — the shape the fuzzers and the integrity tests mutate from.
func sampleAccelFile() *File {
	f := &File{
		Name:        "seed",
		Code:        []uint16{0x0017, 0x1234, 0x8001, 0x0000, 0xFFFF, 0x0203},
		MainPEP:     1,
		GlobalWords: 8,
		Procs: []Proc{
			{Name: "two", Entry: 0, ResultWords: 2, ArgWords: 0},
			{Name: "main", Entry: 2, ResultWords: 0, ArgWords: 1},
		},
		Data: []DataSeg{
			{Addr: 4, Words: []uint16{1, 2, 3}},
		},
		Statements: []Statement{
			{Addr: 0, Line: 3}, {Addr: 2, Line: 7},
		},
		Symbols: []Symbol{
			{Proc: -1, Name: "total", Kind: SymGlobal, Addr: 0, Words: 1},
			{Proc: 1, Name: "i", Kind: SymLocal, Addr: 1, Words: 1},
		},
	}
	pm := NewPMap(len(f.Code))
	pm.Add(0, 0, true)
	pm.Add(2, 5, true)
	pm.Add(3, 9, false)
	f.Accel = &AccelSection{
		Level:      LevelDefault,
		RISC:       []uint32{0x3C0100FF, 0x00000000, 0x08000010},
		Entries:    []int32{0x10000, -1},
		ExpectedRP: []uint8{0xFF, 3, 0xFF, 0xFF, 0xFF, 0xFF},
		PMap:       pm,
		Stats:      AccelStats{TNSInstrs: 6, RISCInstrs: 3},
	}
	return f
}

// fuzzSeedFile is sampleAccelFile's serialization.
func fuzzSeedFile() []byte {
	data, _ := sampleAccelFile().Marshal()
	return data
}

// FuzzParseCodefile throws arbitrary bytes at the codefile deserializer.
// Read must never panic or allocate unboundedly, and any input it accepts
// must survive a stable serialize/parse/serialize round trip.
func FuzzParseCodefile(f *testing.F) {
	f.Add(fuzzSeedFile())
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x4E, 0x53, 0x43})                         // magic only
	f.Add([]byte{0x54, 0x4E, 0x53, 0x43, 0x00, 0x03, 0x00, 0x00}) // magic+version
	f.Fuzz(func(t *testing.T, data []byte) {
		cf, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var once bytes.Buffer
		if _, err := cf.WriteTo(&once); err != nil {
			t.Fatalf("serializing an accepted file: %v", err)
		}
		cf2, err := Read(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("reparsing own serialization: %v", err)
		}
		var twice bytes.Buffer
		if _, err := cf2.WriteTo(&twice); err != nil {
			t.Fatalf("second serialization: %v", err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("round trip not stable: %d vs %d bytes", once.Len(), twice.Len())
		}
	})
}

// accelFuzzParts splits the serialized sample file at the end of the meta
// section: the prefix ends with the acceleration-present flag set, so
// whatever follows is parsed as the four acceleration sections (RISC,
// EMap, PMap, Fallback) with their v5 checksums.
func accelFuzzParts() (prefix, suffix []byte) {
	data, spans := sampleAccelFile().Marshal()
	for _, sp := range spans {
		if sp.ID == SecMeta {
			return data[:sp.End], data[sp.End:]
		}
	}
	panic("no meta section")
}

// accelFuzzVariants are the deliberate corpus seeds, each aimed at one
// gate of the v5 integrity layer: the pristine suffix (full parse +
// Verify), truncations, checksum damage, a count skew, and a
// checksum-valid but structurally incoherent section that only
// AccelSection.Verify can reject.
func accelFuzzVariants() map[string][]byte {
	_, suffix := accelFuzzParts()
	v := map[string][]byte{
		"pristine":  suffix,
		"empty":     {},
		"truncated": suffix[:len(suffix)/2],
	}
	crc := append([]byte(nil), suffix...)
	crc[len(crc)-1] ^= 0x40 // fallback section checksum
	v["crc-stomp"] = crc

	count := append([]byte(nil), suffix...)
	// Byte 1 begins the RISC word count (after the level byte); force it
	// implausible and repair the section checksum so the count gate, not
	// the checksum, rejects it.
	count[1] = 0xFF
	data, spans := sampleAccelFile().Marshal()
	for _, sp := range spans {
		if sp.ID == SecAccelRISC {
			whole := append(append([]byte(nil), data[:len(data)-len(count)]...), count...)
			FixChecksum(whole, sp)
			v["count-skew"] = whole[len(data)-len(count):]
		}
	}

	f := sampleAccelFile()
	f.Accel.Entries[0] = 1 << 24 // structurally incoherent, checksums fine
	bad, badSpans := f.Marshal()
	for _, sp := range badSpans {
		if sp.ID == SecMeta {
			v["verify-reject"] = bad[sp.End:]
		}
	}
	return v
}

// FuzzParseAccelSection fuzzes only the acceleration sections behind a
// fixed valid CISC prefix: the deserializer must reject damage with typed
// errors, never panic, and anything it accepts must survive Verify without
// panicking and round-trip stably. Seeds beyond f.Add live in
// testdata/fuzz/FuzzParseAccelSection (see TestRegenAccelFuzzCorpus).
func FuzzParseAccelSection(f *testing.F) {
	prefix, _ := accelFuzzParts()
	for _, seed := range accelFuzzVariants() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, tail []byte) {
		data := append(append([]byte(nil), prefix...), tail...)
		cf, err := Read(bytes.NewReader(data))
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("untyped rejection: %v", err)
			}
			return
		}
		if cf.Accel != nil {
			_ = cf.Accel.Verify(cf, 0x010000) // any verdict, but no panic
		}
		var once bytes.Buffer
		if _, err := cf.WriteTo(&once); err != nil {
			t.Fatalf("serializing an accepted file: %v", err)
		}
		cf2, err := Read(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("reparsing own serialization: %v", err)
		}
		var twice bytes.Buffer
		cf2.WriteTo(&twice)
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatal("round trip not stable")
		}
	})
}

// TestRegenAccelFuzzCorpus rewrites the checked-in fuzz corpus from
// accelFuzzVariants (run with REGEN_FUZZ_CORPUS=1 after a format change);
// normally it just asserts the checked-in files match the variants.
func TestRegenAccelFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzParseAccelSection")
	regen := os.Getenv("REGEN_FUZZ_CORPUS") != ""
	if regen {
		if err := os.MkdirAll(dir, 0o777); err != nil {
			t.Fatal(err)
		}
	}
	for name, b := range accelFuzzVariants() {
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		path := filepath.Join(dir, name)
		if regen {
			if err := os.WriteFile(path, []byte(want), 0o666); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (set REGEN_FUZZ_CORPUS=1 to regenerate)", err)
		}
		if string(got) != want {
			t.Errorf("%s is stale (set REGEN_FUZZ_CORPUS=1 to regenerate)", name)
		}
	}
}

// FuzzPMapLookup drives the PMap through arbitrary legal Add sequences
// (increasing TNS and RISC order, as the Accelerator emits them) and checks
// that Lookup round-trips every inserted point exactly, never invents
// points, and that Inverse and Pack stay consistent and panic-free.
func FuzzPMapLookup(f *testing.F) {
	f.Add(uint16(64), []byte{0, 0, 1, 2, 7, 30, 3, 3})
	f.Add(uint16(8), []byte{0, 1})
	f.Add(uint16(2048), []byte{9, 20, 1, 1, 1, 1, 200, 5})
	f.Fuzz(func(t *testing.T, n uint16, data []byte) {
		size := int(n)%4096 + 1
		pm := NewPMap(size)

		type point struct {
			idx      int
			regExact bool
		}
		want := map[uint16]point{}
		addr, idx := 0, 0
		for i := 0; i+1 < len(data); i += 2 {
			if i > 0 {
				// Advance monotonically: 1..8 TNS words, 1..31 RISC words.
				// A group spans 8 TNS words, so the intra-group delta stays
				// below Add's 8-bit budget by construction.
				addr += 1 + int(data[i]%8)
				idx += 1 + int(data[i+1]%31)
			} else {
				addr = int(data[i] % 8)
				idx = int(data[i+1])
			}
			if addr >= size {
				break
			}
			re := data[i+1]&1 == 0
			pm.Add(uint16(addr), idx, re)
			want[uint16(addr)] = point{idx, re}
		}

		for a, p := range want {
			got, re, ok := pm.Lookup(a)
			if !ok {
				t.Fatalf("Lookup(%d): inserted point reported unmapped", a)
			}
			if got != p.idx || re != p.regExact {
				t.Fatalf("Lookup(%d) = (%d,%v), want (%d,%v)",
					a, got, re, p.idx, p.regExact)
			}
			if ta, ok := pm.Inverse(p.idx); !ok || ta != a {
				t.Fatalf("Inverse(%d) = (%d,%v), want (%d,true)", p.idx, ta, ok, a)
			}
		}
		for a := 0; a < size; a++ {
			if _, ok := want[uint16(a)]; ok {
				continue
			}
			if _, _, ok := pm.Lookup(uint16(a)); ok {
				t.Fatalf("Lookup(%d): unmapped address reported mapped", a)
			}
		}
		// Out-of-range lookups and serialization must not panic.
		pm.Lookup(uint16(size))
		pm.Lookup(0xFFFF)
		if got := len(pm.Pack()); got != 4+4*len(pm.base)+size {
			t.Fatalf("Pack length %d", got)
		}
		if pm.Len() != size {
			t.Fatalf("Len = %d, want %d", pm.Len(), size)
		}
	})
}
