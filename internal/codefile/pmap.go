package codefile

import "fmt"

// PMap is the Program Address Map: a sparse, monotonic mapping from 16-bit
// TNS instruction addresses to 32-bit RISC instruction addresses. Following
// the paper, it is compressed into one byte per TNS instruction word plus one
// base address per 8 TNS words — 12 bits of table per mapped or unmapped TNS
// word. Only register-exact points (usable as dynamic jump targets) and
// memory-exact points (usable by the debugger to mark statement boundaries)
// are mapped.
type PMap struct {
	// base[g] is the RISC word index corresponding to offset 0 of group g
	// (TNS words 8g..8g+7), or -1 if the group has no mapped words.
	base []int32
	// off[a] is the RISC word delta from base[a/8] for TNS word a, or
	// offUnmapped.
	off []uint8
	// regExact[a/64] bit a%64 is set if TNS word a is register-exact (as
	// opposed to memory-exact only).
	regExact []uint64

	// cache of mapped addresses for inverse lookups. It is populated only
	// by Seal (never lazily): a sealed PMap is immutable under Lookup and
	// Inverse, so one AccelSection can back any number of concurrent
	// runners — the fleet's shared-codefile contract.
	cache      []uint16
	cacheValid bool
}

const offUnmapped = 0xFF

// NewPMap creates an empty PMap covering a code segment of n words.
func NewPMap(n int) PMap {
	groups := (n + 7) / 8
	p := PMap{
		base:     make([]int32, groups),
		off:      make([]uint8, n),
		regExact: make([]uint64, (n+63)/64),
	}
	for i := range p.base {
		p.base[i] = -1
	}
	for i := range p.off {
		p.off[i] = offUnmapped
	}
	return p
}

// Len returns the number of TNS words covered.
func (p *PMap) Len() int { return len(p.off) }

// Add records that TNS address tnsAddr maps to RISC word index riscIdx.
// Within one 8-word group, addresses must be added in increasing TNS and
// RISC order (the Accelerator emits code in address order, so this holds by
// construction). Add returns an error — it must never panic, whatever a
// buggy or hostile caller feeds it — when the address is out of range or
// the delta from the group base exceeds the 8-bit budget, which would mean
// a single 8-word group expanded past ~254 RISC instructions, far beyond
// any real translation.
func (p *PMap) Add(tnsAddr uint16, riscIdx int, regExact bool) error {
	if int(tnsAddr) >= len(p.off) {
		return fmt.Errorf("codefile: PMap address %d outside %d code words",
			tnsAddr, len(p.off))
	}
	g := int(tnsAddr) / 8
	if p.base[g] < 0 {
		// Anchor the group base so the first mapped word has offset 0; the
		// group "origin" is base minus nothing. Offsets within the group are
		// deltas from this anchor.
		p.base[g] = int32(riscIdx)
	}
	d := riscIdx - int(p.base[g])
	if d < 0 || d >= offUnmapped {
		return fmt.Errorf("codefile: PMap group offset %d out of range at tns %d",
			d, tnsAddr)
	}
	p.off[tnsAddr] = uint8(d)
	p.cacheValid = false
	if regExact {
		p.regExact[tnsAddr/64] |= 1 << (tnsAddr % 64)
	}
	return nil
}

// Lookup maps a TNS address to its RISC word index. It returns ok=false when
// the address is unmapped; regExact reports whether the point may be entered
// by a dynamic jump (as opposed to being a debugger-only memory-exact point).
// Lookup is bounds-safe even on a structurally damaged PMap (skewed array
// lengths, a mapped word in a group with no base): damage reads as
// "unmapped", never as a panic or a fabricated index.
func (p *PMap) Lookup(tnsAddr uint16) (riscIdx int, regExact, ok bool) {
	a := int(tnsAddr)
	if a >= len(p.off) || p.off[a] == offUnmapped {
		return 0, false, false
	}
	g := a / 8
	if g >= len(p.base) || p.base[g] < 0 {
		return 0, false, false
	}
	idx := int(p.base[g]) + int(p.off[a])
	re := false
	if w := a / 64; w < len(p.regExact) {
		re = p.regExact[w]&(1<<(a%64)) != 0
	}
	return idx, re, true
}

// Inverse maps a RISC word index back to the greatest mapped TNS address
// whose RISC index does not exceed riscIdx — the "CISC view" the debugger
// presents of a running accelerated program. Because the PMap is monotonic,
// this is a binary search, as in the paper. It returns ok=false if riscIdx
// precedes all mapped code.
func (p *PMap) Inverse(riscIdx int) (tnsAddr uint16, ok bool) {
	mapped := p.mappedAddrs()
	lo, hi := 0, len(mapped)
	for lo < hi {
		mid := (lo + hi) / 2
		idx, _, _ := p.Lookup(mapped[mid])
		if idx <= riscIdx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, false
	}
	return mapped[lo-1], true
}

// mappedAddrs returns the mapped TNS addresses in order. It never writes:
// on a sealed PMap it returns the precomputed cache, otherwise it computes
// the slice afresh per call. Lazy population here would be a data race
// under the fleet's shared-AccelSection execution model.
func (p *PMap) mappedAddrs() []uint16 {
	if p.cacheValid {
		return p.cache
	}
	return p.computeMapped()
}

func (p *PMap) computeMapped() []uint16 {
	var out []uint16
	for a := range p.off {
		if p.off[a] != offUnmapped {
			out = append(out, uint16(a))
		}
	}
	return out
}

// Seal precomputes the inverse-lookup cache. After Seal, Lookup and Inverse
// perform no writes, so the PMap (and the AccelSection holding it) may be
// shared read-only between any number of concurrent runners. The translator
// seals every section it finalizes and the loader seals every section it
// parses; a later Add un-seals (and is then single-writer territory again).
func (p *PMap) Seal() {
	p.cache, p.cacheValid = p.computeMapped(), true
}

// SizeBits returns the PMap's storage cost in bits: 12 bits per TNS word
// (one byte of offset plus the amortized base array), the figure the paper
// uses for the 0.75 code-size term in Table 4.
func (p *PMap) SizeBits() int { return 12 * len(p.off) }

// Pack serializes the PMap into the flat big-endian layout the EXIT
// millicode walks at run time:
//
//	word 0:              group count G
//	words 1..G:          base array (RISC word index of each group anchor,
//	                     0xFFFFFFFF when the group is empty)
//	bytes 4(G+1)...:     offset array, one byte per TNS word, 0xFF when the
//	                     word is unmapped or not register-exact
//
// Only register-exact points appear in the packed table: the millicode
// lookup serves dynamic jumps, which must not land on memory-exact-only
// points. The host-side PMap keeps both kinds for the debugger.
func (p *PMap) Pack() []byte {
	g := len(p.base)
	out := make([]byte, 4+4*g+len(p.off))
	putU32 := func(off int, v uint32) {
		out[off] = byte(v >> 24)
		out[off+1] = byte(v >> 16)
		out[off+2] = byte(v >> 8)
		out[off+3] = byte(v)
	}
	putU32(0, uint32(g))
	for i, b := range p.base {
		if b < 0 {
			putU32(4+4*i, 0xFFFFFFFF)
		} else {
			// Anchors are stored as absolute RISC byte addresses, the form
			// the EXIT millicode adds offsets to.
			putU32(4+4*i, uint32(b)<<2)
		}
	}
	offBase := 4 + 4*g
	for a := range p.off {
		v := p.off[a]
		if v != offUnmapped {
			if w := a / 64; w >= len(p.regExact) || p.regExact[w]&(1<<(a%64)) == 0 {
				v = offUnmapped
			}
		}
		out[offBase+a] = v
	}
	return out
}

func (p *PMap) write(buf interface{ Write([]byte) (int, error) }) {
	w32 := func(v uint32) {
		buf.Write([]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	}
	w32(uint32(len(p.base)))
	for _, b := range p.base {
		w32(uint32(b))
	}
	w32(uint32(len(p.off)))
	buf.Write(p.off)
	w32(uint32(len(p.regExact)))
	for _, b := range p.regExact {
		w32(uint32(b >> 32))
		w32(uint32(b))
	}
}

func (p *PMap) read(br *reader) {
	p.base = br.i32s(br.u32())
	no := br.count(br.u32())
	if br.err == nil {
		p.off = make([]uint8, no)
		br.read(p.off)
	}
	nr := br.count(br.u32())
	if br.err == nil {
		p.regExact = make([]uint64, nr)
		for i := range p.regExact {
			hi := br.u32()
			lo := br.u32()
			p.regExact[i] = uint64(hi)<<32 | uint64(lo)
		}
	}
	// Loaded sections are execution artifacts: seal so concurrent runners
	// sharing this section never race on the inverse cache.
	p.Seal()
}
