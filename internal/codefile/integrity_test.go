package codefile

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"
)

// TestEveryBitFlipRejected is the blanket integrity guarantee of format v5:
// flip any single bit anywhere in a serialized codefile and Read must
// reject it with a typed corruption error — every payload byte is covered
// by some section checksum, and the checksum bytes are themselves compared.
func TestEveryBitFlipRejected(t *testing.T) {
	data, _ := sampleAccelFile().Marshal()
	for i := range data {
		for bit := uint(0); bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << bit
			_, err := Read(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("flip of byte %d bit %d accepted", i, bit)
			}
			if !IsCorrupt(err) {
				t.Fatalf("flip of byte %d bit %d: untyped error %v", i, bit, err)
			}
		}
	}
}

// TestDamageAttributedToSection: a flip inside a section's payload is
// reported against that section, so a runner can drop a corrupt
// acceleration while trusting the intact CISC image.
func TestDamageAttributedToSection(t *testing.T) {
	data, spans := sampleAccelFile().Marshal()
	for _, sp := range spans {
		if sp.End-4-sp.Start == 0 {
			continue // no payload bytes to damage
		}
		// Flip mid-payload; for the header that lands in the name, past
		// the magic and version words that fail with their own checks.
		at := sp.Start + (sp.End - 4 - sp.Start) - 1
		mut := append([]byte(nil), data...)
		mut[at] ^= 0x10
		_, err := Read(bytes.NewReader(mut))
		var ce *ErrCorrupt
		if !asCorrupt(err, &ce) {
			t.Fatalf("%s: flip at %d not a typed corruption: %v", sp.ID, at, err)
		}
		if ce.Section != sp.ID {
			t.Errorf("flip in %s attributed to %s (%v)", sp.ID, ce.Section, err)
		}
	}
}

func asCorrupt(err error, ce **ErrCorrupt) bool {
	if err == nil {
		return false
	}
	c, ok := err.(*ErrCorrupt)
	if ok {
		*ce = c
	}
	return ok
}

// TestEveryTruncationRejected: any prefix of a serialized codefile is
// rejected with a typed error — there is no length at which a truncated
// file accidentally parses.
func TestEveryTruncationRejected(t *testing.T) {
	data, _ := sampleAccelFile().Marshal()
	for n := 0; n < len(data); n++ {
		_, err := Read(bytes.NewReader(data[:n]))
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
		if !IsCorrupt(err) {
			t.Fatalf("truncation to %d: untyped error %v", n, err)
		}
	}
}

// TestTrailingGarbageRejected: the format is self-terminating.
func TestTrailingGarbageRejected(t *testing.T) {
	data, _ := sampleAccelFile().Marshal()
	for _, tail := range [][]byte{{0}, {0xFF}, bytes.Repeat([]byte{0xAB}, 16)} {
		_, err := Read(bytes.NewReader(append(append([]byte(nil), data...), tail...)))
		if err == nil || !IsCorrupt(err) {
			t.Fatalf("trailing %d bytes: err = %v", len(tail), err)
		}
	}
}

// TestFixChecksum: stomping a payload byte is caught; repairing the
// section's checksum afterwards makes the (content-altered) file load —
// the hole the chaos harness' structural mutators drive through, proving
// that AccelSection.Verify is a needed second line of defense.
func TestFixChecksum(t *testing.T) {
	data, spans := sampleAccelFile().Marshal()
	var code SectionSpan
	for _, sp := range spans {
		if sp.ID == SecCode {
			code = sp
		}
	}
	mut := append([]byte(nil), data...)
	mut[code.Start+5] ^= 0x01 // inside the code payload
	if _, err := Read(bytes.NewReader(mut)); err == nil || !IsCorrupt(err) {
		t.Fatalf("stomped code section: err = %v", err)
	}
	FixChecksum(mut, code)
	f, err := Read(bytes.NewReader(mut))
	if err != nil {
		t.Fatalf("checksum-repaired file rejected: %v", err)
	}
	if f.Unverified {
		t.Error("v5 file flagged Unverified")
	}
}

// marshalV4 archives the v4 wire format — identical field order, no
// section checksums — so the backward-compatibility gate keeps a real v4
// image to load, independent of the current Marshal.
func marshalV4(f *File) []byte {
	var buf bytes.Buffer
	p := func(v any) { binary.Write(&buf, binary.BigEndian, v) }
	p(uint32(magic))
	p(uint16(versionV4))
	writeString(&buf, f.Name)
	p(uint32(len(f.Code)))
	p(f.Code)
	p(uint32(len(f.Procs)))
	for i := range f.Procs {
		writeString(&buf, f.Procs[i].Name)
		p(f.Procs[i].Entry)
		p(f.Procs[i].ResultWords)
		p(f.Procs[i].ArgWords)
	}
	p(f.MainPEP)
	p(f.GlobalWords)
	p(uint32(len(f.Data)))
	for i := range f.Data {
		p(f.Data[i].Addr)
		p(uint32(len(f.Data[i].Words)))
		p(f.Data[i].Words)
	}
	p(uint32(len(f.Statements)))
	for i := range f.Statements {
		p(f.Statements[i].Addr)
		p(f.Statements[i].Line)
	}
	p(uint32(len(f.Symbols)))
	for i := range f.Symbols {
		p(f.Symbols[i].Proc)
		writeString(&buf, f.Symbols[i].Name)
		p(uint8(f.Symbols[i].Kind))
		p(f.Symbols[i].Addr)
		p(f.Symbols[i].Words)
	}
	if f.Accel == nil {
		p(uint8(0))
		return buf.Bytes()
	}
	p(uint8(1))
	a := f.Accel
	p(uint8(a.Level))
	p(uint32(len(a.RISC)))
	p(a.RISC)
	p(uint32(len(a.Entries)))
	p(a.Entries)
	p(uint32(len(a.ExpectedRP)))
	p(a.ExpectedRP)
	a.PMap.write(&buf)
	p(int64(a.Stats.TNSInstrs))
	p(int64(a.Stats.TableWords))
	p(int64(a.Stats.RISCInstrs))
	p(int64(a.Stats.RPChecks))
	p(int64(a.Stats.GuessedProcs))
	p(int64(a.Stats.PuzzlePoints))
	p(int64(a.Stats.WeldedStmts))
	p(int64(a.Stats.FilledSlots))
	p(int64(a.Stats.ElidedFlagOps))
	addrs := make([]uint16, 0, len(a.FallbackWhy))
	for addr := range a.FallbackWhy {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	p(uint32(len(addrs)))
	for _, addr := range addrs {
		p(addr)
		p(a.FallbackWhy[addr])
	}
	return buf.Bytes()
}

// TestV4BackCompat: a v4 file (no checksums) still loads, is flagged
// Unverified, carries identical content, and re-serializes as v5 — the
// fleet-upgrade path in which tools update before codefiles do.
func TestV4BackCompat(t *testing.T) {
	f := sampleAccelFile()
	f.Accel.FallbackWhy = map[uint16]uint8{3: 2}
	raw := marshalV4(f)
	g, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("v4 file rejected: %v", err)
	}
	if !g.Unverified {
		t.Error("v4 file not flagged Unverified")
	}
	want, _ := f.Marshal()
	got, _ := g.Marshal()
	if !bytes.Equal(want, got) {
		t.Fatal("v4 load does not re-serialize to the same v5 image")
	}
	// The rewritten file is v5: checked, and no longer Unverified.
	h, err := Read(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if h.Unverified {
		t.Error("v5 rewrite still flagged Unverified")
	}
	// v4 truncations must still be typed rejections, not panics.
	for n := 0; n < len(raw); n += 7 {
		if _, err := Read(bytes.NewReader(raw[:n])); err == nil || !IsCorrupt(err) {
			t.Fatalf("v4 truncation to %d: err = %v", n, err)
		}
	}
}

// verifiableFile is a minimal file whose acceleration section passes
// Verify at riscBase 100 — the baseline the rejection table mutates.
func verifiableFile() *File {
	f := &File{
		Name:  "v",
		Code:  make([]uint16, 8),
		Procs: []Proc{{Name: "main", Entry: 0}},
	}
	pm := NewPMap(8)
	pm.Add(0, 100, true)
	pm.Add(2, 105, true)
	f.Accel = &AccelSection{
		Level:       LevelDefault,
		RISC:        make([]uint32, 20),
		Entries:     []int32{100},
		ExpectedRP:  []uint8{0xFF, 3, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		PMap:        pm,
		FallbackWhy: map[uint16]uint8{1: 2},
	}
	return f
}

// TestVerifyRejectsEachInvariant drives AccelSection.Verify through every
// structural invariant with checksum-valid damage, checking each rejection
// is typed and attributed to the right section.
func TestVerifyRejectsEachInvariant(t *testing.T) {
	if err := verifiableFile().Accel.Verify(verifiableFile(), 100); err != nil {
		t.Fatalf("baseline does not verify: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*File)
		sec  SectionID
	}{
		{"entry count", func(f *File) { f.Accel.Entries = nil }, SecEMap},
		{"entry negative", func(f *File) { f.Accel.Entries[0] = -2 }, SecEMap},
		{"entry below base", func(f *File) { f.Accel.Entries[0] = 99 }, SecEMap},
		{"entry past end", func(f *File) { f.Accel.Entries[0] = 120 }, SecEMap},
		{"entry past pmap point", func(f *File) { f.Accel.Entries[0] = 101 }, SecEMap},
		{"entry unmapped", func(f *File) { f.Procs[0].Entry = 5 }, SecEMap},
		{"rp length", func(f *File) { f.Accel.ExpectedRP = f.Accel.ExpectedRP[:3] }, SecEMap},
		{"rp value", func(f *File) { f.Accel.ExpectedRP[1] = 9 }, SecEMap},
		{"fallback addr", func(f *File) { f.Accel.FallbackWhy[20] = 2 }, SecFallback},
		{"fallback reason", func(f *File) { f.Accel.FallbackWhy[1] = 99 }, SecFallback},
		{"pmap off length", func(f *File) {
			f.Accel.PMap.off = append(f.Accel.PMap.off, offUnmapped)
		}, SecPMap},
		{"pmap base length", func(f *File) {
			f.Accel.PMap.base = append(f.Accel.PMap.base, -1)
		}, SecPMap},
		{"pmap regexact length", func(f *File) {
			f.Accel.PMap.regExact = nil
		}, SecPMap},
		{"pmap unmapped regexact", func(f *File) {
			f.Accel.PMap.regExact[0] |= 1 << 5
		}, SecPMap},
		{"pmap empty base", func(f *File) { f.Accel.PMap.base[0] = -1 }, SecPMap},
		{"pmap out of range", func(f *File) { f.Accel.PMap.off[2] = 25 }, SecPMap},
		{"pmap decreasing", func(f *File) {
			f.Accel.PMap.off[1] = 7 // word 1 -> 107, word 2 -> 105: below predecessor
		}, SecPMap},
	}
	for _, tc := range cases {
		f := verifiableFile()
		tc.mut(f)
		err := f.Accel.Verify(f, 100)
		var ce *ErrCorrupt
		if !asCorrupt(err, &ce) {
			t.Errorf("%s: err = %v, want typed corruption", tc.name, err)
			continue
		}
		if ce.Section != tc.sec {
			t.Errorf("%s: attributed to %s, want %s", tc.name, ce.Section, tc.sec)
		}
	}
}

// TestHandCorruptedPMapIsSafe: a PMap with deliberately skewed internals
// must stay panic-free under Lookup, Inverse and Pack — damage reads as
// "unmapped", never as a fabricated index (the regression guard for the
// former reachable panic in the PMap paths).
func TestHandCorruptedPMapIsSafe(t *testing.T) {
	build := func() PMap {
		pm := NewPMap(16)
		pm.Add(0, 40, true)
		pm.Add(9, 55, true)
		return pm
	}

	pm := build()
	pm.base = pm.base[:1] // drop word 9's group base
	if _, _, ok := pm.Lookup(9); ok {
		t.Error("Lookup fabricated a point from a missing group base")
	}
	if _, _, ok := pm.Lookup(0); !ok {
		t.Error("intact point lost")
	}

	pm = build()
	pm.regExact = nil
	if _, re, ok := pm.Lookup(9); !ok || re {
		t.Errorf("Lookup on missing regExact = (%v,%v), want mapped but not exact", re, ok)
	}

	pm = build()
	pm.off = pm.off[:4]
	if _, _, ok := pm.Lookup(9); ok {
		t.Error("Lookup past truncated offset array reported mapped")
	}
	pm.Lookup(0xFFFF)
	pm.Inverse(1 << 30)
	pm.cacheValid = false
	pm.Pack()

	// Add on a hostile address errors instead of panicking.
	pm = build()
	if err := pm.Add(5000, 60, true); err == nil {
		t.Error("out-of-range Add accepted")
	}
}
