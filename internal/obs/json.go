package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// JSON renders the report as indented JSON (the tnsprof -json and
// CI-artifact format).
func (rep *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// ParseReport decodes a JSON report. Unknown fields are rejected so schema
// drift fails loudly in the round-trip test.
func ParseReport(data []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// knownPhases is the set of translation phases the Accelerator records.
var knownPhases = map[string]bool{
	"analyze": true, "rp": true, "liveness": true,
	"translate": true, "merge": true, "schedule": true, "finalize": true,
}

// Validate checks a report against the schema's invariants: schema tag,
// known enum values, non-negative counters, fractions in range, and
// per-procedure sums that reconcile with the mode totals. It is the
// "go vet"-style check the CI smoke test and the differential sweep run.
func Validate(rep *Report) error {
	if rep.Schema != Schema {
		return fmt.Errorf("obs: schema %q, want %q", rep.Schema, Schema)
	}
	if rep.Level == "" {
		return fmt.Errorf("obs: empty accel level")
	}
	m := rep.Modes
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"risc_instrs", m.RISCInstrs}, {"interp_instrs", m.InterpInstrs},
		{"interludes", m.Interludes}, {"risc_entries", m.RISCEntries},
		{"switches", m.Switches},
		{"pmap lookups", rep.PMap.Lookups}, {"pmap hits", rep.PMap.Hits},
	} {
		if c.v < 0 {
			return fmt.Errorf("obs: negative %s (%d)", c.name, c.v)
		}
	}
	if m.InterpFraction < 0 || m.InterpFraction > 1 {
		return fmt.Errorf("obs: interp_fraction %v out of [0,1]", m.InterpFraction)
	}
	if rep.PMap.Hits > rep.PMap.Lookups {
		return fmt.Errorf("obs: pmap hits %d > lookups %d", rep.PMap.Hits, rep.PMap.Lookups)
	}
	for _, e := range rep.Escapes {
		if _, ok := ReasonFromName(e.Reason); !ok {
			return fmt.Errorf("obs: unknown escape reason %q", e.Reason)
		}
		if e.Count <= 0 {
			return fmt.Errorf("obs: escape %q with non-positive count %d", e.Reason, e.Count)
		}
	}
	for _, s := range rep.Sites {
		if _, ok := ReasonFromName(s.Reason); !ok {
			return fmt.Errorf("obs: site %s:%d has unknown reason %q", s.Space, s.Addr, s.Reason)
		}
		if s.Space != "user" && s.Space != "lib" {
			return fmt.Errorf("obs: site addr %d has unknown space %q", s.Addr, s.Space)
		}
		if s.Count <= 0 {
			return fmt.Errorf("obs: site %s:%d with non-positive count %d", s.Space, s.Addr, s.Count)
		}
	}
	var sumI, sumR int64
	for _, p := range rep.Procs {
		if p.RISCInstrs < 0 || p.InterpInstrs < 0 {
			return fmt.Errorf("obs: negative residency for %q", p.Name)
		}
		sumI += p.InterpInstrs
		sumR += p.RISCInstrs
	}
	if len(rep.Procs) > 0 {
		if sumI != m.InterpInstrs {
			return fmt.Errorf("obs: per-proc interp sum %d != total %d", sumI, m.InterpInstrs)
		}
		if sumR != m.RISCInstrs {
			return fmt.Errorf("obs: per-proc risc sum %d != total %d", sumR, m.RISCInstrs)
		}
	}
	if rep.Degraded && rep.DegradedReason == "" {
		return fmt.Errorf("obs: degraded without a reason")
	}
	if !rep.Degraded && rep.DegradedReason != "" {
		return fmt.Errorf("obs: degraded_reason %q without degraded flag", rep.DegradedReason)
	}
	for _, q := range rep.Quarantined {
		if q.Name == "" {
			return fmt.Errorf("obs: quarantined procedure with empty name")
		}
		if q.Space != "user" && q.Space != "lib" {
			return fmt.Errorf("obs: quarantined %q has unknown space %q", q.Name, q.Space)
		}
		if q.Traps <= 0 {
			return fmt.Errorf("obs: quarantined %q with non-positive trap count %d", q.Name, q.Traps)
		}
	}
	for _, p := range rep.Phases {
		if !knownPhases[p.Phase] {
			return fmt.Errorf("obs: unknown translation phase %q", p.Phase)
		}
		if p.Seconds < 0 {
			return fmt.Errorf("obs: negative phase time for %q", p.Phase)
		}
	}
	return nil
}
