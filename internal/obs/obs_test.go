package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"tnsr/internal/codefile"
)

// fixtureRecorder builds a recorder attached to a tiny synthetic runtime:
// a two-procedure user file translated into an 8-word region above a
// 4-word millicode area, no library.
func fixtureRecorder(t *testing.T) *Recorder {
	t.Helper()
	user := &codefile.File{
		Name: "u",
		Code: make([]uint16, 10),
		Procs: []codefile.Proc{
			{Name: "main", Entry: 0},
			{Name: "leaf", Entry: 6},
		},
		Accel: &codefile.AccelSection{
			RISC:    make([]uint32, 8),
			Entries: []int32{4, 9}, // absolute word indexes, base 4
		},
	}
	rec := NewRecorder()
	rec.AttachRuntime(user, nil, 12, 4, 100)
	return rec
}

func TestEscapeReasonNames(t *testing.T) {
	for r := EscapeReason(0); r < NumEscapeReasons; r++ {
		name := r.String()
		if name == "" || name == "invalid" {
			t.Fatalf("reason %d has no name", r)
		}
		back, ok := ReasonFromName(name)
		if !ok || back != r {
			t.Fatalf("round-trip of %q: got %v ok=%v", name, back, ok)
		}
	}
	if _, ok := ReasonFromName("nope"); ok {
		t.Fatal("unknown name accepted")
	}
}

func TestResidencyAttribution(t *testing.T) {
	rec := fixtureRecorder(t)
	// Interpreter: 3 steps in main [0,6), 2 in leaf [6,10).
	for _, p := range []uint16{0, 3, 5} {
		rec.InterpStep(0, p)
	}
	rec.InterpStep(0, 6)
	rec.InterpStep(0, 9)
	// RISC: 2 millicode words, 4 in main's region [4,9), 1 in leaf's [9,12).
	for _, pc := range []uint32{0, 3, 4, 5, 7, 8, 10} {
		rec.RISCStep(pc)
	}
	rec.Escape(0, 5, EscapeRPConflict, true)
	rec.Escape(0, 5, EscapeRPConflict, true)
	rec.Escape(0, 9, EscapeTrap, false)
	rec.EnterRISC()
	rec.PMapLookup(true)
	rec.PMapLookup(false)
	rec.Phase("analyze", 2*time.Millisecond)
	rec.Phase("analyze", time.Millisecond)
	rec.Phase("translate", time.Millisecond)

	rep := rec.Report()
	if rep.Modes.InterpInstrs != 5 || rep.Modes.RISCInstrs != 7 {
		t.Fatalf("mode totals: %+v", rep.Modes)
	}
	if rep.Modes.Interludes != 2 || rep.Modes.RISCEntries != 1 {
		t.Fatalf("transitions: %+v", rep.Modes)
	}
	got := map[string][2]int64{}
	for _, p := range rep.Procs {
		got[p.Name] = [2]int64{p.RISCInstrs, p.InterpInstrs}
	}
	want := map[string][2]int64{
		"main":        {4, 3},
		"leaf":        {1, 2},
		"(millicode)": {2, 0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("proc residency: got %v want %v", got, want)
	}
	if rec.Escapes[EscapeRPConflict] != 2 || rec.Escapes[EscapeTrap] != 1 {
		t.Fatalf("escape histogram: %v", rec.Escapes)
	}
	if len(rep.Sites) != 2 || rep.Sites[0].Addr != 5 || rep.Sites[0].Count != 2 {
		t.Fatalf("sites: %+v", rep.Sites)
	}
	if rep.PMap.Lookups != 2 || rep.PMap.Hits != 1 || rep.PMap.HitRate != 0.5 {
		t.Fatalf("pmap: %+v", rep.PMap)
	}
	if len(rep.Phases) != 2 || rep.Phases[0].Phase != "analyze" ||
		rep.Phases[0].Seconds != 0.003 {
		t.Fatalf("phases: %+v", rep.Phases)
	}
	if err := Validate(rep); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rec := fixtureRecorder(t)
	rec.InterpStep(0, 1)
	rec.RISCStep(5)
	rec.Escape(0, 1, EscapeUnmapped, true)
	rec.Phase("rp", time.Millisecond)
	rep := rec.Report()
	rep.Workload = "fixture"
	rep.Level = "Default"
	rep.Modes.TotalCycles = 100
	rep.Modes.RISCCycles = 90
	rep.Modes.InterpCycles = 10
	rep.Modes.InterpFraction = 0.1
	rep.Modes.Switches = 2

	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Validate(back); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip changed the report:\n%+v\n%+v", rep, back)
	}
	if _, err := ParseReport([]byte(`{"schema":"x","bogus_field":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	good := func() *Report {
		return &Report{Schema: Schema, Level: "Default"}
	}
	cases := []struct {
		name string
		mut  func(*Report)
	}{
		{"bad schema", func(r *Report) { r.Schema = "v0" }},
		{"empty level", func(r *Report) { r.Level = "" }},
		{"bad reason", func(r *Report) {
			r.Escapes = []EscapeCount{{Reason: "meteor", Count: 1}}
		}},
		{"bad fraction", func(r *Report) { r.Modes.InterpFraction = 1.5 }},
		{"hits exceed lookups", func(r *Report) { r.PMap.Hits = 2 }},
		{"proc sum mismatch", func(r *Report) {
			r.Procs = []ProcResidency{{Name: "p", Space: "user", RISCInstrs: 3}}
		}},
		{"bad phase", func(r *Report) {
			r.Phases = []PhaseTiming{{Phase: "paint", Seconds: 1}}
		}},
	}
	if err := Validate(good()); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	for _, c := range cases {
		r := good()
		c.mut(r)
		if Validate(r) == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestPrometheusExport(t *testing.T) {
	rec := fixtureRecorder(t)
	rec.RISCStep(5)
	rec.Escape(0, 1, EscapeComputedJump, true)
	rep := rec.Report()
	rep.Workload = "fixture"
	var buf bytes.Buffer
	rep.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`tnsr_run_info{workload="fixture",level="None"} 1`,
		`tnsr_mode_instructions_total{mode="risc"} 1`,
		`tnsr_escapes_total{reason="computed-jump"} 1`,
		`tnsr_pmap_lookups_total{result="miss"} 0`,
		`tnsr_proc_instructions_total{proc="main",space="user",mode="risc"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
