package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the report in the Prometheus text exposition
// format (version 0.0.4), suitable for a node-exporter textfile collector
// or a scrape endpoint fed by tnsprof -prom.
func (rep *Report) WritePrometheus(w io.Writer) {
	info := fmt.Sprintf("workload=%q,level=%q", rep.Workload, rep.Level)
	fmt.Fprintf(w, "# HELP tnsr_run_info Run identity (constant 1).\n")
	fmt.Fprintf(w, "# TYPE tnsr_run_info gauge\n")
	fmt.Fprintf(w, "tnsr_run_info{%s} 1\n", info)

	m := rep.Modes
	fmt.Fprintf(w, "# HELP tnsr_mode_instructions_total Instructions executed per execution mode.\n")
	fmt.Fprintf(w, "# TYPE tnsr_mode_instructions_total counter\n")
	fmt.Fprintf(w, "tnsr_mode_instructions_total{mode=\"risc\"} %d\n", m.RISCInstrs)
	fmt.Fprintf(w, "tnsr_mode_instructions_total{mode=\"interp\"} %d\n", m.InterpInstrs)

	fmt.Fprintf(w, "# HELP tnsr_mode_cycles_total Cyclone/R cycles priced per execution mode.\n")
	fmt.Fprintf(w, "# TYPE tnsr_mode_cycles_total counter\n")
	fmt.Fprintf(w, "tnsr_mode_cycles_total{mode=\"risc\"} %g\n", m.RISCCycles)
	fmt.Fprintf(w, "tnsr_mode_cycles_total{mode=\"interp\"} %g\n", m.InterpCycles)

	fmt.Fprintf(w, "# HELP tnsr_interp_fraction Fraction of cycles spent in interpreter mode.\n")
	fmt.Fprintf(w, "# TYPE tnsr_interp_fraction gauge\n")
	fmt.Fprintf(w, "tnsr_interp_fraction %g\n", m.InterpFraction)

	fmt.Fprintf(w, "# HELP tnsr_interludes_total Interpreter interludes.\n")
	fmt.Fprintf(w, "# TYPE tnsr_interludes_total counter\n")
	fmt.Fprintf(w, "tnsr_interludes_total %d\n", m.Interludes)

	fmt.Fprintf(w, "# HELP tnsr_mode_switches_total Execution-mode switches, both directions.\n")
	fmt.Fprintf(w, "# TYPE tnsr_mode_switches_total counter\n")
	fmt.Fprintf(w, "tnsr_mode_switches_total %d\n", m.Switches)

	fmt.Fprintf(w, "# HELP tnsr_escapes_total Escapes from translated code by reason.\n")
	fmt.Fprintf(w, "# TYPE tnsr_escapes_total counter\n")
	for _, e := range rep.Escapes {
		fmt.Fprintf(w, "tnsr_escapes_total{reason=%q} %d\n", e.Reason, e.Count)
	}

	fmt.Fprintf(w, "# HELP tnsr_pmap_lookups_total Host-side PMap probes by result.\n")
	fmt.Fprintf(w, "# TYPE tnsr_pmap_lookups_total counter\n")
	fmt.Fprintf(w, "tnsr_pmap_lookups_total{result=\"hit\"} %d\n", rep.PMap.Hits)
	fmt.Fprintf(w, "tnsr_pmap_lookups_total{result=\"miss\"} %d\n",
		rep.PMap.Lookups-rep.PMap.Hits)

	fmt.Fprintf(w, "# HELP tnsr_proc_instructions_total Instructions per procedure and mode.\n")
	fmt.Fprintf(w, "# TYPE tnsr_proc_instructions_total counter\n")
	for _, p := range rep.Procs {
		lbl := fmt.Sprintf("proc=%q,space=%q", promEscape(p.Name), p.Space)
		fmt.Fprintf(w, "tnsr_proc_instructions_total{%s,mode=\"risc\"} %d\n", lbl, p.RISCInstrs)
		fmt.Fprintf(w, "tnsr_proc_instructions_total{%s,mode=\"interp\"} %d\n", lbl, p.InterpInstrs)
	}

	fmt.Fprintf(w, "# HELP tnsr_degraded Whether the run was fully interpreted after integrity verification failed.\n")
	fmt.Fprintf(w, "# TYPE tnsr_degraded gauge\n")
	fmt.Fprintf(w, "tnsr_degraded %d\n", b2i(rep.Degraded))

	if len(rep.Quarantined) > 0 {
		fmt.Fprintf(w, "# HELP tnsr_quarantined_traps_total Traps that demoted a procedure to interpreter-only.\n")
		fmt.Fprintf(w, "# TYPE tnsr_quarantined_traps_total counter\n")
		for _, q := range rep.Quarantined {
			fmt.Fprintf(w, "tnsr_quarantined_traps_total{proc=%q,space=%q} %d\n",
				promEscape(q.Name), q.Space, q.Traps)
		}
	}

	fmt.Fprintf(w, "# HELP tnsr_translation_phase_seconds Wall time per Accelerator phase.\n")
	fmt.Fprintf(w, "# TYPE tnsr_translation_phase_seconds gauge\n")
	for _, p := range rep.Phases {
		fmt.Fprintf(w, "tnsr_translation_phase_seconds{phase=%q} %g\n", p.Phase, p.Seconds)
	}
}

// promEscape keeps label values within the exposition format (quotes and
// backslashes are escaped by %q; strip newlines defensively).
func promEscape(s string) string {
	return strings.ReplaceAll(s, "\n", " ")
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
