package obs

import (
	"fmt"
	"io"
	"strings"
)

// PromHeader writes the HELP/TYPE preamble of one metric family in the
// Prometheus text exposition format (version 0.0.4). Every tnsr exporter —
// the report writer below, the profile server's /metrics endpoint — goes
// through it so the fleet's scrape surface stays uniform.
func PromHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// PromEscape keeps a label value within the exposition format (quotes and
// backslashes are escaped by %q at the call site; newlines are stripped
// defensively here).
func PromEscape(s string) string { return promEscape(s) }

// WritePrometheus renders the report in the Prometheus text exposition
// format (version 0.0.4), suitable for a node-exporter textfile collector
// or a scrape endpoint fed by tnsprof -prom.
func (rep *Report) WritePrometheus(w io.Writer) {
	info := fmt.Sprintf("workload=%q,level=%q", rep.Workload, rep.Level)
	PromHeader(w, "tnsr_run_info", "gauge", "Run identity (constant 1).")
	fmt.Fprintf(w, "tnsr_run_info{%s} 1\n", info)

	m := rep.Modes
	PromHeader(w, "tnsr_mode_instructions_total", "counter",
		"Instructions executed per execution mode.")
	fmt.Fprintf(w, "tnsr_mode_instructions_total{mode=\"risc\"} %d\n", m.RISCInstrs)
	fmt.Fprintf(w, "tnsr_mode_instructions_total{mode=\"interp\"} %d\n", m.InterpInstrs)

	PromHeader(w, "tnsr_mode_cycles_total", "counter", "Cyclone/R cycles priced per execution mode.")
	fmt.Fprintf(w, "tnsr_mode_cycles_total{mode=\"risc\"} %g\n", m.RISCCycles)
	fmt.Fprintf(w, "tnsr_mode_cycles_total{mode=\"interp\"} %g\n", m.InterpCycles)

	PromHeader(w, "tnsr_interp_fraction", "gauge", "Fraction of cycles spent in interpreter mode.")
	fmt.Fprintf(w, "tnsr_interp_fraction %g\n", m.InterpFraction)

	PromHeader(w, "tnsr_interludes_total", "counter", "Interpreter interludes.")
	fmt.Fprintf(w, "tnsr_interludes_total %d\n", m.Interludes)

	PromHeader(w, "tnsr_mode_switches_total", "counter", "Execution-mode switches, both directions.")
	fmt.Fprintf(w, "tnsr_mode_switches_total %d\n", m.Switches)

	PromHeader(w, "tnsr_escapes_total", "counter", "Escapes from translated code by reason.")
	for _, e := range rep.Escapes {
		fmt.Fprintf(w, "tnsr_escapes_total{reason=%q} %d\n", e.Reason, e.Count)
	}

	PromHeader(w, "tnsr_pmap_lookups_total", "counter", "Host-side PMap probes by result.")
	fmt.Fprintf(w, "tnsr_pmap_lookups_total{result=\"hit\"} %d\n", rep.PMap.Hits)
	fmt.Fprintf(w, "tnsr_pmap_lookups_total{result=\"miss\"} %d\n",
		rep.PMap.Lookups-rep.PMap.Hits)

	PromHeader(w, "tnsr_proc_instructions_total", "counter", "Instructions per procedure and mode.")
	for _, p := range rep.Procs {
		lbl := fmt.Sprintf("proc=%q,space=%q", promEscape(p.Name), p.Space)
		fmt.Fprintf(w, "tnsr_proc_instructions_total{%s,mode=\"risc\"} %d\n", lbl, p.RISCInstrs)
		fmt.Fprintf(w, "tnsr_proc_instructions_total{%s,mode=\"interp\"} %d\n", lbl, p.InterpInstrs)
	}

	PromHeader(w, "tnsr_degraded", "gauge", "Whether the run was fully interpreted after integrity verification failed.")
	fmt.Fprintf(w, "tnsr_degraded %d\n", b2i(rep.Degraded))

	if len(rep.Quarantined) > 0 {
		PromHeader(w, "tnsr_quarantined_traps_total", "counter",
			"Traps that demoted a procedure to interpreter-only.")
		for _, q := range rep.Quarantined {
			fmt.Fprintf(w, "tnsr_quarantined_traps_total{proc=%q,space=%q} %d\n",
				promEscape(q.Name), q.Space, q.Traps)
		}
	}

	PromHeader(w, "tnsr_translation_phase_seconds", "gauge", "Wall time per Accelerator phase.")
	for _, p := range rep.Phases {
		fmt.Fprintf(w, "tnsr_translation_phase_seconds{phase=%q} %g\n", p.Phase, p.Seconds)
	}
}

// promEscape keeps label values within the exposition format (quotes and
// backslashes are escaped by %q; strip newlines defensively).
func promEscape(s string) string {
	return strings.ReplaceAll(s, "\n", " ")
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
