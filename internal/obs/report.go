package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Schema identifies the JSON report format; bump on incompatible change.
const Schema = "tnsr/obs-report/v1"

// Report is the assembled telemetry of one run: the recorder's counters
// plus the runner-priced cycle split (filled by xrun.Runner.Report). It is
// the unit all three exporters consume.
type Report struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload,omitempty"`
	Level    string `json:"level"`

	Modes   ModeResidency   `json:"modes"`
	Escapes []EscapeCount   `json:"escapes"`
	Sites   []EscapeSite    `json:"escape_sites,omitempty"`
	PMap    PMapStats       `json:"pmap"`
	Procs   []ProcResidency `json:"procs"`
	Phases  []PhaseTiming   `json:"translation_phases"`

	// Degradation: set when the runner refused or abandoned translated
	// code. Degraded means a whole acceleration section failed
	// verification and the run was fully interpreted; Quarantined lists
	// procedures individually demoted to the interpreter after repeated
	// unexpected traps.
	Degraded       bool              `json:"degraded,omitempty"`
	DegradedReason string            `json:"degraded_reason,omitempty"`
	Quarantined    []QuarantinedProc `json:"quarantined,omitempty"`
}

// QuarantinedProc is one procedure demoted to interpreter-only execution
// after its RISC fragment produced a trap storm.
type QuarantinedProc struct {
	Name  string `json:"name"`
	Space string `json:"space"`
	Traps int64  `json:"traps"`
}

// ModeResidency splits the run between translated RISC code and
// interpreter interludes, in instructions and in Cyclone/R cycles — the
// paper's "% time interpreted" framing.
type ModeResidency struct {
	RISCInstrs     int64   `json:"risc_instrs"`
	InterpInstrs   int64   `json:"interp_instrs"`
	RISCCycles     float64 `json:"risc_cycles"`
	InterpCycles   float64 `json:"interp_cycles"`
	TotalCycles    float64 `json:"total_cycles"`
	InterpFraction float64 `json:"interp_fraction"`
	Interludes     int64   `json:"interludes"`
	RISCEntries    int64   `json:"risc_entries"`
	Switches       int64   `json:"switches"`
}

// EscapeCount is one row of the escape-reason histogram.
type EscapeCount struct {
	Reason string `json:"reason"`
	Count  int64  `json:"count"`
}

// EscapeSite is one escape location, hottest first.
type EscapeSite struct {
	Space  string `json:"space"`
	Addr   uint16 `json:"addr"`
	Reason string `json:"reason"`
	Count  int64  `json:"count"`
}

// PMapStats reports host-side PMap probe counters.
type PMapStats struct {
	Lookups int64   `json:"lookups"`
	Hits    int64   `json:"hits"`
	HitRate float64 `json:"hit_rate"`
}

// ProcResidency is one procedure's per-mode instruction counts.
type ProcResidency struct {
	Name         string `json:"name"`
	Space        string `json:"space"`
	RISCInstrs   int64  `json:"risc_instrs"`
	InterpInstrs int64  `json:"interp_instrs"`
}

// PhaseTiming is one translation phase's accumulated wall time.
type PhaseTiming struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

var spaceLabels = [2]string{"user", "lib"}

// Report assembles the recorder's counters into a Report. Cycle pricing
// (RISCCycles, InterpCycles, InterpFraction, Switches) and the workload and
// level names belong to the runner; xrun.Runner.Report fills them in.
func (r *Recorder) Report() *Report {
	rep := &Report{
		Schema: Schema,
		Level:  "None",
		Modes: ModeResidency{
			RISCInstrs:   r.RISCInstrs,
			InterpInstrs: r.InterpInstrs,
			Interludes:   r.InterpEntries,
			RISCEntries:  r.RISCEntries,
		},
		PMap: PMapStats{Lookups: r.PMapLookups, Hits: r.PMapHits},
	}
	if r.PMapLookups > 0 {
		rep.PMap.HitRate = float64(r.PMapHits) / float64(r.PMapLookups)
	}
	for reason, n := range r.Escapes {
		if n > 0 {
			rep.Escapes = append(rep.Escapes,
				EscapeCount{Reason: EscapeReason(reason).String(), Count: n})
		}
	}
	for _, s := range r.sites {
		rep.Sites = append(rep.Sites, EscapeSite{
			Space:  spaceLabels[s.space&1],
			Addr:   s.addr,
			Reason: s.reason.String(),
			Count:  s.count,
		})
	}
	sort.Slice(rep.Sites, func(i, j int) bool {
		if rep.Sites[i].Count != rep.Sites[j].Count {
			return rep.Sites[i].Count > rep.Sites[j].Count
		}
		if rep.Sites[i].Space != rep.Sites[j].Space {
			return rep.Sites[i].Space < rep.Sites[j].Space
		}
		return rep.Sites[i].Addr < rep.Sites[j].Addr
	})
	for _, p := range r.procs {
		if p.interp == 0 && p.risc == 0 {
			continue
		}
		rep.Procs = append(rep.Procs, ProcResidency{
			Name: p.name, Space: p.space,
			RISCInstrs: p.risc, InterpInstrs: p.interp,
		})
	}
	sort.Slice(rep.Procs, func(i, j int) bool {
		ti := rep.Procs[i].RISCInstrs + rep.Procs[i].InterpInstrs
		tj := rep.Procs[j].RISCInstrs + rep.Procs[j].InterpInstrs
		if ti != tj {
			return ti > tj
		}
		return rep.Procs[i].Name < rep.Procs[j].Name
	})
	for i, name := range r.phaseNames {
		rep.Phases = append(rep.Phases,
			PhaseTiming{Phase: name, Seconds: r.phaseDur[i].Seconds()})
	}
	return rep
}

// WriteText renders the human-readable report: the paper's "% time
// interpreted" framing first, then the escape histogram, PMap counters,
// per-procedure residency and translation-phase timings. top bounds the
// escape-site and procedure listings (0 means all).
func (rep *Report) WriteText(w io.Writer, top int) {
	name := rep.Workload
	if name == "" {
		name = "(run)"
	}
	fmt.Fprintf(w, "tnsprof — %s (accel %s)\n", name, rep.Level)
	if rep.Degraded {
		fmt.Fprintf(w, "  DEGRADED: running fully interpreted — %s\n", rep.DegradedReason)
	}
	m := rep.Modes
	fmt.Fprintf(w, "\nMode residency (Cyclone/R cycles):\n")
	fmt.Fprintf(w, "  translated RISC    %14.0f cycles  (%.3f%%)\n",
		m.RISCCycles, pct(m.RISCCycles, m.TotalCycles))
	fmt.Fprintf(w, "  interpreter mode   %14.0f cycles  (%.3f%% time interpreted)\n",
		m.InterpCycles, m.InterpFraction*100)
	fmt.Fprintf(w, "  instructions: %d RISC, %d interpreted; %d interludes, %d switches\n",
		m.RISCInstrs, m.InterpInstrs, m.Interludes, m.Switches)

	fmt.Fprintf(w, "\nEscape reasons:\n")
	if len(rep.Escapes) == 0 {
		fmt.Fprintf(w, "  (none)\n")
	}
	for _, e := range rep.Escapes {
		fmt.Fprintf(w, "  %-14s %8d\n", e.Reason, e.Count)
	}
	if n := len(rep.Sites); n > 0 {
		fmt.Fprintf(w, "\nHottest escape sites:\n")
		for i, s := range rep.Sites {
			if top > 0 && i >= top {
				fmt.Fprintf(w, "  ... %d more\n", n-i)
				break
			}
			fmt.Fprintf(w, "  %s:%-6d %-14s %8d\n", s.Space, s.Addr, s.Reason, s.Count)
		}
	}

	fmt.Fprintf(w, "\nPMap (host-side probes): %d lookups, %d hits (%.1f%%)\n",
		rep.PMap.Lookups, rep.PMap.Hits, rep.PMap.HitRate*100)

	if len(rep.Procs) > 0 {
		fmt.Fprintf(w, "\nPer-procedure residency (by instructions):\n")
		fmt.Fprintf(w, "  %-20s %-6s %12s %12s %9s\n",
			"procedure", "space", "risc", "interp", "%interp")
		for i, p := range rep.Procs {
			if top > 0 && i >= top {
				fmt.Fprintf(w, "  ... %d more\n", len(rep.Procs)-i)
				break
			}
			fmt.Fprintf(w, "  %-20s %-6s %12d %12d %8.2f%%\n",
				p.Name, p.Space, p.RISCInstrs, p.InterpInstrs,
				pct(float64(p.InterpInstrs), float64(p.RISCInstrs+p.InterpInstrs)))
		}
	}

	if len(rep.Quarantined) > 0 {
		fmt.Fprintf(w, "\nQuarantined procedures (trap storm, demoted to interpreter):\n")
		for _, q := range rep.Quarantined {
			fmt.Fprintf(w, "  %-20s %-6s %8d traps\n", q.Name, q.Space, q.Traps)
		}
	}

	if len(rep.Phases) > 0 {
		fmt.Fprintf(w, "\nTranslation phases:\n")
		for _, p := range rep.Phases {
			fmt.Fprintf(w, "  %-10s %10.3f ms\n", p.Phase, p.Seconds*1e3)
		}
	}
	fmt.Fprintln(w, strings.Repeat("-", 60))
}

func pct(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return part / whole * 100
}
