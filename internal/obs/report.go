package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Schema identifies the JSON report format; bump on incompatible change.
const Schema = "tnsr/obs-report/v1"

// Report is the assembled telemetry of one run: the recorder's counters
// plus the runner-priced cycle split (filled by xrun.Runner.Report). It is
// the unit all three exporters consume.
type Report struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload,omitempty"`
	Level    string `json:"level"`

	Modes   ModeResidency   `json:"modes"`
	Escapes []EscapeCount   `json:"escapes"`
	Sites   []EscapeSite    `json:"escape_sites,omitempty"`
	PMap    PMapStats       `json:"pmap"`
	Procs   []ProcResidency `json:"procs"`
	Phases  []PhaseTiming   `json:"translation_phases"`

	// Degradation: set when the runner refused or abandoned translated
	// code. Degraded means a whole acceleration section failed
	// verification and the run was fully interpreted; Quarantined lists
	// procedures individually demoted to the interpreter after repeated
	// unexpected traps.
	Degraded       bool              `json:"degraded,omitempty"`
	DegradedReason string            `json:"degraded_reason,omitempty"`
	Quarantined    []QuarantinedProc `json:"quarantined,omitempty"`
}

// QuarantinedProc is one procedure demoted to interpreter-only execution
// after its RISC fragment produced a trap storm.
type QuarantinedProc struct {
	Name  string `json:"name"`
	Space string `json:"space"`
	Traps int64  `json:"traps"`
}

// ModeResidency splits the run between translated RISC code and
// interpreter interludes, in instructions and in Cyclone/R cycles — the
// paper's "% time interpreted" framing.
type ModeResidency struct {
	RISCInstrs     int64   `json:"risc_instrs"`
	InterpInstrs   int64   `json:"interp_instrs"`
	RISCCycles     float64 `json:"risc_cycles"`
	InterpCycles   float64 `json:"interp_cycles"`
	TotalCycles    float64 `json:"total_cycles"`
	InterpFraction float64 `json:"interp_fraction"`
	Interludes     int64   `json:"interludes"`
	RISCEntries    int64   `json:"risc_entries"`
	Switches       int64   `json:"switches"`
}

// EscapeCount is one row of the escape-reason histogram.
type EscapeCount struct {
	Reason string `json:"reason"`
	Count  int64  `json:"count"`
}

// EscapeSite is one escape location, hottest first.
type EscapeSite struct {
	Space  string `json:"space"`
	Addr   uint16 `json:"addr"`
	Reason string `json:"reason"`
	Count  int64  `json:"count"`
}

// PMapStats reports host-side PMap probe counters.
type PMapStats struct {
	Lookups int64   `json:"lookups"`
	Hits    int64   `json:"hits"`
	HitRate float64 `json:"hit_rate"`
}

// ProcResidency is one procedure's per-mode instruction counts.
type ProcResidency struct {
	Name         string `json:"name"`
	Space        string `json:"space"`
	RISCInstrs   int64  `json:"risc_instrs"`
	InterpInstrs int64  `json:"interp_instrs"`
}

// PhaseTiming is one translation phase's accumulated wall time.
type PhaseTiming struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

var spaceLabels = [2]string{"user", "lib"}

// Report assembles the recorder's counters into a Report. Cycle pricing
// (RISCCycles, InterpCycles, InterpFraction, Switches) and the workload and
// level names belong to the runner; xrun.Runner.Report fills them in.
func (r *Recorder) Report() *Report {
	rep := &Report{
		Schema: Schema,
		Level:  "None",
		Modes: ModeResidency{
			RISCInstrs:   r.RISCInstrs,
			InterpInstrs: r.InterpInstrs,
			Interludes:   r.InterpEntries,
			RISCEntries:  r.RISCEntries,
		},
		PMap: PMapStats{Lookups: r.PMapLookups, Hits: r.PMapHits},
	}
	if r.PMapLookups > 0 {
		rep.PMap.HitRate = float64(r.PMapHits) / float64(r.PMapLookups)
	}
	for reason, n := range r.Escapes {
		if n > 0 {
			rep.Escapes = append(rep.Escapes,
				EscapeCount{Reason: EscapeReason(reason).String(), Count: n})
		}
	}
	for _, s := range r.sites {
		rep.Sites = append(rep.Sites, EscapeSite{
			Space:  spaceLabels[s.space&1],
			Addr:   s.addr,
			Reason: s.reason.String(),
			Count:  s.count,
		})
	}
	sort.Slice(rep.Sites, func(i, j int) bool {
		if rep.Sites[i].Count != rep.Sites[j].Count {
			return rep.Sites[i].Count > rep.Sites[j].Count
		}
		if rep.Sites[i].Space != rep.Sites[j].Space {
			return rep.Sites[i].Space < rep.Sites[j].Space
		}
		return rep.Sites[i].Addr < rep.Sites[j].Addr
	})
	for _, p := range r.procs {
		if p.interp == 0 && p.risc == 0 {
			continue
		}
		rep.Procs = append(rep.Procs, ProcResidency{
			Name: p.name, Space: p.space,
			RISCInstrs: p.risc, InterpInstrs: p.interp,
		})
	}
	sort.Slice(rep.Procs, func(i, j int) bool {
		ti := rep.Procs[i].RISCInstrs + rep.Procs[i].InterpInstrs
		tj := rep.Procs[j].RISCInstrs + rep.Procs[j].InterpInstrs
		if ti != tj {
			return ti > tj
		}
		return rep.Procs[i].Name < rep.Procs[j].Name
	})
	for i, name := range r.phaseNames {
		rep.Phases = append(rep.Phases,
			PhaseTiming{Phase: name, Seconds: r.phaseDur[i].Seconds()})
	}
	return rep
}

// WriteText renders the human-readable report: the paper's "% time
// interpreted" framing first, then the escape histogram, PMap counters,
// per-procedure residency and translation-phase timings. top bounds the
// escape-site and procedure listings (0 means all).
func (rep *Report) WriteText(w io.Writer, top int) {
	name := rep.Workload
	if name == "" {
		name = "(run)"
	}
	fmt.Fprintf(w, "tnsprof — %s (accel %s)\n", name, rep.Level)
	if rep.Degraded {
		fmt.Fprintf(w, "  DEGRADED: running fully interpreted — %s\n", rep.DegradedReason)
	}
	m := rep.Modes
	fmt.Fprintf(w, "\nMode residency (Cyclone/R cycles):\n")
	fmt.Fprintf(w, "  translated RISC    %14.0f cycles  (%.3f%%)\n",
		m.RISCCycles, pct(m.RISCCycles, m.TotalCycles))
	fmt.Fprintf(w, "  interpreter mode   %14.0f cycles  (%.3f%% time interpreted)\n",
		m.InterpCycles, m.InterpFraction*100)
	fmt.Fprintf(w, "  instructions: %d RISC, %d interpreted; %d interludes, %d switches\n",
		m.RISCInstrs, m.InterpInstrs, m.Interludes, m.Switches)

	fmt.Fprintf(w, "\nEscape reasons:\n")
	if len(rep.Escapes) == 0 {
		fmt.Fprintf(w, "  (none)\n")
	}
	for _, e := range rep.Escapes {
		fmt.Fprintf(w, "  %-14s %8d\n", e.Reason, e.Count)
	}
	if n := len(rep.Sites); n > 0 {
		fmt.Fprintf(w, "\nHottest escape sites:\n")
		for i, s := range rep.Sites {
			if top > 0 && i >= top {
				fmt.Fprintf(w, "  ... %d more\n", n-i)
				break
			}
			fmt.Fprintf(w, "  %s:%-6d %-14s %8d\n", s.Space, s.Addr, s.Reason, s.Count)
		}
	}

	fmt.Fprintf(w, "\nPMap (host-side probes): %d lookups, %d hits (%.1f%%)\n",
		rep.PMap.Lookups, rep.PMap.Hits, rep.PMap.HitRate*100)

	if len(rep.Procs) > 0 {
		fmt.Fprintf(w, "\nPer-procedure residency (by instructions):\n")
		fmt.Fprintf(w, "  %-20s %-6s %12s %12s %9s\n",
			"procedure", "space", "risc", "interp", "%interp")
		for i, p := range rep.Procs {
			if top > 0 && i >= top {
				fmt.Fprintf(w, "  ... %d more\n", len(rep.Procs)-i)
				break
			}
			fmt.Fprintf(w, "  %-20s %-6s %12d %12d %8.2f%%\n",
				p.Name, p.Space, p.RISCInstrs, p.InterpInstrs,
				pct(float64(p.InterpInstrs), float64(p.RISCInstrs+p.InterpInstrs)))
		}
	}

	if len(rep.Quarantined) > 0 {
		fmt.Fprintf(w, "\nQuarantined procedures (trap storm, demoted to interpreter):\n")
		for _, q := range rep.Quarantined {
			fmt.Fprintf(w, "  %-20s %-6s %8d traps\n", q.Name, q.Space, q.Traps)
		}
	}

	if len(rep.Phases) > 0 {
		fmt.Fprintf(w, "\nTranslation phases:\n")
		for _, p := range rep.Phases {
			fmt.Fprintf(w, "  %-10s %10.3f ms\n", p.Phase, p.Seconds*1e3)
		}
	}
	fmt.Fprintln(w, strings.Repeat("-", 60))
}

func pct(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return part / whole * 100
}

// MixedLabel is the workload/level name a merged report carries when its
// inputs disagree.
const MixedLabel = "(mixed)"

// Merge folds other into rep: counter fields sum, histograms merge by key,
// derived ratios (interp_fraction, pmap hit_rate) are recomputed from the
// merged counters, and the listings come out in the same canonical order
// Report() emits, so merging is order-independent up to float summation.
// It is the fleet host's cross-machine aggregation primitive: one machine's
// report merged per machine yields the fleet-wide view, and the result
// still satisfies Validate whenever the inputs do.
//
// Workload and Level keep their value when both sides agree and become
// MixedLabel otherwise. Degraded is an OR (the merged report covers at
// least one fully-degraded run) with the reasons joined. Per-procedure
// residency is kept only when every input carries it (or the side lacking
// it executed nothing): partial attribution cannot reconcile with the
// summed mode totals, so it is dropped rather than emitted inconsistent.
func (rep *Report) Merge(other *Report) error {
	if rep.Schema != Schema {
		return fmt.Errorf("obs: merge into schema %q, want %q", rep.Schema, Schema)
	}
	if other.Schema != Schema {
		return fmt.Errorf("obs: merge from schema %q, want %q", other.Schema, Schema)
	}
	if rep.Workload != other.Workload {
		rep.Workload = MixedLabel
	}
	if rep.Level != other.Level {
		rep.Level = MixedLabel
	}

	repPreInstrs := rep.Modes.RISCInstrs + rep.Modes.InterpInstrs
	otherInstrs := other.Modes.RISCInstrs + other.Modes.InterpInstrs

	rep.Modes.RISCInstrs += other.Modes.RISCInstrs
	rep.Modes.InterpInstrs += other.Modes.InterpInstrs
	rep.Modes.RISCCycles += other.Modes.RISCCycles
	rep.Modes.InterpCycles += other.Modes.InterpCycles
	rep.Modes.TotalCycles += other.Modes.TotalCycles
	rep.Modes.Interludes += other.Modes.Interludes
	rep.Modes.RISCEntries += other.Modes.RISCEntries
	rep.Modes.Switches += other.Modes.Switches
	rep.Modes.InterpFraction = 0
	if rep.Modes.TotalCycles > 0 {
		rep.Modes.InterpFraction = rep.Modes.InterpCycles / rep.Modes.TotalCycles
	}

	byReason := map[string]int64{}
	for _, e := range rep.Escapes {
		byReason[e.Reason] += e.Count
	}
	for _, e := range other.Escapes {
		byReason[e.Reason] += e.Count
	}
	rep.Escapes = rep.Escapes[:0]
	for r := EscapeReason(0); r < NumEscapeReasons; r++ {
		if n := byReason[r.String()]; n > 0 {
			rep.Escapes = append(rep.Escapes, EscapeCount{Reason: r.String(), Count: n})
			delete(byReason, r.String())
		}
	}
	// Unknown-name reasons: preserved (they must keep failing Validate),
	// in sorted order so merging stays deterministic.
	leftover := make([]string, 0, len(byReason))
	for reason := range byReason {
		leftover = append(leftover, reason)
	}
	sort.Strings(leftover)
	for _, reason := range leftover {
		rep.Escapes = append(rep.Escapes, EscapeCount{Reason: reason, Count: byReason[reason]})
	}

	type siteKey struct {
		space, reason string
		addr          uint16
	}
	bySite := map[siteKey]int64{}
	for _, s := range rep.Sites {
		bySite[siteKey{s.Space, s.Reason, s.Addr}] += s.Count
	}
	for _, s := range other.Sites {
		bySite[siteKey{s.Space, s.Reason, s.Addr}] += s.Count
	}
	rep.Sites = rep.Sites[:0]
	for k, n := range bySite {
		rep.Sites = append(rep.Sites, EscapeSite{Space: k.space, Addr: k.addr, Reason: k.reason, Count: n})
	}
	sort.Slice(rep.Sites, func(i, j int) bool {
		if rep.Sites[i].Count != rep.Sites[j].Count {
			return rep.Sites[i].Count > rep.Sites[j].Count
		}
		if rep.Sites[i].Space != rep.Sites[j].Space {
			return rep.Sites[i].Space < rep.Sites[j].Space
		}
		if rep.Sites[i].Addr != rep.Sites[j].Addr {
			return rep.Sites[i].Addr < rep.Sites[j].Addr
		}
		return rep.Sites[i].Reason < rep.Sites[j].Reason
	})

	rep.PMap.Lookups += other.PMap.Lookups
	rep.PMap.Hits += other.PMap.Hits
	rep.PMap.HitRate = 0
	if rep.PMap.Lookups > 0 {
		rep.PMap.HitRate = float64(rep.PMap.Hits) / float64(rep.PMap.Lookups)
	}

	repHasProcs := len(rep.Procs) > 0
	otherHasProcs := len(other.Procs) > 0
	proclessExecuted := (!repHasProcs && repPreInstrs > 0) ||
		(!otherHasProcs && otherInstrs > 0)
	switch {
	case !repHasProcs && !otherHasProcs:
		// nothing to do
	case repHasProcs != otherHasProcs && proclessExecuted:
		// One side has attribution, the other executed instructions without
		// it: per-proc sums can no longer reconcile with the merged totals.
		rep.Procs = nil
	default:
		type procKey struct{ name, space string }
		idx := map[procKey]int{}
		merged := make([]ProcResidency, 0, len(rep.Procs)+len(other.Procs))
		addAll := func(ps []ProcResidency) {
			for _, p := range ps {
				k := procKey{p.Name, p.Space}
				if i, ok := idx[k]; ok {
					merged[i].RISCInstrs += p.RISCInstrs
					merged[i].InterpInstrs += p.InterpInstrs
				} else {
					idx[k] = len(merged)
					merged = append(merged, p)
				}
			}
		}
		addAll(rep.Procs)
		addAll(other.Procs)
		sort.Slice(merged, func(i, j int) bool {
			ti := merged[i].RISCInstrs + merged[i].InterpInstrs
			tj := merged[j].RISCInstrs + merged[j].InterpInstrs
			if ti != tj {
				return ti > tj
			}
			if merged[i].Name != merged[j].Name {
				return merged[i].Name < merged[j].Name
			}
			return merged[i].Space < merged[j].Space
		})
		rep.Procs = merged
	}

	for _, p := range other.Phases {
		found := false
		for i := range rep.Phases {
			if rep.Phases[i].Phase == p.Phase {
				rep.Phases[i].Seconds += p.Seconds
				found = true
				break
			}
		}
		if !found {
			rep.Phases = append(rep.Phases, p)
		}
	}

	if other.Degraded {
		rep.Degraded = true
		switch {
		case rep.DegradedReason == "":
			rep.DegradedReason = other.DegradedReason
		case other.DegradedReason != "" && other.DegradedReason != rep.DegradedReason:
			rep.DegradedReason += "; " + other.DegradedReason
		}
	}

	type quarKey struct{ name, space string }
	qidx := map[quarKey]int{}
	for i, q := range rep.Quarantined {
		qidx[quarKey{q.Name, q.Space}] = i
	}
	for _, q := range other.Quarantined {
		k := quarKey{q.Name, q.Space}
		if i, ok := qidx[k]; ok {
			rep.Quarantined[i].Traps += q.Traps
		} else {
			qidx[k] = len(rep.Quarantined)
			rep.Quarantined = append(rep.Quarantined, q)
		}
	}
	sort.Slice(rep.Quarantined, func(i, j int) bool {
		if rep.Quarantined[i].Space != rep.Quarantined[j].Space {
			return rep.Quarantined[i].Space < rep.Quarantined[j].Space
		}
		return rep.Quarantined[i].Name < rep.Quarantined[j].Name
	})
	return nil
}
