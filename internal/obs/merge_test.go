package obs

import (
	"testing"
)

// mergeRep builds a small valid single-machine report for merge tests.
func mergeRep(workload, level string, risc, interp int64) *Report {
	rep := &Report{
		Schema:   Schema,
		Workload: workload,
		Level:    level,
		Modes: ModeResidency{
			RISCInstrs: risc, InterpInstrs: interp,
			RISCCycles: float64(risc), InterpCycles: 2 * float64(interp),
			TotalCycles: float64(risc) + 2*float64(interp),
		},
	}
	if rep.Modes.TotalCycles > 0 {
		rep.Modes.InterpFraction = rep.Modes.InterpCycles / rep.Modes.TotalCycles
	}
	return rep
}

func TestMergeSumsAndValidates(t *testing.T) {
	a := mergeRep("et1", "Default", 1000, 10)
	a.Escapes = []EscapeCount{{Reason: EscapeComputedJump.String(), Count: 3}}
	a.Sites = []EscapeSite{{Space: "user", Addr: 5, Reason: EscapeComputedJump.String(), Count: 3}}
	a.PMap = PMapStats{Lookups: 10, Hits: 8, HitRate: 0.8}
	a.Procs = []ProcResidency{{Name: "main", Space: "user", RISCInstrs: 1000, InterpInstrs: 10}}
	a.Phases = []PhaseTiming{{Phase: "translate", Seconds: 0.5}}

	b := mergeRep("et1", "Default", 500, 0)
	b.Escapes = []EscapeCount{
		{Reason: EscapeComputedJump.String(), Count: 1},
		{Reason: EscapeTrap.String(), Count: 2},
	}
	b.Sites = []EscapeSite{
		{Space: "user", Addr: 5, Reason: EscapeComputedJump.String(), Count: 1},
		{Space: "lib", Addr: 9, Reason: EscapeTrap.String(), Count: 2},
	}
	b.PMap = PMapStats{Lookups: 5, Hits: 5, HitRate: 1}
	b.Procs = []ProcResidency{
		{Name: "main", Space: "user", RISCInstrs: 300},
		{Name: "aux", Space: "user", RISCInstrs: 200},
	}
	b.Phases = []PhaseTiming{{Phase: "translate", Seconds: 0.25}, {Phase: "merge", Seconds: 0.1}}

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := Validate(a); err != nil {
		t.Fatalf("merged report fails its own invariants: %v", err)
	}
	if a.Workload != "et1" || a.Level != "Default" {
		t.Fatalf("agreeing labels rewritten: %q %q", a.Workload, a.Level)
	}
	if a.Modes.RISCInstrs != 1500 || a.Modes.InterpInstrs != 10 {
		t.Fatalf("modes %+v", a.Modes)
	}
	wantFrac := a.Modes.InterpCycles / a.Modes.TotalCycles
	if a.Modes.InterpFraction != wantFrac {
		t.Fatalf("interp fraction %g, want %g", a.Modes.InterpFraction, wantFrac)
	}
	// Escapes in enum order, summed.
	if len(a.Escapes) != 2 || a.Escapes[0].Reason != EscapeComputedJump.String() ||
		a.Escapes[0].Count != 4 || a.Escapes[1].Count != 2 {
		t.Fatalf("escapes %+v", a.Escapes)
	}
	// Sites merged by key, hottest first.
	if len(a.Sites) != 2 || a.Sites[0].Count != 4 || a.Sites[0].Addr != 5 {
		t.Fatalf("sites %+v", a.Sites)
	}
	if a.PMap.Lookups != 15 || a.PMap.Hits != 13 {
		t.Fatalf("pmap %+v", a.PMap)
	}
	// Procs merged by (name, space), busiest first.
	if len(a.Procs) != 2 || a.Procs[0].Name != "main" ||
		a.Procs[0].RISCInstrs != 1300 || a.Procs[1].RISCInstrs != 200 {
		t.Fatalf("procs %+v", a.Procs)
	}
	if len(a.Phases) != 2 || a.Phases[0].Seconds != 0.75 {
		t.Fatalf("phases %+v", a.Phases)
	}
}

func TestMergeLabelDisagreement(t *testing.T) {
	a := mergeRep("et1", "Default", 10, 0)
	b := mergeRep("tal", "Fast", 10, 0)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Workload != MixedLabel || a.Level != MixedLabel {
		t.Fatalf("labels %q %q, want %q", a.Workload, a.Level, MixedLabel)
	}
}

func TestMergeSchemaGate(t *testing.T) {
	a := mergeRep("et1", "Default", 1, 0)
	b := mergeRep("et1", "Default", 1, 0)
	b.Schema = "tnsr/obs-report/v0"
	if err := a.Merge(b); err == nil {
		t.Fatal("foreign schema merged silently")
	}
	a.Schema = "bogus"
	if err := a.Merge(mergeRep("et1", "Default", 1, 0)); err == nil {
		t.Fatal("merge into foreign schema accepted")
	}
}

// TestMergeProcAttributionDropped: merging an attributed report with one
// that executed instructions without attribution must drop Procs entirely
// — partial attribution would break Validate's per-proc sum invariant.
func TestMergeProcAttributionDropped(t *testing.T) {
	a := mergeRep("et1", "Default", 100, 0)
	a.Procs = []ProcResidency{{Name: "main", Space: "user", RISCInstrs: 100}}
	b := mergeRep("et1", "Default", 50, 0) // executed, but no Procs
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(a.Procs) != 0 {
		t.Fatalf("procs kept after unattributed merge: %+v", a.Procs)
	}
	if err := Validate(a); err != nil {
		t.Fatal(err)
	}

	// But merging with an idle report (no instructions at all) keeps them.
	c := mergeRep("et1", "Default", 100, 0)
	c.Procs = []ProcResidency{{Name: "main", Space: "user", RISCInstrs: 100}}
	idle := mergeRep("et1", "Default", 0, 0)
	if err := c.Merge(idle); err != nil {
		t.Fatal(err)
	}
	if len(c.Procs) != 1 {
		t.Fatalf("procs dropped on idle merge: %+v", c.Procs)
	}
	if err := Validate(c); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDegradedAndQuarantined(t *testing.T) {
	a := mergeRep("et1", "Default", 10, 5)
	b := mergeRep("et1", "Default", 0, 20)
	b.Degraded = true
	b.DegradedReason = "user: checksum"
	b.Quarantined = []QuarantinedProc{{Name: "p", Space: "user", Traps: 3}}

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.Degraded || a.DegradedReason != "user: checksum" {
		t.Fatalf("degraded %v %q", a.Degraded, a.DegradedReason)
	}
	c := mergeRep("et1", "Default", 0, 1)
	c.Degraded = true
	c.DegradedReason = "lib: emap"
	c.Quarantined = []QuarantinedProc{
		{Name: "p", Space: "user", Traps: 2},
		{Name: "a", Space: "lib", Traps: 1},
	}
	if err := a.Merge(c); err != nil {
		t.Fatal(err)
	}
	if a.DegradedReason != "user: checksum; lib: emap" {
		t.Fatalf("reason %q", a.DegradedReason)
	}
	// Quarantined merged by (name, space), sorted by space then name.
	if len(a.Quarantined) != 2 || a.Quarantined[0].Space != "lib" ||
		a.Quarantined[1].Traps != 5 {
		t.Fatalf("quarantined %+v", a.Quarantined)
	}
	if err := Validate(a); err != nil {
		t.Fatal(err)
	}
}

// TestMergeUnknownReasonPreserved: a reason name outside the enum must
// survive the merge (and keep failing Validate) rather than being
// silently renamed or dropped.
func TestMergeUnknownReasonPreserved(t *testing.T) {
	a := mergeRep("et1", "Default", 10, 0)
	a.Escapes = []EscapeCount{{Reason: "zz-not-a-reason", Count: 1}}
	b := mergeRep("et1", "Default", 10, 0)
	b.Escapes = []EscapeCount{{Reason: "aa-not-a-reason", Count: 2}}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(a.Escapes) != 2 || a.Escapes[0].Reason != "aa-not-a-reason" ||
		a.Escapes[1].Reason != "zz-not-a-reason" {
		t.Fatalf("escapes %+v", a.Escapes)
	}
	if err := Validate(a); err == nil {
		t.Fatal("unknown reason passed Validate after merge")
	}
}

// TestMergeAssociativeOnCounters: ((a+b)+c) equals (a+(b+c)) for the
// counter fields the fleet aggregates — the property that lets the host
// fold machines in any grouping.
func TestMergeAssociativeOnCounters(t *testing.T) {
	build := func() []*Report {
		a := mergeRep("et1", "Default", 100, 10)
		a.Escapes = []EscapeCount{{Reason: EscapeTrap.String(), Count: 1}}
		b := mergeRep("et1", "Default", 200, 0)
		b.Escapes = []EscapeCount{{Reason: EscapeComputedJump.String(), Count: 5}}
		c := mergeRep("et1", "Default", 50, 50)
		c.Escapes = []EscapeCount{{Reason: EscapeTrap.String(), Count: 4}}
		return []*Report{a, b, c}
	}
	l := build()
	if err := l[0].Merge(l[1]); err != nil {
		t.Fatal(err)
	}
	if err := l[0].Merge(l[2]); err != nil {
		t.Fatal(err)
	}
	r := build()
	if err := r[1].Merge(r[2]); err != nil {
		t.Fatal(err)
	}
	if err := r[0].Merge(r[1]); err != nil {
		t.Fatal(err)
	}
	lj, err := l[0].JSON()
	if err != nil {
		t.Fatal(err)
	}
	rj, err := r[0].JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(lj) != string(rj) {
		t.Fatalf("merge not associative:\n%s\n----\n%s", lj, rj)
	}
}
