package obs

import (
	"bytes"
	"strings"
	"testing"
)

func degradedReport() *Report {
	return &Report{
		Schema: Schema, Level: "Default",
		Degraded:       true,
		DegradedReason: "user: codefile: corrupt emap section: test",
		Quarantined: []QuarantinedProc{
			{Name: "addup", Space: "user", Traps: 3},
		},
	}
}

func TestValidateDegradation(t *testing.T) {
	if err := Validate(degradedReport()); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Report)
	}{
		{"degraded without reason", func(r *Report) { r.DegradedReason = "" }},
		{"reason without flag", func(r *Report) { r.Degraded = false }},
		{"quarantined empty name", func(r *Report) { r.Quarantined[0].Name = "" }},
		{"quarantined bad space", func(r *Report) { r.Quarantined[0].Space = "rom" }},
		{"quarantined zero traps", func(r *Report) { r.Quarantined[0].Traps = 0 }},
	}
	for _, c := range cases {
		r := degradedReport()
		c.mut(r)
		if Validate(r) == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDegradationJSONRoundTrip(t *testing.T) {
	rep := degradedReport()
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Degraded || back.DegradedReason != rep.DegradedReason ||
		len(back.Quarantined) != 1 || back.Quarantined[0] != rep.Quarantined[0] {
		t.Fatalf("round trip changed the degradation: %+v", back)
	}
	// A healthy report omits the degradation keys entirely.
	healthy, err := (&Report{Schema: Schema, Level: "Default"}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"degraded", "quarantined"} {
		if bytes.Contains(healthy, []byte(key)) {
			t.Errorf("healthy report carries %q", key)
		}
	}
}

func TestDegradationText(t *testing.T) {
	var buf bytes.Buffer
	degradedReport().WriteText(&buf, 0)
	out := buf.String()
	for _, want := range []string{
		"DEGRADED: running fully interpreted",
		"Quarantined procedures",
		"addup",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDegradationPrometheus(t *testing.T) {
	var buf bytes.Buffer
	degradedReport().WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"tnsr_degraded 1",
		`tnsr_quarantined_traps_total{proc="addup",space="user"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	(&Report{Schema: Schema, Level: "Default"}).WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "tnsr_degraded 0") {
		t.Error("healthy export missing tnsr_degraded 0")
	}
}
