// Package obs is the execution-telemetry subsystem: a single event sink
// (the Recorder) that the interpreter, the RISC simulator, the mixed-mode
// runner and the Accelerator all feed. It answers the paper's central
// performance question — how much run time stays in translated RISC code
// versus falling back into the interpreter, and *why* control escapes —
// with typed escape reasons, per-procedure mode residency, PMap lookup
// counters and per-phase translation timings.
//
// The overhead contract: every producer holds a plain *Recorder field that
// is nil by default and checks it before each event, so an unobserved run
// pays one nil-compare per hook site and nothing else. A Recorder is not
// safe for concurrent use; attach one recorder per runner (the translation
// phase timings are recorded only from the coordinating goroutine).
//
// obs depends only on codefile (for attribution tables); the execution
// packages depend on obs, never the reverse.
package obs

import (
	"sort"
	"time"

	"tnsr/internal/codefile"
)

// EscapeReason classifies one RISC->interpreter transition (or a refused
// interpreter->RISC re-entry). The numeric values are stable: translators
// persist them in codefile.AccelSection.FallbackWhy.
type EscapeReason uint8

const (
	// EscapeUnknown marks an unclassified escape; the differential tests
	// assert it never occurs, so a nonzero count is a telemetry bug.
	EscapeUnknown EscapeReason = iota
	// EscapeUnmapped: the target TNS address has no register-exact PMap
	// point (the millicode EXIT lookup missed, or a host-side probe failed).
	EscapeUnmapped
	// EscapeComputedJump: the block is reachable only through unanalyzable
	// flow (statement labels, targets without a SETRP clue), so it was
	// translated as an interpreter-only region.
	EscapeComputedJump
	// EscapeIndirectCall: an XCAL dispatch or a site whose RP is
	// indeterminate after a call with unknown result size.
	EscapeIndirectCall
	// EscapeRPConflict: the dynamic RP contradicts the static assumption —
	// a puzzle join, a nonconforming caller at a prologue entry check, or a
	// failed return-point RP confirmation.
	EscapeRPConflict
	// EscapeUntranslated: the callee (or the whole codefile) has no
	// translation, e.g. under selective acceleration.
	EscapeUntranslated
	// EscapeTrap: a TNS trap condition surfaced from translated code.
	EscapeTrap
	// EscapeBreakpoint: a debugger breakpoint stopped execution.
	EscapeBreakpoint
	// EscapeQuarantined: integrity degradation — the accel section failed
	// verification and the run is fully interpreted, or this procedure
	// was demoted to interpreter-only after a trap storm, or translated
	// code was rolled back to its entry point after an unexpected trap.
	EscapeQuarantined

	NumEscapeReasons
)

var escapeNames = [NumEscapeReasons]string{
	"unknown", "unmapped", "computed-jump", "indirect-call",
	"rp-conflict", "untranslated", "trap", "breakpoint", "quarantined",
}

func (e EscapeReason) String() string {
	if e < NumEscapeReasons {
		return escapeNames[e]
	}
	return "invalid"
}

// ReasonFromName maps an escape-reason name back to its value; ok is false
// for unrecognized names.
func ReasonFromName(name string) (EscapeReason, bool) {
	for i, n := range escapeNames {
		if n == name {
			return EscapeReason(i), true
		}
	}
	return EscapeUnknown, false
}

// siteStat accumulates escapes at one (space, TNS address) site.
type siteStat struct {
	space  uint8
	addr   uint16
	reason EscapeReason
	count  int64
}

// procStat accumulates per-procedure instruction residency.
type procStat struct {
	name   string
	space  string // "user", "lib", "milli", or "" for unattributed
	interp int64
	risc   int64
}

// Recorder is the event sink. The exported counters may be read at any
// time; writing is reserved to the event methods.
type Recorder struct {
	// Mode residency: instructions executed per mode while attached.
	InterpInstrs int64
	RISCInstrs   int64

	// Transitions. InterpEntries counts interpreter interludes (escapes
	// that actually entered interpreter mode); RISCEntries counts
	// recoveries into translated code.
	InterpEntries int64
	RISCEntries   int64

	// Escapes histograms every escape event by reason.
	Escapes [NumEscapeReasons]int64

	// Host-side PMap probe counters (enterRISCIfMapped); the millicode
	// EXIT lookup runs inside simulated code and is not counted here.
	PMapLookups int64
	PMapHits    int64

	sites map[uint32]*siteStat // space<<16 | addr

	// Attribution tables built by AttachRuntime.
	procs      []procStat
	interpProc [2][]int32 // per space: TNS code word -> procs index
	riscProc   []int32    // RISC code word -> procs index
	otherID    int32

	// Translation phase timings, in recording order.
	phaseNames []string
	phaseDur   []time.Duration
}

// NewRecorder returns an empty recorder. It is usable immediately for
// translation timings; call AttachRuntime before a run to enable
// per-procedure attribution.
func NewRecorder() *Recorder {
	return &Recorder{sites: map[uint32]*siteStat{}}
}

// AttachRuntime builds the instruction-attribution tables for a run:
// per-space dense TNS address -> procedure maps, and a dense RISC word ->
// procedure map derived from the acceleration sections' entry tables.
// codeWords is the simulator's code length; userBase/libBase are the word
// indexes the user and library translations are loaded at (millicode
// occupies [0, userBase)). lib may be nil.
func (r *Recorder) AttachRuntime(user, lib *codefile.File, codeWords, userBase, libBase int) {
	r.procs = r.procs[:0]
	addProc := func(name, space string) int32 {
		r.procs = append(r.procs, procStat{name: name, space: space})
		return int32(len(r.procs) - 1)
	}

	files := [2]*codefile.File{user, lib}
	spaceNames := [2]string{"user", "lib"}
	var fileIDs [2][]int32
	for sp, f := range files {
		if f == nil {
			continue
		}
		ids := make([]int32, len(f.Procs))
		for pi := range f.Procs {
			ids[pi] = addProc(f.Procs[pi].Name, spaceNames[sp])
		}
		fileIDs[sp] = ids
	}
	milliID := addProc("(millicode)", "milli")
	r.otherID = addProc("(other)", "")

	// Interpreter attribution: procedures are laid out contiguously in
	// ascending entry order, so fill each entry's range up to the next.
	for sp, f := range files {
		if f == nil {
			r.interpProc[sp] = nil
			continue
		}
		ents := make([]denseEnt, 0, len(f.Procs))
		for pi := range f.Procs {
			ents = append(ents, denseEnt{at: int(f.Procs[pi].Entry), id: fileIDs[sp][pi]})
		}
		r.interpProc[sp] = fillDense(len(f.Code), ents, r.otherID)
	}

	// RISC attribution: millicode below userBase; each translation's
	// region is split by its absolute entry-point table.
	r.riscProc = make([]int32, codeWords)
	for i := range r.riscProc {
		r.riscProc[i] = r.otherID
	}
	for a := 0; a < userBase && a < codeWords; a++ {
		r.riscProc[a] = milliID
	}
	fillRegion := func(f *codefile.File, sp, base int) {
		if f == nil || f.Accel == nil {
			return
		}
		end := base + len(f.Accel.RISC)
		if end > codeWords {
			end = codeWords
		}
		ents := make([]denseEnt, 0, len(f.Accel.Entries))
		for pi, e := range f.Accel.Entries {
			if e >= 0 && pi < len(fileIDs[sp]) {
				ents = append(ents, denseEnt{at: int(e) - base, id: fileIDs[sp][pi]})
			}
		}
		region := fillDense(end-base, ents, r.otherID)
		copy(r.riscProc[base:end], region)
	}
	fillRegion(user, 0, userBase)
	fillRegion(lib, 1, libBase)
}

type denseEnt struct {
	at int
	id int32
}

// fillDense builds a dense attribution table of length n: each entry owns
// [entry.at, next entry.at), addresses before the first entry get def.
func fillDense(n int, ents []denseEnt, def int32) []int32 {
	t := make([]int32, n)
	for i := range t {
		t[i] = def
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].at != ents[j].at {
			return ents[i].at < ents[j].at
		}
		return ents[i].id < ents[j].id
	})
	for i, e := range ents {
		end := n
		if i+1 < len(ents) && ents[i+1].at < n {
			end = ents[i+1].at
		}
		for a := e.at; a >= 0 && a < end; a++ {
			t[a] = e.id
		}
	}
	return t
}

// InterpStep records one interpreted instruction at TNS address p in the
// given code space. Hot path: one bounds check and two increments.
func (r *Recorder) InterpStep(space uint8, p uint16) {
	r.InterpInstrs++
	t := r.interpProc[space&1]
	if int(p) < len(t) {
		r.procs[t[p]].interp++
	}
}

// RISCStep records one simulated RISC instruction at code word index pc.
func (r *Recorder) RISCStep(pc uint32) {
	r.RISCInstrs++
	if int(pc) < len(r.riscProc) {
		r.procs[r.riscProc[pc]].risc++
	}
}

// Escape records one escape event at (space, addr) with its classified
// reason. enteredInterp is true when the escape actually started an
// interpreter interlude (traps and breakpoints stop the run instead).
func (r *Recorder) Escape(space uint8, addr uint16, reason EscapeReason, enteredInterp bool) {
	if reason >= NumEscapeReasons {
		reason = EscapeUnknown
	}
	r.Escapes[reason]++
	key := uint32(space&1)<<16 | uint32(addr)
	s := r.sites[key]
	if s == nil {
		s = &siteStat{space: space & 1, addr: addr}
		r.sites[key] = s
	}
	s.count++
	s.reason = reason
	if enteredInterp {
		r.InterpEntries++
	}
}

// EnterRISC records a recovery into translated code.
func (r *Recorder) EnterRISC() { r.RISCEntries++ }

// PMapLookup records one host-side PMap probe.
func (r *Recorder) PMapLookup(hit bool) {
	r.PMapLookups++
	if hit {
		r.PMapHits++
	}
}

// Phase accumulates one translation-phase duration. Repeated names (e.g.
// two Accelerate calls, user then library) accumulate into one entry;
// first-recording order is preserved.
func (r *Recorder) Phase(name string, d time.Duration) {
	for i, n := range r.phaseNames {
		if n == name {
			r.phaseDur[i] += d
			return
		}
	}
	r.phaseNames = append(r.phaseNames, name)
	r.phaseDur = append(r.phaseDur, d)
}
