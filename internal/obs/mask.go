package obs

import "strings"

// GuaranteeClasses are the escape-reason classes the coverage-guided
// program generator (internal/tnsgen) must collectively exercise at run
// time: every class the translator and runtime can legitimately produce.
// EscapeUnknown is excluded because it must never occur at all, and
// EscapeQuarantined because it marks integrity degradation — injected by
// the chaos harness, not reachable from a well-formed program.
var GuaranteeClasses = []EscapeReason{
	EscapeUnmapped, EscapeComputedJump, EscapeIndirectCall,
	EscapeRPConflict, EscapeUntranslated, EscapeTrap, EscapeBreakpoint,
}

// ReasonMask is a bit set of escape-reason classes.
type ReasonMask uint16

// Add sets the bit for r.
func (m *ReasonMask) Add(r EscapeReason) {
	if r < NumEscapeReasons {
		*m |= 1 << r
	}
}

// Has reports whether the bit for r is set.
func (m ReasonMask) Has(r EscapeReason) bool {
	return r < NumEscapeReasons && m&(1<<r) != 0
}

// String renders the set classes as "a|b|c" ("none" when empty).
func (m ReasonMask) String() string {
	var parts []string
	for r := EscapeReason(0); r < NumEscapeReasons; r++ {
		if m.Has(r) {
			parts = append(parts, r.String())
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}
