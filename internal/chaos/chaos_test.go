package chaos

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestChaosCampaign is the acceptance gate of the fault-injection harness:
// hundreds of seeded mutations across every workload and operator, each
// either rejected with a typed error at load or run to an output identical
// to the pure interpreter — zero panics, zero silent divergence. 520
// mutants is 8 full rounds of all 13 operators over all 5 workloads
// (comfortably past the 500-mutation acceptance criterion); -short keeps
// one full round.
func TestChaosCampaign(t *testing.T) {
	n := 520
	if testing.Short() {
		n = 65
	}
	sum, err := RunCampaign(nil, n, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sum.Failures {
		t.Errorf("mutant %d (%s, %s, %s): %s", f.Index, f.Workload, f.Op, f.Target, f.Err)
	}
	if sum.Mutants != n || sum.Rejected+sum.Ran+len(sum.Failures) != n {
		t.Errorf("accounting: %d mutants, %d rejected + %d ran + %d failed",
			sum.Mutants, sum.Rejected, sum.Ran, len(sum.Failures))
	}
	// Both oracle outcomes must actually occur: a campaign where nothing
	// is ever rejected (or nothing ever runs) is testing only half the
	// contract.
	if sum.Rejected == 0 || sum.Ran == 0 {
		t.Errorf("degenerate campaign: %d rejected, %d ran", sum.Rejected, sum.Ran)
	}
	for op := Op(0); op < NumOps; op++ {
		if sum.ByOp[op.String()] == 0 {
			t.Errorf("operator %s never exercised", op)
		}
	}
}

// TestMutationsDeterministic: the same (workload, operator, seed) triple
// must produce byte-identical mutants — the property that makes every
// campaign failure reproducible from its one-line summary.
func TestMutationsDeterministic(t *testing.T) {
	ref, err := NewReference("et1", DefaultIterations, DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	for op := Op(0); op < NumOps; op++ {
		a, err := ref.Mutate(rand.New(rand.NewSource(42)), op)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		b, err := ref.Mutate(rand.New(rand.NewSource(42)), op)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if !bytes.Equal(a.User, b.User) || !bytes.Equal(a.Lib, b.Lib) ||
			a.Target != b.Target {
			t.Errorf("%s: same seed produced different mutants", op)
		}
	}
}

// TestPristineReferencePasses: the oracle accepts the unmutated artifacts
// (guards against a reference that fails for reasons unrelated to the
// mutation under test).
func TestPristineReferencePasses(t *testing.T) {
	ref, err := NewReference("dhry16", DefaultIterations, DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := ref.Check(&Mutant{Op: OpBitFlip, Target: "none"}, DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != RanIdentical {
		t.Errorf("pristine outcome = %v, want RanIdentical", outcome)
	}
}
