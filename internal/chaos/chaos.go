// Package chaos is the fault-injection harness: seeded, reproducible
// mutators over serialized codefiles, plus the differential oracle that
// states the system's integrity contract — every mutant is either rejected
// at load with a typed *codefile.ErrCorrupt, or it executes with output
// identical to a pure-interpreter run of the pristine program. No panics,
// no silent divergence.
//
// Two mutator families exercise the two defense layers:
//
//   - Byte-level operators (bit flips, truncation, checksum stomps, version
//     skew, trailing garbage) damage the serialized image without repairing
//     anything; the per-section CRC-32s added in format v5 must reject every
//     one of them at load.
//
//   - Structural operators parse the pristine file, damage one structure
//     (PMap coverage or monotonicity, EMap targets or counts, ExpectedRP
//     values, FallbackWhy sites), and re-serialize — producing a mutant
//     whose checksums are all valid. These model a mutation that repairs
//     its section checksum, and must be caught by AccelSection.Verify: the
//     runner drops the damaged section and executes the intact CISC image
//     interpreted, so the output still matches the oracle.
//
// A third operator, stale-profile injection, retranslates the program under
// a PGO profile whose fingerprint does not match, exercising pgo's
// advisory-only guarantee end to end.
package chaos

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/interp"
	"tnsr/internal/millicode"
	"tnsr/internal/pgo"
	"tnsr/internal/risc"
	"tnsr/internal/workloads"
	"tnsr/internal/xrun"
)

// Op names one mutation operator. The campaign cycles through all of them
// round-robin, so any campaign of at least NumOps mutants covers every
// operator.
type Op int

const (
	// OpBitFlip flips one random bit anywhere in the serialized image.
	OpBitFlip Op = iota
	// OpTruncate cuts the image short at a random byte.
	OpTruncate
	// OpCRCStomp corrupts the stored checksum of a random section.
	OpCRCStomp
	// OpVersionSkew rewrites the format version to an unsupported value
	// (header checksum repaired, so the version gate itself is what fires).
	OpVersionSkew
	// OpTrailingGarbage appends random bytes after the last section.
	OpTrailingGarbage
	// OpCountSkew forces a section's leading element count implausible and
	// repairs the checksum, so the count bound is what rejects it.
	OpCountSkew
	// OpPMapNonMonotonic replaces the PMap with one whose mapped RISC
	// indexes decrease (checksums valid; Verify must reject).
	OpPMapNonMonotonic
	// OpPMapLengthSkew replaces the PMap with one covering the wrong
	// number of code words (checksums valid; Verify must reject).
	OpPMapLengthSkew
	// OpEMapTargetSkew points one procedure entry outside the translated
	// region (checksums valid; Verify must reject).
	OpEMapTargetSkew
	// OpEMapCountSkew appends a surplus procedure entry (checksums valid;
	// Verify must reject).
	OpEMapCountSkew
	// OpRPSkew plants an invalid ExpectedRP value (checksums valid;
	// Verify must reject).
	OpRPSkew
	// OpFallbackSkew plants an implausible FallbackWhy reason code
	// (checksums valid; Verify must reject).
	OpFallbackSkew
	// OpStaleProfile retranslates the pristine program under a PGO profile
	// with a mismatched fingerprint: the profile must be ignored and the
	// result must run identically.
	OpStaleProfile

	NumOps
)

var opNames = [NumOps]string{
	"bitflip", "truncate", "crc-stomp", "version-skew", "trailing-garbage",
	"count-skew", "pmap-nonmonotonic", "pmap-length-skew", "emap-target-skew",
	"emap-count-skew", "rp-skew", "fallback-skew", "stale-profile",
}

func (o Op) String() string {
	if o >= 0 && o < NumOps {
		return opNames[o]
	}
	return "invalid"
}

// Outcome is a mutant's (acceptable) fate under the oracle.
type Outcome int

const (
	// Rejected: codefile.Read returned a typed *ErrCorrupt.
	Rejected Outcome = iota
	// RanIdentical: the mutant loaded (possibly with its acceleration
	// dropped) and produced output identical to the pristine interpreter.
	RanIdentical
)

func (o Outcome) String() string {
	if o == Rejected {
		return "rejected"
	}
	return "ran-identical"
}

// Reference holds the pristine artifacts of one workload: the accelerated
// codefile images the mutators work from, and the pure-interpreter behavior
// the oracle compares against.
type Reference struct {
	Name string

	// UserRaw/LibRaw are the serialized accelerated codefiles (LibRaw nil
	// for library-less workloads); the spans locate their v5 sections.
	UserRaw   []byte
	LibRaw    []byte
	UserSpans []codefile.SectionSpan
	LibSpans  []codefile.SectionSpan

	// PlainUserRaw is the user codefile before acceleration (the input to
	// the stale-profile retranslation).
	PlainUserRaw []byte

	LibSummaries map[uint16]int8

	// The pristine program's behavior under the pure interpreter.
	Console string
	Exit    uint16
	Trap    int
}

// NewReference builds, accelerates and characterizes one workload.
func NewReference(name string, iterations int, budget int64) (*Reference, error) {
	w, err := workloads.Build(name, iterations)
	if err != nil {
		return nil, err
	}
	return NewReferenceFromFiles(name, w.User, w.Lib, w.LibSummaries, budget)
}

// NewReferenceFromFiles accelerates and characterizes an arbitrary
// unaccelerated user/lib pair (lib may be nil), so generated programs —
// not just the named workloads — can be placed under chaos mutation. It
// takes ownership of the files and accelerates them in place.
func NewReferenceFromFiles(name string, user, lib *codefile.File,
	libSummaries map[uint16]int8, budget int64) (*Reference, error) {

	ref := &Reference{Name: name, LibSummaries: libSummaries}
	ref.PlainUserRaw, _ = user.Marshal()

	// The oracle's ground truth: the pure interpreter on the pristine,
	// unaccelerated program.
	m := interp.New(user, lib)
	if err := m.Run(budget); err != nil {
		return nil, fmt.Errorf("chaos: %s reference run: %w", name, err)
	}
	ref.Console = m.Console.String()
	ref.Exit = m.ExitStatus
	ref.Trap = m.Trap

	opts := core.Options{Level: codefile.LevelDefault, LibSummaries: libSummaries}
	if err := core.Accelerate(user, opts); err != nil {
		return nil, fmt.Errorf("chaos: %s accelerate: %w", name, err)
	}
	ref.UserRaw, ref.UserSpans = user.Marshal()
	if lib != nil {
		libOpts := core.Options{Level: codefile.LevelDefault,
			CodeBase: millicode.LibCodeBase, Space: 1}
		if err := core.Accelerate(lib, libOpts); err != nil {
			return nil, fmt.Errorf("chaos: %s accelerate lib: %w", name, err)
		}
		ref.LibRaw, ref.LibSpans = lib.Marshal()
	}
	return ref, nil
}

// Mutant is one mutated artifact pair: nil means "use the pristine image".
type Mutant struct {
	Op     Op
	Target string // "user" or "lib"
	User   []byte
	Lib    []byte
}

// Mutate applies op to the reference deterministically under rng and
// returns the mutant. Structural operators re-serialize a parsed copy, so
// their checksums are valid by construction and only AccelSection.Verify
// stands between the damage and execution.
func (ref *Reference) Mutate(rng *rand.Rand, op Op) (*Mutant, error) {
	mu := &Mutant{Op: op, Target: "user"}
	raw, spans := ref.UserRaw, ref.UserSpans
	base := millicode.UserCodeBase
	// Half the mutants of a two-file workload hit the library instead.
	if ref.LibRaw != nil && op != OpStaleProfile && rng.Intn(2) == 1 {
		mu.Target = "lib"
		raw, spans = ref.LibRaw, ref.LibSpans
		base = millicode.LibCodeBase
	}

	data := append([]byte(nil), raw...)
	switch op {
	case OpBitFlip:
		i := rng.Intn(len(data))
		data[i] ^= 1 << uint(rng.Intn(8))
	case OpTruncate:
		data = data[:rng.Intn(len(data))]
	case OpCRCStomp:
		span := spans[rng.Intn(len(spans))]
		data[span.End-1-rng.Intn(4)] ^= byte(1 + rng.Intn(255))
	case OpVersionSkew:
		v := uint16(rng.Intn(0x10000))
		for v == 4 || v == 5 {
			v = uint16(rng.Intn(0x10000))
		}
		binary.BigEndian.PutUint16(data[4:6], v) // after the 4-byte magic
		codefile.FixChecksum(data, spans[0])
	case OpTrailingGarbage:
		tail := make([]byte, 1+rng.Intn(16))
		rng.Read(tail)
		data = append(data, tail...)
	case OpCountSkew:
		// The code and entry-map sections lead with an element count;
		// force it past the plausibility bound and repair the checksum.
		var candidates []codefile.SectionSpan
		for _, s := range spans {
			if s.ID == codefile.SecCode || s.ID == codefile.SecEMap {
				candidates = append(candidates, s)
			}
		}
		span := candidates[rng.Intn(len(candidates))]
		binary.BigEndian.PutUint32(data[span.Start:span.Start+4],
			uint32(1<<21+rng.Intn(1<<20)))
		codefile.FixChecksum(data, span)
	case OpPMapNonMonotonic, OpPMapLengthSkew, OpEMapTargetSkew,
		OpEMapCountSkew, OpRPSkew, OpFallbackSkew:
		f, err := codefile.Read(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("chaos: pristine %s/%s failed to parse: %w",
				ref.Name, mu.Target, err)
		}
		if err := mutateStructure(f, op, base, rng); err != nil {
			return nil, err
		}
		data, _ = f.Marshal()
	case OpStaleProfile:
		f, err := codefile.Read(bytes.NewReader(ref.PlainUserRaw))
		if err != nil {
			return nil, fmt.Errorf("chaos: plain %s failed to parse: %w", ref.Name, err)
		}
		prof := staleProfile(f.Name, rng)
		opts := core.Options{Level: codefile.LevelDefault,
			LibSummaries: ref.LibSummaries, Profile: prof}
		if err := core.Accelerate(f, opts); err != nil {
			return nil, fmt.Errorf("chaos: stale-profile accelerate: %w", err)
		}
		data, _ = f.Marshal()
	default:
		return nil, fmt.Errorf("chaos: unknown op %d", op)
	}

	if mu.Target == "user" {
		mu.User = data
	} else {
		mu.Lib = data
	}
	return mu, nil
}

// mutateStructure applies one guaranteed-Verify-violating structural
// mutation to a parsed copy of the file. Each arm produces damage that
// AccelSection.Verify provably rejects, so the oracle's expectation for
// these operators is deterministic: load fine, degrade, run interpreted.
func mutateStructure(f *codefile.File, op Op, riscBase int, rng *rand.Rand) error {
	a := f.Accel
	if a == nil {
		return fmt.Errorf("chaos: structural op %s on unaccelerated file", op)
	}
	switch op {
	case OpPMapNonMonotonic:
		// Two points in different groups with decreasing RISC indexes.
		pm := codefile.NewPMap(len(f.Code))
		if err := pm.Add(0, riscBase+100, true); err != nil {
			return err
		}
		if err := pm.Add(8, riscBase+5, true); err != nil {
			return err
		}
		a.PMap = pm
	case OpPMapLengthSkew:
		a.PMap = codefile.NewPMap(len(f.Code) + 1 + rng.Intn(64))
	case OpEMapTargetSkew:
		i := rng.Intn(len(a.Entries))
		if rng.Intn(2) == 0 {
			a.Entries[i] = int32(riscBase - 1 - rng.Intn(16)) // below the region
		} else {
			a.Entries[i] = int32(riscBase + len(a.RISC) + rng.Intn(1024)) // above
		}
	case OpEMapCountSkew:
		a.Entries = append(a.Entries, -1)
	case OpRPSkew:
		if len(a.ExpectedRP) == 0 {
			a.ExpectedRP = []uint8{0xFF} // wrong coverage instead
		} else {
			a.ExpectedRP[rng.Intn(len(a.ExpectedRP))] = uint8(8 + rng.Intn(0xF7-8))
		}
	case OpFallbackSkew:
		if a.FallbackWhy == nil {
			a.FallbackWhy = map[uint16]uint8{}
		}
		a.FallbackWhy[uint16(rng.Intn(len(f.Code)))] = uint8(16 + rng.Intn(200))
	}
	return nil
}

// staleProfile builds a syntactically valid PGO profile whose fingerprint
// cannot match the codefile: the Accelerator must ignore it entirely.
func staleProfile(file string, rng *rand.Rand) *pgo.Profile {
	return &pgo.Profile{
		Schema: pgo.Schema,
		Runs:   1,
		Spaces: []pgo.SpaceProfile{{
			Space:       "user",
			File:        file,
			Fingerprint: fmt.Sprintf("%016x", rng.Uint64()|1<<63),
			CallSites: []pgo.CallSite{{
				Addr:    uint16(rng.Intn(1024)),
				Results: []pgo.ResultCount{{Words: int8(rng.Intn(3)), Count: 17}},
			}},
			RPSites: []pgo.RPSite{{
				Addr: uint16(rng.Intn(1024)),
				RPs:  []pgo.RPCount{{RP: uint8(rng.Intn(8)), Count: 5}},
			}},
		}},
	}
}

// Check runs the differential oracle on one mutant. It returns the
// acceptable outcome, or an error describing the contract violation — a
// panic, an untyped rejection, a run-time failure, or silent divergence
// from the pristine interpreter.
func (ref *Reference) Check(mu *Mutant, budget int64) (outcome Outcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()

	userRaw := mu.User
	if userRaw == nil {
		userRaw = ref.UserRaw
	}
	user, uerr := codefile.Read(bytes.NewReader(userRaw))
	if uerr != nil {
		if mu.User == nil {
			return 0, fmt.Errorf("pristine user image rejected: %v", uerr)
		}
		if !codefile.IsCorrupt(uerr) {
			return 0, fmt.Errorf("untyped rejection: %v", uerr)
		}
		return Rejected, nil
	}
	var lib *codefile.File
	if ref.LibRaw != nil || mu.Lib != nil {
		libRaw := mu.Lib
		if libRaw == nil {
			libRaw = ref.LibRaw
		}
		var lerr error
		lib, lerr = codefile.Read(bytes.NewReader(libRaw))
		if lerr != nil {
			if mu.Lib == nil {
				return 0, fmt.Errorf("pristine lib image rejected: %v", lerr)
			}
			if !codefile.IsCorrupt(lerr) {
				return 0, fmt.Errorf("untyped rejection: %v", lerr)
			}
			return Rejected, nil
		}
	}

	r, nerr := xrun.New(user, lib, risc.DefaultConfig())
	if nerr != nil {
		return 0, fmt.Errorf("runner construction failed: %v", nerr)
	}
	if rerr := r.Run(budget); rerr != nil {
		return 0, fmt.Errorf("run failed: %v", rerr)
	}
	if got, want := r.Console(), ref.Console; got != want {
		return 0, fmt.Errorf("silent divergence: console %q, want %q", clip(got), clip(want))
	}
	if r.ExitStatus != ref.Exit {
		return 0, fmt.Errorf("silent divergence: exit %d, want %d", r.ExitStatus, ref.Exit)
	}
	if r.Trap != ref.Trap {
		return 0, fmt.Errorf("silent divergence: trap %d, want %d", r.Trap, ref.Trap)
	}
	return RanIdentical, nil
}

func clip(s string) string {
	if len(s) > 120 {
		return s[:120] + "..."
	}
	return s
}
