package chaos

import (
	"fmt"
	"io"
	"math/rand"
)

// Failure is one oracle violation: everything needed to reproduce it (the
// campaign seed and mutant index determine the mutation exactly) plus the
// mutant bytes for an artifact dump.
type Failure struct {
	Workload string
	Op       string
	Target   string
	Index    int   // mutant index within the campaign
	Seed     int64 // campaign base seed
	Err      string
	Data     []byte // the mutated image (nil if mutation itself failed)
}

// Summary aggregates a campaign.
type Summary struct {
	Mutants  int
	Rejected int
	Ran      int
	ByOp     map[string]int
	Failures []Failure
}

// DefaultIterations is the workload iteration count a campaign builds its
// references with; small, because degraded mutants re-run the whole
// program interpreted.
const DefaultIterations = 2

// DefaultBudget bounds each mutant execution (and the reference runs).
const DefaultBudget = 200_000_000

// RunCampaign executes n seeded mutations spread round-robin over the
// given workloads (nil means all five) and every operator, checking each
// against the differential oracle. The campaign is fully determined by
// (names, n, seed): mutant i uses operator i%NumOps, workload
// (i/NumOps)%len(names), and an rng seeded from seed and i. progress, when
// non-nil, receives one line per failure as it happens.
func RunCampaign(names []string, n int, seed int64, progress io.Writer) (*Summary, error) {
	if len(names) == 0 {
		names = []string{"dhry16", "dhry32", "tal", "axcel", "et1"}
	}
	refs := make([]*Reference, len(names))
	for i, name := range names {
		ref, err := NewReference(name, DefaultIterations, DefaultBudget)
		if err != nil {
			return nil, err
		}
		refs[i] = ref
	}

	sum := &Summary{ByOp: map[string]int{}}
	for i := 0; i < n; i++ {
		op := Op(i % int(NumOps))
		ref := refs[(i/int(NumOps))%len(refs)]
		rng := rand.New(rand.NewSource(seed + int64(i)*1000003))

		sum.Mutants++
		sum.ByOp[op.String()]++
		mu, err := ref.Mutate(rng, op)
		if err != nil {
			sum.Failures = append(sum.Failures, Failure{
				Workload: ref.Name, Op: op.String(), Index: i, Seed: seed,
				Err: "mutation failed: " + err.Error(),
			})
			continue
		}
		outcome, err := ref.Check(mu, DefaultBudget)
		if err != nil {
			data := mu.User
			if data == nil {
				data = mu.Lib
			}
			f := Failure{
				Workload: ref.Name, Op: op.String(), Target: mu.Target,
				Index: i, Seed: seed, Err: err.Error(), Data: data,
			}
			sum.Failures = append(sum.Failures, f)
			if progress != nil {
				fmt.Fprintf(progress, "chaos: FAIL mutant %d (%s, %s, %s): %s\n",
					i, ref.Name, op, mu.Target, err)
			}
			continue
		}
		switch outcome {
		case Rejected:
			sum.Rejected++
		case RanIdentical:
			sum.Ran++
		}
	}
	return sum, nil
}

// WriteText prints the campaign summary.
func (s *Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "chaos: %d mutants: %d rejected at load, %d ran output-identical, %d FAILURES\n",
		s.Mutants, s.Rejected, s.Ran, len(s.Failures))
	for _, f := range s.Failures {
		fmt.Fprintf(w, "  FAIL mutant %d (%s, %s, %s): %s\n",
			f.Index, f.Workload, f.Op, f.Target, f.Err)
	}
}
