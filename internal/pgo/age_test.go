package pgo

import (
	"fmt"
	"testing"
)

// flattenCounts maps every count-carrying row of a profile to a stable key,
// so aged/merged variants can be compared row by row.
func flattenCounts(p *Profile) map[string]int64 {
	out := map[string]int64{"runs": p.Runs}
	for si := range p.Spaces {
		sp := &p.Spaces[si]
		for _, cs := range sp.CallSites {
			for _, r := range cs.Results {
				out[fmt.Sprintf("%s/call/%d/res/%d", sp.Space, cs.Addr, r.Words)] = r.Count
			}
			for _, t := range cs.Targets {
				out[fmt.Sprintf("%s/call/%d/tgt/%s/%d", sp.Space, cs.Addr, t.Space, t.PEP)] = t.Count
			}
		}
		for _, cs := range sp.CaseSites {
			for _, t := range cs.Targets {
				out[fmt.Sprintf("%s/case/%d/%d", sp.Space, cs.Addr, t.Addr)] = t.Count
			}
		}
		for _, rs := range sp.RPSites {
			for _, r := range rs.RPs {
				out[fmt.Sprintf("%s/rp/%d/%d", sp.Space, rs.Addr, r.RP)] = r.Count
			}
		}
		for _, pw := range sp.Procs {
			out[fmt.Sprintf("%s/proc/%s/calls", sp.Space, pw.Name)] = pw.Calls
			out[fmt.Sprintf("%s/proc/%s/interp", sp.Space, pw.Name)] = pw.InterpInstrs
		}
	}
	return out
}

// TestAgeHalvesAndDrops pins the decay arithmetic on a hand-checked case:
// ceiling halving, floor removal, empty-site removal, Runs self-clocking.
func TestAgeHalvesAndDrops(t *testing.T) {
	p := sample(5, 1) // smallest counts: 1s and 2s throughout
	aged := Age(p, 2)
	if err := Validate(aged); err != nil {
		t.Fatalf("aged profile invalid: %v", err)
	}
	if aged.Runs != 3 {
		t.Errorf("Runs = %d, want ceil(5/2) = 3", aged.Runs)
	}
	u := aged.Space("user")
	if u == nil {
		t.Fatal("user space dropped")
	}
	// Call site 10: results were {1w: 2, 3w: 1} -> halved {1, 1}, both
	// below floor 2 -> rows dropped; targets {user/7: 2, lib/4: 1} -> {1,1}
	// dropped too -> whole site removed. Site 40 (count 1) removed as well.
	if cs := u.callSite(10); cs != nil {
		t.Errorf("call site 10 should have aged away, has %+v", *cs)
	}
	if len(u.CallSites) != 0 {
		t.Errorf("all user call sites should age away at floor 2, have %d", len(u.CallSites))
	}
	// Case site 20: {21: 1, 30: 5} -> {1, 3}; the 1 drops, the 3 survives.
	if len(u.CaseSites) != 1 || len(u.CaseSites[0].Targets) != 1 ||
		u.CaseSites[0].Targets[0] != (AddrCount{Addr: 30, Count: 3}) {
		t.Errorf("case site 20 aged wrong: %+v", u.CaseSites)
	}
	// RP site 11: count 3 -> 2, survives exactly at the floor.
	if len(u.RPSites) != 1 || u.RPSites[0].RPs[0].Count != 2 {
		t.Errorf("rp site aged wrong: %+v", u.RPSites)
	}
	// Procs: main {1, 100} -> {1, 50}; work {9, 0} -> {5, 0}.
	if len(u.Procs) != 2 || u.Procs[0].InterpInstrs != 50 || u.Procs[1].Calls != 5 {
		t.Errorf("proc weights aged wrong: %+v", u.Procs)
	}
	// The lib space's single count-1 row drops; the space section stays
	// (it still carries the fingerprint) but must validate.
	l := aged.Space("lib")
	if l == nil || len(l.RPSites) != 0 {
		t.Errorf("lib rp site should age away: %+v", l)
	}
	// Input untouched.
	if p.Runs != 5 || len(p.Spaces[0].CallSites) != 2 {
		t.Error("Age modified its input")
	}
}

// TestAgeFloorOneNeverDrops: with the default floor, halving alone never
// removes a row — counts saturate at 1 instead of vanishing.
func TestAgeFloorOneNeverDrops(t *testing.T) {
	p := sample(1, 1)
	aged := Age(Age(Age(p, 1), 1), 1)
	if err := Validate(aged); err != nil {
		t.Fatalf("aged profile invalid: %v", err)
	}
	before, after := flattenCounts(p), flattenCounts(aged)
	for k, v := range before {
		if v > 0 && after[k] < 1 {
			t.Errorf("row %s decayed to %d at floor 1", k, after[k])
		}
	}
	if len(before) != len(after) {
		t.Errorf("floor-1 aging changed row count %d -> %d", len(before), len(after))
	}
}

// TestAgeMergeTolerance is the property test pinning the decay semantics
// the fleet server depends on: aging-then-merging and merging-then-aging
// the same upload set agree within the documented tolerance — every row
// (absent rows counting as zero) differs by less than K*floor, and at
// floor 1 by at most the pure rounding term K-1.
func TestAgeMergeTolerance(t *testing.T) {
	for _, K := range []int{2, 3, 6} {
		for _, floor := range []int64{1, 2, 4} {
			t.Run(fmt.Sprintf("K=%d/floor=%d", K, floor), func(t *testing.T) {
				var ps []*Profile
				for i := 0; i < K; i++ {
					// Varied scales make counts collide with every rounding
					// boundary; sample keeps fingerprints equal so Merge
					// accepts the set.
					ps = append(ps, sample(int64(i)+1, int64(3*i+1)))
				}

				merged, err := Merge(ps...)
				if err != nil {
					t.Fatal(err)
				}
				mergeThenAge := Age(merged, floor)

				var aged []*Profile
				for _, p := range ps {
					aged = append(aged, Age(p, floor))
				}
				ageThenMerge, err := Merge(aged...)
				if err != nil {
					t.Fatal(err)
				}

				for _, p := range []*Profile{mergeThenAge, ageThenMerge} {
					if err := Validate(p); err != nil {
						t.Fatalf("order produced invalid profile: %v", err)
					}
				}

				a, b := flattenCounts(mergeThenAge), flattenCounts(ageThenMerge)
				tol := int64(K)*floor - 1 // documented: differ by < K*floor
				keys := map[string]bool{}
				for k := range a {
					keys[k] = true
				}
				for k := range b {
					keys[k] = true
				}
				for k := range keys {
					av, bv := a[k], b[k]
					if av-bv > tol || bv-av > tol {
						t.Errorf("%s differs beyond tolerance: merge-then-age %d vs age-then-merge %d (tol %d)",
							k, av, bv, tol)
					}
				}
			})
		}
	}
}

// TestHashStableAndSensitive: equal observation sets hash equal regardless
// of merge order; any count change moves the hash.
func TestHashStableAndSensitive(t *testing.T) {
	a, b := sample(1, 2), sample(2, 5)
	m1, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Merge(b, a)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := m1.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := m2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("merge order changed the hash: %s vs %s", h1, h2)
	}
	if len(h1) != 16 {
		t.Errorf("hash %q is not 16 hex digits", h1)
	}
	m2.Spaces[0].RPSites[0].RPs[0].Count++
	h3, err := m2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("count change did not move the hash")
	}
	if _, err := (&Profile{Schema: "wrong"}).Hash(); err == nil {
		t.Error("Hash should refuse an invalid profile")
	}
}
