package pgo

import (
	"strings"
	"testing"
)

// sample builds a small hand-rolled profile with every section populated.
func sample(runs int64, scale int64) *Profile {
	return &Profile{
		Schema:   Schema,
		Workload: "sample",
		Runs:     runs,
		Spaces: []SpaceProfile{
			{
				Space: "user", File: "prog", Fingerprint: "00000000deadbeef",
				CallSites: []CallSite{
					{Addr: 10,
						Results: []ResultCount{{Words: 1, Count: 2 * scale}, {Words: 3, Count: scale}},
						Targets: []TargetCount{{Space: "user", PEP: 7, Count: 2 * scale}, {Space: "lib", PEP: 4, Count: scale}}},
					{Addr: 40, Results: []ResultCount{{Words: 0, Count: scale}}},
				},
				CaseSites: []CaseSite{
					{Addr: 20, Targets: []AddrCount{{Addr: 21, Count: scale}, {Addr: 30, Count: 5 * scale}}},
				},
				RPSites: []RPSite{
					{Addr: 11, RPs: []RPCount{{RP: 2, Count: 3 * scale}}},
				},
				Procs: []ProcWeight{
					{Name: "main", Calls: scale, InterpInstrs: 100 * scale},
					{Name: "work", Calls: 9 * scale},
				},
			},
			{
				Space: "lib", File: "syslib", Fingerprint: "0123456789abcdef",
				RPSites: []RPSite{{Addr: 5, RPs: []RPCount{{RP: 0, Count: scale}}}},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	p := sample(1, 3)
	j, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseProfile(j)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := q.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j) != string(j2) {
		t.Errorf("round trip not byte-identical:\n%s\nvs\n%s", j, j2)
	}
}

// TestMergeOrderIndependent is the determinism contract: merging the same
// set of profiles in any order yields byte-identical JSON.
func TestMergeOrderIndependent(t *testing.T) {
	a, b, c := sample(1, 1), sample(1, 7), sample(2, 13)
	// Give b an extra site so the merge has real structural work to do.
	b.Spaces[0].CallSites = append(b.Spaces[0].CallSites, CallSite{
		Addr: 99, Results: []ResultCount{{Words: 5, Count: 11}}})

	m1, err := Merge(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Merge(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("merge is order-dependent:\n%s\nvs\n%s", j1, j2)
	}
	if m1.Runs != 4 {
		t.Errorf("merged runs = %d, want 4", m1.Runs)
	}
	// Counts must sum: call site 10 result words=1 appears in all three.
	cs := m1.Space("user").callSite(10)
	if cs == nil || cs.Results[0] != (ResultCount{Words: 1, Count: 2 * (1 + 7 + 13)}) {
		t.Errorf("merged counts wrong: %+v", cs)
	}
}

func TestMergeFingerprintConflict(t *testing.T) {
	a, b := sample(1, 1), sample(1, 1)
	b.Spaces[0].Fingerprint = "00000000feedface"
	if _, err := Merge(a, b); err == nil {
		t.Error("merging profiles of different binaries should fail")
	}
}

func TestLookups(t *testing.T) {
	p := sample(1, 1)
	if _, ok := p.ResultSize("user", 10); ok {
		t.Error("ambiguous result histogram should not yield a size")
	}
	if w, ok := p.ResultSize("user", 40); !ok || w != 0 {
		t.Errorf("unique result: got %d/%v, want 0/true", w, ok)
	}
	if rp, ok := p.ObservedRP("user", 11); !ok || rp != 2 {
		t.Errorf("observed RP: got %d/%v, want 2/true", rp, ok)
	}
	if _, ok := p.ObservedRP("user", 12); ok {
		t.Error("unseen site should not yield an RP")
	}
	tg := p.Targets("user", 10)
	if len(tg) != 2 || tg[0].PEP != 7 || tg[1].PEP != 4 {
		t.Errorf("targets should be count-descending: %+v", tg)
	}
	// main: weight 101, work: weight 9.
	procs := p.HotProcs("user", 0.9)
	if len(procs) != 1 || procs[0] != "main" {
		t.Errorf("HotProcs(0.9) = %v, want [main]", procs)
	}
	procs = p.HotProcs("user", 1.0)
	if len(procs) != 2 {
		t.Errorf("HotProcs(1.0) = %v, want both", procs)
	}
}

func TestMatches(t *testing.T) {
	p := sample(1, 1)
	if !p.Matches("user", 0xdeadbeef) {
		t.Error("matching fingerprint rejected")
	}
	if p.Matches("user", 0xfeedface) {
		t.Error("stale fingerprint accepted")
	}
	if !p.Matches("nosuchspace", 0x1234) {
		t.Error("a profile with no section for the space should be vacuously fresh")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Profile){
		"bad schema":          func(p *Profile) { p.Schema = "tnsr/pgo-profile/v2" },
		"negative runs":       func(p *Profile) { p.Runs = -1 },
		"bad space name":      func(p *Profile) { p.Spaces[0].Space = "kernel" },
		"dup space":           func(p *Profile) { p.Spaces[1].Space = "user" },
		"space order":         func(p *Profile) { p.Spaces[0], p.Spaces[1] = p.Spaces[1], p.Spaces[0] },
		"short fingerprint":   func(p *Profile) { p.Spaces[0].Fingerprint = "abc" },
		"non-hex fingerprint": func(p *Profile) { p.Spaces[0].Fingerprint = "zzzzzzzzzzzzzzzz" },
		"site order": func(p *Profile) {
			s := p.Spaces[0].CallSites
			s[0], s[1] = s[1], s[0]
		},
		"result words range": func(p *Profile) { p.Spaces[0].CallSites[0].Results[0].Words = 8 },
		"result order": func(p *Profile) {
			r := p.Spaces[0].CallSites[0].Results
			r[0], r[1] = r[1], r[0]
		},
		"zero count": func(p *Profile) { p.Spaces[0].CallSites[0].Results[0].Count = 0 },
		"rp range":   func(p *Profile) { p.Spaces[0].RPSites[0].RPs[0].RP = 8 },
		"empty rows": func(p *Profile) { p.Spaces[0].RPSites[0].RPs = nil },
		"dup proc": func(p *Profile) {
			p.Spaces[0].Procs = append(p.Spaces[0].Procs, ProcWeight{Name: "main", Calls: 1})
		},
		"negative weight": func(p *Profile) { p.Spaces[0].Procs[0].Calls = -1 },
	}
	for name, mutate := range cases {
		p := sample(1, 1)
		mutate(p)
		if err := Validate(p); err == nil {
			t.Errorf("%s: Validate accepted a broken profile", name)
		}
	}
	if err := Validate(sample(1, 1)); err != nil {
		t.Errorf("pristine sample rejected: %v", err)
	}
}

func TestParseRejectsTrailingAndUnknown(t *testing.T) {
	p := sample(1, 1)
	j, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseProfile(append(j, []byte("{}")...)); err == nil {
		t.Error("trailing data accepted")
	}
	bad := strings.Replace(string(j), `"workload"`, `"wrkload"`, 1)
	if _, err := ParseProfile([]byte(bad)); err == nil {
		t.Error("unknown field accepted")
	}
}

// TestCaptureEmpty: a capture with no attached files and no events still
// snapshots to a valid (empty) profile.
func TestCaptureEmpty(t *testing.T) {
	p := NewCapture().Profile()
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
	if len(p.Spaces) != 0 || p.Runs != 1 {
		t.Errorf("empty capture: %+v", p)
	}
}
