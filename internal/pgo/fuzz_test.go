package pgo

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseProfile checks the parser's central invariant: anything it
// accepts re-serializes to a fixed point (parse -> JSON -> parse -> JSON is
// byte-stable), and nothing it accepts violates Validate. Inputs it rejects
// must fail with an error, never a panic.
func FuzzParseProfile(f *testing.F) {
	// Seed with the checked-in corpus of real and adversarial profiles.
	seeds, _ := filepath.Glob("testdata/*.pgo.json")
	for _, path := range seeds {
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	if j, err := sample(3, 9).JSON(); err == nil {
		f.Add(j)
	}
	f.Add([]byte(`{"schema":"tnsr/pgo-profile/v1","runs":0,"spaces":null}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseProfile(data)
		if err != nil {
			return
		}
		if err := Validate(p); err != nil {
			t.Fatalf("ParseProfile accepted an invalid profile: %v", err)
		}
		j1, err := p.JSON()
		if err != nil {
			t.Fatalf("accepted profile failed to serialize: %v", err)
		}
		q, err := ParseProfile(j1)
		if err != nil {
			t.Fatalf("serialized form of accepted profile rejected: %v", err)
		}
		j2, err := q.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(j1) != string(j2) {
			t.Fatalf("not a fixed point:\n%s\nvs\n%s", j1, j2)
		}
	})
}
