package pgo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// JSON serializes the profile in canonical form: normalized slice order,
// two-space indent, trailing newline. Equal profiles produce identical
// bytes, which is what the merge-determinism and parallel-translation tests
// compare.
func (p *Profile) JSON() ([]byte, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ParseProfile decodes and validates a profile. Unknown fields are
// rejected: a profile written by a newer schema must fail loudly here, not
// silently drop advice.
func ParseProfile(data []byte) (*Profile, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Profile
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("pgo: parse: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("pgo: parse: trailing data after profile")
	}
	if err := Validate(&p); err != nil {
		return nil, err
	}
	return &p, nil
}

// ReadFile loads and validates a profile from disk.
func ReadFile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseProfile(data)
}

// WriteFile writes the profile in canonical form.
func WriteFile(path string, p *Profile) error {
	data, err := p.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// SidecarPath is the conventional on-disk location of the profile for a
// codefile: `<codefile>.pgo.json` next to the object file, the same shape
// the paper's customers used for hand-written hint files.
func SidecarPath(codefilePath string) string {
	return codefilePath + ".pgo.json"
}
