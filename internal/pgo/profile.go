// Package pgo is the profile-guided retranslation subsystem: the feedback
// loop the paper's customers closed by hand with hint files. A run captures
// the facts the Accelerator could not prove statically — the actual result
// sizes of calls it had to guess, the dynamic RP wherever a run-time check
// sent execution into the interpreter, the resolved targets of indirect
// calls and CASE jumps, and per-procedure residency weights — into a
// deterministic, mergeable profile. A retranslation with the profile
// attached (core.Options.Profile) replaces the wrong guesses with the
// observed facts, while every run-time guard stays in place: the profile is
// advisory, never load-bearing for correctness.
//
// pgo depends only on codefile; the interpreter, the mixed-mode runner and
// the Accelerator all depend on pgo, never the reverse — the same topology
// obs uses, so interp.Machine can hold a concrete *pgo.Capture behind the
// one-pointer-compare nil contract.
package pgo

import (
	"fmt"
	"sort"
	"strconv"
)

// Schema identifies the JSON profile format; bump on incompatible change.
const Schema = "tnsr/pgo-profile/v1"

// Profile is the aggregated observation set of one or more runs of one
// program (user codefile plus optional library). All slices are sorted
// (spaces user-before-lib, sites by address, histograms by key), so equal
// observation sets serialize to identical bytes regardless of capture or
// merge order.
type Profile struct {
	Schema   string         `json:"schema"`
	Workload string         `json:"workload,omitempty"`
	Runs     int64          `json:"runs"`
	Spaces   []SpaceProfile `json:"spaces"`
}

// SpaceProfile holds the observations attributed to one code space.
type SpaceProfile struct {
	// Space is "user" or "lib".
	Space string `json:"space"`
	// File is the codefile name the observations were captured against.
	File string `json:"file,omitempty"`
	// Fingerprint is the hex form of codefile.File.Fingerprint at capture
	// time. A retranslation ignores the profile when the fingerprint no
	// longer matches — a stale profile must degrade to "no profile", never
	// to wrong advice.
	Fingerprint string `json:"fingerprint,omitempty"`

	CallSites []CallSite   `json:"call_sites,omitempty"`
	CaseSites []CaseSite   `json:"case_sites,omitempty"`
	RPSites   []RPSite     `json:"rp_sites,omitempty"`
	Procs     []ProcWeight `json:"procs,omitempty"`
}

// CallSite is the observation record of one call instruction: the result
// sizes its callees actually left on the register stack, and which
// procedures it actually reached (for indirect-call devirtualization).
type CallSite struct {
	Addr    uint16        `json:"addr"`
	Results []ResultCount `json:"results,omitempty"`
	Targets []TargetCount `json:"targets,omitempty"`
}

// ResultCount is one row of a call site's result-size histogram.
type ResultCount struct {
	Words int8  `json:"words"`
	Count int64 `json:"count"`
}

// TargetCount is one observed callee of a call site.
type TargetCount struct {
	Space string `json:"space"`
	PEP   uint16 `json:"pep"`
	Count int64  `json:"count"`
}

// CaseSite records the resolved targets of one CASE indexed jump.
type CaseSite struct {
	Addr    uint16      `json:"addr"`
	Targets []AddrCount `json:"targets"`
}

// AddrCount is one observed jump target.
type AddrCount struct {
	Addr  uint16 `json:"addr"`
	Count int64  `json:"count"`
}

// RPSite records the dynamic RP observed at a TNS address where a run-time
// guard sent execution into the interpreter (a failed return-point check, a
// refused re-entry, a puzzle-join fallback). The retranslation uses it to
// recover the result size a guess got wrong, and to confirm which RP
// actually arrives at a conflicting join.
type RPSite struct {
	Addr uint16    `json:"addr"`
	RPs  []RPCount `json:"rps"`
}

// RPCount is one row of an RP observation histogram.
type RPCount struct {
	RP    uint8 `json:"rp"`
	Count int64 `json:"count"`
}

// ProcWeight is one procedure's residency weight: how often it was called
// and how many instructions of it ran interpreted.
type ProcWeight struct {
	Name         string `json:"name"`
	Calls        int64  `json:"calls"`
	InterpInstrs int64  `json:"interp_instrs"`
}

var spaceNames = [2]string{"user", "lib"}

// SpaceName returns the canonical space label for a space bit.
func SpaceName(space uint8) string { return spaceNames[space&1] }

// Space returns the profile section for the named space, or nil.
func (p *Profile) Space(name string) *SpaceProfile {
	for i := range p.Spaces {
		if p.Spaces[i].Space == name {
			return &p.Spaces[i]
		}
	}
	return nil
}

// Matches reports whether the profile may be applied to a codefile with the
// given fingerprint in the named space: either the profile has no section or
// no recorded fingerprint for that space, or the fingerprints agree.
func (p *Profile) Matches(space string, fingerprint uint64) bool {
	sp := p.Space(space)
	if sp == nil || sp.Fingerprint == "" {
		return true
	}
	return sp.Fingerprint == fmt.Sprintf("%016x", fingerprint)
}

func (sp *SpaceProfile) callSite(addr uint16) *CallSite {
	i := sort.Search(len(sp.CallSites), func(i int) bool {
		return sp.CallSites[i].Addr >= addr
	})
	if i < len(sp.CallSites) && sp.CallSites[i].Addr == addr {
		return &sp.CallSites[i]
	}
	return nil
}

// ResultSize reports the observed result size of the call at addr, if every
// observed execution agreed on one size. Disagreeing observations yield no
// advice: a single size is the only fact a static RP assignment can use.
func (p *Profile) ResultSize(space string, addr uint16) (int8, bool) {
	sp := p.Space(space)
	if sp == nil {
		return 0, false
	}
	cs := sp.callSite(addr)
	if cs == nil || len(cs.Results) != 1 {
		return 0, false
	}
	return cs.Results[0].Words, true
}

// ObservedRP reports the dynamic RP observed at addr, if every observation
// agreed.
func (p *Profile) ObservedRP(space string, addr uint16) (uint8, bool) {
	sp := p.Space(space)
	if sp == nil {
		return 0, false
	}
	i := sort.Search(len(sp.RPSites), func(i int) bool {
		return sp.RPSites[i].Addr >= addr
	})
	if i >= len(sp.RPSites) || sp.RPSites[i].Addr != addr {
		return 0, false
	}
	if rs := sp.RPSites[i].RPs; len(rs) == 1 {
		return rs[0].RP, true
	}
	return 0, false
}

// Targets returns the observed callees of the call at addr, hottest first
// (ties broken by space then PEP, so the order is deterministic).
func (p *Profile) Targets(space string, addr uint16) []TargetCount {
	sp := p.Space(space)
	if sp == nil {
		return nil
	}
	cs := sp.callSite(addr)
	if cs == nil {
		return nil
	}
	out := append([]TargetCount{}, cs.Targets...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Space != out[j].Space {
			return out[i].Space < out[j].Space
		}
		return out[i].PEP < out[j].PEP
	})
	return out
}

// HotProcs returns the smallest set of procedures covering at least the
// given fraction of the space's residency weight (calls plus interpreted
// instructions), hottest first. cover is clamped to [0, 1].
func (p *Profile) HotProcs(space string, cover float64) []string {
	sp := p.Space(space)
	if sp == nil {
		return nil
	}
	if cover > 1 {
		cover = 1
	}
	type wp struct {
		name   string
		weight int64
	}
	var total int64
	ws := make([]wp, 0, len(sp.Procs))
	for _, pr := range sp.Procs {
		w := pr.Calls + pr.InterpInstrs
		if w <= 0 {
			continue
		}
		ws = append(ws, wp{pr.Name, w})
		total += w
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].weight != ws[j].weight {
			return ws[i].weight > ws[j].weight
		}
		return ws[i].name < ws[j].name
	})
	var out []string
	var acc int64
	for _, w := range ws {
		if total > 0 && float64(acc) >= cover*float64(total) && len(out) > 0 {
			break
		}
		out = append(out, w.name)
		acc += w.weight
	}
	return out
}

// Merge combines profiles of the same program into one, summing counts.
// The result is independent of argument order; fingerprint disagreement for
// a space is an error (profiles of different builds must not be mixed).
func Merge(profiles ...*Profile) (*Profile, error) {
	out := &Profile{Schema: Schema}
	for _, p := range profiles {
		if p == nil {
			continue
		}
		if p.Schema != Schema {
			return nil, fmt.Errorf("pgo: merge: schema %q, want %q", p.Schema, Schema)
		}
		out.Runs += p.Runs
		if out.Workload == "" {
			out.Workload = p.Workload
		}
		for i := range p.Spaces {
			if err := out.mergeSpace(&p.Spaces[i]); err != nil {
				return nil, err
			}
		}
	}
	out.normalize()
	return out, nil
}

func (p *Profile) mergeSpace(src *SpaceProfile) error {
	dst := p.Space(src.Space)
	if dst == nil {
		p.Spaces = append(p.Spaces, SpaceProfile{Space: src.Space})
		dst = &p.Spaces[len(p.Spaces)-1]
	}
	if dst.File == "" {
		dst.File = src.File
	}
	switch {
	case dst.Fingerprint == "":
		dst.Fingerprint = src.Fingerprint
	case src.Fingerprint != "" && src.Fingerprint != dst.Fingerprint:
		return fmt.Errorf("pgo: merge: %s fingerprint %s != %s (profiles of different builds)",
			src.Space, src.Fingerprint, dst.Fingerprint)
	}
	for _, cs := range src.CallSites {
		d := dst.callSiteOrNew(cs.Addr)
		for _, r := range cs.Results {
			d.addResult(r.Words, r.Count)
		}
		for _, t := range cs.Targets {
			d.addTarget(t.Space, t.PEP, t.Count)
		}
	}
	for _, cs := range src.CaseSites {
		d := dst.caseSiteOrNew(cs.Addr)
		for _, t := range cs.Targets {
			d.addTarget(t.Addr, t.Count)
		}
	}
	for _, rs := range src.RPSites {
		d := dst.rpSiteOrNew(rs.Addr)
		for _, r := range rs.RPs {
			d.addRP(r.RP, r.Count)
		}
	}
	for _, pw := range src.Procs {
		dst.addProc(pw.Name, pw.Calls, pw.InterpInstrs)
	}
	return nil
}

func (sp *SpaceProfile) callSiteOrNew(addr uint16) *CallSite {
	if cs := sp.callSite(addr); cs != nil {
		return cs
	}
	sp.CallSites = append(sp.CallSites, CallSite{Addr: addr})
	sort.Slice(sp.CallSites, func(i, j int) bool {
		return sp.CallSites[i].Addr < sp.CallSites[j].Addr
	})
	return sp.callSite(addr)
}

func (cs *CallSite) addResult(words int8, n int64) {
	for i := range cs.Results {
		if cs.Results[i].Words == words {
			cs.Results[i].Count += n
			return
		}
	}
	cs.Results = append(cs.Results, ResultCount{Words: words, Count: n})
}

func (cs *CallSite) addTarget(space string, pep uint16, n int64) {
	for i := range cs.Targets {
		if cs.Targets[i].Space == space && cs.Targets[i].PEP == pep {
			cs.Targets[i].Count += n
			return
		}
	}
	cs.Targets = append(cs.Targets, TargetCount{Space: space, PEP: pep, Count: n})
}

func (sp *SpaceProfile) caseSiteOrNew(addr uint16) *CaseSite {
	for i := range sp.CaseSites {
		if sp.CaseSites[i].Addr == addr {
			return &sp.CaseSites[i]
		}
	}
	sp.CaseSites = append(sp.CaseSites, CaseSite{Addr: addr})
	return &sp.CaseSites[len(sp.CaseSites)-1]
}

func (cs *CaseSite) addTarget(addr uint16, n int64) {
	for i := range cs.Targets {
		if cs.Targets[i].Addr == addr {
			cs.Targets[i].Count += n
			return
		}
	}
	cs.Targets = append(cs.Targets, AddrCount{Addr: addr, Count: n})
}

func (sp *SpaceProfile) rpSiteOrNew(addr uint16) *RPSite {
	for i := range sp.RPSites {
		if sp.RPSites[i].Addr == addr {
			return &sp.RPSites[i]
		}
	}
	sp.RPSites = append(sp.RPSites, RPSite{Addr: addr})
	return &sp.RPSites[len(sp.RPSites)-1]
}

func (rs *RPSite) addRP(rp uint8, n int64) {
	for i := range rs.RPs {
		if rs.RPs[i].RP == rp {
			rs.RPs[i].Count += n
			return
		}
	}
	rs.RPs = append(rs.RPs, RPCount{RP: rp, Count: n})
}

func (sp *SpaceProfile) addProc(name string, calls, interp int64) {
	for i := range sp.Procs {
		if sp.Procs[i].Name == name {
			sp.Procs[i].Calls += calls
			sp.Procs[i].InterpInstrs += interp
			return
		}
	}
	sp.Procs = append(sp.Procs, ProcWeight{Name: name, Calls: calls, InterpInstrs: interp})
}

// normalize sorts every slice into the canonical order Validate requires.
func (p *Profile) normalize() {
	sort.Slice(p.Spaces, func(i, j int) bool {
		return spaceRank(p.Spaces[i].Space) < spaceRank(p.Spaces[j].Space)
	})
	for si := range p.Spaces {
		sp := &p.Spaces[si]
		sort.Slice(sp.CallSites, func(i, j int) bool { return sp.CallSites[i].Addr < sp.CallSites[j].Addr })
		for ci := range sp.CallSites {
			cs := &sp.CallSites[ci]
			sort.Slice(cs.Results, func(i, j int) bool { return cs.Results[i].Words < cs.Results[j].Words })
			sort.Slice(cs.Targets, func(i, j int) bool {
				if cs.Targets[i].Space != cs.Targets[j].Space {
					return spaceRank(cs.Targets[i].Space) < spaceRank(cs.Targets[j].Space)
				}
				return cs.Targets[i].PEP < cs.Targets[j].PEP
			})
		}
		sort.Slice(sp.CaseSites, func(i, j int) bool { return sp.CaseSites[i].Addr < sp.CaseSites[j].Addr })
		for ci := range sp.CaseSites {
			cs := &sp.CaseSites[ci]
			sort.Slice(cs.Targets, func(i, j int) bool { return cs.Targets[i].Addr < cs.Targets[j].Addr })
		}
		sort.Slice(sp.RPSites, func(i, j int) bool { return sp.RPSites[i].Addr < sp.RPSites[j].Addr })
		for ri := range sp.RPSites {
			rs := &sp.RPSites[ri]
			sort.Slice(rs.RPs, func(i, j int) bool { return rs.RPs[i].RP < rs.RPs[j].RP })
		}
		sort.Slice(sp.Procs, func(i, j int) bool { return sp.Procs[i].Name < sp.Procs[j].Name })
	}
}

func spaceRank(s string) int {
	switch s {
	case "user":
		return 0
	case "lib":
		return 1
	}
	return 2
}

// Validate checks a profile against the schema's invariants: schema tag,
// known spaces without duplicates, canonical sort order everywhere, positive
// counts, RPs and result sizes inside the 3-bit register barrel, and
// well-formed fingerprints. Strict order checking is what makes "parse then
// re-serialize" byte-stable — the fuzz target leans on it.
func Validate(p *Profile) error {
	if p.Schema != Schema {
		return fmt.Errorf("pgo: schema %q, want %q", p.Schema, Schema)
	}
	if p.Runs < 0 {
		return fmt.Errorf("pgo: negative run count %d", p.Runs)
	}
	seen := map[string]bool{}
	for si := range p.Spaces {
		sp := &p.Spaces[si]
		if sp.Space != "user" && sp.Space != "lib" {
			return fmt.Errorf("pgo: unknown space %q", sp.Space)
		}
		if seen[sp.Space] {
			return fmt.Errorf("pgo: duplicate space %q", sp.Space)
		}
		seen[sp.Space] = true
		if si > 0 && spaceRank(p.Spaces[si-1].Space) > spaceRank(sp.Space) {
			return fmt.Errorf("pgo: spaces out of order (%s after %s)",
				sp.Space, p.Spaces[si-1].Space)
		}
		if sp.Fingerprint != "" {
			if len(sp.Fingerprint) != 16 {
				return fmt.Errorf("pgo: %s fingerprint %q is not 16 hex digits", sp.Space, sp.Fingerprint)
			}
			if _, err := strconv.ParseUint(sp.Fingerprint, 16, 64); err != nil {
				return fmt.Errorf("pgo: %s fingerprint %q: %v", sp.Space, sp.Fingerprint, err)
			}
		}
		if err := validateSpace(sp); err != nil {
			return err
		}
	}
	return nil
}

func validateSpace(sp *SpaceProfile) error {
	for i, cs := range sp.CallSites {
		if i > 0 && sp.CallSites[i-1].Addr >= cs.Addr {
			return fmt.Errorf("pgo: %s call sites out of order at %d", sp.Space, cs.Addr)
		}
		if len(cs.Results) == 0 && len(cs.Targets) == 0 {
			return fmt.Errorf("pgo: %s call site %d is empty", sp.Space, cs.Addr)
		}
		for j, r := range cs.Results {
			if r.Words < 0 || r.Words > 7 {
				return fmt.Errorf("pgo: %s call site %d: result size %d out of [0,7]", sp.Space, cs.Addr, r.Words)
			}
			if r.Count <= 0 {
				return fmt.Errorf("pgo: %s call site %d: non-positive result count", sp.Space, cs.Addr)
			}
			if j > 0 && cs.Results[j-1].Words >= r.Words {
				return fmt.Errorf("pgo: %s call site %d: results out of order", sp.Space, cs.Addr)
			}
		}
		for j, t := range cs.Targets {
			if t.Space != "user" && t.Space != "lib" {
				return fmt.Errorf("pgo: %s call site %d: unknown target space %q", sp.Space, cs.Addr, t.Space)
			}
			if t.Count <= 0 {
				return fmt.Errorf("pgo: %s call site %d: non-positive target count", sp.Space, cs.Addr)
			}
			if j > 0 {
				prev := cs.Targets[j-1]
				if spaceRank(prev.Space) > spaceRank(t.Space) ||
					(prev.Space == t.Space && prev.PEP >= t.PEP) {
					return fmt.Errorf("pgo: %s call site %d: targets out of order", sp.Space, cs.Addr)
				}
			}
		}
	}
	for i, cs := range sp.CaseSites {
		if i > 0 && sp.CaseSites[i-1].Addr >= cs.Addr {
			return fmt.Errorf("pgo: %s case sites out of order at %d", sp.Space, cs.Addr)
		}
		if len(cs.Targets) == 0 {
			return fmt.Errorf("pgo: %s case site %d has no targets", sp.Space, cs.Addr)
		}
		for j, t := range cs.Targets {
			if t.Count <= 0 {
				return fmt.Errorf("pgo: %s case site %d: non-positive count", sp.Space, cs.Addr)
			}
			if j > 0 && cs.Targets[j-1].Addr >= t.Addr {
				return fmt.Errorf("pgo: %s case site %d: targets out of order", sp.Space, cs.Addr)
			}
		}
	}
	for i, rs := range sp.RPSites {
		if i > 0 && sp.RPSites[i-1].Addr >= rs.Addr {
			return fmt.Errorf("pgo: %s rp sites out of order at %d", sp.Space, rs.Addr)
		}
		if len(rs.RPs) == 0 {
			return fmt.Errorf("pgo: %s rp site %d has no observations", sp.Space, rs.Addr)
		}
		for j, r := range rs.RPs {
			if r.RP > 7 {
				return fmt.Errorf("pgo: %s rp site %d: RP %d out of [0,7]", sp.Space, rs.Addr, r.RP)
			}
			if r.Count <= 0 {
				return fmt.Errorf("pgo: %s rp site %d: non-positive count", sp.Space, rs.Addr)
			}
			if j > 0 && rs.RPs[j-1].RP >= r.RP {
				return fmt.Errorf("pgo: %s rp site %d: RPs out of order", sp.Space, rs.Addr)
			}
		}
	}
	for i, pw := range sp.Procs {
		if pw.Name == "" {
			return fmt.Errorf("pgo: %s proc weight with empty name", sp.Space)
		}
		if pw.Calls < 0 || pw.InterpInstrs < 0 {
			return fmt.Errorf("pgo: %s proc %q has negative weight", sp.Space, pw.Name)
		}
		if i > 0 && sp.Procs[i-1].Name >= pw.Name {
			return fmt.Errorf("pgo: %s procs out of order at %q", sp.Space, pw.Name)
		}
	}
	return nil
}
