package pgo

import (
	"fmt"
	"hash/fnv"
)

// Cross-run aging: the decay that keeps a fleet aggregate honest. A program
// whose behaviour shifted (new build of a caller, different workload mix)
// keeps fingerprint-matching, so without decay the aggregate is forever
// steered by observations that stopped being true. Age halves every count
// histogram and drops rows that have decayed below a floor, so facts that
// keep being re-observed stay dominant and facts that stopped recurring
// fade out over a bounded number of aging events.
//
// Decay semantics (pinned by TestAgeMergeTolerance before fleets depend on
// them):
//
//   - Every count c becomes ceil(c/2), so a surviving row never decays to
//     zero by halving alone; only the floor removes it.
//   - A row whose halved count is below floor is dropped; a site left with
//     no rows is removed entirely (Validate rejects empty sites).
//   - Procedure weights halve the same way and a procedure whose total
//     weight falls below floor is dropped.
//   - Runs halves with ceiling too, which is what makes a served aggregate
//     self-clocking: a server that ages whenever Runs reaches N brings Runs
//     back under N in the same step.
//
// Aging commutes with Merge only up to integer rounding and floor drops.
// The documented tolerance, for K profiles merged: every row differs by
// LESS THAN K*floor between age-then-merge and merge-then-age (an absent
// row counts as zero). Two effects compose into that bound: ceiling-of-sum
// versus sum-of-ceilings contributes at most K-1, and age-then-merge loses
// whole sub-floor contributions (at most floor-1 each) that merge-then-age
// retains inside the sum. At floor 1 nothing drops, so the bound tightens
// to the pure rounding term K-1. The property test holds both bounds
// across K and floors.

// Age returns a decayed copy of p: every count histogram halved (ceiling),
// rows below floor dropped, empty sites removed, Runs halved. floor values
// below 1 behave as 1 (halving alone never drops a row). The input profile
// is not modified.
func Age(p *Profile, floor int64) *Profile {
	if floor < 1 {
		floor = 1
	}
	half := func(c int64) int64 {
		if c <= 0 {
			return 0
		}
		return (c + 1) / 2
	}
	out := &Profile{
		Schema:   p.Schema,
		Workload: p.Workload,
		Runs:     half(p.Runs),
	}
	for si := range p.Spaces {
		sp := &p.Spaces[si]
		dst := SpaceProfile{
			Space:       sp.Space,
			File:        sp.File,
			Fingerprint: sp.Fingerprint,
		}
		for _, cs := range sp.CallSites {
			d := CallSite{Addr: cs.Addr}
			for _, r := range cs.Results {
				if c := half(r.Count); c >= floor {
					d.Results = append(d.Results, ResultCount{Words: r.Words, Count: c})
				}
			}
			for _, t := range cs.Targets {
				if c := half(t.Count); c >= floor {
					d.Targets = append(d.Targets, TargetCount{Space: t.Space, PEP: t.PEP, Count: c})
				}
			}
			if len(d.Results) > 0 || len(d.Targets) > 0 {
				dst.CallSites = append(dst.CallSites, d)
			}
		}
		for _, cs := range sp.CaseSites {
			d := CaseSite{Addr: cs.Addr}
			for _, t := range cs.Targets {
				if c := half(t.Count); c >= floor {
					d.Targets = append(d.Targets, AddrCount{Addr: t.Addr, Count: c})
				}
			}
			if len(d.Targets) > 0 {
				dst.CaseSites = append(dst.CaseSites, d)
			}
		}
		for _, rs := range sp.RPSites {
			d := RPSite{Addr: rs.Addr}
			for _, r := range rs.RPs {
				if c := half(r.Count); c >= floor {
					d.RPs = append(d.RPs, RPCount{RP: r.RP, Count: c})
				}
			}
			if len(d.RPs) > 0 {
				dst.RPSites = append(dst.RPSites, d)
			}
		}
		for _, pw := range sp.Procs {
			calls, interp := half(pw.Calls), half(pw.InterpInstrs)
			if calls+interp >= floor {
				dst.Procs = append(dst.Procs, ProcWeight{
					Name: pw.Name, Calls: calls, InterpInstrs: interp,
				})
			}
		}
		out.Spaces = append(out.Spaces, dst)
	}
	return out
}

// Hash returns the FNV-1a hash of the profile's canonical JSON as 16 hex
// digits — the profile component of a retranslation-cache key. Equal
// observation sets hash equal regardless of capture or merge order, because
// JSON is canonical. Hashing fails only when the profile fails Validate.
func (p *Profile) Hash() (string, error) {
	data, err := p.JSON()
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
