package pgo

import (
	"fmt"

	"tnsr/internal/codefile"
)

// Capture is the run-time observation sink for profile-guided
// retranslation. It follows the obs.Recorder contract exactly: producers
// hold a plain *Capture field that is nil by default and test it before
// each event, so an uncaptured run pays one pointer compare per hook site.
// A Capture is not safe for concurrent use; attach one per runner.
//
// The hooks record only facts, never interpretations: the interpreter
// reports what a call returned and where a CASE landed; the mixed-mode
// runner reports the dynamic RP wherever a guard fired. Turning those facts
// into translation decisions is entirely the Accelerator's job at apply
// time, which is what keeps the profile advisory.
type Capture struct {
	// Workload names the run for the profile header (optional).
	Workload string

	files [2]*codefile.File
	// procAt maps TNS code addresses to PEP indexes per space (-1 where
	// unattributed), built by AttachFiles; residency attribution is two
	// array reads, no map in the interpreter hot path.
	procAt [2][]int32

	procCalls  [2][]int64 // per PEP index
	procInterp [2][]int64

	calls map[uint32]*callAgg         // space<<16 | call addr
	cases map[uint32]map[uint16]int64 // space<<16 | CASE addr -> target
	rps   map[uint32]map[uint8]int64  // space<<16 | addr -> dynamic RP
}

type callAgg struct {
	results map[int8]int64
	targets map[uint32]int64 // callee space<<16 | pep
}

// NewCapture returns an empty capture. Call AttachFiles before a run to
// enable per-procedure residency weights and fingerprint stamping.
func NewCapture() *Capture {
	return &Capture{
		calls: map[uint32]*callAgg{},
		cases: map[uint32]map[uint16]int64{},
		rps:   map[uint32]map[uint8]int64{},
	}
}

// AttachFiles binds the capture to the codefiles of a run so observations
// can be attributed to procedures and the emitted profile carries the
// codefile fingerprints that gate a later apply. lib may be nil.
func (c *Capture) AttachFiles(user, lib *codefile.File) {
	c.files = [2]*codefile.File{user, lib}
	for sp, f := range c.files {
		if f == nil {
			c.procAt[sp] = nil
			continue
		}
		t := make([]int32, len(f.Code))
		for i := range t {
			t[i] = -1
		}
		// Procedures are laid out contiguously in ascending entry order;
		// each entry owns the range up to the next-larger entry.
		for pi := range f.Procs {
			start := int(f.Procs[pi].Entry)
			end := len(f.Code)
			for pj := range f.Procs {
				e := int(f.Procs[pj].Entry)
				if e > start && e < end {
					end = e
				}
			}
			for a := start; a < end; a++ {
				t[a] = int32(pi)
			}
		}
		c.procAt[sp] = t
		c.procCalls[sp] = make([]int64, len(f.Procs))
		c.procInterp[sp] = make([]int64, len(f.Procs))
	}
}

// InterpStep records one interpreted instruction at TNS address p. Hot
// path: two array reads and an increment.
func (c *Capture) InterpStep(space uint8, p uint16) {
	t := c.procAt[space&1]
	if int(p) < len(t) {
		if pi := t[p]; pi >= 0 {
			c.procInterp[space&1][pi]++
		}
	}
}

// CallTarget records that the call instruction at callAddr (in callerSpace)
// transferred to the procedure pep in calleeSpace. Fired by the interpreter
// after its trap checks, so only calls that actually entered a procedure
// are counted.
func (c *Capture) CallTarget(callerSpace uint8, callAddr uint16, calleeSpace uint8, pep uint16) {
	a := c.agg(callerSpace, callAddr)
	a.targets[uint32(calleeSpace&1)<<16|uint32(pep)]++
	if pc := c.procCalls[calleeSpace&1]; int(pep) < len(pc) {
		pc[pep]++
	}
}

// ExitReturn records the dynamic result size observed when an EXIT returned
// to retP in callerSpace: rpAfter is the machine RP after the EXIT, and
// callerRP the caller's RP packed in the stack marker (post-PLabel-pop for
// XCAL). Every TNS call instruction is one word, so the call site is
// retP-1; the result size is the RP delta around the 3-bit register barrel.
func (c *Capture) ExitReturn(callerSpace uint8, retP uint16, rpAfter, callerRP uint8) {
	if retP == 0 {
		return
	}
	words := int8((rpAfter - callerRP + 8) & 7)
	a := c.agg(callerSpace, retP-1)
	a.results[words]++
}

// CaseTarget records where the CASE indexed jump at caseAddr resolved to.
func (c *Capture) CaseTarget(space uint8, caseAddr, target uint16) {
	key := uint32(space&1)<<16 | uint32(caseAddr)
	m := c.cases[key]
	if m == nil {
		m = map[uint16]int64{}
		c.cases[key] = m
	}
	m[target]++
}

// EscapeRP records the dynamic RP at a TNS address where a run-time guard
// sent execution to the interpreter — the fact a failed check proves.
func (c *Capture) EscapeRP(space uint8, addr uint16, rp uint8) {
	key := uint32(space&1)<<16 | uint32(addr)
	m := c.rps[key]
	if m == nil {
		m = map[uint8]int64{}
		c.rps[key] = m
	}
	m[rp&7]++
}

func (c *Capture) agg(space uint8, addr uint16) *callAgg {
	key := uint32(space&1)<<16 | uint32(addr)
	a := c.calls[key]
	if a == nil {
		a = &callAgg{results: map[int8]int64{}, targets: map[uint32]int64{}}
		c.calls[key] = a
	}
	return a
}

// Profile snapshots the captured observations as one run's canonical
// profile. The capture keeps accumulating; calling Profile again reflects
// later events too.
func (c *Capture) Profile() *Profile {
	p := &Profile{Schema: Schema, Workload: c.Workload, Runs: 1}
	for sp := 0; sp < 2; sp++ {
		s := SpaceProfile{Space: spaceNames[sp]}
		if f := c.files[sp]; f != nil {
			s.File = f.Name
			s.Fingerprint = fmt.Sprintf("%016x", f.Fingerprint())
		}
		for key, a := range c.calls {
			if key>>16&1 != uint32(sp) {
				continue
			}
			cs := s.callSiteOrNew(uint16(key))
			for w, n := range a.results {
				cs.addResult(w, n)
			}
			for tk, n := range a.targets {
				cs.addTarget(spaceNames[tk>>16&1], uint16(tk), n)
			}
		}
		for key, m := range c.cases {
			if key>>16&1 != uint32(sp) {
				continue
			}
			cs := s.caseSiteOrNew(uint16(key))
			for t, n := range m {
				cs.addTarget(t, n)
			}
		}
		for key, m := range c.rps {
			if key>>16&1 != uint32(sp) {
				continue
			}
			rs := s.rpSiteOrNew(uint16(key))
			for rp, n := range m {
				rs.addRP(rp, n)
			}
		}
		if f := c.files[sp]; f != nil {
			for pi := range f.Procs {
				calls, instrs := c.procCalls[sp][pi], c.procInterp[sp][pi]
				if calls != 0 || instrs != 0 {
					s.addProc(f.Procs[pi].Name, calls, instrs)
				}
			}
		}
		if s.File != "" || len(s.CallSites) > 0 || len(s.CaseSites) > 0 ||
			len(s.RPSites) > 0 || len(s.Procs) > 0 {
			p.Spaces = append(p.Spaces, s)
		}
	}
	p.normalize()
	return p
}
