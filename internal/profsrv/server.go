package profsrv

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tnsr/internal/pgo"
	"tnsr/internal/retry"
)

// Default limits; Config zero values fall back to these.
const (
	DefaultMaxBody  = 4 << 20 // canonical profiles are tens of KB; 4 MiB is generous
	DefaultAgeFloor = 1
)

// profilesPrefix is the resource path: POST uploads one runner's capture,
// GET serves the current aggregate.
const profilesPrefix = "/v1/profiles/"

// Config parameterizes a Server.
type Config struct {
	// Store holds the aggregates. Required.
	Store *Store

	// Token is the bearer token every /v1 request must present. Empty
	// disables auth (tests, trusted networks); tnsprofd requires one.
	Token string

	// MaxBody caps the accepted upload size in bytes (<= 0 means
	// DefaultMaxBody). Oversized uploads are rejected 413 without being
	// read.
	MaxBody int64

	// AgeEvery applies cross-run aging whenever a merged aggregate's run
	// count reaches this value: the aggregate is replaced by
	// pgo.Age(aggregate, AgeFloor), which also halves Runs, so the decay
	// self-clocks. 0 disables aging (the aggregate is then exactly the
	// order-independent merge of every upload — the differential harness
	// runs in this mode).
	AgeEvery int64

	// AgeFloor is the count below which an aged row is dropped
	// (<= 0 means DefaultAgeFloor).
	AgeFloor int64

	// RatePerSec, when > 0, applies a token-bucket rate limit to /v1
	// requests. The bucket is per client — keyed by remote host plus the
	// presented bearer token — so one abusive or runaway fleet machine
	// exhausts only its own budget and cannot starve its neighbours into
	// 429s. RateBurst is each bucket's depth (<= 0 means 1).
	RatePerSec float64
	RateBurst  int

	// Peers lists sibling tnsprofd base URLs. A GET then serves the merge
	// of the local aggregate with every peer's LOCAL aggregate (peers are
	// asked with ?local=1, so two nodes naming each other cannot recurse).
	// pgo.Merge is order-independent and canonical, so N nodes each
	// holding a subset of the fleet's captures serve one byte-identical
	// fleet-wide aggregate regardless of which node a capture landed on
	// or which node is asked. A peer that cannot be reached within
	// PeerTimeout degrades to "its captures are missing from this
	// answer": the response is still served, the failure is counted per
	// peer in /metrics, and a stale or partial aggregate costs interludes
	// downstream, never correctness — the same advisory contract every
	// profile consumer already honors.
	Peers []string

	// PeerTimeout bounds each peer fetch (<= 0 means DefaultPeerTimeout).
	PeerTimeout time.Duration

	// PeerToken is the bearer token presented to peers (they typically
	// share the fleet's token; empty sends none).
	PeerToken string

	// PeerBreakAfter is the consecutive-failure count that opens a peer's
	// circuit breaker: further GETs fast-fail that peer out of the merge
	// without paying PeerTimeout, until a cooldown probe finds it healthy
	// again (<= 0 means retry.DefaultBreakAfter). A dead peer then costs
	// one timeout per cooldown instead of one per request.
	PeerBreakAfter int

	// PeerBreakCooldown is how long an open peer breaker waits before
	// admitting a probe (<= 0 means retry.DefaultCooldown).
	PeerBreakCooldown time.Duration
}

// DefaultPeerTimeout bounds a peer aggregate fetch.
const DefaultPeerTimeout = 2 * time.Second

// Server is the tnsprofd HTTP surface. It is an http.Handler; routing,
// auth, limits and metrics all live here so the fuzz target can drive the
// entire request path without a socket.
type Server struct {
	cfg Config
	m   *metrics

	peerHTTP  *http.Client // peer fetches, bounded by PeerTimeout
	breakerMu sync.Mutex
	breakers  map[string]*retry.Breaker // peer URL -> circuit breaker, lazily built

	draining atomic.Bool

	bucketMu sync.Mutex
	buckets  map[string]*bucket
}

// bucket is one client's token bucket.
type bucket struct {
	tokens   float64
	lastFill time.Time
}

// maxBuckets bounds the per-client table so a client cycling spoofed
// addresses cannot grow it without limit; on overflow the stalest (and
// therefore fullest) buckets are evicted, which can only give clients a
// fresh full budget, never starve a legitimate one.
const maxBuckets = 4096

// New builds a Server. The store is required.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		panic("profsrv: New: Config.Store is required")
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.AgeFloor <= 0 {
		cfg.AgeFloor = DefaultAgeFloor
	}
	if cfg.RateBurst <= 0 {
		cfg.RateBurst = 1
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = DefaultPeerTimeout
	}
	return &Server{
		cfg:      cfg,
		m:        newMetrics(),
		peerHTTP: &http.Client{Timeout: cfg.PeerTimeout},
		breakers: map[string]*retry.Breaker{},
		buckets:  map[string]*bucket{},
	}
}

// breakerFor returns (building on first use) the breaker guarding a peer.
func (s *Server) breakerFor(peer string) *retry.Breaker {
	s.breakerMu.Lock()
	defer s.breakerMu.Unlock()
	b := s.breakers[peer]
	if b == nil {
		b = retry.NewBreaker(s.cfg.PeerBreakAfter, s.cfg.PeerBreakCooldown)
		s.breakers[peer] = b
	}
	return b
}

// SetDraining flips drain mode: new uploads are refused 503 (with a
// Retry-After so resilient clients back off to another node or a later
// attempt) while reads keep being served — profile data already held must
// stay available right up to the last request before shutdown.
func (s *Server) SetDraining(on bool) { s.draining.Store(on) }

// Draining reports whether the server is refusing new uploads.
func (s *Server) Draining() bool { return s.draining.Load() }

// clientKey identifies the bucket a request draws from: the remote host
// joined with the bearer token it presented. Either alone is spoofable in
// some deployment (shared NAT vs. shared fleet token); together they
// isolate the common failure mode — one runaway machine hammering the
// daemon — without any per-request allocation beyond the key itself.
func clientKey(r *http.Request) string {
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	tok, _ := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return host + "|" + tok
}

// allow draws one token from the request's client bucket.
func (s *Server) allow(r *http.Request) bool {
	if s.cfg.RatePerSec <= 0 {
		return true
	}
	key := clientKey(r)
	now := time.Now()
	s.bucketMu.Lock()
	defer s.bucketMu.Unlock()
	b := s.buckets[key]
	if b == nil {
		if len(s.buckets) >= maxBuckets {
			s.evictStale(now)
		}
		b = &bucket{tokens: float64(s.cfg.RateBurst), lastFill: now}
		s.buckets[key] = b
	}
	b.tokens += now.Sub(b.lastFill).Seconds() * s.cfg.RatePerSec
	if max := float64(s.cfg.RateBurst); b.tokens > max {
		b.tokens = max
	}
	b.lastFill = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictStale drops buckets idle long enough to have refilled completely —
// their state is indistinguishable from a fresh bucket, so dropping them
// changes no admission decision. If none qualify (burst of distinct keys
// inside one refill window), the whole table resets; that errs toward
// admitting, never toward starving.
func (s *Server) evictStale(now time.Time) {
	full := time.Duration(float64(s.cfg.RateBurst) / s.cfg.RatePerSec * float64(time.Second))
	dropped := 0
	for k, b := range s.buckets {
		if now.Sub(b.lastFill) >= full {
			delete(s.buckets, k)
			dropped++
		}
	}
	if dropped == 0 {
		s.buckets = map[string]*bucket{}
	}
}

// authed checks the bearer token in constant time.
func (s *Server) authed(r *http.Request) bool {
	if s.cfg.Token == "" {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(got), []byte(s.cfg.Token)) == 1
}

// fail writes a plain-text error and records the reject.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, code int, reason, msg string) {
	s.m.reject(reason)
	s.m.request(r.Method, code)
	http.Error(w, msg, code)
}

func (s *Server) ok(w http.ResponseWriter, r *http.Request, code int, body []byte, contentType string) {
	s.m.request(r.Method, code)
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(code)
	w.Write(body)
}

// ServeHTTP routes:
//
//	POST /v1/profiles/{fingerprint}  upload one capture; responds with the
//	                                 merged (and possibly aged) aggregate
//	GET  /v1/profiles/{fingerprint}  current aggregate, 404 when absent
//	GET  /metrics                    Prometheus text exposition (no auth:
//	                                 scrapers hold no fleet secrets)
//	GET  /healthz                    liveness probe
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		s.ok(w, r, http.StatusOK, []byte("ok\n"), "text/plain; charset=utf-8")
		return
	case r.URL.Path == "/metrics":
		s.serveMetrics(w, r)
		return
	}

	fp, isProfile := strings.CutPrefix(r.URL.Path, profilesPrefix)
	if !isProfile {
		s.fail(w, r, http.StatusNotFound, "path", "not found")
		return
	}
	if !s.authed(r) {
		s.fail(w, r, http.StatusUnauthorized, "auth", "missing or wrong bearer token")
		return
	}
	if !s.allow(r) {
		w.Header().Set("Retry-After", "1")
		s.fail(w, r, http.StatusTooManyRequests, "rate", "rate limit exceeded")
		return
	}
	if !ValidFingerprint(fp) {
		s.fail(w, r, http.StatusBadRequest, "fingerprint",
			"fingerprint must be 16 lowercase hex digits")
		return
	}

	switch r.Method {
	case http.MethodGet:
		s.serveAggregate(w, r, fp)
	case http.MethodPost:
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			s.fail(w, r, http.StatusServiceUnavailable, "draining",
				"server is draining; retry another node")
			return
		}
		s.acceptUpload(w, r, fp)
	default:
		s.fail(w, r, http.StatusMethodNotAllowed, "method", "use GET or POST")
	}
}

// serveAggregate is the GET side: the stored bytes are already canonical,
// but they are re-parsed and re-validated on every load — a damaged file
// must become a typed 500, never served advice. With peers configured (and
// the request not marked ?local=1), the response is the order-independent
// pgo.Merge of the local aggregate with every reachable peer's local
// aggregate — the multi-node fleet view.
func (s *Server) serveAggregate(w http.ResponseWriter, r *http.Request, fp string) {
	p, err := s.cfg.Store.Load(fp)
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, "store",
			"aggregate unreadable; refusing to serve it")
		return
	}
	localOnly := r.URL.Query().Get("local") != ""
	if !localOnly && len(s.cfg.Peers) > 0 {
		merged, err := s.mergePeers(fp, p)
		if err != nil {
			s.fail(w, r, http.StatusInternalServerError, "peer-merge", err.Error())
			return
		}
		p = merged
	}
	if p == nil {
		s.fail(w, r, http.StatusNotFound, "absent", "no aggregate for this fingerprint")
		return
	}
	data, err := p.JSON()
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, "store", "aggregate failed validation")
		return
	}
	s.m.add(&s.m.served)
	s.ok(w, r, http.StatusOK, data, "application/json")
}

// mergePeers fetches every peer's local aggregate for fp concurrently and
// merges the reachable ones with the local aggregate (nil when this node
// holds none). A peer failure — unreachable, slow past PeerTimeout, or a
// damaged response the strict parser refuses — degrades that peer out of
// the answer and counts in /metrics; it never fails the request. Each peer
// sits behind a circuit breaker, so a peer that keeps failing is dropped
// from the merge without paying its timeout until a cooldown probe clears
// it. Merge itself failing (cross-build fingerprints) is a hard error:
// refusing to serve beats serving a mixed-build aggregate.
func (s *Server) mergePeers(fp string, local *pgo.Profile) (*pgo.Profile, error) {
	parts := make([]*pgo.Profile, len(s.cfg.Peers))
	var wg sync.WaitGroup
	for i, peer := range s.cfg.Peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			br := s.breakerFor(peer)
			if !br.Allow() {
				s.m.peerFastFail(peer)
				return
			}
			p, err := s.fetchPeer(peer, fp)
			br.Report(err)
			if err != nil {
				s.m.peerError(peer)
				return
			}
			parts[i] = p // nil when the peer has no aggregate: skipped by Merge
		}(i, peer)
	}
	wg.Wait()
	any := local != nil
	for _, p := range parts {
		any = any || p != nil
	}
	if !any {
		return nil, nil
	}
	merged, err := pgo.Merge(append([]*pgo.Profile{local}, parts...)...)
	if err != nil {
		return nil, fmt.Errorf("peer aggregates refuse to merge: %v", err)
	}
	s.m.add(&s.m.peerMerges)
	return merged, nil
}

// fetchPeer GETs one peer's LOCAL aggregate ((nil, nil) when it has none).
func (s *Server) fetchPeer(peer, fp string) (*pgo.Profile, error) {
	url := strings.TrimSuffix(peer, "/") + profilesPrefix + fp + "?local=1"
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if s.cfg.PeerToken != "" {
		req.Header.Set("Authorization", "Bearer "+s.cfg.PeerToken)
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: %s", peer, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBody))
	if err != nil {
		return nil, err
	}
	return pgo.ParseProfile(data)
}

// acceptUpload is the POST side: parse strictly, pin the upload to the
// fingerprint in the path, merge under the fingerprint's lock, age when
// the run count says so, persist atomically, and answer with the new
// aggregate so the uploader can retranslate against it immediately.
func (s *Server) acceptUpload(w http.ResponseWriter, r *http.Request, fp string) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, r, http.StatusRequestEntityTooLarge, "size",
				fmt.Sprintf("profile exceeds %d bytes", s.cfg.MaxBody))
			return
		}
		s.fail(w, r, http.StatusBadRequest, "read", "body read failed")
		return
	}

	up, err := pgo.ParseProfile(data)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "parse", err.Error())
		return
	}
	// The store key is the user-space fingerprint: an upload must carry
	// one, and it must match the path. A mismatch is the stale-profile
	// case — the server refuses it so an aggregate can never mix builds
	// (pgo.Merge would refuse the cross-build merge anyway; rejecting here
	// types the error for the runner).
	usp := up.Space("user")
	if usp == nil || usp.Fingerprint == "" {
		s.fail(w, r, http.StatusBadRequest, "no-fingerprint",
			"profile has no user-space fingerprint")
		return
	}
	if usp.Fingerprint != fp {
		s.fail(w, r, http.StatusConflict, "stale-fingerprint",
			fmt.Sprintf("profile fingerprint %s does not match path %s", usp.Fingerprint, fp))
		return
	}

	aged := false
	merged, err := s.cfg.Store.Update(fp, func(cur *pgo.Profile) (*pgo.Profile, error) {
		next, err := pgo.Merge(cur, up) // Merge skips a nil cur
		if err != nil {
			return nil, err
		}
		if s.cfg.AgeEvery > 0 && next.Runs >= s.cfg.AgeEvery {
			next = pgo.Age(next, s.cfg.AgeFloor)
			aged = true
		}
		return next, nil
	})
	if err != nil {
		// Merge refusal (cross-build aggregate, should be unreachable past
		// the fingerprint gate) or a store failure.
		s.fail(w, r, http.StatusInternalServerError, "merge", err.Error())
		return
	}
	data, err = merged.JSON()
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, "merge", "merged aggregate failed validation")
		return
	}
	s.m.add(&s.m.uploads)
	if aged {
		s.m.add(&s.m.ages)
	}
	s.ok(w, r, http.StatusOK, data, "application/json")
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, "method", "use GET")
		return
	}
	stored, err := s.cfg.Store.List()
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, "store", "store unreadable")
		return
	}
	views := make([]peerBreakerView, 0, len(s.cfg.Peers))
	for _, peer := range s.cfg.Peers {
		views = append(views, peerBreakerView{peer: peer, counts: s.breakerFor(peer).Counts()})
	}
	var b strings.Builder
	s.m.write(&b, len(stored), views, s.draining.Load())
	s.ok(w, r, http.StatusOK, []byte(b.String()), "text/plain; version=0.0.4; charset=utf-8")
}
