package profsrv

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tnsr/internal/pgo"
)

// peerNode is one tnsprofd node in a simulated multi-node fleet: a Server
// over its own store, listening on a real socket so sibling nodes can fetch
// from it exactly the way production peers do.
type peerNode struct {
	s   *Server
	srv *httptest.Server
}

func newPeerNode(t testing.TB, mutate func(*Config)) *peerNode {
	t.Helper()
	s := newTestServer(t, mutate)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return &peerNode{s: s, srv: srv}
}

// push uploads one capture to a node and fails the test on rejection.
func (n *peerNode) push(t testing.TB, fp string, p *pgo.Profile) {
	t.Helper()
	w := do(n.s, http.MethodPost, profilesPrefix+fp, "", mustJSON(t, p))
	if w.Code != http.StatusOK {
		t.Fatalf("push: status %d: %s", w.Code, w.Body.String())
	}
}

// TestPeersAggregateByteIdentical is the multi-node acceptance pin: captures
// scattered across two peer nodes plus the queried node itself must GET back
// as one aggregate byte-identical to a single-node pgo.Merge of the same
// captures — in every assignment of capture to node and every upload order.
func TestPeersAggregateByteIdentical(t *testing.T) {
	captures := []*pgo.Profile{
		testProfile(testFP, 1),
		testProfile(testFP, 10),
		testProfile(testFP, 100),
	}
	want, err := pgo.Merge(captures...)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := mustJSON(t, want)

	// Every permutation of the three captures over the three nodes doubles
	// as every upload order (one capture per node, pushed in slice order).
	perms := [][3]int{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	for _, perm := range perms {
		peerB := newPeerNode(t, nil)
		peerC := newPeerNode(t, nil)
		front := newPeerNode(t, func(c *Config) {
			c.Peers = []string{peerB.srv.URL, peerC.srv.URL}
		})
		nodes := []*peerNode{front, peerB, peerC}
		for slot, ci := range perm {
			nodes[slot].push(t, testFP, captures[ci])
		}

		w := do(front.s, http.MethodGet, profilesPrefix+testFP, "", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("perm %v: GET status %d: %s", perm, w.Code, w.Body.String())
		}
		if got := w.Body.String(); got != string(wantJSON) {
			t.Errorf("perm %v: multi-node aggregate differs from single-node merge\ngot:  %s\nwant: %s",
				perm, got, wantJSON)
		}
	}
}

// TestPeersLocalQueryBypassesPeers pins the recursion guard: ?local=1 must
// answer from the local store alone, so two nodes naming each other as peers
// terminate instead of fetching forever.
func TestPeersLocalQueryBypassesPeers(t *testing.T) {
	peer := newPeerNode(t, nil)
	peer.push(t, testFP, testProfile(testFP, 100))

	local := testProfile(testFP, 1)
	front := newPeerNode(t, func(c *Config) {
		c.Peers = []string{peer.srv.URL}
	})
	front.push(t, testFP, local)

	w := do(front.s, http.MethodGet, profilesPrefix+testFP+"?local=1", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET ?local=1: status %d: %s", w.Code, w.Body.String())
	}
	wantLocal, err := pgo.Merge(local)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Body.String(); got != string(mustJSON(t, wantLocal)) {
		t.Errorf("?local=1 answer includes peer data:\n%s", got)
	}

	// Mutual peering: each node names the other. The fetch fans out once
	// (peers asked with ?local=1) and must terminate with the full merge.
	a := newPeerNode(t, nil)
	b := newPeerNode(t, nil)
	a.s.cfg.Peers = []string{b.srv.URL}
	b.s.cfg.Peers = []string{a.srv.URL}
	pa, pb := testProfile(testFP, 3), testProfile(testFP, 7)
	a.push(t, testFP, pa)
	b.push(t, testFP, pb)
	wantBoth, err := pgo.Merge(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	for name, n := range map[string]*peerNode{"a": a, "b": b} {
		w := do(n.s, http.MethodGet, profilesPrefix+testFP, "", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("mutual %s: status %d: %s", name, w.Code, w.Body.String())
		}
		if got := w.Body.String(); got != string(mustJSON(t, wantBoth)) {
			t.Errorf("mutual %s: aggregate differs from full merge:\n%s", name, got)
		}
	}
}

// TestPeersDegradeOnFailure pins the degradation contract: an unreachable
// peer and a peer with no aggregate both drop out of the answer — the local
// aggregate is still served — and the unreachable peer's failures are
// counted per peer in /metrics.
func TestPeersDegradeOnFailure(t *testing.T) {
	// A peer that is definitely down: reserve a port, then close it.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	// A live peer holding nothing for this fingerprint (404 → skipped).
	empty := newPeerNode(t, nil)

	local := testProfile(testFP, 5)
	front := newPeerNode(t, func(c *Config) {
		c.Peers = []string{deadURL, empty.srv.URL}
	})
	front.push(t, testFP, local)

	w := do(front.s, http.MethodGet, profilesPrefix+testFP, "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET with dead peer: status %d: %s", w.Code, w.Body.String())
	}
	wantLocal, err := pgo.Merge(local)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Body.String(); got != string(mustJSON(t, wantLocal)) {
		t.Errorf("degraded answer differs from local aggregate:\n%s", got)
	}

	m := do(front.s, http.MethodGet, "/metrics", "", nil)
	if m.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", m.Code)
	}
	body := m.Body.String()
	wantLine := `tnsr_profsrv_peer_errors_total{peer="` + deadURL + `"} 1`
	if !strings.Contains(body, wantLine) {
		t.Errorf("/metrics missing %q in:\n%s", wantLine, body)
	}
	if strings.Contains(body, `peer_errors_total{peer="`+empty.srv.URL) {
		t.Errorf("empty (404) peer wrongly counted as an error:\n%s", body)
	}
	if !strings.Contains(body, "tnsr_profsrv_peer_merges_total 1") {
		t.Errorf("/metrics missing peer_merges_total 1:\n%s", body)
	}
}

// TestPeersAuthForwarded pins that the configured PeerToken reaches peers:
// a token-protected peer must accept the fetch, and without the token the
// peer's captures silently degrade out (counted as a peer error).
func TestPeersAuthForwarded(t *testing.T) {
	const tok = "fleet-secret"
	peer := newPeerNode(t, func(c *Config) { c.Token = tok })
	peerCap := testProfile(testFP, 2)
	{
		w := do(peer.s, http.MethodPost, profilesPrefix+testFP, tok, mustJSON(t, peerCap))
		if w.Code != http.StatusOK {
			t.Fatalf("peer push: status %d: %s", w.Code, w.Body.String())
		}
	}

	local := testProfile(testFP, 1)
	withTok := newPeerNode(t, func(c *Config) {
		c.Peers = []string{peer.srv.URL}
		c.PeerToken = tok
	})
	withTok.push(t, testFP, local)

	w := do(withTok.s, http.MethodGet, profilesPrefix+testFP, "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET: status %d: %s", w.Code, w.Body.String())
	}
	wantBoth, err := pgo.Merge(local, peerCap)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Body.String(); got != string(mustJSON(t, wantBoth)) {
		t.Errorf("token-bearing fetch missed peer captures:\n%s", got)
	}

	noTok := newPeerNode(t, func(c *Config) {
		c.Peers = []string{peer.srv.URL} // no PeerToken: peer rejects 401
	})
	noTok.push(t, testFP, testProfile(testFP, 1))
	w = do(noTok.s, http.MethodGet, profilesPrefix+testFP, "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET without peer token: status %d: %s", w.Code, w.Body.String())
	}
	m := do(noTok.s, http.MethodGet, "/metrics", "", nil)
	if !strings.Contains(m.Body.String(), `tnsr_profsrv_peer_errors_total{peer="`+peer.srv.URL+`"} 1`) {
		t.Errorf("401 from peer not counted as peer error:\n%s", m.Body.String())
	}
}
