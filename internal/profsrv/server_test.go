package profsrv

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"tnsr/internal/pgo"
)

const testFP = "00000000deadbeef"

// testProfile builds a valid capture pinned to fp, with counts scaled so
// distinct uploads are distinguishable in the merge.
func testProfile(fp string, scale int64) *pgo.Profile {
	return &pgo.Profile{
		Schema: pgo.Schema,
		Runs:   1,
		Spaces: []pgo.SpaceProfile{{
			Space:       "user",
			Fingerprint: fp,
			CallSites: []pgo.CallSite{{
				Addr:    10,
				Results: []pgo.ResultCount{{Words: 2, Count: 3 * scale}},
			}},
			RPSites: []pgo.RPSite{{
				Addr: 20,
				RPs:  []pgo.RPCount{{RP: 5, Count: 7 * scale}},
			}},
			Procs: []pgo.ProcWeight{{Name: "work", Calls: scale, InterpInstrs: 11 * scale}},
		}},
	}
}

func mustJSON(t testing.TB, p *pgo.Profile) []byte {
	t.Helper()
	data, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestServer(t testing.TB, mutate func(*Config)) *Server {
	t.Helper()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: store}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg)
}

// do drives the handler directly — no socket, same code path the daemon
// serves.
func do(s *Server, method, path, token string, body []byte) *httptest.ResponseRecorder {
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	if token != "" {
		r.Header.Set("Authorization", "Bearer "+token)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

func TestAuthEnforced(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Token = "s3cret" })
	path := profilesPrefix + testFP
	up := mustJSON(t, testProfile(testFP, 1))

	for _, tc := range []struct {
		name, method, token string
		body                []byte
		want                int
	}{
		{"get-no-token", http.MethodGet, "", nil, http.StatusUnauthorized},
		{"get-wrong-token", http.MethodGet, "wrong", nil, http.StatusUnauthorized},
		{"post-no-token", http.MethodPost, "", up, http.StatusUnauthorized},
		{"post-almost-token", http.MethodPost, "s3cret ", up, http.StatusUnauthorized},
		{"post-right-token", http.MethodPost, "s3cret", up, http.StatusOK},
		{"get-right-token", http.MethodGet, "s3cret", nil, http.StatusOK},
	} {
		if w := do(s, tc.method, path, tc.token, tc.body); w.Code != tc.want {
			t.Errorf("%s: code %d, want %d (%s)", tc.name, w.Code, tc.want, w.Body.String())
		}
	}

	// Health and metrics stay open: probes and scrapers hold no secrets.
	if w := do(s, http.MethodGet, "/healthz", "", nil); w.Code != http.StatusOK {
		t.Errorf("/healthz behind auth: %d", w.Code)
	}
	if w := do(s, http.MethodGet, "/metrics", "", nil); w.Code != http.StatusOK {
		t.Errorf("/metrics behind auth: %d", w.Code)
	}
}

func TestUploadRejections(t *testing.T) {
	valid := mustJSON(t, testProfile(testFP, 1))
	// Cap the body just above the valid profile; the same profile with
	// trillion-scale counts overflows the cap while staying well-formed,
	// exercising the 413 path in isolation from the parser.
	s := newTestServer(t, func(c *Config) { c.MaxBody = int64(len(valid)) + 16 })
	path := profilesPrefix + testFP
	oversize := mustJSON(t, testProfile(testFP, 1_000_000_000_000))
	if int64(len(oversize)) <= int64(len(valid))+16 {
		t.Fatalf("oversize body not oversized: %d vs cap %d", len(oversize), len(valid)+16)
	}

	otherFP := "0123456789abcdef"
	stale := mustJSON(t, testProfile(otherFP, 1))

	unknownField := []byte(`{"schema":"tnsr/pgo-profile/v1","runs":1,"bogus":true}`)
	wrongSchema := []byte(`{"schema":"tnsr/pgo-profile/v9","runs":1}`)
	noFingerprint := mustJSON(t, &pgo.Profile{Schema: pgo.Schema, Runs: 1,
		Spaces: []pgo.SpaceProfile{{Space: "user",
			Procs: []pgo.ProcWeight{{Name: "p", Calls: 1}}}}})

	for _, tc := range []struct {
		name string
		path string
		body []byte
		want int
	}{
		{"oversized", path, oversize, http.StatusRequestEntityTooLarge},
		{"garbage", path, []byte("{nope"), http.StatusBadRequest},
		{"unknown-field", path, unknownField, http.StatusBadRequest},
		{"wrong-schema", path, wrongSchema, http.StatusBadRequest},
		{"no-fingerprint", path, noFingerprint, http.StatusBadRequest},
		{"stale-fingerprint", path, stale, http.StatusConflict},
		{"bad-path-fp-short", profilesPrefix + "abc", valid, http.StatusBadRequest},
		{"bad-path-fp-upper", profilesPrefix + "00000000DEADBEEF", valid, http.StatusBadRequest},
		{"bad-path-fp-traversal", profilesPrefix + "../../etc/passwd", valid, http.StatusBadRequest},
	} {
		w := do(s, http.MethodPost, tc.path, "", tc.body)
		if w.Code != tc.want {
			t.Errorf("%s: code %d, want %d (%s)", tc.name, w.Code, tc.want, w.Body.String())
		}
	}

	// None of those rejects may have created an aggregate.
	if fps, _ := s.cfg.Store.List(); len(fps) != 0 {
		t.Errorf("rejected uploads left aggregates behind: %v", fps)
	}

	if w := do(s, http.MethodPut, path, "", valid); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("PUT: code %d, want 405", w.Code)
	}
	if w := do(s, http.MethodGet, "/v2/profiles/"+testFP, "", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown path: code %d, want 404", w.Code)
	}
	if w := do(s, http.MethodGet, path, "", nil); w.Code != http.StatusNotFound {
		t.Errorf("absent aggregate: code %d, want 404", w.Code)
	}
}

func TestRateLimit(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.RatePerSec = 0.0001; c.RateBurst = 2 })
	path := profilesPrefix + testFP
	codes := []int{}
	for i := 0; i < 4; i++ {
		codes = append(codes, do(s, http.MethodGet, path, "", nil).Code)
	}
	// Burst of 2 passes (to 404, the aggregate being absent), then the
	// bucket is dry and the refill rate is negligible.
	want := []int{404, 404, 429, 429}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("request %d: code %d, want %d (all: %v)", i, codes[i], want[i], codes)
		}
	}
	// Health stays reachable when the bucket is dry: the probe must not be
	// starved by a chatty fleet.
	if w := do(s, http.MethodGet, "/healthz", "", nil); w.Code != http.StatusOK {
		t.Errorf("/healthz rate-limited: %d", w.Code)
	}
}

// TestConcurrentUploadsOneFingerprint hammers a single fingerprint from
// many goroutines (run under -race) and requires the final aggregate to be
// exactly the order-independent merge of everything pushed.
func TestConcurrentUploadsOneFingerprint(t *testing.T) {
	s := newTestServer(t, nil)
	path := profilesPrefix + testFP

	const workers, perWorker = 8, 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				scale := int64(w*perWorker + i + 1)
				body := mustJSON(t, testProfile(testFP, scale))
				if rec := do(s, http.MethodPost, path, "", body); rec.Code != http.StatusOK {
					t.Errorf("worker %d push %d: code %d: %s", w, i, rec.Code, rec.Body.String())
				}
			}
		}(w)
	}
	wg.Wait()

	var all []*pgo.Profile
	for i := 1; i <= workers*perWorker; i++ {
		all = append(all, testProfile(testFP, int64(i)))
	}
	want, err := pgo.Merge(all...)
	if err != nil {
		t.Fatal(err)
	}
	got := do(s, http.MethodGet, path, "", nil)
	if got.Code != http.StatusOK {
		t.Fatalf("fetch: code %d", got.Code)
	}
	if !bytes.Equal(got.Body.Bytes(), mustJSON(t, want)) {
		t.Error("aggregate after concurrent pushes is not the order-independent merge")
	}
}

// TestAgingExactlyReproducible: with AgeEvery = 4, the fourth upload
// triggers aging, and the served aggregate must be byte-for-byte
// pgo.Age(merge of all four, floor) — the decay is deterministic, not
// approximate.
func TestAgingExactlyReproducible(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.AgeEvery = 4; c.AgeFloor = 2 })
	path := profilesPrefix + testFP

	var all []*pgo.Profile
	var last *httptest.ResponseRecorder
	for i := 1; i <= 4; i++ {
		p := testProfile(testFP, int64(i))
		all = append(all, p)
		last = do(s, http.MethodPost, path, "", mustJSON(t, p))
		if last.Code != http.StatusOK {
			t.Fatalf("push %d: code %d: %s", i, last.Code, last.Body.String())
		}
	}
	merged, err := pgo.Merge(all...)
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, pgo.Age(merged, 2))
	if !bytes.Equal(last.Body.Bytes(), want) {
		t.Errorf("aged aggregate differs from pgo.Age(merge, floor):\ngot  %s\nwant %s",
			last.Body.String(), want)
	}
	// Aging halved Runs below AgeEvery, so the decay self-clocks rather
	// than firing on every subsequent push.
	agg, err := s.cfg.Store.Load(testFP)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs >= 4 {
		t.Errorf("aged aggregate Runs = %d, still >= AgeEvery", agg.Runs)
	}
}

// TestTornWriteNeverServed simulates the crash window of the atomic write:
// a leftover .tmp file (killed between write and rename) must be invisible
// to Load and List, and a damaged final file must produce a typed 500,
// never advice.
func TestTornWriteNeverServed(t *testing.T) {
	s := newTestServer(t, nil)
	store := s.cfg.Store
	path := profilesPrefix + testFP

	// Crash before rename: half a JSON file under the temp name.
	torn := mustJSON(t, testProfile(testFP, 3))
	if err := os.WriteFile(store.Path(testFP)+tmpSuffix, torn[:len(torn)/2], 0o666); err != nil {
		t.Fatal(err)
	}
	if w := do(s, http.MethodGet, path, "", nil); w.Code != http.StatusNotFound {
		t.Errorf("torn tmp file visible: GET = %d, want 404", w.Code)
	}
	if fps, _ := store.List(); len(fps) != 0 {
		t.Errorf("torn tmp file listed: %v", fps)
	}

	// The next upload must succeed and leave a valid aggregate in place of
	// the debris.
	if w := do(s, http.MethodPost, path, "", mustJSON(t, testProfile(testFP, 1))); w.Code != http.StatusOK {
		t.Fatalf("upload after torn tmp: code %d: %s", w.Code, w.Body.String())
	}
	if p, err := store.Load(testFP); err != nil || p == nil {
		t.Fatalf("aggregate after recovery: %v, %v", p, err)
	}

	// Damage the final file: serving must refuse with a 500, and the next
	// merge must also surface the damage rather than silently resetting.
	if err := os.WriteFile(store.Path(testFP), []byte("{torn"), 0o666); err != nil {
		t.Fatal(err)
	}
	if w := do(s, http.MethodGet, path, "", nil); w.Code != http.StatusInternalServerError {
		t.Errorf("damaged aggregate served: GET = %d, want 500", w.Code)
	}
	if w := do(s, http.MethodPost, path, "", mustJSON(t, testProfile(testFP, 1))); w.Code != http.StatusInternalServerError {
		t.Errorf("merge over damaged aggregate: code %d, want 500", w.Code)
	}
}

func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Token = "tok" })
	path := profilesPrefix + testFP
	do(s, http.MethodPost, path, "tok", mustJSON(t, testProfile(testFP, 1)))
	do(s, http.MethodGet, path, "tok", nil)
	do(s, http.MethodGet, path, "", nil) // auth reject

	w := do(s, http.MethodGet, "/metrics", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		`tnsr_profsrv_uploads_total 1`,
		`tnsr_profsrv_served_total 1`,
		`tnsr_profsrv_stored_profiles 1`,
		`tnsr_profsrv_rejects_total{reason="auth"} 1`,
		fmt.Sprintf(`tnsr_profsrv_requests_total{method="POST",code="200"} 1`),
		`# TYPE tnsr_profsrv_requests_total counter`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// doFrom is do with an explicit client address — the handler is driven
// directly, so the test controls exactly what client population the
// per-client rate limiter sees.
func doFrom(s *Server, remoteAddr, method, path, token string, body []byte) *httptest.ResponseRecorder {
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	r.RemoteAddr = remoteAddr
	if token != "" {
		r.Header.Set("Authorization", "Bearer "+token)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// TestRateLimitPerClientIsolation is the fleet-fairness property: one
// abusive machine draining its own bucket must never cause a 429 for a
// well-behaved neighbour — whether the neighbour differs by address or
// (behind one NAT) by token.
func TestRateLimitPerClientIsolation(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.RatePerSec = 0.0001; c.RateBurst = 2 })
	path := profilesPrefix + testFP

	// The abuser hammers until well past its burst: everything after the
	// first two must be 429.
	abuse := []int{}
	for i := 0; i < 10; i++ {
		abuse = append(abuse, doFrom(s, "10.77.0.1:40000", http.MethodGet, path, "", nil).Code)
	}
	for i, code := range abuse {
		want := 404
		if i >= 2 {
			want = 429
		}
		if code != want {
			t.Fatalf("abuser request %d: code %d, want %d (all: %v)", i, code, want, abuse)
		}
	}

	// A different machine arrives mid-storm with a full bucket.
	for i := 0; i < 2; i++ {
		if w := doFrom(s, "10.77.0.2:40001", http.MethodGet, path, "", nil); w.Code != 404 {
			t.Fatalf("victim request %d caught the abuser's 429: code %d", i, w.Code)
		}
	}

	// Same address, different token — distinct principals behind one NAT
	// are distinct clients too.
	if w := doFrom(s, "10.77.0.1:40002", http.MethodGet, path, "other-token", nil); w.Code != 404 {
		t.Fatalf("distinct token shared the abuser's bucket: code %d", w.Code)
	}

	// And the abuser is still dry: the victims' admissions did not refill it.
	if w := doFrom(s, "10.77.0.1:40003", http.MethodGet, path, "", nil); w.Code != 429 {
		t.Fatalf("abuser escaped its own limit: code %d", w.Code)
	}
}

// TestRateLimitBucketTableBounded: an address-spoofing client cycling
// through arbitrarily many identities cannot grow the bucket table without
// limit, and legitimate clients keep being admitted throughout.
func TestRateLimitBucketTableBounded(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.RatePerSec = 0.0001; c.RateBurst = 1 })
	path := profilesPrefix + testFP
	for i := 0; i < maxBuckets+100; i++ {
		addr := fmt.Sprintf("10.%d.%d.%d:1", i>>16&0xFF, i>>8&0xFF, i&0xFF)
		if w := doFrom(s, addr, http.MethodGet, path, "", nil); w.Code != 404 {
			t.Fatalf("fresh client %d: code %d, want 404", i, w.Code)
		}
	}
	s.bucketMu.Lock()
	n := len(s.buckets)
	s.bucketMu.Unlock()
	if n > maxBuckets {
		t.Fatalf("bucket table grew to %d entries (cap %d)", n, maxBuckets)
	}
}
