package profsrv

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tnsr/internal/pgo"
	"tnsr/internal/retry"
)

// Client talks to a tnsprofd daemon. It implements xrun.ProfileSource
// (Fetch/Push), so a runner can hand it straight to RunAdaptive and the
// fleet aggregate closes the hint-file loop across machines.
//
// Responses pass through the same strict parser uploads do: a server (or a
// middlebox) handing back damaged JSON produces a typed error, never
// silently-wrong advice. Transient failures — transport errors, 5xx, 429
// (whose Retry-After is honored, capped), damaged bytes — are retried
// under Retry; refusals (401, 409, 413) are terminal *retry.HTTPErrors.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://profiles.fleet:9911".
	BaseURL string
	// Token is the bearer token; empty sends no Authorization header.
	Token string
	// HTTPClient, when nil, falls back to a 30-second-timeout client.
	HTTPClient *http.Client
	// Retry is the transient-failure policy; zero value = retry defaults.
	Retry retry.Policy
}

// NewClient builds a client for a daemon root URL.
func NewClient(baseURL, token string) *Client {
	return &Client{BaseURL: baseURL, Token: token}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) url(fp string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + profilesPrefix + fp
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	return c.http().Do(req)
}

// UserFingerprint extracts the user-space fingerprint a profile was
// captured against — the fleet aggregation key.
func UserFingerprint(p *pgo.Profile) (string, error) {
	sp := p.Space("user")
	if sp == nil || sp.Fingerprint == "" {
		return "", fmt.Errorf("profsrv: profile has no user-space fingerprint")
	}
	return sp.Fingerprint, nil
}

// Fetch returns the current aggregate for a fingerprint, or (nil, nil)
// when the server has none — the no-profile case a translator degrades to.
func (c *Client) Fetch(fingerprint string) (*pgo.Profile, error) {
	return c.FetchContext(context.Background(), fingerprint)
}

// FetchContext is Fetch bounded by ctx.
func (c *Client) FetchContext(ctx context.Context, fingerprint string) (*pgo.Profile, error) {
	var p *pgo.Profile
	err := c.Retry.Do(ctx, func() error {
		var err error
		p, err = c.fetchOnce(ctx, fingerprint)
		return err
	})
	return p, err
}

func (c *Client) fetchOnce(ctx context.Context, fingerprint string) (*pgo.Profile, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(fingerprint), nil)
	if err != nil {
		return nil, fmt.Errorf("profsrv: fetch: %w", err)
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, fmt.Errorf("profsrv: fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("profsrv: fetch %s: %w", fingerprint, typedStatus(resp))
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, DefaultMaxBody))
	if err != nil {
		return nil, fmt.Errorf("profsrv: fetch: %w", err)
	}
	p, err := pgo.ParseProfile(data)
	if err != nil {
		// Damaged bytes in flight: the strict parser refused them, the
		// server may well hold a good aggregate — transient by policy.
		return nil, fmt.Errorf("profsrv: fetch %s: server sent invalid profile: %w", fingerprint, err)
	}
	return p, nil
}

// Push uploads one capture and returns the merged fleet aggregate the
// server now holds for that fingerprint.
func (c *Client) Push(p *pgo.Profile) (*pgo.Profile, error) {
	return c.PushContext(context.Background(), p)
}

// PushContext is Push bounded by ctx. A replayed push (duplicate delivery,
// retry after an ambiguous timeout) double-merges the capture — by design:
// profile weights are advisory, skewed counts cost interludes downstream,
// never correctness.
func (c *Client) PushContext(ctx context.Context, p *pgo.Profile) (*pgo.Profile, error) {
	fp, err := UserFingerprint(p)
	if err != nil {
		return nil, err
	}
	data, err := p.JSON()
	if err != nil {
		return nil, fmt.Errorf("profsrv: push: %w", err)
	}
	var agg *pgo.Profile
	err = c.Retry.Do(ctx, func() error {
		var err error
		agg, err = c.pushOnce(ctx, fp, data)
		return err
	})
	return agg, err
}

func (c *Client) pushOnce(ctx context.Context, fp string, data []byte) (*pgo.Profile, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(fp), bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("profsrv: push: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return nil, fmt.Errorf("profsrv: push: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("profsrv: push %s: %w", fp, typedStatus(resp))
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, DefaultMaxBody))
	if err != nil {
		return nil, fmt.Errorf("profsrv: push: %w", err)
	}
	agg, err := pgo.ParseProfile(body)
	if err != nil {
		return nil, fmt.Errorf("profsrv: push %s: server sent invalid aggregate: %w", fp, err)
	}
	return agg, nil
}

// typedStatus folds a non-2xx response into a *retry.HTTPError carrying
// the status, a bounded server message, and any Retry-After.
func typedStatus(resp *http.Response) *retry.HTTPError {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return retry.NewHTTPError(resp, strings.TrimSpace(string(msg)))
}
