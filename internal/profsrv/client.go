package profsrv

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tnsr/internal/pgo"
)

// Client talks to a tnsprofd daemon. It implements xrun.ProfileSource
// (Fetch/Push), so a runner can hand it straight to RunAdaptive and the
// fleet aggregate closes the hint-file loop across machines.
//
// Responses pass through the same strict parser uploads do: a server (or a
// middlebox) handing back damaged JSON produces a typed error, never
// silently-wrong advice.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://profiles.fleet:9911".
	BaseURL string
	// Token is the bearer token; empty sends no Authorization header.
	Token string
	// HTTPClient, when nil, falls back to a 30-second-timeout client.
	HTTPClient *http.Client
}

// NewClient builds a client for a daemon root URL.
func NewClient(baseURL, token string) *Client {
	return &Client{BaseURL: baseURL, Token: token}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) url(fp string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + profilesPrefix + fp
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	return c.http().Do(req)
}

// UserFingerprint extracts the user-space fingerprint a profile was
// captured against — the fleet aggregation key.
func UserFingerprint(p *pgo.Profile) (string, error) {
	sp := p.Space("user")
	if sp == nil || sp.Fingerprint == "" {
		return "", fmt.Errorf("profsrv: profile has no user-space fingerprint")
	}
	return sp.Fingerprint, nil
}

// Fetch returns the current aggregate for a fingerprint, or (nil, nil)
// when the server has none — the no-profile case a translator degrades to.
func (c *Client) Fetch(fingerprint string) (*pgo.Profile, error) {
	req, err := http.NewRequest(http.MethodGet, c.url(fingerprint), nil)
	if err != nil {
		return nil, fmt.Errorf("profsrv: fetch: %w", err)
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, fmt.Errorf("profsrv: fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("profsrv: fetch %s: %s", fingerprint, readStatus(resp))
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, DefaultMaxBody))
	if err != nil {
		return nil, fmt.Errorf("profsrv: fetch: %w", err)
	}
	p, err := pgo.ParseProfile(data)
	if err != nil {
		return nil, fmt.Errorf("profsrv: fetch %s: server sent invalid profile: %w", fingerprint, err)
	}
	return p, nil
}

// Push uploads one capture and returns the merged fleet aggregate the
// server now holds for that fingerprint.
func (c *Client) Push(p *pgo.Profile) (*pgo.Profile, error) {
	fp, err := UserFingerprint(p)
	if err != nil {
		return nil, err
	}
	data, err := p.JSON()
	if err != nil {
		return nil, fmt.Errorf("profsrv: push: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, c.url(fp), bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("profsrv: push: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return nil, fmt.Errorf("profsrv: push: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("profsrv: push %s: %s", fp, readStatus(resp))
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, DefaultMaxBody))
	if err != nil {
		return nil, fmt.Errorf("profsrv: push: %w", err)
	}
	agg, err := pgo.ParseProfile(body)
	if err != nil {
		return nil, fmt.Errorf("profsrv: push %s: server sent invalid aggregate: %w", fp, err)
	}
	return agg, nil
}

// readStatus folds the status line and a bounded error body into one
// message.
func readStatus(resp *http.Response) string {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
}
