package profsrv

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"tnsr/internal/obs"
	"tnsr/internal/retry"
)

// reqKey labels one requests_total series.
type reqKey struct {
	method string
	code   int
}

// metrics is the server's Prometheus state: plain counters under one lock
// (request handling already serializes per fingerprint; the metrics lock
// is never held across I/O). The exposition goes through the same
// obs.PromHeader conventions every other tnsr exporter uses.
type metrics struct {
	mu       sync.Mutex
	requests map[reqKey]int64
	rejects  map[string]int64 // typed reason -> count
	uploads  int64            // accepted merges
	served   int64            // aggregates served
	ages     int64            // aging events applied

	peerMerges    int64            // multi-node merges served
	peerErrs      map[string]int64 // peer URL -> degraded fetches
	peerFastFails map[string]int64 // peer URL -> merges skipped by an open breaker
}

// peerBreakerView is one peer's breaker snapshot, taken by the caller so
// the metrics lock never nests with the breakers'.
type peerBreakerView struct {
	peer   string
	counts retry.BreakerCounts
}

func newMetrics() *metrics {
	return &metrics{
		requests:      map[reqKey]int64{},
		rejects:       map[string]int64{},
		peerErrs:      map[string]int64{},
		peerFastFails: map[string]int64{},
	}
}

func (m *metrics) peerError(peer string) {
	m.mu.Lock()
	m.peerErrs[peer]++
	m.mu.Unlock()
}

func (m *metrics) peerFastFail(peer string) {
	m.mu.Lock()
	m.peerFastFails[peer]++
	m.mu.Unlock()
}

func (m *metrics) request(method string, code int) {
	m.mu.Lock()
	m.requests[reqKey{method, code}]++
	m.mu.Unlock()
}

func (m *metrics) reject(reason string) {
	m.mu.Lock()
	m.rejects[reason]++
	m.mu.Unlock()
}

func (m *metrics) add(counter *int64) {
	m.mu.Lock()
	*counter++
	m.mu.Unlock()
}

// write renders the exposition. stored is the current aggregate count and
// breakers the peer-breaker snapshots (both gathered by the caller so the
// lock stays I/O-free and never nests with another).
func (m *metrics) write(w io.Writer, stored int, breakers []peerBreakerView, draining bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	obs.PromHeader(w, "tnsr_profsrv_requests_total", "counter",
		"Requests handled, by method and status code.")
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].method != keys[j].method {
			return keys[i].method < keys[j].method
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "tnsr_profsrv_requests_total{method=%q,code=\"%d\"} %d\n",
			obs.PromEscape(k.method), k.code, m.requests[k])
	}

	obs.PromHeader(w, "tnsr_profsrv_rejects_total", "counter",
		"Rejected requests, by typed reason.")
	rkeys := make([]string, 0, len(m.rejects))
	for k := range m.rejects {
		rkeys = append(rkeys, k)
	}
	sort.Strings(rkeys)
	for _, k := range rkeys {
		fmt.Fprintf(w, "tnsr_profsrv_rejects_total{reason=%q} %d\n",
			obs.PromEscape(k), m.rejects[k])
	}

	obs.PromHeader(w, "tnsr_profsrv_uploads_total", "counter",
		"Profiles accepted and merged into an aggregate.")
	fmt.Fprintf(w, "tnsr_profsrv_uploads_total %d\n", m.uploads)

	obs.PromHeader(w, "tnsr_profsrv_served_total", "counter",
		"Aggregates served to translators.")
	fmt.Fprintf(w, "tnsr_profsrv_served_total %d\n", m.served)

	obs.PromHeader(w, "tnsr_profsrv_age_events_total", "counter",
		"Cross-run aging passes applied to an aggregate.")
	fmt.Fprintf(w, "tnsr_profsrv_age_events_total %d\n", m.ages)

	obs.PromHeader(w, "tnsr_profsrv_peer_merges_total", "counter",
		"Multi-node aggregates served (local + peer merge).")
	fmt.Fprintf(w, "tnsr_profsrv_peer_merges_total %d\n", m.peerMerges)

	obs.PromHeader(w, "tnsr_profsrv_peer_errors_total", "counter",
		"Peer aggregate fetches that failed and were degraded out of the answer, by peer.")
	pkeys := make([]string, 0, len(m.peerErrs))
	for k := range m.peerErrs {
		pkeys = append(pkeys, k)
	}
	sort.Strings(pkeys)
	for _, k := range pkeys {
		fmt.Fprintf(w, "tnsr_profsrv_peer_errors_total{peer=%q} %d\n",
			obs.PromEscape(k), m.peerErrs[k])
	}

	obs.PromHeader(w, "tnsr_profsrv_peer_fastfails_total", "counter",
		"Peer merges skipped because the peer's circuit breaker was open, by peer.")
	fkeys := make([]string, 0, len(m.peerFastFails))
	for k := range m.peerFastFails {
		fkeys = append(fkeys, k)
	}
	sort.Strings(fkeys)
	for _, k := range fkeys {
		fmt.Fprintf(w, "tnsr_profsrv_peer_fastfails_total{peer=%q} %d\n",
			obs.PromEscape(k), m.peerFastFails[k])
	}

	obs.PromHeader(w, "tnsr_profsrv_peer_breaker_state", "gauge",
		"Peer circuit breaker state (0 closed, 1 open, 2 half-open), by peer.")
	for _, v := range breakers {
		fmt.Fprintf(w, "tnsr_profsrv_peer_breaker_state{peer=%q} %d\n",
			obs.PromEscape(v.peer), int(v.counts.State))
	}

	obs.PromHeader(w, "tnsr_profsrv_peer_breaker_opens_total", "counter",
		"Times a peer's circuit breaker tripped open, by peer.")
	for _, v := range breakers {
		fmt.Fprintf(w, "tnsr_profsrv_peer_breaker_opens_total{peer=%q} %d\n",
			obs.PromEscape(v.peer), v.counts.Opens)
	}

	obs.PromHeader(w, "tnsr_profsrv_stored_profiles", "gauge",
		"Aggregates currently stored, one per codefile fingerprint.")
	fmt.Fprintf(w, "tnsr_profsrv_stored_profiles %d\n", stored)

	obs.PromHeader(w, "tnsr_profsrv_draining", "gauge",
		"1 while the server refuses new uploads ahead of shutdown.")
	d := 0
	if draining {
		d = 1
	}
	fmt.Fprintf(w, "tnsr_profsrv_draining %d\n", d)
}
