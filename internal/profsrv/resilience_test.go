package profsrv

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tnsr/internal/retry"
)

// getFront GETs the aggregate from a node and fails the test unless the
// response is 200 — the degrade contract: a broken peer never breaks the
// answer this node can give from its own captures.
func getFront(t *testing.T, s *Server) string {
	t.Helper()
	w := do(s, http.MethodGet, profilesPrefix+testFP, "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET: status %d: %s", w.Code, w.Body.String())
	}
	return w.Body.String()
}

// TestPeerBreakerOpensAndFastFails pins the dead-peer cost model: after
// PeerBreakAfter consecutive failures the peer's breaker opens, further
// merges skip the peer without contacting it, and every response is still
// served from what this node holds — degrade, never fail.
func TestPeerBreakerOpensAndFastFails(t *testing.T) {
	var hits atomic.Int64
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)

	front := newTestServer(t, func(c *Config) {
		c.Peers = []string{dead.URL}
		c.PeerBreakAfter = 3
		c.PeerBreakCooldown = time.Hour
	})
	up := testProfile(testFP, 5)
	if w := do(front, http.MethodPost, profilesPrefix+testFP, "", mustJSON(t, up)); w.Code != http.StatusOK {
		t.Fatalf("push: status %d: %s", w.Code, w.Body.String())
	}
	localAnswer := getFront(t, front) // hit 1; also what every later GET must serve
	getFront(t, front)                // hit 2
	getFront(t, front)                // hit 3: breaker trips

	if got := front.breakerFor(dead.URL).State(); got != retry.Open {
		t.Fatalf("breaker state after %d failures = %v, want open", hits.Load(), got)
	}
	before := hits.Load()
	for i := 0; i < 5; i++ {
		if got := getFront(t, front); got != localAnswer {
			t.Fatalf("degraded answer changed:\ngot:  %s\nwant: %s", got, localAnswer)
		}
	}
	if hits.Load() != before {
		t.Errorf("open breaker still contacted the peer: %d hits, want %d", hits.Load(), before)
	}

	w := do(front, http.MethodGet, "/metrics", "", nil)
	body := w.Body.String()
	for _, want := range []string{
		`tnsr_profsrv_peer_breaker_state{peer="` + dead.URL + `"} 1`,
		`tnsr_profsrv_peer_breaker_opens_total{peer="` + dead.URL + `"} 1`,
		`tnsr_profsrv_peer_fastfails_total{peer="` + dead.URL + `"} 5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestPeerBreakerProbeRecovers pins the recovery path: once the cooldown
// elapses the breaker admits exactly one probe, and a healthy answer closes
// it — the peer is back in every merge.
func TestPeerBreakerProbeRecovers(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var hits atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if failing.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		// Healthy but empty: "no aggregate" is a successful peer answer.
		http.NotFound(w, r)
	}))
	t.Cleanup(peer.Close)

	front := newTestServer(t, func(c *Config) {
		c.Peers = []string{peer.URL}
		c.PeerBreakAfter = 2
		c.PeerBreakCooldown = time.Hour
	})
	now := time.Now()
	clock := &now
	br := front.breakerFor(peer.URL)
	br.SetClock(func() time.Time { return *clock })

	up := testProfile(testFP, 5)
	if w := do(front, http.MethodPost, profilesPrefix+testFP, "", mustJSON(t, up)); w.Code != http.StatusOK {
		t.Fatalf("push: status %d: %s", w.Code, w.Body.String())
	}
	getFront(t, front)
	getFront(t, front)
	if got := br.State(); got != retry.Open {
		t.Fatalf("breaker state = %v, want open", got)
	}

	// Cooldown not yet elapsed: fast-fail, peer untouched.
	before := hits.Load()
	getFront(t, front)
	if hits.Load() != before {
		t.Fatalf("fast-fail window still contacted the peer")
	}

	// Advance past the cooldown with the peer healthy again: the one
	// admitted probe succeeds and closes the breaker.
	failing.Store(false)
	now = now.Add(2 * time.Hour)
	getFront(t, front)
	if got := br.State(); got != retry.Closed {
		t.Fatalf("breaker state after healthy probe = %v, want closed", got)
	}
	if hits.Load() != before+1 {
		t.Errorf("probe hits = %d, want %d", hits.Load()-before, 1)
	}
}

// TestDrainRefusesUploadsServesReads pins the tnsprofd drain contract:
// draining answers POST 503 (typed, with a Retry-After) while GET keeps
// serving the aggregates the node already holds.
func TestDrainRefusesUploadsServesReads(t *testing.T) {
	s := newTestServer(t, nil)
	up := testProfile(testFP, 3)
	if w := do(s, http.MethodPost, profilesPrefix+testFP, "", mustJSON(t, up)); w.Code != http.StatusOK {
		t.Fatalf("push: status %d: %s", w.Code, w.Body.String())
	}
	want := getFront(t, s)

	s.SetDraining(true)
	w := do(s, http.MethodPost, profilesPrefix+testFP, "", mustJSON(t, up))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining POST: status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("draining 503 carries no Retry-After")
	}
	if got := getFront(t, s); got != want {
		t.Errorf("draining GET changed the aggregate:\ngot:  %s\nwant: %s", got, want)
	}

	mw := do(s, http.MethodGet, "/metrics", "", nil)
	for _, wantLine := range []string{
		"tnsr_profsrv_draining 1",
		`tnsr_profsrv_rejects_total{reason="draining"} 1`,
	} {
		if !strings.Contains(mw.Body.String(), wantLine) {
			t.Errorf("/metrics missing %q", wantLine)
		}
	}

	s.SetDraining(false)
	if w := do(s, http.MethodPost, profilesPrefix+testFP, "", mustJSON(t, up)); w.Code != http.StatusOK {
		t.Errorf("undrained POST: status %d, want 200", w.Code)
	}
}

// TestRateLimitSetsRetryAfter pins that a 429 tells resilient clients how
// long to back off instead of leaving them to guess.
func TestRateLimitSetsRetryAfter(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.RatePerSec = 0.001
		c.RateBurst = 1
	})
	do(s, http.MethodGet, profilesPrefix+testFP, "", nil) // drains the bucket
	w := do(s, http.MethodGet, profilesPrefix+testFP, "", nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}
}

// TestClientRetriesTransient pins the client half of the policy: 5xx and
// damaged bytes are transient, retried under the policy until the server
// recovers — the caller sees one successful Fetch.
func TestClientRetriesTransient(t *testing.T) {
	want := mustJSON(t, testProfile(testFP, 9))
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			http.Error(w, "warming up", http.StatusInternalServerError)
		case 2:
			w.Write(want[:len(want)/2]) // truncated: the strict parser refuses it
		default:
			w.Write(want)
		}
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL, "")
	c.Retry = retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1}
	p, err := c.Fetch(testFP)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	got, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("fetched profile differs after retries")
	}
	if calls.Load() != 3 {
		t.Errorf("server calls = %d, want 3", calls.Load())
	}
}

// TestClientTerminalOn401 pins the refusal side: an auth failure is
// terminal — retried zero times, surfaced as a typed *retry.HTTPError.
func TestClientTerminalOn401(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "missing or wrong bearer token", http.StatusUnauthorized)
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL, "wrong")
	c.Retry = retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	if _, err := c.Fetch(testFP); err == nil {
		t.Fatal("Fetch succeeded against a 401 server")
	} else {
		var he *retry.HTTPError
		if !errors.As(err, &he) || he.Status != http.StatusUnauthorized {
			t.Errorf("error %v is not a typed 401", err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("server calls = %d, want 1 (no retries on terminal)", calls.Load())
	}

	if _, err := c.Push(testProfile(testFP, 2)); err == nil {
		t.Fatal("Push succeeded against a 401 server")
	}
	if calls.Load() != 2 {
		t.Errorf("server calls = %d, want 2 (push not retried either)", calls.Load())
	}
}

// TestClientPushHonorsRetryAfter pins that a 429'd push backs off and then
// lands: the profile loop degrades under backpressure, it does not drop
// captures.
func TestClientPushHonorsRetryAfter(t *testing.T) {
	up := testProfile(testFP, 4)
	merged := mustJSON(t, up)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		w.Write(merged)
	}))
	t.Cleanup(srv.Close)

	var slept []time.Duration
	c := NewClient(srv.URL, "")
	c.Retry = retry.Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Second,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	agg, err := c.Push(up)
	if err != nil {
		t.Fatalf("Push: %v", err)
	}
	got, err := agg.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(merged) {
		t.Errorf("pushed aggregate differs")
	}
	if calls.Load() != 2 {
		t.Errorf("server calls = %d, want 2", calls.Load())
	}
	if len(slept) != 1 || slept[0] != time.Second {
		t.Errorf("slept %v, want exactly the server's Retry-After (1s)", slept)
	}
}
