package profsrv

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"tnsr/internal/pgo"
)

// fuzzSeeds are the deliberate corpus entries, each aimed at one gate of
// the request path: routing, fingerprint validation, the strict parser,
// the fingerprint pin, the merge, and the method switch. Checked in under
// testdata/fuzz/FuzzProfsrvHandler (see TestRegenProfsrvFuzzCorpus).
func fuzzSeeds() map[string]struct {
	method, path string
	body         []byte
} {
	validBody, err := (&pgo.Profile{
		Schema: pgo.Schema,
		Runs:   1,
		Spaces: []pgo.SpaceProfile{{
			Space:       "user",
			Fingerprint: "00000000deadbeef",
			Procs:       []pgo.ProcWeight{{Name: "p", Calls: 2, InterpInstrs: 9}},
		}},
	}).JSON()
	if err != nil {
		panic(err)
	}
	type seed = struct {
		method, path string
		body         []byte
	}
	return map[string]seed{
		"healthz":        {"GET", "/healthz", nil},
		"metrics":        {"GET", "/metrics", nil},
		"get-absent":     {"GET", "/v1/profiles/00000000deadbeef", nil},
		"post-valid":     {"POST", "/v1/profiles/00000000deadbeef", validBody},
		"post-stale":     {"POST", "/v1/profiles/0123456789abcdef", validBody},
		"post-garbage":   {"POST", "/v1/profiles/00000000deadbeef", []byte("{")},
		"bad-fp":         {"GET", "/v1/profiles/..%2f..%2fescape", nil},
		"method":         {"DELETE", "/v1/profiles/00000000deadbeef", nil},
		"unrouted":       {"GET", "/v1/other", nil},
		"deep-json":      {"POST", "/v1/profiles/00000000deadbeef", []byte(`{"schema":"tnsr/pgo-profile/v1","runs":-1}`)},
		"unknown-fields": {"POST", "/v1/profiles/00000000deadbeef", []byte(`{"schema":"tnsr/pgo-profile/v1","runs":1,"extra":{}}`)},
	}
}

// FuzzProfsrvHandler drives the entire daemon request path — routing,
// limits, parsing, merge, persistence — with arbitrary method/path/body
// triples. Invariants: no panic, every response carries a routable status
// code, and whatever ends up in the store must still load through the
// strict parser (a hostile upload can be rejected, never half-persisted).
func FuzzProfsrvHandler(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s.method, s.path, s.body)
	}
	f.Fuzz(func(t *testing.T, method, path string, body []byte) {
		store, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		// Auth off so the fuzzer reaches the deep handlers; MaxBody small so
		// it can trip the size gate with feasible inputs; AgeEvery tiny so
		// the aging path runs.
		srv := New(Config{Store: store, MaxBody: 4096, AgeEvery: 2})

		req, err := http.NewRequest(method, "http://tnsprofd"+path, bytes.NewReader(body))
		if err != nil {
			t.Skip() // not expressible as an HTTP request; nothing to test
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
			http.StatusMethodNotAllowed, http.StatusConflict,
			http.StatusRequestEntityTooLarge, http.StatusTooManyRequests,
			http.StatusUnauthorized, http.StatusInternalServerError:
		default:
			t.Fatalf("unexpected status %d for %s %q", rec.Code, method, path)
		}

		// A 200 POST response body must itself be a valid canonical profile.
		if rec.Code == http.StatusOK && method == http.MethodPost {
			if _, err := pgo.ParseProfile(rec.Body.Bytes()); err != nil {
				t.Fatalf("200 upload response is not a valid profile: %v", err)
			}
		}

		// Nothing in the store may be unloadable, and no temp debris may
		// survive a completed request.
		fps, err := store.List()
		if err != nil {
			t.Fatalf("store unlistable after request: %v", err)
		}
		for _, fp := range fps {
			if _, err := store.Load(fp); err != nil {
				t.Fatalf("stored aggregate %s unloadable: %v", fp, err)
			}
		}
	})
}

// TestRegenProfsrvFuzzCorpus rewrites the checked-in fuzz corpus from
// fuzzSeeds (run with REGEN_FUZZ_CORPUS=1 after changing the seeds);
// normally it just asserts the checked-in files match.
func TestRegenProfsrvFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzProfsrvHandler")
	regen := os.Getenv("REGEN_FUZZ_CORPUS") != ""
	if regen {
		if err := os.MkdirAll(dir, 0o777); err != nil {
			t.Fatal(err)
		}
	}
	for name, s := range fuzzSeeds() {
		want := fmt.Sprintf("go test fuzz v1\nstring(%q)\nstring(%q)\n[]byte(%q)\n",
			s.method, s.path, s.body)
		path := filepath.Join(dir, name)
		if regen {
			if err := os.WriteFile(path, []byte(want), 0o666); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (set REGEN_FUZZ_CORPUS=1 to regenerate)", err)
		}
		if string(got) != want {
			t.Errorf("%s is stale (set REGEN_FUZZ_CORPUS=1 to regenerate)", name)
		}
	}
}
