// End-to-end fleet harness: real workload captures, a real tnsprofd served
// over HTTP (httptest), real retranslations steered by the fetched
// aggregate. This is the test the subsystem exists for — N runners push,
// any order, and every machine ends up translating under the same bytes.
package profsrv_test

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"tnsr/internal/bench"
	"tnsr/internal/codefile"
	"tnsr/internal/obs"
	"tnsr/internal/pgo"
	"tnsr/internal/profsrv"
	"tnsr/internal/tcache"
	"tnsr/internal/xrun"
)

// newFleet starts a tnsprofd over a real socket and returns a client bound
// to it. Aging is disabled unless the caller sets it: the differential
// oracle needs the aggregate to be exactly the order-independent merge.
func newFleet(t testing.TB, mutate func(*profsrv.Config)) (*httptest.Server, *profsrv.Client) {
	t.Helper()
	store, err := profsrv.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := profsrv.Config{Store: store, Token: "fleet-token"}
	if mutate != nil {
		mutate(&cfg)
	}
	ts := httptest.NewServer(profsrv.New(cfg))
	t.Cleanup(ts.Close)
	return ts, profsrv.NewClient(ts.URL, "fleet-token")
}

// captureRunnerProfiles simulates N runners profiling the same program:
// the same workload captured at each acceleration level yields distinct
// observation sets (different levels keep different guards) that share one
// fingerprint (the fingerprint covers the CISC image, not the accel
// section) — exactly the mergeable-but-different shape a fleet produces.
func captureRunnerProfiles(t *testing.T) []*pgo.Profile {
	t.Helper()
	var out []*pgo.Profile
	for _, lvl := range []codefile.AccelLevel{
		codefile.LevelStmtDebug, codefile.LevelDefault, codefile.LevelFast,
	} {
		p, _, err := bench.CaptureWorkload("tal", lvl, 2)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	fp0, err := profsrv.UserFingerprint(out[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range out[1:] {
		fp, err := profsrv.UserFingerprint(p)
		if err != nil {
			t.Fatal(err)
		}
		if fp != fp0 {
			t.Fatalf("runner %d captured fingerprint %s, runner 0 %s", i+1, fp, fp0)
		}
	}
	return out
}

func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

// TestFleetAggregateOrderIndependent is the differential oracle: every
// upload order — all six permutations, plus a fully concurrent round —
// must leave the server holding byte-for-byte the same aggregate a local
// pgo.Merge of the same captures produces.
func TestFleetAggregateOrderIndependent(t *testing.T) {
	profiles := captureRunnerProfiles(t)
	fp, err := profsrv.UserFingerprint(profiles[0])
	if err != nil {
		t.Fatal(err)
	}

	localMerge, err := pgo.Merge(profiles...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := localMerge.JSON()
	if err != nil {
		t.Fatal(err)
	}

	fetchBytes := func(cl *profsrv.Client) []byte {
		agg, err := cl.Fetch(fp)
		if err != nil {
			t.Fatal(err)
		}
		if agg == nil {
			t.Fatal("no aggregate after pushes")
		}
		data, err := agg.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	for _, perm := range permutations(len(profiles)) {
		_, cl := newFleet(t, nil)
		for _, i := range perm {
			if _, err := cl.Push(profiles[i]); err != nil {
				t.Fatalf("order %v: push %d: %v", perm, i, err)
			}
		}
		if got := fetchBytes(cl); !bytes.Equal(got, want) {
			t.Fatalf("upload order %v produced a different aggregate than local merge", perm)
		}
	}

	// Concurrent runners: same oracle, racing pushes (run under -race).
	_, cl := newFleet(t, nil)
	var wg sync.WaitGroup
	for _, p := range profiles {
		wg.Add(1)
		go func(p *pgo.Profile) {
			defer wg.Done()
			if _, err := cl.Push(p); err != nil {
				t.Errorf("concurrent push: %v", err)
			}
		}(p)
	}
	wg.Wait()
	if got := fetchBytes(cl); !bytes.Equal(got, want) {
		t.Fatal("concurrent pushes produced a different aggregate than local merge")
	}
}

// TestFleetSteersRetranslation closes the whole loop over the wire on the
// adversarial program: the cycle run against the daemon must apply exactly
// the bytes the local cycle applies (one capture in, one capture merged
// out), and therefore reach the same end state — zero rp-conflict escapes
// and identical observable behavior.
func TestFleetSteersRetranslation(t *testing.T) {
	const budget = 200_000_000

	local, err := bench.AdaptiveAdversarial(budget)
	if err != nil {
		t.Fatal(err)
	}

	_, cl := newFleet(t, nil)
	remote, err := bench.AdaptiveAdversarialOpts(budget, xrun.AdaptiveOptions{Source: cl})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range remote.SourceErrs {
		t.Errorf("cycle degraded around source error: %v", e)
	}
	if !remote.Halted || remote.Console != local.Console || remote.ExitStatus != local.ExitStatus {
		t.Fatal("remote-steered cycle diverged observably from the local cycle")
	}

	// The aggregate served back for pass 2 is the merge of exactly one
	// capture — byte-identical to the capture itself, so the remote pass 2
	// is the same translation the local pass 2 ran.
	appliedJSON, err := remote.Applied.JSON()
	if err != nil {
		t.Fatal(err)
	}
	capturedJSON, err := remote.Profile.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(appliedJSON, capturedJSON) {
		t.Error("single-runner aggregate is not byte-identical to the capture")
	}

	if c := remote.SecondObs.Escapes[obs.EscapeRPConflict]; c != 0 {
		t.Errorf("pass 2 under the fleet aggregate still hit %d rp-conflict escapes", c)
	}
	rf, lf := remote.Second.InterpFraction(), local.Second.InterpFraction()
	if rf != lf {
		t.Errorf("remote-steered residency %.6f != local %.6f", rf, lf)
	}

	// The fleet now holds the aggregate for the next machine.
	f, err := bench.AdversarialProgram()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := cl.Fetch(fmt.Sprintf("%016x", f.Fingerprint()))
	if err != nil {
		t.Fatal(err)
	}
	if agg == nil {
		t.Fatal("fleet holds no aggregate after the cycle pushed one")
	}
}

// TestFleetSecondMachineBenefit is the fleet payoff: a second machine
// running the same program fetches the first machine's observations before
// its first pass, so it never suffers the cold rp-conflict escapes — and
// with a shared retranslation cache it doesn't even pay for the
// translation the first machine already did.
func TestFleetSecondMachineBenefit(t *testing.T) {
	const budget = 200_000_000
	_, cl := newFleet(t, nil)
	cache, err := tcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	first, err := bench.AdaptiveAdversarialOpts(budget, xrun.AdaptiveOptions{Source: cl, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if c := first.FirstObs.Escapes[obs.EscapeRPConflict]; c == 0 {
		t.Fatal("machine 1 pass 1 should escape cold (nothing on the fleet yet)")
	}
	if h := cache.Stats().Hits; h != 0 {
		t.Fatalf("machine 1 hit a cold cache %d times", h)
	}

	second, err := bench.AdaptiveAdversarialOpts(budget, xrun.AdaptiveOptions{Source: cl, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range second.SourceErrs {
		t.Errorf("machine 2 degraded around source error: %v", e)
	}
	if second.Console != first.Console || second.ExitStatus != first.ExitStatus {
		t.Fatal("machine 2 diverged observably from machine 1")
	}
	// Machine 2's FIRST pass already ran under the fleet aggregate: the
	// cold escapes machine 1 paid never happen again anywhere in the fleet.
	if c := second.FirstObs.Escapes[obs.EscapeRPConflict]; c != 0 {
		t.Errorf("machine 2 pass 1 hit %d rp-conflict escapes despite the fleet aggregate", c)
	}
	// And its pass-1 translation (same codefile, same aggregate as machine
	// 1's pass 2) came straight from the shared cache.
	if h := cache.Stats().Hits; h == 0 {
		t.Error("machine 2 never hit the shared retranslation cache")
	}
}

// TestFleetScaleConcurrentPushes is the order-independence oracle at fleet
// scale: 9 machines — three identical cohorts of the three distinct
// level-captures, the shape a homogeneous fleet actually produces — push
// concurrently to one fingerprint, and the server must end up holding
// byte-for-byte the aggregate a sequential local pgo.Merge of the same
// nine captures produces. Run under -race, this also pins the store's
// per-fingerprint update locking.
func TestFleetScaleConcurrentPushes(t *testing.T) {
	base := captureRunnerProfiles(t)
	fp, err := profsrv.UserFingerprint(base[0])
	if err != nil {
		t.Fatal(err)
	}

	const cohorts = 3 // 3 cohorts x 3 captures = 9 concurrent machines
	var machines []*pgo.Profile
	for i := 0; i < cohorts; i++ {
		machines = append(machines, base...)
	}
	if len(machines) < 8 {
		t.Fatalf("only %d machines; the fleet oracle needs at least 8", len(machines))
	}

	localMerge, err := pgo.Merge(machines...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := localMerge.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if localMerge.Runs != int64(len(machines)) {
		t.Fatalf("local merge runs %d, want %d", localMerge.Runs, len(machines))
	}

	_, cl := newFleet(t, nil)
	var wg sync.WaitGroup
	for i, p := range machines {
		wg.Add(1)
		go func(i int, p *pgo.Profile) {
			defer wg.Done()
			if _, err := cl.Push(p); err != nil {
				t.Errorf("machine %d push: %v", i, err)
			}
		}(i, p)
	}
	wg.Wait()

	agg, err := cl.Fetch(fp)
	if err != nil {
		t.Fatal(err)
	}
	if agg == nil {
		t.Fatal("no aggregate after fleet pushes")
	}
	got, err := agg.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet aggregate differs from sequential local merge:\nserver: %s\nlocal:  %s",
			got, want)
	}
}
