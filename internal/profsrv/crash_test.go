package profsrv

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tnsr/internal/pgo"
)

// TestStoreCrashDebrisSweptOnReopen: temporaries left by a writer that died
// mid-save are invisible, survive nothing, and the aggregate they were
// racing stays intact across the sweep.
func TestStoreCrashDebrisSweptOnReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Update(testFP, func(cur *pgo.Profile) (*pgo.Profile, error) {
		return testProfile(testFP, 3), nil
	}); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{".tmp-4242", testFP + ".pgo.json.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(`{"torn`), 0o666); err != nil {
			t.Fatal(err)
		}
	}

	// Debris is already invisible to List...
	fps, err := st.List()
	if err != nil || len(fps) != 1 || fps[0] != testFP {
		t.Fatalf("List with debris: %v, %v", fps, err)
	}

	// ...and a reopened store's sweep reclaims exactly it.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := st2.Sweep()
	if err != nil || removed != 2 {
		t.Fatalf("Sweep removed %d, err %v; want 2", removed, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") || strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("debris survived sweep: %q", e.Name())
		}
	}
	p, err := st2.Load(testFP)
	if err != nil || p == nil {
		t.Fatalf("aggregate after recovery: %v, %v", p, err)
	}
	if p.Spaces[0].Procs[0].Calls != 3 {
		t.Errorf("aggregate content changed: %+v", p.Spaces[0].Procs[0])
	}
}

// TestHalfWrittenAggregateNeverServed: an aggregate truncated mid-file must
// surface as a typed load error — never parse into wrong advice.
func TestHalfWrittenAggregateNeverServed(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Update(testFP, func(cur *pgo.Profile) (*pgo.Profile, error) {
		return testProfile(testFP, 5), nil
	}); err != nil {
		t.Fatal(err)
	}

	path := st.Path(testFP)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)/2], 0o666); err != nil {
		t.Fatal(err)
	}

	if p, err := st.Load(testFP); err == nil {
		t.Fatalf("half-written aggregate served: %+v", p)
	}
}
