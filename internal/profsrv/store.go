// Package profsrv is the fleet profile service: the multi-user form of the
// hint-file loop. Runners capture tnsr/pgo-profile/v1 blobs (internal/pgo)
// and POST them to a tnsprofd daemon, which merges them order-independently
// into one aggregate per codefile fingerprint, ages the aggregate across
// runs so stale advice decays, and serves the current aggregate back to any
// translator (axcel -profile-url, xrun.RunAdaptive with a remote source).
//
// The correctness story leans entirely on the pgo invariants: Merge is
// order-independent and canonical, profiles are advisory to the translator
// (every run-time guard stays), and a stale or wrong aggregate costs
// interpreter interludes, never answers. The server's own obligations are
// narrower and mechanical: never serve a torn aggregate (atomic rename
// writes, strict re-Validate on load), never mix fingerprints (the store
// key IS the profile's user-space fingerprint, checked on upload), and
// never fall over on hostile input (auth, size caps, rate limit, typed
// rejects — attacked by the adversarial and fuzz tests).
//
// profsrv depends only on pgo and obs; xrun and the CLIs depend on profsrv
// through the small client, never the reverse.
package profsrv

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"tnsr/internal/pgo"
	"tnsr/internal/store"
)

// storeSuffix is the aggregate key suffix in the backing storage; tmpSuffix
// survives only as the legacy torn-write shape the storage layer must keep
// invisible (the contract test in internal/store pins that).
const (
	storeSuffix = ".pgo.json"
	tmpSuffix   = ".tmp"
)

// Store is fingerprint-keyed profile storage over a pluggable
// store.Storage: one aggregate per key <16-hex-fingerprint>.pgo.json,
// written atomically by the storage (a reader or a crash can never see a
// torn aggregate) and re-validated through the strict parser on every load
// so damage on disk surfaces as a typed error, not wrong advice. The
// default backing is a single directory; a sharded store spreads
// aggregates across directories by fingerprint prefix (store.OpenSharded).
type Store struct {
	st store.Storage

	mu    sync.Mutex
	locks map[string]*sync.Mutex // per-fingerprint update locks
}

// OpenStore opens (creating if needed) a directory-backed store at dir.
func OpenStore(dir string) (*Store, error) {
	st, err := store.OpenDir(dir)
	if err != nil {
		return nil, fmt.Errorf("profsrv: store: %w", err)
	}
	return NewStore(st), nil
}

// NewStore builds a store over any Storage implementation.
func NewStore(st store.Storage) *Store {
	return &Store{st: st, locks: map[string]*sync.Mutex{}}
}

// ValidFingerprint reports whether fp is a well-formed store key: exactly
// 16 lowercase hex digits, the form codefile.File.Fingerprint serializes
// to. Everything else is rejected before it can reach the filesystem.
func ValidFingerprint(fp string) bool {
	if len(fp) != 16 {
		return false
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Path returns the aggregate file path for a fingerprint when the backing
// storage maps keys to files (both filesystem backings do; tests damage
// entries through it), and "" for any other backing.
func (s *Store) Path(fp string) string {
	if d, ok := s.st.(interface{ Path(string) string }); ok {
		return d.Path(fp + storeSuffix)
	}
	return ""
}

// Sweep removes crash debris (orphaned atomic-write temporaries) from the
// backing storage; a restarting daemon runs it before serving. Backings
// without a sweep surface report 0.
func (s *Store) Sweep() (int, error) { return store.Sweep(s.st) }

// lock returns the per-fingerprint mutex, creating it on first use.
func (s *Store) lock(fp string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.locks[fp]
	if l == nil {
		l = &sync.Mutex{}
		s.locks[fp] = l
	}
	return l
}

// Load reads and strictly re-validates the aggregate for fp. A missing
// aggregate is (nil, nil); a present-but-damaged one is a hard error —
// the server refuses to serve it rather than guessing.
func (s *Store) Load(fp string) (*pgo.Profile, error) {
	if !ValidFingerprint(fp) {
		return nil, fmt.Errorf("profsrv: store: bad fingerprint %q", fp)
	}
	data, err := s.st.Get(fp + storeSuffix)
	if errors.Is(err, store.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("profsrv: store: %w", err)
	}
	p, err := pgo.ParseProfile(data)
	if err != nil {
		return nil, fmt.Errorf("profsrv: store: aggregate %s: %w", fp, err)
	}
	return p, nil
}

// save writes the aggregate atomically through the storage layer (temp
// file + fsync + rename in the filesystem implementations). The caller
// must hold the fingerprint's update lock.
func (s *Store) save(fp string, p *pgo.Profile) error {
	data, err := p.JSON()
	if err != nil {
		return fmt.Errorf("profsrv: store: %w", err)
	}
	if err := s.st.Put(fp+storeSuffix, data); err != nil {
		return fmt.Errorf("profsrv: store: %w", err)
	}
	return nil
}

// Update applies fn to the current aggregate for fp (nil when absent)
// under the fingerprint's lock and atomically persists fn's result,
// returning it. fn returning an error aborts without writing.
func (s *Store) Update(fp string, fn func(cur *pgo.Profile) (*pgo.Profile, error)) (*pgo.Profile, error) {
	if !ValidFingerprint(fp) {
		return nil, fmt.Errorf("profsrv: store: bad fingerprint %q", fp)
	}
	l := s.lock(fp)
	l.Lock()
	defer l.Unlock()
	cur, err := s.Load(fp)
	if err != nil {
		return nil, err
	}
	next, err := fn(cur)
	if err != nil {
		return nil, err
	}
	if err := s.save(fp, next); err != nil {
		return nil, err
	}
	return next, nil
}

// List returns the fingerprints with a stored aggregate, sorted. Temp
// files from interrupted writes are not aggregates and are not listed.
func (s *Store) List() ([]string, error) {
	ents, err := s.st.List()
	if err != nil {
		return nil, fmt.Errorf("profsrv: store: %w", err)
	}
	var out []string
	for _, e := range ents {
		fp, ok := strings.CutSuffix(e.Key, storeSuffix)
		if !ok || !ValidFingerprint(fp) {
			continue
		}
		out = append(out, fp)
	}
	return out, nil
}
