package xlate

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"tnsr/internal/obs"
	"tnsr/internal/tcache"
)

// reqKey labels one requests_total series.
type reqKey struct {
	method string
	code   int
}

// metrics is the daemon's Prometheus state, following the same
// plain-counters-under-one-lock conventions as profsrv (the lock is never
// held across I/O; queue and cache counters are snapshotted by the caller).
type metrics struct {
	mu          sync.Mutex
	requests    map[reqKey]int64
	rejects     map[string]int64 // typed reason -> count
	submissions int64            // accepted submits
	cachedSubs  int64            // submits answered entirely from the store
	done        int64            // translations completed
	failed      int64            // translations failed
	served      int64            // accelerated codefiles served (GET 200)
	swept       int64            // torn write temporaries reclaimed at startup
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[reqKey]int64{},
		rejects:  map[string]int64{},
	}
}

func (m *metrics) request(method string, code int) {
	m.mu.Lock()
	m.requests[reqKey{method, code}]++
	m.mu.Unlock()
}

func (m *metrics) reject(reason string) {
	m.mu.Lock()
	m.rejects[reason]++
	m.mu.Unlock()
}

func (m *metrics) add(counter *int64) {
	m.mu.Lock()
	*counter++
	m.mu.Unlock()
}

// write renders the exposition. Queue, cache, and drain state are passed
// in so the metrics lock never nests with theirs.
func (m *metrics) write(w io.Writer, qs QueueStats, cs tcache.Stats, storeBytes int64, storeEntries int, draining bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	obs.PromHeader(w, "tnsr_xlated_requests_total", "counter",
		"Requests handled, by method and status code.")
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].method != keys[j].method {
			return keys[i].method < keys[j].method
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "tnsr_xlated_requests_total{method=%q,code=\"%d\"} %d\n",
			obs.PromEscape(k.method), k.code, m.requests[k])
	}

	obs.PromHeader(w, "tnsr_xlated_rejects_total", "counter",
		"Rejected requests, by typed reason.")
	rkeys := make([]string, 0, len(m.rejects))
	for k := range m.rejects {
		rkeys = append(rkeys, k)
	}
	sort.Strings(rkeys)
	for _, k := range rkeys {
		fmt.Fprintf(w, "tnsr_xlated_rejects_total{reason=%q} %d\n",
			obs.PromEscape(k), m.rejects[k])
	}

	obs.PromHeader(w, "tnsr_xlated_submissions_total", "counter",
		"Codefile submissions accepted.")
	fmt.Fprintf(w, "tnsr_xlated_submissions_total %d\n", m.submissions)

	obs.PromHeader(w, "tnsr_xlated_cached_submissions_total", "counter",
		"Submissions answered entirely from the content-addressed store.")
	fmt.Fprintf(w, "tnsr_xlated_cached_submissions_total %d\n", m.cachedSubs)

	obs.PromHeader(w, "tnsr_xlated_translations_total", "counter",
		"Queued translations finished, by result.")
	fmt.Fprintf(w, "tnsr_xlated_translations_total{result=\"done\"} %d\n", m.done)
	fmt.Fprintf(w, "tnsr_xlated_translations_total{result=\"failed\"} %d\n", m.failed)

	obs.PromHeader(w, "tnsr_xlated_served_total", "counter",
		"Accelerated codefiles served (every byte re-verified on the way out).")
	fmt.Fprintf(w, "tnsr_xlated_served_total %d\n", m.served)

	obs.PromHeader(w, "tnsr_xlated_queue_tasks", "gauge",
		"Translations currently queued or running.")
	fmt.Fprintf(w, "tnsr_xlated_queue_tasks %d\n", qs.Tasks)

	obs.PromHeader(w, "tnsr_xlated_queue_depth", "gauge",
		"Fragment jobs enqueued and not yet claimed by a worker.")
	fmt.Fprintf(w, "tnsr_xlated_queue_depth %d\n", qs.Frags)

	obs.PromHeader(w, "tnsr_xlated_queue_steals_total", "counter",
		"Fragment claims by an idle worker from another submission's task.")
	fmt.Fprintf(w, "tnsr_xlated_queue_steals_total %d\n", qs.Steals)

	obs.PromHeader(w, "tnsr_xlated_queue_frags_total", "counter",
		"Fragment jobs executed by the shared pool.")
	fmt.Fprintf(w, "tnsr_xlated_queue_frags_total %d\n", qs.Executed)

	obs.PromHeader(w, "tnsr_xlated_store_hits_total", "counter",
		"Store lookups that passed every verify gate.")
	fmt.Fprintf(w, "tnsr_xlated_store_hits_total %d\n", cs.Hits)

	obs.PromHeader(w, "tnsr_xlated_store_rejects_total", "counter",
		"Store entries that failed a verify gate and were dropped.")
	fmt.Fprintf(w, "tnsr_xlated_store_rejects_total %d\n", cs.Rejects)

	obs.PromHeader(w, "tnsr_xlated_store_evictions_total", "counter",
		"Store entries evicted by the size cap.")
	fmt.Fprintf(w, "tnsr_xlated_store_evictions_total %d\n", cs.Evictions)

	obs.PromHeader(w, "tnsr_xlated_store_bytes", "gauge",
		"Bytes currently in the content-addressed store.")
	fmt.Fprintf(w, "tnsr_xlated_store_bytes %d\n", storeBytes)

	obs.PromHeader(w, "tnsr_xlated_store_entries", "gauge",
		"Entries currently in the content-addressed store.")
	fmt.Fprintf(w, "tnsr_xlated_store_entries %d\n", storeEntries)

	obs.PromHeader(w, "tnsr_xlated_store_put_errors_total", "counter",
		"Store population writes refused by the backing disk (translation still served).")
	fmt.Fprintf(w, "tnsr_xlated_store_put_errors_total %d\n", cs.PutErrs)

	obs.PromHeader(w, "tnsr_xlated_swept_total", "counter",
		"Torn write temporaries reclaimed by the startup sweep.")
	fmt.Fprintf(w, "tnsr_xlated_swept_total %d\n", m.swept)

	obs.PromHeader(w, "tnsr_xlated_draining", "gauge",
		"1 while the server refuses new submissions ahead of shutdown.")
	d := 0
	if draining {
		d = 1
	}
	fmt.Fprintf(w, "tnsr_xlated_draining %d\n", d)
}
