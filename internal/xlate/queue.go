// Package xlate is translation as a service: a long-running daemon
// (cmd/tnsxlated) that accepts TNS codefiles over HTTP, translates them
// through the same core.Accelerate every local tool uses, stores the
// accelerated codefiles in a content-addressed store keyed by
// core.Options.TransKey, and serves them back to any client. Determinism is
// what makes the service sound: the TransKey pins every output-affecting
// knob plus the input fingerprint, translation emits byte-identical
// sections under any scheduler, and every served byte re-passes the full
// load gates (v5 checksums, fingerprint recheck, AccelSection.Verify) on
// the way out — so a remote translation is indistinguishable from a local
// one, and a damaged store entry degrades to a retranslation, never to
// wrong code.
//
// The scheduling contribution is the Queue: where PR 1's worker pool
// parallelized fragments WITHIN one translation, the Queue generalizes it
// ACROSS concurrently submitted codefiles. Every submission's fragment jobs
// enter one shared pool; each submission has a home worker so a lone
// translation still fans out exactly like the private pool, and idle
// workers steal fragments from the submission with the most work left —
// so a large codefile cannot starve a small one submitted after it, and
// total throughput tracks worker count, not submission count. Results
// merge positionally per codefile (core.translateSched), so interleaving
// changes wall-clock only.
package xlate

import (
	"fmt"
	"sync"
)

// qtask is one submission's fragment jobs inside the queue.
type qtask struct {
	home    int         // worker that claims this task before stealing
	n       int         // total fragment jobs
	next    int         // next unclaimed job index
	running int         // jobs claimed but not yet finished
	job     func(k int) // translates fragment k (panics recovered)
	done    chan struct{}
	panics  []any // first recovered panic, re-raised in Run
}

// Queue is a shared fragment scheduler: a fixed pool of workers executing
// the fragment jobs of every concurrently running translation. It
// implements core.FragSched, so plugging it into core.Options.Sched routes
// a translation's fan-out through the shared pool instead of a private one.
//
// Claiming policy (the work-stealing mode): a worker first claims from
// tasks whose home worker it is, in submission order; with no home work it
// steals from the task with the most unclaimed jobs. Home assignment is
// round-robin over workers, so disjoint submissions spread across the pool
// and a solo submission still gets every worker (all of them steal into
// it). FIFO mode (the measured baseline) claims strictly from the earliest
// submitted task — exactly the policy under which a large submission
// starves every later one; BenchmarkQueueStealVsFIFO and the /metrics
// steal counters quantify the difference.
type Queue struct {
	workers int
	fifo    bool

	mu     sync.Mutex
	cond   *sync.Cond
	tasks  []*qtask // submission order
	nextID int
	closed bool

	steals   int64 // claims by a non-home worker
	executed int64 // fragment jobs completed
}

// QueueStats is a point-in-time view for /metrics.
type QueueStats struct {
	Tasks    int   // translations currently queued or running
	Frags    int   // fragment jobs not yet claimed
	Steals   int64 // cross-submission claims by idle workers
	Executed int64 // fragment jobs completed
}

// NewQueue starts a queue with n workers (n < 1 panics: a zero-worker
// queue deadlocks its first Run). Close releases the workers.
func NewQueue(n int, fifo bool) *Queue {
	if n < 1 {
		panic(fmt.Sprintf("xlate: NewQueue: %d workers", n))
	}
	q := &Queue{workers: n, fifo: fifo}
	q.cond = sync.NewCond(&q.mu)
	for id := 0; id < n; id++ {
		go q.worker(id)
	}
	return q
}

// Close stops the workers after their in-flight jobs finish. Run must not
// be called after Close.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Stats snapshots the queue counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := QueueStats{Steals: q.steals, Executed: q.executed}
	for _, t := range q.tasks {
		s.Tasks++
		s.Frags += t.n - t.next
	}
	return s
}

// Run implements core.FragSched: it enqueues n fragment jobs as one task
// and blocks until all have executed. Safe for concurrent use — that is
// the point: each concurrent Run is one submitted codefile, and the
// workers interleave their fragments. A panicking job is re-raised here,
// on the submitting translation's goroutine, after the task drains.
func (q *Queue) Run(n int, job func(k int)) {
	if n <= 0 {
		return
	}
	t := &qtask{n: n, job: job, done: make(chan struct{})}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		panic("xlate: Run on closed Queue")
	}
	t.home = q.nextID % q.workers
	q.nextID++
	q.tasks = append(q.tasks, t)
	q.mu.Unlock()
	q.cond.Broadcast()
	<-t.done
	if len(t.panics) > 0 {
		panic(t.panics[0])
	}
}

// claim picks the next fragment job for worker id under q.mu, returning
// the task and job index, or nil when no work is claimable. Steal counting
// happens here: any claim from a task whose home is another worker.
func (q *Queue) claim(id int) (*qtask, int) {
	if q.fifo {
		for _, t := range q.tasks {
			if t.next < t.n {
				return q.take(t, id)
			}
		}
		return nil, -1
	}
	// Home first, in submission order: a worker drains its own
	// submissions before helping others, which keeps small disjoint
	// submissions from all piling onto one victim task.
	for _, t := range q.tasks {
		if t.home == id && t.next < t.n {
			return q.take(t, id)
		}
	}
	// Steal from the task with the most unclaimed work: the largest
	// submission sheds load fastest, which is exactly the anti-starvation
	// property (a small task's home worker reaches it immediately, and
	// big tasks attract every idle worker).
	var best *qtask
	for _, t := range q.tasks {
		if t.next < t.n && (best == nil || t.n-t.next > best.n-best.next) {
			best = t
		}
	}
	if best == nil {
		return nil, -1
	}
	return q.take(best, id)
}

func (q *Queue) take(t *qtask, id int) (*qtask, int) {
	k := t.next
	t.next++
	t.running++
	if t.home != id && !q.fifo {
		q.steals++ // FIFO has no stealing notion: it just drains in order
	}
	return t, k
}

// worker is one pool goroutine: claim, execute outside the lock, retire.
func (q *Queue) worker(id int) {
	q.mu.Lock()
	for {
		t, k := q.claim(id)
		if t == nil {
			if q.closed {
				q.mu.Unlock()
				return
			}
			q.cond.Wait()
			continue
		}
		q.mu.Unlock()

		func() {
			defer func() {
				if p := recover(); p != nil {
					q.mu.Lock()
					t.panics = append(t.panics, p)
					q.mu.Unlock()
				}
			}()
			t.job(k)
		}()

		q.mu.Lock()
		t.running--
		q.executed++
		if t.next == t.n && t.running == 0 {
			for i, tt := range q.tasks {
				if tt == t {
					q.tasks = append(q.tasks[:i], q.tasks[i+1:]...)
					break
				}
			}
			close(t.done)
		}
	}
}
