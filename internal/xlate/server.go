package xlate

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/tcache"
)

// readBody reads a request body under the size cap.
func readBody(w http.ResponseWriter, r *http.Request, max int64) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, max))
}

// Default limits; Config zero values fall back to these.
const (
	// DefaultMaxBody bounds a submit body: codefile (base64) + profile +
	// knobs. Generated codefiles are tens of KB; 64 MiB leaves room for
	// real programs without letting one request exhaust the daemon.
	DefaultMaxBody = 64 << 20
)

// xlatePrefix is the resource path: POST submits a codefile, GET fetches
// the accelerated result by its content-addressed key.
const xlatePrefix = "/v1/xlate/"

// Config parameterizes a Server.
type Config struct {
	// Cache is the content-addressed codefile store (and translation
	// executor): entries keyed by core.Options.TransKey, every byte served
	// from it re-verified on the way out. Required.
	Cache *tcache.Cache

	// Token is the bearer token every /v1 request must present. Empty
	// disables auth (tests, trusted networks).
	Token string

	// MaxBody caps the accepted submit size in bytes (<= 0 means
	// DefaultMaxBody).
	MaxBody int64

	// RatePerSec, when > 0, applies the same per-client token-bucket rate
	// limit tnsprofd uses (keyed by remote host + bearer token).
	// RateBurst is each bucket's depth (<= 0 means 1).
	RatePerSec float64
	RateBurst  int

	// Workers sizes the shared fragment pool (<= 0 means
	// runtime.GOMAXPROCS(0)).
	Workers int

	// FIFO switches the queue to the strict submission-order baseline the
	// scheduling benchmark measures against. Production wants the default
	// (work-stealing) mode.
	FIFO bool
}

// Server is the tnsxlated HTTP surface: an http.Handler plus the shared
// translation queue. Close releases the queue workers.
type Server struct {
	cfg Config
	q   *Queue
	m   *metrics

	// draining refuses new submissions (503 + Retry-After) while letting
	// in-flight translations finish and their results be fetched; jobWG
	// tracks the in-flight translations Shutdown waits for.
	draining atomic.Bool
	jobWG    sync.WaitGroup

	jobMu sync.Mutex
	jobs  map[string]*jobState // TransKey -> submission state

	bucketMu sync.Mutex
	buckets  map[string]*bucket
}

// jobState tracks one submitted translation by its TransKey. It survives
// completion so a later GET knows the code base to verify against and a
// failed translation stays diagnosable.
type jobState struct {
	state  string // StateQueued .. StateFailed
	cached bool
	base   uint32 // code base the translation verifies against
	err    string
}

// maxJobs bounds the job table; on overflow, finished entries are dropped
// (their results live in the store — forgetting one costs a GET the
// remembered code base, which the lookup fallback recovers).
const maxJobs = 4096

// bucket is one client's token bucket (same policy as profsrv).
type bucket struct {
	tokens   float64
	lastFill time.Time
}

const maxBuckets = 4096

// New builds a Server and starts its translation queue.
func New(cfg Config) *Server {
	if cfg.Cache == nil {
		panic("xlate: New: Config.Cache is required")
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.RateBurst <= 0 {
		cfg.RateBurst = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	m := newMetrics()
	// Restart recovery: a previous life killed mid-translation leaves torn
	// write temporaries in the store. They were never visible to any read
	// path; sweeping reclaims them before traffic arrives. In-flight
	// submissions died with the old process — clients re-submit, and the
	// content-addressed key makes the replay idempotent.
	if n, err := cfg.Cache.Sweep(); err == nil {
		m.swept = int64(n)
	}
	return &Server{
		cfg:     cfg,
		q:       NewQueue(cfg.Workers, cfg.FIFO),
		m:       m,
		jobs:    map[string]*jobState{},
		buckets: map[string]*bucket{},
	}
}

// Close stops the queue workers after in-flight fragments finish.
func (s *Server) Close() { s.q.Close() }

// SetDraining flips the drain flag: while draining, new submissions are
// refused with 503 + Retry-After, but polls and result fetches still serve
// — a client of an in-flight translation gets its bytes.
func (s *Server) SetDraining(on bool) { s.draining.Store(on) }

// Draining reports the drain flag (the daemon's signal handler and tests
// read it; /metrics exposes it as a gauge).
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: refuse new submissions, wait for in-flight
// translations to finish (bounded by ctx), then stop the queue workers.
// After Shutdown returns nil, every accepted submission has a terminal
// state and its result (when successful) is durably in the store.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		return fmt.Errorf("xlate: shutdown: %w", ctx.Err())
	case <-done:
	}
	s.q.Close()
	return nil
}

// Queue exposes the shared scheduler (the daemon's own tools and tests
// read its stats; fleet hosts can submit local translations through it).
func (s *Server) Queue() *Queue { return s.q }

// Swept reports how many torn-write temporaries the startup sweep
// reclaimed (the daemon logs it; /metrics exposes it as a counter).
func (s *Server) Swept() int64 {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	return s.m.swept
}

func (s *Server) authed(r *http.Request) bool {
	if s.cfg.Token == "" {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(got), []byte(s.cfg.Token)) == 1
}

func clientKey(r *http.Request) string {
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	tok, _ := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return host + "|" + tok
}

func (s *Server) allow(r *http.Request) bool {
	if s.cfg.RatePerSec <= 0 {
		return true
	}
	key := clientKey(r)
	now := time.Now()
	s.bucketMu.Lock()
	defer s.bucketMu.Unlock()
	b := s.buckets[key]
	if b == nil {
		if len(s.buckets) >= maxBuckets {
			s.evictStale(now)
		}
		b = &bucket{tokens: float64(s.cfg.RateBurst), lastFill: now}
		s.buckets[key] = b
	}
	b.tokens += now.Sub(b.lastFill).Seconds() * s.cfg.RatePerSec
	if max := float64(s.cfg.RateBurst); b.tokens > max {
		b.tokens = max
	}
	b.lastFill = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func (s *Server) evictStale(now time.Time) {
	full := time.Duration(float64(s.cfg.RateBurst) / s.cfg.RatePerSec * float64(time.Second))
	dropped := 0
	for k, b := range s.buckets {
		if now.Sub(b.lastFill) >= full {
			delete(s.buckets, k)
			dropped++
		}
	}
	if dropped == 0 {
		s.buckets = map[string]*bucket{}
	}
}

// fail writes a plain-text error and records the typed reject.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, code int, reason, msg string) {
	s.m.reject(reason)
	s.m.request(r.Method, code)
	http.Error(w, msg, code)
}

func (s *Server) respond(w http.ResponseWriter, r *http.Request, code int, body []byte, contentType string) {
	s.m.request(r.Method, code)
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(code)
	w.Write(body)
}

func (s *Server) status(w http.ResponseWriter, r *http.Request, code int, st Status) {
	st.Schema = StatusSchema
	data, _ := json.Marshal(st)
	s.respond(w, r, code, append(data, '\n'), "application/json")
}

// ServeHTTP routes:
//
//	POST /v1/xlate        submit a codefile + translation knobs; answers a
//	                      Status with the content-addressed key (200 when
//	                      served from the store, 202 when queued/running)
//	GET  /v1/xlate/{key}  the accelerated codefile (200, verified bytes);
//	                      202 Status while queued/running, 422 when that
//	                      translation failed, 404 for an unknown key
//	GET  /metrics         Prometheus text exposition (no auth)
//	GET  /healthz         liveness probe
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		s.respond(w, r, http.StatusOK, []byte("ok\n"), "text/plain; charset=utf-8")
		return
	case r.URL.Path == "/metrics":
		s.serveMetrics(w, r)
		return
	}

	rest, isXlate := strings.CutPrefix(r.URL.Path, strings.TrimSuffix(xlatePrefix, "/"))
	if !isXlate {
		s.fail(w, r, http.StatusNotFound, "path", "not found")
		return
	}
	if !s.authed(r) {
		s.fail(w, r, http.StatusUnauthorized, "auth", "missing or wrong bearer token")
		return
	}
	if !s.allow(r) {
		w.Header().Set("Retry-After", "1")
		s.fail(w, r, http.StatusTooManyRequests, "rate", "rate limit exceeded")
		return
	}

	switch {
	case r.Method == http.MethodPost && (rest == "" || rest == "/"):
		s.acceptSubmit(w, r)
	case r.Method == http.MethodGet && strings.HasPrefix(rest, "/"):
		s.serveResult(w, r, rest[1:])
	case r.Method == http.MethodPost:
		s.fail(w, r, http.StatusBadRequest, "path", "POST to /v1/xlate, GET /v1/xlate/{key}")
	default:
		s.fail(w, r, http.StatusMethodNotAllowed, "method", "use POST /v1/xlate or GET /v1/xlate/{key}")
	}
}

// acceptSubmit parses a submission, computes its content-addressed key,
// and answers from the store when possible; otherwise the translation is
// queued on the shared pool and the client polls the key.
func (s *Server) acceptSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// Draining: no new work. In-flight jobs finish and remain
		// fetchable; the typed 503 tells resilient clients to go
		// elsewhere (or retry after the restart).
		w.Header().Set("Retry-After", "1")
		s.fail(w, r, http.StatusServiceUnavailable, "draining", "server is draining; retry later")
		return
	}
	body, err := readBody(w, r, s.cfg.MaxBody)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, r, http.StatusRequestEntityTooLarge, "size",
				fmt.Sprintf("submission exceeds %d bytes", s.cfg.MaxBody))
			return
		}
		s.fail(w, r, http.StatusBadRequest, "read", "body read failed")
		return
	}
	var req SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, r, http.StatusBadRequest, "parse", err.Error())
		return
	}
	if req.Schema != SubmitSchema {
		s.fail(w, r, http.StatusBadRequest, "schema",
			fmt.Sprintf("schema must be %q", SubmitSchema))
		return
	}
	opts, err := req.DecodeOptions()
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "options", err.Error())
		return
	}
	f, err := codefile.Read(bytes.NewReader(req.Codefile))
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "codefile", err.Error())
		return
	}
	fp := f.Fingerprint()
	key, err := opts.TransKey(fp)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "options", err.Error())
		return
	}
	base := opts.CodeBase
	if base == 0 {
		base = millicode.UserCodeBase
	}

	s.jobMu.Lock()
	if j := s.jobs[key]; j != nil {
		// Duplicate submission: answer from the existing job. A finished
		// job means the store holds (or held) the result; re-queue only
		// if the entry has since been evicted or damaged.
		st := *j
		s.jobMu.Unlock()
		switch st.state {
		case StateDone:
			if _, ok := s.cfg.Cache.GetVerified(key, fp, base); ok {
				s.m.add(&s.m.submissions)
				s.m.add(&s.m.cachedSubs)
				s.status(w, r, http.StatusOK, Status{Key: key, State: StateDone, Cached: true})
				return
			}
			s.jobMu.Lock() // result gone: fall through and re-queue
		case StateFailed:
			s.m.add(&s.m.submissions)
			s.status(w, r, http.StatusOK, Status{Key: key, State: StateFailed, Error: st.err})
			return
		default:
			s.m.add(&s.m.submissions)
			s.status(w, r, http.StatusAccepted, Status{Key: key, State: st.state})
			return
		}
	}
	// First sight of this key (or a re-queue): a store hit still answers
	// without translating — the daemon may have been restarted with a warm
	// store, or another daemon sharing it may have translated it already.
	if _, ok := s.cfg.Cache.GetVerified(key, fp, base); ok {
		s.jobs[key] = &jobState{state: StateDone, cached: true, base: base}
		s.jobMu.Unlock()
		s.m.add(&s.m.submissions)
		s.m.add(&s.m.cachedSubs)
		s.status(w, r, http.StatusOK, Status{Key: key, State: StateDone, Cached: true})
		return
	}
	if len(s.jobs) >= maxJobs {
		for k, j := range s.jobs {
			if j.state == StateDone || j.state == StateFailed {
				delete(s.jobs, k)
			}
		}
	}
	j := &jobState{state: StateQueued, base: base}
	s.jobs[key] = j
	s.jobMu.Unlock()
	s.m.add(&s.m.submissions)

	s.jobWG.Add(1)
	go s.runJob(key, j, f, opts)
	s.status(w, r, http.StatusAccepted, Status{Key: key, State: StateQueued})
}

// runJob executes one queued translation on the shared pool and records
// the outcome. The store write happens inside Cache.Accelerate; a racing
// identical submission elsewhere writes identical bytes by determinism.
func (s *Server) runJob(key string, j *jobState, f *codefile.File, opts core.Options) {
	defer s.jobWG.Done()
	s.jobMu.Lock()
	j.state = StateRunning
	s.jobMu.Unlock()

	opts.Sched = s.q
	hit, err := s.cfg.Cache.Accelerate(f, opts)

	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	if err != nil {
		j.state = StateFailed
		j.err = err.Error()
		s.m.add(&s.m.failed)
		return
	}
	j.state = StateDone
	j.cached = hit
	s.m.add(&s.m.done)
}

// serveResult is the GET side: every served byte passes the full verify
// gate (strict parse, AccelSection.Verify at the remembered code base) on
// the way out of the store.
func (s *Server) serveResult(w http.ResponseWriter, r *http.Request, key string) {
	if !validKey(key) {
		s.fail(w, r, http.StatusBadRequest, "key", "key must be 16 lowercase hex digits")
		return
	}
	s.jobMu.Lock()
	j := s.jobs[key]
	var st jobState
	if j != nil {
		st = *j
	}
	s.jobMu.Unlock()

	if j != nil {
		switch st.state {
		case StateQueued, StateRunning:
			s.status(w, r, http.StatusAccepted, Status{Key: key, State: st.state})
			return
		case StateFailed:
			s.status(w, r, http.StatusUnprocessableEntity, Status{Key: key, State: StateFailed, Error: st.err})
			return
		}
	}
	// Done, or a key this daemon never saw submitted (warm store from a
	// previous life or a sibling daemon). The code base is remembered for
	// known jobs; for unknown keys try both bases — Verify at the wrong
	// base fails cleanly and the entry is NOT a hit at that base.
	bases := []uint32{millicode.UserCodeBase, millicode.LibCodeBase}
	if j != nil {
		bases = []uint32{st.base}
	}
	for _, base := range bases {
		if data, ok := s.cfg.Cache.GetVerified(key, 0, base); ok {
			s.m.add(&s.m.served)
			s.respond(w, r, http.StatusOK, data, "application/octet-stream")
			return
		}
	}
	s.fail(w, r, http.StatusNotFound, "absent", "no accelerated codefile under this key")
	return
}

// validKey matches core.Options.TransKey output: 16 lowercase hex digits.
func validKey(key string) bool {
	if len(key) != 16 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, "method", "use GET")
		return
	}
	storeBytes, entries := s.cfg.Cache.SizeBytes()
	var b strings.Builder
	s.m.write(&b, s.q.Stats(), s.cfg.Cache.Stats(), storeBytes, entries, s.draining.Load())
	s.respond(w, r, http.StatusOK, []byte(b.String()), "text/plain; version=0.0.4; charset=utf-8")
}
