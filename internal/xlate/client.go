package xlate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/retry"
)

// Client talks to a tnsxlated daemon: submit a codefile with its
// translation knobs, poll the content-addressed key, fetch the accelerated
// codefile, and re-verify every gate locally before trusting a byte of it.
// The service's determinism contract makes the result indistinguishable
// from a local core.Accelerate with the same options — test-pinned
// byte-identical — so callers can treat Accelerate here as a drop-in that
// trades CPU for a network round trip.
//
// Failure policy: transient trouble (transport errors, 5xx, 429, damaged
// response bytes the verify gates refuse) is retried under Retry's backoff
// inside Deadline; refusals (auth, size, a translation the service itself
// reports failed) are terminal immediately. A daemon restart that loses
// in-flight job state surfaces as a 404 mid-poll; the client re-submits —
// bounded — and the service's key dedup makes the replay idempotent.
type Client struct {
	base  string
	token string

	// HTTPClient issues the requests (the fault campaign wraps its
	// Transport). NewClient sets a 30s-timeout default.
	HTTPClient *http.Client

	// Retry is the transient-failure policy for individual submits and the
	// pacing floor for result polling. Zero value = retry defaults.
	Retry retry.Policy

	// PollInterval paces result polling (default 50ms); each not-ready poll
	// backs the interval off multiplicatively up to PollMax (default 1s).
	// Deadline bounds one Accelerate end to end (default 5m).
	PollInterval time.Duration
	PollMax      time.Duration
	Deadline     time.Duration

	// MaxResubmits bounds how many times one Accelerate re-submits after
	// the service forgets the key mid-poll (daemon restart). Default 2.
	MaxResubmits int
}

// NewClient builds a client for a tnsxlated base URL. An empty token sends
// no Authorization header.
func NewClient(base, token string) *Client {
	return &Client{
		base:         strings.TrimSuffix(base, "/"),
		token:        token,
		HTTPClient:   &http.Client{Timeout: 30 * time.Second},
		PollInterval: 50 * time.Millisecond,
		PollMax:      time.Second,
		Deadline:     5 * time.Minute,
		MaxResubmits: 2,
	}
}

func (c *Client) pollMax() time.Duration {
	if c.PollMax <= 0 {
		return time.Second
	}
	return c.PollMax
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return hc.Do(req)
}

// Submit sends one codefile + options and returns the service's status —
// the content-addressed key plus where the translation stands. Transient
// failures are retried under Retry; a refusal is returned typed
// (*retry.HTTPError) and unretried.
func (c *Client) Submit(f *codefile.File, opts core.Options) (*Status, error) {
	return c.SubmitContext(context.Background(), f, opts)
}

// SubmitContext is Submit bounded by ctx.
func (c *Client) SubmitContext(ctx context.Context, f *codefile.File, opts core.Options) (*Status, error) {
	req, err := EncodeRequest(f, opts)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("xlate: encode submit: %w", err)
	}
	var st *Status
	err = c.Retry.Do(ctx, func() error {
		st, err = c.submitOnce(ctx, body)
		return err
	})
	return st, err
}

// submitOnce is one POST attempt.
func (c *Client) submitOnce(ctx context.Context, body []byte) (*Status, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+strings.TrimSuffix(xlatePrefix, "/"), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := c.do(hr)
	if err != nil {
		return nil, fmt.Errorf("xlate: submit: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("xlate: submit: %w", err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("xlate: submit: %w",
			retry.NewHTTPError(resp, strings.TrimSpace(string(data))))
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		// A truncated or corrupted answer: transient by policy.
		return nil, fmt.Errorf("xlate: submit: bad status: %w", err)
	}
	if st.Schema != StatusSchema {
		return nil, fmt.Errorf("xlate: submit: unexpected schema %q", st.Schema)
	}
	return &st, nil
}

// Fetch GETs the accelerated codefile under key. (nil, nil, nil) means the
// translation is still queued or running; a failed translation or missing
// key is an error (typed *retry.HTTPError for HTTP refusals).
func (c *Client) Fetch(key string) (*codefile.File, []byte, error) {
	return c.FetchContext(context.Background(), key)
}

// FetchContext is Fetch bounded by ctx. It performs exactly one request;
// AccelerateContext owns the retry/poll loop around it.
func (c *Client) FetchContext(ctx context.Context, key string) (*codefile.File, []byte, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+xlatePrefix+key, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.do(hr)
	if err != nil {
		return nil, nil, fmt.Errorf("xlate: fetch: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, DefaultMaxBody))
	if err != nil {
		return nil, nil, fmt.Errorf("xlate: fetch: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusAccepted:
		return nil, nil, nil
	case http.StatusUnprocessableEntity:
		var st Status
		if json.Unmarshal(data, &st) == nil && st.Error != "" {
			return nil, nil, retry.Terminal(fmt.Errorf("xlate: remote translation failed: %s", st.Error))
		}
		return nil, nil, retry.Terminal(fmt.Errorf("xlate: remote translation failed"))
	default:
		return nil, nil, fmt.Errorf("xlate: fetch: %w",
			retry.NewHTTPError(resp, strings.TrimSpace(string(data))))
	}
	cf, err := codefile.Read(bytes.NewReader(data))
	if err != nil {
		// Damaged bytes in flight: the strict parser refused them, the
		// server may well hold a good copy — transient, poll again.
		return nil, nil, fmt.Errorf("xlate: fetch: served codefile: %w", err)
	}
	return cf, data, nil
}

// Accelerate is core.Accelerate through the service: submit, poll, fetch,
// re-verify, graft. On success f carries the acceleration section and the
// bytes f would serialize to are identical to a local translation's. The
// client trusts nothing: the fetched codefile must parse (v5 checksums),
// match f's fingerprint, and pass AccelSection.Verify locally before its
// section is grafted.
func (c *Client) Accelerate(f *codefile.File, opts core.Options) error {
	return c.AccelerateContext(context.Background(), f, opts)
}

// AccelerateContext is Accelerate bounded by ctx (and still by Deadline,
// whichever ends first).
func (c *Client) AccelerateContext(ctx context.Context, f *codefile.File, opts core.Options) error {
	deadline := c.Deadline
	if deadline <= 0 {
		deadline = 5 * time.Minute
	}
	ctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()

	st, err := c.SubmitContext(ctx, f, opts)
	if err != nil {
		return err
	}
	if st.State == StateFailed {
		return fmt.Errorf("xlate: remote translation failed: %s", st.Error)
	}

	poll := c.PollInterval
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	resubmits := 0
	for {
		cf, _, err := c.FetchContext(ctx, st.Key)
		switch {
		case err == nil && cf != nil:
			return c.graft(f, cf, opts)
		case err == nil:
			// Still queued or running: keep polling, backing off.
		case isNotFound(err):
			// The service forgot the key mid-poll — a restarted daemon
			// lost its in-flight jobs. Re-submit: the key dedup makes the
			// replay idempotent (same bytes by determinism), bounded so a
			// store that keeps losing results cannot loop forever.
			if resubmits >= c.maxResubmits() {
				return fmt.Errorf("xlate: translation %s lost after %d re-submissions: %w",
					st.Key, resubmits, err)
			}
			resubmits++
			st2, serr := c.SubmitContext(ctx, f, opts)
			if serr != nil {
				return serr
			}
			if st2.State == StateFailed {
				return fmt.Errorf("xlate: remote translation failed: %s", st2.Error)
			}
			st = st2
		case retry.IsTerminal(err):
			return err
		default:
			// Transient fetch trouble (reset, 5xx, damaged bytes): stay in
			// the poll loop — the deadline, not the first flake, decides
			// when to give up. A server-directed Retry-After overrides the
			// poll pacing, capped like the policy caps it.
			if ra, ok := retry.RetryAfter(err); ok && ra > poll {
				poll = ra
				if max := c.pollMax(); poll > max {
					poll = max
				}
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("xlate: translation %s not ready within %v: %w",
				st.Key, deadline, ctx.Err())
		case <-time.After(poll):
		}
		if poll *= 2; poll > c.pollMax() {
			poll = c.pollMax()
		}
	}
}

func (c *Client) maxResubmits() int {
	if c.MaxResubmits < 0 {
		return 0
	}
	if c.MaxResubmits == 0 {
		return 2
	}
	return c.MaxResubmits
}

// isNotFound matches the service's 404 for a key it holds nothing under.
func isNotFound(err error) bool {
	var he *retry.HTTPError
	return errors.As(err, &he) && he.Status == http.StatusNotFound
}

// graft verifies the fetched codefile against the local one and adopts its
// acceleration section.
func (c *Client) graft(f, cf *codefile.File, opts core.Options) error {
	if cf.Accel == nil {
		return fmt.Errorf("xlate: served codefile has no acceleration section")
	}
	if cf.Fingerprint() != f.Fingerprint() {
		return fmt.Errorf("xlate: served codefile fingerprint %016x does not match local %016x",
			cf.Fingerprint(), f.Fingerprint())
	}
	base := opts.CodeBase
	if base == 0 {
		base = millicode.UserCodeBase
	}
	if err := cf.Accel.Verify(cf, int(base)); err != nil {
		return fmt.Errorf("xlate: served codefile fails verification: %w", err)
	}
	f.Accel = cf.Accel
	return nil
}
