package xlate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
)

// Client talks to a tnsxlated daemon: submit a codefile with its
// translation knobs, poll the content-addressed key, fetch the accelerated
// codefile, and re-verify every gate locally before trusting a byte of it.
// The service's determinism contract makes the result indistinguishable
// from a local core.Accelerate with the same options — test-pinned
// byte-identical — so callers can treat Accelerate here as a drop-in that
// trades CPU for a network round trip.
type Client struct {
	base  string
	token string
	hc    *http.Client

	// PollInterval paces result polling (default 50ms); Deadline bounds
	// one Accelerate end to end (default 5m).
	PollInterval time.Duration
	Deadline     time.Duration
}

// NewClient builds a client for a tnsxlated base URL. An empty token sends
// no Authorization header.
func NewClient(base, token string) *Client {
	return &Client{
		base:         strings.TrimSuffix(base, "/"),
		token:        token,
		hc:           &http.Client{Timeout: 30 * time.Second},
		PollInterval: 50 * time.Millisecond,
		Deadline:     5 * time.Minute,
	}
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return c.hc.Do(req)
}

// Submit sends one codefile + options and returns the service's status —
// the content-addressed key plus where the translation stands.
func (c *Client) Submit(f *codefile.File, opts core.Options) (*Status, error) {
	req, err := EncodeRequest(f, opts)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("xlate: encode submit: %w", err)
	}
	hr, err := http.NewRequest(http.MethodPost, c.base+strings.TrimSuffix(xlatePrefix, "/"), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := c.do(hr)
	if err != nil {
		return nil, fmt.Errorf("xlate: submit: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("xlate: submit: %w", err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("xlate: submit: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("xlate: submit: bad status: %w", err)
	}
	if st.Schema != StatusSchema {
		return nil, fmt.Errorf("xlate: submit: unexpected schema %q", st.Schema)
	}
	return &st, nil
}

// Fetch GETs the accelerated codefile under key. (nil, nil, nil) means the
// translation is still queued or running; a failed translation or missing
// key is an error.
func (c *Client) Fetch(key string) (*codefile.File, []byte, error) {
	hr, err := http.NewRequest(http.MethodGet, c.base+xlatePrefix+key, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.do(hr)
	if err != nil {
		return nil, nil, fmt.Errorf("xlate: fetch: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, DefaultMaxBody))
	if err != nil {
		return nil, nil, fmt.Errorf("xlate: fetch: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusAccepted:
		return nil, nil, nil
	case http.StatusUnprocessableEntity:
		var st Status
		if json.Unmarshal(data, &st) == nil && st.Error != "" {
			return nil, nil, fmt.Errorf("xlate: remote translation failed: %s", st.Error)
		}
		return nil, nil, fmt.Errorf("xlate: remote translation failed")
	default:
		return nil, nil, fmt.Errorf("xlate: fetch: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	cf, err := codefile.Read(bytes.NewReader(data))
	if err != nil {
		return nil, nil, fmt.Errorf("xlate: fetch: served codefile: %w", err)
	}
	return cf, data, nil
}

// Accelerate is core.Accelerate through the service: submit, poll, fetch,
// re-verify, graft. On success f carries the acceleration section and the
// bytes f would serialize to are identical to a local translation's. The
// client trusts nothing: the fetched codefile must parse (v5 checksums),
// match f's fingerprint, and pass AccelSection.Verify locally before its
// section is grafted.
func (c *Client) Accelerate(f *codefile.File, opts core.Options) error {
	st, err := c.Submit(f, opts)
	if err != nil {
		return err
	}
	if st.State == StateFailed {
		return fmt.Errorf("xlate: remote translation failed: %s", st.Error)
	}
	deadline := time.Now().Add(c.Deadline)
	for {
		cf, _, err := c.Fetch(st.Key)
		if err != nil {
			return err
		}
		if cf != nil {
			return c.graft(f, cf, opts)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("xlate: translation %s not ready within %v", st.Key, c.Deadline)
		}
		time.Sleep(c.PollInterval)
	}
}

// graft verifies the fetched codefile against the local one and adopts its
// acceleration section.
func (c *Client) graft(f, cf *codefile.File, opts core.Options) error {
	if cf.Accel == nil {
		return fmt.Errorf("xlate: served codefile has no acceleration section")
	}
	if cf.Fingerprint() != f.Fingerprint() {
		return fmt.Errorf("xlate: served codefile fingerprint %016x does not match local %016x",
			cf.Fingerprint(), f.Fingerprint())
	}
	base := opts.CodeBase
	if base == 0 {
		base = millicode.UserCodeBase
	}
	if err := cf.Accel.Verify(cf, int(base)); err != nil {
		return fmt.Errorf("xlate: served codefile fails verification: %w", err)
	}
	f.Accel = cf.Accel
	return nil
}
