package xlate

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/faultsim"
	"tnsr/internal/retry"
	"tnsr/internal/store"
	"tnsr/internal/tcache"
)

// lossyStore fails its first `fail` Puts the way a crash mid-write does:
// torn ".tmp-" debris lands in dir, the entry is never installed, and the
// writer gets an error. Everything else forwards.
type lossyStore struct {
	store.Storage
	dir string

	mu   sync.Mutex
	fail int
	torn int
}

func (l *lossyStore) Put(key string, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fail != 0 {
		if l.fail > 0 {
			l.fail--
		}
		l.torn++
		os.WriteFile(filepath.Join(l.dir, fmt.Sprintf(".tmp-crash%d", l.torn)), data[:len(data)/2], 0o666)
		return errors.New("store: crashed mid-write")
	}
	return l.Storage.Put(key, data)
}

// pollUntil404 polls key until the server answers 404 (the job finished
// but its result never became durable), failing on anything else terminal.
func pollUntil404(t *testing.T, cl *Client, key string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		cf, _, err := cl.Fetch(key)
		switch {
		case cf != nil:
			t.Fatal("lost translation served anyway")
		case err == nil:
			// still queued/running
		case isNotFound(err):
			return
		default:
			t.Fatalf("unexpected fetch state: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached the lost-result state")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestKillMidTranslationRestartRecovery is the crash-safety acceptance
// pin: a daemon whose store dies mid-write (every Put tears, as a kill -9
// mid-rename would) loses the submission's result; the restarted daemon
// sweeps the torn temporaries on startup, the client re-submits, and the
// served bytes are byte-identical to an uninterrupted local translation.
func TestKillMidTranslationRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := core.Options{Level: codefile.LevelDefault}
	const seed = 21

	inner1, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	dying := &lossyStore{Storage: inner1, dir: dir, fail: -1} // every Put tears
	s1 := New(Config{Cache: tcache.New(dying), Workers: 2})

	// The proxy holds the daemon's address fixed across the "restart".
	var cur atomic.Pointer[Server]
	cur.Store(s1)
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().ServeHTTP(w, r)
	}))
	defer proxy.Close()

	cl := NewClient(proxy.URL, "")
	cl.PollInterval = 2 * time.Millisecond
	cl.Retry = retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1}

	st, err := cl.Submit(buildFile(t, seed), opts)
	if err != nil {
		t.Fatal(err)
	}
	pollUntil404(t, cl, st.Key)

	// The kill left debris behind.
	debris := 0
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			debris++
		}
	}
	if debris == 0 {
		t.Fatal("crashed writes left no debris")
	}

	// Restart: a fresh daemon over the same directory. New() sweeps.
	s1.Close()
	inner2, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Cache: tcache.New(inner2), Workers: 2})
	defer s2.Close()
	cur.Store(s2)

	ents, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("restart did not sweep %q", e.Name())
		}
	}

	// The client's replay against the restarted daemon serves bytes
	// identical to an uninterrupted local translation.
	f := buildFile(t, seed)
	if err := cl.AccelerateContext(context.Background(), f, opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), localBytes(t, seed, opts)) {
		t.Error("post-restart serve not byte-identical to local translation")
	}

	// And the restarted daemon's metrics admit what happened.
	resp, err := http.Get(proxy.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	mb.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(mb.String(), fmt.Sprintf("tnsr_xlated_swept_total %d", debris)) {
		t.Errorf("swept counter missing or wrong:\n%s", mb.String())
	}
}

// TestClientResubmitsLostResult: within ONE Accelerate call — the daemon
// completes the translation but the result never becomes durable (torn
// write), the poll hits 404, and the client re-submits; the key dedup
// re-queues, the second write lands, and the result is byte-identical.
func TestClientResubmitsLostResult(t *testing.T) {
	dir := t.TempDir()
	inner, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	lossy := &lossyStore{Storage: inner, dir: dir, fail: 1} // first Put tears
	s := New(Config{Cache: tcache.New(lossy), Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	const seed = 23
	opts := core.Options{Level: codefile.LevelDefault}
	cl := NewClient(srv.URL, "")
	cl.PollInterval = 2 * time.Millisecond
	cl.Deadline = 30 * time.Second

	f := buildFile(t, seed)
	if err := cl.Accelerate(f, opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), localBytes(t, seed, opts)) {
		t.Error("recovered translation not byte-identical to local")
	}

	s.m.mu.Lock()
	subs := s.m.submissions
	s.m.mu.Unlock()
	if subs < 2 {
		t.Errorf("submissions %d, want >= 2 (the re-submission)", subs)
	}
}

// TestDrainRefusesNewServesInFlight: a draining server 503s new
// submissions (with Retry-After) but completed results stay fetchable, and
// Shutdown returns once in-flight work is done.
func TestDrainRefusesNewServesInFlight(t *testing.T) {
	s := newServer(t, nil)
	srv := httptest.NewServer(s)
	defer srv.Close()

	opts := core.Options{Level: codefile.LevelDefault}
	cl := NewClient(srv.URL, "")
	cl.PollInterval = 2 * time.Millisecond

	// One translation in before the drain.
	const seed = 27
	f := buildFile(t, seed)
	if err := cl.Accelerate(f, opts); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Submit(buildFile(t, seed), opts)
	if err != nil {
		t.Fatal(err)
	}

	s.SetDraining(true)

	// New submissions are refused, typed, with a Retry-After.
	fast := NewClient(srv.URL, "")
	fast.Retry = retry.Policy{MaxAttempts: 1}
	_, err = fast.Submit(buildFile(t, 99), opts)
	var he *retry.HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %v", err)
	}
	if he.RetryAfter <= 0 {
		t.Error("draining 503 carried no Retry-After")
	}

	// The finished result still serves, byte-identical.
	cf, data, err := cl.Fetch(st.Key)
	if err != nil || cf == nil {
		t.Fatalf("fetch while draining: %v", err)
	}
	if !bytes.Equal(data, localBytes(t, seed, opts)) {
		t.Error("drained serve not byte-identical")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Metrics carry the drain state and the typed reject.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	mb.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"tnsr_xlated_draining 1",
		`tnsr_xlated_rejects_total{reason="draining"} 1`,
	} {
		if !strings.Contains(mb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestShutdownWaitsForInFlight: a submission accepted before Shutdown has
// a durable, fetchable result after Shutdown returns.
func TestShutdownWaitsForInFlight(t *testing.T) {
	s := newServer(t, nil)
	srv := httptest.NewServer(s)
	defer srv.Close()

	opts := core.Options{Level: codefile.LevelDefault}
	cl := NewClient(srv.URL, "")
	const seed = 31
	st, err := cl.Submit(buildFile(t, seed), opts)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	cf, data, err := cl.Fetch(st.Key)
	if err != nil || cf == nil {
		t.Fatalf("fetch after shutdown: cf %v, err %v", cf, err)
	}
	if !bytes.Equal(data, localBytes(t, seed, opts)) {
		t.Error("post-shutdown serve not byte-identical to local")
	}
}

// TestClientSurvivesFlakyTransport: a client whose every request rides a
// fault-injecting transport (resets, 5xx, truncated and corrupted bodies)
// still converges to a byte-identical result — the backoff inside Deadline
// absorbs the chaos and the verify gates refuse damaged bytes.
func TestClientSurvivesFlakyTransport(t *testing.T) {
	s := newServer(t, nil)
	srv := httptest.NewServer(s)
	defer srv.Close()

	const seed = 37
	opts := core.Options{Level: codefile.LevelDefault}

	cl := NewClient(srv.URL, "")
	cl.PollInterval = 2 * time.Millisecond
	cl.Deadline = 30 * time.Second
	cl.Retry = retry.Policy{MaxAttempts: 6, BaseDelay: time.Millisecond, Seed: 7}
	cl.HTTPClient = &http.Client{Transport: faultsim.WrapTransport(http.DefaultTransport, faultsim.TransportOpts{
		Seed:      7,
		PReset:    0.15,
		P5xx:      0.15,
		PTruncate: 0.1,
		PCorrupt:  0.1,
	})}

	f := buildFile(t, seed)
	if err := cl.Accelerate(f, opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), localBytes(t, seed, opts)) {
		t.Error("translation under flaky transport not byte-identical to local")
	}
}

// TestPollBackoffGrows: each not-ready poll widens the interval up to
// PollMax, so a slow translation is not hammered at the initial rate.
func TestPollBackoffGrows(t *testing.T) {
	var mu sync.Mutex
	var polls []time.Time
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"schema":%q,"key":"00000000000000aa","state":"queued"}`, StatusSchema)
			return
		}
		mu.Lock()
		polls = append(polls, time.Now())
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"schema":%q,"key":"00000000000000aa","state":"running"}`, StatusSchema)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	cl := NewClient(srv.URL, "")
	cl.PollInterval = time.Millisecond
	cl.PollMax = 40 * time.Millisecond
	cl.Deadline = 250 * time.Millisecond

	err := cl.Accelerate(buildFile(t, 41), core.Options{Level: codefile.LevelDefault})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	mu.Lock()
	n := len(polls)
	mu.Unlock()
	// Fixed 1ms polling would take ~250 polls; backoff to 40ms caps the
	// count near 250/40 + the short ramp. Allow generous slack.
	if n == 0 || n > 40 {
		t.Errorf("poll count %d, want backoff-limited (1..40)", n)
	}
}
