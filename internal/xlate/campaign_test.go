package xlate

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tnsr/internal/core"
	"tnsr/internal/faultsim"
	"tnsr/internal/retry"
)

// TestFaultCampaignNetwork runs 100 seeded network-fault schedules through
// the full client/server path: resets, timeouts, synthetic 5xx and 429,
// truncated and corrupted bodies, duplicate deliveries. The invariant is
// the service's whole reason to exist: every Accelerate that reports
// success produced bytes identical to a local translation, and every
// failure is a typed degrade — never wrong output, never a panic.
func TestFaultCampaignNetwork(t *testing.T) {
	const (
		seeds    = 100
		programs = 4
	)
	srv := newServer(t, nil)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)

	// Reference bytes per program, translated locally once.
	var want [programs][]byte
	for p := int64(0); p < programs; p++ {
		want[p] = localBytes(t, p, core.Options{})
	}

	climates := []faultsim.TransportOpts{
		{PReset: 0.10, P5xx: 0.10, PTruncate: 0.05, PCorrupt: 0.05},
		{PReset: 0.25, P5xx: 0.20, P429: 0.10, Retry429After: 1, PDuplicate: 0.10},
		{PTimeout: 0.15, PTruncate: 0.15, PCorrupt: 0.15, PDuplicate: 0.05},
	}
	var succeeded, degraded int
	for seed := int64(0); seed < seeds; seed++ {
		opts := climates[seed%int64(len(climates))]
		opts.Seed = seed
		prog := seed % programs

		c := NewClient(hs.URL, "")
		c.HTTPClient = &http.Client{
			Transport: faultsim.WrapTransport(http.DefaultTransport, opts),
			Timeout:   5 * time.Second,
		}
		c.Retry = retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: seed}
		c.PollInterval = time.Millisecond
		c.PollMax = 10 * time.Millisecond
		c.Deadline = 5 * time.Second

		f := buildFile(t, prog)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := c.AccelerateContext(ctx, f, core.Options{})
		cancel()
		if err != nil {
			// A typed degrade: the faults won this schedule. The local file
			// must be untouched — no partial graft.
			if f.Accel != nil {
				t.Fatalf("seed %d: failed Accelerate left a grafted section", seed)
			}
			degraded++
			continue
		}
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			t.Fatalf("seed %d: serialize: %v", seed, err)
		}
		if !bytes.Equal(buf.Bytes(), want[prog]) {
			t.Fatalf("seed %d: remote translation differs from local under faults", seed)
		}
		succeeded++
	}
	if succeeded == 0 {
		t.Error("campaign had zero successes — retries are not riding out the faults")
	}
	t.Logf("network campaign: %d seeds, %d byte-identical successes, %d typed degrades",
		seeds, succeeded, degraded)
}
