package xlate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/store"
	"tnsr/internal/tcache"
	"tnsr/internal/tnsasm"
	"tnsr/internal/tnsgen"
)

// buildFile assembles one generated user program; distinct seeds give
// distinct codefiles (and distinct TransKeys).
func buildFile(t testing.TB, seed int64) *codefile.File {
	t.Helper()
	p := tnsgen.Generate(fmt.Sprintf("xl%d", seed), seed, tnsgen.LegacyConfig())
	f, err := tnsasm.Assemble(p.Name, p.UserSource())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func newServer(t testing.TB, mutate func(*Config)) *Server {
	t.Helper()
	c, err := tcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cache: c, Workers: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// localBytes is the reference: a local translation of the same codefile
// under the same options, serialized.
func localBytes(t testing.TB, seed int64, opts core.Options) []byte {
	t.Helper()
	f := buildFile(t, seed)
	if err := core.Accelerate(f, opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRemoteByteIdentical is the tentpole acceptance pin: two codefiles
// submitted CONCURRENTLY to one daemon — their fragments interleaving on
// the shared work-stealing queue — each come back byte-identical to a
// local axcel-style translation with the same (codefile, options) key.
// Run under -race in CI.
func TestRemoteByteIdentical(t *testing.T) {
	s := newServer(t, nil)
	srv := httptest.NewServer(s)
	defer srv.Close()

	seeds := []int64{3, 7, 11}
	opts := core.Options{Level: codefile.LevelDefault}

	var wg sync.WaitGroup
	got := make([][]byte, len(seeds))
	errs := make([]error, len(seeds))
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			cl := NewClient(srv.URL, "")
			f := buildFile(t, seed)
			if err := cl.Accelerate(f, opts); err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			if _, err := f.WriteTo(&buf); err != nil {
				errs[i] = err
				return
			}
			got[i] = buf.Bytes()
		}(i, seed)
	}
	wg.Wait()
	for i, seed := range seeds {
		if errs[i] != nil {
			t.Fatalf("seed %d: %v", seed, errs[i])
		}
		want := localBytes(t, seed, opts)
		if !bytes.Equal(got[i], want) {
			t.Errorf("seed %d: remote translation differs from local (remote %d bytes, local %d)",
				seed, len(got[i]), len(want))
		}
	}

	// The fragments really did go through the shared queue.
	if st := s.Queue().Stats(); st.Executed == 0 {
		t.Errorf("queue executed no fragments: %+v", st)
	}
}

// TestSubmitCachedSecondTime: an identical resubmission answers from the
// store without translating, and the served bytes stay identical.
func TestSubmitCachedSecondTime(t *testing.T) {
	s := newServer(t, nil)
	srv := httptest.NewServer(s)
	defer srv.Close()

	opts := core.Options{Level: codefile.LevelDefault}
	cl := NewClient(srv.URL, "")

	f1 := buildFile(t, 5)
	if err := cl.Accelerate(f1, opts); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Submit(buildFile(t, 5), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || !st.Cached {
		t.Fatalf("resubmission: state=%s cached=%v, want done/cached", st.State, st.Cached)
	}
	f2 := buildFile(t, 5)
	if err := cl.Accelerate(f2, opts); err != nil {
		t.Fatal(err)
	}
	b1 := mustBytes(t, f1)
	b2 := mustBytes(t, f2)
	if !bytes.Equal(b1, b2) {
		t.Error("cached submission served different bytes")
	}
}

func mustBytes(t testing.TB, f *codefile.File) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// do drives the handler directly, profsrv-test style.
func do(s *Server, method, path, token string, body []byte) *httptest.ResponseRecorder {
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	if token != "" {
		r.Header.Set("Authorization", "Bearer "+token)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// TestTypedRejections pins the adversarial surface: every hostile input
// gets the right status code and a typed reject counter in /metrics,
// matching profsrv conventions.
func TestTypedRejections(t *testing.T) {
	s := newServer(t, func(c *Config) {
		c.Token = "s3cret"
		c.MaxBody = 512
	})

	submit := func(body []byte, token string) *httptest.ResponseRecorder {
		return do(s, http.MethodPost, "/v1/xlate", token, body)
	}

	if w := submit([]byte("{}"), ""); w.Code != http.StatusUnauthorized {
		t.Errorf("no token: %d, want 401", w.Code)
	}
	if w := submit([]byte("{}"), "wrong"); w.Code != http.StatusUnauthorized {
		t.Errorf("wrong token: %d, want 401", w.Code)
	}
	if w := submit(bytes.Repeat([]byte("x"), 600), "s3cret"); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize: %d, want 413", w.Code)
	}
	if w := submit([]byte("not json"), "s3cret"); w.Code != http.StatusBadRequest {
		t.Errorf("bad json: %d, want 400", w.Code)
	}
	if w := submit([]byte(`{"schema":"wrong/v9"}`), "s3cret"); w.Code != http.StatusBadRequest {
		t.Errorf("bad schema: %d, want 400", w.Code)
	}
	body, _ := json.Marshal(SubmitRequest{Schema: SubmitSchema, Level: "warp"})
	if w := submit(body, "s3cret"); w.Code != http.StatusBadRequest {
		t.Errorf("bad level: %d, want 400", w.Code)
	}
	body, _ = json.Marshal(SubmitRequest{Schema: SubmitSchema, Codefile: []byte("junk")})
	if w := submit(body, "s3cret"); w.Code != http.StatusBadRequest {
		t.Errorf("bad codefile: %d, want 400", w.Code)
	}
	if w := do(s, http.MethodGet, "/v1/xlate/NOT-A-KEY", "s3cret", nil); w.Code != http.StatusBadRequest {
		t.Errorf("bad key: %d, want 400", w.Code)
	}
	if w := do(s, http.MethodGet, "/v1/xlate/0123456789abcdef", "s3cret", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown key: %d, want 404", w.Code)
	}
	if w := do(s, http.MethodDelete, "/v1/xlate/0123456789abcdef", "s3cret", nil); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: %d, want 405", w.Code)
	}

	m := do(s, http.MethodGet, "/metrics", "", nil)
	if m.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", m.Code)
	}
	for _, reason := range []string{"auth", "size", "parse", "schema", "options", "codefile", "key", "absent", "method"} {
		if !strings.Contains(m.Body.String(), fmt.Sprintf("tnsr_xlated_rejects_total{reason=%q}", reason)) {
			t.Errorf("/metrics missing reject reason %q", reason)
		}
	}
}

// TestRateLimit: a burst past the bucket answers 429 with the typed
// reason.
func TestRateLimit(t *testing.T) {
	s := newServer(t, func(c *Config) {
		c.RatePerSec = 0.001
		c.RateBurst = 2
	})
	codes := map[int]int{}
	for i := 0; i < 5; i++ {
		w := do(s, http.MethodGet, "/v1/xlate/0123456789abcdef", "", nil)
		codes[w.Code]++
	}
	if codes[http.StatusTooManyRequests] != 3 {
		t.Errorf("429s = %d, want 3 (burst 2 of 5): %v", codes[http.StatusTooManyRequests], codes)
	}
}

// TestHealthAndMetricsOpen: probes work without auth even when /v1 is
// token-protected.
func TestHealthAndMetricsOpen(t *testing.T) {
	s := newServer(t, func(c *Config) { c.Token = "s3cret" })
	if w := do(s, http.MethodGet, "/healthz", "", nil); w.Code != http.StatusOK {
		t.Errorf("/healthz: %d", w.Code)
	}
	if w := do(s, http.MethodGet, "/metrics", "", nil); w.Code != http.StatusOK {
		t.Errorf("/metrics: %d", w.Code)
	}
}

// TestServedBytesVerifyGated: damaging the store entry under a key makes
// the GET miss (404) instead of serving the damaged bytes, and counts a
// store reject.
func TestServedBytesVerifyGated(t *testing.T) {
	backing, err := store.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := tcache.New(backing)
	s := New(Config{Cache: c, Workers: 2})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	defer srv.Close()

	opts := core.Options{Level: codefile.LevelDefault}
	cl := NewClient(srv.URL, "")
	f := buildFile(t, 9)
	st, err := cl.Submit(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Accelerate(f, opts); err != nil {
		t.Fatal(err)
	}

	// Damage the stored entry through the cache's own store surface.
	data, ok := c.GetVerified(st.Key, 0, 0x010000)
	if !ok {
		t.Fatal("entry missing before damage")
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/3] ^= 0x40
	if err := backing.Put(st.Key+".tns", bad); err != nil {
		t.Fatal(err)
	}

	w := do(s, http.MethodGet, "/v1/xlate/"+st.Key, "", nil)
	if w.Code != http.StatusNotFound {
		t.Errorf("damaged entry served: %d, want 404", w.Code)
	}
	if got := c.Stats().Rejects; got == 0 {
		t.Error("damaged entry not counted as a store reject")
	}
}
