package xlate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/millicode"
	"tnsr/internal/pgo"
)

// writeCodefile serializes f to the same bytes a .tns file holds.
func writeCodefile(f *codefile.File) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("xlate: serialize codefile: %w", err)
	}
	return buf.Bytes(), nil
}

// Wire schemas. The submit request carries the codefile plus every
// output-affecting translation knob BY NAME — never a serialized Options
// struct — so client and server can disagree about Go versions, worker
// counts, or scheduler internals and still compute the same TransKey and
// the same bytes. Knobs that change wall-clock only (Workers, Sched, Obs)
// deliberately have no wire representation.
const (
	SubmitSchema = "tnsr/xlate-submit/v1"
	StatusSchema = "tnsr/xlate-status/v1"
)

// SubmitRequest is the POST /v1/xlate body.
type SubmitRequest struct {
	Schema string `json:"schema"`

	// Level is "stmtdebug", "default" or "fast" ("" = default).
	Level string `json:"level,omitempty"`

	// Space is the code-space bit (0 user, 1 library). Space 1 translates
	// for millicode.LibCodeBase, exactly as axcel -space 1 does.
	Space uint8 `json:"space,omitempty"`

	IgnoreSummaries    bool `json:"ignore_summaries,omitempty"`
	DisableFlagElision bool `json:"disable_flag_elision,omitempty"`
	DisableCSE         bool `json:"disable_cse,omitempty"`
	DisableSchedule    bool `json:"disable_schedule,omitempty"`

	// LibSummaries maps PEP index (decimal string: JSON objects key by
	// string) to result words.
	LibSummaries map[string]int8 `json:"lib_summaries,omitempty"`

	// HintRet and HintXCAL are the Options.Hints maps; HintXCAL keys are
	// decimal code addresses.
	HintRet  map[string]int8 `json:"hint_ret,omitempty"`
	HintXCAL map[string]int8 `json:"hint_xcal,omitempty"`

	// SelectProcs restricts translation to the named procedures.
	SelectProcs []string `json:"select_procs,omitempty"`

	// Profile is an inline tnsr/pgo-profile/v1 document; ProfileCover as in
	// Options.
	Profile      json.RawMessage `json:"profile,omitempty"`
	ProfileCover float64         `json:"profile_cover,omitempty"`

	// Codefile is the raw .tns bytes (base64 in JSON).
	Codefile []byte `json:"codefile"`
}

// Status is the JSON answer to a submit and to a GET that is not yet
// serveable: the translation's content-addressed key and where it stands.
type Status struct {
	Schema string `json:"schema"`
	Key    string `json:"key"`
	// State is "queued", "running", "done" or "failed".
	State string `json:"state"`
	// Cached reports a submit that was answered entirely from the store.
	Cached bool `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// EncodeRequest converts local translation options to the wire form.
// Options with no wire representation (Workers, Sched, Obs, MilliLabels,
// CodeBase) are dropped: the first three don't affect output, and the last
// two are derived deterministically on both sides (millicode.Build and the
// Space bit), so the server's TransKey matches the client's.
func EncodeRequest(f *codefile.File, opts core.Options) (*SubmitRequest, error) {
	req := &SubmitRequest{
		Schema:             SubmitSchema,
		Space:              opts.Space,
		IgnoreSummaries:    opts.IgnoreSummaries,
		DisableFlagElision: opts.DisableFlagElision,
		DisableCSE:         opts.DisableCSE,
		DisableSchedule:    opts.DisableSchedule,
		ProfileCover:       opts.ProfileCover,
	}
	switch opts.Level {
	case codefile.LevelNone, codefile.LevelDefault:
		req.Level = "default"
	case codefile.LevelStmtDebug:
		req.Level = "stmtdebug"
	case codefile.LevelFast:
		req.Level = "fast"
	default:
		return nil, fmt.Errorf("xlate: unencodable level %v", opts.Level)
	}
	if len(opts.LibSummaries) > 0 {
		req.LibSummaries = map[string]int8{}
		for k, v := range opts.LibSummaries {
			req.LibSummaries[strconv.Itoa(int(k))] = v
		}
	}
	if len(opts.Hints.ReturnValSize) > 0 {
		req.HintRet = map[string]int8{}
		for k, v := range opts.Hints.ReturnValSize {
			req.HintRet[k] = v
		}
	}
	if len(opts.Hints.XCALResultSize) > 0 {
		req.HintXCAL = map[string]int8{}
		for k, v := range opts.Hints.XCALResultSize {
			req.HintXCAL[strconv.Itoa(int(k))] = v
		}
	}
	for name, on := range opts.SelectProcs {
		if on {
			req.SelectProcs = append(req.SelectProcs, name)
		}
	}
	sort.Strings(req.SelectProcs)
	if opts.Profile != nil {
		data, err := opts.Profile.JSON()
		if err != nil {
			return nil, fmt.Errorf("xlate: encode profile: %w", err)
		}
		req.Profile = data
	}
	var buf []byte
	{
		var err error
		buf, err = writeCodefile(f)
		if err != nil {
			return nil, err
		}
	}
	req.Codefile = buf
	return req, nil
}

// DecodeOptions reconstructs the translation options a submit asks for.
// The returned options carry no Sched/Workers — the server attaches its
// shared queue — and CodeBase is derived from Space like axcel does.
func (r *SubmitRequest) DecodeOptions() (core.Options, error) {
	var opts core.Options
	switch r.Level {
	case "", "default":
		opts.Level = codefile.LevelDefault
	case "stmtdebug", "statementdebug":
		opts.Level = codefile.LevelStmtDebug
	case "fast":
		opts.Level = codefile.LevelFast
	default:
		return opts, fmt.Errorf("unknown level %q", r.Level)
	}
	if r.Space > 1 {
		return opts, fmt.Errorf("space must be 0 or 1, got %d", r.Space)
	}
	opts.Space = r.Space
	if r.Space == 1 {
		opts.CodeBase = millicode.LibCodeBase
	}
	opts.IgnoreSummaries = r.IgnoreSummaries
	opts.DisableFlagElision = r.DisableFlagElision
	opts.DisableCSE = r.DisableCSE
	opts.DisableSchedule = r.DisableSchedule
	opts.ProfileCover = r.ProfileCover
	if len(r.LibSummaries) > 0 {
		opts.LibSummaries = map[uint16]int8{}
		for k, v := range r.LibSummaries {
			n, err := strconv.ParseUint(k, 10, 16)
			if err != nil {
				return opts, fmt.Errorf("bad lib_summaries key %q", k)
			}
			opts.LibSummaries[uint16(n)] = v
		}
	}
	if len(r.HintRet) > 0 {
		opts.Hints.ReturnValSize = map[string]int8{}
		for k, v := range r.HintRet {
			opts.Hints.ReturnValSize[k] = v
		}
	}
	if len(r.HintXCAL) > 0 {
		opts.Hints.XCALResultSize = map[uint16]int8{}
		for k, v := range r.HintXCAL {
			n, err := strconv.ParseUint(k, 10, 16)
			if err != nil {
				return opts, fmt.Errorf("bad hint_xcal key %q", k)
			}
			opts.Hints.XCALResultSize[uint16(n)] = v
		}
	}
	if len(r.SelectProcs) > 0 {
		opts.SelectProcs = map[string]bool{}
		for _, name := range r.SelectProcs {
			opts.SelectProcs[name] = true
		}
	}
	if len(r.Profile) > 0 {
		p, err := pgo.ParseProfile(r.Profile)
		if err != nil {
			return opts, fmt.Errorf("bad profile: %w", err)
		}
		opts.Profile = p
	}
	return opts, nil
}
