package xlate

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// policyQueue builds a queue with NO workers so claim() can be driven by
// hand — the policy is a pure function of queue state, which makes these
// tests exact instead of probabilistic.
func policyQueue(workers int, fifo bool) *Queue {
	q := &Queue{workers: workers, fifo: fifo}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *Queue) addTask(n int) *qtask {
	t := &qtask{n: n, job: func(int) {}, done: make(chan struct{})}
	t.home = q.nextID % q.workers
	q.nextID++
	q.tasks = append(q.tasks, t)
	return t
}

// TestClaimHomeFirst: a worker drains its own submissions before stealing,
// and an idle worker steals from the task with the most unclaimed work.
func TestClaimHomeFirst(t *testing.T) {
	q := policyQueue(2, false)
	big := q.addTask(10)  // home 0
	small := q.addTask(1) // home 1

	// Worker 1's home task is the small one: it must claim there even
	// though the big task was submitted first and has more work.
	if got, k := q.claim(1); got != small || k != 0 {
		t.Fatalf("worker 1 claimed task %p job %d, want small task job 0", got, k)
	}
	// Worker 0 stays on its own submission.
	if got, k := q.claim(0); got != big || k != 0 {
		t.Fatalf("worker 0 claimed %p job %d, want big task job 0", got, k)
	}
	// Worker 1 is now out of home work: it steals from the biggest task.
	if got, k := q.claim(1); got != big || k != 1 {
		t.Fatalf("worker 1 stole %p job %d, want big task job 1", got, k)
	}
	if q.steals != 1 {
		t.Fatalf("steals = %d, want 1 (home claims are not steals)", q.steals)
	}
}

// TestClaimStealsBiggest: with no home work, the victim is the task with
// the most unclaimed jobs, so the largest submission sheds load fastest.
func TestClaimStealsBiggest(t *testing.T) {
	q := policyQueue(4, false)
	q.addTask(3)          // home 0
	huge := q.addTask(20) // home 1
	q.addTask(5)          // home 2

	// Worker 3 has no home task: must steal from the 20-job task.
	if got, _ := q.claim(3); got != huge {
		t.Fatalf("worker 3 stole from a %d-job task, want the 20-job task", got.n)
	}
}

// TestClaimFIFO: the baseline policy drains tasks strictly in submission
// order — the starvation behavior the stealing mode exists to fix.
func TestClaimFIFO(t *testing.T) {
	q := policyQueue(2, true)
	first := q.addTask(3)
	second := q.addTask(1)

	for k := 0; k < 3; k++ {
		got, gotK := q.claim(k % 2)
		if got != first || gotK != k {
			t.Fatalf("claim %d: task %p job %d, want first task job %d", k, got, gotK, k)
		}
	}
	if got, _ := q.claim(0); got != second {
		t.Fatalf("first task drained but FIFO did not move to the second")
	}
	if q.steals != 0 {
		t.Fatalf("steals = %d; FIFO mode must not count steals", q.steals)
	}
}

// TestQueueRunsEveryJobOnce: concurrent Runs from many submitters, every
// job index executes exactly once, and Run returns only after its own jobs
// finished. Run under -race this is the memory-safety pin for the shared
// pool.
func TestQueueRunsEveryJobOnce(t *testing.T) {
	for _, fifo := range []bool{false, true} {
		q := NewQueue(4, fifo)
		const subs, jobs = 8, 23
		var counts [subs][jobs]atomic.Int32
		var wg sync.WaitGroup
		for s := 0; s < subs; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				q.Run(jobs, func(k int) { counts[s][k].Add(1) })
				// Run has returned: every one of this submission's jobs
				// must already have executed.
				for k := 0; k < jobs; k++ {
					if got := counts[s][k].Load(); got != 1 {
						t.Errorf("fifo=%v sub %d job %d ran %d times at Run return", fifo, s, k, got)
					}
				}
			}(s)
		}
		wg.Wait()
		st := q.Stats()
		if st.Executed != subs*jobs {
			t.Errorf("fifo=%v executed = %d, want %d", fifo, st.Executed, subs*jobs)
		}
		if st.Tasks != 0 || st.Frags != 0 {
			t.Errorf("fifo=%v queue not drained: %+v", fifo, st)
		}
		q.Close()
	}
}

// TestQueuePanicPropagates: a panicking job surfaces on the submitter's
// goroutine after the task drains, and the queue keeps serving others.
func TestQueuePanicPropagates(t *testing.T) {
	q := NewQueue(2, false)
	defer q.Close()

	func() {
		defer func() {
			if p := recover(); p != "boom" {
				t.Errorf("recovered %v, want \"boom\"", p)
			}
		}()
		q.Run(3, func(k int) {
			if k == 1 {
				panic("boom")
			}
		})
		t.Error("Run returned without panicking")
	}()

	// The queue survives: a later submission still completes.
	var n atomic.Int32
	q.Run(4, func(int) { n.Add(1) })
	if n.Load() != 4 {
		t.Errorf("post-panic Run executed %d jobs, want 4", n.Load())
	}
}

// BenchmarkQueueStealVsFIFO is the scheduling acceptance benchmark: one
// large submission plus several small ones, measuring how long the small
// submissions wait once workers start moving. The large submission's jobs
// are gated so every worker is provably busy inside it when the smalls
// enqueue; the gate then opens and the policy decides who goes next.
//
// Two metrics per mode. small_wait_ms/op is each small submission's mean
// completion time from the gate opening, measured inside the worker that
// executes its last fragment (a submitter-goroutine wakeup would measure
// the Go scheduler on small machines, not the queue). large_first/op is
// the policy in the raw: how many large fragments had already started when
// the small submission finished — under FIFO every remaining large
// fragment goes first; with stealing each small submission's home worker
// reaches it after at most a handful.
func BenchmarkQueueStealVsFIFO(b *testing.B) {
	const workers, largeJobs, smalls, smallJobs = 4, 128, 6, 2
	work := func() { // ~10µs of CPU per fragment job
		x := 1
		for i := 0; i < 20000; i++ {
			x = x*1664525 + 1013904223
			if i%5000 == 0 {
				// Real fragment translation allocates and calls constantly —
				// those are Go preemption points. The synthetic loop has
				// none, so on a single-CPU machine one worker goroutine
				// would otherwise drain the whole queue before the others
				// ever run, measuring the Go scheduler instead of the
				// claiming policy. Yielding restores the interleaving a
				// multicore worker pool gets for free.
				runtime.Gosched()
			}
		}
		_ = x
	}
	for _, mode := range []struct {
		name string
		fifo bool
	}{{"steal", false}, {"fifo", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var totalWait time.Duration
			var totalLargeFirst, stolen int64
			for i := 0; i < b.N; i++ {
				q := NewQueue(workers, mode.fifo)
				gate := make(chan struct{})
				var inLarge, largeStarted atomic.Int32
				var release time.Time
				var wg sync.WaitGroup
				wg.Add(1)
				go func() { // the large submission, in flight first
					defer wg.Done()
					q.Run(largeJobs, func(int) {
						inLarge.Add(1)
						<-gate
						largeStarted.Add(1)
						work()
					})
				}()
				// All workers provably busy inside large fragments before
				// any small submission exists.
				for inLarge.Load() < workers {
					runtime.Gosched()
				}
				waitNs := make([]atomic.Int64, smalls)
				largeFirst := make([]atomic.Int32, smalls)
				var left [smalls]atomic.Int32
				for s := 0; s < smalls; s++ {
					left[s].Store(smallJobs)
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						q.Run(smallJobs, func(int) {
							work()
							if left[s].Add(-1) == 0 { // last fragment: done
								waitNs[s].Store(int64(time.Since(release)))
								largeFirst[s].Store(largeStarted.Load())
							}
						})
					}(s)
				}
				// Every submission is enqueued (the gate holds all the
				// workers inside large fragments, so nothing can drain) —
				// open the gate and let the policy decide who goes first.
				for q.Stats().Tasks < smalls+1 {
					runtime.Gosched()
				}
				release = time.Now()
				close(gate)
				wg.Wait()
				for s := 0; s < smalls; s++ {
					totalWait += time.Duration(waitNs[s].Load())
					totalLargeFirst += int64(largeFirst[s].Load())
				}
				stolen += q.Stats().Steals
				q.Close()
			}
			b.ReportMetric(float64(totalWait.Microseconds())/1000/float64(b.N*smalls), "small_wait_ms/op")
			b.ReportMetric(float64(totalLargeFirst)/float64(b.N*smalls), "large_first/op")
			b.ReportMetric(float64(stolen)/float64(b.N), "steals/op")
		})
	}
}
