package tnsasm

import (
	"strings"
	"testing"

	"tnsr/internal/tns"
)

func TestAssembleBasics(t *testing.T) {
	f, err := Assemble("t", `
; a comment
GLOBALS 10
MAIN main
PROC main RESULT 0 ARGS 0
  LDI 5
  STOR G+0
  EXIT 0
ENDPROC
`)
	if err != nil {
		t.Fatal(err)
	}
	if f.GlobalWords != 10 || len(f.Procs) != 1 || f.Procs[0].Name != "main" {
		t.Errorf("file: %+v", f)
	}
	if len(f.Code) != 3 {
		t.Fatalf("code len = %d", len(f.Code))
	}
	if tns.Decode(f.Code[0]).Sub != tns.SubLDI {
		t.Error("first instruction should be LDI")
	}
}

func TestLabelsAndBranches(t *testing.T) {
	f, err := Assemble("t", `
MAIN main
PROC main
top:
  LDI 1
  BNZ top
  BUN end
  NOP
end:
  EXIT 0
ENDPROC
`)
	if err != nil {
		t.Fatal(err)
	}
	// BNZ at addr 1 targets addr 0: disp -2.
	in := tns.Decode(f.Code[1])
	if in.Ctl != tns.CtlBRZ || in.BranchTargetAddr(1) != 0 {
		t.Errorf("BNZ: %+v", in)
	}
	in = tns.Decode(f.Code[2])
	if in.Ctl != tns.CtlBUN || in.BranchTargetAddr(2) != 4 {
		t.Errorf("BUN: %+v target=%d", in, in.BranchTargetAddr(2))
	}
}

func TestPCALByName(t *testing.T) {
	f, err := Assemble("t", `
MAIN main
PROC helper
  EXIT 0
ENDPROC
PROC main
  PCAL helper
  EXIT 0
ENDPROC
`)
	if err != nil {
		t.Fatal(err)
	}
	in := tns.Decode(f.Code[1])
	if in.Ctl != tns.CtlPCAL || in.Target != 0 {
		t.Errorf("PCAL: %+v", in)
	}
	if f.MainPEP != 1 {
		t.Errorf("MainPEP = %d", f.MainPEP)
	}
}

func TestCaseTable(t *testing.T) {
	f, err := Assemble("t", `
MAIN main
PROC main
  LDI 0
  CASE
CASETAB a, b
a:
  EXIT 0
b:
  EXIT 0
ENDPROC
`)
	if err != nil {
		t.Fatal(err)
	}
	// Code: LDI, CASE, count=2, addrA, addrB, EXIT, EXIT.
	if f.Code[2] != 2 {
		t.Errorf("table count = %d", f.Code[2])
	}
	if f.Code[3] != 5 || f.Code[4] != 6 {
		t.Errorf("table entries = %d,%d", f.Code[3], f.Code[4])
	}
}

func TestDataAndWordDirectives(t *testing.T) {
	f, err := Assemble("t", `
GLOBALS 8
DATA 2: 10 0x20 -1
MAIN main
PROC main
  BUN skip
  WORD 0xBEEF
  WORD lab
skip:
lab:
  EXIT 0
ENDPROC
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Data) != 1 || f.Data[0].Addr != 2 ||
		f.Data[0].Words[1] != 0x20 || f.Data[0].Words[2] != 0xFFFF {
		t.Errorf("data: %+v", f.Data)
	}
	if f.Code[1] != 0xBEEF || f.Code[2] != 3 {
		t.Errorf("words: %04x %04x", f.Code[1], f.Code[2])
	}
}

func TestStatementMarkers(t *testing.T) {
	f, err := Assemble("t", `
MAIN main
PROC main
  STMT 10
  LDI 1
  STMT 11
  DEL
  EXIT 0
ENDPROC
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Statements) != 2 || f.Statements[0].Addr != 0 ||
		f.Statements[1].Addr != 1 || f.Statements[1].Line != 11 {
		t.Errorf("statements: %+v", f.Statements)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"PROC a\nPROC b\nENDPROC\nENDPROC", // nested
		"LDI 1",                            // instruction outside proc
		"PROC a\n BUN nowhere\nENDPROC",    // undefined label
		"PROC a\n FROB 1\nENDPROC",         // unknown mnemonic
		"PROC a\n LOAD Q+1\nENDPROC",       // bad address mode
		"PROC a\nlab:\nlab:\nENDPROC",      // duplicate label
		"PROC a\nENDPROC\nMAIN zz",         // main not defined
		"PROC a",                           // missing ENDPROC
	}
	for _, src := range cases {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

// TestDisassemblerRoundTrip assembles every disassembled form back to the
// identical word, tying the assembler and disassembler together.
func TestDisassemblerRoundTrip(t *testing.T) {
	var words []uint16
	for op := uint8(0); op <= tns.OpDTOC; op++ {
		words = append(words, tns.EncStack(op))
	}
	for sub := uint8(tns.SubLDI); sub <= tns.SubSETT; sub++ {
		switch sub {
		case tns.SubCASE: // CASE needs its table
		case tns.SubLDE, tns.SubSTE, tns.SubLDBE, tns.SubSTBE:
			words = append(words, tns.EncSpecial(sub, 0))
		case tns.SubADM:
			words = append(words, tns.EncSpecial(sub, 0), tns.EncSpecial(sub, 1))
		case tns.SubSETT:
			words = append(words, tns.EncSpecial(sub, 1))
		default:
			words = append(words, tns.EncSpecial(sub, 3))
		}
	}
	for maj := uint8(tns.MajLoad); maj <= tns.MajStd; maj++ {
		words = append(words,
			tns.EncMem(maj, false, false, tns.ModeG, 9),
			tns.EncMem(maj, true, false, tns.ModeL, 9),
			tns.EncMem(maj, false, true, tns.ModeLN, 9),
			tns.EncMem(maj, true, true, tns.ModeS, 9))
	}
	words = append(words, tns.EncPCAL(4), tns.EncSCAL(5), tns.EncEXIT(2))

	var src strings.Builder
	src.WriteString("MAIN main\nPROC main\n")
	for i, w := range words {
		src.WriteString(tns.Disassemble(uint16(i), w))
		src.WriteByte('\n')
	}
	src.WriteString("ENDPROC\n")
	f, err := Assemble("rt", src.String())
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		if f.Code[i] != w {
			t.Errorf("word %d: assembled %04x (%s), want %04x (%s)",
				i, f.Code[i], tns.Disassemble(uint16(i), f.Code[i]),
				w, tns.Disassemble(uint16(i), w))
		}
	}
}
