// Package tnsasm assembles TNS assembly source into codefiles. It accepts
// the mnemonics produced by the tns package's disassembler, so
// assemble/disassemble round trips are testable, and adds labels, procedure
// directives and CASE-table directives. It exists for unit tests, for
// hand-coded library routines, and for the Accelerator's test corpus; the
// mini-TAL compiler is the main route to TNS code.
//
// Syntax (one statement per line, ';' starts a comment):
//
//	PROC name [RESULT n] [ARGS n]   begin a procedure (entered in the PEP)
//	ENDPROC                         end it
//	GLOBALS n                       reserve n words of globals
//	DATA addr: w0 w1 ...            initialized global data words
//	MAIN name                       designate the main procedure
//	label:                          define a code label
//	WORD n | WORD label             emit a raw code word
//	CASETAB l0,l1,...               emit a CASE table (count + addresses)
//	STMT [line]                     mark a statement boundary (debug info)
//	<mnemonic> [operands]           one TNS instruction
//
// Branches take a label or an absolute address. Memory operands are written
// like the disassembler prints them: G+12, L+3, L-2, S-1, with optional
// ",I" and ",X" suffixes.
package tnsasm

import (
	"fmt"
	"strconv"
	"strings"

	"tnsr/internal/codefile"
	"tnsr/internal/tns"
)

// Assemble parses and assembles source into a codefile named name.
func Assemble(name, source string) (*codefile.File, error) {
	a := &asm{
		file:     &codefile.File{Name: name},
		labels:   map[string]uint16{},
		stackOps: map[string]uint8{},
		curProc:  -1,
	}
	for op, n := range stackOpTable() {
		a.stackOps[n] = op
	}
	lines := strings.Split(source, "\n")
	for i, line := range lines {
		if err := a.line(line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, i+1, err)
		}
	}
	if a.curProc >= 0 {
		return nil, fmt.Errorf("%s: missing ENDPROC", name)
	}
	if err := a.fixup(); err != nil {
		return nil, err
	}
	if a.mainName != "" {
		idx := a.file.ProcByName(a.mainName)
		if idx < 0 {
			return nil, fmt.Errorf("%s: MAIN %q not defined", name, a.mainName)
		}
		a.file.MainPEP = uint16(idx)
	}
	return a.file, nil
}

// MustAssemble is Assemble for test fixtures; it panics on error.
func MustAssemble(name, source string) *codefile.File {
	f, err := Assemble(name, source)
	if err != nil {
		panic(err)
	}
	return f
}

type patch struct {
	addr  uint16
	label string
	kind  uint8 // 'b' = branch disp into instr, 'w' = absolute word
	line  string
}

type asm struct {
	file     *codefile.File
	labels   map[string]uint16
	patches  []patch
	stackOps map[string]uint8
	curProc  int
	mainName string
}

func stackOpTable() map[uint8]string {
	m := map[uint8]string{}
	for op := uint8(0); op <= tns.OpDTOC; op++ {
		n := tns.StackOpName(op)
		if !strings.HasPrefix(n, "STK?") {
			m[op] = n
		}
	}
	return m
}

func (a *asm) emit(w uint16) { a.file.Code = append(a.file.Code, w) }

func (a *asm) here() uint16 { return uint16(len(a.file.Code)) }

func (a *asm) line(raw string) error {
	line := raw
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	// Labels, possibly followed by an instruction on the same line.
	for {
		i := strings.IndexByte(line, ':')
		if i < 0 || strings.ContainsAny(line[:i], " \t") {
			break
		}
		// "DATA addr:" also contains ':' but has a space before it.
		label := line[:i]
		if _, dup := a.labels[label]; dup {
			return fmt.Errorf("duplicate label %q", label)
		}
		a.labels[label] = a.here()
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	fields := strings.Fields(line)
	op := strings.ToUpper(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])
	switch op {
	case "PROC":
		return a.procDirective(fields[1:])
	case "ENDPROC":
		if a.curProc < 0 {
			return fmt.Errorf("ENDPROC outside PROC")
		}
		a.curProc = -1
		return nil
	case "GLOBALS":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return fmt.Errorf("GLOBALS: %w", err)
		}
		a.file.GlobalWords = uint16(n)
		return nil
	case "MAIN":
		a.mainName = rest
		return nil
	case "DATA":
		return a.dataDirective(rest)
	case "STMT":
		ln := 0
		if rest != "" {
			v, err := strconv.Atoi(rest)
			if err != nil {
				return fmt.Errorf("STMT: %w", err)
			}
			ln = v
		}
		a.file.Statements = append(a.file.Statements,
			codefile.Statement{Addr: a.here(), Line: int32(ln)})
		return nil
	case "WORD":
		return a.wordDirective(rest)
	case "CASETAB":
		labels := splitList(rest)
		a.emit(uint16(len(labels)))
		for _, l := range labels {
			a.patches = append(a.patches,
				patch{addr: a.here(), label: l, kind: 'w', line: raw})
			a.emit(0)
		}
		return nil
	}
	if a.curProc < 0 {
		return fmt.Errorf("instruction %q outside PROC", op)
	}
	return a.instruction(op, rest, raw)
}

func (a *asm) procDirective(args []string) error {
	if a.curProc >= 0 {
		return fmt.Errorf("nested PROC")
	}
	if len(args) < 1 {
		return fmt.Errorf("PROC needs a name")
	}
	p := codefile.Proc{Name: args[0], Entry: a.here(), ResultWords: -1}
	for i := 1; i+1 < len(args); i += 2 {
		v, err := strconv.Atoi(args[i+1])
		if err != nil {
			return fmt.Errorf("PROC %s: %w", args[i], err)
		}
		switch strings.ToUpper(args[i]) {
		case "RESULT":
			p.ResultWords = int8(v)
		case "ARGS":
			p.ArgWords = uint8(v)
		default:
			return fmt.Errorf("PROC: unknown attribute %q", args[i])
		}
	}
	a.file.Procs = append(a.file.Procs, p)
	a.curProc = len(a.file.Procs) - 1
	return nil
}

func (a *asm) dataDirective(rest string) error {
	i := strings.IndexByte(rest, ':')
	if i < 0 {
		return fmt.Errorf("DATA needs \"addr:\"")
	}
	addr, err := strconv.Atoi(strings.TrimSpace(rest[:i]))
	if err != nil {
		return fmt.Errorf("DATA: %w", err)
	}
	var words []uint16
	for _, f := range strings.Fields(rest[i+1:]) {
		v, err := parseInt(f)
		if err != nil {
			return fmt.Errorf("DATA: %w", err)
		}
		words = append(words, uint16(v))
	}
	a.file.Data = append(a.file.Data,
		codefile.DataSeg{Addr: uint16(addr), Words: words})
	return nil
}

func (a *asm) wordDirective(rest string) error {
	if v, err := parseInt(rest); err == nil {
		a.emit(uint16(v))
		return nil
	}
	a.patches = append(a.patches,
		patch{addr: a.here(), label: rest, kind: 'w'})
	a.emit(0)
	return nil
}

func (a *asm) instruction(op, rest, raw string) error {
	// Zero-operand stack operations.
	if code, ok := a.stackOps[op]; ok && rest == "" {
		a.emit(tns.EncStack(code))
		return nil
	}
	switch op {
	case "LDE", "STE", "LDBE", "STBE":
		sub := map[string]uint8{
			"LDE": tns.SubLDE, "STE": tns.SubSTE,
			"LDBE": tns.SubLDBE, "STBE": tns.SubSTBE,
		}[op]
		a.emit(tns.EncSpecial(sub, 0))
		return nil
	case "LOAD", "STOR", "LDB", "STB", "LDD", "STD":
		return a.memInstr(op, rest)
	case "LDI", "LDHI", "ADDI", "CMPI", "ADDS", "ANDI", "ORI", "LGA", "LLA",
		"SVC", "LDPL", "SETT", "SHL", "SHRL", "SHRA", "DSHL", "DSHRL",
		"LDRA", "STAR", "SETRP":
		v, err := parseInt(rest)
		if err != nil {
			return fmt.Errorf("%s: %w", op, err)
		}
		if err := checkOperandRange(op, v); err != nil {
			return err
		}
		sub := map[string]uint8{
			"LDI": tns.SubLDI, "LDHI": tns.SubLDHI, "ADDI": tns.SubADDI,
			"CMPI": tns.SubCMPI, "ADDS": tns.SubADDS, "ANDI": tns.SubANDI,
			"ORI": tns.SubORI, "LGA": tns.SubLGA, "LLA": tns.SubLLA,
			"SVC": tns.SubSVC, "LDPL": tns.SubLDPL, "SETT": tns.SubSETT,
			"SHL": tns.SubSHL, "SHRL": tns.SubSHRL, "SHRA": tns.SubSHRA,
			"DSHL": tns.SubDSHL, "DSHRL": tns.SubDSHRL, "LDRA": tns.SubLDRA,
			"STAR": tns.SubSTAR, "SETRP": tns.SubSETRP,
		}[op]
		a.emit(tns.EncSpecial(sub, uint8(v)))
		return nil
	case "ADM":
		if strings.Contains(strings.ToUpper(rest), "ATOMIC") {
			a.emit(tns.EncSpecial(tns.SubADM, 1))
		} else {
			a.emit(tns.EncSpecial(tns.SubADM, 0))
		}
		return nil
	case "CASE":
		a.emit(tns.EncSpecial(tns.SubCASE, 0))
		return nil
	case "PCAL", "SCAL", "EXIT":
		return a.callInstr(op, rest)
	case "BUN", "BZ", "BNZ",
		"BL", "BE", "BLE", "BG", "BNE", "BGE", "BA", "BNV":
		return a.branch(op, rest, raw)
	}
	return fmt.Errorf("unknown mnemonic %q", op)
}

func (a *asm) memInstr(op, rest string) error {
	var major uint8
	switch op {
	case "LOAD":
		major = tns.MajLoad
	case "STOR":
		major = tns.MajStor
	case "LDB":
		major = tns.MajLdb
	case "STB":
		major = tns.MajStb
	case "LDD":
		major = tns.MajLdd
	case "STD":
		major = tns.MajStd
	}
	parts := splitList(rest)
	if len(parts) == 0 {
		return fmt.Errorf("%s needs an address", op)
	}
	addr := parts[0]
	var mode uint8
	switch {
	case strings.HasPrefix(addr, "G+"):
		mode = tns.ModeG
	case strings.HasPrefix(addr, "L+"):
		mode = tns.ModeL
	case strings.HasPrefix(addr, "L-"):
		mode = tns.ModeLN
	case strings.HasPrefix(addr, "S-"):
		mode = tns.ModeS
	default:
		return fmt.Errorf("%s: bad address %q", op, addr)
	}
	d, err := strconv.Atoi(addr[2:])
	if err != nil || d < 0 || d > 511 {
		return fmt.Errorf("%s: bad displacement %q", op, addr)
	}
	var ind, idx bool
	for _, p := range parts[1:] {
		switch strings.ToUpper(p) {
		case "I":
			ind = true
		case "X":
			idx = true
		default:
			return fmt.Errorf("%s: bad suffix %q", op, p)
		}
	}
	a.emit(tns.EncMem(major, ind, idx, mode, uint16(d)))
	return nil
}

func (a *asm) callInstr(op, rest string) error {
	// Numeric PEP index or, for PCAL, a procedure name.
	if v, err := parseInt(rest); err == nil {
		switch op {
		case "PCAL":
			a.emit(tns.EncPCAL(uint16(v)))
		case "SCAL":
			a.emit(tns.EncSCAL(uint16(v)))
		case "EXIT":
			a.emit(tns.EncEXIT(uint16(v)))
		}
		return nil
	}
	if op != "PCAL" {
		return fmt.Errorf("%s: bad operand %q", op, rest)
	}
	a.patches = append(a.patches, patch{addr: a.here(), label: rest, kind: 'p'})
	a.emit(tns.EncPCAL(0))
	return nil
}

func (a *asm) branch(op, rest, raw string) error {
	a.patches = append(a.patches,
		patch{addr: a.here(), label: rest, kind: 'b', line: raw})
	// Emit with displacement 0; fixup rewrites it.
	switch op {
	case "BUN":
		a.emit(tns.EncBUN(0))
	case "BZ":
		a.emit(tns.EncBRZ(false, 0))
	case "BNZ":
		a.emit(tns.EncBRZ(true, 0))
	default:
		cond := map[string]uint8{
			"BNV": tns.CondNever, "BL": tns.CondL, "BE": tns.CondE,
			"BLE": tns.CondLE, "BG": tns.CondG, "BNE": tns.CondNE,
			"BGE": tns.CondGE, "BA": tns.CondAlways,
		}[op]
		a.emit(tns.EncBCC(cond, 0))
	}
	return nil
}

func (a *asm) fixup() error {
	for _, p := range a.patches {
		var target uint16
		if p.kind == 'p' {
			idx := a.file.ProcByName(p.label)
			if idx < 0 {
				return fmt.Errorf("undefined procedure %q", p.label)
			}
			a.file.Code[p.addr] = tns.EncPCAL(uint16(idx))
			continue
		}
		if t, ok := a.labels[p.label]; ok {
			target = t
		} else if v, err := parseInt(p.label); err == nil {
			target = uint16(v)
		} else {
			return fmt.Errorf("undefined label %q", p.label)
		}
		switch p.kind {
		case 'w':
			a.file.Code[p.addr] = target
		case 'b':
			disp := int(target) - int(p.addr) - 1
			in := tns.Decode(a.file.Code[p.addr])
			var w uint16
			switch in.Ctl {
			case tns.CtlBUN:
				if disp < -512 || disp > 511 {
					return fmt.Errorf("branch to %q out of range (%d)", p.label, disp)
				}
				w = tns.EncBUN(int16(disp))
			case tns.CtlBCC:
				if disp < -64 || disp > 63 {
					return fmt.Errorf("branch to %q out of range (%d)", p.label, disp)
				}
				w = tns.EncBCC(in.Cond, int16(disp))
			case tns.CtlBRZ:
				if disp < -256 || disp > 255 {
					return fmt.Errorf("branch to %q out of range (%d)", p.label, disp)
				}
				w = tns.EncBRZ(in.Cond == 1, int16(disp))
			}
			a.file.Code[p.addr] = w
		}
	}
	return nil
}

func checkOperandRange(op string, v int) error {
	var lo, hi int
	switch op {
	case "LDI", "ADDI", "CMPI", "ADDS", "LLA":
		lo, hi = -128, 127
	case "LDHI", "ANDI", "ORI", "SVC", "LGA", "LDPL":
		lo, hi = 0, 255
	case "SHL", "SHRL", "SHRA":
		lo, hi = 0, 15
	case "DSHL", "DSHRL":
		lo, hi = 0, 31
	case "LDRA", "STAR", "SETRP":
		lo, hi = 0, 7
	case "SETT":
		lo, hi = 0, 1
	default:
		lo, hi = 0, 255
	}
	if v < lo || v > hi {
		return fmt.Errorf("%s: operand %d out of range [%d,%d]", op, v, lo, hi)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInt(s string) (int, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err := strconv.ParseInt(s[2:], 16, 32)
		return int(v), err
	}
	return strconv.Atoi(s)
}
