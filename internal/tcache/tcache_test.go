package tcache

import (
	"bytes"
	"os"
	"testing"

	"tnsr/internal/codefile"
	"tnsr/internal/core"
	"tnsr/internal/pgo"
	"tnsr/internal/store"
	"tnsr/internal/workloads"
)

func mustCache(t testing.TB) *Cache {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func serialize(t testing.TB, f *codefile.File) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func buildUser(t testing.TB) *codefile.File {
	t.Helper()
	w, err := workloads.Build("tal", 1)
	if err != nil {
		t.Fatal(err)
	}
	return w.User
}

// TestCacheHitByteIdentical is the acceptance pin: a cache-hit accelerate
// produces a byte-identical accelerated codefile to a cold translation.
func TestCacheHitByteIdentical(t *testing.T) {
	c := mustCache(t)
	opts := core.Options{Level: codefile.LevelDefault}

	cold := buildUser(t)
	if err := core.Accelerate(cold, opts); err != nil {
		t.Fatal(err)
	}
	coldBytes := serialize(t, cold)

	miss := buildUser(t)
	hit1, err := c.Accelerate(miss, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Fatal("first cache access should miss")
	}
	if !bytes.Equal(serialize(t, miss), coldBytes) {
		t.Error("cache-miss translation differs from direct core.Accelerate")
	}

	warm := buildUser(t)
	hit2, err := c.Accelerate(warm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Fatal("second cache access should hit")
	}
	if !bytes.Equal(serialize(t, warm), coldBytes) {
		t.Error("cache-hit accelerated codefile is not byte-identical to cold translation")
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Rejects != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 0 rejects", s)
	}
}

// TestCacheKeySensitivity: the key must move with anything that moves the
// output — the input code image, the level, the attached profile — and
// stay put for knobs that do not (workers).
func TestCacheKeySensitivity(t *testing.T) {
	f := buildUser(t)
	fp := f.Fingerprint()
	base, err := core.Options{Level: codefile.LevelDefault}.TransKey(fp)
	if err != nil {
		t.Fatal(err)
	}

	if k, _ := (core.Options{Level: codefile.LevelFast}).TransKey(fp); k == base {
		t.Error("level change did not move the key")
	}
	if k, _ := (core.Options{Level: codefile.LevelDefault}).TransKey(fp + 1); k == base {
		t.Error("fingerprint change did not move the key")
	}
	if k, _ := (core.Options{Level: codefile.LevelDefault, Workers: 7}).TransKey(fp); k != base {
		t.Error("worker count moved the key (output is worker-independent)")
	}
	if k, _ := (core.Options{Level: codefile.LevelDefault,
		Hints: core.Hints{ReturnValSize: map[string]int8{"p": 2}}}).TransKey(fp); k == base {
		t.Error("hints did not move the key")
	}

	prof := &pgo.Profile{Schema: pgo.Schema, Runs: 1, Spaces: []pgo.SpaceProfile{{
		Space: "user",
		Procs: []pgo.ProcWeight{{Name: "main", Calls: 3}},
	}}}
	withProf, err := core.Options{Level: codefile.LevelDefault, Profile: prof}.TransKey(fp)
	if err != nil {
		t.Fatal(err)
	}
	if withProf == base {
		t.Error("attached profile did not move the key")
	}
	prof2 := &pgo.Profile{Schema: pgo.Schema, Runs: 1, Spaces: []pgo.SpaceProfile{{
		Space: "user",
		Procs: []pgo.ProcWeight{{Name: "main", Calls: 4}},
	}}}
	if k, _ := (core.Options{Level: codefile.LevelDefault, Profile: prof2}).TransKey(fp); k == withProf {
		t.Error("profile content change did not move the key")
	}
}

// TestCacheCorruptEntryFallsBack: a damaged cache entry must never surface
// — the load gates reject it, the entry is replaced, and the translation
// output is still byte-identical to cold.
func TestCacheCorruptEntryFallsBack(t *testing.T) {
	c := mustCache(t)
	opts := core.Options{Level: codefile.LevelDefault}

	first := buildUser(t)
	if _, err := c.Accelerate(first, opts); err != nil {
		t.Fatal(err)
	}
	want := serialize(t, first)

	key, err := opts.TransKey(buildUser(t).Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	path := c.st.(*store.Dir).Path(key + entrySuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("cache entry not written: %v", err)
	}
	data[len(data)/2] ^= 0x10 // checksum breakage somewhere in the middle
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	again := buildUser(t)
	hit, err := c.Accelerate(again, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("corrupt entry served as a hit")
	}
	if c.Stats().Rejects != 1 {
		t.Errorf("rejects = %d, want 1", c.Stats().Rejects)
	}
	if !bytes.Equal(serialize(t, again), want) {
		t.Error("fallback translation differs from cold output")
	}
	// The replaced entry must now serve hits again.
	if hit, err := c.Accelerate(buildUser(t), opts); err != nil || !hit {
		t.Errorf("replaced entry did not hit (hit=%v err=%v)", hit, err)
	}

	// Truncation is rejected the same way.
	if err := os.WriteFile(path, data[:16], 0o666); err != nil {
		t.Fatal(err)
	}
	if hit, err := c.Accelerate(buildUser(t), opts); err != nil || hit {
		t.Errorf("truncated entry should miss cleanly (hit=%v err=%v)", hit, err)
	}
}

// TestCacheDistinguishesProfiles: the same codefile under two different
// profiles occupies two entries, each hitting only for its own profile.
func TestCacheDistinguishesProfiles(t *testing.T) {
	c := mustCache(t)
	f := buildUser(t)
	fpHex := codefileFingerprintHex(f)
	prof := &pgo.Profile{Schema: pgo.Schema, Runs: 1, Spaces: []pgo.SpaceProfile{{
		Space: "user", Fingerprint: fpHex,
		Procs: []pgo.ProcWeight{{Name: "main", Calls: 3, InterpInstrs: 50}},
	}}}

	if hit, err := c.Accelerate(buildUser(t), core.Options{Level: codefile.LevelDefault}); err != nil || hit {
		t.Fatalf("unprofiled first access: hit=%v err=%v", hit, err)
	}
	if hit, err := c.Accelerate(buildUser(t),
		core.Options{Level: codefile.LevelDefault, Profile: prof}); err != nil || hit {
		t.Fatalf("profiled first access: hit=%v err=%v", hit, err)
	}
	if hit, err := c.Accelerate(buildUser(t),
		core.Options{Level: codefile.LevelDefault, Profile: prof}); err != nil || !hit {
		t.Fatalf("profiled second access: hit=%v err=%v", hit, err)
	}
	if s := c.Stats(); s.Misses != 2 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 2 misses / 1 hit", s)
	}
}

// TestCacheLRUEviction: with a size cap, churning distinct keys through the
// cache keeps the stored total bounded, evicts least-recently-used entries
// first (a hit protects its entry), and entries surviving the churn still
// pass the full verify gate — including one damaged on disk mid-churn,
// which must reject and retranslate, never serve.
func TestCacheLRUEviction(t *testing.T) {
	c := mustCache(t)
	base := buildUser(t)
	if err := core.Accelerate(base, core.Options{Level: codefile.LevelDefault}); err != nil {
		t.Fatal(err)
	}
	entry := serialize(t, base)
	// Cap at ~3 entries so a 6-key churn must evict.
	c.SetMaxBytes(3*int64(len(entry)) + int64(len(entry))/2)

	// Distinct keys for one codefile: vary an output-affecting knob.
	optsFor := func(i int) core.Options {
		return core.Options{Level: codefile.LevelDefault,
			Hints: core.Hints{ReturnValSize: map[string]int8{"nonexistent": int8(i)}}}
	}
	for i := 0; i < 6; i++ {
		if hit, err := c.Accelerate(buildUser(t), optsFor(i)); err != nil || hit {
			t.Fatalf("churn %d: hit=%v err=%v", i, hit, err)
		}
		// Re-hit key 0 early so recency, not insertion order, decides.
		if i == 2 {
			if hit, err := c.Accelerate(buildUser(t), optsFor(0)); err != nil || !hit {
				t.Fatalf("protective re-hit: hit=%v err=%v", hit, err)
			}
		}
	}
	if size, n := c.SizeBytes(); size > c.maxBytes || n > 3 {
		t.Fatalf("cap not enforced: %d bytes in %d entries (cap %d)", size, n, c.maxBytes)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded under churn")
	}

	// An entry that survived eviction churn still serves a verified hit…
	if hit, err := c.Accelerate(buildUser(t), optsFor(5)); err != nil || !hit {
		t.Fatalf("survivor should hit: hit=%v err=%v", hit, err)
	}
	// …and a survivor damaged on disk is still caught by the gate.
	key, err := optsFor(5).TransKey(buildUser(t).Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	path := c.st.(*store.Dir).Path(key + entrySuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x40
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	rejBefore := c.Stats().Rejects
	if hit, err := c.Accelerate(buildUser(t), optsFor(5)); err != nil || hit {
		t.Fatalf("damaged survivor must miss cleanly: hit=%v err=%v", hit, err)
	}
	if c.Stats().Rejects != rejBefore+1 {
		t.Fatalf("damaged survivor not counted as reject")
	}
	// An evicted key simply misses and repopulates.
	if hit, err := c.Accelerate(buildUser(t), optsFor(1)); err != nil || hit {
		t.Fatalf("evicted key should miss: hit=%v err=%v", hit, err)
	}
}

func codefileFingerprintHex(f *codefile.File) string {
	const hexdigits = "0123456789abcdef"
	fp := f.Fingerprint()
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = hexdigits[fp&0xF]
		fp >>= 4
	}
	return string(out)
}

// BenchmarkAccelerateCold prices a from-scratch translation of the tal
// workload; BenchmarkAccelerateCached prices the same call served from the
// cache. The acceptance criterion is that the hit path is measurably
// faster.
func BenchmarkAccelerateCold(b *testing.B) {
	w := workloads.MustBuild("tal", 1)
	opts := core.Options{Level: codefile.LevelDefault}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := cloneForBench(w.User)
		if err := core.Accelerate(f, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccelerateCached(b *testing.B) {
	c := mustCache(b)
	w := workloads.MustBuild("tal", 1)
	opts := core.Options{Level: codefile.LevelDefault}
	if _, err := c.Accelerate(cloneForBench(w.User), opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := cloneForBench(w.User)
		hit, err := c.Accelerate(f, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !hit {
			b.Fatal("expected a cache hit")
		}
	}
}

func cloneForBench(f *codefile.File) *codefile.File {
	g := *f
	g.Accel = nil
	g.Code = append([]uint16{}, f.Code...)
	g.Procs = append([]codefile.Proc{}, f.Procs...)
	return &g
}
